// Aggregates: the paper's §8.1 future-work direction — aggregation queries
// as an additional processing stage — running on this repository's pluggable
// stage pipeline (core.Options.ExtraStages).
//
// A streaming count/sum/avg/min/max over a real-time query's result is
// maintained incrementally from filtering-stage deltas: no write ever
// rescans the database, and the matching grid stays untouched.
//
//	go run ./examples/aggregates
package main

import (
	"fmt"
	"log"
	"time"

	"invalidb/internal/appserver"
	"invalidb/internal/core"
	"invalidb/internal/eventlayer"
	"invalidb/internal/query"

	"invalidb"
)

func main() {
	bus := eventlayer.NewMemBus(eventlayer.MemBusOptions{})
	cluster, err := core.NewCluster(bus, core.Options{
		QueryPartitions: 2,
		WritePartitions: 2,
		// The extension stage: aggregate the "price" field of every
		// registered query's result, on 2 stage nodes.
		ExtraStages: []core.Stage{core.NewAggregationStage("price", 2)},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := cluster.Start(); err != nil {
		log.Fatal(err)
	}
	defer cluster.Stop()
	defer bus.Close()

	db := invalidb.OpenDB(invalidb.DBOptions{})
	srv, err := appserver.New(db, bus, appserver.Options{})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	// Watch the aggregate notifications directly on the event layer.
	spec := query.Spec{Collection: "orders", Filter: map[string]any{"open": true}}
	q, _ := query.Compile(spec)
	qid := core.QueryIDString(core.TenantQueryHash(srv.Tenant(), q))
	notif, err := bus.Subscribe(cluster.Topics().Notify(srv.Tenant()))
	if err != nil {
		log.Fatal(err)
	}
	defer notif.Close()

	if _, err := srv.Subscribe(spec); err != nil {
		log.Fatal(err)
	}

	go func() {
		orders := []struct {
			id    string
			price int
		}{{"o1", 40}, {"o2", 60}, {"o3", 200}}
		for _, o := range orders {
			time.Sleep(40 * time.Millisecond)
			_ = srv.Insert("orders", invalidb.Document{"_id": o.id, "open": true, "price": o.price})
		}
		time.Sleep(40 * time.Millisecond)
		_ = srv.Update("orders", "o3", map[string]any{"$set": map[string]any{"open": false}}) // leaves the result
	}()

	deadline := time.After(5 * time.Second)
	seen := 0
	for {
		select {
		case msg := <-notif.C():
			env, err := core.DecodeEnvelope(msg.Payload)
			if err != nil || env.Kind != core.KindNotification {
				continue
			}
			n := env.Notification
			if n.Key != core.AggregateKey || n.QueryID != qid {
				continue
			}
			fmt.Printf("open-order stats: count=%v sum=%v avg=%v min=%v max=%v\n",
				n.Doc["count"], n.Doc["sum"], n.Doc["avg"], n.Doc["min"], n.Doc["max"])
			seen++
			if seen == 5 { // bootstrap + 3 inserts + 1 departure
				return
			}
		case <-deadline:
			log.Fatal("timed out waiting for aggregate notifications")
		}
	}
}
