// Chat: the classic real-time database scenario the paper's introduction
// motivates — users see new messages the moment they are written, without
// polling.
//
// Each chat room view is a sorted real-time query: the latest messages of
// one room, newest first, limited to a window. Two subscribers (Alice's and
// Bob's clients) share the same query; InvaliDB matches it once and the
// application server fans the notifications out.
//
//	go run ./examples/chat
package main

import (
	"fmt"
	"log"
	"time"

	"invalidb"
)

const room = "databases"

func main() {
	dep, err := invalidb.Open(invalidb.Config{QueryPartitions: 2, WritePartitions: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer dep.Close()
	srv := dep.Server

	view := invalidb.Spec{
		Collection: "messages",
		Filter:     map[string]any{"room": room},
		Sort:       []invalidb.SortKey{{Path: "at", Desc: true}},
		Limit:      4,
	}
	alice, err := srv.Subscribe(view)
	if err != nil {
		log.Fatal(err)
	}
	bob, err := srv.Subscribe(view)
	if err != nil {
		log.Fatal(err)
	}
	defer alice.Close()
	defer bob.Close()

	watch := func(name string, sub *invalidb.Subscription, done chan<- struct{}) {
		seen := 0
		for ev := range sub.C() {
			switch ev.Type {
			case invalidb.EventInitial:
				fmt.Printf("[%s] joined #%s (%d messages)\n", name, room, len(ev.Docs))
			case invalidb.EventAdd:
				fmt.Printf("[%s] %v: %v\n", name, ev.Doc["from"], ev.Doc["text"])
				seen++
				if seen == 5 {
					done <- struct{}{}
					return
				}
			case invalidb.EventRemove:
				// An old message scrolled out of the window.
			case invalidb.EventError:
				log.Fatalf("[%s] subscription error: %v", name, ev.Err)
			}
		}
	}
	done := make(chan struct{}, 2)
	go watch("alice", alice, done)
	go watch("bob  ", bob, done)

	say := func(i int, from, text string) {
		if err := srv.Insert("messages", invalidb.Document{
			"_id": fmt.Sprintf("m%03d", i), "room": room,
			"from": from, "text": text, "at": i,
		}); err != nil {
			log.Fatal(err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	// A message in another room must not reach the #databases view.
	_ = srv.Insert("messages", invalidb.Document{
		"_id": "off0", "room": "offtopic", "from": "carol", "text": "lunch?", "at": 0,
	})
	say(1, "alice", "did you read the InvaliDB paper?")
	say(2, "bob", "the two-dimensional partitioning one?")
	say(3, "alice", "yes - queries one way, writes the other")
	say(4, "bob", "so no single node sees the whole write stream")
	say(5, "alice", "exactly, that is why it scales both ways")

	for i := 0; i < 2; i++ {
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			log.Fatal("timed out waiting for chat events")
		}
	}
	fmt.Println("\nfinal window (newest first):")
	for _, d := range alice.Result() {
		fmt.Printf("  %v: %v\n", d["from"], d["text"])
	}
}
