// Querycache: the Quaestor use case (paper §4/§7; VLDB 2017) — consistent
// query caching with InvaliDB-driven invalidation.
//
// Pull-based query results are cached at the application server. InvaliDB
// watches every cached query as a real-time query; the moment a write
// changes a result, the cache entry is invalidated, so reads are fast AND
// never stale beyond the notification latency.
//
//	go run ./examples/querycache
package main

import (
	"fmt"
	"log"
	"time"

	"invalidb"
	"invalidb/internal/quaestor"
)

func main() {
	dep, err := invalidb.Open(invalidb.Config{})
	if err != nil {
		log.Fatal(err)
	}
	defer dep.Close()
	srv := dep.Server

	for i := 0; i < 5; i++ {
		if err := srv.Insert("products", invalidb.Document{
			"_id": fmt.Sprintf("p%d", i), "category": "db", "stock": 10 * (i + 1),
		}); err != nil {
			log.Fatal(err)
		}
	}

	cache := quaestor.New(srv, quaestor.Options{})
	defer cache.Close()

	inStock := invalidb.Spec{
		Collection: "products",
		Filter: map[string]any{
			"category": "db",
			"stock":    map[string]any{"$gt": 0},
		},
	}

	read := func(label string) {
		start := time.Now()
		result, cached, err := cache.Query(inStock)
		if err != nil {
			log.Fatal(err)
		}
		src := "database"
		if cached {
			src = "cache"
		}
		fmt.Printf("%-28s %d products from %-8s (%v)\n", label, len(result), src, time.Since(start).Round(time.Microsecond))
	}

	read("cold read")
	read("warm read")
	read("warm read")

	// Sell out one product: the result changes, InvaliDB invalidates.
	if err := srv.Update("products", "p0", map[string]any{"$set": map[string]any{"stock": 0}}); err != nil {
		log.Fatal(err)
	}
	waitInvalidation(cache)
	read("after relevant write")
	read("warm again")

	// An irrelevant write (another category) must NOT invalidate.
	if err := srv.Insert("products", invalidb.Document{"_id": "x", "category": "gpu", "stock": 1}); err != nil {
		log.Fatal(err)
	}
	time.Sleep(200 * time.Millisecond)
	read("after irrelevant write")

	hits, misses, invalidations := cache.Stats()
	fmt.Printf("\nstats: hits=%d misses=%d invalidations=%d\n", hits, misses, invalidations)
	if invalidations == 0 {
		log.Fatal("expected at least one invalidation")
	}
}

func waitInvalidation(cache *quaestor.Cache) {
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		if _, _, inv := cache.Stats(); inv > 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	log.Fatal("invalidation never arrived")
}
