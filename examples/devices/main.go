// Devices: the full multi-process architecture of paper Figure 1 inside one
// program — a TCP event-layer broker (the Redis stand-in), an isolated
// InvaliDB cluster connected to it, an application server with a journaled
// database, a client gateway, and two end-user "devices" speaking the
// gateway's JSON protocol over TCP.
//
// Every hop here is a real network connection on loopback, so this is the
// deployment shape of the production system — just co-located.
//
//	go run ./examples/devices
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"invalidb/internal/appserver"
	"invalidb/internal/core"
	"invalidb/internal/eventlayer/tcp"
	"invalidb/internal/gateway"
	"invalidb/internal/query"
	"invalidb/internal/storage"

	"invalidb"
)

func main() {
	// 1. The event layer: a standalone broker process in production
	//    (cmd/eventlayerd).
	broker, err := tcp.Serve("127.0.0.1:0", tcp.ServerOptions{})
	must(err)
	defer broker.Close()
	fmt.Println("event layer broker on", broker.Addr())

	// 2. The InvaliDB cluster, reachable only through the broker
	//    (cmd/invalidb-server).
	clusterBus, err := tcp.Dial(broker.Addr(), tcp.ClientOptions{})
	must(err)
	defer clusterBus.Close()
	cluster, err := core.NewCluster(clusterBus, core.Options{QueryPartitions: 2, WritePartitions: 2})
	must(err)
	must(cluster.Start())
	defer cluster.Stop()
	fmt.Println("InvaliDB cluster: 2x2 matching grid")

	// 3. The application server with a journaled database and its client
	//    gateway (cmd/invalidb-appserver).
	wal := filepath.Join(os.TempDir(), fmt.Sprintf("invalidb-devices-%d.wal", os.Getpid()))
	defer os.Remove(wal)
	db := storage.Open(storage.Options{})
	journal, err := invalidb.OpenJournal(wal)
	must(err)
	defer journal.Close()
	db.AttachJournal(journal)

	serverBus, err := tcp.Dial(broker.Addr(), tcp.ClientOptions{})
	must(err)
	defer serverBus.Close()
	srv, err := appserver.New(db, serverBus, appserver.Options{})
	must(err)
	defer srv.Close()
	gw, err := gateway.Serve(srv, "127.0.0.1:0")
	must(err)
	defer gw.Close()
	fmt.Println("application server gateway on", gw.Addr())
	time.Sleep(100 * time.Millisecond) // let broker subscriptions settle

	// 4. Two end-user devices.
	phone, err := gateway.DialClient(gw.Addr())
	must(err)
	defer phone.Close()
	laptop, err := gateway.DialClient(gw.Addr())
	must(err)
	defer laptop.Close()

	inbox := query.Spec{
		Collection: "inbox",
		Filter:     map[string]any{"to": "ada", "unread": true},
	}
	phoneSub, err := phone.Subscribe(inbox)
	must(err)
	laptopSub, err := laptop.Subscribe(inbox)
	must(err)

	watch := func(name string, sub *gateway.ClientSub, done chan<- struct{}) {
		for frame := range sub.C() {
			switch frame.Type {
			case "initial":
				fmt.Printf("[%s] inbox loaded: %d unread\n", name, len(frame.Docs))
			case "add":
				fmt.Printf("[%s] new mail: %v\n", name, frame.Doc["subject"])
			case "remove":
				fmt.Printf("[%s] mail %s left the unread list\n", name, frame.Key)
				done <- struct{}{}
				return
			}
		}
	}
	done := make(chan struct{}, 2)
	go watch("phone ", phoneSub, done)
	go watch("laptop", laptopSub, done)

	// Mail arrives (through the laptop's connection, but any writer works).
	must(laptop.Insert("inbox", invalidb.Document{
		"_id": "m1", "to": "ada", "unread": true, "subject": "InvaliDB rocks",
	}))
	time.Sleep(80 * time.Millisecond)
	// Ada reads it on her phone: the unread view updates on both devices.
	must(phone.Update("inbox", "m1", map[string]any{"$set": map[string]any{"unread": false}}))

	for i := 0; i < 2; i++ {
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			log.Fatal("timed out waiting for device events")
		}
	}
	fmt.Printf("journal: %d records durable in %s\n", journal.Appended(), wal)
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
