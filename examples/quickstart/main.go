// Quickstart: a complete single-process InvaliDB deployment in ~50 lines.
//
// It opens the stack (document database, event layer, matching cluster,
// application server), subscribes to a real-time filter query, and prints
// the push-based change events that writes produce.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"invalidb"
)

func main() {
	dep, err := invalidb.Open(invalidb.Config{QueryPartitions: 2, WritePartitions: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer dep.Close()
	srv := dep.Server

	// Seed the collection through the application server: every write runs
	// against the database and its after-image streams to the cluster.
	if err := srv.Insert("articles", invalidb.Document{
		"_id": "baas", "title": "BaaS For Dummies", "year": 2017,
	}); err != nil {
		log.Fatal(err)
	}

	// A push-based real-time query: the same language as pull-based queries.
	sub, err := srv.Subscribe(invalidb.Spec{
		Collection: "articles",
		Filter:     map[string]any{"year": map[string]any{"$gte": 2017}},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sub.Close()

	// Writes are paced a little apart: after-images travel through parallel
	// write-ingestion nodes, and InvaliDB's staleness avoidance collapses
	// same-key writes that overtake each other into the final state — the
	// eventual consistency the paper defines. Spacing them out makes every
	// intermediate event observable.
	go func() {
		pace := func() { time.Sleep(50 * time.Millisecond) }
		pace()
		_ = srv.Insert("articles", invalidb.Document{"_id": "dbfun", "title": "DB Fun", "year": 2018})
		pace()
		_ = srv.Update("articles", "dbfun", map[string]any{"$set": map[string]any{"title": "DB Fun (2nd ed.)"}})
		pace()
		_ = srv.Update("articles", "baas", map[string]any{"$set": map[string]any{"year": 2015}}) // leaves the result
		pace()
		_ = srv.Delete("articles", "dbfun")
	}()

	deadline := time.After(3 * time.Second)
	for {
		select {
		case ev := <-sub.C():
			switch ev.Type {
			case invalidb.EventInitial:
				fmt.Printf("initial result: %d article(s)\n", len(ev.Docs))
				for _, d := range ev.Docs {
					fmt.Printf("  - %v (%v)\n", d["title"], d["year"])
				}
			case invalidb.EventError:
				log.Fatal(ev.Err)
			default:
				fmt.Printf("%-11s key=%-6s doc=%v\n", ev.Type, ev.Key, ev.Doc)
			}
			if ev.Type == invalidb.EventRemove && ev.Key == "dbfun" {
				fmt.Println("done: current result =", sub.Result())
				return
			}
		case <-deadline:
			log.Fatal("timed out waiting for events")
		}
	}
}
