// Leaderboard: a sorted real-time query with limit and offset — the query
// class that motivates InvaliDB's sorting stage and its auxiliary data
// (paper §5.2, Figure 3).
//
// The view shows ranks 2-4 of a game leaderboard (OFFSET 1 LIMIT 3, score
// descending). Score updates reorder players (changeIndex), push players in
// and out of the visible window, and — when enough players drop out — force
// a query maintenance error that the application server resolves with a
// transparent renewal.
//
//	go run ./examples/leaderboard
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"invalidb"
)

func main() {
	dep, err := invalidb.Open(invalidb.Config{Slack: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer dep.Close()
	srv := dep.Server

	players := []struct {
		name  string
		score int
	}{
		{"ada", 90}, {"bob", 80}, {"cyd", 70}, {"dee", 60}, {"eve", 50}, {"fox", 40}, {"gus", 30},
	}
	for _, p := range players {
		if err := srv.Insert("players", invalidb.Document{"_id": p.name, "score": p.score}); err != nil {
			log.Fatal(err)
		}
	}

	view := invalidb.Spec{
		Collection: "players",
		Sort:       []invalidb.SortKey{{Path: "score", Desc: true}},
		Offset:     1, // rank 1 is shown elsewhere
		Limit:      3,
	}
	sub, err := srv.Subscribe(view)
	if err != nil {
		log.Fatal(err)
	}
	defer sub.Close()
	<-sub.C() // initial
	show := func(label string) {
		var names []string
		for _, d := range sub.Result() {
			names = append(names, fmt.Sprintf("%v(%v)", d["_id"], d["score"]))
		}
		fmt.Printf("%-34s ranks 2-4: %s\n", label, strings.Join(names, " "))
	}
	show("initial")

	wait := func(cond func() bool) {
		deadline := time.Now().Add(3 * time.Second)
		for time.Now().Before(deadline) {
			if cond() {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		log.Fatal("leaderboard never converged")
	}
	resultIs := func(want ...string) func() bool {
		return func() bool {
			docs := sub.Result()
			if len(docs) != len(want) {
				return false
			}
			for i, d := range docs {
				if d["_id"] != want[i] {
					return false
				}
			}
			return true
		}
	}

	// cyd surges past bob: positions swap inside the window (changeIndex).
	if err := srv.Update("players", "cyd", map[string]any{"$inc": map[string]any{"score": 15}}); err != nil {
		log.Fatal(err)
	}
	wait(resultIs("cyd", "bob", "dee"))
	show("cyd +15 -> 85")

	// eve overtakes everyone: she enters at rank 1, shifting the window.
	if err := srv.Update("players", "eve", map[string]any{"$set": map[string]any{"score": 99}}); err != nil {
		log.Fatal(err)
	}
	wait(resultIs("ada", "cyd", "bob"))
	show("eve -> 99 (rank 1)")

	// Mass retirement: deleting several players exhausts the slack; the
	// sorting stage raises a maintenance error and the application server
	// renews the query transparently (§5.2).
	for _, name := range []string{"eve", "ada", "cyd", "bob"} {
		if err := srv.Delete("players", name); err != nil {
			log.Fatal(err)
		}
	}
	wait(resultIs("fox", "gus"))
	show("after retirements (renewed)")

	fmt.Println("events dropped by slow client:", sub.Dropped())
}
