package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroLeak requires every goroutine spawned in a library package to be tied
// to some termination signal. The system's long-lived components (brokers,
// bolts, coordinators, app servers) all follow the supervisor discipline
// from PR 2: a goroutine loops on a stop channel, a context, or signals a
// WaitGroup that Close/Stop waits on. A bare `go` whose body reaches none
// of those runs until process exit — it holds its captures live, keeps
// connections open after Close, and turns every test that starts the
// component into a leak.
//
// A spawn is considered tied (guarded) when the spawned body — or any
// same-package function it statically calls, transitively — performs a
// channel operation (send, receive, select, range, close), consults a
// context (Done, Err, Deadline), or touches a WaitGroup (Done, Wait).
//
// Out of scope: package main (process lifetime is the intended scope for
// cmd entry points) and dynamic spawns (`go cb()` on a function value) —
// the callee is unknown, so the analyzer stays silent rather than guessing.
// Deliberate fire-and-forget goroutines carry //invalidb:allow goroleak
// with a reason.
var GoroLeak = &Analyzer{
	Name:     "goroleak",
	Doc:      "require goroutines in library packages to be tied to a stop channel, context, or WaitGroup",
	Requires: []*Analyzer{CallGraphAnalyzer},
	Run:      runGoroLeak,
}

func runGoroLeak(pass *Pass) (any, error) {
	if pass.Pkg.Name() == "main" {
		return nil, nil
	}
	cg := pass.ResultOf[CallGraphAnalyzer].(*CallGraph)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			switch fun := ast.Unparen(g.Call.Fun).(type) {
			case *ast.FuncLit:
				if !goroGuarded(pass, cg, fun.Body, map[*types.Func]bool{}) {
					pass.Reportf(g.Pos(), "goroutine is not tied to a stop channel, context, or WaitGroup: it cannot be shut down (use the supervisor pattern, or document with //invalidb:allow goroleak <reason>)")
				}
			default:
				callee := StaticCallee(pass.TypesInfo, g.Call)
				if callee == nil {
					return true // dynamic spawn: unknown body
				}
				decl, ok := cg.Decls[callee]
				if !ok || decl.Body == nil {
					return true // cross-package body: out of scope
				}
				if !goroGuarded(pass, cg, decl.Body, map[*types.Func]bool{callee: true}) {
					pass.Reportf(g.Pos(), "goroutine %s is not tied to a stop channel, context, or WaitGroup: it cannot be shut down (use the supervisor pattern, or document with //invalidb:allow goroleak <reason>)", callee.Name())
				}
			}
			return true
		})
	}
	return nil, nil
}

// goroGuarded reports whether the body reaches a termination signal,
// looking through statically resolved calls into functions declared in the
// same package.
func goroGuarded(pass *Pass, cg *CallGraph, body ast.Node, visited map[*types.Func]bool) bool {
	info := pass.TypesInfo
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch x := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if t := info.Types[x.X].Type; t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					found = true
				}
			}
		case *ast.CallExpr:
			if guardCall(info, x) {
				found = true
				return false
			}
			callee := StaticCallee(info, x)
			if callee == nil || visited[callee] {
				return true
			}
			if decl, ok := cg.Decls[callee]; ok && decl.Body != nil {
				visited[callee] = true
				if goroGuarded(pass, cg, decl.Body, visited) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// guardCall recognizes calls that constitute a termination signal: the
// close builtin, context.Context consultation, and WaitGroup bookkeeping.
func guardCall(info *types.Info, call *ast.CallExpr) bool {
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "close" {
		if _, builtin := info.Uses[id].(*types.Builtin); builtin {
			return true
		}
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		switch sel.Sel.Name {
		case "Done", "Err", "Deadline":
			if tv, ok := info.Types[sel.X]; ok && tv.Type != nil && namedTypeIs(tv.Type, "context", "Context") {
				return true
			}
		}
	}
	if name, ok := methodOn(info, call, "sync", "WaitGroup"); ok {
		if name == "Done" || name == "Wait" {
			return true
		}
	}
	return false
}
