package analysis

import (
	"go/ast"
	"go/types"
)

// This file builds the package-local static call graph the interprocedural
// analyzers walk. Nodes are the functions and methods declared in the
// package under analysis; edges are syntactically static call sites — a
// direct call of a package-level function or a method call whose receiver
// type is concrete. Dynamic dispatch (interface method calls, calls of
// function values) produces no edge: those flows are covered by the
// cross-package function summaries where the target resolves statically,
// and are otherwise out of scope for this suite, exactly as in x/tools'
// static call graph.

// CallSite is one static call inside a declared function.
type CallSite struct {
	// Call is the call expression.
	Call *ast.CallExpr
	// Callee is the statically resolved target. It may be declared in
	// this package (then CallGraph.Decls has its body) or in an imported
	// one (then cross-package facts may describe it).
	Callee *types.Func
	// InLiteral marks sites that do not run in the declaring function's
	// execution context: calls lexically inside a nested function literal,
	// and the spawned call of a go statement. The lock-discipline
	// propagation skips them — a goroutine or callback blocking does not
	// stall the caller's locks — while the allocation propagation keeps
	// them (the closure, its captures, or the new goroutine are allocated
	// either way).
	InLiteral bool
}

// CallGraph is the per-package call graph: every declared function with
// its body and its statically resolved call sites.
type CallGraph struct {
	// Decls maps each function object declared in this package to its
	// declaration.
	Decls map[*types.Func]*ast.FuncDecl
	// Calls lists the static call sites inside each declared function
	// (including sites inside nested function literals, marked InLiteral).
	Calls map[*types.Func][]CallSite
}

// CallGraphAnalyzer builds the package call graph. It reports nothing
// itself; the interprocedural analyzers consume its result through
// Pass.ResultOf.
var CallGraphAnalyzer = &Analyzer{
	Name: "callgraph",
	Doc:  "build the package-local static call graph (internal requirement)",
	Run:  buildCallGraph,
}

func buildCallGraph(pass *Pass) (any, error) {
	cg := &CallGraph{
		Decls: map[*types.Func]*ast.FuncDecl{},
		Calls: map[*types.Func][]CallSite{},
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func)
			if !ok {
				continue
			}
			cg.Decls[obj] = fn
			// The spawned call of a go statement executes on the new
			// goroutine, not in fn's context.
			goCalls := map[*ast.CallExpr]bool{}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				if g, ok := n.(*ast.GoStmt); ok {
					goCalls[g.Call] = true
				}
				return true
			})
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.FuncLit:
					// Everything under a literal is its execution context:
					// collect those sites with InLiteral set and prune the
					// outer walk so nothing is recorded twice.
					ast.Inspect(x.Body, func(m ast.Node) bool {
						if call, ok := m.(*ast.CallExpr); ok {
							if callee := StaticCallee(pass.TypesInfo, call); callee != nil {
								cg.Calls[obj] = append(cg.Calls[obj], CallSite{Call: call, Callee: callee, InLiteral: true})
							}
						}
						return true
					})
					return false
				case *ast.CallExpr:
					if callee := StaticCallee(pass.TypesInfo, x); callee != nil {
						cg.Calls[obj] = append(cg.Calls[obj], CallSite{Call: x, Callee: callee, InLiteral: goCalls[x]})
					}
				}
				return true
			})
		}
	}
	return cg, nil
}

// StaticCallee resolves a call expression to its target function when the
// target is syntactically fixed: a package-level function (possibly
// imported) or a method on a concrete receiver type. Interface method
// calls, calls of function-typed values, conversions and builtin calls
// resolve to nil.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, ok := info.Uses[id].(*types.Func)
	if !ok {
		return nil
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		if _, ok := t.Underlying().(*types.Interface); ok {
			return nil // dynamic dispatch
		}
	}
	return fn
}
