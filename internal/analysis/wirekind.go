package analysis

import (
	"go/ast"
	"go/constant"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

// WireKind enforces the four-site registration protocol for envelope wire
// kinds. Adding a kind to the protocol means touching four places that the
// compiler does not connect: the encode switch, the decode switch, the fuzz
// seed corpus, and the per-kind metric families. PR 7 shipped with the
// resize kinds present in the codec but missing from the fuzz corpus — the
// exact class of silent gap this analyzer closes.
//
// In any package declaring a wireKindNames table, every named kind must
// have:
//
//   - a case in AppendEnvelope (the binary encoder);
//   - a case in decodeBinaryEnvelope (the binary decoder);
//   - a case in wireKindTag (the kind-string → tag mapping);
//   - at least one fuzz seed file testdata/fuzz/FuzzEnvelopeWire/seed-<kind>-*;
//   - wire.encode.<kind> and wire.decode.<kind> metric families — satisfied
//     by the blanket loop that indexes wireKindNames while concatenating
//     onto a "wire.encode." / "wire.decode." prefix, or by per-kind
//     constant metric names.
//
// Diagnostics anchor on the kind's entry in wireKindNames: that is the
// registration the other four sites must match.
var WireKind = &Analyzer{
	Name: "wirekind",
	Doc:  "require every wire kind to have encode/decode cases, a fuzz seed and metric families",
	Run:  runWireKind,
}

// wireKindEntry is one named kind in a wireKindNames table.
type wireKindEntry struct {
	tag  int64
	name string
	pos  token.Pos
}

func runWireKind(pass *Pass) (any, error) {
	kinds := wireKindTable(pass)
	if len(kinds) == 0 {
		return nil, nil // package does not declare a wire protocol
	}
	funcs := topLevelFuncs(pass.Files)
	encTags := caseConstInts(pass, funcs["AppendEnvelope"])
	decTags := caseConstInts(pass, funcs["decodeBinaryEnvelope"])
	tagKinds := caseConstStrings(pass, funcs["wireKindTag"])
	encAll, decAll, perKind := wireMetricSites(pass)

	for _, k := range kinds {
		if funcs["AppendEnvelope"] != nil && !encTags[k.tag] {
			pass.Reportf(k.pos, "wire kind %q (tag %d) has no encode case in AppendEnvelope", k.name, k.tag)
		}
		if funcs["decodeBinaryEnvelope"] != nil && !decTags[k.tag] {
			pass.Reportf(k.pos, "wire kind %q (tag %d) has no decode case in decodeBinaryEnvelope", k.name, k.tag)
		}
		if funcs["wireKindTag"] != nil && !tagKinds[k.name] {
			pass.Reportf(k.pos, "wire kind %q has no mapping case in wireKindTag", k.name)
		}
		if !encAll && !perKind["wire.encode."+k.name] {
			pass.Reportf(k.pos, "wire kind %q has no wire.encode.%s metric family", k.name, k.name)
		}
		if !decAll && !perKind["wire.decode."+k.name] {
			pass.Reportf(k.pos, "wire kind %q has no wire.decode.%s metric family", k.name, k.name)
		}
		if pass.Dir != "" && !hasFuzzSeed(pass.Dir, k.name) {
			pass.Reportf(k.pos, "wire kind %q has no fuzz seed (want testdata/fuzz/FuzzEnvelopeWire/seed-%s-*)", k.name, strings.ToLower(k.name))
		}
	}
	return nil, nil
}

// wireKindTable extracts the (tag, kind, position) entries from the
// package's wireKindNames composite literal, resolving keys and values
// through constant folding so wireTag* and Kind* names work.
func wireKindTable(pass *Pass) []wireKindEntry {
	var out []wireKindEntry
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if name.Name != "wireKindNames" || i >= len(vs.Values) {
						continue
					}
					lit, ok := vs.Values[i].(*ast.CompositeLit)
					if !ok {
						continue
					}
					for _, elt := range lit.Elts {
						kv, ok := elt.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						tagV := pass.TypesInfo.Types[kv.Key].Value
						nameV := pass.TypesInfo.Types[kv.Value].Value
						if tagV == nil || nameV == nil || nameV.Kind() != constant.String {
							continue
						}
						tag, ok := constant.Int64Val(constant.ToInt(tagV))
						if !ok {
							continue
						}
						if s := constant.StringVal(nameV); s != "" {
							out = append(out, wireKindEntry{tag: tag, name: s, pos: kv.Pos()})
						}
					}
				}
			}
		}
	}
	return out
}

func topLevelFuncs(files []*ast.File) map[string]*ast.FuncDecl {
	out := map[string]*ast.FuncDecl{}
	for _, f := range files {
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Recv == nil {
				out[fn.Name.Name] = fn
			}
		}
	}
	return out
}

// caseConstInts collects the constant integer values of every switch case
// expression in fn.
func caseConstInts(pass *Pass, fn *ast.FuncDecl) map[int64]bool {
	out := map[int64]bool{}
	eachCaseExpr(fn, func(e ast.Expr) {
		if v := pass.TypesInfo.Types[e].Value; v != nil {
			if n, ok := constant.Int64Val(constant.ToInt(v)); ok {
				out[n] = true
			}
		}
	})
	return out
}

// caseConstStrings collects the constant string values of every switch
// case expression in fn.
func caseConstStrings(pass *Pass, fn *ast.FuncDecl) map[string]bool {
	out := map[string]bool{}
	eachCaseExpr(fn, func(e ast.Expr) {
		if v := pass.TypesInfo.Types[e].Value; v != nil && v.Kind() == constant.String {
			out[constant.StringVal(v)] = true
		}
	})
	return out
}

func eachCaseExpr(fn *ast.FuncDecl, visit func(ast.Expr)) {
	if fn == nil || fn.Body == nil {
		return
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if cc, ok := n.(*ast.CaseClause); ok {
			for _, e := range cc.List {
				visit(e)
			}
		}
		return true
	})
}

// wireMetricSites scans the package for metric-name construction. It
// reports whether a blanket family exists per direction — a function that
// both indexes wireKindNames and concatenates onto the direction's prefix
// covers every kind at once — and collects per-kind constant names
// ("wire.encode.write...") for protocols registering families one by one.
func wireMetricSites(pass *Pass) (encAll, decAll bool, perKind map[string]bool) {
	perKind = map[string]bool{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			indexed := false
			encPrefix, decPrefix := false, false
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				switch x := n.(type) {
				case *ast.IndexExpr:
					if id, ok := ast.Unparen(x.X).(*ast.Ident); ok && id.Name == "wireKindNames" {
						indexed = true
					}
				case *ast.BasicLit:
					if x.Kind != token.STRING {
						return true
					}
					v := pass.TypesInfo.Types[x].Value
					if v == nil {
						return true
					}
					s := constant.StringVal(v)
					switch {
					case s == "wire.encode.":
						encPrefix = true
					case s == "wire.decode.":
						decPrefix = true
					case strings.HasPrefix(s, "wire.encode.") || strings.HasPrefix(s, "wire.decode."):
						// Trim a trailing ".messages"/".bytes" suffix: the
						// family is identified by its first three segments.
						seg := strings.SplitN(s, ".", 4)
						if len(seg) >= 3 {
							perKind[seg[0]+"."+seg[1]+"."+seg[2]] = true
						}
					}
				}
				return true
			})
			if indexed && encPrefix {
				encAll = true
			}
			if indexed && decPrefix {
				decAll = true
			}
		}
	}
	return encAll, decAll, perKind
}

// hasFuzzSeed reports whether at least one seed file for the kind exists in
// the package's FuzzEnvelopeWire corpus. Seed files are named with the
// lowercased kind ("partitionMap" → seed-partitionmap-*).
func hasFuzzSeed(dir, kind string) bool {
	pattern := filepath.Join(dir, "testdata", "fuzz", "FuzzEnvelopeWire", "seed-"+strings.ToLower(kind)+"-*")
	matches, err := filepath.Glob(pattern)
	if err != nil {
		return true // unreadable corpus: do not guess
	}
	for _, m := range matches {
		if fi, err := os.Stat(m); err == nil && !fi.IsDir() {
			return true
		}
	}
	return false
}
