package analysis

import (
	"go/ast"
	"go/types"
)

// PooledLifecycle guards the sync.Pool tuple-recycling protocol from PR 1:
// a pooled value must be drawn for a reason, must not be touched after it
// is returned, and must not be returned twice. Violations corrupt the pool
// silently — a tuple recycled while a bolt still holds it is handed to a
// concurrent deliver and mutated under the first holder, the bug class the
// supervisor's inflight bookkeeping exists to avoid.
//
// Checks (intra-procedural, statement order within each function):
//   - a pool.Get() result must be used, not discarded or bound to _;
//   - after pool.Put(x) — or a call to a recycle/release helper that puts —
//     the same variable must not be used again;
//   - pool.Put(x) must not run twice on the same variable in
//     straight-line code;
//   - a locally drawn pooled value must either be handed off (passed to a
//     call, sent to a channel, stored, or returned) or be Put back in the
//     same function.
var PooledLifecycle = &Analyzer{
	Name: "pooledlifecycle",
	Doc:  "enforce sync.Pool Get/Put lifecycle: no discarded Gets, no use-after-Put, no double-Put, no leaked locals",
	Run:  runPooledLifecycle,
}

// recycleHelpers are in-repo wrappers that return their argument to a
// pool; a call counts as a Put of the argument.
var recycleHelpers = map[string]bool{
	"recycleTuple": true,
}

func runPooledLifecycle(pass *Pass) (any, error) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkPooledLifecycle(pass, fn)
		}
	}
	return nil, nil
}

// poolMethod recognizes calls of the form p.Get() / p.Put(x) on sync.Pool.
func poolMethod(info *types.Info, call *ast.CallExpr) (string, bool) {
	name, ok := methodOn(info, call, "sync", "Pool")
	if !ok {
		return "", false
	}
	if name == "Get" || name == "Put" {
		return name, true
	}
	return "", false
}

// putArgObject resolves the variable object being returned to a pool by a
// Put call or a recycle helper, if the argument is a plain identifier.
func putArgObject(info *types.Info, call *ast.CallExpr) types.Object {
	var arg ast.Expr
	if name, ok := poolMethod(info, call); ok && name == "Put" && len(call.Args) == 1 {
		arg = call.Args[0]
	} else if id, ok := call.Fun.(*ast.Ident); ok && recycleHelpers[id.Name] && len(call.Args) == 1 {
		arg = call.Args[0]
	}
	if arg == nil {
		return nil
	}
	if id, ok := unwrapIdent(arg); ok {
		return info.Uses[id]
	}
	return nil
}

func unwrapIdent(e ast.Expr) (*ast.Ident, bool) {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x, true
		case *ast.ParenExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		default:
			return nil, false
		}
	}
}

func checkPooledLifecycle(pass *Pass, fn *ast.FuncDecl) {
	info := pass.TypesInfo
	// Pass 1: discarded Get results, and Get results bound to locals that
	// neither escape nor get Put back.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if name, ok := poolMethod(info, call); ok && name == "Get" {
					pass.Reportf(call.Pos(), "sync.Pool Get result discarded: the pooled value leaks from the pool's accounting")
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range s.Rhs {
				call, ok := unwrapCall(rhs)
				if !ok {
					continue
				}
				if name, ok := poolMethod(info, call); ok && name == "Get" && i < len(s.Lhs) {
					if id, ok := s.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
						pass.Reportf(call.Pos(), "sync.Pool Get result assigned to _: the pooled value leaks from the pool's accounting")
					}
				}
			}
		}
		return true
	})
	checkLocalPooledValues(pass, fn)
	// Pass 2: use-after-Put and double-Put, in statement order per block.
	checkPutOrder(pass, fn.Body)
}

func unwrapCall(e ast.Expr) (*ast.CallExpr, bool) {
	switch x := e.(type) {
	case *ast.CallExpr:
		return x, true
	case *ast.TypeAssertExpr:
		if c, ok := x.X.(*ast.CallExpr); ok {
			return c, true
		}
	}
	return nil, false
}

// checkPutOrder walks one block's statements in order; once a variable is
// Put, any later mention in the block (or nested blocks) is a
// use-after-Put, and a second Put is a double-Put.
func checkPutOrder(pass *Pass, body *ast.BlockStmt) {
	info := pass.TypesInfo
	put := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false // separate execution context
		case *ast.DeferStmt:
			return false // runs at return, after every ordinary use
		case *ast.CallExpr:
			if obj := putArgObject(info, x); obj != nil {
				if put[obj] {
					pass.Reportf(x.Pos(), "%s returned to the pool twice", obj.Name())
				}
				put[obj] = true
				return false
			}
		case *ast.Ident:
			if obj := info.Uses[x]; obj != nil && put[obj] {
				pass.Reportf(x.Pos(), "use of %s after it was returned to the pool", obj.Name())
			}
		}
		return true
	})
}

// checkLocalPooledValues flags variables initialized from pool.Get that
// are only ever mutated locally: without a Put, a handoff (call argument,
// channel send, store into a field/map/slice, or return), the value
// silently leaves the pooled population.
func checkLocalPooledValues(pass *Pass, fn *ast.FuncDecl) {
	info := pass.TypesInfo
	// Collect Get-initialized locals.
	locals := map[types.Object]*ast.CallExpr{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		s, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range s.Rhs {
			call, ok := unwrapCall(rhs)
			if !ok {
				continue
			}
			if name, ok := poolMethod(info, call); ok && name == "Get" && i < len(s.Lhs) {
				if id, ok := s.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
					if obj := info.Defs[id]; obj != nil {
						locals[obj] = call
					} else if obj := info.Uses[id]; obj != nil {
						locals[obj] = call
					}
				}
			}
		}
		return true
	})
	if len(locals) == 0 {
		return
	}
	// A local is settled if it is Put, or escapes this function.
	settled := map[types.Object]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if obj := putArgObject(info, x); obj != nil {
				settled[obj] = true
				return true
			}
			for _, arg := range x.Args {
				if id, ok := unwrapIdent(arg); ok {
					if obj := info.Uses[id]; obj != nil {
						settled[obj] = true
					}
				}
			}
		case *ast.SendStmt:
			if id, ok := unwrapIdent(x.Value); ok {
				if obj := info.Uses[id]; obj != nil {
					settled[obj] = true
				}
			}
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				if id, ok := unwrapIdent(r); ok {
					if obj := info.Uses[id]; obj != nil {
						settled[obj] = true
					}
				}
			}
		case *ast.AssignStmt:
			// Storing the pointer anywhere (field, map, slice, another
			// variable) counts as a handoff.
			for _, rhs := range x.Rhs {
				if id, ok := unwrapIdent(rhs); ok {
					if obj := info.Uses[id]; obj != nil {
						settled[obj] = true
					}
				}
			}
		}
		return true
	})
	for obj, call := range locals {
		if !settled[obj] {
			pass.Reportf(call.Pos(), "pooled value %s is neither returned to the pool nor handed off on any path", obj.Name())
		}
	}
}
