package analysis

import (
	"fmt"
	"go/types"
	"reflect"
)

// factStore is the cross-package fact table for one driver session. It is
// keyed by (package path, object path, fact type) rather than object
// identity: every explicitly loaded target is type-checked in its own
// universe, so the *types.Func an importer sees for core.AppendEnvelope is
// not the same pointer as the one core's own pass defined — but both render
// to the same stable path.
type factStore struct {
	objects map[factKey]Fact
}

type factKey struct {
	pkg  string
	obj  string
	typ  reflect.Type
}

func newFactStore() *factStore {
	return &factStore{objects: map[factKey]Fact{}}
}

// objectPath renders a package-level object as a stable in-package path:
// "Name" for package-level functions, vars and types, "Type.Method" for
// methods (through pointer receivers). Objects with no such path (locals,
// imported-package names) return "".
func objectPath(obj types.Object) string {
	if obj == nil || obj.Pkg() == nil {
		return ""
	}
	if fn, ok := obj.(*types.Func); ok {
		sig, ok := fn.Type().(*types.Signature)
		if ok && sig.Recv() != nil {
			t := sig.Recv().Type()
			if ptr, ok := t.(*types.Pointer); ok {
				t = ptr.Elem()
			}
			named, ok := t.(*types.Named)
			if !ok {
				return "" // method on an unnamed receiver (interface literal)
			}
			return fmt.Sprintf("%s.%s", named.Obj().Name(), fn.Name())
		}
		return fn.Name()
	}
	// Package-scope non-function objects only.
	if obj.Parent() != nil && obj.Parent() == obj.Pkg().Scope() {
		return obj.Name()
	}
	return ""
}

func (s *factStore) export(obj types.Object, fact Fact) {
	path := objectPath(obj)
	if path == "" {
		return
	}
	s.objects[factKey{obj.Pkg().Path(), path, reflect.TypeOf(fact)}] = fact
}

// lookup copies a stored fact of *fact's concrete type into fact. fact
// must be a non-nil pointer, like x/tools' ImportObjectFact contract.
func (s *factStore) lookup(obj types.Object, fact Fact) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	path := objectPath(obj)
	if path == "" {
		return false
	}
	got, ok := s.objects[factKey{obj.Pkg().Path(), path, reflect.TypeOf(fact)}]
	if !ok {
		return false
	}
	reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(got).Elem())
	return true
}
