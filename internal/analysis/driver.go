package analysis

import (
	"fmt"
	"go/ast"
	"sort"
	"strings"
)

// Run loads the packages matching patterns and applies every analyzer,
// returning the surviving diagnostics sorted by position. Packages are
// analyzed in dependency order so facts exported by a dependency's pass
// (function summaries, below) are visible to its dependents; within one
// package, analyzers run after the analyzers they Require. Diagnostics on
// lines carrying (or directly below) an //invalidb:allow directive for the
// reporting analyzer are suppressed.
func Run(patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	pkgs, err := Load(patterns)
	if err != nil {
		return nil, err
	}
	facts := newFactStore()
	var all []Diagnostic
	for _, pkg := range pkgs {
		diags, err := runPackage(pkg, analyzers, facts)
		if err != nil {
			return nil, err
		}
		all = append(all, diags...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i].Pos, all[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return all[i].Analyzer < all[j].Analyzer
	})
	return all, nil
}

// RunPackage applies the analyzers to one loaded package in isolation (no
// cross-package facts) and filters the diagnostics through the package's
// //invalidb:allow directives. The fixture tests use it.
func RunPackage(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return runPackage(pkg, analyzers, newFactStore())
}

// expandRequires returns the analyzers plus their transitive requirements
// in a valid execution order (requirements first).
func expandRequires(analyzers []*Analyzer) []*Analyzer {
	var out []*Analyzer
	seen := map[*Analyzer]bool{}
	var visit func(a *Analyzer)
	visit = func(a *Analyzer) {
		if seen[a] {
			return
		}
		seen[a] = true
		for _, req := range a.Requires {
			visit(req)
		}
		out = append(out, a)
	}
	for _, a := range analyzers {
		visit(a)
	}
	return out
}

func runPackage(pkg *Package, analyzers []*Analyzer, facts *factStore) ([]Diagnostic, error) {
	allowed := collectAllows(pkg)
	requested := map[*Analyzer]bool{}
	for _, a := range analyzers {
		requested[a] = true
	}
	results := map[*Analyzer]any{}
	var diags []Diagnostic
	for _, a := range expandRequires(analyzers) {
		// Requirement-only analyzers (call graph, summaries) report into a
		// discard list: they exist to produce results and facts, and any
		// diagnostics they might emit were not asked for.
		sink := &diags
		if !requested[a] {
			sink = &[]Diagnostic{}
		}
		pass := &Pass{
			Analyzer:    a,
			Fset:        pkg.Fset,
			Files:       pkg.Files,
			Pkg:         pkg.Types,
			PkgPath:     pkg.PkgPath,
			Dir:         pkg.Dir,
			TypesInfo:   pkg.Info,
			ResultOf:    results,
			diagnostics: sink,
			allowed:     allowed,
			facts:       facts,
		}
		res, err := a.Run(pass)
		if err != nil {
			return nil, fmt.Errorf("%s: %s: %v", pkg.PkgPath, a.Name, err)
		}
		results[a] = res
	}
	kept := diags[:0]
	for _, d := range diags {
		if !allowed[allowKey{d.Pos.Filename, d.Pos.Line, d.Analyzer}] {
			kept = append(kept, d)
		}
	}
	return kept, nil
}

// allowKey identifies one suppressed (file, line, analyzer) site.
type allowKey struct {
	file     string
	line     int
	analyzer string
}

// collectAllows indexes every //invalidb:allow directive in the package.
// A directive on line L suppresses the named analyzer on L (same-line
// trailing comment) and on L+1 (standalone comment above the construct).
func collectAllows(pkg *Package) map[allowKey]bool {
	out := map[allowKey]bool{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, args, ok := parseDirective(c.Text)
				if !ok || name != directiveAllow {
					continue
				}
				fields := strings.Fields(args)
				if len(fields) == 0 {
					continue // the directive analyzer reports this
				}
				pos := pkg.Fset.Position(c.Pos())
				out[allowKey{pos.Filename, pos.Line, fields[0]}] = true
				out[allowKey{pos.Filename, pos.Line + 1, fields[0]}] = true
			}
		}
	}
	return out
}

// inspectFiles walks every file in the pass with fn (pre-order;
// returning false prunes the subtree).
func inspectFiles(files []*ast.File, fn func(ast.Node) bool) {
	for _, f := range files {
		ast.Inspect(f, fn)
	}
}
