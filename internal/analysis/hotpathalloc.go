package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotpathAlloc flags allocating constructs inside functions annotated
// //invalidb:hotpath. The zero-allocation routing and matching path is the
// foundation of PR 1's latency win (1.16ms → 36µs end-to-end); this
// analyzer keeps it machine-checked instead of reviewer-checked.
//
// Flagged constructs:
//   - calls into the fmt print family, errors.New, strings.Join/Repeat,
//     strconv.Quote/Format* — formatting always allocates;
//   - string concatenation with non-constant operands;
//   - make() and new();
//   - pointer-to-composite literals (&T{...}) and map/slice/func literals —
//     value struct literals are allowed (they live on the stack);
//   - string([]byte) / []byte(string) conversions, except the
//     compiler-optimized m[string(b)] map-index form;
//   - interface boxing: passing or assigning a non-pointer concrete value
//     where an interface is expected;
//   - method values (x.M used as a value captures a closure).
//
// The check is interprocedural: a call from a hot-path function into any
// function whose summary (FuncSummaries) reaches an allocating construct —
// through any chain of statically resolved calls, across package
// boundaries — is reported at the call site, naming the underlying
// operation. Callees annotated //invalidb:hotpath are exempt at call
// sites: their own bodies are checked directly. Operations excused with
// //invalidb:allow do not propagate.
//
// append() is deliberately not flagged: hot-path code appends into
// preallocated scratch slices whose amortized growth is part of the design.
var HotpathAlloc = &Analyzer{
	Name:     "hotpathalloc",
	Doc:      "forbid allocating constructs in //invalidb:hotpath functions, transitively through calls",
	Requires: []*Analyzer{CallGraphAnalyzer, FuncSummaries},
	Run:      runHotpathAlloc,
}

// allocFmtFuncs are package-level functions that always allocate.
var allocFmtFuncs = map[string]map[string]bool{
	"fmt": {
		"Sprint": true, "Sprintf": true, "Sprintln": true,
		"Errorf": true, "Fprintf": true, "Fprint": true, "Fprintln": true,
		"Appendf": true, "Append": true, "Appendln": true,
	},
	"errors":  {"New": true},
	"strings": {"Join": true, "Repeat": true, "ToLower": true, "ToUpper": true, "Split": true},
	"strconv": {"Quote": true, "FormatInt": true, "FormatUint": true, "FormatFloat": true, "Itoa": true},
}

func runHotpathAlloc(pass *Pass) (any, error) {
	cg := pass.ResultOf[CallGraphAnalyzer].(*CallGraph)
	sums := pass.ResultOf[FuncSummaries].(Summaries)
	for _, fn := range pass.HotpathFuncs() {
		if fn.Body == nil {
			continue
		}
		collectAllocOps(pass.TypesInfo, fn, func(pos token.Pos, _ string, full string) {
			pass.Reportf(pos, "%s", full)
		})
		obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func)
		if !ok {
			continue
		}
		reported := map[*types.Func]bool{}
		for _, site := range cg.Calls[obj] {
			if reported[site.Callee] || isDirectAllocCall(pass.TypesInfo, site.Call) {
				continue // the direct-op walk already reported this site
			}
			s := summaryFor(pass, sums, site.Callee)
			if s == nil || s.Hotpath || len(s.Allocs) == 0 {
				continue
			}
			reported[site.Callee] = true
			pass.Reportf(site.Call.Pos(), "call to %s allocates in hot path: %s", site.Callee.Name(), s.Allocs[0].chain())
		}
	}
	return nil, nil
}

// isDirectAllocCall reports whether the call is itself one of the known
// allocating stdlib helpers (already reported by the direct-op walk).
func isDirectAllocCall(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || obj.Pkg() == nil {
		return false
	}
	names, ok := allocFmtFuncs[obj.Pkg().Path()]
	return ok && names[obj.Name()] && obj.Type().(*types.Signature).Recv() == nil
}

// allocEmit receives one allocating construct: its position, a compact
// label for summaries ("make", "string concatenation") and the full
// diagnostic message for direct reporting.
type allocEmit func(pos token.Pos, what, full string)

// collectAllocOps walks one function body and emits every allocating
// construct. It is shared between the hot-path reporting pass (which runs
// it over //invalidb:hotpath functions only) and the function summarizer
// (which runs it over every function so callers can see callee effects).
func collectAllocOps(info *types.Info, fn *ast.FuncDecl, emit allocEmit) {
	if fn.Body == nil {
		return
	}
	exemptConv := mapIndexConversions(info, fn.Body)
	// parents tracks the path so conversions can see their context
	// (map-index string(b) is allocation-free).
	var parents []ast.Node
	var visit func(n ast.Node) bool
	visit = func(n ast.Node) bool {
		if n == nil {
			if len(parents) > 0 {
				parents = parents[:len(parents)-1]
			}
			return true
		}
		switch x := n.(type) {
		case *ast.CallExpr:
			collectAllocCall(info, x, exemptConv, emit)
		case *ast.BinaryExpr:
			if x.Op == token.ADD && isStringType(info, x) && !isConstExpr(info, x) {
				emit(x.OpPos, "string concatenation", "string concatenation allocates in hot path")
			}
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if _, ok := x.X.(*ast.CompositeLit); ok {
					emit(x.Pos(), "&composite literal", "&composite literal escapes to the heap in hot path")
				}
			}
		case *ast.CompositeLit:
			if t := info.Types[x].Type; t != nil {
				switch t.Underlying().(type) {
				case *types.Map:
					emit(x.Pos(), "map literal", "map literal allocates in hot path")
				case *types.Slice:
					emit(x.Pos(), "slice literal", "slice literal allocates in hot path")
				}
			}
		case *ast.FuncLit:
			emit(x.Pos(), "function literal", "function literal allocates a closure in hot path")
			parents = append(parents, n)
			return true
		case *ast.SelectorExpr:
			if sel, ok := info.Selections[x]; ok && sel.Kind() == types.MethodVal {
				if !isCallFun(parents, x) {
					emit(x.Pos(), "method value "+x.Sel.Name,
						"method value "+x.Sel.Name+" allocates a closure in hot path")
				}
			}
		}
		parents = append(parents, n)
		return true
	}
	ast.Inspect(fn.Body, visit)
	collectBoxingOps(info, fn, emit)
}

// isCallFun reports whether sel is the function operand of its parent call
// (an ordinary method call, which does not allocate).
func isCallFun(parents []ast.Node, sel *ast.SelectorExpr) bool {
	if len(parents) == 0 {
		return false
	}
	call, ok := parents[len(parents)-1].(*ast.CallExpr)
	return ok && call.Fun == sel
}

// mapIndexConversions collects string([]byte) conversions used directly as
// a map index — the compiler elides that allocation, so the conversion is
// exempt from the hot-path rule.
func mapIndexConversions(info *types.Info, body ast.Node) map[*ast.CallExpr]bool {
	out := map[*ast.CallExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		idx, ok := n.(*ast.IndexExpr)
		if !ok {
			return true
		}
		xt := info.Types[idx.X].Type
		if xt == nil {
			return true
		}
		if _, ok := xt.Underlying().(*types.Map); !ok {
			return true
		}
		if call, ok := idx.Index.(*ast.CallExpr); ok {
			if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
				out[call] = true
			}
		}
		return true
	})
	return out
}

func collectAllocCall(info *types.Info, call *ast.CallExpr, exemptConv map[*ast.CallExpr]bool, emit allocEmit) {
	// Known allocating stdlib helpers.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if obj, ok := info.Uses[sel.Sel].(*types.Func); ok && obj.Pkg() != nil {
			if names, ok := allocFmtFuncs[obj.Pkg().Path()]; ok && names[obj.Name()] &&
				obj.Type().(*types.Signature).Recv() == nil {
				what := obj.Pkg().Name() + "." + obj.Name()
				emit(call.Pos(), what, what+" allocates in hot path")
				return
			}
		}
	}
	// Builtins and conversions.
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		switch fun.Name {
		case "make":
			if isBuiltin(info, fun) {
				emit(call.Pos(), "make", "make allocates in hot path")
			}
		case "new":
			if isBuiltin(info, fun) {
				emit(call.Pos(), "new", "new allocates in hot path")
			}
		}
	}
	collectStringConversion(info, call, exemptConv, emit)
}

// collectStringConversion flags string<->[]byte conversions. The map-index
// form m[string(b)] is recognized by the compiler and does not allocate,
// so it is exempt.
func collectStringConversion(info *types.Info, call *ast.CallExpr, exemptConv map[*ast.CallExpr]bool, emit allocEmit) {
	if len(call.Args) != 1 || exemptConv[call] {
		return
	}
	tv, ok := info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return
	}
	dst := tv.Type.Underlying()
	argT := info.Types[call.Args[0]].Type
	if argT == nil {
		return
	}
	src := argT.Underlying()
	if isStringByteConv(dst, src) {
		emit(call.Pos(), "string/[]byte conversion",
			"string/[]byte conversion allocates in hot path (map-index lookups m[string(b)] are exempt)")
	}
}

func isStringByteConv(dst, src types.Type) bool {
	return (isString(dst) && isByteSlice(src)) || (isByteSlice(dst) && isString(src))
}

func isString(t types.Type) bool {
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	s, ok := t.(*types.Slice)
	if !ok {
		return false
	}
	e, ok := s.Elem().Underlying().(*types.Basic)
	return ok && e.Kind() == types.Uint8
}

func isStringType(info *types.Info, e ast.Expr) bool {
	t := info.Types[e].Type
	return t != nil && isString(t.Underlying())
}

func isConstExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}

func isBuiltin(info *types.Info, id *ast.Ident) bool {
	_, ok := info.Uses[id].(*types.Builtin)
	return ok
}

// collectBoxingOps flags implicit conversions of non-pointer concrete
// values to interface types in call arguments and assignments — the
// boxing allocates an escaping copy of the value.
func collectBoxingOps(info *types.Info, fn *ast.FuncDecl, emit allocEmit) {
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		tv, ok := info.Types[call.Fun]
		if ok && tv.IsType() {
			return true // conversion, handled elsewhere
		}
		sig, ok := tv.Type.(*types.Signature)
		if !ok {
			return true
		}
		params := sig.Params()
		for i, arg := range call.Args {
			var paramT types.Type
			switch {
			case sig.Variadic() && i >= params.Len()-1:
				if i == params.Len()-1 && call.Ellipsis != token.NoPos {
					paramT = params.At(params.Len() - 1).Type()
				} else {
					paramT = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
				}
			case i < params.Len():
				paramT = params.At(i).Type()
			}
			if paramT == nil {
				continue
			}
			if boxes(info, arg, paramT) {
				argT := info.Types[arg].Type
				emit(arg.Pos(), "interface boxing",
					"argument boxes "+argT.String()+" into interface "+paramT.String()+" (allocates) in hot path")
			}
		}
		return true
	})
}

// boxes reports whether passing arg to a parameter of type paramT converts
// a non-pointer concrete value to an interface.
func boxes(info *types.Info, arg ast.Expr, paramT types.Type) bool {
	if _, ok := paramT.Underlying().(*types.Interface); !ok {
		return false
	}
	tv, ok := info.Types[arg]
	if !ok || tv.Type == nil {
		return false
	}
	if tv.Value != nil {
		return false // constants box into read-only statics
	}
	switch tv.Type.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false // pointer-shaped: stored directly, no copy
	}
	if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	return true
}
