package analysis

import (
	"go/ast"
	"go/types"
)

// EpochCapture forbids squirreling away partition-map-derived state in
// places that outlive the map's epoch. A PartitionMap is immutable and
// epoch-stamped: on resize the coordinator installs a successor and every
// derived value — partition counts, row slices, grid layouts — must be
// re-derived from the new map. Copying m.QueryPartitions into a long-lived
// struct field or closure freezes the old epoch's shape; routing decisions
// made from it dereference a grid that no longer exists. PR 8's resize work
// hit exactly this class (a cached gridLayout built from a superseded map),
// and this analyzer pins it.
//
// Flagged: reads of a PartitionMap's QueryPartitions / WritePartitions /
// Rows fields that are (a) assigned into a struct field, (b) placed in a
// composite literal of a non-epoch-scoped struct type, or (c) captured by a
// function literal from its enclosing scope.
//
// Exempt:
//   - the epoch-scoped container types that are themselves rebuilt on every
//     map install (PartitionMap, routing, mapState, rowSlot, gridLayout,
//     GridCell, RowAssignment) — storing derived values inside them is the
//     sanctioned pattern, their lifetime ends with the epoch;
//   - composite literals used directly as a map index or delete() key
//     (the rowID lookup idiom: the key is consumed, not retained);
//   - storing the Epoch field itself — that is how staleness is detected,
//     not how it is caused;
//   - sites documented with //invalidb:allow epochcapture <reason>.
var EpochCapture = &Analyzer{
	Name: "epochcapture",
	Doc:  "forbid storing partition-map-derived counts/slices/layouts in fields or closures that outlive the epoch",
	Run:  runEpochCapture,
}

// epochScopedTypes are struct types whose instances live and die with one
// partition-map epoch; derived values stored inside them cannot go stale.
var epochScopedTypes = map[string]bool{
	"PartitionMap":  true,
	"routing":       true,
	"mapState":      true,
	"rowSlot":       true,
	"gridLayout":    true,
	"GridCell":      true,
	"RowAssignment": true,
}

// epochDerivedFields are the PartitionMap fields whose values describe the
// epoch's shape.
var epochDerivedFields = map[string]bool{
	"QueryPartitions": true,
	"WritePartitions": true,
	"Rows":            true,
}

func runEpochCapture(pass *Pass) (any, error) {
	info := pass.TypesInfo
	reported := map[ast.Node]bool{}
	report := func(n ast.Node, format string, args ...any) {
		if !reported[n] {
			reported[n] = true
			pass.Reportf(n.Pos(), format, args...)
		}
	}
	for _, f := range pass.Files {
		keyOnly := consumedCompositeKeys(f)
		// (a) struct-field stores and (b) composite-literal captures.
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.AssignStmt:
				for i, lhs := range x.Lhs {
					sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
					if !ok || i >= len(x.Rhs) && len(x.Rhs) != 1 {
						continue
					}
					s, ok := info.Selections[sel]
					if !ok || s.Kind() != types.FieldVal || epochScopedOwner(s.Recv()) {
						continue
					}
					rhs := x.Rhs[0]
					if len(x.Rhs) == len(x.Lhs) {
						rhs = x.Rhs[i]
					}
					eachEpochRead(info, rhs, func(read *ast.SelectorExpr) {
						report(read, "storing %s into field %s outlives the partition-map epoch: store the epoch and re-derive, or document with //invalidb:allow epochcapture <reason>",
							types.ExprString(read), types.ExprString(sel))
					})
				}
			case *ast.CompositeLit:
				t := info.Types[x].Type
				if t == nil || keyOnly[x] || epochScopedOwner(t) {
					return true
				}
				if _, ok := t.Underlying().(*types.Struct); !ok {
					return true
				}
				for _, elt := range x.Elts {
					v := elt
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						v = kv.Value
					}
					if read, ok := epochDerivedRead(info, v); ok {
						report(read, "composite literal captures %s: the %s value outlives the partition-map epoch; store the epoch and re-derive, or document with //invalidb:allow epochcapture <reason>",
							types.ExprString(read), typeName(t))
					}
				}
			}
			return true
		})
		// (c) closures capturing epoch-derived reads from the enclosing
		// scope. Immediately invoked literals run within the epoch and are
		// exempt.
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.FuncLit)
			if !ok || immediatelyInvoked(f, lit) {
				return true
			}
			eachEpochRead(info, lit.Body, func(read *ast.SelectorExpr) {
				root := rootIdent(read)
				if root == nil {
					return
				}
				obj := info.Uses[root]
				if obj == nil || !declaredOutside(obj, lit) {
					return
				}
				report(read, "closure captures %s from the enclosing scope: the value outlives the partition-map epoch; pass the epoch and re-derive, or document with //invalidb:allow epochcapture <reason>",
					types.ExprString(read))
			})
			return true
		})
	}
	return nil, nil
}

// epochDerivedRead reports whether e directly reads an epoch-shape field
// from a PartitionMap-typed expression.
func epochDerivedRead(info *types.Info, e ast.Expr) (*ast.SelectorExpr, bool) {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok || !epochDerivedFields[sel.Sel.Name] {
		return nil, false
	}
	tv, ok := info.Types[sel.X]
	if !ok || tv.Type == nil {
		return nil, false
	}
	if typeName(tv.Type) != "PartitionMap" {
		return nil, false
	}
	return sel, true
}

// eachEpochRead walks e (skipping nested function literals and composite
// literals, which are reported at their own sites) and visits every
// epoch-derived read.
func eachEpochRead(info *types.Info, e ast.Node, visit func(*ast.SelectorExpr)) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit, *ast.CompositeLit:
			_ = x
			return false
		case *ast.SelectorExpr:
			if read, ok := epochDerivedRead(info, x); ok {
				visit(read)
				return false
			}
		}
		return true
	})
}

// epochScopedOwner reports whether t (through pointers) names one of the
// epoch-scoped container types.
func epochScopedOwner(t types.Type) bool {
	return epochScopedTypes[typeName(t)]
}

// typeName returns the bare name of a named type, through pointers
// ("" for unnamed types).
func typeName(t types.Type) string {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// consumedCompositeKeys collects composite literals used directly as a map
// index or as the key argument of delete(): lookup keys are consumed by the
// operation, not retained past it.
func consumedCompositeKeys(f *ast.File) map[*ast.CompositeLit]bool {
	out := map[*ast.CompositeLit]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.IndexExpr:
			if lit, ok := ast.Unparen(x.Index).(*ast.CompositeLit); ok {
				out[lit] = true
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "delete" && len(x.Args) == 2 {
				if lit, ok := ast.Unparen(x.Args[1]).(*ast.CompositeLit); ok {
					out[lit] = true
				}
			}
		}
		return true
	})
	return out
}

// immediatelyInvoked reports whether lit is the function operand of a call
// expression (an IIFE: runs now, within the current epoch).
func immediatelyInvoked(f *ast.File, lit *ast.FuncLit) bool {
	invoked := false
	ast.Inspect(f, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && ast.Unparen(call.Fun) == lit {
			invoked = true
		}
		return !invoked
	})
	return invoked
}

// rootIdent returns the leftmost identifier of a selector chain
// (rt.m.QueryPartitions → rt), following through calls (ms.current().Rows
// → ms).
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.CallExpr:
			e = x.Fun
		case *ast.IndexExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// declaredOutside reports whether obj's declaration lies outside lit's
// source range — i.e. the closure captures it from an enclosing scope.
func declaredOutside(obj types.Object, lit *ast.FuncLit) bool {
	return obj.Pos() < lit.Pos() || obj.Pos() > lit.End()
}
