package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, parsed, type-checked package.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
	Imports []string
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Imports    []string
	Error      *struct{ Err string }
}

// goList enumerates the packages matching the patterns via the go command.
// The go command must run from inside the module (the caller's working
// directory), so module-local import paths resolve.
func goList(patterns []string) ([]listedPackage, error) {
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	var pkgs []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding output: %v", patterns, err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list %s: %s", p.ImportPath, p.Error.Err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Load parses and type-checks the packages matching the patterns
// (production files only — tests do not participate in hot paths). All
// packages share one FileSet and one source importer, so dependencies are
// type-checked once and reused across targets.
func Load(patterns []string) ([]*Package, error) {
	listed, err := goList(patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	var out []*Package
	for _, lp := range listed {
		if len(lp.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		pkg, info, err := TypeCheck(fset, imp, lp.ImportPath, lp.Dir, files)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", lp.ImportPath, err)
		}
		out = append(out, &Package{
			PkgPath: lp.ImportPath,
			Dir:     lp.Dir,
			Fset:    fset,
			Files:   files,
			Types:   pkg,
			Info:    info,
			Imports: lp.Imports,
		})
	}
	return sortByDependency(out), nil
}

// sortByDependency orders packages so every package follows the loaded
// packages it imports (directly or transitively). Facts exported while
// analyzing a dependency are then visible to its dependents — the flow
// direction of the x/tools fact model.
func sortByDependency(pkgs []*Package) []*Package {
	byPath := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		byPath[p.PkgPath] = p
	}
	out := make([]*Package, 0, len(pkgs))
	seen := map[string]bool{}
	var visit func(p *Package)
	visit = func(p *Package) {
		if seen[p.PkgPath] {
			return
		}
		seen[p.PkgPath] = true
		for _, imp := range p.Imports {
			if dep, ok := byPath[imp]; ok {
				visit(dep)
			}
		}
		out = append(out, p)
	}
	for _, p := range pkgs {
		visit(p)
	}
	return out
}

// TypeCheck type-checks one package's parsed files with full type
// information, resolving imports through imp. It is exported for the
// fixture-based analyzer tests, which check testdata packages the go
// command cannot list.
func TypeCheck(fset *token.FileSet, imp types.Importer, pkgPath, dir string, files []*ast.File) (*types.Package, *types.Info, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: imp}
	if dir != "" {
		if from, ok := imp.(types.ImporterFrom); ok {
			conf.Importer = dirImporter{from: from, dir: dir}
		}
	}
	pkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, nil, err
	}
	return pkg, info, nil
}

// dirImporter pins the source directory used for import resolution, so
// packages whose files live outside the module layout (testdata fixtures)
// still resolve module-local imports.
type dirImporter struct {
	from types.ImporterFrom
	dir  string
}

func (d dirImporter) Import(path string) (*types.Package, error) {
	return d.from.ImportFrom(path, d.dir, 0)
}

func (d dirImporter) ImportFrom(path, _ string, mode types.ImportMode) (*types.Package, error) {
	return d.from.ImportFrom(path, d.dir, mode)
}
