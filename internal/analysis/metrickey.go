package analysis

import (
	"go/ast"
	"go/constant"
	"regexp"
)

// metricsPkgPath is the package whose Registry the metrickey analyzer
// guards.
const metricsPkgPath = "invalidb/internal/metrics"

// metricKeyPattern is the required shape of a metric series name: lowercase
// dotted segments ("cluster.writes_ingested"). One series per constant name
// keeps scrape output stable and bounded; per-entity families go through
// Registry.Collect instead.
var metricKeyPattern = regexp.MustCompile(`^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$`)

// metricKeyMethods are the Registry methods whose first argument names a
// series.
var metricKeyMethods = map[string]bool{
	"Counter": true,
	"Gauge":   true,
	"Text":    true,
	"Latency": true,
}

// MetricKey enforces that metric series are keyed by compile-time constant
// dotted names. Building a key from a remote address, session, or query ID
// creates one series per entity: unbounded registry growth and scrape
// churn — the exact bug class fixed in the PR 3 review, where per-session
// broker drop counters were keyed by raw remote addresses. Dynamic
// families belong in Registry.Collect, which emits at snapshot time
// without registering permanent series.
var MetricKey = &Analyzer{
	Name: "metrickey",
	Doc:  "require constant dotted series names in Registry.Counter/Gauge/Text/Latency calls",
	Run:  runMetricKey,
}

func runMetricKey(pass *Pass) (any, error) {
	info := pass.TypesInfo
	inspectFiles(pass.Files, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name, ok := methodOn(info, call, metricsPkgPath, "Registry")
		if !ok || !metricKeyMethods[name] || len(call.Args) == 0 {
			return true
		}
		arg := call.Args[0]
		tv, ok := info.Types[arg]
		if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
			pass.Reportf(arg.Pos(), "Registry.%s key must be a constant string, not built at runtime (use Registry.Collect for dynamic families)", name)
			return true
		}
		key := constant.StringVal(tv.Value)
		if !metricKeyPattern.MatchString(key) {
			pass.Reportf(arg.Pos(), "metric key %q is not a lowercase dotted name (want e.g. \"layer.metric_name\")", key)
		}
		return true
	})
	return nil, nil
}
