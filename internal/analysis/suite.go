package analysis

// Suite is the full analyzer set cmd/invalidb-vet runs, in reporting
// order. Each analyzer guards one invariant the paper's scalability
// argument depends on; see DESIGN.md §9 for the mapping.
var Suite = []*Analyzer{
	Directive,
	HotpathAlloc,
	LockBlock,
	MetricKey,
	PooledLifecycle,
	CoarseClock,
	WireKind,
	EpochCapture,
	GoroLeak,
}
