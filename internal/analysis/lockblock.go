package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockBlock flags operations that can block for an unbounded time while a
// sync.Mutex or sync.RWMutex is held: channel sends and receives, selects
// without a default case, ranging over a channel, time.Sleep, WaitGroup
// waits, and network dials/IO. A supervised component sleeping or blocking
// on a peer while holding a lock stalls every other goroutine contending
// for that lock — the failure mode PR 2's supervisor exists to prevent.
//
// Lock state is tracked linearly through each function body: x.Lock() adds
// x to the held set, x.Unlock() removes it, defer x.Unlock() holds it for
// the rest of the function. Branch bodies are analyzed with a copy of the
// held set, so an early unlock-and-return path does not leak state into
// the fallthrough path. Non-blocking channel operations (inside a select
// with a default case) are permitted — that is the sanctioned
// try-send/try-receive idiom. sync.Cond.Wait is also permitted: it
// releases the mutex while waiting.
//
// The check is interprocedural: a call made while a mutex is held into any
// function whose summary (FuncSummaries) reaches a blocking operation —
// through any chain of statically resolved calls, across package
// boundaries — is reported at the call site, naming the underlying
// operation. Blocking ops inside function literals do not propagate (the
// literal runs in its own context), and ops excused with //invalidb:allow
// at their source do not resurface at callers.
var LockBlock = &Analyzer{
	Name:     "lockblock",
	Doc:      "forbid blocking operations (channel ops, sleeps, network IO) while holding a mutex, transitively through calls",
	Requires: []*Analyzer{CallGraphAnalyzer, FuncSummaries},
	Run:      runLockBlock,
}

func runLockBlock(pass *Pass) (any, error) {
	c := &lockChecker{
		pass: pass,
		sums: pass.ResultOf[FuncSummaries].(Summaries),
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			c.walk(fn.Body, heldSet{})
		}
		// Every function literal is its own execution context (goroutine
		// bodies, callbacks): analyze each body independently. The
		// statement walker never descends into literal bodies, so nothing
		// is reported twice.
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				c.walk(lit.Body, heldSet{})
			}
			return true
		})
	}
	return nil, nil
}

// lockChecker carries the pass and the function summaries used to resolve
// whether a callee can block.
type lockChecker struct {
	pass *Pass
	sums Summaries
}

// heldSet maps a mutex expression (rendered as source text) to the
// position where it was locked.
type heldSet map[string]ast.Node

func (h heldSet) clone() heldSet {
	out := make(heldSet, len(h))
	for k, v := range h {
		out[k] = v
	}
	return out
}

// walk processes stmt, threading the held set through straight-line code
// and forking it into branches.
func (c *lockChecker) walk(stmt ast.Stmt, held heldSet) {
	pass := c.pass
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		for _, st := range s.List {
			c.walk(st, held)
		}
	case *ast.ExprStmt:
		if name, mu, ok := mutexOp(pass.TypesInfo, s.X); ok {
			switch name {
			case "Lock", "RLock":
				held[mu] = s.X
			case "Unlock", "RUnlock":
				delete(held, mu)
			case "TryLock", "TryRLock":
				// Result discarded as a statement: lock state unknown;
				// treat as held to stay conservative.
				held[mu] = s.X
			}
			return
		}
		c.checkExpr(s.X, held)
	case *ast.DeferStmt:
		if name, _, ok := mutexOp(pass.TypesInfo, s.Call); ok {
			if name == "Unlock" || name == "RUnlock" {
				return // held until return; the set keeps it
			}
		}
		// The deferred call's arguments are evaluated now; the body runs
		// at return, when locks released earlier may still be held — but
		// tracking that precisely needs path info, so only argument
		// evaluation is checked here.
		for _, arg := range s.Call.Args {
			c.checkExpr(arg, held)
		}
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			c.checkExpr(rhs, held)
		}
		for _, lhs := range s.Lhs {
			c.checkExpr(lhs, held)
		}
	case *ast.SendStmt:
		if len(held) > 0 {
			c.report(s.Pos(), "channel send", held)
		}
	case *ast.SelectStmt:
		hasDefault := false
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault && len(held) > 0 {
			c.report(s.Pos(), "blocking select", held)
		}
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok {
				branch := held.clone()
				for _, st := range cc.Body {
					c.walk(st, branch)
				}
			}
		}
	case *ast.IfStmt:
		if s.Init != nil {
			c.walk(s.Init, held)
		}
		c.checkExpr(s.Cond, held)
		c.walk(s.Body, held.clone())
		if s.Else != nil {
			c.walk(s.Else, held.clone())
		}
	case *ast.ForStmt:
		if s.Init != nil {
			c.walk(s.Init, held)
		}
		if s.Cond != nil {
			c.checkExpr(s.Cond, held)
		}
		c.walk(s.Body, held.clone())
	case *ast.RangeStmt:
		if t := pass.TypesInfo.Types[s.X].Type; t != nil {
			if _, ok := t.Underlying().(*types.Chan); ok && len(held) > 0 {
				c.report(s.Pos(), "range over channel", held)
			}
		}
		c.walk(s.Body, held.clone())
	case *ast.SwitchStmt:
		if s.Init != nil {
			c.walk(s.Init, held)
		}
		if s.Tag != nil {
			c.checkExpr(s.Tag, held)
		}
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				branch := held.clone()
				for _, st := range cc.Body {
					c.walk(st, branch)
				}
			}
		}
	case *ast.TypeSwitchStmt:
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				branch := held.clone()
				for _, st := range cc.Body {
					c.walk(st, branch)
				}
			}
		}
	case *ast.GoStmt:
		// The goroutine body runs without the caller's locks; argument
		// evaluation happens now.
		for _, arg := range s.Call.Args {
			c.checkExpr(arg, held)
		}
	case *ast.ReturnStmt:
		for _, r := range s.Results {
			c.checkExpr(r, held)
		}
	case *ast.LabeledStmt:
		c.walk(s.Stmt, held)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.checkExpr(v, held)
					}
				}
			}
		}
	case *ast.IncDecStmt:
		c.checkExpr(s.X, held)
	}
}

// checkExpr flags blocking operations appearing inside an expression
// evaluated while locks are held: channel receives, calls into
// known-blocking functions, and calls into any function whose summary
// reaches a blocking operation. Function literals are skipped — they run
// later, in their own context.
func (c *lockChecker) checkExpr(e ast.Expr, held heldSet) {
	if e == nil || len(held) == 0 {
		return
	}
	pass := c.pass
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			// The literal executes outside this statement's lock region;
			// its body is analyzed independently by runLockBlock.
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				c.report(x.Pos(), "channel receive", held)
			}
		case *ast.CallExpr:
			if kind, ok := blockingCall(pass.TypesInfo, x); ok {
				c.report(x.Pos(), kind, held)
				return true
			}
			callee := StaticCallee(pass.TypesInfo, x)
			if callee == nil {
				return true
			}
			if s := summaryFor(pass, c.sums, callee); s != nil && len(s.Blocks) > 0 {
				c.report(x.Pos(), "call to "+callee.Name()+" ("+s.Blocks[0].chain()+")", held)
			}
		}
		return true
	})
}

// collectBlockingOps emits every blocking operation the body performs
// unconditionally in the caller's context: channel sends/receives, selects
// without a default, ranging over a channel, and known-blocking calls.
// Function literals and go statements are skipped — their bodies run in a
// different execution context — and select-with-default communication is
// the sanctioned non-blocking idiom. The summarizer uses this to decide
// whether calling a function can stall the caller.
func collectBlockingOps(info *types.Info, body ast.Node, emit func(pos token.Pos, what string)) {
	if body == nil {
		return
	}
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch x := m.(type) {
			case *ast.FuncLit, *ast.GoStmt:
				return false
			case *ast.SendStmt:
				emit(x.Pos(), "channel send")
			case *ast.UnaryExpr:
				if x.Op == token.ARROW {
					emit(x.Pos(), "channel receive")
				}
			case *ast.RangeStmt:
				if t := info.Types[x.X].Type; t != nil {
					if _, ok := t.Underlying().(*types.Chan); ok {
						emit(x.Pos(), "range over channel")
					}
				}
			case *ast.SelectStmt:
				hasDefault := false
				for _, cl := range x.Body.List {
					if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
						hasDefault = true
					}
				}
				if !hasDefault {
					emit(x.Pos(), "blocking select")
				}
				// Walk the clause bodies only: the communication
				// expressions are the select's own (possibly non-blocking)
				// operations, already accounted for above.
				for _, cl := range x.Body.List {
					if cc, ok := cl.(*ast.CommClause); ok {
						for _, st := range cc.Body {
							walk(st)
						}
					}
				}
				return false
			case *ast.CallExpr:
				if kind, ok := blockingCall(info, x); ok {
					emit(x.Pos(), kind)
				}
			}
			return true
		})
	}
	walk(body)
}

// blockingCall recognizes calls that block for unbounded time: time.Sleep,
// sync.WaitGroup.Wait, and network dial/IO.
func blockingCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	if isPkgFunc(info, call, "time", "Sleep") {
		return "time.Sleep", true
	}
	for _, fn := range []string{"Dial", "DialTimeout", "DialTCP", "Listen", "ListenTCP"} {
		if isPkgFunc(info, call, "net", fn) {
			return "net." + fn, true
		}
	}
	if name, ok := methodOn(info, call, "sync", "WaitGroup"); ok && name == "Wait" {
		return "WaitGroup.Wait", true
	}
	// Method calls on net package types (Conn, TCPConn, ...): reads and
	// writes hit the wire and can stall on a slow peer.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if tv, ok := info.Types[sel.X]; ok && tv.Type != nil {
			if typeFromPackage(tv.Type, "net") {
				switch sel.Sel.Name {
				case "Read", "Write", "ReadFrom", "WriteTo", "Accept":
					return "net connection " + sel.Sel.Name, true
				}
			}
			// Query predicate evaluation (query.Query.Match and the filter
			// condition types behind it) is unbounded, user-controlled work:
			// a $text or deep $elemMatch filter over a large document can run
			// arbitrarily long, so evaluating it under a mutex turns one slow
			// scan into a stall for every writer contending on that lock.
			// Snapshot the records under the lock and match outside it
			// (storage.Collection.scan is the reference pattern).
			if sel.Sel.Name == "Match" && typeFromPackage(tv.Type, "invalidb/internal/query") {
				return "query predicate evaluation", true
			}
		}
	}
	return "", false
}

// typeFromPackage reports whether t (through pointers) is a named type
// declared in the package with the given import path.
func typeFromPackage(t types.Type, pkgPath string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// mutexOp recognizes expressions of the form mu.Lock() / mu.Unlock() /
// mu.RLock() / mu.RUnlock() / mu.TryLock() on sync.Mutex or sync.RWMutex
// receivers, returning the method name and the receiver's source text.
func mutexOp(info *types.Info, e ast.Expr) (method, mutex string, ok bool) {
	call, isCall := e.(*ast.CallExpr)
	if !isCall {
		return "", "", false
	}
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	tv, found := info.Types[sel.X]
	if !found || tv.Type == nil {
		return "", "", false
	}
	if !namedTypeIs(tv.Type, "sync", "Mutex") && !namedTypeIs(tv.Type, "sync", "RWMutex") {
		return "", "", false
	}
	switch sel.Sel.Name {
	case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock":
		return sel.Sel.Name, types.ExprString(sel.X), true
	}
	return "", "", false
}

// report emits one diagnostic naming the blocking operation and every
// mutex held at that point.
func (c *lockChecker) report(pos token.Pos, op string, held heldSet) {
	names := make([]string, 0, len(held))
	for mu := range held {
		names = append(names, mu)
	}
	sort.Strings(names)
	c.pass.Reportf(pos, "%s while holding %s", op, strings.Join(names, ", "))
}
