package analysis

// Fixture-based analyzer tests in the style of x/tools' analysistest: each
// testdata/src/<name> directory is parsed and type-checked as one package,
// the analyzer under test runs over it, and its diagnostics are compared
// against the fixture's expectations. An expectation is a trailing comment
//
//	// want `regexp` `another regexp`
//
// on the line where the diagnostic must appear; every diagnostic must match
// an expectation on its line and every expectation must be matched.

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// loadFixture parses and type-checks one fixture directory as a package
// with the given import path. Imports (including module-local ones such as
// invalidb/internal/metrics) resolve through the source importer, which
// works because `go test` runs with the package directory — inside the
// module — as the working directory.
func loadFixture(t *testing.T, dir, pkgPath string) *Package {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir %s: %v", dir, err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing fixture %s: %v", e.Name(), err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("fixture dir %s has no .go files", dir)
	}
	imp := importer.ForCompiler(fset, "source", nil)
	typesPkg, info, err := TypeCheck(fset, imp, pkgPath, "", files)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", dir, err)
	}
	return &Package{PkgPath: pkgPath, Dir: dir, Fset: fset, Files: files, Types: typesPkg, Info: info}
}

type wantSpec struct {
	re      *regexp.Regexp
	text    string
	matched bool
}

var wantPattern = regexp.MustCompile("`([^`]*)`")

// collectWants indexes every `// want ...` comment by "file:line".
func collectWants(t *testing.T, pkg *Package) map[string][]*wantSpec {
	t.Helper()
	out := map[string][]*wantSpec{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, "// want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", filepath.Base(pos.Filename), pos.Line)
				ms := wantPattern.FindAllStringSubmatch(c.Text, -1)
				if len(ms) == 0 {
					t.Fatalf("%s: want comment without any `regexp`: %s", key, c.Text)
				}
				for _, m := range ms {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", key, m[1], err)
					}
					out[key] = append(out[key], &wantSpec{re: re, text: m[1]})
				}
			}
		}
	}
	return out
}

// runFixture checks one analyzer against one fixture package.
func runFixture(t *testing.T, a *Analyzer, dir, pkgPath string) {
	t.Helper()
	pkg := loadFixture(t, dir, pkgPath)
	diags, err := RunPackage(pkg, []*Analyzer{a})
	if err != nil {
		t.Fatalf("running %s over %s: %v", a.Name, dir, err)
	}
	wants := collectWants(t, pkg)
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", filepath.Base(d.Pos.Filename), d.Pos.Line)
		found := false
		for _, w := range wants[key] {
			if !w.matched && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic at %s: [%s] %s", key, d.Analyzer, d.Message)
		}
	}
	for key, specs := range wants {
		for _, w := range specs {
			if !w.matched {
				t.Errorf("missing diagnostic at %s matching `%s`", key, w.text)
			}
		}
	}
}

func TestHotpathAllocFixture(t *testing.T) {
	runFixture(t, HotpathAlloc, "testdata/src/hotpathalloc", "fixture/hotpathalloc")
}

func TestLockBlockFixture(t *testing.T) {
	runFixture(t, LockBlock, "testdata/src/lockblock", "fixture/lockblock")
}

func TestMetricKeyFixture(t *testing.T) {
	runFixture(t, MetricKey, "testdata/src/metrickey", "fixture/metrickey")
}

func TestPooledLifecycleFixture(t *testing.T) {
	runFixture(t, PooledLifecycle, "testdata/src/pooledlifecycle", "fixture/pooledlifecycle")
}

// The coarse-clock analyzer is package-sensitive: inside a coarse-clock
// package every time.Now is flagged; elsewhere only hot-path functions are.
// The same analyzer runs over two fixtures under the two package paths.
func TestCoarseClockPackageFixture(t *testing.T) {
	runFixture(t, CoarseClock, "testdata/src/coarseclock_core", "invalidb/internal/core")
}

func TestCoarseClockHotpathFixture(t *testing.T) {
	runFixture(t, CoarseClock, "testdata/src/coarseclock_hotpath", "fixture/coarseclock")
}

func TestWireKindFixture(t *testing.T) {
	runFixture(t, WireKind, "testdata/src/wirekind", "fixture/wirekind")
}

func TestEpochCaptureFixture(t *testing.T) {
	runFixture(t, EpochCapture, "testdata/src/epochcapture", "fixture/epochcapture")
}

func TestGoroLeakFixture(t *testing.T) {
	runFixture(t, GoroLeak, "testdata/src/goroleak", "fixture/goroleak")
}

// TestGoroLeakMainExempt pins the package-main exemption: the fixture's
// unguarded goroutine must produce no diagnostics.
func TestGoroLeakMainExempt(t *testing.T) {
	runFixture(t, GoroLeak, "testdata/src/goroleak_main", "fixture/goroleakmain")
}

// The interprocedural fixtures pin summary propagation: the violating
// operation sits two statically-resolved calls below the checked function,
// the diagnostic lands on the call site with the via-chain, and an
// //invalidb:allow at the operation's source keeps it out of callers.
func TestHotpathAllocInterprocFixture(t *testing.T) {
	runFixture(t, HotpathAlloc, "testdata/src/hotpathalloc_interproc", "fixture/hotpathallocinterproc")
}

func TestLockBlockInterprocFixture(t *testing.T) {
	runFixture(t, LockBlock, "testdata/src/lockblock_interproc", "fixture/lockblockinterproc")
}

// TestDirectiveFixture uses explicit expectations rather than want comments:
// the diagnostics land on directive comment lines, which cannot carry a
// second trailing comment.
func TestDirectiveFixture(t *testing.T) {
	pkg := loadFixture(t, "testdata/src/directive", "fixture/directive")
	diags, err := RunPackage(pkg, []*Analyzer{Directive})
	if err != nil {
		t.Fatal(err)
	}
	wantSubstrings := []string{
		`unknown directive //invalidb:frobnicate`,
		`//invalidb:hotpath must be part of a function's doc comment`,
		`//invalidb:allow needs an analyzer name and a reason`,
		`unknown analyzer "nosuchanalyzer"`,
		`//invalidb:allow hotpathalloc needs a reason`,
		`//invalidb:hotpath takes no arguments`,
	}
	matched := make([]bool, len(diags))
	for _, want := range wantSubstrings {
		found := false
		for i, d := range diags {
			if !matched[i] && strings.Contains(d.Message, want) {
				matched[i] = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("missing directive diagnostic containing %q", want)
		}
	}
	for i, d := range diags {
		if !matched[i] {
			t.Errorf("unexpected directive diagnostic: %s", d)
		}
	}
}

// TestAllowDirectiveSuppression proves the //invalidb:allow escape hatch is
// load-bearing: the hotpathalloc fixture's hotAllowed function violates the
// rule under an allow directive. The raw analyzer (no suppression filter)
// reports exactly one more diagnostic than the filtered driver — remove the
// directive and the suite fails.
func TestAllowDirectiveSuppression(t *testing.T) {
	pkg := loadFixture(t, "testdata/src/hotpathalloc", "fixture/hotpathalloc")
	// Run the analyzer and its requirements with no allow directives in
	// effect, collecting the unfiltered diagnostics.
	var raw []Diagnostic
	results := map[*Analyzer]any{}
	facts := newFactStore()
	for _, a := range expandRequires([]*Analyzer{HotpathAlloc}) {
		pass := &Pass{
			Analyzer:    a,
			Fset:        pkg.Fset,
			Files:       pkg.Files,
			Pkg:         pkg.Types,
			PkgPath:     pkg.PkgPath,
			Dir:         pkg.Dir,
			TypesInfo:   pkg.Info,
			ResultOf:    results,
			diagnostics: &raw,
			allowed:     map[allowKey]bool{},
			facts:       facts,
		}
		res, err := a.Run(pass)
		if err != nil {
			t.Fatal(err)
		}
		results[a] = res
	}
	filtered, err := RunPackage(pkg, []*Analyzer{HotpathAlloc})
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) != len(filtered)+1 {
		t.Fatalf("expected exactly one allow-suppressed diagnostic: raw=%d filtered=%d", len(raw), len(filtered))
	}
	suppressed := ""
	for _, d := range raw {
		kept := false
		for _, f := range filtered {
			if f == d {
				kept = true
				break
			}
		}
		if !kept {
			suppressed = d.Message
		}
	}
	if !strings.Contains(suppressed, "conversion allocates") {
		t.Errorf("suppressed the wrong diagnostic: %q", suppressed)
	}
}

// TestRepoSuiteClean runs the full suite over the real module — the same
// invocation as `make lint` — and requires zero findings. This is the
// regression test for every annotation and allow directive in the tree.
func TestRepoSuiteClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module type-check is slow")
	}
	diags, err := Run([]string{"invalidb/..."}, Suite)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unexpected finding: %s", d)
	}
}
