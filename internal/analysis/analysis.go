// Package analysis is InvaliDB's custom static-analysis suite: a small,
// dependency-free reimplementation of the golang.org/x/tools/go/analysis
// programming model (Analyzer, Pass, diagnostics) plus the analyzers that
// machine-check the invariants the paper's performance claims rest on —
// allocation-free hot paths (PR 1), no blocking under locks and sound
// pooled-tuple lifecycles (PR 2), and constant metric series keys (PR 3).
//
// The suite runs as `make lint` via cmd/invalidb-vet. Two source
// directives drive it:
//
//	//invalidb:hotpath
//	    placed in a function's doc comment, marks it as part of the
//	    per-write hot path: hotpathalloc forbids allocating constructs in
//	    its body and coarseclock forbids wall-clock reads.
//
//	//invalidb:allow <analyzer> <reason...>
//	    placed on (or on the line above) an offending line, suppresses
//	    that analyzer's diagnostic there. The reason is mandatory: every
//	    deliberate exception to an invariant is documented in place.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one static check, mirroring x/tools' analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //invalidb:allow directives.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Requires lists analyzers whose results this one consumes. The
	// driver runs them first (same package) and exposes their results
	// through Pass.ResultOf, mirroring x/tools' Requires mechanism.
	Requires []*Analyzer
	// Run performs the check over a single package. Its return value (the
	// second result) becomes the entry in dependents' Pass.ResultOf.
	Run func(*Pass) (any, error)
}

// Fact is a piece of analysis knowledge attached to a package-level
// object and shared across packages, mirroring x/tools' analysis.Fact.
// Facts exported while analyzing a package are visible to later passes
// over packages that import it (the driver analyzes packages in
// dependency order), keyed by the object's package path and a stable
// in-package object path — not object identity, because each
// type-checked target holds its own view of its imports.
type Fact interface {
	AFact()
}

// Pass is the interface between the driver and one analyzer run over one
// package, mirroring x/tools' analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	PkgPath   string
	Dir       string
	TypesInfo *types.Info

	// ResultOf holds the results of the analyzers named in
	// Analyzer.Requires for this package.
	ResultOf map[*Analyzer]any

	diagnostics *[]Diagnostic
	allowed     map[allowKey]bool
	facts       *factStore
}

// Allowed reports whether an //invalidb:allow directive for the named
// analyzer covers the source line at pos. Analyzers that summarize code
// for other packages (function summaries) consult this so a documented
// exception does not propagate to call sites.
func (p *Pass) Allowed(analyzer string, pos token.Pos) bool {
	position := p.Fset.Position(pos)
	return p.allowed[allowKey{position.Filename, position.Line, analyzer}]
}

// ExportObjectFact associates fact with obj, a package-level object of
// the package under analysis, making it visible to passes over importing
// packages.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	p.facts.export(obj, fact)
}

// ImportObjectFact copies the fact of fact's concrete type previously
// exported for obj (possibly by a pass over another package) into fact,
// reporting whether one existed. fact must be a pointer.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	return p.facts.lookup(obj, fact)
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diagnostics = append(*p.diagnostics, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// directivePrefix introduces all InvaliDB lint directives.
const directivePrefix = "//invalidb:"

// Directive names understood by the suite.
const (
	directiveHotpath = "hotpath"
	directiveAllow   = "allow"
)

// parseDirective splits one comment into a directive name and its argument
// string. ok is false when the comment is not an //invalidb: directive.
// Like //go: directives, the marker must be unindented within the comment
// (no space after //).
func parseDirective(text string) (name, args string, ok bool) {
	if !strings.HasPrefix(text, directivePrefix) {
		return "", "", false
	}
	rest := strings.TrimPrefix(text, directivePrefix)
	name, args, _ = strings.Cut(rest, " ")
	return strings.TrimSpace(name), strings.TrimSpace(args), true
}

// hasHotpathDirective reports whether the function declaration carries an
// //invalidb:hotpath doc directive.
func hasHotpathDirective(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if name, _, ok := parseDirective(c.Text); ok && name == directiveHotpath {
			return true
		}
	}
	return false
}

// HotpathFuncs returns the functions in the pass annotated //invalidb:hotpath.
func (p *Pass) HotpathFuncs() []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && hasHotpathDirective(fn) {
				out = append(out, fn)
			}
		}
	}
	return out
}

// isPkgFunc reports whether the call invokes the named package-level
// function, e.g. isPkgFunc(info, call, "time", "Now"). The package is
// matched by import path.
func isPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	obj := info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return false
	}
	return fn.Pkg().Path() == pkgPath && fn.Name() == name && fn.Type().(*types.Signature).Recv() == nil
}

// namedTypeIs reports whether t (after stripping pointers) is the named
// type pkgPath.name.
func namedTypeIs(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// methodOn resolves a call of the form recv.Name(...) and reports whether
// recv's type (through pointers) is pkgPath.typeName. It returns the method
// name.
func methodOn(info *types.Info, call *ast.CallExpr, pkgPath, typeName string) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	tv, ok := info.Types[sel.X]
	if !ok {
		return "", false
	}
	if !namedTypeIs(tv.Type, pkgPath, typeName) {
		return "", false
	}
	return sel.Sel.Name, true
}
