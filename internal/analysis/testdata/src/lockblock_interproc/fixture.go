package fixture

// Interprocedural lockblock: the blocking operation sits two calls below
// the lock region, and the diagnostic at the call site names the root
// cause with its via-chain.

import (
	"sync"
	"time"
)

type svc struct {
	mu sync.Mutex
}

func nap() {
	time.Sleep(time.Millisecond) // the two-hop root cause
}

func relay() {
	nap()
}

func (s *svc) tick() {
	s.mu.Lock()
	relay() // want `call to relay \(time\.Sleep at .*fixture\.go:\d+.* \(via nap\)\) while holding s\.mu`
	s.mu.Unlock()
	relay() // no lock held: fine
}

// An //invalidb:allow at the operation's source keeps it out of every
// caller's summary.
func allowedNap() {
	//invalidb:allow lockblock fixture: the sleep is bounded by design
	time.Sleep(time.Millisecond)
}

func allowedRelay() {
	allowedNap()
}

func (s *svc) tickAllowed() {
	s.mu.Lock()
	allowedRelay() // clean: the allow suppressed the op at its source
	s.mu.Unlock()
}

// A go-spawned callee blocks on its own goroutine, not in the spawner's
// context: the spawner's summary stays empty.
func spawnNap() {
	go nap()
}

func (s *svc) tickSpawn() {
	s.mu.Lock()
	spawnNap() // clean: blocking does not propagate through the spawn
	s.mu.Unlock()
}

// Blocking inside a function literal runs in the literal's own context and
// does not propagate either.
func deferredNap() func() {
	return func() {
		nap()
	}
}

func (s *svc) tickLiteral() {
	s.mu.Lock()
	_ = deferredNap() // clean: the literal has not run yet
	s.mu.Unlock()
}
