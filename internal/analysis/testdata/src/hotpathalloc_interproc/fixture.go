package fixture

// Interprocedural hotpathalloc: the allocation sits two calls below the
// hot-path function, and the diagnostic at the call site names the root
// cause with its via-chain.

func encode(b []byte) string {
	return string(b) // the two-hop root cause
}

func flush(b []byte) string {
	return encode(b)
}

//invalidb:hotpath
func hotFlush(b []byte) string {
	return flush(b) // want `call to flush allocates in hot path: string/\[\]byte conversion at .*fixture\.go:\d+.* \(via encode\)`
}

// An //invalidb:allow at the operation's source keeps it out of every
// caller's summary: the documented exception stays local.
func allowedEncode(b []byte) string {
	//invalidb:allow hotpathalloc fixture: the conversion is amortized by design
	return string(b)
}

func allowedFlush(b []byte) string {
	return allowedEncode(b)
}

//invalidb:hotpath
func hotAllowedFlush(b []byte) string {
	return allowedFlush(b) // clean: the allow suppressed the op at its source
}

// Hotpath-annotated callees are exempt at call sites — their own bodies
// are checked where they are declared.
//
//invalidb:hotpath
func hotLeaf(b []byte) int {
	return len(b)
}

//invalidb:hotpath
func hotCallsHot(b []byte) int {
	return hotLeaf(b)
}
