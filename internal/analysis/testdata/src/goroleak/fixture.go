package fixture

import (
	"context"
	"sync"
)

func work() {}

type comp struct {
	stop chan struct{}
	wg   sync.WaitGroup
}

// Guarded literal: loops on the stop channel.
func (c *comp) startGuarded() {
	go func() {
		for {
			select {
			case <-c.stop:
				return
			}
		}
	}()
}

// Bare literal reaching no termination signal.
func (c *comp) startLeaky() {
	go func() { // want `goroutine is not tied to a stop channel, context, or WaitGroup`
		for {
			work()
		}
	}()
}

func (c *comp) loop() {
	for {
		work()
	}
}

// Named spawn of an unguarded body.
func (c *comp) startLeakyNamed() {
	go c.loop() // want `goroutine loop is not tied to a stop channel, context, or WaitGroup`
}

func (c *comp) ctxLoop(ctx context.Context) {
	for ctx.Err() == nil {
		work()
	}
}

// Named spawn of a context-guarded body.
func (c *comp) startCtx(ctx context.Context) {
	go c.ctxLoop(ctx)
}

func (c *comp) waitStop() {
	<-c.stop
}

// Guarded transitively: the literal reaches the stop channel through a
// same-package callee.
func (c *comp) startTransitive() {
	go func() {
		work()
		c.waitStop()
	}()
}

// WaitGroup-tied goroutine.
func (c *comp) startWG() {
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		work()
	}()
}

// Dynamic spawn: the callee is unknown, so the analyzer stays silent.
func spawn(cb func()) {
	go cb()
}

// Deliberate fire-and-forget, documented.
func fireAndForget() {
	//invalidb:allow goroleak fixture exercises the documented fire-and-forget escape hatch
	go func() {
		work()
	}()
}
