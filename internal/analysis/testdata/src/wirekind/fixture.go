package fixture

// A miniature wire protocol exercising every wirekind check. Kind "write"
// is fully registered (all switch cases, per-kind metric families, and a
// seed file under this fixture's testdata); each other kind is missing
// exactly one registration site.

const (
	tagWrite  = 1
	tagQuery  = 2
	tagCancel = 3
	tagResize = 4
	tagHello  = 5
	tagAck    = 6
)

var wireKindNames = [...]string{
	tagWrite:  "write",
	tagQuery:  "query",  // want `wire kind "query" \(tag 2\) has no encode case in AppendEnvelope`
	tagCancel: "cancel", // want `wire kind "cancel" \(tag 3\) has no decode case in decodeBinaryEnvelope`
	tagResize: "resize", // want `wire kind "resize" has no mapping case in wireKindTag`
	tagHello:  "hello",  // want `wire kind "hello" has no wire\.encode\.hello metric family` `wire kind "hello" has no wire\.decode\.hello metric family`
	tagAck:    "ack",    // want `wire kind "ack" has no fuzz seed \(want testdata/fuzz/FuzzEnvelopeWire/seed-ack-\*\)`
}

func AppendEnvelope(dst []byte, tag int) []byte {
	switch tag {
	case tagWrite, tagCancel, tagResize, tagHello, tagAck:
		dst = append(dst, byte(tag))
	}
	return dst
}

func decodeBinaryEnvelope(data []byte) int {
	switch int(data[0]) {
	case tagWrite, tagQuery, tagResize, tagHello, tagAck:
		return int(data[0])
	}
	return 0
}

func wireKindTag(kind string) int {
	switch kind {
	case "write":
		return tagWrite
	case "query":
		return tagQuery
	case "cancel":
		return tagCancel
	case "hello":
		return tagHello
	case "ack":
		return tagAck
	}
	return 0
}

// registerMetrics registers per-kind families (no blanket loop), so the
// analyzer must find each kind's constant names individually.
func registerMetrics(emit func(name string)) {
	emit("wire.encode.write.messages")
	emit("wire.decode.write.messages")
	emit("wire.encode.query.messages")
	emit("wire.decode.query.messages")
	emit("wire.encode.cancel.messages")
	emit("wire.decode.cancel.messages")
	emit("wire.encode.resize.messages")
	emit("wire.decode.resize.messages")
	emit("wire.encode.ack.messages")
	emit("wire.decode.ack.messages")
}
