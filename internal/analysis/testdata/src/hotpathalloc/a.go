package fixture

import (
	"errors"
	"fmt"
)

type payload struct {
	id int
}

type sink interface {
	accept(v any)
}

type ticker struct{ n int }

func (t ticker) tick() {}

//invalidb:hotpath
func hotAllocs(s sink, m map[string]int, b []byte, name string, n int) int {
	msg := fmt.Sprintf("id") // want `fmt\.Sprintf allocates in hot path`
	_ = msg
	err := errors.New("boom") // want `errors\.New allocates in hot path`
	_ = err
	joined := name + "!" // want `string concatenation allocates in hot path`
	_ = joined
	scratch := make([]byte, 16) // want `make allocates in hot path`
	_ = scratch
	q := new(payload) // want `new allocates in hot path`
	_ = q
	p := &payload{id: n} // want `&composite literal escapes to the heap in hot path`
	_ = p
	ints := []int{1, 2, 3} // want `slice literal allocates in hot path`
	_ = ints
	idx := map[string]int{} // want `map literal allocates in hot path`
	_ = idx
	s2 := string(b) // want `string/\[\]byte conversion allocates in hot path`
	_ = s2
	fn := func() {} // want `function literal allocates a closure in hot path`
	_ = fn
	s.accept(payload{id: n}) // want `boxes fixture/hotpathalloc\.payload into interface`
	s.accept(7)              // constants box into read-only statics: fine
	return m[string(b)]      // compiler-optimized map index: fine
}

//invalidb:hotpath
func hotMethodValue(tk ticker) func() {
	f := tk.tick // want `method value tick allocates a closure in hot path`
	return f
}

//invalidb:hotpath
func hotClean(b []byte, name string, m map[string]int) int {
	v := payload{id: len(name)} // value literal stays on the stack
	b = append(b, name...)      // append into scratch is part of the design
	return v.id + m[string(b)] + len(b)
}

//invalidb:hotpath
func hotAllowed(b []byte) string {
	//invalidb:allow hotpathalloc fixture exercises the suppression path
	return string(b)
}

func coldAllocs(name string) string {
	return fmt.Sprintf("cold " + name) // unannotated: not checked
}
