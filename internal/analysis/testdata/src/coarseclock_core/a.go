package core

import "time"

// The fixture is type-checked under the package path
// invalidb/internal/core, where the coarse tick clock exists: every
// time.Now is flagged, annotated or not.

func anywhere() time.Time {
	return time.Now() // want `time\.Now in a coarse-clock package`
}

func allowed() time.Time {
	//invalidb:allow coarseclock fixture documents the exception
	return time.Now()
}
