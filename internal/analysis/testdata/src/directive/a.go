package fixture

// Expectations for this fixture live in TestDirectiveFixture: the
// diagnostics land on the directive comment lines themselves, which cannot
// carry a second trailing comment.

//invalidb:frobnicate
var x = 1

//invalidb:hotpath
func annotated() int { return x }

func misplaced() int {
	//invalidb:hotpath
	return x
}

//invalidb:allow
var y = 2

//invalidb:allow nosuchanalyzer because reasons
var z = 3

//invalidb:allow hotpathalloc
var w = 4

//invalidb:hotpath with args
func argy() int { return x }
