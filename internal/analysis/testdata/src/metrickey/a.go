package fixture

import "invalidb/internal/metrics"

const goodName = "fixture.good_series"

func record(r *metrics.Registry, session string, n int64) {
	r.Counter("fixture.writes_total").Add(n)
	r.Counter(goodName).Inc()
	r.Gauge("fixture.queue_depth", func() float64 { return 0 })
	r.Counter("BadName.series").Add(1)    // want `not a lowercase dotted name`
	r.Counter("nodots").Inc()             // want `not a lowercase dotted name`
	r.Latency("fixture." + session)       // want `must be a constant string`
	r.Text("fixture.build_info", version) // constant key, dynamic value: fine
	r.Collect(func(emit func(name string, v float64)) {
		emit("fixture.session."+session, 1) // dynamic families go through Collect
	})
}

func version() string { return "dev" }
