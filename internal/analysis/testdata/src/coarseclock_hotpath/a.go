package fixture

import "time"

// Outside coarse-clock packages only //invalidb:hotpath functions are
// checked.

//invalidb:hotpath
func hotNow() int64 {
	return time.Now().UnixNano() // want `time\.Now in hot-path function hotNow`
}

func coldNow() time.Time {
	return time.Now() // unannotated function in a normal package: fine
}
