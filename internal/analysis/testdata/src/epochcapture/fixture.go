package fixture

// Reproduces the PR 8 stale-capture class: partition-map-derived shape
// values squirreled into state that outlives the map's epoch. The type
// names mirror the real core package — the analyzer matches PartitionMap
// and the epoch-scoped container set by name.

type RowAssignment struct {
	Node string
	Slot int
}

type PartitionMap struct {
	Epoch           uint64
	QueryPartitions int
	WritePartitions int
	Rows            []RowAssignment
}

// gridLayout is epoch-scoped: rebuilt on every map install, so derived
// values stored inside it cannot go stale.
type gridLayout struct {
	qp, wp int
}

func newLayout(m *PartitionMap) *gridLayout {
	return &gridLayout{qp: m.QueryPartitions, wp: m.WritePartitions} // epoch-scoped container: exempt
}

// router is long-lived: it survives map installs.
type router struct {
	epoch  uint64
	qp     int
	rows   []RowAssignment
	layout *gridLayout
}

func (r *router) install(m *PartitionMap) {
	r.epoch = m.Epoch // storing the epoch itself is how staleness is detected: exempt
	r.layout = newLayout(m)
	r.qp = m.QueryPartitions // want `storing m\.QueryPartitions into field r\.qp outlives the partition-map epoch`
	r.rows = m.Rows          // want `storing m\.Rows into field r\.rows outlives the partition-map epoch`
}

// report is a plain long-lived struct; freezing the shape into it is the
// composite-literal variant of the same bug.
type report struct {
	qp, wp int
}

func snapshot(m *PartitionMap) report {
	return report{
		qp: m.QueryPartitions, // want `composite literal captures m\.QueryPartitions: the report value outlives the partition-map epoch`
		wp: m.WritePartitions, // want `composite literal captures m\.WritePartitions: the report value outlives the partition-map epoch`
	}
}

// Composite literals consumed as lookup keys are exempt: the key dies with
// the operation.
type cellKey struct{ qp int }

var cells = map[cellKey]int{}

func lookup(m *PartitionMap) int {
	return cells[cellKey{qp: m.QueryPartitions}]
}

// A closure capturing the shape from its enclosing scope outlives the
// epoch — the PR 8 gridLayout capture, reduced.
func partitioner(m *PartitionMap) func(row int) int {
	return func(row int) int {
		return row % m.QueryPartitions // want `closure captures m\.QueryPartitions from the enclosing scope`
	}
}

// Immediately invoked literals run now, within the epoch: exempt.
func immediate(m *PartitionMap) int {
	return func() int { return m.QueryPartitions }()
}

// Documented exceptions stay local.
type shapeRecord struct{ qp int }

func recordShape(m *PartitionMap) shapeRecord {
	//invalidb:allow epochcapture the record stores the shape as data and never routes by it
	return shapeRecord{qp: m.QueryPartitions}
}
