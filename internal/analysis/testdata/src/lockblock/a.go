package fixture

import (
	"net"
	"sync"
	"time"

	"invalidb/internal/document"
	"invalidb/internal/query"
)

type guarded struct {
	mu sync.Mutex
	rw sync.RWMutex
	ch chan int
	wg sync.WaitGroup
}

func (g *guarded) sendWhileLocked() {
	g.mu.Lock()
	g.ch <- 1 // want `channel send while holding g\.mu`
	g.mu.Unlock()
}

func (g *guarded) sleepWhileDeferLocked() {
	g.mu.Lock()
	defer g.mu.Unlock()
	time.Sleep(time.Millisecond) // want `time\.Sleep while holding g\.mu`
}

func (g *guarded) receiveWhileRLocked() {
	g.rw.RLock()
	v := <-g.ch // want `channel receive while holding g\.rw`
	_ = v
	g.rw.RUnlock()
}

func (g *guarded) waitWhileLocked() {
	g.mu.Lock()
	g.wg.Wait() // want `WaitGroup\.Wait while holding g\.mu`
	g.mu.Unlock()
}

func (g *guarded) dialWhileLocked() {
	g.mu.Lock()
	c, err := net.Dial("tcp", "localhost:1") // want `net\.Dial while holding g\.mu`
	_, _ = c, err
	g.mu.Unlock()
}

func (g *guarded) blockingSelect() {
	g.mu.Lock()
	select { // want `blocking select while holding g\.mu`
	case v := <-g.ch:
		_ = v
	}
	g.mu.Unlock()
}

func (g *guarded) rangeWhileLocked() {
	g.mu.Lock()
	for v := range g.ch { // want `range over channel while holding g\.mu`
		_ = v
	}
	g.mu.Unlock()
}

func (g *guarded) bothHeld() {
	g.mu.Lock()
	g.rw.Lock()
	g.ch <- 1 // want `channel send while holding g\.mu, g\.rw`
	g.rw.Unlock()
	g.mu.Unlock()
}

func (g *guarded) goroutineBody() {
	go func() {
		g.mu.Lock()
		g.ch <- 1 // want `channel send while holding g\.mu`
		g.mu.Unlock()
	}()
}

// Negative cases: the sanctioned idioms must stay unflagged.

func (g *guarded) trySendIsFine() {
	g.mu.Lock()
	select {
	case g.ch <- 1:
	default:
	}
	g.mu.Unlock()
}

func (g *guarded) unlockThenSend() {
	g.mu.Lock()
	g.mu.Unlock()
	g.ch <- 1 // lock released: fine
}

func (g *guarded) branchRelease(cond bool) {
	g.mu.Lock()
	if cond {
		g.mu.Unlock()
		g.ch <- 1 // released on this path: fine
		return
	}
	g.mu.Unlock()
}

func (g *guarded) closureEscapesLockRegion() {
	g.mu.Lock()
	f := func() { g.ch <- 1 } // runs later, outside the lock region: fine
	g.mu.Unlock()
	f()
}

// Predicate evaluation under a lock: query.Match is unbounded user work (the
// Collection.scan regression — matching a large store under the shard lock
// stalls every writer).

func (g *guarded) matchWhileLocked(q *query.Query, docs []document.Document) []document.Document {
	var out []document.Document
	g.rw.RLock()
	for _, d := range docs {
		if q.Match(d) { // want `query predicate evaluation while holding g\.rw`
			out = append(out, d)
		}
	}
	g.rw.RUnlock()
	return out
}

func (g *guarded) snapshotThenMatch(q *query.Query, docs []document.Document) []document.Document {
	g.rw.RLock()
	snap := make([]document.Document, len(docs))
	copy(snap, docs)
	g.rw.RUnlock()
	var out []document.Document
	for _, d := range snap {
		if q.Match(d) { // lock released: fine
			out = append(out, d)
		}
	}
	return out
}
