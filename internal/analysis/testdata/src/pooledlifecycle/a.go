package fixture

import "sync"

type thing struct{ n int }

var pool = sync.Pool{New: func() any { return new(thing) }}

func recycleTuple(t *thing) {
	t.n = 0
	pool.Put(t)
}

func discarded() {
	pool.Get() // want `Get result discarded`
}

func blankAssign() {
	_ = pool.Get() // want `Get result assigned to _`
}

func useAfterPut() {
	t := pool.Get().(*thing)
	t.n = 1
	pool.Put(t)
	t.n = 2 // want `use of t after it was returned to the pool`
}

func useAfterRecycleHelper() {
	t := pool.Get().(*thing)
	recycleTuple(t)
	t.n = 3 // want `use of t after it was returned to the pool`
}

func doublePut() {
	t := pool.Get().(*thing)
	pool.Put(t)
	pool.Put(t) // want `t returned to the pool twice`
}

func leaked() {
	t := pool.Get().(*thing) // want `neither returned to the pool nor handed off`
	t.n = 42
}

// Negative cases: the sanctioned lifecycles must stay unflagged.

func putBack() {
	t := pool.Get().(*thing)
	t.n = 1
	pool.Put(t)
}

func handoffToChannel(ch chan *thing) {
	t := pool.Get().(*thing)
	ch <- t
}

func handoffToCall() {
	t := pool.Get().(*thing)
	recycleTuple(t)
}

func handoffByReturn() *thing {
	t := pool.Get().(*thing)
	return t
}

func deferredPut() {
	t := pool.Get().(*thing)
	defer pool.Put(t) // runs after every ordinary use: fine
	t.n = 4
}
