// Package main is exempt from goroleak: process lifetime is the intended
// scope for cmd entry-point goroutines.
package main

func forever() {
	for {
	}
}

func main() {
	go forever()
}
