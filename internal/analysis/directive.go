package analysis

import (
	"go/ast"
	"sort"
	"strings"
)

// Directive validates the //invalidb: source directives the rest of the
// suite keys off. A misspelled or misplaced directive silently disables a
// check — the worst failure mode for a lint suite — so the directives
// themselves are linted:
//
//   - only known directive names (hotpath, allow) are accepted;
//   - //invalidb:hotpath must sit in a function's doc comment;
//   - //invalidb:allow must name a known analyzer and give a reason.
var Directive = &Analyzer{
	Name: "directive",
	Doc:  "validate //invalidb:hotpath and //invalidb:allow directives",
	Run:  runDirective,
}

// knownAnalyzerNames are the valid //invalidb:allow targets.
var knownAnalyzerNames = map[string]bool{
	"hotpathalloc":    true,
	"lockblock":       true,
	"metrickey":       true,
	"pooledlifecycle": true,
	"coarseclock":     true,
	"directive":       true,
	"wirekind":        true,
	"epochcapture":    true,
	"goroleak":        true,
}

func runDirective(pass *Pass) (any, error) {
	for _, f := range pass.Files {
		// Comments attached as function docs are valid hotpath positions.
		hotpathDocs := map[*ast.Comment]bool{}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Doc == nil {
				continue
			}
			for _, c := range fn.Doc.List {
				hotpathDocs[c] = true
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, args, ok := parseDirective(c.Text)
				if !ok {
					continue
				}
				switch name {
				case directiveHotpath:
					if args != "" {
						pass.Reportf(c.Pos(), "//invalidb:hotpath takes no arguments")
					}
					if !hotpathDocs[c] {
						pass.Reportf(c.Pos(), "//invalidb:hotpath must be part of a function's doc comment")
					}
				case directiveAllow:
					fields := strings.Fields(args)
					if len(fields) == 0 {
						pass.Reportf(c.Pos(), "//invalidb:allow needs an analyzer name and a reason")
						continue
					}
					if !knownAnalyzerNames[fields[0]] {
						pass.Reportf(c.Pos(), "//invalidb:allow names unknown analyzer %q (known: %s)",
							fields[0], strings.Join(sortedNames(), ", "))
					}
					if len(fields) < 2 {
						pass.Reportf(c.Pos(), "//invalidb:allow %s needs a reason: deliberate exceptions are documented in place", fields[0])
					}
				default:
					pass.Reportf(c.Pos(), "unknown directive //invalidb:%s (known: hotpath, allow)", name)
				}
			}
		}
	}
	return nil, nil
}

func sortedNames() []string {
	out := make([]string, 0, len(knownAnalyzerNames))
	for n := range knownAnalyzerNames {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
