package analysis

import (
	"go/token"
	"go/types"
	"strings"
)

// This file computes per-function effect summaries — the facts that make
// hotpathalloc, coarseclock and lockblock interprocedural. For every
// function declared in a package the summarizer records which allocating
// constructs, wall-clock reads and unbounded blocking operations its body
// can reach, including transitively through calls into other functions of
// the same package and — via exported facts — functions of already-analyzed
// dependency packages. Operations suppressed by an //invalidb:allow
// directive at their source do not enter the summary: a documented
// exception stays local instead of re-surfacing at every caller.

// OpRef is one reachable operation inside a function's summary: what it
// is, where it lives, and the call chain from the summarized function down
// to it (empty for the function's own body).
type OpRef struct {
	What string
	Pos  token.Position
	Via  string
}

// chain renders the op's provenance for a diagnostic: "make at file:17"
// or "make at file:17 (via flush → encode)".
func (o OpRef) chain() string {
	s := o.What + " at " + o.Pos.String()
	if o.Via != "" {
		s += " (via " + o.Via + ")"
	}
	return s
}

// maxSummaryOps bounds each effect list. One representative per root cause
// is all a caller-side diagnostic needs; the cap keeps fact payloads and
// the fixpoint bounded on pathological packages.
const maxSummaryOps = 8

// FuncSummary aggregates a function's reachable effects.
type FuncSummary struct {
	// Allocs are allocating constructs (the hotpathalloc op set).
	Allocs []OpRef
	// Clocks are wall-clock reads (time.Now).
	Clocks []OpRef
	// Blocks are unbounded blocking operations (the lockblock op set).
	Blocks []OpRef
	// Hotpath marks functions annotated //invalidb:hotpath: their bodies
	// are checked directly in their own package, so callers do not
	// re-report their effects.
	Hotpath bool
}

func (s *FuncSummary) empty() bool {
	return !s.Hotpath && len(s.Allocs) == 0 && len(s.Clocks) == 0 && len(s.Blocks) == 0
}

// funcSummaryFact carries a FuncSummary across package boundaries.
type funcSummaryFact struct {
	Summary FuncSummary
}

func (*funcSummaryFact) AFact() {}

// Summaries is the FuncSummaries result: the summary of every function
// declared in the package.
type Summaries map[*types.Func]*FuncSummary

// FuncSummaries computes allocation/clock/blocking summaries for every
// declared function and exports them as facts for importing packages. It
// reports nothing itself.
var FuncSummaries = &Analyzer{
	Name:     "funcsummary",
	Doc:      "summarize each function's reachable allocations, clock reads and blocking ops (internal requirement)",
	Requires: []*Analyzer{CallGraphAnalyzer},
	Run:      runFuncSummaries,
}

func runFuncSummaries(pass *Pass) (any, error) {
	cg := pass.ResultOf[CallGraphAnalyzer].(*CallGraph)
	sums := Summaries{}

	// Phase 1: direct effects of each body, minus allow-suppressed ops,
	// plus effects imported from dependency-package callees (their facts
	// are complete — the driver analyzes packages in dependency order).
	for obj, decl := range cg.Decls {
		s := &FuncSummary{Hotpath: hasHotpathDirective(decl)}
		record := func(list *[]OpRef, analyzer string) func(pos token.Pos, what string) {
			return func(pos token.Pos, what string) {
				if pass.Allowed(analyzer, pos) || len(*list) >= maxSummaryOps {
					return
				}
				*list = append(*list, OpRef{What: what, Pos: pass.Fset.Position(pos)})
			}
		}
		// Analyzer names are spelled out: referencing the Analyzer vars here
		// would create an initialization cycle (they Require this one).
		recAlloc := record(&s.Allocs, "hotpathalloc")
		collectAllocOps(pass.TypesInfo, decl, func(pos token.Pos, what, _ string) {
			recAlloc(pos, what)
		})
		collectClockOps(pass.TypesInfo, decl.Body, record(&s.Clocks, "coarseclock"))
		collectBlockingOps(pass.TypesInfo, decl.Body, record(&s.Blocks, "lockblock"))
		for _, site := range cg.Calls[obj] {
			if site.Callee.Pkg() == nil || site.Callee.Pkg() == pass.Pkg {
				continue
			}
			var fact funcSummaryFact
			if !pass.ImportObjectFact(site.Callee, &fact) {
				continue
			}
			mergeSummary(s, &fact.Summary, site)
		}
		sums[obj] = s
	}

	// Phase 2: propagate package-local call edges to a fixpoint. Ops are
	// deduplicated by source position, so recursion terminates once every
	// reachable root cause has flowed to every caller.
	for changed := true; changed; {
		changed = false
		for obj := range cg.Decls {
			s := sums[obj]
			for _, site := range cg.Calls[obj] {
				callee, ok := sums[site.Callee]
				if !ok {
					continue
				}
				if mergeSummary(s, callee, site) {
					changed = true
				}
			}
		}
	}

	for obj, s := range sums {
		if !s.empty() {
			pass.ExportObjectFact(obj, &funcSummaryFact{Summary: *s})
		}
	}
	return sums, nil
}

// mergeSummary folds a callee's effects into the caller's summary through
// one call site, reporting whether anything new was added. Hotpath-annotated
// callees contribute no allocation or clock effects: their bodies are
// checked (and must be clean) where they are declared. Blocking effects
// propagate regardless — blocking is only wrong under a held lock, which is
// the caller's context, not the callee's — but not through call sites
// inside function literals, which run in their own context rather than
// under the caller's locks.
func mergeSummary(caller *FuncSummary, callee *FuncSummary, site CallSite) bool {
	changed := false
	via := site.Callee.Name()
	lift := func(dst *[]OpRef, src []OpRef) {
		for _, op := range src {
			if len(*dst) >= maxSummaryOps {
				return
			}
			seen := false
			for _, have := range *dst {
				if have.Pos == op.Pos && have.What == op.What {
					seen = true
					break
				}
			}
			if seen {
				continue
			}
			lifted := op
			if lifted.Via == "" {
				lifted.Via = via
			} else if !strings.HasPrefix(lifted.Via, via) {
				lifted.Via = via + " → " + lifted.Via
			}
			*dst = append(*dst, lifted)
			changed = true
		}
	}
	if !callee.Hotpath {
		lift(&caller.Allocs, callee.Allocs)
		lift(&caller.Clocks, callee.Clocks)
	}
	if !site.InLiteral {
		lift(&caller.Blocks, callee.Blocks)
	}
	return changed
}

// summaryFor resolves a callee's summary: from this package's result when
// it is declared here, from imported facts otherwise.
func summaryFor(pass *Pass, sums Summaries, callee *types.Func) *FuncSummary {
	if s, ok := sums[callee]; ok {
		return s
	}
	var fact funcSummaryFact
	if pass.ImportObjectFact(callee, &fact) {
		return &fact.Summary
	}
	return nil
}
