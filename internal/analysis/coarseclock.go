package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// coarseClockPackages are the packages where the coarse tick clock exists
// and wall-clock reads are forbidden by default: matching nodes advance
// their notion of time from tick tuples (matchBolt.now), so a time.Now()
// per write is pure overhead on the path the paper's per-node throughput
// budget measures. Deliberate wall-clock reads (subscription deadlines,
// stage-boundary stamps on the rare match path) carry an
// //invalidb:allow coarseclock directive explaining why.
var coarseClockPackages = map[string]bool{
	"invalidb/internal/core": true,
}

// CoarseClock forbids time.Now in coarse-clock packages and in any
// //invalidb:hotpath function anywhere in the tree. The check is
// interprocedural: a call into a helper that reaches time.Now — through
// any chain of statically resolved calls (FuncSummaries) — is reported at
// the call site, unless the read was excused with //invalidb:allow at its
// source.
var CoarseClock = &Analyzer{
	Name:     "coarseclock",
	Doc:      "forbid time.Now in coarse-tick-clock packages and hot-path functions, transitively through calls",
	Requires: []*Analyzer{CallGraphAnalyzer, FuncSummaries},
	Run:      runCoarseClock,
}

// collectClockOps emits every direct wall-clock read in the body.
func collectClockOps(info *types.Info, body ast.Node, emit func(pos token.Pos, what string)) {
	if body == nil {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok && isPkgFunc(info, call, "time", "Now") {
			emit(call.Pos(), "time.Now")
		}
		return true
	})
}

func runCoarseClock(pass *Pass) (any, error) {
	cg := pass.ResultOf[CallGraphAnalyzer].(*CallGraph)
	sums := pass.ResultOf[FuncSummaries].(Summaries)
	info := pass.TypesInfo
	if coarseClockPackages[pass.PkgPath] {
		inspectFiles(pass.Files, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && isPkgFunc(info, call, "time", "Now") {
				pass.Reportf(call.Pos(), "time.Now in a coarse-clock package: use the tick-driven clock, or document the exception with //invalidb:allow coarseclock <reason>")
			}
			return true
		})
		// Calls out of the package that reach a wall-clock read. Local
		// callees are skipped: their own time.Now sites were reported above.
		for obj := range cg.Decls {
			reported := map[*types.Func]bool{}
			for _, site := range cg.Calls[obj] {
				if site.Callee.Pkg() == pass.Pkg || reported[site.Callee] {
					continue
				}
				if s := summaryFor(pass, sums, site.Callee); s != nil && len(s.Clocks) > 0 {
					reported[site.Callee] = true
					pass.Reportf(site.Call.Pos(), "call to %s reads the wall clock in a coarse-clock package: %s", site.Callee.Name(), s.Clocks[0].chain())
				}
			}
		}
		return nil, nil
	}
	for _, fn := range pass.HotpathFuncs() {
		if fn.Body == nil {
			continue
		}
		collectClockOps(info, fn.Body, func(pos token.Pos, _ string) {
			pass.Reportf(pos, "time.Now in hot-path function %s: take the timestamp outside the hot path or use the coarse clock", fn.Name.Name)
		})
		obj, ok := info.Defs[fn.Name].(*types.Func)
		if !ok {
			continue
		}
		reported := map[*types.Func]bool{}
		for _, site := range cg.Calls[obj] {
			if reported[site.Callee] {
				continue
			}
			s := summaryFor(pass, sums, site.Callee)
			if s == nil || s.Hotpath || len(s.Clocks) == 0 {
				continue
			}
			reported[site.Callee] = true
			pass.Reportf(site.Call.Pos(), "call to %s reads the wall clock in hot-path function %s: %s", site.Callee.Name(), fn.Name.Name, s.Clocks[0].chain())
		}
	}
	return nil, nil
}
