package analysis

import (
	"go/ast"
)

// coarseClockPackages are the packages where the coarse tick clock exists
// and wall-clock reads are forbidden by default: matching nodes advance
// their notion of time from tick tuples (matchBolt.now), so a time.Now()
// per write is pure overhead on the path the paper's per-node throughput
// budget measures. Deliberate wall-clock reads (subscription deadlines,
// stage-boundary stamps on the rare match path) carry an
// //invalidb:allow coarseclock directive explaining why.
var coarseClockPackages = map[string]bool{
	"invalidb/internal/core": true,
}

// CoarseClock forbids time.Now in coarse-clock packages and in any
// //invalidb:hotpath function anywhere in the tree.
var CoarseClock = &Analyzer{
	Name: "coarseclock",
	Doc:  "forbid time.Now in coarse-tick-clock packages and hot-path functions",
	Run:  runCoarseClock,
}

func runCoarseClock(pass *Pass) error {
	info := pass.TypesInfo
	if coarseClockPackages[pass.PkgPath] {
		inspectFiles(pass.Files, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && isPkgFunc(info, call, "time", "Now") {
				pass.Reportf(call.Pos(), "time.Now in a coarse-clock package: use the tick-driven clock, or document the exception with //invalidb:allow coarseclock <reason>")
			}
			return true
		})
		return nil
	}
	for _, fn := range pass.HotpathFuncs() {
		if fn.Body == nil {
			continue
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && isPkgFunc(info, call, "time", "Now") {
				pass.Reportf(call.Pos(), "time.Now in hot-path function %s: take the timestamp outside the hot path or use the coarse clock", fn.Name.Name)
			}
			return true
		})
	}
	return nil
}
