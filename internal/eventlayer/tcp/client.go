package tcp

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"invalidb/internal/eventlayer"
)

// ClientOptions tunes a broker client.
type ClientOptions struct {
	// BufferSize is the per-subscription local queue. Zero selects 4096.
	BufferSize int
	// SendQueue is the outbound frame queue shared by publishes and
	// control frames; the write loop drains it and flushes once per
	// drain, coalescing syscalls under load. Zero selects 1024.
	SendQueue int
	// ReconnectInterval is the delay between reconnection attempts after the
	// broker connection drops. Zero selects 250ms.
	ReconnectInterval time.Duration
	// DialTimeout bounds each connection attempt. Zero selects 2s.
	DialTimeout time.Duration
	// PublishRetries is how many extra attempts Publish makes after a
	// failed send, waiting for the reconnect loop to restore the broker
	// connection between attempts. Zero selects 3; negative disables
	// retries (fail fast).
	PublishRetries int
	// PublishBackoff is the wait before the first retry; it doubles per
	// attempt (bounded exponential backoff). Zero selects 10ms.
	PublishBackoff time.Duration
}

// connState is one live broker connection: its socket, its outbound frame
// queue, and a closed channel latched when the connection is severed. The
// write loop owns the socket's outbound half; everyone else only
// enqueues.
type connState struct {
	conn   net.Conn
	out    chan frame
	closed chan struct{}
	once   sync.Once
}

// shutdown severs the connection exactly once: the closed channel wakes
// blocked publishers and the write loop, closing the socket wakes the
// read loop.
func (cs *connState) shutdown() {
	cs.once.Do(func() {
		close(cs.closed)
		_ = cs.conn.Close()
	})
}

// Client connects to a tcp.Server broker and implements eventlayer.Bus.
// The connection is re-established automatically after failures and all
// active subscriptions are replayed to the broker on reconnect; messages
// published by others while disconnected are lost (fire-and-forget pub/sub,
// the same guarantee the in-process bus gives a late subscriber).
type Client struct {
	addr string
	opts ClientOptions

	mu       sync.Mutex
	cs       *connState
	subs     map[*clientSub]struct{}
	patterns map[string]int
	closed   bool

	done chan struct{}
	wg   sync.WaitGroup
}

// Dial connects to a broker.
func Dial(addr string, opts ClientOptions) (*Client, error) {
	if opts.BufferSize <= 0 {
		opts.BufferSize = 4096
	}
	if opts.SendQueue <= 0 {
		opts.SendQueue = 1024
	}
	if opts.ReconnectInterval <= 0 {
		opts.ReconnectInterval = 250 * time.Millisecond
	}
	if opts.DialTimeout <= 0 {
		opts.DialTimeout = 2 * time.Second
	}
	if opts.PublishRetries == 0 {
		opts.PublishRetries = 3
	} else if opts.PublishRetries < 0 {
		opts.PublishRetries = 0
	}
	if opts.PublishBackoff <= 0 {
		opts.PublishBackoff = 10 * time.Millisecond
	}
	c := &Client{
		addr:     addr,
		opts:     opts,
		subs:     map[*clientSub]struct{}{},
		patterns: map[string]int{},
		done:     make(chan struct{}),
	}
	conn, err := net.DialTimeout("tcp", addr, opts.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("eventlayer/tcp: dial %s: %w", addr, err)
	}
	c.startConn(conn)
	return c, nil
}

// startConn installs conn as the live connection and starts its read and
// write loops. Caller must guarantee no other connection is live.
func (c *Client) startConn(conn net.Conn) {
	cs := &connState{
		conn:   conn,
		out:    make(chan frame, c.opts.SendQueue),
		closed: make(chan struct{}),
	}
	c.cs = cs
	c.wg.Add(2)
	go c.readLoop(cs)
	go c.writeLoop(cs)
}

// Publish implements eventlayer.Bus. A failed send (no connection, or a
// severed connection before the frame was queued) is retried up to
// PublishRetries times with exponential backoff, giving the reconnect
// loop a window to restore the broker link before the publish is
// reported lost.
func (c *Client) Publish(topic string, payload []byte) error {
	var err error
	for attempt := 0; ; attempt++ {
		if err = c.tryPublish(topic, payload); err == nil || err == eventlayer.ErrBusClosed {
			return err
		}
		if attempt >= c.opts.PublishRetries {
			return err
		}
		backoff := c.opts.PublishBackoff << uint(attempt)
		if max := 32 * c.opts.PublishBackoff; backoff > max {
			backoff = max
		}
		select {
		case <-c.done:
			return eventlayer.ErrBusClosed
		case <-time.After(backoff):
		}
	}
}

// tryPublish queues one publish frame on the live connection's outbound
// queue. It blocks when the queue is full (publisher backpressure) but
// never holds c.mu across the wait, and it fails — for the retry loop to
// handle — when the connection is severed before the frame is accepted.
func (c *Client) tryPublish(topic string, payload []byte) error {
	if len(topic) > 0xFFFF {
		return fmt.Errorf("eventlayer/tcp: topic too long (%d bytes)", len(topic))
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return eventlayer.ErrBusClosed
	}
	cs := c.cs
	c.mu.Unlock()
	if cs == nil {
		return fmt.Errorf("eventlayer/tcp: not connected")
	}
	select {
	case cs.out <- frame{op: opPublish, topic: topic, payload: payload}:
		return nil
	case <-cs.closed:
		return fmt.Errorf("eventlayer/tcp: publish: connection lost")
	case <-c.done:
		return eventlayer.ErrBusClosed
	}
}

// Subscribe implements eventlayer.Bus.
func (c *Client) Subscribe(patterns ...string) (eventlayer.Subscription, error) {
	if len(patterns) == 0 {
		return nil, fmt.Errorf("eventlayer/tcp: subscribe with no patterns")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, eventlayer.ErrBusClosed
	}
	s := &clientSub{
		client:   c,
		patterns: append([]string(nil), patterns...),
		ch:       make(chan eventlayer.Message, c.opts.BufferSize),
	}
	c.subs[s] = struct{}{}
	var fresh []string
	for _, p := range patterns {
		c.patterns[p]++
		if c.patterns[p] == 1 {
			fresh = append(fresh, p)
		}
	}
	if len(fresh) > 0 {
		c.enqueueControlLocked(frame{op: opSubscribe, patterns: fresh})
	}
	return s, nil
}

// enqueueControlLocked queues a control frame without blocking. A full
// queue severs the connection instead of waiting — blocking here would
// deadlock against the write loop's drop path, and the reconnect loop
// replays the complete pattern set anyway. Caller holds c.mu.
func (c *Client) enqueueControlLocked(f frame) {
	if c.cs == nil {
		return
	}
	select {
	case c.cs.out <- f:
	default:
		c.dropConnLocked()
	}
}

// Close implements eventlayer.Bus.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	close(c.done)
	if c.cs != nil {
		c.cs.shutdown()
		c.cs = nil
	}
	for s := range c.subs {
		s.closeInner()
	}
	c.subs = map[*clientSub]struct{}{}
	c.mu.Unlock()
	c.wg.Wait()
	return nil
}

// dropConn severs cs and, if it is still the live connection, triggers
// the reconnect loop.
func (c *Client) dropConn(cs *connState) {
	c.mu.Lock()
	if c.cs == cs {
		c.dropConnLocked()
	} else {
		cs.shutdown()
	}
	c.mu.Unlock()
}

// dropConnLocked severs the current connection and triggers the reconnect
// loop. Caller holds c.mu.
func (c *Client) dropConnLocked() {
	if c.cs != nil {
		c.cs.shutdown()
		c.cs = nil
	}
	if !c.closed {
		c.wg.Add(1)
		go c.reconnectLoop()
	}
}

func (c *Client) reconnectLoop() {
	defer c.wg.Done()
	for {
		select {
		case <-c.done:
			return
		case <-time.After(c.opts.ReconnectInterval):
		}
		conn, err := net.DialTimeout("tcp", c.addr, c.opts.DialTimeout)
		if err != nil {
			continue
		}
		c.mu.Lock()
		if c.closed || c.cs != nil {
			c.mu.Unlock()
			_ = conn.Close()
			return
		}
		c.startConn(conn)
		pats := make([]string, 0, len(c.patterns))
		for p := range c.patterns {
			pats = append(pats, p)
		}
		if len(pats) > 0 {
			// The queue is freshly created and empty, so the pattern
			// replay is always accepted.
			c.enqueueControlLocked(frame{op: opSubscribe, patterns: pats})
		}
		c.mu.Unlock()
		return
	}
}

// writeLoop drains the outbound queue onto the socket: each wakeup
// writes every queued frame through the reusable frame writer and
// flushes exactly once when the queue is empty again.
func (c *Client) writeLoop(cs *connState) {
	defer c.wg.Done()
	fw := newFrameWriter(cs.conn)
	for {
		select {
		case <-cs.closed:
			return
		case f := <-cs.out:
			if err := writeCoalesced(fw, cs.out, f); err != nil {
				c.dropConn(cs)
				return
			}
		}
	}
}

func (c *Client) readLoop(cs *connState) {
	defer c.wg.Done()
	r := bufio.NewReaderSize(cs.conn, 64<<10)
	for {
		f, err := readFrame(r)
		if err != nil {
			c.dropConn(cs)
			return
		}
		if f.op != opMessage {
			continue
		}
		msg := eventlayer.Message{Topic: f.topic, Payload: f.payload}
		c.mu.Lock()
		for s := range c.subs {
			if s.matches(f.topic) {
				s.deliver(msg)
			}
		}
		c.mu.Unlock()
	}
}

type clientSub struct {
	client   *Client
	patterns []string
	ch       chan eventlayer.Message
	dropped  atomic.Uint64

	mu     sync.Mutex
	closed bool
}

func (s *clientSub) matches(topic string) bool {
	for _, p := range s.patterns {
		if matchPattern(p, topic) {
			return true
		}
	}
	return false
}

func (s *clientSub) deliver(msg eventlayer.Message) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	select {
	case s.ch <- msg:
		return
	default:
	}
	select {
	case <-s.ch:
		s.dropped.Add(1)
	default:
	}
	select {
	case s.ch <- msg:
	default:
		s.dropped.Add(1)
	}
}

func (s *clientSub) C() <-chan eventlayer.Message { return s.ch }

func (s *clientSub) Dropped() uint64 { return s.dropped.Load() }

func (s *clientSub) Close() error {
	c := s.client
	c.mu.Lock()
	if _, active := c.subs[s]; active {
		delete(c.subs, s)
		var gone []string
		for _, p := range s.patterns {
			if c.patterns[p] > 1 {
				c.patterns[p]--
			} else {
				delete(c.patterns, p)
				gone = append(gone, p)
			}
		}
		if len(gone) > 0 && !c.closed {
			c.enqueueControlLocked(frame{op: opUnsubscribe, patterns: gone})
		}
	}
	c.mu.Unlock()
	s.closeInner()
	return nil
}

func (s *clientSub) closeInner() {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.ch)
	}
	s.mu.Unlock()
}
