package tcp

import (
	"testing"
	"time"

	"invalidb/internal/core"
	"invalidb/internal/document"
	"invalidb/internal/query"
)

// wireBinaryMagic mirrors the leading byte of the binary envelope encoding
// (DESIGN.md §10). Redeclared here because the codec keeps it unexported;
// the test only needs it to assert which format actually hit the wire.
const wireBinaryMagic = 0xB1

// TestWireMixedModeInterop proves mixed-version interop across a real TCP
// broker: a peer that still speaks JSON drives a binary-speaking cluster
// (and vice versa) with no negotiation, because DecodeWire auto-detects
// the format from the first byte. Each direction runs the full
// subscribe → write → notification loop and asserts the cluster's replies
// are in its own configured format while the peer's hand-encoded frames
// are in the other.
func TestWireMixedModeInterop(t *testing.T) {
	t.Run("json-peer-binary-cluster", func(t *testing.T) {
		runMixedInterop(t, core.WireBinary,
			func(e *core.Envelope) ([]byte, error) { return e.EncodeJSON() },
			'{', wireBinaryMagic)
	})
	t.Run("binary-peer-json-cluster", func(t *testing.T) {
		runMixedInterop(t, core.WireJSON,
			func(e *core.Envelope) ([]byte, error) { return e.EncodeBinary() },
			wireBinaryMagic, '{')
	})
}

func runMixedInterop(t *testing.T, clusterFormat string, encodePeer func(*core.Envelope) ([]byte, error), wantPeerByte, wantClusterByte byte) {
	t.Helper()
	if err := core.SetWireFormat(clusterFormat); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := core.SetWireFormat(core.WireBinary); err != nil {
			t.Fatal(err)
		}
	}()

	srv := newBroker(t)
	clusterBus := newClient(t, srv)
	cluster, err := core.NewCluster(clusterBus, core.Options{
		Namespace:       "mix",
		QueryPartitions: 1,
		WritePartitions: 1,
		TickInterval:    50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.Start(); err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()

	peer := newClient(t, srv)
	topics := cluster.Topics()
	notif, err := peer.Subscribe(topics.Notify("t1"))
	if err != nil {
		t.Fatal(err)
	}
	defer notif.Close()

	subEnv := &core.Envelope{Kind: core.KindSubscribe, Subscribe: &core.SubscribeRequest{
		Tenant:         "t1",
		SubscriptionID: "interop-1",
		Query:          query.Spec{Collection: "orders", Filter: map[string]any{"status": "open"}},
		TTLMillis:      time.Minute.Milliseconds(),
	}}
	data, err := encodePeer(subEnv)
	if err != nil {
		t.Fatal(err)
	}
	if data[0] != wantPeerByte {
		t.Fatalf("peer subscribe encoding starts with %#x, want %#x", data[0], wantPeerByte)
	}
	// The broker registers the cluster's topic subscriptions asynchronously,
	// so a lone publish can race them and be dropped. Subscribing is
	// idempotent per SubscriptionID: republish until the install shows up.
	deadline := time.Now().Add(5 * time.Second)
	for cluster.Metrics().Snapshot().Counters["cluster.subscribes"] == 0 {
		if time.Now().After(deadline) {
			t.Fatal("subscription never installed from foreign-format envelope")
		}
		if err := peer.Publish(topics.Queries(), data); err != nil {
			t.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	writeEnv := &core.Envelope{Kind: core.KindWrite, Write: &core.WriteEvent{
		Tenant: "t1",
		SentNs: time.Now().UnixNano(),
		Image: &document.AfterImage{
			Collection: "orders",
			Key:        "o1",
			Version:    1,
			Op:         document.OpInsert,
			Doc:        document.Document{"_id": "o1", "status": "open"},
		},
	}}
	if data, err = encodePeer(writeEnv); err != nil {
		t.Fatal(err)
	}
	// Same race as above for the writes topic: republish (same version, so
	// a duplicate is a no-op) until the notification arrives.
	if err := peer.Publish(topics.Writes(), data); err != nil {
		t.Fatal(err)
	}
	rewrite := time.NewTicker(50 * time.Millisecond)
	defer rewrite.Stop()

	timeout := time.After(5 * time.Second)
	for {
		select {
		case <-rewrite.C:
			if err := peer.Publish(topics.Writes(), data); err != nil {
				t.Fatal(err)
			}
		case msg := <-notif.C():
			env, err := core.DecodeWire(msg.Payload)
			if err != nil {
				t.Fatalf("decode cluster reply: %v (payload % x)", err, msg.Payload[:min(len(msg.Payload), 16)])
			}
			if env.Kind != core.KindNotification || env.Notification.Type != core.MatchAdd {
				continue // heartbeats etc.
			}
			if msg.Payload[0] != wantClusterByte {
				t.Fatalf("cluster notification starts with %#x, want %#x", msg.Payload[0], wantClusterByte)
			}
			if env.Notification.Key != "o1" {
				t.Fatalf("notification key = %q, want o1", env.Notification.Key)
			}
			return
		case <-timeout:
			t.Fatal("no match notification within 5s")
		}
	}
}
