package tcp

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"

	"invalidb/internal/eventlayer"
	"invalidb/internal/metrics"
)

// ServerOptions tunes the broker.
type ServerOptions struct {
	// QueueSize is the per-session outbound buffer. Zero selects 4096.
	QueueSize int
	// Logf receives connection-level diagnostics; nil silences them.
	Logf func(format string, args ...any)
}

// Server is the standalone event-layer broker. Every accepted connection is
// a session that may publish and subscribe; messages published by one
// session are routed to all sessions whose patterns match.
type Server struct {
	ln         net.Listener
	opts       ServerOptions
	mu         sync.RWMutex
	session    map[*session]struct{}
	sessionSeq atomic.Uint64
	closed     atomic.Bool
	wg         sync.WaitGroup

	// retained holds the last payload of every retained control-plane topic
	// (eventlayer.RetainedTopic: the ".control" suffix). It is replayed to
	// sessions that subscribe with a matching pattern later, so a process
	// joining after the coordinator published the current partition map
	// still converges without waiting for a re-publication.
	retMu    sync.Mutex
	retained map[string][]byte

	published atomic.Uint64
	delivered atomic.Uint64
	dropped   atomic.Uint64
}

// Serve starts a broker on the given address ("127.0.0.1:0" picks a free
// port). It returns once the listener is active; sessions are handled in
// background goroutines until Close.
func Serve(addr string, opts ServerOptions) (*Server, error) {
	if opts.QueueSize <= 0 {
		opts.QueueSize = 4096
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, opts: opts, session: map[*session]struct{}{}, retained: map[string][]byte{}}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the broker's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Stats returns cumulative publish/deliver/drop counters.
func (s *Server) Stats() (published, delivered, dropped uint64) {
	return s.published.Load(), s.delivered.Load(), s.dropped.Load()
}

// SessionStats describes one live session's slow-consumer losses, so a
// single stuck subscriber is distinguishable from broker-wide loss. ID is
// a small monotonic per-broker identifier assigned at accept time; Remote
// is the peer address it maps to (logged on the first drop).
type SessionStats struct {
	ID      uint64
	Remote  string
	Dropped uint64
}

// Sessions returns per-session drop counts for all live sessions.
func (s *Server) Sessions() []SessionStats {
	s.mu.RLock()
	out := make([]SessionStats, 0, len(s.session))
	for sess := range s.session {
		out = append(out, SessionStats{ID: sess.id, Remote: sess.remote, Dropped: sess.dropped.Load()})
	}
	s.mu.RUnlock()
	return out
}

// RegisterMetrics exports the broker's counters and a dynamic
// per-session drop family into the registry.
func (s *Server) RegisterMetrics(r *metrics.Registry) {
	r.Gauge("eventlayer.published", func() float64 { return float64(s.published.Load()) })
	r.Gauge("eventlayer.delivered", func() float64 { return float64(s.delivered.Load()) })
	r.Gauge("eventlayer.dropped", func() float64 { return float64(s.dropped.Load()) })
	r.Gauge("eventlayer.sessions", func() float64 {
		s.mu.RLock()
		defer s.mu.RUnlock()
		return float64(len(s.session))
	})
	// Series are keyed by the numeric session ID, not the remote address:
	// raw peer addresses carry ephemeral ports (a new series on every
	// reconnect) and dots/colons that collide with the dotted metric
	// namespace. The first-drop log line maps the ID back to the address.
	r.Collect(func(emit func(name string, v float64)) {
		for _, st := range s.Sessions() {
			if st.Dropped > 0 {
				emit(fmt.Sprintf("eventlayer.session.%d.dropped", st.ID), float64(st.Dropped))
			}
		}
	})
}

// Close stops accepting connections and tears down all sessions.
func (s *Server) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	err := s.ln.Close()
	s.mu.Lock()
	sessions := make([]*session, 0, len(s.session))
	for sess := range s.session {
		sessions = append(sessions, sess)
	}
	s.mu.Unlock()
	for _, sess := range sessions {
		sess.close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			if s.closed.Load() {
				return
			}
			s.opts.Logf("eventlayer/tcp: accept: %v", err)
			if errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		sess := &session{
			srv:    s,
			id:     s.sessionSeq.Add(1),
			conn:   conn,
			remote: conn.RemoteAddr().String(),
			out:    make(chan frame, s.opts.QueueSize),
			done:   make(chan struct{}),
		}
		s.mu.Lock()
		s.session[sess] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(2)
		go sess.readLoop()
		go sess.writeLoop()
	}
}

type session struct {
	srv     *Server
	id      uint64
	conn    net.Conn
	remote  string
	out     chan frame
	done    chan struct{}
	dropped atomic.Uint64

	mu       sync.Mutex
	patterns map[string]int // refcounted subscribe patterns
	closed   bool
}

// drop charges one slow-consumer loss to this session and the broker
// total, logging the first occurrence so a stuck subscriber is visible.
func (sess *session) drop() {
	if sess.dropped.Add(1) == 1 {
		sess.srv.opts.Logf("eventlayer/tcp: slow consumer session %d (%s): dropping messages", sess.id, sess.remote)
	}
	sess.srv.dropped.Add(1)
}

func (sess *session) close() {
	sess.mu.Lock()
	if sess.closed {
		sess.mu.Unlock()
		return
	}
	sess.closed = true
	close(sess.done)
	sess.mu.Unlock()
	_ = sess.conn.Close()
	sess.srv.mu.Lock()
	delete(sess.srv.session, sess)
	sess.srv.mu.Unlock()
}

func (sess *session) readLoop() {
	defer sess.srv.wg.Done()
	defer sess.close()
	r := bufio.NewReaderSize(sess.conn, 64<<10)
	for {
		f, err := readFrame(r)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) && !isConnReset(err) {
				sess.srv.opts.Logf("eventlayer/tcp: read: %v", err)
			}
			return
		}
		switch f.op {
		case opPublish:
			sess.srv.route(f)
		case opSubscribe:
			sess.mu.Lock()
			if sess.patterns == nil {
				sess.patterns = map[string]int{}
			}
			for _, p := range f.patterns {
				sess.patterns[p]++
			}
			sess.mu.Unlock()
			sess.srv.replayRetained(sess, f.patterns)
		case opUnsubscribe:
			sess.mu.Lock()
			for _, p := range f.patterns {
				if sess.patterns[p] > 1 {
					sess.patterns[p]--
				} else {
					delete(sess.patterns, p)
				}
			}
			sess.mu.Unlock()
		case opPing:
			sess.enqueue(frame{op: opPong})
		case opPong:
			// keep-alive response; nothing to do
		}
	}
}

func (sess *session) writeLoop() {
	defer sess.srv.wg.Done()
	fw := newFrameWriter(sess.conn)
	for {
		select {
		case f := <-sess.out:
			if err := writeCoalesced(fw, sess.out, f); err != nil {
				sess.close()
				return
			}
		case <-sess.done:
			return
		}
	}
}

// matches reports whether the session subscribes to the topic.
func (sess *session) matches(topic string) bool {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	for p := range sess.patterns {
		if matchPattern(p, topic) {
			return true
		}
	}
	return false
}

// enqueue adds an outbound frame, dropping the oldest when the buffer is
// full (Redis pub/sub semantics: a slow subscriber loses messages rather
// than stalling publishers).
func (sess *session) enqueue(f frame) {
	select {
	case sess.out <- f:
		return
	default:
	}
	select {
	case <-sess.out:
		sess.drop()
	default:
	}
	select {
	case sess.out <- f:
	default:
		sess.drop()
	}
}

// route fans a published message out to all matching sessions.
func (s *Server) route(f frame) {
	s.published.Add(1)
	if eventlayer.RetainedTopic(f.topic) {
		s.retMu.Lock()
		s.retained[f.topic] = append([]byte(nil), f.payload...)
		s.retMu.Unlock()
	}
	msg := frame{op: opMessage, topic: f.topic, payload: f.payload}
	s.mu.RLock()
	for sess := range s.session {
		if sess.matches(f.topic) {
			sess.enqueue(msg)
			s.delivered.Add(1)
		}
	}
	s.mu.RUnlock()
}

// replayRetained delivers the retained payload of every control-plane topic
// matching the freshly subscribed patterns to that session only.
func (s *Server) replayRetained(sess *session, patterns []string) {
	s.retMu.Lock()
	defer s.retMu.Unlock()
	for topic, payload := range s.retained {
		for _, p := range patterns {
			if matchPattern(p, topic) {
				sess.enqueue(frame{op: opMessage, topic: topic, payload: payload})
				s.delivered.Add(1)
				break
			}
		}
	}
}

// matchPattern mirrors eventlayer.matchPattern: literal match or '*' suffix
// prefix match.
func matchPattern(pattern, topic string) bool {
	if p, ok := strings.CutSuffix(pattern, "*"); ok {
		return strings.HasPrefix(topic, p)
	}
	return pattern == topic
}

func isConnReset(err error) bool {
	return err != nil && strings.Contains(err.Error(), "connection reset")
}
