// Package tcp implements the event layer as a standalone TCP broker — the
// multi-process counterpart of eventlayer.MemBus, standing in for the Redis
// server of the paper's prototype. Frames are length-prefixed binary; the
// broker treats payloads as opaque bytes and applies the same
// drop-oldest-on-overflow policy per subscriber session.
package tcp

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Frame operations.
const (
	opPublish     byte = 1 // client -> server: topic + payload
	opSubscribe   byte = 2 // client -> server: pattern list
	opUnsubscribe byte = 3 // client -> server: pattern list
	opMessage     byte = 4 // server -> client: topic + payload
	opPing        byte = 5 // either direction
	opPong        byte = 6 // either direction
)

// maxFrameSize bounds a single frame (16 MiB) to protect the broker from
// corrupt length headers.
const maxFrameSize = 16 << 20

type frame struct {
	op       byte
	topic    string
	payload  []byte
	patterns []string
}

// writeFrame encodes a frame as: uint32 body length, op byte, body.
func writeFrame(w *bufio.Writer, f frame) error {
	var body []byte
	switch f.op {
	case opPublish, opMessage:
		if len(f.topic) > 0xFFFF {
			return fmt.Errorf("tcp: topic too long (%d bytes)", len(f.topic))
		}
		body = make([]byte, 2+len(f.topic)+len(f.payload))
		binary.BigEndian.PutUint16(body[:2], uint16(len(f.topic)))
		copy(body[2:], f.topic)
		copy(body[2+len(f.topic):], f.payload)
	case opSubscribe, opUnsubscribe:
		n := 2
		for _, p := range f.patterns {
			if len(p) > 0xFFFF {
				return fmt.Errorf("tcp: pattern too long (%d bytes)", len(p))
			}
			n += 2 + len(p)
		}
		body = make([]byte, n)
		binary.BigEndian.PutUint16(body[:2], uint16(len(f.patterns)))
		off := 2
		for _, p := range f.patterns {
			binary.BigEndian.PutUint16(body[off:off+2], uint16(len(p)))
			off += 2
			copy(body[off:], p)
			off += len(p)
		}
	case opPing, opPong:
	default:
		return fmt.Errorf("tcp: unknown frame op %d", f.op)
	}
	if len(body)+1 > maxFrameSize {
		return fmt.Errorf("tcp: frame too large (%d bytes)", len(body)+1)
	}
	var hdr [5]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(body)+1))
	hdr[4] = f.op
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(body); err != nil {
		return err
	}
	return w.Flush()
}

// readFrame decodes one frame from the stream.
func readFrame(r *bufio.Reader) (frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return frame{}, err
	}
	size := binary.BigEndian.Uint32(hdr[:])
	if size == 0 || size > maxFrameSize {
		return frame{}, fmt.Errorf("tcp: invalid frame size %d", size)
	}
	buf := make([]byte, size)
	if _, err := io.ReadFull(r, buf); err != nil {
		return frame{}, err
	}
	f := frame{op: buf[0]}
	body := buf[1:]
	switch f.op {
	case opPublish, opMessage:
		if len(body) < 2 {
			return frame{}, fmt.Errorf("tcp: short publish frame")
		}
		tl := int(binary.BigEndian.Uint16(body[:2]))
		if len(body) < 2+tl {
			return frame{}, fmt.Errorf("tcp: truncated topic")
		}
		f.topic = string(body[2 : 2+tl])
		f.payload = body[2+tl:]
	case opSubscribe, opUnsubscribe:
		if len(body) < 2 {
			return frame{}, fmt.Errorf("tcp: short subscribe frame")
		}
		n := int(binary.BigEndian.Uint16(body[:2]))
		off := 2
		for i := 0; i < n; i++ {
			if len(body) < off+2 {
				return frame{}, fmt.Errorf("tcp: truncated pattern list")
			}
			pl := int(binary.BigEndian.Uint16(body[off : off+2]))
			off += 2
			if len(body) < off+pl {
				return frame{}, fmt.Errorf("tcp: truncated pattern")
			}
			f.patterns = append(f.patterns, string(body[off:off+pl]))
			off += pl
		}
	case opPing, opPong:
	default:
		return frame{}, fmt.Errorf("tcp: unknown frame op %d", f.op)
	}
	return f, nil
}
