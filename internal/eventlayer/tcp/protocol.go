// Package tcp implements the event layer as a standalone TCP broker — the
// multi-process counterpart of eventlayer.MemBus, standing in for the Redis
// server of the paper's prototype. Frames are length-prefixed binary; the
// broker treats payloads as opaque bytes and applies the same
// drop-oldest-on-overflow policy per subscriber session.
package tcp

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Frame operations.
const (
	opPublish     byte = 1 // client -> server: topic + payload
	opSubscribe   byte = 2 // client -> server: pattern list
	opUnsubscribe byte = 3 // client -> server: pattern list
	opMessage     byte = 4 // server -> client: topic + payload
	opPing        byte = 5 // either direction
	opPong        byte = 6 // either direction
)

// maxFrameSize bounds a single frame (16 MiB) to protect the broker from
// corrupt length headers.
const maxFrameSize = 16 << 20

type frame struct {
	op       byte
	topic    string
	payload  []byte
	patterns []string
}

// appendFrame appends the encoding of f — uint32 body length, op byte,
// body — to dst and returns the extended slice. Append-style encoding
// into a caller-owned buffer is what lets a connection's write loop reuse
// one scratch buffer for every frame instead of allocating per frame.
func appendFrame(dst []byte, f frame) ([]byte, error) {
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, f.op) // length backfilled below
	switch f.op {
	case opPublish, opMessage:
		if len(f.topic) > 0xFFFF {
			return nil, fmt.Errorf("tcp: topic too long (%d bytes)", len(f.topic))
		}
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(f.topic)))
		dst = append(dst, f.topic...)
		dst = append(dst, f.payload...)
	case opSubscribe, opUnsubscribe:
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(f.patterns)))
		for _, p := range f.patterns {
			if len(p) > 0xFFFF {
				return nil, fmt.Errorf("tcp: pattern too long (%d bytes)", len(p))
			}
			dst = binary.BigEndian.AppendUint16(dst, uint16(len(p)))
			dst = append(dst, p...)
		}
	case opPing, opPong:
	default:
		return nil, fmt.Errorf("tcp: unknown frame op %d", f.op)
	}
	size := len(dst) - start - 4
	if size > maxFrameSize {
		return nil, fmt.Errorf("tcp: frame too large (%d bytes)", size)
	}
	binary.BigEndian.PutUint32(dst[start:start+4], uint32(size))
	return dst, nil
}

// frameWriter owns one connection's outbound half: frames are encoded
// into a reusable scratch buffer and handed to the buffered writer;
// nothing reaches the socket until Flush. Write loops flush only when
// their outbound queue drains, so under load many frames amortize one
// syscall.
type frameWriter struct {
	w       *bufio.Writer
	scratch []byte
}

func newFrameWriter(w io.Writer) *frameWriter {
	return &frameWriter{w: bufio.NewWriterSize(w, 64<<10)}
}

// writeFrame encodes f into the scratch buffer and queues it on the
// buffered writer without flushing.
func (fw *frameWriter) writeFrame(f frame) error {
	b, err := appendFrame(fw.scratch[:0], f)
	if err != nil {
		return err
	}
	fw.scratch = b[:0]
	_, err = fw.w.Write(b)
	return err
}

// Flush pushes all queued bytes to the connection.
func (fw *frameWriter) Flush() error { return fw.w.Flush() }

// writeCoalesced writes f plus every frame already queued on out, then
// flushes once. This is the shared deliver/publish loop body: the flush
// syscall happens only when the queue drains, so bursts coalesce, while
// an idle queue still flushes immediately after its single frame (the
// publish retry path never waits on an unflushed write).
func writeCoalesced(fw *frameWriter, out <-chan frame, f frame) error {
	for {
		if err := fw.writeFrame(f); err != nil {
			return err
		}
		select {
		case f = <-out:
		default:
			return fw.Flush()
		}
	}
}

// readFrame decodes one frame from the stream.
func readFrame(r *bufio.Reader) (frame, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return frame{}, err
	}
	size := binary.BigEndian.Uint32(hdr[:])
	if size == 0 || size > maxFrameSize {
		return frame{}, fmt.Errorf("tcp: invalid frame size %d", size)
	}
	buf := make([]byte, size)
	if _, err := io.ReadFull(r, buf); err != nil {
		return frame{}, err
	}
	f := frame{op: buf[0]}
	body := buf[1:]
	switch f.op {
	case opPublish, opMessage:
		if len(body) < 2 {
			return frame{}, fmt.Errorf("tcp: short publish frame")
		}
		tl := int(binary.BigEndian.Uint16(body[:2]))
		if len(body) < 2+tl {
			return frame{}, fmt.Errorf("tcp: truncated topic")
		}
		f.topic = string(body[2 : 2+tl])
		f.payload = body[2+tl:]
	case opSubscribe, opUnsubscribe:
		if len(body) < 2 {
			return frame{}, fmt.Errorf("tcp: short subscribe frame")
		}
		n := int(binary.BigEndian.Uint16(body[:2]))
		off := 2
		for i := 0; i < n; i++ {
			if len(body) < off+2 {
				return frame{}, fmt.Errorf("tcp: truncated pattern list")
			}
			pl := int(binary.BigEndian.Uint16(body[off : off+2]))
			off += 2
			if len(body) < off+pl {
				return frame{}, fmt.Errorf("tcp: truncated pattern")
			}
			f.patterns = append(f.patterns, string(body[off:off+pl]))
			off += pl
		}
	case opPing, opPong:
	default:
		return frame{}, fmt.Errorf("tcp: unknown frame op %d", f.op)
	}
	return f, nil
}
