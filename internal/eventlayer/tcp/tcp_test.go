package tcp

import (
	"bufio"
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"invalidb/internal/eventlayer"
	"invalidb/internal/metrics"
)

func newBroker(t *testing.T) *Server {
	t.Helper()
	srv, err := Serve("127.0.0.1:0", ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = srv.Close() })
	return srv
}

func newClient(t *testing.T, srv *Server) *Client {
	t.Helper()
	c, err := Dial(srv.Addr(), ClientOptions{ReconnectInterval: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func recvOne(t *testing.T, sub eventlayer.Subscription) eventlayer.Message {
	t.Helper()
	select {
	case m, ok := <-sub.C():
		if !ok {
			t.Fatal("subscription closed unexpectedly")
		}
		return m
	case <-time.After(3 * time.Second):
		t.Fatal("timed out waiting for message")
		return eventlayer.Message{}
	}
}

func TestFrameRoundTrip(t *testing.T) {
	frames := []frame{
		{op: opPublish, topic: "writes.db1", payload: []byte("payload")},
		{op: opMessage, topic: "t", payload: nil},
		{op: opSubscribe, patterns: []string{"a", "b.*"}},
		{op: opUnsubscribe, patterns: []string{"a"}},
		{op: opPing},
		{op: opPong},
	}
	for i, f := range frames {
		var buf bytes.Buffer
		fw := newFrameWriter(&buf)
		if err := fw.writeFrame(f); err != nil {
			t.Fatalf("frame %d: write: %v", i, err)
		}
		if err := fw.Flush(); err != nil {
			t.Fatalf("frame %d: flush: %v", i, err)
		}
		got, err := readFrame(bufio.NewReader(&buf))
		if err != nil {
			t.Fatalf("frame %d: read: %v", i, err)
		}
		if got.op != f.op || got.topic != f.topic || string(got.payload) != string(f.payload) ||
			fmt.Sprint(got.patterns) != fmt.Sprint(f.patterns) {
			t.Fatalf("frame %d: round trip %+v -> %+v", i, f, got)
		}
	}
}

func TestFrameRejectsGarbage(t *testing.T) {
	inputs := [][]byte{
		{0, 0, 0, 0},             // zero size
		{0xFF, 0xFF, 0xFF, 0xFF}, // oversized
		{0, 0, 0, 1, 99},         // unknown op
		{0, 0, 0, 2, 1, 0},       // short publish body
		{0, 0, 0, 4, 1, 0, 9, 0}, // truncated topic
		{0, 0, 0, 3, 2, 0, 2},    // truncated pattern list
	}
	for i, in := range inputs {
		if _, err := readFrame(bufio.NewReader(bytes.NewReader(in))); err == nil {
			t.Errorf("case %d: garbage frame accepted", i)
		}
	}
}

func TestBrokerPubSub(t *testing.T) {
	srv := newBroker(t)
	pub := newClient(t, srv)
	cons := newClient(t, srv)
	sub, err := cons.Subscribe("writes")
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(30 * time.Millisecond) // let the SUBSCRIBE frame land
	if err := pub.Publish("writes", []byte("after-image")); err != nil {
		t.Fatal(err)
	}
	m := recvOne(t, sub)
	if m.Topic != "writes" || string(m.Payload) != "after-image" {
		t.Fatalf("got %+v", m)
	}
}

func TestBrokerPatternRouting(t *testing.T) {
	srv := newBroker(t)
	pub := newClient(t, srv)
	cons := newClient(t, srv)
	sub, _ := cons.Subscribe("notify.t1.*")
	time.Sleep(30 * time.Millisecond)
	_ = pub.Publish("notify.t2.q", []byte("no"))
	_ = pub.Publish("notify.t1.q", []byte("yes"))
	if m := recvOne(t, sub); m.Topic != "notify.t1.q" {
		t.Fatalf("pattern routing broken: %+v", m)
	}
}

func TestBrokerFanOutAcrossClients(t *testing.T) {
	srv := newBroker(t)
	pub := newClient(t, srv)
	var subs []eventlayer.Subscription
	for i := 0; i < 3; i++ {
		c := newClient(t, srv)
		s, _ := c.Subscribe("t")
		subs = append(subs, s)
	}
	time.Sleep(30 * time.Millisecond)
	_ = pub.Publish("t", []byte("x"))
	for i, s := range subs {
		if m := recvOne(t, s); string(m.Payload) != "x" {
			t.Fatalf("client %d got %+v", i, m)
		}
	}
}

func TestBrokerLocalDemux(t *testing.T) {
	// Two subscriptions on one client with different patterns: the broker
	// sends each message once; the client demuxes locally.
	srv := newBroker(t)
	c := newClient(t, srv)
	subA, _ := c.Subscribe("a")
	subB, _ := c.Subscribe("b")
	time.Sleep(30 * time.Millisecond)
	pub := newClient(t, srv)
	_ = pub.Publish("a", []byte("for-a"))
	_ = pub.Publish("b", []byte("for-b"))
	if m := recvOne(t, subA); string(m.Payload) != "for-a" {
		t.Fatalf("subA got %+v", m)
	}
	if m := recvOne(t, subB); string(m.Payload) != "for-b" {
		t.Fatalf("subB got %+v", m)
	}
}

func TestBrokerUnsubscribeStopsDelivery(t *testing.T) {
	srv := newBroker(t)
	c := newClient(t, srv)
	pub := newClient(t, srv)
	sub, _ := c.Subscribe("t")
	keep, _ := c.Subscribe("keep")
	time.Sleep(30 * time.Millisecond)
	_ = sub.Close()
	time.Sleep(30 * time.Millisecond)
	_ = pub.Publish("t", []byte("gone"))
	_ = pub.Publish("keep", []byte("here"))
	if m := recvOne(t, keep); string(m.Payload) != "here" {
		t.Fatalf("keep got %+v", m)
	}
	select {
	case m, ok := <-sub.C():
		if ok {
			t.Fatalf("closed subscription received %+v", m)
		}
	default:
	}
}

func TestBrokerOverlappingPatternsRefcount(t *testing.T) {
	srv := newBroker(t)
	c := newClient(t, srv)
	pub := newClient(t, srv)
	s1, _ := c.Subscribe("t")
	s2, _ := c.Subscribe("t")
	time.Sleep(30 * time.Millisecond)
	_ = s1.Close() // s2 still holds the pattern
	time.Sleep(30 * time.Millisecond)
	_ = pub.Publish("t", []byte("x"))
	if m := recvOne(t, s2); string(m.Payload) != "x" {
		t.Fatalf("s2 got %+v", m)
	}
}

func TestBrokerClientReconnects(t *testing.T) {
	srv := newBroker(t)
	c := newClient(t, srv)
	pub := newClient(t, srv)
	sub, _ := c.Subscribe("t")
	time.Sleep(30 * time.Millisecond)

	// Sever every session server-side; clients must reconnect and
	// re-subscribe on their own.
	srv.mu.Lock()
	sessions := make([]*session, 0, len(srv.session))
	for s := range srv.session {
		sessions = append(sessions, s)
	}
	srv.mu.Unlock()
	for _, s := range sessions {
		s.close()
	}

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if err := pub.Publish("t", []byte("back")); err == nil {
			select {
			case m := <-sub.C():
				if string(m.Payload) != "back" {
					t.Fatalf("got %+v", m)
				}
				return
			case <-time.After(100 * time.Millisecond):
			}
		} else {
			time.Sleep(50 * time.Millisecond)
		}
	}
	t.Fatal("client did not recover after broker-side disconnect")
}

// TestClientPublishRetriesAcrossReconnect severs the publisher's broker
// connection and issues a single Publish: the retry loop must ride out the
// outage and deliver once the reconnect loop restores the link.
func TestClientPublishRetriesAcrossReconnect(t *testing.T) {
	srv := newBroker(t)
	cons := newClient(t, srv)
	sub, _ := cons.Subscribe("t")
	pub, err := Dial(srv.Addr(), ClientOptions{
		ReconnectInterval: 20 * time.Millisecond,
		PublishRetries:    10,
		PublishBackoff:    15 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = pub.Close() })
	time.Sleep(30 * time.Millisecond)

	pub.mu.Lock()
	pub.dropConnLocked()
	pub.mu.Unlock()

	if err := pub.Publish("t", []byte("survived")); err != nil {
		t.Fatalf("publish did not survive reconnect: %v", err)
	}
	if m := recvOne(t, sub); string(m.Payload) != "survived" {
		t.Fatalf("got %+v", m)
	}
}

// TestClientPublishBoundedFailure kills the broker outright: Publish must
// give up after its bounded retries rather than blocking forever.
func TestClientPublishBoundedFailure(t *testing.T) {
	srv := newBroker(t)
	pub, err := Dial(srv.Addr(), ClientOptions{
		ReconnectInterval: 10 * time.Millisecond,
		PublishRetries:    2,
		PublishBackoff:    5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = pub.Close() })
	_ = srv.Close()
	time.Sleep(30 * time.Millisecond) // let the client notice the dead link

	start := time.Now()
	if err := pub.Publish("t", []byte("x")); err == nil {
		t.Fatal("publish to a dead broker succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("bounded retry took %v", elapsed)
	}
}

func TestBrokerStats(t *testing.T) {
	srv := newBroker(t)
	c := newClient(t, srv)
	pub := newClient(t, srv)
	_, _ = c.Subscribe("t")
	time.Sleep(30 * time.Millisecond)
	_ = pub.Publish("t", []byte("x"))
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		p, d, _ := srv.Stats()
		if p >= 1 && d >= 1 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("stats never advanced")
}

func TestClientClosedOperationsFail(t *testing.T) {
	srv := newBroker(t)
	c := newClient(t, srv)
	_ = c.Close()
	if err := c.Publish("t", nil); err != eventlayer.ErrBusClosed {
		t.Fatalf("publish after close: %v", err)
	}
	if _, err := c.Subscribe("t"); err != eventlayer.ErrBusClosed {
		t.Fatalf("subscribe after close: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", ClientOptions{DialTimeout: 100 * time.Millisecond}); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
}

// Per-session slow-consumer accounting: drops are charged to the stuck
// session (not just the broker-wide total), the first drop is logged,
// and the counts surface through the metrics registry.
func TestSlowConsumerPerSessionDrops(t *testing.T) {
	var mu sync.Mutex
	var logged []string
	srv := &Server{
		opts: ServerOptions{Logf: func(f string, a ...any) {
			mu.Lock()
			logged = append(logged, fmt.Sprintf(f, a...))
			mu.Unlock()
		}},
		session: map[*session]struct{}{},
	}
	slow := &session{srv: srv, id: 1, remote: "10.0.0.1:555", out: make(chan frame, 1), done: make(chan struct{})}
	fast := &session{srv: srv, id: 2, remote: "10.0.0.2:556", out: make(chan frame, 16), done: make(chan struct{})}
	srv.session[slow] = struct{}{}
	srv.session[fast] = struct{}{}

	for i := 0; i < 5; i++ {
		slow.enqueue(frame{op: opMessage, topic: "t"})
		fast.enqueue(frame{op: opMessage, topic: "t"})
	}
	// slow's queue holds one frame; each later enqueue drops the oldest.
	if got := slow.dropped.Load(); got != 4 {
		t.Fatalf("slow session dropped = %d, want 4", got)
	}
	if got := fast.dropped.Load(); got != 0 {
		t.Fatalf("fast session dropped = %d, want 0", got)
	}
	if _, _, dropped := srv.Stats(); dropped != 4 {
		t.Fatalf("broker dropped = %d, want 4", dropped)
	}
	mu.Lock()
	n := len(logged)
	first := ""
	if n > 0 {
		first = logged[0]
	}
	mu.Unlock()
	if n != 1 {
		t.Fatalf("logged %d times, want exactly one first-drop line: %v", n, logged)
	}
	if !strings.Contains(first, "10.0.0.1:555") {
		t.Fatalf("first-drop log does not name the session: %q", first)
	}

	r := metrics.NewRegistry()
	srv.RegisterMetrics(r)
	snap := r.Snapshot()
	// Series are keyed by the stable numeric session ID, not the remote
	// address (which churns on every reconnect and carries '.'/':').
	if snap.Gauges["eventlayer.session.1.dropped"] != 4 {
		t.Fatalf("registry gauges = %v", snap.Gauges)
	}
	if _, ok := snap.Gauges["eventlayer.session.2.dropped"]; ok {
		t.Fatal("zero-drop session should not emit a gauge")
	}
	if snap.Gauges["eventlayer.sessions"] != 2 {
		t.Fatalf("sessions gauge = %v", snap.Gauges["eventlayer.sessions"])
	}
}

// TestBrokerRetainsControlTopics: the broker keeps the last payload of a
// ".control" topic and replays it to sessions that subscribe afterwards —
// the late-joiner path a multi-process grid relies on for partition-map
// convergence.
func TestBrokerRetainsControlTopics(t *testing.T) {
	srv := newBroker(t)
	pub := newClient(t, srv)
	if err := pub.Publish("grid.control", []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish("grid.control", []byte("current")); err != nil {
		t.Fatal(err)
	}
	if err := pub.Publish("grid.writes", []byte("w1")); err != nil {
		t.Fatal(err)
	}
	// Give the broker time to process the publishes before the late join.
	time.Sleep(50 * time.Millisecond)
	late := newClient(t, srv)
	sub, err := late.Subscribe("grid.control")
	if err != nil {
		t.Fatal(err)
	}
	m := recvOne(t, sub)
	if m.Topic != "grid.control" || string(m.Payload) != "current" {
		t.Fatalf("late subscriber got %s %q, want retained control payload", m.Topic, m.Payload)
	}
	// Data topics are not retained: a late subscription to them stays empty.
	dataSub, err := late.Subscribe("grid.writes")
	if err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-dataSub.C():
		t.Fatalf("data topic replayed %q — only .control topics are retained", m.Payload)
	case <-time.After(100 * time.Millisecond):
	}
}
