package eventlayer

import (
	"math/rand"
	"sync"
	"time"

	"invalidb/internal/metrics"
)

// FaultConfig tunes the failure modes a FaultBus injects. Rates are
// probabilities in [0,1]; at most one fault is applied per message, chosen
// by a single roll of the seeded generator so a given seed always yields
// the same fault sequence for the same sequence of Publish calls.
type FaultConfig struct {
	// Seed makes the fault sequence reproducible. Zero selects seed 1.
	Seed int64
	// Topics restricts fault injection to topics matching any of these
	// patterns (same syntax as Subscribe). Empty means all topics.
	Topics []string
	// DropRate is the probability a message is silently discarded.
	DropRate float64
	// DelayRate is the probability a message is delivered late, after a
	// uniformly random pause in (0, MaxDelay].
	DelayRate float64
	// MaxDelay bounds injected delivery delays. Zero selects 20ms.
	MaxDelay time.Duration
	// DuplicateRate is the probability a message is delivered twice.
	DuplicateRate float64
	// ReorderRate is the probability a message is held back and delivered
	// after the next published message (or after a short safety timeout,
	// so a held message is never lost on a quiet topic).
	ReorderRate float64
}

// FaultStats counts the faults a FaultBus has injected.
type FaultStats struct {
	Published   uint64 // messages offered to Publish
	Dropped     uint64 // silently discarded
	Delayed     uint64 // delivered late
	Duplicated  uint64 // delivered twice
	Reordered   uint64 // held past a later message
	Partitioned uint64 // black-holed by an active partition
}

// FaultBus wraps another Bus and injects configurable faults on the publish
// path: drops, delays, duplicates, reorderings, and full topic partitions.
// It exists so the recovery machinery (acking, retention replay, heartbeat
// failover, supervisor restarts) can be exercised deterministically in
// tests rather than trusted on faith. Subscriptions pass straight through
// to the wrapped bus; only Publish is perturbed.
type FaultBus struct {
	inner Bus

	mu          sync.Mutex
	cfg         FaultConfig
	rng         *rand.Rand
	partitions  []string
	held        *heldMessage
	delayed     map[*delayedMessage]struct{}
	closed      bool
	stats       FaultStats
	holdTimeout time.Duration
}

type heldMessage struct {
	topic   string
	payload []byte
	timer   *time.Timer
}

// delayedMessage is a publish parked on its own timer. Tracking the set of
// outstanding delays lets Close flush them immediately instead of waiting
// out the longest injected delay, and keeps the delivery path free of
// sleeps: a long delay on one topic cannot serialize anything behind it.
type delayedMessage struct {
	topic   string
	payload []byte
	timer   *time.Timer
}

// NewFaultBus wraps inner with fault injection governed by cfg.
func NewFaultBus(inner Bus, cfg FaultConfig) *FaultBus {
	fb := &FaultBus{inner: inner, delayed: make(map[*delayedMessage]struct{})}
	fb.applyConfigLocked(cfg)
	return fb
}

func (fb *FaultBus) applyConfigLocked(cfg FaultConfig) {
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 20 * time.Millisecond
	}
	fb.cfg = cfg
	fb.rng = rand.New(rand.NewSource(cfg.Seed))
	fb.holdTimeout = cfg.MaxDelay
	if fb.holdTimeout < 5*time.Millisecond {
		fb.holdTimeout = 5 * time.Millisecond
	}
}

// SetConfig swaps the fault configuration at runtime and reseeds the
// generator, so a test can run fault-free warmup traffic and then turn
// chaos on (or off) at a known point.
func (fb *FaultBus) SetConfig(cfg FaultConfig) {
	fb.mu.Lock()
	fb.applyConfigLocked(cfg)
	fb.mu.Unlock()
}

// Partition black-holes every subsequent publish whose topic matches one
// of the given patterns, simulating a network partition between publisher
// and broker. Partitions stack until Heal is called.
func (fb *FaultBus) Partition(patterns ...string) {
	fb.mu.Lock()
	fb.partitions = append(fb.partitions, patterns...)
	fb.mu.Unlock()
}

// Heal lifts all partitions and flushes any message held for reordering.
func (fb *FaultBus) Heal() {
	fb.mu.Lock()
	fb.partitions = nil
	flush := fb.takeHeldLocked()
	fb.mu.Unlock()
	if flush != nil {
		fb.inner.Publish(flush.topic, flush.payload)
	}
}

// Stats returns a snapshot of the fault counters.
func (fb *FaultBus) Stats() FaultStats {
	fb.mu.Lock()
	defer fb.mu.Unlock()
	return fb.stats
}

// RegisterMetrics exports the fault counters into the registry so chaos
// runs report injected-fault volume alongside the pipeline metrics.
func (fb *FaultBus) RegisterMetrics(r *metrics.Registry) {
	r.Collect(func(emit func(name string, v float64)) {
		st := fb.Stats()
		emit("faultbus.published", float64(st.Published))
		emit("faultbus.dropped", float64(st.Dropped))
		emit("faultbus.delayed", float64(st.Delayed))
		emit("faultbus.duplicated", float64(st.Duplicated))
		emit("faultbus.reordered", float64(st.Reordered))
		emit("faultbus.partitioned", float64(st.Partitioned))
	})
}

// takeHeldLocked detaches the held message (stopping its safety timer) so
// the caller can deliver it after releasing fb.mu.
func (fb *FaultBus) takeHeldLocked() *heldMessage {
	h := fb.held
	if h == nil {
		return nil
	}
	fb.held = nil
	h.timer.Stop()
	return h
}

// Publish implements Bus. It decides the message's fate under fb.mu but
// performs all inner-bus deliveries outside the lock so a slow or blocking
// inner Publish cannot serialize concurrent publishers through FaultBus.
func (fb *FaultBus) Publish(topic string, payload []byte) error {
	fb.mu.Lock()
	if fb.closed {
		fb.mu.Unlock()
		return ErrBusClosed
	}
	fb.stats.Published++

	for _, p := range fb.partitions {
		if matchPattern(p, topic) {
			fb.stats.Partitioned++
			flush := fb.takeHeldLocked()
			fb.mu.Unlock()
			if flush != nil {
				fb.inner.Publish(flush.topic, flush.payload)
			}
			return nil // fire-and-forget: the publisher never learns
		}
	}

	flush := fb.takeHeldLocked()

	eligible := len(fb.cfg.Topics) == 0
	for _, p := range fb.cfg.Topics {
		if matchPattern(p, topic) {
			eligible = true
			break
		}
	}

	copies := 1
	var delay time.Duration
	hold := false
	if eligible {
		roll := fb.rng.Float64()
		switch c := fb.cfg; {
		case roll < c.DropRate:
			fb.stats.Dropped++
			copies = 0
		case roll < c.DropRate+c.DelayRate:
			fb.stats.Delayed++
			delay = time.Duration(1 + fb.rng.Int63n(int64(c.MaxDelay)))
		case roll < c.DropRate+c.DelayRate+c.DuplicateRate:
			fb.stats.Duplicated++
			copies = 2
		case roll < c.DropRate+c.DelayRate+c.DuplicateRate+c.ReorderRate:
			fb.stats.Reordered++
			hold = true
		}
	}

	if hold {
		h := &heldMessage{topic: topic, payload: payload}
		h.timer = time.AfterFunc(fb.holdTimeout, func() { fb.flushHeld(h) })
		fb.held = h
		fb.mu.Unlock()
		if flush != nil {
			fb.inner.Publish(flush.topic, flush.payload)
		}
		return nil
	}

	if delay > 0 {
		d := &delayedMessage{topic: topic, payload: payload}
		fb.delayed[d] = struct{}{}
		d.timer = time.AfterFunc(delay, func() { fb.deliverDelayed(d) })
		fb.mu.Unlock()
		if flush != nil {
			fb.inner.Publish(flush.topic, flush.payload)
		}
		return nil
	}

	fb.mu.Unlock()
	var err error
	for i := 0; i < copies; i++ {
		if e := fb.inner.Publish(topic, payload); e != nil {
			err = e
		}
	}
	if flush != nil {
		fb.inner.Publish(flush.topic, flush.payload)
	}
	return err
}

// deliverDelayed is the timer path for an injected delay: deliver d unless
// Close already flushed it (it is gone from the tracking set).
func (fb *FaultBus) deliverDelayed(d *delayedMessage) {
	fb.mu.Lock()
	if _, ok := fb.delayed[d]; !ok {
		fb.mu.Unlock()
		return
	}
	delete(fb.delayed, d)
	fb.mu.Unlock()
	fb.inner.Publish(d.topic, d.payload)
}

// flushHeld is the safety-timer path: if the held message is still h (no
// later publish displaced it), deliver it now so quiet topics cannot lose
// a reordered message forever.
func (fb *FaultBus) flushHeld(h *heldMessage) {
	fb.mu.Lock()
	if fb.held != h || fb.closed {
		fb.mu.Unlock()
		return
	}
	fb.held = nil
	fb.mu.Unlock()
	fb.inner.Publish(h.topic, h.payload)
}

// Subscribe implements Bus by delegating to the wrapped bus: faults are
// injected on the publish side only.
func (fb *FaultBus) Subscribe(patterns ...string) (Subscription, error) {
	fb.mu.Lock()
	if fb.closed {
		fb.mu.Unlock()
		return nil, ErrBusClosed
	}
	fb.mu.Unlock()
	return fb.inner.Subscribe(patterns...)
}

// Close implements Bus. Any message held for reordering is flushed (not
// lost), pending delayed deliveries are flushed immediately rather than
// waited out, then the wrapped bus is closed. Close therefore returns
// promptly even when MaxDelay is large.
func (fb *FaultBus) Close() error {
	fb.mu.Lock()
	if fb.closed {
		fb.mu.Unlock()
		return nil
	}
	fb.closed = true
	flush := fb.takeHeldLocked()
	pending := make([]*delayedMessage, 0, len(fb.delayed))
	for d := range fb.delayed {
		d.timer.Stop()
		pending = append(pending, d)
	}
	fb.delayed = make(map[*delayedMessage]struct{})
	fb.mu.Unlock()
	if flush != nil {
		fb.inner.Publish(flush.topic, flush.payload)
	}
	for _, d := range pending {
		fb.inner.Publish(d.topic, d.payload)
	}
	return fb.inner.Close()
}
