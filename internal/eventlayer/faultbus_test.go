package eventlayer

import (
	"fmt"
	"testing"
	"time"
)

func collectPayloads(t *testing.T, sub Subscription, n int, timeout time.Duration) []string {
	t.Helper()
	var out []string
	deadline := time.After(timeout)
	for len(out) < n {
		select {
		case m, ok := <-sub.C():
			if !ok {
				return out
			}
			out = append(out, string(m.Payload))
		case <-deadline:
			return out
		}
	}
	return out
}

func TestFaultBusPassthrough(t *testing.T) {
	fb := NewFaultBus(NewMemBus(MemBusOptions{}), FaultConfig{Seed: 7})
	defer fb.Close()
	sub, err := fb.Subscribe("a")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := fb.Publish("a", []byte(fmt.Sprintf("m%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	got := collectPayloads(t, sub, 10, time.Second)
	if len(got) != 10 {
		t.Fatalf("expected 10 messages, got %d", len(got))
	}
	for i, p := range got {
		if want := fmt.Sprintf("m%d", i); p != want {
			t.Fatalf("message %d = %q, want %q", i, p, want)
		}
	}
}

func TestFaultBusDropDeterministic(t *testing.T) {
	run := func() []string {
		fb := NewFaultBus(NewMemBus(MemBusOptions{}), FaultConfig{Seed: 42, DropRate: 0.5})
		defer fb.Close()
		sub, _ := fb.Subscribe("a")
		for i := 0; i < 40; i++ {
			fb.Publish("a", []byte(fmt.Sprintf("m%d", i)))
		}
		return collectPayloads(t, sub, 40, 200*time.Millisecond)
	}
	a, b := run(), run()
	if len(a) == 0 || len(a) == 40 {
		t.Fatalf("drop rate 0.5 delivered %d/40 — injection not happening", len(a))
	}
	if len(a) != len(b) {
		t.Fatalf("same seed delivered different counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed delivered different sequence at %d: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestFaultBusDuplicate(t *testing.T) {
	fb := NewFaultBus(NewMemBus(MemBusOptions{}), FaultConfig{Seed: 3, DuplicateRate: 1})
	defer fb.Close()
	sub, _ := fb.Subscribe("a")
	fb.Publish("a", []byte("x"))
	got := collectPayloads(t, sub, 2, time.Second)
	if len(got) != 2 || got[0] != "x" || got[1] != "x" {
		t.Fatalf("expected duplicated delivery, got %v", got)
	}
	if s := fb.Stats(); s.Duplicated != 1 {
		t.Fatalf("Duplicated = %d, want 1", s.Duplicated)
	}
}

func TestFaultBusDelayDelivers(t *testing.T) {
	fb := NewFaultBus(NewMemBus(MemBusOptions{}), FaultConfig{Seed: 5, DelayRate: 1, MaxDelay: 10 * time.Millisecond})
	defer fb.Close()
	sub, _ := fb.Subscribe("a")
	for i := 0; i < 5; i++ {
		fb.Publish("a", []byte(fmt.Sprintf("m%d", i)))
	}
	got := collectPayloads(t, sub, 5, time.Second)
	if len(got) != 5 {
		t.Fatalf("delayed messages lost: got %d/5", len(got))
	}
	if s := fb.Stats(); s.Delayed != 5 {
		t.Fatalf("Delayed = %d, want 5", s.Delayed)
	}
}

// TestFaultBusDelayDoesNotSerialize: with delays parked on timers instead
// of slept in the delivery path, a long injected delay on one topic must
// not hold up a fault-free publish issued right after it, and the delayed
// message still arrives with ordering stats intact.
func TestFaultBusDelayDoesNotSerialize(t *testing.T) {
	fb := NewFaultBus(NewMemBus(MemBusOptions{}), FaultConfig{
		Seed: 5, DelayRate: 1, MaxDelay: 300 * time.Millisecond, Topics: []string{"slow"},
	})
	defer fb.Close()
	slow, _ := fb.Subscribe("slow")
	fast, _ := fb.Subscribe("fast")
	start := time.Now()
	fb.Publish("slow", []byte("late"))
	fb.Publish("fast", []byte("prompt"))
	got := collectPayloads(t, fast, 1, time.Second)
	if len(got) != 1 || got[0] != "prompt" {
		t.Fatalf("fault-free topic delivery failed: got %v", got)
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("publish behind an injected delay took %v — delay is serializing unrelated topics", elapsed)
	}
	if got := collectPayloads(t, slow, 1, time.Second); len(got) != 1 || got[0] != "late" {
		t.Fatalf("delayed message lost: got %v", got)
	}
	if s := fb.Stats(); s.Delayed != 1 || s.Dropped != 0 || s.Reordered != 0 || s.Duplicated != 0 {
		t.Fatalf("stats misattributed the fault: %+v", s)
	}
}

// TestFaultBusCloseFlushesDelayed: Close must not wait out outstanding
// injected delays; it flushes them immediately so no message is lost and
// shutdown stays prompt even with a large MaxDelay.
func TestFaultBusCloseFlushesDelayed(t *testing.T) {
	inner := NewMemBus(MemBusOptions{})
	fb := NewFaultBus(inner, FaultConfig{Seed: 5, DelayRate: 1, MaxDelay: 5 * time.Second})
	sub, _ := inner.Subscribe("a")
	fb.Publish("a", []byte("parked"))
	start := time.Now()
	if err := fb.Close(); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 500*time.Millisecond {
		t.Fatalf("Close waited %v on an injected delay, want immediate flush", elapsed)
	}
	got := collectPayloads(t, sub, 1, time.Second)
	if len(got) != 1 || got[0] != "parked" {
		t.Fatalf("Close dropped the delayed message: got %v", got)
	}
	if s := fb.Stats(); s.Delayed != 1 {
		t.Fatalf("Delayed = %d, want 1", s.Delayed)
	}
}

func TestFaultBusReorderSwapsThenFlushes(t *testing.T) {
	fb := NewFaultBus(NewMemBus(MemBusOptions{}), FaultConfig{Seed: 9, ReorderRate: 1, MaxDelay: 50 * time.Millisecond})
	defer fb.Close()
	sub, _ := fb.Subscribe("a")
	fb.Publish("a", []byte("first"))
	// "first" is now held; turn reordering off so "second" flows through
	// and displaces it.
	fb.SetConfig(FaultConfig{Seed: 9})
	fb.Publish("a", []byte("second"))
	got := collectPayloads(t, sub, 2, time.Second)
	if len(got) != 2 {
		t.Fatalf("reorder lost a message: got %v", got)
	}
	if got[0] != "second" || got[1] != "first" {
		t.Fatalf("expected reordered delivery [second first], got %v", got)
	}
}

func TestFaultBusReorderSafetyTimer(t *testing.T) {
	fb := NewFaultBus(NewMemBus(MemBusOptions{}), FaultConfig{Seed: 9, ReorderRate: 1, MaxDelay: 10 * time.Millisecond})
	defer fb.Close()
	sub, _ := fb.Subscribe("a")
	fb.Publish("a", []byte("lonely"))
	got := collectPayloads(t, sub, 1, time.Second)
	if len(got) != 1 || got[0] != "lonely" {
		t.Fatalf("held message never flushed: got %v", got)
	}
}

func TestFaultBusPartitionAndHeal(t *testing.T) {
	fb := NewFaultBus(NewMemBus(MemBusOptions{}), FaultConfig{Seed: 1})
	defer fb.Close()
	sub, _ := fb.Subscribe("notify.t1.q1")
	fb.Partition("notify.*")
	fb.Publish("notify.t1.q1", []byte("lost"))
	if got := collectPayloads(t, sub, 1, 50*time.Millisecond); len(got) != 0 {
		t.Fatalf("partitioned topic delivered %v", got)
	}
	fb.Heal()
	fb.Publish("notify.t1.q1", []byte("after"))
	got := collectPayloads(t, sub, 1, time.Second)
	if len(got) != 1 || got[0] != "after" {
		t.Fatalf("post-heal delivery failed: got %v", got)
	}
	if s := fb.Stats(); s.Partitioned != 1 {
		t.Fatalf("Partitioned = %d, want 1", s.Partitioned)
	}
}

func TestFaultBusTopicScoping(t *testing.T) {
	fb := NewFaultBus(NewMemBus(MemBusOptions{}), FaultConfig{
		Seed: 11, DropRate: 1, Topics: []string{"writes"},
	})
	defer fb.Close()
	sub, _ := fb.Subscribe("queries", "writes")
	fb.Publish("writes", []byte("w"))
	fb.Publish("queries", []byte("q"))
	got := collectPayloads(t, sub, 1, time.Second)
	if len(got) != 1 || got[0] != "q" {
		t.Fatalf("topic scoping broken: got %v", got)
	}
}

func TestFaultBusClosed(t *testing.T) {
	fb := NewFaultBus(NewMemBus(MemBusOptions{}), FaultConfig{Seed: 1})
	if err := fb.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fb.Publish("a", nil); err != ErrBusClosed {
		t.Fatalf("Publish after Close = %v, want ErrBusClosed", err)
	}
	if _, err := fb.Subscribe("a"); err != ErrBusClosed {
		t.Fatalf("Subscribe after Close = %v, want ErrBusClosed", err)
	}
	if err := fb.Close(); err != nil {
		t.Fatalf("second Close = %v", err)
	}
}
