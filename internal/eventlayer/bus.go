// Package eventlayer implements InvaliDB's asynchronous message broker
// (paper Figure 1, "event layer"). The broker is the only channel between
// application servers and the InvaliDB cluster; it treats payloads as
// entirely opaque bytes and offers fire-and-forget topic pub/sub with
// bounded per-subscriber buffers — the semantics of the Redis pub/sub layer
// the prototype used. Two implementations ship: the in-process MemBus and a
// TCP broker (sub-package tcp) for multi-process deployments.
package eventlayer

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
)

// Message is a payload delivered on a topic.
type Message struct {
	Topic   string
	Payload []byte
}

// Bus is the pub/sub abstraction the rest of the system programs against.
type Bus interface {
	// Publish delivers the payload to every current subscriber of the topic.
	// Delivery is asynchronous and fire-and-forget: subscribers that joined
	// later, or whose buffers are full, miss the message.
	Publish(topic string, payload []byte) error
	// Subscribe registers interest in one or more topic patterns. A pattern
	// is either a literal topic or a prefix followed by '*' ("notify.t1.*").
	Subscribe(patterns ...string) (Subscription, error)
	// Close shuts the bus down; subsequent operations fail.
	Close() error
}

// Subscription is a stream of messages for a set of topic patterns.
type Subscription interface {
	// C is the receive channel. It is closed when the subscription ends.
	C() <-chan Message
	// Dropped reports how many messages were discarded because the
	// subscriber did not keep up.
	Dropped() uint64
	// Close cancels the subscription.
	Close() error
}

// matchPattern reports whether a topic matches a subscription pattern.
func matchPattern(pattern, topic string) bool {
	if p, ok := strings.CutSuffix(pattern, "*"); ok {
		return strings.HasPrefix(topic, p)
	}
	return pattern == topic
}

// RetainedTopic reports whether a topic is retained: the broker keeps the
// last payload published on it and delivers that payload to every later
// subscriber whose patterns match. Retention is reserved for control-plane
// topics (the ".control" suffix, e.g. the coordinator's partition-map
// topic): a process that starts after the coordinator published the current
// map must still converge without waiting for a re-publication. Data topics
// stay fire-and-forget.
func RetainedTopic(topic string) bool {
	return strings.HasSuffix(topic, ".control")
}

// MemBusOptions tunes the in-process bus.
type MemBusOptions struct {
	// BufferSize is the per-subscriber queue capacity. Zero selects 4096.
	BufferSize int
}

// MemBus is the in-process Bus: a goroutine-safe topic router with bounded,
// drop-oldest-on-overflow subscriber queues. Dropping (rather than blocking
// the publisher) mirrors Redis pub/sub back-pressure behaviour and keeps a
// slow subscriber from stalling the cluster.
type MemBus struct {
	mu     sync.RWMutex
	subs   map[*memSub]struct{}
	closed bool
	buf    int

	// retained holds the last payload of every retained topic (see
	// RetainedTopic), replayed to later subscribers at Subscribe time.
	retMu    sync.Mutex
	retained map[string][]byte
}

// NewMemBus creates an in-process bus.
func NewMemBus(opts MemBusOptions) *MemBus {
	if opts.BufferSize <= 0 {
		opts.BufferSize = 4096
	}
	return &MemBus{subs: map[*memSub]struct{}{}, buf: opts.BufferSize, retained: map[string][]byte{}}
}

// ErrBusClosed is returned by operations on a closed bus.
var ErrBusClosed = fmt.Errorf("eventlayer: bus closed")

// Publish implements Bus.
func (b *MemBus) Publish(topic string, payload []byte) error {
	b.mu.RLock()
	if b.closed {
		b.mu.RUnlock()
		return ErrBusClosed
	}
	if RetainedTopic(topic) {
		b.retMu.Lock()
		b.retained[topic] = append([]byte(nil), payload...)
		b.retMu.Unlock()
	}
	msg := Message{Topic: topic, Payload: payload}
	for s := range b.subs {
		if s.matches(topic) {
			s.deliver(msg)
		}
	}
	b.mu.RUnlock()
	return nil
}

// Subscribe implements Bus.
func (b *MemBus) Subscribe(patterns ...string) (Subscription, error) {
	if len(patterns) == 0 {
		return nil, fmt.Errorf("eventlayer: subscribe with no patterns")
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil, ErrBusClosed
	}
	s := &memSub{
		bus:      b,
		patterns: append([]string(nil), patterns...),
		ch:       make(chan Message, b.buf),
	}
	b.subs[s] = struct{}{}
	// Replay retained control-plane payloads the new subscriber matches, so
	// a late joiner sees the coordinator's current state immediately.
	b.retMu.Lock()
	for topic, payload := range b.retained {
		if s.matches(topic) {
			s.deliver(Message{Topic: topic, Payload: payload})
		}
	}
	b.retMu.Unlock()
	return s, nil
}

// Close implements Bus.
func (b *MemBus) Close() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return nil
	}
	b.closed = true
	for s := range b.subs {
		s.closeLocked()
	}
	b.subs = map[*memSub]struct{}{}
	return nil
}

type memSub struct {
	bus      *MemBus
	patterns []string
	ch       chan Message
	dropped  atomic.Uint64

	mu     sync.Mutex
	closed bool
}

func (s *memSub) matches(topic string) bool {
	for _, p := range s.patterns {
		if matchPattern(p, topic) {
			return true
		}
	}
	return false
}

// deliver enqueues without ever blocking the publisher: when the queue is
// full the oldest message is dropped to make room, and the drop is counted.
func (s *memSub) deliver(msg Message) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	select {
	case s.ch <- msg:
		return
	default:
	}
	select {
	case <-s.ch:
		s.dropped.Add(1)
	default:
	}
	select {
	case s.ch <- msg:
	default:
		s.dropped.Add(1)
	}
}

func (s *memSub) C() <-chan Message { return s.ch }

func (s *memSub) Dropped() uint64 { return s.dropped.Load() }

func (s *memSub) Close() error {
	s.bus.mu.Lock()
	delete(s.bus.subs, s)
	s.bus.mu.Unlock()
	s.mu.Lock()
	s.closeInner()
	s.mu.Unlock()
	return nil
}

// closeLocked is called by MemBus.Close with bus.mu held.
func (s *memSub) closeLocked() {
	s.mu.Lock()
	s.closeInner()
	s.mu.Unlock()
}

func (s *memSub) closeInner() {
	if !s.closed {
		s.closed = true
		close(s.ch)
	}
}
