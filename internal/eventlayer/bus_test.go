package eventlayer

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func recvOne(t *testing.T, sub Subscription) Message {
	t.Helper()
	select {
	case m, ok := <-sub.C():
		if !ok {
			t.Fatal("subscription channel closed unexpectedly")
		}
		return m
	case <-time.After(2 * time.Second):
		t.Fatal("timed out waiting for message")
		return Message{}
	}
}

func TestMemBusPublishSubscribe(t *testing.T) {
	b := NewMemBus(MemBusOptions{})
	defer b.Close()
	sub, err := b.Subscribe("writes")
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Publish("writes", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	m := recvOne(t, sub)
	if m.Topic != "writes" || string(m.Payload) != "hello" {
		t.Fatalf("got %+v", m)
	}
}

func TestMemBusTopicIsolation(t *testing.T) {
	b := NewMemBus(MemBusOptions{})
	defer b.Close()
	sub, _ := b.Subscribe("a")
	_ = b.Publish("b", []byte("x"))
	_ = b.Publish("a", []byte("y"))
	m := recvOne(t, sub)
	if string(m.Payload) != "y" {
		t.Fatalf("received message from wrong topic: %+v", m)
	}
}

func TestMemBusPatternSubscribe(t *testing.T) {
	b := NewMemBus(MemBusOptions{})
	defer b.Close()
	sub, _ := b.Subscribe("notify.tenant1.*")
	_ = b.Publish("notify.tenant2.q1", []byte("no"))
	_ = b.Publish("notify.tenant1.q7", []byte("yes"))
	m := recvOne(t, sub)
	if m.Topic != "notify.tenant1.q7" {
		t.Fatalf("pattern routing broken: %+v", m)
	}
}

func TestMemBusMultiplePatterns(t *testing.T) {
	b := NewMemBus(MemBusOptions{})
	defer b.Close()
	sub, _ := b.Subscribe("a", "b")
	_ = b.Publish("b", []byte("1"))
	_ = b.Publish("a", []byte("2"))
	got := map[string]bool{}
	got[recvOne(t, sub).Topic] = true
	got[recvOne(t, sub).Topic] = true
	if !got["a"] || !got["b"] {
		t.Fatalf("multi-pattern subscribe missed topics: %v", got)
	}
}

func TestMemBusFanOut(t *testing.T) {
	b := NewMemBus(MemBusOptions{})
	defer b.Close()
	var subs []Subscription
	for i := 0; i < 5; i++ {
		s, _ := b.Subscribe("t")
		subs = append(subs, s)
	}
	_ = b.Publish("t", []byte("x"))
	for i, s := range subs {
		if m := recvOne(t, s); string(m.Payload) != "x" {
			t.Fatalf("subscriber %d got %+v", i, m)
		}
	}
}

func TestMemBusNoPatterns(t *testing.T) {
	b := NewMemBus(MemBusOptions{})
	defer b.Close()
	if _, err := b.Subscribe(); err == nil {
		t.Fatal("empty subscribe accepted")
	}
}

func TestMemBusOverflowDropsOldest(t *testing.T) {
	b := NewMemBus(MemBusOptions{BufferSize: 4})
	defer b.Close()
	sub, _ := b.Subscribe("t")
	for i := 0; i < 10; i++ {
		_ = b.Publish("t", []byte(fmt.Sprint(i)))
	}
	if sub.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", sub.Dropped())
	}
	// The survivors are the newest 4 messages.
	want := []string{"6", "7", "8", "9"}
	for _, w := range want {
		if got := string(recvOne(t, sub).Payload); got != w {
			t.Fatalf("survivor = %s, want %s", got, w)
		}
	}
}

func TestMemBusSubscriptionClose(t *testing.T) {
	b := NewMemBus(MemBusOptions{})
	defer b.Close()
	sub, _ := b.Subscribe("t")
	_ = sub.Close()
	if err := b.Publish("t", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, ok := <-sub.C(); ok {
		t.Fatal("closed subscription delivered a message")
	}
}

func TestMemBusCloseEndsEverything(t *testing.T) {
	b := NewMemBus(MemBusOptions{})
	sub, _ := b.Subscribe("t")
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if _, ok := <-sub.C(); ok {
		t.Fatal("subscription outlived the bus")
	}
	if err := b.Publish("t", nil); err != ErrBusClosed {
		t.Fatalf("publish on closed bus: %v", err)
	}
	if _, err := b.Subscribe("t"); err != ErrBusClosed {
		t.Fatalf("subscribe on closed bus: %v", err)
	}
	if err := b.Close(); err != nil {
		t.Fatalf("double close: %v", err)
	}
}

func TestMemBusLateSubscriberMissesEarlierMessages(t *testing.T) {
	b := NewMemBus(MemBusOptions{})
	defer b.Close()
	_ = b.Publish("t", []byte("early"))
	sub, _ := b.Subscribe("t")
	_ = b.Publish("t", []byte("late"))
	if m := recvOne(t, sub); string(m.Payload) != "late" {
		t.Fatalf("late subscriber received %q", m.Payload)
	}
}

func TestMemBusConcurrentPublishers(t *testing.T) {
	b := NewMemBus(MemBusOptions{BufferSize: 100000})
	defer b.Close()
	sub, _ := b.Subscribe("t")
	const publishers = 8
	const perPublisher = 500
	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perPublisher; i++ {
				if err := b.Publish("t", []byte("m")); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	for i := 0; i < publishers*perPublisher; i++ {
		recvOne(t, sub)
	}
	if sub.Dropped() != 0 {
		t.Fatalf("unexpected drops: %d", sub.Dropped())
	}
}

// TestMemBusPublishCloseRace hammers Publish against Close (and subscriber
// teardown) from many goroutines. Run under -race: the invariant is that a
// publish either succeeds before the close or returns ErrBusClosed — never
// a panic or a send on a closed channel.
func TestMemBusPublishCloseRace(t *testing.T) {
	for iter := 0; iter < 50; iter++ {
		b := NewMemBus(MemBusOptions{BufferSize: 16})
		subs := make([]Subscription, 4)
		for i := range subs {
			subs[i], _ = b.Subscribe("t")
		}
		var wg sync.WaitGroup
		for p := 0; p < 4; p++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 200; i++ {
					if err := b.Publish("t", []byte("m")); err != nil {
						if err != ErrBusClosed {
							t.Errorf("Publish = %v, want nil or ErrBusClosed", err)
						}
						return
					}
				}
			}()
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			subs[0].Close()
			b.Close()
		}()
		wg.Wait()
		if err := b.Publish("t", nil); err != ErrBusClosed {
			t.Fatalf("post-close Publish = %v, want ErrBusClosed", err)
		}
	}
}

func TestMatchPattern(t *testing.T) {
	cases := []struct {
		pattern, topic string
		want           bool
	}{
		{"a", "a", true},
		{"a", "b", false},
		{"a", "ab", false},
		{"a*", "ab", true},
		{"a*", "a", true},
		{"a.*", "a.b.c", true},
		{"*", "anything", true},
		{"a.*", "b.a", false},
	}
	for _, c := range cases {
		if got := matchPattern(c.pattern, c.topic); got != c.want {
			t.Errorf("matchPattern(%q, %q) = %v, want %v", c.pattern, c.topic, got, c.want)
		}
	}
}

// Retained control-plane topics: the last payload published on a ".control"
// topic is delivered to later subscribers at Subscribe time, so a process
// that joins after the coordinator published the current partition map still
// converges immediately. Data topics stay fire-and-forget.
func TestMemBusRetainsControlTopics(t *testing.T) {
	b := NewMemBus(MemBusOptions{})
	defer b.Close()
	if err := b.Publish("invalidb.control", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := b.Publish("invalidb.control", []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if err := b.Publish("invalidb.writes", []byte("w")); err != nil {
		t.Fatal(err)
	}
	sub, err := b.Subscribe("invalidb.control", "invalidb.writes")
	if err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-sub.C():
		if m.Topic != "invalidb.control" || string(m.Payload) != "v2" {
			t.Fatalf("retained delivery = %s %q, want last control payload", m.Topic, m.Payload)
		}
	case <-time.After(time.Second):
		t.Fatal("retained control payload not delivered on subscribe")
	}
	select {
	case m := <-sub.C():
		t.Fatalf("unexpected second retained delivery: %s %q (data topics must not be retained)", m.Topic, m.Payload)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestMemBusRetainedMatchesWildcard(t *testing.T) {
	b := NewMemBus(MemBusOptions{})
	defer b.Close()
	if err := b.Publish("ns.control", []byte("map")); err != nil {
		t.Fatal(err)
	}
	sub, err := b.Subscribe("ns.*")
	if err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-sub.C():
		if string(m.Payload) != "map" {
			t.Fatalf("retained payload = %q", m.Payload)
		}
	case <-time.After(time.Second):
		t.Fatal("retained payload not delivered to wildcard subscriber")
	}
}
