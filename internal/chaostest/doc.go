// Package chaostest exercises the full InvaliDB stack — database, event
// layer, matching cluster, and application server — under injected faults.
// Every scenario wires an eventlayer.FaultBus between the components and
// runs the cluster with tuple acking enabled, then asserts the end-to-end
// delivery guarantees the recovery machinery is supposed to provide:
//
//   - message drops, delays, duplicates and reorderings on the event layer
//     must never corrupt a subscription's maintained result (duplicates are
//     deduplicated by origin/sequence, stale versions are discarded, and a
//     re-subscription repairs anything the bus silently dropped);
//   - a full partition of the notification topics must surface exactly one
//     Disconnected event, and healing it exactly one Reconnected event with
//     the complete refreshed result;
//   - a panicking matching node must be restarted by the topology
//     supervisor and recover its query set from the query-ingest registry,
//     resuming notifications without any client action.
//
// The package contains only tests (run them with `make chaos`); it has no
// production code.
package chaostest
