package chaostest

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"invalidb/internal/appserver"
	"invalidb/internal/core"
	"invalidb/internal/document"
	"invalidb/internal/eventlayer"
	"invalidb/internal/query"
	"invalidb/internal/storage"
)

// chaosEnv is a complete single-process deployment with a FaultBus wedged
// between every component and the real event layer.
type chaosEnv struct {
	db      *storage.DB
	mem     *eventlayer.MemBus
	fbus    *eventlayer.FaultBus
	cluster *core.Cluster
	server  *appserver.Server
	topics  core.Topics
}

func newChaosEnv(t *testing.T, faults eventlayer.FaultConfig, clusterOpts core.Options, serverOpts appserver.Options) *chaosEnv {
	t.Helper()
	clusterOpts.EnableAcking = true
	if clusterOpts.TickInterval == 0 {
		clusterOpts.TickInterval = 20 * time.Millisecond
	}
	if clusterOpts.HeartbeatInterval == 0 {
		clusterOpts.HeartbeatInterval = 20 * time.Millisecond
	}
	if clusterOpts.RetentionTime == 0 {
		clusterOpts.RetentionTime = 5 * time.Second
	}
	if clusterOpts.QueryPartitions == 0 {
		clusterOpts.QueryPartitions = 2
	}
	if clusterOpts.WritePartitions == 0 {
		clusterOpts.WritePartitions = 2
	}
	if serverOpts.HeartbeatTimeout == 0 {
		serverOpts.HeartbeatTimeout = time.Second
	}
	mem := eventlayer.NewMemBus(eventlayer.MemBusOptions{})
	fbus := eventlayer.NewFaultBus(mem, faults)
	cluster, err := core.NewCluster(fbus, clusterOpts)
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.Start(); err != nil {
		t.Fatal(err)
	}
	db := storage.Open(storage.Options{})
	srv, err := appserver.New(db, fbus, serverOpts)
	if err != nil {
		t.Fatal(err)
	}
	e := &chaosEnv{db: db, mem: mem, fbus: fbus, cluster: cluster, server: srv, topics: core.NewTopics("")}
	t.Cleanup(func() {
		_ = srv.Close()
		cluster.Stop()
		_ = fbus.Close()
	})
	return e
}

// recorder drains a subscription's event stream into a growing log so tests
// can both wait for specific events and audit the full history afterwards
// (e.g. "no key was added twice").
type recorder struct {
	mu     sync.Mutex
	events []appserver.Event
}

func record(sub *appserver.Subscription) *recorder {
	r := &recorder{}
	go func() {
		for ev := range sub.C() {
			r.mu.Lock()
			r.events = append(r.events, ev)
			r.mu.Unlock()
		}
	}()
	return r
}

func (r *recorder) snapshot() []appserver.Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]appserver.Event(nil), r.events...)
}

func (r *recorder) waitFor(t *testing.T, what string, timeout time.Duration, match func(appserver.Event) bool) appserver.Event {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		for _, ev := range r.snapshot() {
			if match(ev) {
				return ev
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s; events seen: %v", what, typesOf(r.snapshot()))
	return appserver.Event{}
}

func (r *recorder) countType(typ appserver.EventType) int {
	n := 0
	for _, ev := range r.snapshot() {
		if ev.Type == typ {
			n++
		}
	}
	return n
}

func typesOf(events []appserver.Event) []string {
	out := make([]string, len(events))
	for i, ev := range events {
		out[i] = ev.Type.String()
		if ev.Key != "" {
			out[i] += ":" + ev.Key
		}
	}
	return out
}

// waitConverged polls until the subscription's maintained result matches the
// database's pull-based answer for the same query.
func waitConverged(t *testing.T, e *chaosEnv, sub *appserver.Subscription, spec query.Spec, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	var got, want []document.Document
	for time.Now().Before(deadline) {
		var err error
		want, err = e.server.Query(spec)
		if err != nil {
			t.Fatal(err)
		}
		got = sub.Result()
		if sameDocs(got, want) {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("subscription never converged under faults:\n got: %v\nwant: %v", got, want)
}

func sameDocs(a, b []document.Document) bool {
	if len(a) != len(b) {
		return false
	}
	key := func(d document.Document) string { id, _ := d.ID(); return id }
	as := append([]document.Document(nil), a...)
	bs := append([]document.Document(nil), b...)
	sort.Slice(as, func(i, j int) bool { return key(as[i]) < key(as[j]) })
	sort.Slice(bs, func(i, j int) bool { return key(bs[i]) < key(bs[j]) })
	for i := range as {
		if !document.Equal(map[string]any(as[i]), map[string]any(bs[i])) {
			return false
		}
	}
	return true
}

func mustSubscribe(t *testing.T, e *chaosEnv, spec query.Spec) (*appserver.Subscription, *recorder) {
	t.Helper()
	sub, err := e.server.Subscribe(spec)
	if err != nil {
		t.Fatal(err)
	}
	rec := record(sub)
	rec.waitFor(t, "initial result", 5*time.Second, func(ev appserver.Event) bool {
		return ev.Type == appserver.EventInitial
	})
	return sub, rec
}

// TestChaosDroppedWritesRepairedByResubscription: the event layer silently
// drops a third of all write messages. The cluster can never see those
// writes, so the repair is end-to-end: heal the bus and force a
// re-subscription, which re-bootstraps from the database.
func TestChaosDroppedWritesRepairedByResubscription(t *testing.T) {
	topics := core.NewTopics("")
	e := newChaosEnv(t,
		eventlayer.FaultConfig{Seed: 7, DropRate: 0.3, Topics: []string{topics.Writes()}},
		core.Options{}, appserver.Options{})
	spec := query.Spec{Collection: "c", Filter: map[string]any{"v": map[string]any{"$gte": 0}}}
	sub, rec := mustSubscribe(t, e, spec)

	for i := 0; i < 40; i++ {
		if err := e.server.Insert("c", document.Document{"_id": fmt.Sprintf("k%02d", i), "v": i}); err != nil {
			t.Fatal(err)
		}
	}
	if dropped := e.fbus.Stats().Dropped; dropped == 0 {
		t.Fatal("fault injection dropped nothing; the scenario is vacuous")
	}
	// Heal the bus, then repair via re-subscription.
	e.fbus.SetConfig(eventlayer.FaultConfig{})
	e.server.Resubscribe()
	rec.waitFor(t, "reconnected after resubscribe", 5*time.Second, func(ev appserver.Event) bool {
		return ev.Type == appserver.EventReconnected
	})
	waitConverged(t, e, sub, spec, 10*time.Second)
	if len(sub.Result()) != 40 {
		t.Fatalf("result has %d docs, want 40", len(sub.Result()))
	}
}

// TestChaosDuplicatesAreDeduplicated: half of all messages (writes,
// notifications, control traffic) are delivered twice. The cluster drops
// duplicate writes by version; the client drops duplicate notifications by
// origin and sequence number — so every inserted key produces exactly one
// add event.
func TestChaosDuplicatesAreDeduplicated(t *testing.T) {
	e := newChaosEnv(t,
		eventlayer.FaultConfig{Seed: 11, DuplicateRate: 0.5},
		core.Options{}, appserver.Options{})
	spec := query.Spec{Collection: "c", Filter: map[string]any{"v": map[string]any{"$gte": 0}}}
	sub, rec := mustSubscribe(t, e, spec)

	const n = 30
	for i := 0; i < n; i++ {
		if err := e.server.Insert("c", document.Document{"_id": fmt.Sprintf("k%02d", i), "v": i}); err != nil {
			t.Fatal(err)
		}
	}
	if dup := e.fbus.Stats().Duplicated; dup == 0 {
		t.Fatal("fault injection duplicated nothing; the scenario is vacuous")
	}
	waitConverged(t, e, sub, spec, 10*time.Second)

	// Exactly-once delivery: every key reported added exactly once. The
	// recorder drains the event channel asynchronously, so poll until the
	// log covers all keys, then let straggling duplicates (if any) land
	// before auditing the counts.
	countAdds := func() map[string]int {
		adds := map[string]int{}
		for _, ev := range rec.snapshot() {
			if ev.Type == appserver.EventAdd {
				adds[ev.Key]++
			}
		}
		return adds
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(countAdds()) < n && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(100 * time.Millisecond)
	adds := countAdds()
	if len(adds) != n {
		t.Errorf("saw adds for %d keys, want %d", len(adds), n)
	}
	for key, count := range adds {
		if count > 1 {
			t.Errorf("key %s delivered %d add events, want 1", key, count)
		}
	}
	if sub.Dropped() != 0 {
		t.Errorf("client dropped %d events", sub.Dropped())
	}
}

// TestChaosDelaysConverge: half of all messages are delivered late. Nothing
// is lost, so the subscription must converge with no manual intervention
// and without ever flipping to disconnected.
func TestChaosDelaysConverge(t *testing.T) {
	e := newChaosEnv(t,
		eventlayer.FaultConfig{Seed: 13, DelayRate: 0.5, MaxDelay: 30 * time.Millisecond},
		core.Options{}, appserver.Options{HeartbeatTimeout: time.Second})
	spec := query.Spec{Collection: "c", Filter: map[string]any{"v": map[string]any{"$gte": 0}}}
	sub, _ := mustSubscribe(t, e, spec)

	for i := 0; i < 40; i++ {
		if err := e.server.Insert("c", document.Document{"_id": fmt.Sprintf("k%02d", i), "v": i}); err != nil {
			t.Fatal(err)
		}
	}
	if delayed := e.fbus.Stats().Delayed; delayed == 0 {
		t.Fatal("fault injection delayed nothing; the scenario is vacuous")
	}
	waitConverged(t, e, sub, spec, 10*time.Second)
	if got := e.server.Reconnects(); got != 0 {
		t.Fatalf("delays triggered %d reconnects, want 0", got)
	}
}

// TestChaosReorderingConverges: messages on the write and notification
// topics are held back past their successors. The cluster discards stale
// write versions and the client's per-key version guard discards stale
// notifications, so repeated updates to the same keys still converge to the
// newest value.
func TestChaosReorderingConverges(t *testing.T) {
	topics := core.NewTopics("")
	e := newChaosEnv(t,
		eventlayer.FaultConfig{
			Seed:        17,
			ReorderRate: 0.4,
			Topics:      []string{topics.Writes(), topics.Notify("*")},
		},
		core.Options{}, appserver.Options{})
	spec := query.Spec{Collection: "c", Filter: map[string]any{"v": map[string]any{"$gte": 0}}}
	sub, _ := mustSubscribe(t, e, spec)

	for i := 0; i < 5; i++ {
		if err := e.server.Insert("c", document.Document{"_id": fmt.Sprintf("k%d", i), "v": 0}); err != nil {
			t.Fatal(err)
		}
	}
	// Hammer the same keys so reordered updates genuinely contend.
	for round := 1; round <= 10; round++ {
		for i := 0; i < 5; i++ {
			key := fmt.Sprintf("k%d", i)
			if err := e.server.Update("c", key, map[string]any{"$set": map[string]any{"v": round}}); err != nil {
				t.Fatal(err)
			}
		}
	}
	if reordered := e.fbus.Stats().Reordered; reordered == 0 {
		t.Fatal("fault injection reordered nothing; the scenario is vacuous")
	}
	waitConverged(t, e, sub, spec, 10*time.Second)
	for _, d := range sub.Result() {
		if d["v"] != int64(10) {
			t.Fatalf("doc %v stuck at stale version", d)
		}
	}
}

// TestChaosNotificationPartitionFailover: a full partition of the
// notification topics outlasts the heartbeat timeout. The server must
// surface exactly one Disconnected event, keep every subscription alive,
// and after healing deliver exactly one Reconnected event carrying the
// complete result — including writes that happened during the partition.
// The measured heal→reconnect latency is the paper's failover metric
// (recorded in EXPERIMENTS.md).
func TestChaosNotificationPartitionFailover(t *testing.T) {
	e := newChaosEnv(t, eventlayer.FaultConfig{}, core.Options{}, appserver.Options{
		HeartbeatTimeout: 150 * time.Millisecond,
		ExtendInterval:   30 * time.Millisecond,
	})
	spec := query.Spec{Collection: "c", Filter: map[string]any{"v": map[string]any{"$gte": 0}}}
	sub, rec := mustSubscribe(t, e, spec)

	e.fbus.Partition(e.topics.Notify("*"))
	rec.waitFor(t, "disconnected", 5*time.Second, func(ev appserver.Event) bool {
		return ev.Type == appserver.EventDisconnected
	})
	// A write during the partition: its notification is black-holed, but the
	// local database has it, so the re-subscription bootstrap recovers it.
	if err := e.server.Insert("c", document.Document{"_id": "during", "v": 1}); err != nil {
		t.Fatal(err)
	}
	// The disconnect must be reported exactly once even while the outage
	// persists across several watchdog checks.
	time.Sleep(400 * time.Millisecond)
	if got := rec.countType(appserver.EventDisconnected); got != 1 {
		t.Fatalf("disconnected reported %d times, want 1", got)
	}

	healedAt := time.Now()
	e.fbus.Heal()
	ev := rec.waitFor(t, "reconnected", 5*time.Second, func(ev appserver.Event) bool {
		return ev.Type == appserver.EventReconnected
	})
	recovery := time.Since(healedAt)
	t.Logf("recovery time (heal -> reconnected): %v", recovery)

	found := false
	for _, d := range ev.Docs {
		if id, _ := d.ID(); id == "during" {
			found = true
		}
	}
	if !found {
		t.Fatalf("reconnected result misses the write made during the partition: %v", ev.Docs)
	}
	if got := e.server.Reconnects(); got != 1 {
		t.Fatalf("reconnects = %d, want 1", got)
	}
	if got := rec.countType(appserver.EventReconnected); got != 1 {
		t.Fatalf("reconnected reported %d times, want 1", got)
	}
	// The resumed stream is live end-to-end.
	if err := e.server.Insert("c", document.Document{"_id": "after", "v": 2}); err != nil {
		t.Fatal(err)
	}
	rec.waitFor(t, "post-heal add", 5*time.Second, func(ev appserver.Event) bool {
		return ev.Type == appserver.EventAdd && ev.Key == "after"
	})
	waitConverged(t, e, sub, spec, 10*time.Second)
}

// TestChaosMatchingNodePanicSelfHeals: a matching node panics mid-write.
// The topology supervisor must restart it with a fresh instance, the
// query-ingest registry must rebuild its query set via resync, and
// subsequent writes must keep producing notifications with no client
// involvement.
func TestChaosMatchingNodePanicSelfHeals(t *testing.T) {
	var crashed atomic.Bool
	e := newChaosEnv(t, eventlayer.FaultConfig{}, core.Options{
		MatchHook: func(taskID int, kind string) {
			if (kind == "write" || kind == "writeBatch") && crashed.CompareAndSwap(false, true) {
				panic("chaos: injected matching-node crash")
			}
		},
	}, appserver.Options{})
	spec := query.Spec{Collection: "c", Filter: map[string]any{"v": map[string]any{"$gte": 0}}}
	sub, rec := mustSubscribe(t, e, spec)

	// This write detonates the hook on the matching node that receives it.
	if err := e.server.Insert("c", document.Document{"_id": "boom", "v": 1}); err != nil {
		t.Fatal(err)
	}
	// Wait for the supervisor to restart the crashed match task.
	deadline := time.Now().Add(5 * time.Second)
	restarted := false
	for time.Now().Before(deadline) && !restarted {
		for _, st := range e.cluster.Stats() {
			if st.Component == "match" && st.Restarts > 0 {
				if st.Dead {
					t.Fatalf("match task %d marked dead, want restarted", st.TaskID)
				}
				restarted = true
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !restarted {
		t.Fatal("no match task was restarted after the injected panic")
	}

	// The restarted node recovered its query set from the registry: a new
	// write must notify without any re-subscription.
	if err := e.server.Insert("c", document.Document{"_id": "post", "v": 2}); err != nil {
		t.Fatal(err)
	}
	rec.waitFor(t, "post-crash add", 5*time.Second, func(ev appserver.Event) bool {
		return ev.Type == appserver.EventAdd && ev.Key == "post"
	})
	// The write that triggered the crash may have died with the old
	// instance; a re-subscription must close that last gap.
	e.server.Resubscribe()
	rec.waitFor(t, "reconnected", 5*time.Second, func(ev appserver.Event) bool {
		return ev.Type == appserver.EventReconnected
	})
	waitConverged(t, e, sub, spec, 10*time.Second)
	if len(sub.Result()) != 2 {
		t.Fatalf("result = %v, want boom and post", sub.Result())
	}
	if got := rec.countType(appserver.EventError); got != 0 {
		t.Fatalf("saw %d error events, want 0", got)
	}
}
