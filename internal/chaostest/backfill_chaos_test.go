package chaostest

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"invalidb/internal/appserver"
	"invalidb/internal/core"
	"invalidb/internal/document"
	"invalidb/internal/eventlayer"
	"invalidb/internal/query"
)

// TestChaosBackfillSurvivesMatchingNodeRestart: the hardest bootstrap
// scenario the backfill protocol promises to survive, all at once. A
// subscription bootstraps through the watermark-certified chunk path while
// (a) a background writer keeps flipping keys in and out of the result, so
// every chunk has in-window writes to reconcile, (b) the event layer drops
// and reorders messages on the queries and notification topics — chunks,
// certificates, and live notifications all get lost or arrive late — and
// (c) the first matching cell to touch a backfill chunk panics, forcing a
// supervisor restart mid-backfill. The driver must ride it out via chunk
// retries (fresh watermark windows) and a whole-backfill restart (restart
// certificate -> fresh BackfillID), then admit an initial result with no
// duplicate keys; once the bus heals and the writer quiesces, the maintained
// result must equal the pull query's — no lost keys, no resurrected
// deletes, no duplicates.
func TestChaosBackfillSurvivesMatchingNodeRestart(t *testing.T) {
	topics := core.NewTopics("")
	var crashed atomic.Bool
	e := newChaosEnv(t,
		eventlayer.FaultConfig{
			Seed:        23,
			DropRate:    0.10,
			ReorderRate: 0.25,
			Topics:      []string{topics.Queries(), topics.Notify("*")},
		},
		core.Options{
			MatchHook: func(taskID int, kind string) {
				if kind == "backfillChunk" && crashed.CompareAndSwap(false, true) {
					panic("chaos: injected matching-node crash mid-backfill")
				}
			},
		},
		appserver.Options{
			Backfill:             true,
			BackfillChunkSize:    16,
			BackfillChunkTimeout: 250 * time.Millisecond,
		})

	const n = 60
	for i := 0; i < n; i++ {
		if err := e.server.Insert("c", document.Document{"_id": fmt.Sprintf("k%02d", i), "x": int64(1)}); err != nil {
			t.Fatal(err)
		}
	}

	// Sustained write load across the whole backfill: every key keeps
	// flipping in and out of the result set.
	stop := make(chan struct{})
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			// Key parity XOR pass parity: every key flips in and out of the
			// result on every full pass over the keyspace.
			key := fmt.Sprintf("k%02d", i%n)
			_ = e.server.Update("c", key, map[string]any{"$set": map[string]any{"x": int64((i%n + i/n) % 2)}})
			time.Sleep(time.Millisecond)
		}
	}()

	spec := query.Spec{Collection: "c", Filter: map[string]any{"x": int64(1)}}
	sub, err := e.server.Subscribe(spec)
	if err != nil {
		t.Fatal(err)
	}
	rec := record(sub)
	initial := rec.waitFor(t, "certified initial result", 30*time.Second, func(ev appserver.Event) bool {
		return ev.Type == appserver.EventInitial
	})

	// The virtual cut must never assemble the same key twice, no matter how
	// many chunk re-sends and backfill restarts it took.
	seen := map[string]bool{}
	for _, d := range initial.Docs {
		id, _ := d.ID()
		if seen[id] {
			t.Fatalf("initial result contains key %q twice", id)
		}
		seen[id] = true
	}

	// None of the chaos may have been vacuous: the matching node actually
	// restarted and the fault injection actually fired.
	if !crashed.Load() {
		t.Fatal("injected crash never fired; the backfill never reached a matching cell")
	}
	restarted := false
	for _, st := range e.cluster.Stats() {
		if st.Component == "match" && st.Restarts > 0 {
			if st.Dead {
				t.Fatalf("match task %d marked dead, want restarted", st.TaskID)
			}
			restarted = true
		}
	}
	if !restarted {
		t.Fatal("no match task was restarted after the injected panic")
	}
	if st := e.fbus.Stats(); st.Dropped == 0 && st.Reordered == 0 {
		t.Fatal("fault injection did nothing; the scenario is vacuous")
	}

	// Heal the bus, then give the writer a couple of full passes over the
	// keyspace so every key's final state travels the healed topics (live
	// notifications dropped during the chaos window stay lost by design —
	// the repair for those is the delta stream itself).
	e.fbus.SetConfig(eventlayer.FaultConfig{})
	time.Sleep(300 * time.Millisecond)
	close(stop)
	<-writerDone

	// Snapshot equivalence after quiescing: the maintained result converges
	// to exactly the pull query's answer.
	waitConverged(t, e, sub, spec, 15*time.Second)
	if got := rec.countType(appserver.EventError); got != 0 {
		t.Fatalf("saw %d error events, want 0", got)
	}
}
