package chaostest

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"testing"
	"time"

	"invalidb/internal/appserver"
	"invalidb/internal/core"
	"invalidb/internal/document"
	"invalidb/internal/eventlayer"
	"invalidb/internal/metrics"
	"invalidb/internal/obs"
	"invalidb/internal/query"
)

// TestChaosMetricsObservability drives a faulty deployment and checks that
// the observability layer sees it: the appserver registry (with the fault
// bus registered into it) and the cluster registry report non-zero pipeline
// counters, the per-stage breakdown carries samples, and the same numbers
// are reachable over the /metrics HTTP endpoint.
func TestChaosMetricsObservability(t *testing.T) {
	reg := metrics.NewRegistry()
	e := newChaosEnv(t,
		eventlayer.FaultConfig{Seed: 23, DuplicateRate: 0.3},
		core.Options{}, appserver.Options{Metrics: reg})
	e.fbus.RegisterMetrics(reg)

	o, err := obs.Serve("", obs.Options{Registry: reg, Healthy: e.server.Connected})
	if err != nil {
		t.Fatal(err)
	}
	defer o.Close()

	spec := query.Spec{Collection: "c", Filter: map[string]any{"v": map[string]any{"$gte": 0}}}
	sub, rec := mustSubscribe(t, e, spec)
	defer sub.Close()
	for i := 0; i < 20; i++ {
		if err := e.server.Insert("c", document.Document{"_id": fmt.Sprintf("k%02d", i), "v": i}); err != nil {
			t.Fatal(err)
		}
	}
	waitConverged(t, e, sub, spec, 10*time.Second)
	_ = rec

	// Duplicated deliveries must be visible both as fault-bus activity and
	// as client-side dedup drops.
	snap := reg.Snapshot()
	for _, name := range []string{"appserver.writes", "appserver.notifications"} {
		if snap.Counters[name] == 0 {
			t.Errorf("counter %s = 0, want > 0", name)
		}
	}
	if snap.Counters["appserver.dedup_drops"] == 0 {
		t.Error("appserver.dedup_drops = 0 under DuplicateRate 0.3, want > 0")
	}
	if snap.Gauges["faultbus.published"] == 0 || snap.Gauges["faultbus.duplicated"] == 0 {
		t.Errorf("fault-bus gauges empty: %+v", snap.Gauges)
	}

	// The cluster keeps its own registry: matching-side counters.
	csnap := e.cluster.Metrics().Snapshot()
	for _, name := range []string{"cluster.writes_ingested", "cluster.writes_matched", "cluster.notifications", "cluster.subscribes"} {
		if csnap.Counters[name] == 0 {
			t.Errorf("cluster counter %s = 0, want > 0", name)
		}
	}

	// Stage tracing: appserver-side dispatch records all four stages.
	bd := reg.Breakdown()
	if bd.Ingest.Count == 0 || bd.Grid.Count == 0 || bd.Bus.Count == 0 || bd.Appserver.Count == 0 {
		t.Errorf("stage breakdown missing samples: %s", bd.String())
	}

	// The same registry over HTTP.
	resp, err := http.Get("http://" + o.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/metrics status = %d", resp.StatusCode)
	}
	var httpSnap metrics.RegistrySnapshot
	if err := json.Unmarshal(body, &httpSnap); err != nil {
		t.Fatalf("/metrics body not JSON: %v", err)
	}
	if httpSnap.Counters["appserver.writes"] == 0 {
		t.Error("/metrics reports appserver.writes = 0, want > 0")
	}
	if httpSnap.Latencies[metrics.StageAppserver].Count == 0 {
		t.Error("/metrics reports no appserver stage samples")
	}
	resp, err = http.Get("http://" + o.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/healthz status = %d (server connected)", resp.StatusCode)
	}
}
