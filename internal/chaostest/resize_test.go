package chaostest

import (
	"fmt"
	"testing"
	"time"

	"invalidb/internal/appserver"
	"invalidb/internal/coordinator"
	"invalidb/internal/core"
	"invalidb/internal/document"
	"invalidb/internal/eventlayer"
	"invalidb/internal/query"
	"invalidb/internal/storage"
)

// gridEnv is a complete multi-process deployment folded into one test
// process: several grid-mode clusters (one per simulated server process), a
// coordinator, and an application server, all sharing one MemBus the way
// real processes share a broker.
type gridEnv struct {
	db       *storage.DB
	bus      *eventlayer.MemBus
	coord    *coordinator.Coordinator
	clusters map[string]*core.Cluster
	server   *appserver.Server
	topics   core.Topics
}

// newGridEnv boots nodes (name -> slot count) with the given column
// capacity, a coordinator for an initial qp x wp grid, and an application
// server, and waits until the first partition map converged on every node.
func newGridEnv(t *testing.T, nodes map[string]int, maxWP, qp, wp int, serverOpts appserver.Options) *gridEnv {
	t.Helper()
	bus := eventlayer.NewMemBus(eventlayer.MemBusOptions{})
	e := &gridEnv{
		bus:      bus,
		clusters: map[string]*core.Cluster{},
		topics:   core.NewTopics(""),
	}
	for name, slots := range nodes {
		cl, err := core.NewCluster(bus, core.Options{
			NodeID:             name,
			GridSlots:          slots,
			MaxWritePartitions: maxWP,
			EnableAcking:       true,
			TickInterval:       20 * time.Millisecond,
			HeartbeatInterval:  20 * time.Millisecond,
			RetentionTime:      5 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.Start(); err != nil {
			t.Fatal(err)
		}
		e.clusters[name] = cl
	}
	coord, err := coordinator.New(bus, coordinator.Options{
		QueryPartitions:   qp,
		WritePartitions:   wp,
		RepublishInterval: 20 * time.Millisecond,
		Logf:              t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Start(); err != nil {
		t.Fatal(err)
	}
	e.coord = coord
	if !coord.WaitConverged(10 * time.Second) {
		t.Fatalf("grid never converged on the initial map; nodes seen: %v", coord.Nodes())
	}
	if serverOpts.HeartbeatTimeout == 0 {
		serverOpts.HeartbeatTimeout = time.Second
	}
	e.db = storage.Open(storage.Options{})
	srv, err := appserver.New(e.db, bus, serverOpts)
	if err != nil {
		t.Fatal(err)
	}
	e.server = srv
	t.Cleanup(func() {
		_ = srv.Close()
		coord.Stop()
		for _, cl := range e.clusters {
			cl.Stop()
		}
		_ = bus.Close()
	})
	return e
}

// waitGridConverged polls until the subscription's maintained result matches
// the database's pull-based answer — the quiesced ground truth the resize
// continuity guarantee is defined against.
func waitGridConverged(t *testing.T, e *gridEnv, sub *appserver.Subscription, spec query.Spec, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	var got, want []document.Document
	for time.Now().Before(deadline) {
		var err error
		want, err = e.server.Query(spec)
		if err != nil {
			t.Fatal(err)
		}
		got = sub.Result()
		if sameDocs(got, want) {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("subscription never converged after resize:\n got: %d docs %v\nwant: %d docs %v", len(got), got, len(want), want)
}

func gridSubscribe(t *testing.T, e *gridEnv, spec query.Spec) (*appserver.Subscription, *recorder) {
	t.Helper()
	sub, err := e.server.Subscribe(spec)
	if err != nil {
		t.Fatal(err)
	}
	rec := record(sub)
	rec.waitFor(t, "initial result", 10*time.Second, func(ev appserver.Event) bool {
		return ev.Type == appserver.EventInitial
	})
	return sub, rec
}

// auditExactlyOnce fails the test when any inserted key was delivered more
// than one add event (duplicate) or produced an error event. Keys are
// inserted exactly once in these scenarios, so "one add per key" is the
// exactly-once notification ledger.
func auditExactlyOnce(t *testing.T, rec *recorder, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	adds := func() map[string]int {
		out := map[string]int{}
		for _, ev := range rec.snapshot() {
			if ev.Type == appserver.EventAdd {
				out[ev.Key]++
			}
		}
		return out
	}
	for len(adds()) < n && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(100 * time.Millisecond) // let straggling duplicates land before auditing
	got := adds()
	if len(got) != n {
		t.Errorf("adds delivered for %d keys, want %d (dropped notifications)", len(got), n)
	}
	for key, count := range got {
		if count > 1 {
			t.Errorf("key %s delivered %d add events, want 1 (duplicated notification)", key, count)
		}
	}
	if errs := rec.countType(appserver.EventError); errs != 0 {
		t.Errorf("saw %d error events, want 0", errs)
	}
}

// TestGridResizeQueryPartitionContinuity is the tentpole scenario: a 2x2
// grid split across two processes grows to 3x2 while writes keep flowing.
// Rows re-hash, affected subscriptions migrate through the backfill engine,
// and the ledger must show every key added exactly once — no notification
// dropped, none duplicated — with the final result matching the quiesced
// pull query.
func TestGridResizeQueryPartitionContinuity(t *testing.T) {
	e := newGridEnv(t, map[string]int{"a": 2, "b": 2}, 2, 2, 2, appserver.Options{
		Backfill:             true,
		BackfillChunkSize:    16,
		BackfillChunkTimeout: time.Second,
	})
	spec := query.Spec{Collection: "c", Filter: map[string]any{"v": map[string]any{"$gte": 0}}}
	// Several subscriptions so the re-hash moves at least one row with high
	// probability regardless of which hash each query lands on.
	specs := []query.Spec{
		spec,
		{Collection: "c", Filter: map[string]any{"v": map[string]any{"$gte": -1}}},
		{Collection: "c", Filter: map[string]any{"v": map[string]any{"$gte": -2}}},
	}
	subs := make([]*appserver.Subscription, len(specs))
	recs := make([]*recorder, len(specs))
	for i, sp := range specs {
		subs[i], recs[i] = gridSubscribe(t, e, sp)
	}

	const n = 120
	resizeAt := n / 3
	for i := 0; i < n; i++ {
		if i == resizeAt {
			if err := e.coord.AddQueryPartition(); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.server.Insert("c", document.Document{"_id": fmt.Sprintf("k%03d", i), "v": i}); err != nil {
			t.Fatal(err)
		}
	}
	if !e.coord.WaitConverged(10 * time.Second) {
		t.Fatal("grid never converged on the resized map")
	}
	m := e.coord.CurrentMap()
	if m.Epoch != 2 || m.QueryPartitions != 3 {
		t.Fatalf("map = epoch %d %dx%d, want epoch 2 3x2", m.Epoch, m.QueryPartitions, m.WritePartitions)
	}
	for i, sp := range specs {
		waitGridConverged(t, e, subs[i], sp, 20*time.Second)
		auditExactlyOnce(t, recs[i], n)
	}
	// The resized grid is live end-to-end: a post-resize write notifies.
	if err := e.server.Insert("c", document.Document{"_id": "post", "v": 9999}); err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		recs[i].waitFor(t, "post-resize add", 10*time.Second, func(ev appserver.Event) bool {
			return ev.Type == appserver.EventAdd && ev.Key == "post"
		})
	}
}

// TestGridResizeWritePartitionContinuity grows the column axis 2->3 under
// writes: no rows move, but keys re-hash across columns, so the row's cells
// re-install through migration backfills; the exactly-once ledger and the
// quiesced pull query must both hold afterwards.
func TestGridResizeWritePartitionContinuity(t *testing.T) {
	e := newGridEnv(t, map[string]int{"a": 2, "b": 2}, 3, 2, 2, appserver.Options{
		Backfill:             true,
		BackfillChunkSize:    16,
		BackfillChunkTimeout: time.Second,
	})
	spec := query.Spec{Collection: "c", Filter: map[string]any{"v": map[string]any{"$gte": 0}}}
	sub, rec := gridSubscribe(t, e, spec)

	const n = 120
	for i := 0; i < n; i++ {
		if i == n/3 {
			if err := e.coord.AddWritePartition(); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.server.Insert("c", document.Document{"_id": fmt.Sprintf("k%03d", i), "v": i}); err != nil {
			t.Fatal(err)
		}
	}
	if !e.coord.WaitConverged(10 * time.Second) {
		t.Fatal("grid never converged on the resized map")
	}
	if m := e.coord.CurrentMap(); m.WritePartitions != 3 {
		t.Fatalf("map has %d write partitions, want 3", m.WritePartitions)
	}
	waitGridConverged(t, e, sub, spec, 20*time.Second)
	auditExactlyOnce(t, rec, n)
}

// TestGridResizeWithoutHeadroomRefused: widening the grid beyond the fleet's
// announced column capacity must be refused atomically — no partial epoch.
func TestGridResizeWithoutHeadroomRefused(t *testing.T) {
	e := newGridEnv(t, map[string]int{"a": 1, "b": 1}, 2, 2, 2, appserver.Options{})
	if err := e.coord.AddWritePartition(); err == nil {
		t.Fatal("AddWritePartition succeeded beyond MaxWritePartitions headroom")
	}
	if m := e.coord.CurrentMap(); m.Epoch != 1 || m.WritePartitions != 2 {
		t.Fatalf("refused resize still moved the map: epoch %d wp %d", m.Epoch, m.WritePartitions)
	}
}

// TestGridCoordinatorKilledMidResize kills the coordinator right after it
// published a resize epoch, before the fleet converged. Data keeps flowing
// through the outage (the coordinator is control-plane only); a successor
// coordinator recovers the authoritative epoch from the retained control
// topic and the fleet's hellos, the resize completes, and a further resize
// on the other axis works against the successor.
func TestGridCoordinatorKilledMidResize(t *testing.T) {
	e := newGridEnv(t, map[string]int{"a": 2, "b": 2}, 3, 2, 2, appserver.Options{
		Backfill:             true,
		BackfillChunkSize:    16,
		BackfillChunkTimeout: time.Second,
	})
	spec := query.Spec{Collection: "c", Filter: map[string]any{"v": map[string]any{"$gte": 0}}}
	sub, rec := gridSubscribe(t, e, spec)

	const n = 90
	for i := 0; i < n/3; i++ {
		if err := e.server.Insert("c", document.Document{"_id": fmt.Sprintf("k%03d", i), "v": i}); err != nil {
			t.Fatal(err)
		}
	}
	// Publish the resize epoch and kill the coordinator immediately — the
	// fleet has not converged, the migration is mid-flight.
	if err := e.coord.AddQueryPartition(); err != nil {
		t.Fatal(err)
	}
	e.coord.Stop()

	// The data plane must not notice: writes keep notifying.
	for i := n / 3; i < 2*n/3; i++ {
		if err := e.server.Insert("c", document.Document{"_id": fmt.Sprintf("k%03d", i), "v": i}); err != nil {
			t.Fatal(err)
		}
	}

	// A successor coordinator recovers the epoch-2 map it never published.
	coord2, err := coordinator.New(e.bus, coordinator.Options{
		QueryPartitions:   2,
		WritePartitions:   2,
		RepublishInterval: 20 * time.Millisecond,
		Logf:              t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := coord2.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord2.Stop)
	if !coord2.WaitConverged(10 * time.Second) {
		t.Fatal("successor coordinator never converged on the recovered map")
	}
	m := coord2.CurrentMap()
	if m.Epoch < 2 || m.QueryPartitions != 3 {
		t.Fatalf("successor recovered epoch %d %dx%d, want the mid-flight epoch 2 3x2", m.Epoch, m.QueryPartitions, m.WritePartitions)
	}

	for i := 2 * n / 3; i < n; i++ {
		if err := e.server.Insert("c", document.Document{"_id": fmt.Sprintf("k%03d", i), "v": i}); err != nil {
			t.Fatal(err)
		}
	}
	waitGridConverged(t, e, sub, spec, 20*time.Second)
	auditExactlyOnce(t, rec, n)

	// The successor owns the grid now: a resize on the OTHER axis completes
	// against the recovered state (nodes announced 3 columns of capacity).
	if err := coord2.AddWritePartition(); err != nil {
		t.Fatal(err)
	}
	if !coord2.WaitConverged(10 * time.Second) {
		t.Fatal("grid never converged on the post-recovery wp resize")
	}
	if err := e.server.Insert("c", document.Document{"_id": "post", "v": 9999}); err != nil {
		t.Fatal(err)
	}
	rec.waitFor(t, "post-recovery add", 10*time.Second, func(ev appserver.Event) bool {
		return ev.Type == appserver.EventAdd && ev.Key == "post"
	})
	waitGridConverged(t, e, sub, spec, 20*time.Second)
}

// TestGridMigrationReplaysOnlyWatermarkWindow pins the migration cost: when
// a resize moves a certified subscription from node A to node B, the new
// owner replays only the writes inside each chunk's watermark window — for a
// quiesced collection, almost nothing — never the whole retention ring. The
// cluster-wide backfill.replayed counter is the yardstick.
func TestGridMigrationReplaysOnlyWatermarkWindow(t *testing.T) {
	e := newGridEnv(t, map[string]int{"a": 2, "b": 2}, 2, 2, 2, appserver.Options{
		Backfill:             true,
		BackfillChunkSize:    32,
		BackfillChunkTimeout: time.Second,
	})
	spec := query.Spec{Collection: "c", Filter: map[string]any{"v": map[string]any{"$gte": 0}}}
	sub, _ := gridSubscribe(t, e, spec)

	// Fill the retention ring: 300 writes, all inside RetentionTime.
	const n = 300
	for i := 0; i < n; i++ {
		if err := e.server.Insert("c", document.Document{"_id": fmt.Sprintf("k%03d", i), "v": i}); err != nil {
			t.Fatal(err)
		}
	}
	waitGridConverged(t, e, sub, spec, 20*time.Second)

	replayed := func() int64 {
		var total int64
		for _, cl := range e.clusters {
			total += cl.Metrics().Counter("backfill.replayed").Value()
		}
		return total
	}
	migrations := func() int64 {
		return e.server.Metrics().Counter("appserver.migrations").Value()
	}
	replayedBefore, migrationsBefore := replayed(), migrations()

	// Quiesced resize: the rows re-hash and the subscription migrates.
	if err := e.coord.AddQueryPartition(); err != nil {
		t.Fatal(err)
	}
	if !e.coord.WaitConverged(10 * time.Second) {
		t.Fatal("grid never converged on the resized map")
	}
	deadline := time.Now().Add(10 * time.Second)
	for migrations() == migrationsBefore && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if migrations() == migrationsBefore {
		t.Fatal("resize triggered no subscription migration")
	}
	// Migration live end-to-end before auditing the replay cost.
	if err := e.server.Insert("c", document.Document{"_id": "post", "v": 9999}); err != nil {
		t.Fatal(err)
	}
	waitGridConverged(t, e, sub, spec, 20*time.Second)

	delta := replayed() - replayedBefore
	// The ring holds n writes and the query's row has 2 cells: a full-ring
	// replay would cost hundreds. A watermark-window replay of a quiesced
	// collection replays at most the strays racing the chunk reads.
	if delta > int64(n)/4 {
		t.Fatalf("migration replayed %d retention writes, want a watermark window (<%d), not the whole ring", delta, n/4)
	}
	t.Logf("migration replayed %d retention-ring writes (ring holds %d)", delta, n)
}
