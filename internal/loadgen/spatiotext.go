package loadgen

import (
	"fmt"
	"math"
	"math/rand"

	"invalidb/internal/document"
	"invalidb/internal/query"
)

// SpatioTextCollection is the collection the spatio-textual workload writes
// into.
const SpatioTextCollection = "events"

// The spatio-textual scenario models a hot-region event feed: standing
// queries split evenly between equality ("this category"), geo ("within this
// circle"), and full-text ("mentions this topic") subscriptions, with both
// the query centers and the written documents skewed toward a small hot
// geographic region and a small hot topic set. It exercises every candidate
// source of the generalized predicate index at once; the per-write candidate
// set stays a tiny fraction of the registered population because each write
// only probes its own category bucket, grid cells, and tokens.
const (
	// categoryVocab is the shared category vocabulary for cold equality
	// queries and documents (~categoryLoad queries share each category).
	categoryVocab = 2000
	// topicVocab is the token vocabulary for cold text queries and document
	// descriptions; hotTopics of them receive hotTopicBias of all draws.
	topicVocab   = 2000
	hotTopics    = 50
	hotTopicBias = 0.20
	// The hot geographic region: a 2°x2° box receiving hotGeoBias of all
	// cold query centers and document locations.
	hotLngMin, hotLngMax = 10.0, 12.0
	hotLatMin, hotLatMax = 45.0, 47.0
	hotGeoBias           = 0.80
	// Cold query circle radii in degrees (0.02°..0.06°, i.e. roughly
	// 2-7 km), small against the 0.1° index grid cell.
	coldRadiusMinDeg, coldRadiusSpanDeg = 0.02, 0.04
	// coldFloor starts the reserved threshold region: cold queries carry a
	// qty/score floor at or above it while documents draw both attributes
	// from [0, docAttrRange), so cold queries are probed as candidates but
	// never match — notification volume stays pinned to the hit queries.
	coldFloor    = 1_000_000
	docAttrRange = 1000
)

// SpatioText deterministically generates the hot-region spatio-textual
// workload: a mixed equality/geo/text query population plus documents that
// carry all four indexed attributes (category, location, description, and
// the numeric thresholds).
type SpatioText struct {
	rng      *rand.Rand
	matching int
	nextKey  int
}

// NewSpatioText creates the workload with the given number of hit queries
// (queries documents can be aimed at; everything else never matches).
func NewSpatioText(seed int64, matching int) *SpatioText {
	return &SpatioText{rng: rand.New(rand.NewSource(seed)), matching: matching}
}

// Queries builds the standing-query population: `matching` hit queries
// followed by total-matching cold queries, both cycling equality → geo →
// text so each family holds a third of the population.
func (st *SpatioText) Queries(total, matching int) []query.Spec {
	if matching > total {
		matching = total
	}
	specs := make([]query.Spec, 0, total)
	for i := 0; i < matching; i++ {
		specs = append(specs, st.HitQuery(i))
	}
	for i := 0; i < total-matching; i++ {
		specs = append(specs, st.ColdQuery(i))
	}
	return specs
}

// HitQuery returns the i-th hit query. Hit queries select reserved values —
// a private category, a far-away circle, a private token — so Doc(true, i)
// matches exactly query i and cold documents match none of them.
func (st *SpatioText) HitQuery(i int) query.Spec {
	switch i % 3 {
	case 0:
		return query.Spec{Collection: SpatioTextCollection, Filter: map[string]any{
			"category": hitCategory(i),
		}}
	case 1:
		c := hitCenter(i)
		return query.Spec{Collection: SpatioTextCollection, Filter: map[string]any{
			"loc": map[string]any{"$geoWithin": map[string]any{
				"$centerSphere": []any{[]any{c[0], c[1]}, degToRad(0.01)},
			}},
		}}
	default:
		return query.Spec{Collection: SpatioTextCollection, Filter: map[string]any{
			"$text": map[string]any{"$search": hitTerm(i)},
		}}
	}
}

// ColdQuery returns the i-th cold query. Every cold query conjoins its
// indexable predicate with a qty/score floor in the reserved region, so it
// is probed as a candidate whenever the index says so but never matches a
// document — the filter's equality/geo/text part is still the most selective
// constraint, so the floor never becomes the indexed predicate. The floor
// doubles as the distinctness discriminator (i is unique per query).
func (st *SpatioText) ColdQuery(i int) query.Spec {
	switch i % 3 {
	case 0:
		return query.Spec{Collection: SpatioTextCollection, Filter: map[string]any{
			"category": coldCategory(i / 3 % categoryVocab),
			"qty":      map[string]any{"$gte": int64(coldFloor + i)},
		}}
	case 1:
		lng, lat := st.coldPoint()
		radius := coldRadiusMinDeg + st.rng.Float64()*coldRadiusSpanDeg
		return query.Spec{Collection: SpatioTextCollection, Filter: map[string]any{
			"loc": map[string]any{"$geoWithin": map[string]any{
				"$centerSphere": []any{[]any{lng, lat}, degToRad(radius)},
			}},
			"qty": map[string]any{"$gte": int64(coldFloor + i)},
		}}
	default:
		return query.Spec{Collection: SpatioTextCollection, Filter: map[string]any{
			"$text": map[string]any{"$search": st.topic()},
			"score": map[string]any{"$gte": int64(coldFloor + i)},
		}}
	}
}

// Doc produces the next document. With hit true it is aimed at hit query
// idx (and only that query); either way it carries a category, a location,
// a description, and both threshold attributes, so every write probes all
// four candidate sources like the cold traffic does.
func (st *SpatioText) Doc(hit bool, idx int) document.Document {
	st.nextKey++
	if st.matching > 0 {
		idx %= st.matching
	}
	d := document.Document{
		"_id":   fmt.Sprintf("ev%09d", st.nextKey),
		"qty":   int64(st.rng.Intn(docAttrRange)),
		"score": int64(st.rng.Intn(docAttrRange)),
	}
	category := coldCategory(st.rng.Intn(categoryVocab))
	lng, lat := st.coldPoint()
	desc := st.topic() + " " + st.filler() + " " + st.filler()
	if hit {
		switch idx % 3 {
		case 0:
			category = hitCategory(idx)
		case 1:
			c := hitCenter(idx)
			lng, lat = c[0], c[1]
		default:
			desc = hitTerm(idx) + " " + st.filler()
		}
	}
	d["category"] = category
	d["loc"] = []any{lng, lat}
	d["desc"] = desc
	return d
}

// coldPoint draws a document/query location: hotGeoBias of them inside the
// hot box, the rest anywhere in a continent-sized region around it.
func (st *SpatioText) coldPoint() (lng, lat float64) {
	if st.rng.Float64() < hotGeoBias {
		return hotLngMin + st.rng.Float64()*(hotLngMax-hotLngMin),
			hotLatMin + st.rng.Float64()*(hotLatMax-hotLatMin)
	}
	return hotLngMin - 20 + st.rng.Float64()*40, hotLatMin - 20 + st.rng.Float64()*40
}

// topic draws a description/search token with the hot-set skew.
func (st *SpatioText) topic() string {
	if st.rng.Float64() < hotTopicBias {
		return fmt.Sprintf("topic%04d", st.rng.Intn(hotTopics))
	}
	return fmt.Sprintf("topic%04d", hotTopics+st.rng.Intn(topicVocab-hotTopics))
}

// filler draws a description word outside the topic vocabulary (never
// indexed by any query).
func (st *SpatioText) filler() string {
	return fmt.Sprintf("w%03d", st.rng.Intn(200))
}

func coldCategory(n int) string { return fmt.Sprintf("cat-%04d", n) }
func hitCategory(i int) string  { return fmt.Sprintf("hit-cat-%06d", i) }
func hitTerm(i int) string      { return fmt.Sprintf("hitterm%06d", i) }

// hitCenter places hit-query circles on a 0.5° lattice far south of the
// cold traffic, so reserved circles never overlap each other or the cold
// region.
func hitCenter(i int) [2]float64 {
	return [2]float64{-170 + 0.5*float64(i%600), -75 + 0.5*float64(i/600)}
}

func degToRad(deg float64) float64 { return deg * math.Pi / 180 }
