// Package loadgen generates the paper's evaluation workload (§6.1): every
// written document has five 10-literal string attributes and five integer
// attributes, one of which is a unique random number; real-time queries are
// range predicates on that number (SELECT * FROM test WHERE random >= i AND
// random < j), and only a configured subset of queries matches written items
// so notification throughput stays constant while matching load scales with
// queries × writes.
package loadgen

import (
	"fmt"
	"math/rand"

	"invalidb/internal/document"
	"invalidb/internal/query"
)

// Collection is the workload's collection name, as in the paper's SQL
// rendering (FROM test).
const Collection = "test"

// Workload generates documents and queries deterministically from a seed.
type Workload struct {
	rng *rand.Rand
	// MatchingValues are the reserved `random` values: matching query i
	// covers exactly [MatchingValues[i], MatchingValues[i]+1).
	MatchingValues []int
	nextKey        int
}

// matchBase is the start of the reserved value region for matching queries.
// Non-matching inserts draw from [0, matchBase); non-matching queries cover
// ranges above every reserved value.
const matchBase = 1_000_000

// New creates a workload with the given number of matching queries.
func New(seed int64, matchingQueries int) *Workload {
	w := &Workload{rng: rand.New(rand.NewSource(seed))}
	for i := 0; i < matchingQueries; i++ {
		// Spread reserved values two apart so [v, v+1) ranges never overlap.
		w.MatchingValues = append(w.MatchingValues, matchBase+2*i)
	}
	return w
}

// MatchingQuery returns the i-th matching query: a half-open range covering
// exactly one reserved value.
func (w *Workload) MatchingQuery(i int) query.Spec {
	v := w.MatchingValues[i%len(w.MatchingValues)]
	return rangeQuery(v, v+1)
}

// NonMatchingQuery returns a query whose range no written document ever
// falls into (above the reserved region).
func (w *Workload) NonMatchingQuery(i int) query.Spec {
	lo := matchBase + 2*len(w.MatchingValues) + 2*i + 1
	return rangeQuery(lo, lo+1)
}

func rangeQuery(i, j int) query.Spec {
	return query.Spec{
		Collection: Collection,
		Filter: map[string]any{
			"random": map[string]any{"$gte": int64(i), "$lt": int64(j)},
		},
	}
}

// Queries builds the full query population: `matching` queries that each
// match one reserved value plus `total-matching` queries that never match.
func (w *Workload) Queries(total, matching int) []query.Spec {
	if matching > total {
		matching = total
	}
	specs := make([]query.Spec, 0, total)
	for i := 0; i < matching; i++ {
		specs = append(specs, w.MatchingQuery(i))
	}
	for i := 0; i < total-matching; i++ {
		specs = append(specs, w.NonMatchingQuery(i))
	}
	return specs
}

// Doc produces the next document. With hit true its `random` attribute is
// the idx-th reserved value (so exactly one matching query fires); with hit
// false it draws from the non-matching region.
func (w *Workload) Doc(hit bool, idx int) document.Document {
	w.nextKey++
	var random int64
	if hit && len(w.MatchingValues) > 0 {
		random = int64(w.MatchingValues[idx%len(w.MatchingValues)])
	} else {
		random = int64(w.rng.Intn(matchBase))
	}
	d := document.Document{
		"_id":    fmt.Sprintf("doc%09d", w.nextKey),
		"random": random,
	}
	for i := 0; i < 5; i++ {
		d[fmt.Sprintf("str%d", i)] = w.literal()
	}
	// The unique random number is one of five integer attributes.
	for i := 1; i < 5; i++ {
		d[fmt.Sprintf("int%d", i)] = int64(w.rng.Intn(1000))
	}
	return d
}

const letters = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"

// literal produces a 10-literal string attribute value.
func (w *Workload) literal() string {
	b := make([]byte, 10)
	for i := range b {
		b[i] = letters[w.rng.Intn(len(letters))]
	}
	return string(b)
}
