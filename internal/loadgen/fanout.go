package loadgen

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"invalidb/internal/metrics"
)

// SwarmOptions configures a mock-client swarm.
type SwarmOptions struct {
	// Clients is the number of concurrent connections to hold.
	Clients int
	// Queries is the number of distinct matching queries the clients are
	// spread across round-robin: Clients/Queries clients share each query,
	// which is the dedup ratio the gateway should achieve.
	Queries int
	// Tenant, when set, is announced with a hello frame before
	// subscribing.
	Tenant string
	// ConnectParallel bounds concurrent dial+subscribe attempts.
	// Default 512.
	ConnectParallel int
	// ReadBuffer is the per-client read buffer. Default 2 KiB — at 100k
	// clients this is the dominant per-client cost, so it stays small.
	ReadBuffer int
	// SampleEvery records delivery latency on every n-th client (default
	// 16): sampling keeps recorder contention off the measurement at
	// 100k-goroutine scale while still yielding tens of thousands of
	// samples.
	SampleEvery int
}

func (o SwarmOptions) withDefaults() SwarmOptions {
	if o.Clients <= 0 {
		o.Clients = 1
	}
	if o.Queries <= 0 {
		o.Queries = 1
	}
	if o.ConnectParallel <= 0 {
		o.ConnectParallel = 512
	}
	if o.ReadBuffer <= 0 {
		o.ReadBuffer = 2 << 10
	}
	if o.SampleEvery <= 0 {
		o.SampleEvery = 16
	}
	return o
}

// Swarm is a horde of deliberately cheap mock clients: each client is one
// connection, one goroutine, and one small read buffer. Clients speak just
// enough of the gateway protocol to subscribe and tally what arrives —
// event frames are scanned as raw bytes, never decoded — so the swarm's
// own footprint stays far below the system under test and 100k+ clients
// fit in one process.
type Swarm struct {
	dial func() (net.Conn, error)
	w    *Workload
	opts SwarmOptions

	mu    sync.Mutex
	conns []net.Conn
	wg    sync.WaitGroup

	subscribed atomic.Int64
	rejected   atomic.Int64
	dialErrs   atomic.Int64
	events     atomic.Uint64
	resyncs    atomic.Uint64
	terminals  atomic.Int64

	lat *metrics.LatencyRecorder
}

// NewSwarm creates a swarm that dials through dial (e.g. a gateway
// MemListener's Dial, or a TCP dialer) and subscribes to w's matching
// queries.
func NewSwarm(dial func() (net.Conn, error), w *Workload, opts SwarmOptions) *Swarm {
	return &Swarm{dial: dial, w: w, opts: opts.withDefaults(), lat: metrics.NewLatencyRecorder()}
}

// subscribeFrames precomputes the identical hello+subscribe byte prefix
// for each distinct query, so connecting a client is a dial plus one
// buffered write — no per-client encoding.
func (s *Swarm) subscribeFrames() ([][]byte, error) {
	frames := make([][]byte, s.opts.Queries)
	for q := range frames {
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		if s.opts.Tenant != "" {
			if err := enc.Encode(map[string]string{"op": "hello", "id": "h", "tenant": s.opts.Tenant}); err != nil {
				return nil, err
			}
		}
		spec := s.w.MatchingQuery(q)
		if err := enc.Encode(map[string]any{"op": "subscribe", "id": "s", "query": spec}); err != nil {
			return nil, err
		}
		frames[q] = buf.Bytes()
	}
	return frames, nil
}

// Connect dials every client and fires its subscribe. It returns once all
// dial attempts finished; use WaitSubscribed to wait for acks. Quota
// rejections and dial failures are tallied, not fatal — the noisy-tenant
// experiment depends on rejected clients being survivable.
func (s *Swarm) Connect() error {
	frames, err := s.subscribeFrames()
	if err != nil {
		return err
	}
	sem := make(chan struct{}, s.opts.ConnectParallel)
	var dialWG sync.WaitGroup
	for i := 0; i < s.opts.Clients; i++ {
		sem <- struct{}{}
		dialWG.Add(1)
		s.wg.Add(1)
		go func(i int) {
			// dialWG covers only the dial+write handshake: the goroutine
			// then becomes the client's read loop for the swarm's lifetime.
			nc, err := s.dial()
			if err != nil {
				s.dialErrs.Add(1)
				s.wg.Done()
				dialWG.Done()
				<-sem
				return
			}
			s.mu.Lock()
			s.conns = append(s.conns, nc)
			s.mu.Unlock()
			if _, err := nc.Write(frames[i%s.opts.Queries]); err != nil {
				s.dialErrs.Add(1)
				_ = nc.Close()
				s.wg.Done()
				dialWG.Done()
				<-sem
				return
			}
			dialWG.Done()
			<-sem
			s.readLoop(nc, i%s.opts.SampleEvery == 0)
		}(i)
	}
	dialWG.Wait()
	return nil
}

// WaitSubscribed blocks until n clients were acked (or rejected clients
// make n unreachable), returning the subscribed count.
func (s *Swarm) WaitSubscribed(n int, timeout time.Duration) int64 {
	deadline := time.Now().Add(timeout)
	for {
		subs := s.subscribed.Load()
		if subs >= int64(n) || time.Now().After(deadline) {
			return subs
		}
		unreachable := s.rejected.Load() + s.dialErrs.Load()
		if subs+unreachable >= int64(s.opts.Clients) && subs >= int64(n)-unreachable {
			return subs
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// Close tears down every connection and waits for the client goroutines.
func (s *Swarm) Close() {
	s.mu.Lock()
	conns := s.conns
	s.conns = nil
	s.mu.Unlock()
	for _, nc := range conns {
		_ = nc.Close()
	}
	s.wg.Wait()
}

// Subscribed reports clients whose subscribe was acked.
func (s *Swarm) Subscribed() int64 { return s.subscribed.Load() }

// Rejected reports clients refused by the gateway (quota errors).
func (s *Swarm) Rejected() int64 { return s.rejected.Load() }

// DialErrors reports clients that failed before reaching the protocol.
func (s *Swarm) DialErrors() int64 { return s.dialErrs.Load() }

// Events reports event frames received across all clients.
func (s *Swarm) Events() uint64 { return s.events.Load() }

// Resyncs reports resync markers received (shed events on slow clients).
func (s *Swarm) Resyncs() uint64 { return s.resyncs.Load() }

// TerminalSeen reports clients that received the terminal event.
func (s *Swarm) TerminalSeen() int64 { return s.terminals.Load() }

// Latency summarizes sampled write-to-delivery latency, measured from the
// sentNs the writer stamped into each document.
func (s *Swarm) Latency() metrics.Summary { return s.lat.Snapshot() }

// Wire tokens scanned for in raw frames. Matching on bytes instead of
// decoding JSON keeps a 100k-client swarm's CPU footprint negligible.
var (
	tokOK       = []byte(`"op":"ok"`)
	tokErr      = []byte(`"op":"error"`)
	tokResync   = []byte(`"op":"resync"`)
	tokEvent    = []byte(`"op":"event"`)
	tokTerminal = []byte(`"terminal":true`)
	tokSentNs   = []byte(`"sentNs":`)
)

// readLoop scans newline-delimited frames. Lines longer than the read
// buffer (large initial results) are classified from their first chunk
// and skipped to the newline.
func (s *Swarm) readLoop(nc net.Conn, sampled bool) {
	defer s.wg.Done()
	r := bufio.NewReaderSize(nc, s.opts.ReadBuffer)
	subscribed, terminal := false, false
	for {
		line, err := r.ReadSlice('\n')
		s.scan(line, sampled, &subscribed, &terminal)
		for err == bufio.ErrBufferFull {
			_, err = r.ReadSlice('\n')
		}
		if err != nil {
			return
		}
	}
}

func (s *Swarm) scan(line []byte, sampled bool, subscribed, terminal *bool) {
	switch {
	case bytes.Contains(line, tokEvent):
		s.events.Add(1)
		if !*terminal && bytes.Contains(line, tokTerminal) {
			*terminal = true
			s.terminals.Add(1)
		}
		if sampled {
			if i := bytes.Index(line, tokSentNs); i >= 0 {
				if ns, ok := parseInt(line[i+len(tokSentNs):]); ok {
					//invalidb:allow coarseclock delivery latency is measured against the wall-clock send stamp
					s.lat.Record(time.Duration(time.Now().UnixNano() - ns))
				}
			}
		}
	case bytes.Contains(line, tokResync):
		s.resyncs.Add(1)
	case bytes.Contains(line, tokOK):
		if !*subscribed && bytes.Contains(line, []byte(`"id":"s"`)) {
			*subscribed = true
			s.subscribed.Add(1)
		}
	case bytes.Contains(line, tokErr):
		if !*subscribed {
			s.rejected.Add(1)
		}
	}
}

// parseInt reads a leading (possibly negative) integer.
func parseInt(b []byte) (int64, bool) {
	neg := false
	i := 0
	if i < len(b) && b[i] == '-' {
		neg = true
		i++
	}
	start := i
	var v int64
	for i < len(b) && b[i] >= '0' && b[i] <= '9' {
		v = v*10 + int64(b[i]-'0')
		i++
	}
	if i == start {
		return 0, false
	}
	if neg {
		v = -v
	}
	return v, true
}
