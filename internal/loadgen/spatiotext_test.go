package loadgen

import (
	"testing"

	"invalidb/internal/query"
)

// TestSpatioTextHitDocsMatchExactlyTheirQuery pins the workload's core
// invariant: Doc(true, i) matches hit query i and nothing else, and cold
// documents match no registered query at all — so notification volume is
// fully controlled by the hit schedule even with a large cold population.
func TestSpatioTextHitDocsMatchExactlyTheirQuery(t *testing.T) {
	const total, matching = 300, 30
	st := NewSpatioText(7, matching)
	specs := st.Queries(total, matching)
	if len(specs) != total {
		t.Fatalf("specs = %d, want %d", len(specs), total)
	}
	queries := make([]*query.Query, len(specs))
	seen := map[uint64]int{}
	for i, s := range specs {
		q, err := query.Compile(s)
		if err != nil {
			t.Fatalf("spec %d does not compile: %v", i, err)
		}
		if prev, dup := seen[q.Hash()]; dup {
			t.Fatalf("specs %d and %d collapse to the same query", prev, i)
		}
		seen[q.Hash()] = i
		queries[i] = q
	}
	for idx := 0; idx < matching; idx++ {
		d := st.Doc(true, idx)
		for i, q := range queries {
			if got := q.Match(d); got != (i == idx) {
				t.Fatalf("hit doc %d: query %d match = %v", idx, i, got)
			}
		}
	}
	for n := 0; n < 200; n++ {
		d := st.Doc(false, 0)
		for i, q := range queries {
			if q.Match(d) {
				t.Fatalf("cold doc matched query %d (%v)", i, specs[i].Filter)
			}
		}
	}
}

// TestSpatioTextQueriesAreIndexable verifies every generated query feeds the
// generalized predicate index through its intended family — none fall back
// to the unindexed bucket, which would wreck the scenario's selectivity.
func TestSpatioTextQueriesAreIndexable(t *testing.T) {
	st := NewSpatioText(3, 9)
	wantKind := func(i int) query.ConstraintKind {
		switch i % 3 {
		case 0:
			return query.ConstraintEquality
		case 1:
			return query.ConstraintGeo
		default:
			return query.ConstraintText
		}
	}
	check := func(name string, spec query.Spec, want query.ConstraintKind) {
		q, err := query.Compile(spec)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		cons := q.IndexableConstraints()
		if len(cons) == 0 {
			t.Fatalf("%s is unindexable: %v", name, spec.Filter)
		}
		if cons[0].Kind != want {
			t.Fatalf("%s indexes as kind %d, want %d", name, cons[0].Kind, want)
		}
	}
	for i := 0; i < 9; i++ {
		check("hit", st.HitQuery(i), wantKind(i))
		check("cold", st.ColdQuery(i), wantKind(i))
	}
}
