package loadgen

import (
	"testing"

	"invalidb/internal/document"
	"invalidb/internal/query"
)

func TestDocShape(t *testing.T) {
	w := New(1, 10)
	d := w.Doc(false, 0)
	if _, ok := d.ID(); !ok {
		t.Fatal("document without _id")
	}
	strs, ints := 0, 0
	for k, v := range d {
		if k == "_id" {
			continue
		}
		switch v.(type) {
		case string:
			strs++
			if len(v.(string)) != 10 {
				t.Fatalf("string attribute %q has %d literals, want 10", k, len(v.(string)))
			}
		case int64:
			ints++
		}
	}
	if strs != 5 || ints != 5 {
		t.Fatalf("attributes: %d strings, %d ints; want 5 and 5 (paper §6.1)", strs, ints)
	}
}

func TestMatchingQueriesMatchExactlyOneValue(t *testing.T) {
	w := New(1, 5)
	for i := 0; i < 5; i++ {
		q := query.MustCompile(w.MatchingQuery(i))
		hit := w.Doc(true, i)
		if !q.Match(hit) {
			t.Fatalf("matching query %d missed its reserved document", i)
		}
		// A hit for a different reserved value must not match.
		other := w.Doc(true, i+1)
		if q.Match(other) {
			t.Fatalf("matching query %d matched another query's document", i)
		}
	}
}

func TestNonMatchingQueriesNeverMatch(t *testing.T) {
	w := New(7, 4)
	var qs []*query.Query
	for i := 0; i < 20; i++ {
		qs = append(qs, query.MustCompile(w.NonMatchingQuery(i)))
	}
	for i := 0; i < 500; i++ {
		d := w.Doc(i%3 == 0, i)
		for _, q := range qs {
			if q.Match(d) {
				t.Fatalf("non-matching query matched document %v", d["random"])
			}
		}
	}
}

func TestQueriesPopulation(t *testing.T) {
	w := New(3, 10)
	specs := w.Queries(25, 10)
	if len(specs) != 25 {
		t.Fatalf("population size = %d", len(specs))
	}
	// The first 10 are the matching ones.
	hit := w.Doc(true, 0)
	if !query.MustCompile(specs[0]).Match(hit) {
		t.Fatal("first query should match reserved value 0")
	}
	// Matching capped at total.
	if got := w.Queries(5, 10); len(got) != 5 {
		t.Fatalf("capped population = %d", len(got))
	}
}

func TestKeysUnique(t *testing.T) {
	w := New(1, 1)
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		id, _ := w.Doc(false, 0).ID()
		if seen[id] {
			t.Fatalf("duplicate key %s", id)
		}
		seen[id] = true
	}
}

func TestDeterministicForSeed(t *testing.T) {
	a, b := New(42, 3), New(42, 3)
	for i := 0; i < 50; i++ {
		da, db := a.Doc(i%2 == 0, i), b.Doc(i%2 == 0, i)
		if string(document.EncodeJSON(da)) != string(document.EncodeJSON(db)) {
			t.Fatal("same seed produced different documents")
		}
	}
}
