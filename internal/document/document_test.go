package document

import (
	"fmt"
	"math"
	"testing"
	"testing/quick"
)

func TestIDString(t *testing.T) {
	d := Document{"_id": "abc"}
	id, ok := d.ID()
	if !ok || id != "abc" {
		t.Fatalf("ID() = %q, %v; want abc, true", id, ok)
	}
}

func TestIDNumeric(t *testing.T) {
	d := Document{"_id": int64(42)}
	id, ok := d.ID()
	if !ok || id != "42" {
		t.Fatalf("ID() = %q, %v; want 42, true", id, ok)
	}
}

func TestIDMissing(t *testing.T) {
	if _, ok := (Document{"x": 1}).ID(); ok {
		t.Fatal("ID() reported ok for a document without _id")
	}
}

func TestCloneIsDeep(t *testing.T) {
	orig := Document{
		"a": map[string]any{"b": []any{int64(1), map[string]any{"c": "x"}}},
	}
	cp := orig.Clone()
	inner := cp["a"].(map[string]any)["b"].([]any)[1].(map[string]any)
	inner["c"] = "mutated"
	got := Get(orig, "a.b.1.c")
	if got != "x" {
		t.Fatalf("mutating clone leaked into original: got %v", got)
	}
}

func TestCloneNil(t *testing.T) {
	var d Document
	if d.Clone() != nil {
		t.Fatal("Clone of nil document should be nil")
	}
}

func TestCompareTypeBrackets(t *testing.T) {
	// MongoDB order: missing < null < number < string < object < array < bool.
	ordered := []any{Missing, nil, int64(3), "s", map[string]any{}, []any{}, false}
	for i := 0; i < len(ordered); i++ {
		for j := 0; j < len(ordered); j++ {
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got := Compare(ordered[i], ordered[j]); got != want {
				t.Errorf("Compare(%v, %v) = %d, want %d", ordered[i], ordered[j], got, want)
			}
		}
	}
}

func TestCompareNumbersAcrossTypes(t *testing.T) {
	cases := []struct {
		a, b any
		want int
	}{
		{int64(3), float64(3), 0},
		{int64(3), float64(3.5), -1},
		{float64(4.5), int64(4), 1},
		{int64(math.MaxInt64), int64(math.MaxInt64 - 1), 1},
		{int(7), int64(7), 0}, // Go literal int normalizes
		{float32(2.5), float64(2.5), 0},
		{uint64(9), int64(9), 0},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareStringsAndBools(t *testing.T) {
	if Compare("a", "b") != -1 || Compare("b", "a") != 1 || Compare("a", "a") != 0 {
		t.Error("string comparison broken")
	}
	if Compare(false, true) != -1 || Compare(true, false) != 1 || Compare(true, true) != 0 {
		t.Error("bool comparison broken")
	}
}

func TestCompareArrays(t *testing.T) {
	cases := []struct {
		a, b []any
		want int
	}{
		{[]any{int64(1), int64(2)}, []any{int64(1), int64(3)}, -1},
		{[]any{int64(1)}, []any{int64(1), int64(0)}, -1},
		{[]any{"z"}, []any{"a", "a"}, 1},
		{[]any{}, []any{}, 0},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareObjectsKeyOrderIrrelevant(t *testing.T) {
	a := map[string]any{"x": int64(1), "y": int64(2)}
	b := map[string]any{"y": int64(2), "x": int64(1)}
	if Compare(a, b) != 0 {
		t.Error("objects with same fields in different insertion order should be equal")
	}
	c := map[string]any{"x": int64(1), "y": int64(3)}
	if Compare(a, c) != -1 {
		t.Error("object value ordering broken")
	}
	d := map[string]any{"x": int64(1)}
	if Compare(d, a) != -1 {
		t.Error("shorter object prefix should sort first")
	}
}

func TestCompareNaN(t *testing.T) {
	if Compare(math.NaN(), float64(0)) != -1 {
		t.Error("NaN should sort before other numbers")
	}
	if Compare(float64(0), math.NaN()) != 1 {
		t.Error("numbers should sort after NaN")
	}
	if Compare(math.NaN(), math.NaN()) != 0 {
		t.Error("NaN should equal NaN in sort order")
	}
}

func TestGetNested(t *testing.T) {
	d := Document{"a": map[string]any{"b": map[string]any{"c": int64(7)}}}
	if got := Get(d, "a.b.c"); got != int64(7) {
		t.Fatalf("Get = %v, want 7", got)
	}
	if got := Get(d, "a.b.missing"); !IsMissing(got) {
		t.Fatalf("Get on absent leaf = %v, want Missing", got)
	}
	if got := Get(d, "a.b.c.d"); !IsMissing(got) {
		t.Fatalf("Get through scalar = %v, want Missing", got)
	}
}

func TestGetArrayIndex(t *testing.T) {
	d := Document{"a": []any{"x", "y", "z"}}
	if got := Get(d, "a.1"); got != "y" {
		t.Fatalf("Get(a.1) = %v, want y", got)
	}
	if got := Get(d, "a.9"); !IsMissing(got) {
		t.Fatalf("Get out of bounds = %v, want Missing", got)
	}
	if got := Get(d, "a.-1"); !IsMissing(got) {
		t.Fatalf("Get(a.-1) = %v, want Missing (non-numeric segment)", got)
	}
}

func TestLookupFansOutOverArrays(t *testing.T) {
	d := Document{"a": []any{
		map[string]any{"b": int64(1)},
		map[string]any{"b": int64(2)},
		map[string]any{"c": int64(3)},
	}}
	vals := Lookup(d, "a.b")
	var nums []int64
	missing := 0
	for _, v := range vals {
		if IsMissing(v) {
			missing++
			continue
		}
		nums = append(nums, v.(int64))
	}
	if len(nums) != 2 || nums[0] != 1 || nums[1] != 2 || missing != 1 {
		t.Fatalf("Lookup fan-out = %v (missing=%d), want [1 2] missing=1", nums, missing)
	}
}

func TestLookupTerminalArray(t *testing.T) {
	d := Document{"a": []any{int64(1), int64(2)}}
	vals := Lookup(d, "a")
	if len(vals) != 1 {
		t.Fatalf("Lookup(a) returned %d values, want the array itself", len(vals))
	}
	if _, ok := vals[0].([]any); !ok {
		t.Fatalf("Lookup(a) = %T, want []any", vals[0])
	}
}

func TestLookupPositional(t *testing.T) {
	d := Document{"a": []any{map[string]any{"b": "x"}, map[string]any{"b": "y"}}}
	vals := Lookup(d, "a.1.b")
	if len(vals) != 1 || vals[0] != "y" {
		t.Fatalf("Lookup(a.1.b) = %v, want [y]", vals)
	}
}

func TestSetCreatesIntermediates(t *testing.T) {
	d := Document{}
	if err := Set(d, "a.b.c", int64(5)); err != nil {
		t.Fatal(err)
	}
	if got := Get(d, "a.b.c"); got != int64(5) {
		t.Fatalf("after Set, Get = %v", got)
	}
}

func TestSetBlockedByScalar(t *testing.T) {
	d := Document{"a": "scalar"}
	if err := Set(d, "a.b", 1); err == nil {
		t.Fatal("Set through a scalar should error")
	}
}

func TestUnset(t *testing.T) {
	d := Document{"a": map[string]any{"b": int64(1), "c": int64(2)}}
	Unset(d, "a.b")
	if !IsMissing(Get(d, "a.b")) {
		t.Fatal("Unset did not remove the field")
	}
	if Get(d, "a.c") != int64(2) {
		t.Fatal("Unset removed a sibling")
	}
	Unset(d, "nope.x") // absent path: no-op, must not panic
}

func TestProject(t *testing.T) {
	d := Document{"_id": "k", "title": "DB Fun", "year": int64(2018), "secret": "x"}
	p := Project(d, []string{"title", "year"}, true)
	if p["title"] != "DB Fun" || p["year"] != int64(2018) || p["_id"] != "k" {
		t.Fatalf("projection lost fields: %v", p)
	}
	if _, ok := p["secret"]; ok {
		t.Fatal("projection leaked an unselected field")
	}
	noID := Project(d, []string{"title"}, false)
	if _, ok := noID["_id"]; ok {
		t.Fatal("projection included _id despite includeID=false")
	}
}

func TestProjectEmptyPathsClones(t *testing.T) {
	d := Document{"a": map[string]any{"b": int64(1)}}
	p := Project(d, nil, true)
	p["a"].(map[string]any)["b"] = int64(9)
	if Get(d, "a.b") != int64(1) {
		t.Fatal("Project(nil) must deep-clone")
	}
}

func TestDecodeJSONNumbers(t *testing.T) {
	d, err := DecodeJSON([]byte(`{"i": 3, "f": 3.5, "big": 123456789012345}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := d["i"].(int64); !ok {
		t.Fatalf("integral JSON number decoded as %T, want int64", d["i"])
	}
	if _, ok := d["f"].(float64); !ok {
		t.Fatalf("fractional JSON number decoded as %T, want float64", d["f"])
	}
	if d["big"] != int64(123456789012345) {
		t.Fatalf("large integer mangled: %v", d["big"])
	}
}

func TestDecodeJSONRejectsGarbage(t *testing.T) {
	if _, err := DecodeJSON([]byte(`{"a":`)); err == nil {
		t.Fatal("truncated JSON should error")
	}
	if _, err := DecodeJSON([]byte(`[1,2]`)); err == nil {
		t.Fatal("non-object JSON should error")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	d := Document{
		"s":    "str",
		"i":    int64(-12),
		"f":    2.25,
		"b":    true,
		"null": nil,
		"arr":  []any{int64(1), "two", map[string]any{"k": false}},
		"obj":  map[string]any{"nested": []any{nil}},
	}
	out, err := DecodeJSON(EncodeJSON(d))
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(map[string]any(d), map[string]any(out)) {
		t.Fatalf("round trip changed value:\n in: %v\nout: %v", d, out)
	}
}

func TestCanonicalNumericCollapse(t *testing.T) {
	a := MarshalCanonical(map[string]any{"x": int64(3)})
	b := MarshalCanonical(map[string]any{"x": float64(3)})
	if string(a) != string(b) {
		t.Fatalf("3 and 3.0 canonical forms differ: %s vs %s", a, b)
	}
}

func TestCanonicalKeyOrder(t *testing.T) {
	a := MarshalCanonical(map[string]any{"a": int64(1), "b": int64(2)})
	b := MarshalCanonical(map[string]any{"b": int64(2), "a": int64(1)})
	if string(a) != string(b) {
		t.Fatal("canonical encoding depends on map iteration order")
	}
}

func TestHash64Stability(t *testing.T) {
	v := map[string]any{"q": []any{int64(1), "x"}}
	if Hash64(v) != Hash64(v) {
		t.Fatal("Hash64 not deterministic")
	}
	if Hash64(map[string]any{"q": 1}) == Hash64(map[string]any{"q": 2}) {
		t.Fatal("distinct values hash equal (suspicious)")
	}
}

func TestAfterImageValidate(t *testing.T) {
	good := &AfterImage{Collection: "c", Key: "k", Version: 1, Op: OpInsert, Doc: Document{"_id": "k"}}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid after-image rejected: %v", err)
	}
	bad := []*AfterImage{
		{Key: "", Version: 1, Op: OpInsert, Doc: Document{}},
		{Key: "k", Version: 0, Op: OpInsert, Doc: Document{}},
		{Key: "k", Version: 1, Op: OpDelete, Doc: Document{}},
		{Key: "k", Version: 1, Op: OpInsert},
		{Key: "k", Version: 1, Op: Op(9), Doc: Document{}},
	}
	for i, ai := range bad {
		if err := ai.Validate(); err == nil {
			t.Errorf("case %d: invalid after-image accepted", i)
		}
	}
}

func TestAfterImageEncodeDecode(t *testing.T) {
	ai := &AfterImage{Collection: "articles", Key: "5", Version: 3, Op: OpUpdate,
		Doc: Document{"_id": "5", "title": "DB Fun", "year": int64(2018)}}
	data, err := ai.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeAfterImage(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Key != "5" || got.Version != 3 || got.Op != OpUpdate {
		t.Fatalf("metadata mangled: %+v", got)
	}
	if got.Doc["year"] != int64(2018) {
		t.Fatalf("document numbers not normalized: %T", got.Doc["year"])
	}
}

func TestAfterImageDeleteRoundTrip(t *testing.T) {
	ai := &AfterImage{Collection: "c", Key: "k", Version: 9, Op: OpDelete}
	data, _ := ai.Encode()
	got, err := DecodeAfterImage(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Doc != nil {
		t.Fatal("delete after-image grew a document")
	}
}

func TestOpString(t *testing.T) {
	if OpInsert.String() != "insert" || OpUpdate.String() != "update" || OpDelete.String() != "delete" {
		t.Fatal("Op.String broken")
	}
	if Op(77).String() != "Op(77)" {
		t.Fatal("unknown Op.String broken")
	}
}

// genValue builds a bounded random JSON-like value from quick's size hints.
func genValue(rnd interface{ Intn(int) int }, depth int) any {
	switch k := rnd.Intn(7); {
	case k == 0:
		return nil
	case k == 1:
		return rnd.Intn(2) == 0
	case k == 2:
		return int64(rnd.Intn(2000) - 1000)
	case k == 3:
		return float64(rnd.Intn(2000)-1000) / 4
	case k == 4:
		return fmt.Sprintf("s%d", rnd.Intn(100))
	case k == 5 && depth > 0:
		n := rnd.Intn(3)
		arr := make([]any, n)
		for i := range arr {
			arr[i] = genValue(rnd, depth-1)
		}
		return arr
	case k == 6 && depth > 0:
		n := rnd.Intn(3)
		obj := map[string]any{}
		for i := 0; i < n; i++ {
			obj[fmt.Sprintf("k%d", rnd.Intn(5))] = genValue(rnd, depth-1)
		}
		return obj
	default:
		return int64(rnd.Intn(100))
	}
}

func TestQuickCompareReflexiveAntisymmetric(t *testing.T) {
	f := func(seed int64) bool {
		rnd := newRand(seed)
		a := genValue(rnd, 3)
		b := genValue(rnd, 3)
		if Compare(a, a) != 0 {
			return false
		}
		return Compare(a, b) == -Compare(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCompareTransitive(t *testing.T) {
	f := func(seed int64) bool {
		rnd := newRand(seed)
		vals := []any{genValue(rnd, 2), genValue(rnd, 2), genValue(rnd, 2)}
		// Check transitivity over every permutation of the triple.
		a, b, c := vals[0], vals[1], vals[2]
		if Compare(a, b) <= 0 && Compare(b, c) <= 0 && Compare(a, c) > 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickEncodeRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rnd := newRand(seed)
		d := Document{}
		for i := 0; i < 4; i++ {
			d[fmt.Sprintf("f%d", i)] = genValue(rnd, 3)
		}
		out, err := DecodeJSON(EncodeJSON(d))
		if err != nil {
			return false
		}
		return Equal(map[string]any(d), map[string]any(out))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCanonicalEqualIffCompareEqual(t *testing.T) {
	f := func(seed int64) bool {
		rnd := newRand(seed)
		a := genValue(rnd, 3)
		b := genValue(rnd, 3)
		canonEq := string(MarshalCanonical(a)) == string(MarshalCanonical(b))
		return canonEq == (Compare(a, b) == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// newRand returns a deterministic PRNG usable by the generators above
// without importing math/rand at every call site.
func newRand(seed int64) *xorshift {
	return &xorshift{state: uint64(seed)*2862933555777941757 + 3037000493}
}

type xorshift struct{ state uint64 }

func (x *xorshift) Intn(n int) int {
	x.state ^= x.state << 13
	x.state ^= x.state >> 7
	x.state ^= x.state << 17
	if n <= 0 {
		return 0
	}
	return int(x.state % uint64(n))
}
