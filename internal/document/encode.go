package document

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"strconv"
)

// MarshalCanonical encodes a value into a canonical byte form: object keys
// are sorted, integers are rendered without a fractional part, and floats
// that hold integral values collapse to the integer rendering so that
// numerically equal values encode identically. The encoding is used for
// hashing (query partitioning) and deep-equality snapshots, not for
// interchange.
func MarshalCanonical(v any) []byte {
	var buf bytes.Buffer
	writeCanonical(&buf, v)
	return buf.Bytes()
}

func writeCanonical(buf *bytes.Buffer, v any) {
	switch t := normalize(v).(type) {
	case missingValue:
		buf.WriteString("<missing>")
	case nil:
		buf.WriteString("null")
	case bool:
		if t {
			buf.WriteString("true")
		} else {
			buf.WriteString("false")
		}
	case int64:
		buf.WriteString(strconv.FormatInt(t, 10))
	case float64:
		if t == math.Trunc(t) && !math.IsInf(t, 0) && math.Abs(t) < 1e15 {
			buf.WriteString(strconv.FormatInt(int64(t), 10))
		} else {
			buf.WriteString(strconv.FormatFloat(t, 'g', -1, 64))
		}
	case string:
		b, _ := json.Marshal(t)
		buf.Write(b)
	case []any:
		buf.WriteByte('[')
		for i, e := range t {
			if i > 0 {
				buf.WriteByte(',')
			}
			writeCanonical(buf, e)
		}
		buf.WriteByte(']')
	case map[string]any:
		buf.WriteByte('{')
		keys := sortedKeys(t)
		for i, k := range keys {
			if i > 0 {
				buf.WriteByte(',')
			}
			b, _ := json.Marshal(k)
			buf.Write(b)
			buf.WriteByte(':')
			writeCanonical(buf, t[k])
		}
		buf.WriteByte('}')
	default:
		fmt.Fprintf(buf, "%v", t)
	}
}

// Hash64 returns a stable 64-bit hash of the canonical encoding of v. It
// backs both partitioning dimensions: write partitions hash primary keys,
// query partitions hash canonical query encodings. FNV-1a alone distributes
// poorly in the low bits for inputs that differ in only a few characters
// (e.g. sequential keys or near-identical queries), so the digest is passed
// through a murmur3-style finalizer — partition assignment takes the hash
// modulo small numbers and needs every bit to avalanche.
func Hash64(v any) uint64 {
	h := fnv.New64a()
	h.Write(MarshalCanonical(v))
	return fmix64(h.Sum64())
}

// HashKey hashes a primary key string. Split out from Hash64 to avoid the
// canonical-encoding round trip on the write hot path.
func HashKey(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return fmix64(h.Sum64())
}

// fmix64 is MurmurHash3's 64-bit finalizer: full avalanche in a few
// multiply-xorshift rounds.
func fmix64(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// DecodeJSON parses a JSON object into a Document with the package's
// canonical number handling: integral numbers decode to int64, others to
// float64.
func DecodeJSON(data []byte) (Document, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	var raw map[string]any
	if err := dec.Decode(&raw); err != nil {
		return nil, fmt.Errorf("document: decode: %w", err)
	}
	return Document(normalizeDeep(raw).(map[string]any)), nil
}

// normalizeDeep converts every json.Number (and Go integer width) in a value
// tree into int64/float64 and Documents into plain maps.
func normalizeDeep(v any) any {
	switch t := normalize(v).(type) {
	case map[string]any:
		out := make(map[string]any, len(t))
		for k, e := range t {
			out[k] = normalizeDeep(e)
		}
		return out
	case []any:
		out := make([]any, len(t))
		for i, e := range t {
			out[i] = normalizeDeep(e)
		}
		return out
	default:
		return t
	}
}

// Normalize returns a deep-normalized copy of the document (canonical number
// types, plain maps). Documents built from Go literals should be normalized
// once at the system boundary.
func Normalize(d Document) Document {
	if d == nil {
		return nil
	}
	return Document(normalizeDeep(map[string]any(d)).(map[string]any))
}

// EncodeJSON renders the document as compact JSON with deterministic key
// order (sorted), suitable for transport over the event layer.
func EncodeJSON(d Document) []byte {
	var buf bytes.Buffer
	writeJSON(&buf, map[string]any(d))
	return buf.Bytes()
}

func writeJSON(buf *bytes.Buffer, v any) {
	switch t := normalize(v).(type) {
	case missingValue:
		buf.WriteString("null")
	case nil:
		buf.WriteString("null")
	case bool, int64, string:
		b, _ := json.Marshal(t)
		buf.Write(b)
	case float64:
		if math.IsInf(t, 0) || math.IsNaN(t) {
			buf.WriteString("null")
			return
		}
		b, _ := json.Marshal(t)
		buf.Write(b)
	case []any:
		buf.WriteByte('[')
		for i, e := range t {
			if i > 0 {
				buf.WriteByte(',')
			}
			writeJSON(buf, e)
		}
		buf.WriteByte(']')
	case map[string]any:
		buf.WriteByte('{')
		keys := make([]string, 0, len(t))
		for k := range t {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for i, k := range keys {
			if i > 0 {
				buf.WriteByte(',')
			}
			b, _ := json.Marshal(k)
			buf.Write(b)
			buf.WriteByte(':')
			writeJSON(buf, t[k])
		}
		buf.WriteByte('}')
	default:
		b, _ := json.Marshal(fmt.Sprint(t))
		buf.Write(b)
	}
}
