// Package document defines the JSON-style document model shared by the
// pull-based storage engine, the query engine, and the InvaliDB real-time
// matching layer.
//
// A Document is a JSON object decoded into Go's generic representation:
// nil, bool, float64, int64, string, []any and map[string]any. Numbers may be
// either int64 or float64; the comparison functions treat them as one numeric
// type, mirroring MongoDB's behaviour. All functions in this package are safe
// for concurrent use on distinct documents; documents themselves are plain
// maps and must not be mutated while shared.
package document

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"
)

// Document is a single record: a JSON object keyed by field name.
type Document map[string]any

// ID returns the document's primary key (the "_id" field) as a string.
// Non-string keys are formatted canonically. The second return value reports
// whether the document has a primary key at all.
func (d Document) ID() (string, bool) {
	v, ok := d["_id"]
	if !ok {
		return "", false
	}
	switch k := v.(type) {
	case string:
		return k, true
	default:
		return fmt.Sprint(normalize(v)), true
	}
}

// Clone returns a deep copy of the document. Mutating the copy never affects
// the original.
func (d Document) Clone() Document {
	if d == nil {
		return nil
	}
	return cloneMap(d)
}

func cloneMap(m map[string]any) map[string]any {
	out := make(map[string]any, len(m))
	for k, v := range m {
		out[k] = cloneValue(v)
	}
	return out
}

func cloneValue(v any) any {
	switch t := v.(type) {
	case map[string]any:
		return cloneMap(t)
	case Document:
		return Document(cloneMap(t))
	case []any:
		out := make([]any, len(t))
		for i, e := range t {
			out[i] = cloneValue(e)
		}
		return out
	default:
		return v
	}
}

// normalize converts a value into the canonical in-memory form: Document
// becomes map[string]any, json.Number and all integer widths become int64 or
// float64. It is applied lazily by comparison and encoding helpers so that
// values constructed from Go literals (e.g. int) behave like decoded JSON.
func normalize(v any) any {
	switch t := v.(type) {
	case Document:
		return map[string]any(t)
	case int:
		return int64(t)
	case int32:
		return int64(t)
	case uint:
		return int64(t)
	case uint32:
		return int64(t)
	case uint64:
		return int64(t)
	case float32:
		return float64(t)
	case json.Number:
		if i, err := t.Int64(); err == nil {
			return i
		}
		f, _ := t.Float64()
		return f
	default:
		return v
	}
}

// typeClass is the BSON-style type bracket used to order values of different
// types, following MongoDB's comparison order: Null < Numbers < String <
// Object < Array < Boolean. (Unsupported BSON types are omitted; unknown Go
// types sort last, deterministically by their formatted representation.)
type typeClass int

const (
	classMissing typeClass = iota // field absent: sorts before null
	classNull
	classNumber
	classString
	classObject
	classArray
	classBool
	classOther
)

func classOf(v any) typeClass {
	switch normalize(v).(type) {
	case missingValue:
		return classMissing
	case nil:
		return classNull
	case int64, float64:
		return classNumber
	case string:
		return classString
	case map[string]any:
		return classObject
	case []any:
		return classArray
	case bool:
		return classBool
	default:
		return classOther
	}
}

// missingValue marks a field that is absent from a document. It is distinct
// from an explicit null: MongoDB sorts missing before null and treats both as
// equal to null in equality filters.
type missingValue struct{}

// Missing is the sentinel returned by Get for absent paths.
var Missing = missingValue{}

// IsMissing reports whether v is the Missing sentinel.
func IsMissing(v any) bool {
	_, ok := v.(missingValue)
	return ok
}

// Compare orders two values with MongoDB semantics: values of different type
// brackets order by bracket; numbers compare numerically across int64/float64;
// strings lexicographically; arrays element-wise; objects by sorted key/value
// sequence; booleans false < true. The result is -1, 0 or +1.
func Compare(a, b any) int {
	a, b = normalize(a), normalize(b)
	ca, cb := classOf(a), classOf(b)
	if ca != cb {
		if ca < cb {
			return -1
		}
		return 1
	}
	switch ca {
	case classMissing, classNull:
		return 0
	case classNumber:
		return compareNumbers(a, b)
	case classString:
		return strings.Compare(a.(string), b.(string))
	case classBool:
		ba, bb := a.(bool), b.(bool)
		switch {
		case ba == bb:
			return 0
		case !ba:
			return -1
		default:
			return 1
		}
	case classArray:
		return compareArrays(a.([]any), b.([]any))
	case classObject:
		return compareObjects(a.(map[string]any), b.(map[string]any))
	default:
		return strings.Compare(fmt.Sprint(a), fmt.Sprint(b))
	}
}

func compareNumbers(a, b any) int {
	// Compare in int64 space when both are integers to avoid float rounding.
	ia, aInt := a.(int64)
	ib, bInt := b.(int64)
	if aInt && bInt {
		switch {
		case ia < ib:
			return -1
		case ia > ib:
			return 1
		default:
			return 0
		}
	}
	fa, fb := toFloat(a), toFloat(b)
	switch {
	case fa < fb:
		return -1
	case fa > fb:
		return 1
	case math.IsNaN(fa) && !math.IsNaN(fb):
		return -1 // NaN sorts first among numbers, as in MongoDB
	case !math.IsNaN(fa) && math.IsNaN(fb):
		return 1
	default:
		return 0
	}
}

func toFloat(v any) float64 {
	switch t := v.(type) {
	case int64:
		return float64(t)
	case float64:
		return t
	default:
		return math.NaN()
	}
}

func compareArrays(a, b []any) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if c := Compare(a[i], b[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	default:
		return 0
	}
}

func compareObjects(a, b map[string]any) int {
	ka, kb := sortedKeys(a), sortedKeys(b)
	n := len(ka)
	if len(kb) < n {
		n = len(kb)
	}
	for i := 0; i < n; i++ {
		if c := strings.Compare(ka[i], kb[i]); c != 0 {
			return c
		}
		if c := Compare(a[ka[i]], b[kb[i]]); c != 0 {
			return c
		}
	}
	switch {
	case len(ka) < len(kb):
		return -1
	case len(ka) > len(kb):
		return 1
	default:
		return 0
	}
}

func sortedKeys(m map[string]any) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Equal reports whether two values are deeply equal under Compare semantics
// (numeric 3 == 3.0, object key order irrelevant).
func Equal(a, b any) bool { return Compare(a, b) == 0 }

// Get resolves a dotted path ("a.b.c") against a document and returns the
// single value at that path, or Missing. Numeric path segments index into
// arrays. Unlike Lookup it does not fan out over array elements; it is the
// positional accessor used for sorting.
func Get(d Document, path string) any {
	var cur any = map[string]any(d)
	for _, seg := range strings.Split(path, ".") {
		switch t := normalize(cur).(type) {
		case map[string]any:
			v, ok := t[seg]
			if !ok {
				return Missing
			}
			cur = v
		case []any:
			idx, ok := arrayIndex(seg)
			if !ok || idx < 0 || idx >= len(t) {
				return Missing
			}
			cur = t[idx]
		default:
			return Missing
		}
	}
	return normalize(cur)
}

func arrayIndex(seg string) (int, bool) {
	if seg == "" {
		return 0, false
	}
	n := 0
	for _, r := range seg {
		if r < '0' || r > '9' {
			return 0, false
		}
		n = n*10 + int(r-'0')
	}
	return n, true
}

// Lookup resolves a dotted path with MongoDB's multi-value semantics: when a
// path traverses an array, the lookup fans out over the array's elements. The
// returned slice contains every value reachable at the path (possibly
// including Missing entries when some branches lack the field) and the bool
// reports whether the terminal value in at least one branch is itself an
// array that was reached exactly (so operators like $size can apply to it).
//
// Examples, for {"a": [{"b": 1}, {"b": 2}]}:
//
//	Lookup(doc, "a.b") -> [1, 2]
//	Lookup(doc, "a")   -> [[{"b":1},{"b":2}]]
func Lookup(d Document, path string) []any {
	segs := strings.Split(path, ".")
	return lookupValue(map[string]any(d), segs)
}

func lookupValue(cur any, segs []string) []any {
	cur = normalize(cur)
	if len(segs) == 0 {
		return []any{cur}
	}
	seg := segs[0]
	switch t := cur.(type) {
	case map[string]any:
		v, ok := t[seg]
		if !ok {
			return []any{Missing}
		}
		return lookupValue(v, segs[1:])
	case []any:
		// Numeric segment: positional index into the array.
		if idx, ok := arrayIndex(seg); ok {
			if idx < 0 || idx >= len(t) {
				return []any{Missing}
			}
			return lookupValue(t[idx], segs[1:])
		}
		// Otherwise fan out over elements.
		var out []any
		for _, e := range t {
			out = append(out, lookupValue(e, segs)...)
		}
		if len(out) == 0 {
			out = []any{Missing}
		}
		return out
	default:
		return []any{Missing}
	}
}

// Set assigns a value at a dotted path, creating intermediate objects as
// needed. It returns an error when the path traverses a non-object value.
func Set(d Document, path string, value any) error {
	segs := strings.Split(path, ".")
	cur := map[string]any(d)
	for i, seg := range segs[:len(segs)-1] {
		next, ok := cur[seg]
		if !ok {
			child := map[string]any{}
			cur[seg] = child
			cur = child
			continue
		}
		child, ok := normalize(next).(map[string]any)
		if !ok {
			return fmt.Errorf("document: path %q blocked by non-object at %q", path, strings.Join(segs[:i+1], "."))
		}
		cur[seg] = child
		cur = child
	}
	cur[segs[len(segs)-1]] = value
	return nil
}

// Unset removes the value at a dotted path. Removing a missing path is a
// no-op.
func Unset(d Document, path string) {
	segs := strings.Split(path, ".")
	cur := map[string]any(d)
	for _, seg := range segs[:len(segs)-1] {
		child, ok := normalize(cur[seg]).(map[string]any)
		if !ok {
			return
		}
		cur = child
	}
	delete(cur, segs[len(segs)-1])
}

// Project returns a copy of the document containing only the given dotted
// paths (plus _id, as in MongoDB, unless includeID is false). An empty path
// list returns a full clone.
func Project(d Document, paths []string, includeID bool) Document {
	if len(paths) == 0 {
		return d.Clone()
	}
	out := Document{}
	if includeID {
		if id, ok := d["_id"]; ok {
			out["_id"] = cloneValue(id)
		}
	}
	for _, p := range paths {
		v := Get(d, p)
		if IsMissing(v) {
			continue
		}
		// Ignore the error: Get succeeded, so the path is object-shaped.
		_ = Set(out, p, cloneValue(v))
	}
	return out
}
