package document

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// Op is the kind of write operation an after-image describes.
type Op uint8

const (
	// OpInsert created the record.
	OpInsert Op = iota + 1
	// OpUpdate replaced or modified an existing record.
	OpUpdate
	// OpDelete removed the record; the after-image document is nil.
	OpDelete
)

// String returns the operation name.
func (o Op) String() string {
	switch o {
	case OpInsert:
		return "insert"
	case OpUpdate:
		return "update"
	case OpDelete:
		return "delete"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// AfterImage is the fully specified representation of a written entity that
// the application server forwards to the InvaliDB cluster on every write
// (paper §5). Versions are assigned per record and increase strictly with
// each write, enabling staleness avoidance: a matching node drops any
// after-image whose version is not newer than the last one it has seen for
// the same key.
type AfterImage struct {
	Collection string   `json:"c"`
	Key        string   `json:"k"`
	Version    uint64   `json:"v"`
	Op         Op       `json:"o"`
	Doc        Document `json:"d,omitempty"` // nil for deletes
}

// Validate checks structural invariants: a key and version are always
// required, deletes carry no document, other operations carry one.
func (ai *AfterImage) Validate() error {
	switch {
	case ai.Key == "":
		return fmt.Errorf("after-image: empty key")
	case ai.Version == 0:
		return fmt.Errorf("after-image: zero version for key %q", ai.Key)
	case ai.Op == OpDelete && ai.Doc != nil:
		return fmt.Errorf("after-image: delete of %q carries a document", ai.Key)
	case ai.Op != OpDelete && ai.Doc == nil:
		return fmt.Errorf("after-image: %s of %q carries no document", ai.Op, ai.Key)
	case ai.Op != OpInsert && ai.Op != OpUpdate && ai.Op != OpDelete:
		return fmt.Errorf("after-image: invalid op %d", ai.Op)
	}
	return nil
}

// Encode serializes the after-image for transport over the event layer.
func (ai *AfterImage) Encode() ([]byte, error) {
	return json.Marshal(ai)
}

// DecodeAfterImage parses an encoded after-image and normalizes its document
// into canonical value types.
func DecodeAfterImage(data []byte) (*AfterImage, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	var ai AfterImage
	if err := dec.Decode(&ai); err != nil {
		return nil, fmt.Errorf("after-image: decode: %w", err)
	}
	if ai.Doc != nil {
		ai.Doc = Normalize(ai.Doc)
	}
	if err := ai.Validate(); err != nil {
		return nil, err
	}
	return &ai, nil
}
