package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"invalidb/internal/metrics"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServeMetricsHealthzPprof(t *testing.T) {
	reg := metrics.NewRegistry()
	reg.Counter("demo.writes").Add(7)
	reg.Gauge("demo.depth", func() float64 { return 3 })

	healthy := true
	srv, err := Serve("", Options{
		Registry: reg,
		Healthy:  func() bool { return healthy },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	code, body := get(t, base+"/metrics")
	if code != 200 {
		t.Fatalf("/metrics status = %d", code)
	}
	var snap metrics.RegistrySnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/metrics not JSON: %v\n%s", err, body)
	}
	if snap.Counters["demo.writes"] != 7 || snap.Gauges["demo.depth"] != 3 {
		t.Fatalf("snapshot = %+v", snap)
	}

	code, body = get(t, base+"/metrics?format=text")
	if code != 200 || !strings.Contains(body, "demo.writes 7") {
		t.Fatalf("text metrics = %d\n%s", code, body)
	}

	code, body = get(t, base+"/healthz")
	if code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("healthz = %d %q", code, body)
	}
	healthy = false
	code, _ = get(t, base+"/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("unhealthy healthz status = %d, want 503", code)
	}

	code, body = get(t, base+"/debug/pprof/goroutine?debug=1")
	if code != 200 || !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof goroutine = %d\n%.200s", code, body)
	}
}

// The endpoint is unauthenticated (pprof can start CPU profiles), so a
// host-less address like ":0" must bind loopback, not all interfaces.
func TestServeHostlessAddrBindsLoopback(t *testing.T) {
	srv, err := Serve(":0", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if !strings.HasPrefix(srv.Addr(), "127.0.0.1:") {
		t.Fatalf("Addr() = %q, want loopback bind for host-less addr", srv.Addr())
	}
}

func TestServeNilRegistry(t *testing.T) {
	srv, err := Serve("", Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()
	if code, _ := get(t, base+"/metrics"); code != 404 {
		t.Fatalf("/metrics with nil registry = %d, want 404", code)
	}
	if code, _ := get(t, base+"/healthz"); code != 200 {
		t.Fatalf("/healthz with nil Healthy = %d, want 200", code)
	}
}
