// Package obs serves the observability surface of an InvaliDB process: the
// unified metrics registry over HTTP, a liveness probe, and the standard Go
// pprof profiling handlers. Every daemon (eventlayerd, invalidb-server,
// invalidb-appserver) mounts it behind a -obs-addr flag; the endpoint is
// deliberately separate from the data-plane listeners so scraping and
// profiling never compete with gateway or broker traffic.
//
// Endpoints:
//
//	/metrics        registry snapshot as indented JSON
//	/metrics?format=text
//	                plaintext "name value" lines, one metric per line
//	/healthz        200 "ok" while the Healthy callback returns true, else 503
//	/debug/pprof/*  net/http/pprof (profile, heap, goroutine, trace, ...)
//
// The endpoint is unauthenticated, and /debug/pprof/profile can start CPU
// profiling that degrades the process, so Serve binds loopback unless the
// address names a host explicitly: "" and ":port" both resolve to
// 127.0.0.1. Operators who want network exposure must opt in with an
// explicit host such as 0.0.0.0:9090 — and should front it with their own
// access control.
package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"time"

	"invalidb/internal/metrics"
)

// Options configures an observability endpoint.
type Options struct {
	// Registry is the metrics registry to expose. Nil disables /metrics
	// (it returns 404) but keeps /healthz and pprof available.
	Registry *metrics.Registry

	// Healthy reports process liveness for /healthz. Nil means always
	// healthy.
	Healthy func() bool

	// Logf receives serve-loop errors. Nil discards them.
	Logf func(format string, args ...any)
}

// Server is a running observability endpoint.
type Server struct {
	ln   net.Listener
	http *http.Server
	done chan struct{} // closed when the serve goroutine exits
}

// Serve starts the observability endpoint on addr ("" or ":0" pick an
// ephemeral port). A host-less addr like ":9090" binds loopback rather
// than all interfaces — the surface is unauthenticated (see the package
// comment); pass an explicit host (e.g. "0.0.0.0:9090") to expose it.
// The handlers are registered on a private mux so that importing
// net/http/pprof side effects on http.DefaultServeMux are never relied
// on — and so embedding processes (tests, benchmarks) can run several
// endpoints side by side.
func Serve(addr string, opts Options) (*Server, error) {
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	if addr == "" {
		addr = "127.0.0.1:0"
	} else if host, port, err := net.SplitHostPort(addr); err == nil && host == "" {
		addr = net.JoinHostPort("127.0.0.1", port)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		if opts.Registry == nil {
			http.NotFound(w, r)
			return
		}
		if r.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_ = opts.Registry.WriteText(w)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = opts.Registry.WriteJSON(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if opts.Healthy != nil && !opts.Healthy() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintln(w, "unhealthy")
			return
		}
		fmt.Fprintln(w, "ok")
	})
	// Explicit pprof registration: the net/http/pprof init only touches
	// http.DefaultServeMux, which this server does not use.
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	srv := &Server{
		ln: ln,
		http: &http.Server{
			Handler:           mux,
			ReadHeaderTimeout: 10 * time.Second,
		},
		done: make(chan struct{}),
	}
	go func() {
		defer close(srv.done)
		if err := srv.http.Serve(ln); err != nil && err != http.ErrServerClosed {
			opts.Logf("obs: serve: %v", err)
		}
	}()
	return srv, nil
}

// Addr returns the bound listen address, e.g. "127.0.0.1:46781".
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the endpoint, releases the listener, and waits for the serve
// goroutine to exit, so a closed Server leaves nothing running behind it.
func (s *Server) Close() error {
	err := s.http.Close()
	<-s.done
	return err
}
