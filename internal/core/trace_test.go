package core

import (
	"testing"
	"time"

	"invalidb/internal/document"
	"invalidb/internal/eventlayer"
	"invalidb/internal/query"
)

// TestStageTimestampsPropagate runs a real cluster on a MemBus and checks
// the latency-tracing contract end to end: a write stamped with SentNs at
// the producer comes back as a notification carrying monotonically ordered
// write -> ingest -> match timestamps, and the registry's counters reflect
// the traffic. Run under -race this also exercises concurrent stamp reads.
func TestStageTimestampsPropagate(t *testing.T) {
	bus := eventlayer.NewMemBus(eventlayer.MemBusOptions{})
	defer bus.Close()
	cluster, err := NewCluster(bus, Options{
		QueryPartitions: 2,
		WritePartitions: 2,
		TickInterval:    50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.Start(); err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()

	topics := cluster.Topics()
	sub, err := bus.Subscribe(topics.Notify("t"))
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	env := &Envelope{Kind: KindSubscribe, Subscribe: &SubscribeRequest{
		Tenant:         "t",
		SubscriptionID: "trace-1",
		Query:          query.Spec{Collection: "c", Filter: map[string]any{"v": int64(1)}},
		TTLMillis:      time.Minute.Milliseconds(),
	}}
	data, err := env.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := bus.Publish(topics.Queries(), data); err != nil {
		t.Fatal(err)
	}
	// Wait until the subscription is installed before writing.
	deadline := time.Now().Add(5 * time.Second)
	for cluster.Metrics().Snapshot().Counters["cluster.subscribes"] == 0 {
		if time.Now().After(deadline) {
			t.Fatal("subscription never installed")
		}
		time.Sleep(2 * time.Millisecond)
	}

	sentNs := time.Now().UnixNano()
	wenv := &Envelope{Kind: KindWrite, Write: &WriteEvent{
		Tenant: "t",
		SentNs: sentNs,
		Image: &document.AfterImage{
			Collection: "c",
			Key:        "k1",
			Version:    1,
			Op:         document.OpInsert,
			Doc:        document.Document{"_id": "k1", "v": int64(1)},
		},
	}}
	if data, err = wenv.Encode(); err != nil {
		t.Fatal(err)
	}
	if err := bus.Publish(topics.Writes(), data); err != nil {
		t.Fatal(err)
	}

	var n *Notification
	timeout := time.After(5 * time.Second)
	for n == nil {
		select {
		case msg := <-sub.C():
			env, err := DecodeEnvelope(msg.Payload)
			if err != nil || env.Kind != KindNotification {
				continue
			}
			if env.Notification.Type == MatchAdd {
				n = env.Notification
			}
		case <-timeout:
			t.Fatal("no notification within 5s")
		}
	}

	now := time.Now().UnixNano()
	if n.WriteNs != sentNs {
		t.Errorf("WriteNs = %d, want producer stamp %d", n.WriteNs, sentNs)
	}
	if n.IngestNs < n.WriteNs || n.IngestNs > now {
		t.Errorf("IngestNs %d outside [WriteNs %d, now %d]", n.IngestNs, n.WriteNs, now)
	}
	if n.MatchNs < n.IngestNs || n.MatchNs > now {
		t.Errorf("MatchNs %d outside [IngestNs %d, now %d]", n.MatchNs, n.IngestNs, now)
	}

	snap := cluster.Metrics().Snapshot()
	for _, name := range []string{"cluster.writes_ingested", "cluster.writes_matched", "cluster.notifications"} {
		if snap.Counters[name] == 0 {
			t.Errorf("counter %s = 0, want > 0", name)
		}
	}
}
