package core

import (
	"invalidb/internal/document"
	"invalidb/internal/query"
)

// Engine is the pluggable query engine of the paper's §5.3: it encapsulates
// every database-specific aspect of real-time matching — (1) parsing queries
// of one specific query language, (2) interpreting after-images in the
// prevalent format, (3) computing matching decisions, and (4) sorting
// results with the underlying database's semantics. The cluster itself only
// routes opaque payloads; swapping the Engine adds support for a different
// database.
type Engine interface {
	// Compile parses and validates a query specification.
	Compile(spec query.Spec) (*query.Query, error)
	// DecodeImage interprets a raw after-image document into the canonical
	// in-memory form.
	DecodeImage(img *document.AfterImage) (*document.AfterImage, error)
	// Match computes the matching decision for a document.
	Match(q *query.Query, d document.Document) bool
	// Compare orders two documents with the database's sort semantics
	// (including the engine's unambiguous tiebreaker).
	Compare(q *query.Query, a, b document.Document) int
}

// MongoEngine is the MongoDB-compatible engine implementation used by the
// prototype (paper §5.4): sorted filter queries over single collections with
// the operator set of an aggregate-oriented document store.
type MongoEngine struct{}

// Compile implements Engine.
func (MongoEngine) Compile(spec query.Spec) (*query.Query, error) {
	return query.Compile(spec)
}

// DecodeImage implements Engine: documents are already JSON-shaped; it
// normalizes value types and validates structural invariants.
func (MongoEngine) DecodeImage(img *document.AfterImage) (*document.AfterImage, error) {
	if img.Doc != nil {
		img.Doc = document.Normalize(img.Doc)
	}
	if err := img.Validate(); err != nil {
		return nil, err
	}
	return img, nil
}

// Match implements Engine.
func (MongoEngine) Match(q *query.Query, d document.Document) bool { return q.Match(d) }

// Compare implements Engine.
func (MongoEngine) Compare(q *query.Query, a, b document.Document) int { return q.Compare(a, b) }
