package core

import (
	"invalidb/internal/document"
	"invalidb/internal/topology"
)

// NewAggregationStage builds a Stage that maintains streaming aggregates —
// count, sum, average, minimum and maximum of a numeric field — over every
// registered query's result. It demonstrates the paper's extension plan
// (§8.1, "Aggregations & Joins"): additional query types are added as
// loosely coupled processing stages behind the filtering stage, without
// touching the scalability-critical matching grid.
//
// Aggregate updates are published as notifications with the reserved key
// "$aggregate" and a document {count, sum, avg, min, max}; minimum and
// maximum are maintained exactly (per-key values are tracked, so removals
// recompute them without rescanning the database).
func NewAggregationStage(field string, parallelism int) Stage {
	return Stage{
		Name:        "aggregate",
		Parallelism: parallelism,
		Factory: func(c *Cluster) topology.Bolt {
			return &aggregateBolt{c: c, field: field}
		},
	}
}

// AggregateKey is the notification key carrying aggregate documents.
const AggregateKey = "$aggregate"

type aggState struct {
	tenant string
	hash   uint64
	values map[string]float64 // result member key -> field value
	sum    float64
	seq    uint64
}

type aggregateBolt struct {
	c     *Cluster
	field string
	out   topology.Collector
	state map[uint64]*aggState
}

func (b *aggregateBolt) Prepare(ctx *topology.BoltContext, out topology.Collector) error {
	b.out = out
	b.state = map[uint64]*aggState{}
	return nil
}

func (b *aggregateBolt) Cleanup() {}

func (b *aggregateBolt) Execute(t *topology.Tuple) {
	defer b.out.Ack(t)
	if t.Component == "tick" {
		return
	}
	kindV, _ := t.Get("kind")
	kind, _ := kindV.(string)
	payloadV, _ := t.Get("payload")
	switch kind {
	case kindSubscribe:
		if p, ok := payloadV.(*subscribePayload); ok {
			b.bootstrap(p)
		}
	case kindCancel:
		if p, ok := payloadV.(*CancelRequest); ok {
			delete(b.state, p.QueryHash)
		}
	case kindExpire:
		if hash, ok := payloadV.(uint64); ok {
			delete(b.state, hash)
		}
	case kindDelta:
		if d, ok := payloadV.(*deltaEvent); ok {
			b.apply(d)
		}
	}
}

func (b *aggregateBolt) bootstrap(p *subscribePayload) {
	st := &aggState{tenant: p.req.Tenant, hash: p.hash, values: map[string]float64{}}
	for _, e := range p.entries {
		if v, ok := numericField(e.Doc, b.field); ok {
			st.values[e.Key] = v
			st.sum += v
		}
	}
	b.state[p.hash] = st
	b.publish(st)
}

func (b *aggregateBolt) apply(d *deltaEvent) {
	hash, ok := ParseQueryID(d.QueryID)
	if !ok {
		return
	}
	st := b.state[hash]
	if st == nil {
		return
	}
	prev, had := st.values[d.Key]
	switch d.Type {
	case MatchAdd, MatchChange:
		v, ok := numericField(d.Doc, b.field)
		if !ok {
			if had {
				delete(st.values, d.Key)
				st.sum -= prev
				b.publish(st)
			}
			return
		}
		if had && v == prev {
			return // no aggregate change
		}
		if had {
			st.sum -= prev
		}
		st.values[d.Key] = v
		st.sum += v
		b.publish(st)
	case MatchRemove:
		if !had {
			return
		}
		delete(st.values, d.Key)
		st.sum -= prev
		b.publish(st)
	}
}

func (b *aggregateBolt) publish(st *aggState) {
	st.seq++
	count := len(st.values)
	doc := document.Document{
		"_id":   AggregateKey,
		"field": b.field,
		"count": int64(count),
		"sum":   st.sum,
	}
	if count > 0 {
		doc["avg"] = st.sum / float64(count)
		min, max := 0.0, 0.0
		first := true
		for _, v := range st.values {
			if first {
				min, max = v, v
				first = false
				continue
			}
			if v < min {
				min = v
			}
			if v > max {
				max = v
			}
		}
		doc["min"] = min
		doc["max"] = max
	}
	b.c.publishNotification(&Notification{
		Tenant:  st.tenant,
		QueryID: QueryIDString(st.hash),
		Type:    MatchChange,
		Key:     AggregateKey,
		Doc:     doc,
		Index:   -1,
		Seq:     st.seq,
	})
}

// numericField extracts a float64 from a document field.
func numericField(d document.Document, field string) (float64, bool) {
	if d == nil {
		return 0, false
	}
	switch v := document.Get(d, field).(type) {
	case int64:
		return float64(v), true
	case float64:
		return v, true
	default:
		return 0, false
	}
}
