package core

import (
	"strings"
	"testing"

	"invalidb/internal/document"
	"invalidb/internal/query"
)

func TestMatchTypeJSONRoundTrip(t *testing.T) {
	for _, mt := range []MatchType{MatchAdd, MatchChange, MatchChangeIndex, MatchRemove, MatchError} {
		b, err := mt.MarshalJSON()
		if err != nil {
			t.Fatalf("%v: %v", mt, err)
		}
		var got MatchType
		if err := got.UnmarshalJSON(b); err != nil {
			t.Fatalf("%v: %v", mt, err)
		}
		if got != mt {
			t.Fatalf("round trip %v -> %v", mt, got)
		}
	}
	var mt MatchType
	if err := mt.UnmarshalJSON([]byte(`"bogus"`)); err == nil {
		t.Fatal("unknown match type accepted")
	}
	if _, err := MatchType(99).MarshalJSON(); err == nil {
		t.Fatal("invalid match type marshalled")
	}
	if !strings.Contains(MatchType(99).String(), "99") {
		t.Fatal("String for invalid type")
	}
}

func TestEnvelopeRoundTrips(t *testing.T) {
	envs := []*Envelope{
		{Kind: KindSubscribe, Subscribe: &SubscribeRequest{
			Tenant: "t", SubscriptionID: "s", TTLMillis: 1000,
			Query:  query.Spec{Collection: "c", Filter: map[string]any{"x": 1}},
			Result: []ResultEntry{{Key: "k", Version: 2, Doc: document.Document{"_id": "k", "x": int64(1)}}},
		}},
		{Kind: KindCancel, Cancel: &CancelRequest{Tenant: "t", SubscriptionID: "s", QueryHash: 42}},
		{Kind: KindExtend, Extend: &ExtendRequest{Tenant: "t", SubscriptionID: "s", QueryHash: 42, TTLMillis: 500}},
		{Kind: KindWrite, Write: &WriteEvent{Tenant: "t", Image: &document.AfterImage{
			Collection: "c", Key: "k", Version: 3, Op: document.OpUpdate,
			Doc: document.Document{"_id": "k", "x": int64(9)},
		}}},
		{Kind: KindNotification, Notification: &Notification{
			Tenant: "t", QueryID: QueryIDString(7), Type: MatchAdd, Key: "k",
			Doc: document.Document{"_id": "k"}, Version: 1, Index: 2, Seq: 9,
		}},
		{Kind: KindHeartbeat, Heartbeat: &Heartbeat{Tenant: "t", TimeMillis: 123}},
	}
	for _, env := range envs {
		data, err := env.Encode()
		if err != nil {
			t.Fatalf("%s: encode: %v", env.Kind, err)
		}
		got, err := DecodeEnvelope(data)
		if err != nil {
			t.Fatalf("%s: decode: %v", env.Kind, err)
		}
		if got.Kind != env.Kind {
			t.Fatalf("kind %s -> %s", env.Kind, got.Kind)
		}
	}
}

func TestEnvelopeNumberNormalization(t *testing.T) {
	env := &Envelope{Kind: KindWrite, Write: &WriteEvent{Tenant: "t", Image: &document.AfterImage{
		Collection: "c", Key: "k", Version: 1, Op: document.OpInsert,
		Doc: document.Document{"_id": "k", "n": 3},
	}}}
	data, _ := env.Encode()
	got, err := DecodeEnvelope(data)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := got.Write.Image.Doc["n"].(int64); !ok {
		t.Fatalf("decoded number type: %T", got.Write.Image.Doc["n"])
	}
}

func TestEnvelopeRejectsGarbage(t *testing.T) {
	bad := [][]byte{
		[]byte(`{`),
		[]byte(`{"kind":"nope"}`),
		[]byte(`{"kind":"subscribe"}`),
		[]byte(`{"kind":"write"}`),
		[]byte(`{"kind":"write","write":{"tenant":"t"}}`),
		[]byte(`{"kind":"write","write":{"tenant":"t","img":{"c":"c","k":"","v":1,"o":1}}}`),
	}
	for i, b := range bad {
		if _, err := DecodeEnvelope(b); err == nil {
			t.Errorf("case %d: garbage envelope accepted", i)
		}
	}
}

func TestQueryIDRoundTrip(t *testing.T) {
	for _, h := range []uint64{0, 1, 42, 0xdeadbeefcafe, ^uint64(0)} {
		id := QueryIDString(h)
		got, ok := ParseQueryID(id)
		if !ok || got != h {
			t.Fatalf("ParseQueryID(%q) = %d, %v; want %d", id, got, ok, h)
		}
	}
	for _, bad := range []string{"", "q123", "x0000000000000000", "q00000000000000zz", "q00000000000000000"} {
		if _, ok := ParseQueryID(bad); ok {
			t.Errorf("ParseQueryID(%q) accepted", bad)
		}
	}
}

func TestTenantQueryHashIsolation(t *testing.T) {
	q := query.MustCompile(query.Spec{Collection: "c", Filter: map[string]any{"x": 1}})
	a := TenantQueryHash("tenantA", q)
	b := TenantQueryHash("tenantB", q)
	if a == b {
		t.Fatal("different tenants hash to the same query identity")
	}
	if a != TenantQueryHash("tenantA", q) {
		t.Fatal("tenant hash not deterministic")
	}
}

func TestTopics(t *testing.T) {
	tp := NewTopics("")
	if tp.Queries() != "invalidb.queries" || tp.Writes() != "invalidb.writes" {
		t.Fatalf("default topics: %s %s", tp.Queries(), tp.Writes())
	}
	if tp.Notify("t1") != "invalidb.notify.t1" {
		t.Fatalf("notify topic: %s", tp.Notify("t1"))
	}
	custom := NewTopics("bench")
	if custom.Queries() != "bench.queries" {
		t.Fatalf("namespaced topic: %s", custom.Queries())
	}
}

func TestClusterOptionDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.QueryPartitions != 1 || o.WritePartitions != 1 || o.WriteIngestNodes != 4 || o.QueryIngestNodes != 1 {
		t.Fatalf("defaults: %+v", o)
	}
	if o.SortNodes != 1 || o.Engine == nil || o.Namespace != "invalidb" {
		t.Fatalf("defaults: %+v", o)
	}
	o2 := Options{QueryPartitions: 8}.withDefaults()
	if o2.SortNodes != 8 {
		t.Fatalf("SortNodes should default to QP: %d", o2.SortNodes)
	}
}

func TestGridCellMapping(t *testing.T) {
	l := gridLayout{rows: 3, cols: 4}
	for row := 0; row < 3; row++ {
		for col := 0; col < 4; col++ {
			task := l.task(row, col)
			gr, gc := l.cell(task)
			if gr != row || gc != col {
				t.Fatalf("grid round trip (%d,%d) -> %d -> (%d,%d)", row, col, task, gr, gc)
			}
		}
	}
}
