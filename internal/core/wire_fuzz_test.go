package core

import (
	"reflect"
	"testing"
)

// FuzzEnvelopeWire checks the codec's two contracts on arbitrary input:
// corrupt or truncated bytes must error without panicking, and any
// envelope that does decode — from either wire format — must round-trip
// identically through both formats. "Identically" covers failure too: if
// one format's round trip rejects the envelope (e.g. a write whose
// empty document collapses to nil and then fails image validation), the
// other must reject it as well.
func FuzzEnvelopeWire(f *testing.F) {
	for _, env := range wireTestEnvelopes() {
		bin, err := env.EncodeBinary()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(bin)
		js, err := env.EncodeJSON()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(js)
	}
	f.Add([]byte{wireMagic, wireTagWrite, 0, 0})
	f.Add([]byte(`{"kind":"write","write":{}}`))
	f.Add([]byte{wireMagic, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, data []byte) {
		env, err := DecodeWire(data)
		if err != nil {
			return // rejected without panicking — that's the contract
		}
		bin, errB := env.EncodeBinary()
		js, errJ := env.EncodeJSON()
		if (errB == nil) != (errJ == nil) {
			t.Fatalf("encode disagreement: binary err=%v, json err=%v for %#v", errB, errJ, env)
		}
		if errB != nil {
			return
		}
		rtBin, errB := DecodeWire(bin)
		rtJSON, errJ := DecodeWire(js)
		if (errB == nil) != (errJ == nil) {
			t.Fatalf("round-trip decode disagreement: binary err=%v, json err=%v for %#v", errB, errJ, env)
		}
		if errB != nil {
			return
		}
		if !reflect.DeepEqual(rtBin, rtJSON) {
			t.Fatalf("round trips disagree:\nbinary: %#v\njson:   %#v", rtBin, rtJSON)
		}
	})
}
