package core

import (
	"reflect"
	"testing"

	"invalidb/internal/document"
	"invalidb/internal/metrics"
	"invalidb/internal/query"
)

// wireTestEnvelopes returns one representative envelope per kind, with
// every field populated enough to exercise the codec's corners (nested
// documents, nil-vs-empty results, sort keys, negative numbers).
func wireTestEnvelopes() []*Envelope {
	return []*Envelope{
		{Kind: KindSubscribe, Subscribe: &SubscribeRequest{
			Tenant:         "t1",
			SubscriptionID: "sub-1",
			Query: query.Spec{
				Collection: "orders",
				Filter: map[string]any{
					"status": "open",
					"total":  map[string]any{"$gte": int64(100)},
					"tags":   []any{"a", int64(2), 3.5, true, nil},
				},
				Sort:       []query.SortKey{{Path: "total", Desc: true}, {Path: "_id"}},
				Limit:      10,
				Offset:     2,
				Projection: []string{"_id", "total"},
			},
			Slack:     5,
			TTLMillis: 60000,
			Result: []ResultEntry{
				{Key: "o1", Version: 3, Doc: document.Document{"_id": "o1", "total": int64(250)}},
				{Key: "o2", Version: 1, Doc: nil},
				{Key: "o3", Version: 9, Doc: document.Document{}},
			},
		}},
		{Kind: KindCancel, Cancel: &CancelRequest{
			Tenant: "t1", SubscriptionID: "sub-1", QueryHash: 0xDEADBEEFCAFE1234,
		}},
		{Kind: KindExtend, Extend: &ExtendRequest{
			Tenant: "t1", SubscriptionID: "sub-1", QueryHash: 0xDEADBEEFCAFE1234, TTLMillis: 30000,
		}},
		{Kind: KindWrite, Write: &WriteEvent{
			Tenant: "t2",
			Image: &document.AfterImage{
				Collection: "orders", Key: "o9", Version: 7, Op: document.OpUpdate,
				Doc: document.Document{
					"_id":   "o9",
					"total": int64(-42),
					"meta":  map[string]any{"nested": []any{map[string]any{"deep": int64(1)}}},
					"ratio": 0.25,
				},
			},
			SentNs: 1712345678901234567,
		}},
		{Kind: KindNotification, Notification: &Notification{
			Tenant: "t2", QueryID: "q00000000deadbeef", Type: MatchChangeIndex,
			Key: "o9", Doc: document.Document{"_id": "o9", "total": int64(-42)},
			Version: 7, Index: 3, Seq: 99, Origin: "m3.1",
			WriteNs: 100, IngestNs: 200, MatchNs: 300,
		}},
		{Kind: KindNotification, Notification: &Notification{
			Tenant: "t2", QueryID: "q00000000deadbeef", Type: MatchError,
			Error: "index overflow", Index: -1, Seq: 100,
		}},
		{Kind: KindHeartbeat, Heartbeat: &Heartbeat{Tenant: "t3", TimeMillis: 1712345678901}},
		{Kind: KindResync, Resync: &ResyncRequest{Component: "match", TaskID: 4}},
		{Kind: KindBackfillStart, BackfillStart: &BackfillStart{
			Tenant:         "t1",
			SubscriptionID: "sub-7",
			BackfillID:     "bf-7.1",
			Query: query.Spec{
				Collection: "orders",
				Filter:     map[string]any{"status": "open", "total": map[string]any{"$lt": int64(-5)}},
			},
			Slack:     3,
			TTLMillis: 45000,
		}},
		{Kind: KindBackfillChunk, BackfillChunk: &BackfillChunk{
			Tenant:         "t1",
			SubscriptionID: "sub-7",
			BackfillID:     "bf-7.1",
			QueryHash:      0xDEADBEEFCAFE1234,
			Chunk:          2,
			Low:            1001,
			High:           1017,
			Last:           true,
			Entries: []ResultEntry{
				{Key: "o1", Version: 1005, Doc: document.Document{"_id": "o1", "total": int64(9)}},
				{Key: "o2", Version: 1002, Doc: document.Document{}},
			},
		}},
		{Kind: KindBackfillChunk, BackfillChunk: &BackfillChunk{
			Tenant: "t1", SubscriptionID: "sub-7", BackfillID: "bf-7.1",
			QueryHash: 1, Chunk: 0, Low: 3, High: 4, Entries: nil,
		}},
		{Kind: KindBackfillMark, BackfillMark: &BackfillMark{
			Tenant: "t1", BackfillID: "bf-7.1", Chunk: 2, Phase: BackfillPhaseHigh, Seq: 1017,
		}},
		{Kind: KindBackfillCert, BackfillCert: &BackfillCert{
			Tenant: "t1", SubscriptionID: "sub-7", BackfillID: "bf-7.1",
			QueryID: "q00000000deadbeef", Chunk: 2, Cell: 1, Cells: 2,
			Last: true, Origin: "m3.0", Status: BackfillStatusOK,
		}},
		{Kind: KindBackfillCert, BackfillCert: &BackfillCert{
			Tenant: "t1", SubscriptionID: "sub-7", BackfillID: "bf-7.1",
			QueryID: "q00000000deadbeef", Chunk: -1, Cells: 2, Status: BackfillStatusRestart,
		}},
		// Control-plane kinds (DESIGN.md §13) and epoch-stamped variants of
		// the control messages the coordinator protocol re-routes.
		{Kind: KindPartitionMap, Map: &PartitionMap{
			Epoch: 7, QueryPartitions: 3, WritePartitions: 2,
			Rows: []RowAssignment{{Node: "a", Slot: 0}, {Node: "b", Slot: 0}, {Node: "a", Slot: 1}},
		}},
		{Kind: KindPartitionMap, Map: func() *PartitionMap {
			m := IdentityMap(1, 1)
			m.Epoch = 1
			return m
		}()},
		{Kind: KindNodeHello, Hello: &NodeHello{Node: "a", Slots: 2, MaxWritePartitions: 3}},
		{Kind: KindNodeHello, Hello: &NodeHello{
			Node: "b", Slots: 1, MaxWritePartitions: 2,
			Map: &PartitionMap{
				Epoch: 9, QueryPartitions: 2, WritePartitions: 2,
				Rows: []RowAssignment{{Node: "b", Slot: 0}, {Slot: 1}},
			},
		}},
		{Kind: KindResize, Resize: &ResizeRequest{Axis: ResizeAxisQP}},
		{Kind: KindResize, Resize: &ResizeRequest{Axis: ResizeAxisWP}},
		{Kind: KindEpochAck, EpochAck: &EpochAck{Node: "a", Epoch: 7}},
		{Kind: KindSubscribe, Subscribe: &SubscribeRequest{
			Tenant: "t1", SubscriptionID: "sub-9", Epoch: 7,
			Query: query.Spec{Collection: "orders"},
		}},
		{Kind: KindCancel, Cancel: &CancelRequest{
			Tenant: "t1", SubscriptionID: "sub-9", QueryHash: 0xDEADBEEFCAFE1234, Epoch: 6,
		}},
		{Kind: KindExtend, Extend: &ExtendRequest{
			Tenant: "t1", SubscriptionID: "sub-9", QueryHash: 0xDEADBEEFCAFE1234, TTLMillis: 30000, Epoch: 7,
		}},
		{Kind: KindBackfillStart, BackfillStart: &BackfillStart{
			Tenant: "t1", SubscriptionID: "sub-9", BackfillID: "bf-9.1", Epoch: 7,
			Query: query.Spec{Collection: "orders"},
		}},
		{Kind: KindBackfillChunk, BackfillChunk: &BackfillChunk{
			Tenant: "t1", SubscriptionID: "sub-9", BackfillID: "bf-9.1",
			QueryHash: 2, Chunk: 1, Low: 5, High: 8, Epoch: 7,
		}},
	}
}

// TestWireBinaryRoundTrip: binary encode → decode must reproduce the
// envelope, and must agree exactly with the JSON round trip.
func TestWireBinaryRoundTrip(t *testing.T) {
	for _, env := range wireTestEnvelopes() {
		bin, err := env.EncodeBinary()
		if err != nil {
			t.Fatalf("%s: binary encode: %v", env.Kind, err)
		}
		if bin[0] != wireMagic {
			t.Fatalf("%s: binary encoding does not start with magic: % x", env.Kind, bin[:2])
		}
		js, err := env.EncodeJSON()
		if err != nil {
			t.Fatalf("%s: json encode: %v", env.Kind, err)
		}
		fromBin, err := DecodeWire(bin)
		if err != nil {
			t.Fatalf("%s: binary decode: %v", env.Kind, err)
		}
		fromJSON, err := DecodeWire(js)
		if err != nil {
			t.Fatalf("%s: json decode: %v", env.Kind, err)
		}
		if !reflect.DeepEqual(fromBin, fromJSON) {
			t.Fatalf("%s: binary and JSON round trips disagree:\nbinary: %#v\njson:   %#v",
				env.Kind, fromBin, fromJSON)
		}
		if !reflect.DeepEqual(fromBin, env) {
			t.Fatalf("%s: binary round trip mutated the envelope:\nin:  %#v\nout: %#v",
				env.Kind, env, fromBin)
		}
	}
}

// TestWireEncodeDispatch: Encode follows the process-wide format
// selector, and the selector rejects unknown names.
func TestWireEncodeDispatch(t *testing.T) {
	env := &Envelope{Kind: KindHeartbeat, Heartbeat: &Heartbeat{Tenant: "t", TimeMillis: 1}}
	if WireFormat() != WireBinary {
		t.Fatalf("default wire format = %q, want binary", WireFormat())
	}
	b, err := env.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if b[0] != wireMagic {
		t.Fatalf("binary-mode Encode produced % x", b[:1])
	}
	if err := SetWireFormat(WireJSON); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := SetWireFormat(WireBinary); err != nil {
			t.Fatal(err)
		}
	}()
	j, err := env.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if j[0] != '{' {
		t.Fatalf("json-mode Encode produced % x", j[:1])
	}
	if _, err := DecodeWire(j); err != nil {
		t.Fatalf("decode of json-mode output: %v", err)
	}
	if err := SetWireFormat("protobuf"); err == nil {
		t.Fatal("unknown wire format accepted")
	}
}

// TestWireFloatCollapse: integral floats must collapse to int64 exactly
// like the JSON path (json.Number round trip), so query hashes agree
// across formats.
func TestWireFloatCollapse(t *testing.T) {
	env := &Envelope{Kind: KindWrite, Write: &WriteEvent{
		Tenant: "t",
		Image: &document.AfterImage{
			Collection: "c", Key: "k", Version: 1, Op: document.OpInsert,
			Doc: document.Document{
				"intish":  3.0,
				"negzero": math_NegZero(),
				"frac":    3.5,
				"big":     1e300,
				"hugeint": 1e19, // integral but beyond int64: stays float
			},
		},
	}}
	bin, err := env.EncodeBinary()
	if err != nil {
		t.Fatal(err)
	}
	fromBin, err := DecodeWire(bin)
	if err != nil {
		t.Fatal(err)
	}
	js, err := env.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	fromJSON, err := DecodeWire(js)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fromBin, fromJSON) {
		t.Fatalf("float handling diverges:\nbinary: %#v\njson:   %#v",
			fromBin.Write.Image.Doc, fromJSON.Write.Image.Doc)
	}
	doc := fromBin.Write.Image.Doc
	if v, ok := doc["intish"].(int64); !ok || v != 3 {
		t.Fatalf("intish = %#v, want int64(3)", doc["intish"])
	}
	if v, ok := doc["frac"].(float64); !ok || v != 3.5 {
		t.Fatalf("frac = %#v, want float64(3.5)", doc["frac"])
	}
	if v, ok := doc["hugeint"].(float64); !ok || v != 1e19 {
		t.Fatalf("hugeint = %#v, want float64(1e19)", doc["hugeint"])
	}
}

// math_NegZero returns -0.0 without tripping constant folding.
func math_NegZero() float64 {
	z := 0.0
	return -z
}

// TestWireRejectsCorruptBinary: corrupt and truncated binary input must
// error, never panic.
func TestWireRejectsCorruptBinary(t *testing.T) {
	good, err := wireTestEnvelopes()[0].EncodeBinary()
	if err != nil {
		t.Fatal(err)
	}
	cases := [][]byte{
		{wireMagic},                      // magic only
		{wireMagic, 0},                   // kind 0
		{wireMagic, 99},                  // unknown kind
		{wireMagic, wireTagHeartbeat},    // truncated payload
		{wireMagic, wireTagNotification}, // truncated payload
		good[:len(good)/2],               // truncated mid-payload
		append(append([]byte{}, good...), 0xFF), // trailing garbage
		{wireMagic, wireTagHeartbeat, 1, 't', 2, 0xFF}, // bad varint tail
		{wireMagic, wireTagWrite, 0, 0, 0, 0, 0, 0, 0}, // fails image validation
		{wireMagic, wireTagNotification, 0, 0, 9, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}, // bad match type
		{wireMagic, wireTagHeartbeat, 2, 0xFF, 0xFE, 0},                         // invalid UTF-8 tenant
	}
	for i, in := range cases {
		if _, err := DecodeWire(in); err == nil {
			t.Errorf("case %d (% x): corrupt binary accepted", i, in)
		}
	}
	// A huge declared count must error before allocating.
	bomb := []byte{wireMagic, wireTagSubscribe, 0, 0, 0, 0, 0, 0, // empty strings/ints/spec prefix
		0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F} // absurd uvarint
	if _, err := DecodeWire(bomb); err == nil {
		t.Error("allocation-bomb count accepted")
	}
}

// TestWireBinarySmaller: the binary encoding must be at most half the
// JSON size for representative write and notification envelopes (the
// acceptance bar for the codec).
func TestWireBinarySmaller(t *testing.T) {
	for _, env := range wireTestEnvelopes() {
		if env.Kind != KindWrite && env.Kind != KindNotification {
			continue
		}
		bin, err := env.EncodeBinary()
		if err != nil {
			t.Fatal(err)
		}
		js, err := env.EncodeJSON()
		if err != nil {
			t.Fatal(err)
		}
		if len(bin)*2 > len(js) {
			t.Errorf("%s: binary %d bytes vs JSON %d bytes — not ≥2× smaller",
				env.Kind, len(bin), len(js))
		}
	}
}

// TestEnvelopeWireEncodeNoAllocs pins the steady-state binary encode of
// Write and Notification envelopes at 0 allocs/op when the caller reuses
// the buffer, which is what the TCP write path does.
func TestEnvelopeWireEncodeNoAllocs(t *testing.T) {
	for _, env := range wireTestEnvelopes() {
		if env.Kind != KindWrite && env.Kind != KindNotification {
			continue
		}
		buf, err := AppendEnvelope(nil, env)
		if err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(200, func() {
			var err error
			buf, err = AppendEnvelope(buf[:0], env)
			if err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%s: steady-state binary encode allocates %.1f/op, want 0", env.Kind, allocs)
		}
	}
}

// TestWireMetricsRegistered: encoding and decoding traffic shows up as
// wire.* gauges on a registry.
func TestWireMetricsRegistered(t *testing.T) {
	env := &Envelope{Kind: KindHeartbeat, Heartbeat: &Heartbeat{Tenant: "t", TimeMillis: 5}}
	b, err := env.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeWire(b); err != nil {
		t.Fatal(err)
	}
	r := metrics.NewRegistry()
	RegisterWireMetrics(r)
	snap := r.Snapshot()
	if snap.Gauges["wire.encode.heartbeat.messages"] < 1 {
		t.Fatalf("wire.encode.heartbeat.messages missing: %v", snap.Gauges)
	}
	if snap.Gauges["wire.decode.heartbeat.bytes"] < float64(len(b)) {
		t.Fatalf("wire.decode.heartbeat.bytes too small: %v", snap.Gauges)
	}
}
