package core

import (
	"time"

	"invalidb/internal/document"
	"invalidb/internal/eventlayer"
	"invalidb/internal/query"
	"invalidb/internal/topology"
)

// busSpout bridges one event-layer topic into the topology. Payloads stay
// opaque here — interpretation happens in the ingestion bolts, mirroring the
// event layer's design (§5.3: "routing and partitioning only rely on primary
// keys and server-generated query identifiers").
type busSpout struct {
	bus     eventlayer.Bus
	topic   string
	sub     eventlayer.Subscription
	ctx     *topology.SpoutContext
	dropped uint64
	// timer bounds the blocking receive in NextTuple (reused across calls).
	timer *time.Timer
}

func newBusSpout(bus eventlayer.Bus, topic string) topology.Spout {
	return &busSpout{bus: bus, topic: topic}
}

func (s *busSpout) Open(ctx *topology.SpoutContext) error {
	sub, err := s.bus.Subscribe(s.topic)
	if err != nil {
		return err
	}
	s.sub = sub
	s.ctx = ctx
	return nil
}

func (s *busSpout) NextTuple() bool {
	select {
	case msg, ok := <-s.sub.C():
		if !ok {
			return false
		}
		s.ctx.Emit(topology.Values{msg.Payload})
		return true
	default:
	}
	// Nothing buffered: block on the subscription for up to a millisecond so
	// a freshly published message is ingested immediately rather than after
	// the runtime's poll backoff — the dominant term of the paper's
	// single-write notification latency. The bound keeps completion delivery
	// and shutdown responsive.
	if s.timer == nil {
		s.timer = time.NewTimer(time.Millisecond)
	} else {
		s.timer.Reset(time.Millisecond)
	}
	select {
	case msg, ok := <-s.sub.C():
		if !s.timer.Stop() {
			<-s.timer.C
		}
		if !ok {
			return false
		}
		s.ctx.Emit(topology.Values{msg.Payload})
		return true
	case <-s.timer.C:
		return false
	}
}

// Ack and Fail are no-ops: the event layer is fire-and-forget, so there is
// nothing to replay from (the retention buffer in the matching nodes covers
// short gaps instead).
func (s *busSpout) Ack(topology.MsgID)  {}
func (s *busSpout) Fail(topology.MsgID) {}

func (s *busSpout) Close() {
	if s.sub != nil {
		_ = s.sub.Close()
	}
}

// tickSpout emits a timestamp tuple at a fixed interval; matching and
// sorting nodes use ticks for TTL expiry and retention pruning (Storm's tick
// tuples).
type tickSpout struct {
	interval time.Duration
	ctx      *topology.SpoutContext
	next     time.Time
}

func newTickSpout(interval time.Duration) topology.Spout {
	return &tickSpout{interval: interval}
}

func (s *tickSpout) Open(ctx *topology.SpoutContext) error {
	s.ctx = ctx
	//invalidb:allow coarseclock tick spout is the clock source itself
	s.next = time.Now().Add(s.interval)
	return nil
}

func (s *tickSpout) NextTuple() bool {
	//invalidb:allow coarseclock tick spout is the clock source itself
	now := time.Now()
	if now.Before(s.next) {
		return false
	}
	s.next = now.Add(s.interval)
	s.ctx.Emit(topology.Values{now})
	return true
}

func (s *tickSpout) Ack(topology.MsgID)  {}
func (s *tickSpout) Fail(topology.MsgID) {}
func (s *tickSpout) Close()              {}

// Tuple kinds flowing between cluster stages.
const (
	kindSubscribe  = "subscribe"
	kindCancel     = "cancel"
	kindExtend     = "extend"
	kindWrite      = "write"
	kindWriteBatch = "writeBatch" // several after-images in one tuple
	kindDelta      = "delta"      // filtering-stage output for sorted queries
	kindExpire     = "expire"     // all subscriptions of a query timed out

	// Backfill protocol (DESIGN.md §12): a chunk of the initial result fanned
	// to the query's row, and a watermark mark broadcast to every cell behind
	// the writes it brackets.
	kindBackfillChunk = "backfillChunk"
	kindBackfillMark  = "backfillMark"
)

// writeBatch carries several after-images of one write partition in a single
// tuple: the write-ingestion stage amortizes routing and channel sends over
// the batch instead of paying one tuple per write per query partition.
type writeBatch struct {
	events []*WriteEvent
}

// subscribePayload is the parsed subscription handed to matching and sorting
// nodes. Matching nodes receive the result entries of their own write
// partition only; the sorting node receives the full bootstrap result.
type subscribePayload struct {
	req   *SubscribeRequest
	q     *query.Query // compiled original query
	hash  uint64
	slack int
	ttl   time.Duration
	// entries is the (sliced or full) bootstrap result.
	entries []ResultEntry
	// backfill marks a chunked-backfill install (empty entries; the result
	// arrives chunk by chunk). Cells skip the subscribe-time retention
	// replay for these: the watermark windows of the chunks close the
	// write-subscription race that replay exists to close.
	backfill bool
}

// queryIngestBolt is a stateless query ingestion node (§5.1): it parses
// subscription control messages, computes the query partition from the
// canonical query hash, broadcasts the request to every matching node of the
// partition — delivering to each only its write partition of the initial
// result — and forwards bootstraps of sorted queries to the sorting stage.
type queryIngestBolt struct {
	c   *Cluster
	out topology.Collector
}

func newQueryIngestBolt(c *Cluster) topology.Bolt { return &queryIngestBolt{c: c} }

func (b *queryIngestBolt) Prepare(ctx *topology.BoltContext, out topology.Collector) error {
	b.out = out
	return nil
}

func (b *queryIngestBolt) Execute(t *topology.Tuple) {
	defer b.out.Ack(t)
	raw, _ := t.Get("payload")
	data, ok := raw.([]byte)
	if !ok {
		return
	}
	env, err := DecodeEnvelope(data)
	if err != nil {
		return
	}
	switch env.Kind {
	case KindSubscribe:
		b.handleSubscribe(t, env.Subscribe)
	case KindCancel:
		b.c.registerTenant(env.Cancel.Tenant)
		b.c.cancelSubscription(env.Cancel.QueryHash, env.Cancel.SubscriptionID)
		// Cancels resolve at their stamped epoch: during a migration the
		// application server cancels the OLD owner specifically, while the
		// new owner's fresh install stays untouched.
		if r := b.c.maps.at(env.Cancel.Epoch); r != nil {
			b.fanToRow(r, t, kindCancel, env.Cancel.QueryHash, env.Cancel)
			if r.ownedSlot(r.m.Row(env.Cancel.QueryHash)) >= 0 {
				b.out.EmitStream(streamBootstrap, t, topology.Values{kindCancel, QueryIDString(env.Cancel.QueryHash), env.Cancel})
			}
		}
	case KindExtend:
		// Registering the tenant here matters for failover: a replacement
		// cluster that has never seen this tenant learns of it from the
		// periodic TTL extensions and starts heartbeating, which is the
		// signal application servers wait for before re-subscribing.
		b.c.registerTenant(env.Extend.Tenant)
		ttl := time.Duration(env.Extend.TTLMillis) * time.Millisecond
		if ttl <= 0 {
			ttl = b.c.opts.DefaultTTL
		}
		b.c.extendSubscription(env.Extend.QueryHash, env.Extend.SubscriptionID, ttl)
		// Extends fan under BOTH epochs: mid-migration the subscription is
		// installed on the old and the new owner, and an extend that reached
		// only one would let the other expire under load. Repeats to the
		// same cell are idempotent renewals.
		cur, prev := b.c.maps.both()
		if cur != nil {
			b.fanToRow(cur, t, kindExtend, env.Extend.QueryHash, env.Extend)
		}
		if prev != nil {
			b.fanToRow(prev, t, kindExtend, env.Extend.QueryHash, env.Extend)
		}
	case KindResync:
		b.handleResync(t, env.Resync)
	case KindBackfillStart:
		b.handleBackfillStart(t, env.BackfillStart)
	case KindBackfillChunk:
		b.handleBackfillChunk(t, env.BackfillChunk)
	}
}

func (b *queryIngestBolt) handleSubscribe(t *topology.Tuple, req *SubscribeRequest) {
	q, err := b.c.opts.Engine.Compile(req.Query)
	if err != nil {
		// An uncompilable query cannot be routed; report the error on the
		// tenant's topic so the application server can surface it. Every
		// process of a multi-process grid sees the request, so only the
		// owner of global row 0 speaks — one error, not one per process.
		if b.c.reportsQueryErrors() {
			b.c.publishNotification(&Notification{
				Tenant:  req.Tenant,
				QueryID: "",
				Type:    MatchError,
				Index:   -1,
				Error:   "invalid query: " + err.Error(),
			})
		}
		return
	}
	b.c.registerTenant(req.Tenant)
	hash := TenantQueryHash(req.Tenant, q)
	ttl := time.Duration(req.TTLMillis) * time.Millisecond
	if ttl <= 0 {
		ttl = b.c.opts.DefaultTTL
	}
	// The registry is maintained on every process regardless of ownership:
	// any ingest node can then serve a resync after a resize moves the row
	// here, and the coordinator never has to replicate registry state.
	b.c.registerSubscription(req, q, hash, ttl)
	r := b.c.maps.at(req.Epoch)
	if r == nil {
		return // grid node awaiting its first partition map
	}
	row := r.m.Row(hash)
	slot := r.ownedSlot(row)
	if slot < 0 {
		return // another process owns this row
	}
	b.c.mInstalls.Inc()
	wp := r.m.WritePartitions

	// Slice the bootstrap result by write partition: every matching node of
	// the row receives only its partition of the result (§5.1).
	slices := make([][]ResultEntry, wp)
	for _, e := range req.Result {
		w := int(document.HashKey(e.Key) % uint64(wp))
		slices[w] = append(slices[w], e)
	}
	for w := 0; w < wp; w++ {
		payload := &subscribePayload{
			req: req, q: q, hash: hash, slack: req.Slack, ttl: ttl,
			entries: slices[w],
		}
		b.out.EmitDirect(b.c.layout.task(slot, w), t, topology.Values{kindSubscribe, QueryIDString(hash), payload})
	}
	if q.Ordered() || len(b.c.opts.ExtraStages) > 0 {
		payload := &subscribePayload{
			req: req, q: q, hash: hash, slack: req.Slack, ttl: ttl,
			entries: req.Result,
		}
		b.out.EmitStream(streamBootstrap, t, topology.Values{kindSubscribe, QueryIDString(hash), payload})
	}
}

// handleBackfillStart registers a backfilling subscription and installs the
// query — with an empty bootstrap partition — on every cell of its row, so
// live deltas flow to the application server from the first chunk on. The
// initial result follows incrementally as BackfillChunks (DESIGN.md §12);
// ordered queries keep the legacy bootstrap path, because their sorting-stage
// state needs the full result at install time.
func (b *queryIngestBolt) handleBackfillStart(t *topology.Tuple, bs *BackfillStart) {
	q, err := b.c.opts.Engine.Compile(bs.Query)
	if err != nil {
		if b.c.reportsQueryErrors() {
			b.c.publishNotification(&Notification{
				Tenant:  bs.Tenant,
				QueryID: "",
				Type:    MatchError,
				Index:   -1,
				Error:   "invalid query: " + err.Error(),
			})
		}
		return
	}
	if q.Ordered() {
		if b.c.reportsQueryErrors() {
			b.c.publishNotification(&Notification{
				Tenant:  bs.Tenant,
				QueryID: "",
				Type:    MatchError,
				Index:   -1,
				Error:   "backfill: ordered queries use the bootstrap path",
			})
		}
		return
	}
	b.c.registerTenant(bs.Tenant)
	hash := TenantQueryHash(bs.Tenant, q)
	ttl := time.Duration(bs.TTLMillis) * time.Millisecond
	if ttl <= 0 {
		ttl = b.c.opts.DefaultTTL
	}
	req := &SubscribeRequest{
		Tenant:         bs.Tenant,
		SubscriptionID: bs.SubscriptionID,
		Query:          bs.Query,
		Slack:          bs.Slack,
		TTLMillis:      bs.TTLMillis,
	}
	b.c.registerBackfill(req, q, hash, ttl, bs.BackfillID)
	r := b.c.maps.at(bs.Epoch)
	if r == nil {
		return
	}
	row := r.m.Row(hash)
	slot := r.ownedSlot(row)
	if slot < 0 {
		return
	}
	b.c.mInstalls.Inc()
	for w := 0; w < r.m.WritePartitions; w++ {
		payload := &subscribePayload{req: req, q: q, hash: hash, slack: bs.Slack, ttl: ttl, backfill: true}
		b.out.EmitDirect(b.c.layout.task(slot, w), t, topology.Values{kindSubscribe, QueryIDString(hash), payload})
	}
	if len(b.c.opts.ExtraStages) > 0 {
		payload := &subscribePayload{req: req, q: q, hash: hash, slack: bs.Slack, ttl: ttl, backfill: true}
		b.out.EmitStream(streamBootstrap, t, topology.Values{kindSubscribe, QueryIDString(hash), payload})
	}
}

// handleBackfillChunk slices a chunk by write partition and fans it to every
// cell of the query's row — including cells whose slice is empty, because
// each cell must certify that its partition's in-window writes are folded in.
// The entries also accumulate in the subscription registry, so a mid-backfill
// resync re-installs everything shipped so far.
func (b *queryIngestBolt) handleBackfillChunk(t *topology.Tuple, bc *BackfillChunk) {
	b.c.registerTenant(bc.Tenant)
	b.c.appendBackfillResult(bc.QueryHash, bc.SubscriptionID, bc.BackfillID, bc.Chunk, bc.Entries)
	r := b.c.maps.at(bc.Epoch)
	if r == nil {
		return
	}
	row := r.m.Row(bc.QueryHash)
	slot := r.ownedSlot(row)
	if slot < 0 {
		return
	}
	wp := r.m.WritePartitions
	slices := make([][]ResultEntry, wp)
	for _, e := range bc.Entries {
		w := int(document.HashKey(e.Key) % uint64(wp))
		slices[w] = append(slices[w], e)
	}
	for w := 0; w < wp; w++ {
		payload := &backfillChunkPayload{
			tenant: bc.Tenant, sid: bc.SubscriptionID, bfid: bc.BackfillID,
			hash: bc.QueryHash, chunk: bc.Chunk, low: bc.Low, high: bc.High,
			last: bc.Last, cells: wp, entries: slices[w],
		}
		b.out.EmitDirect(b.c.layout.task(slot, w), t, topology.Values{kindBackfillChunk, QueryIDString(bc.QueryHash), payload})
	}
}

// fanToRow delivers a control message to every matching cell of the query's
// partition row under the given routing, when this process owns the row.
func (b *queryIngestBolt) fanToRow(r *routing, t *topology.Tuple, kind string, hash uint64, payload any) {
	slot := r.ownedSlot(r.m.Row(hash))
	if slot < 0 {
		return
	}
	for w := 0; w < r.m.WritePartitions; w++ {
		b.out.EmitDirect(b.c.layout.task(slot, w), t, topology.Values{kind, QueryIDString(hash), payload})
	}
}

// handleResync re-broadcasts the registry's active subscriptions to a
// recovering task (§5.1: a restarted matching node rebuilds its query set
// from the cluster's subscription registry). For a matching node, each
// query of the cell's partition row is re-delivered with its write
// partition's slice of the bootstrap result and the TTL that remains; for
// sorting and extension stages the bootstraps are re-emitted on the
// bootstrap stream, where fields grouping routes every query to its owner
// task — healthy owners treat the repeat subscribe as idempotent.
func (b *queryIngestBolt) handleResync(t *topology.Tuple, r *ResyncRequest) {
	b.c.resyncHandled(r.Component, r.TaskID)
	entries := b.c.snapshotSubscriptions()
	if r.Component == "match" {
		slot, col := b.c.layout.cell(r.TaskID)
		// Resync under every installed epoch: mid-migration a cell can hold
		// installs from both the current and the previous map, and a restart
		// loses both. Rows already covered under cur are skipped under prev.
		cur, prev := b.c.maps.both()
		// Row indexes only identify the same query set under the same QP
		// count, so the repeat guard keys on both.
		type rowID struct{ row, qp int }
		resynced := map[rowID]bool{}
		for _, rt := range []*routing{cur, prev} {
			if rt == nil || col >= rt.m.WritePartitions {
				continue // idle column under this map's dimensions
			}
			row := -1
			for _, rs := range rt.owned {
				if rs.slot == slot {
					row = rs.row
					break
				}
			}
			if row < 0 || resynced[rowID{row, rt.m.QueryPartitions}] {
				continue
			}
			resynced[rowID{row, rt.m.QueryPartitions}] = true
			for _, e := range entries {
				if rt.m.Row(e.hash) != row {
					continue
				}
				var slice []ResultEntry
				for _, re := range e.req.Result {
					if int(document.HashKey(re.Key)%uint64(rt.m.WritePartitions)) == col {
						slice = append(slice, re)
					}
				}
				payload := &subscribePayload{
					req: e.req, q: e.q, hash: e.hash, slack: e.req.Slack,
					ttl: time.Until(e.deadline), entries: slice,
				}
				b.out.EmitDirect(r.TaskID, t, topology.Values{kindSubscribe, QueryIDString(e.hash), payload})
			}
			// The restarted cell lost its backfill window state (buffered
			// chunks, watermarks seen), so certificates it owed will never
			// arrive: tell the application servers of every in-flight backfill
			// on this row to restart against the freshly resynced query state.
			b.c.backfillRestartCerts(row, rt.m.QueryPartitions)
		}
		return
	}
	for _, e := range entries {
		if !e.q.Ordered() && len(b.c.opts.ExtraStages) == 0 {
			continue
		}
		payload := &subscribePayload{
			req: e.req, q: e.q, hash: e.hash, slack: e.req.Slack,
			ttl: time.Until(e.deadline), entries: e.req.Result,
		}
		b.out.EmitStream(streamBootstrap, t, topology.Values{kindSubscribe, QueryIDString(e.hash), payload})
	}
}

func (b *queryIngestBolt) Cleanup() {}

// TenantQueryHash derives the partitioning hash from the tenant and the
// canonical query identity, so distinct subscriptions to the same query are
// always routed to the same partition (§5.1) while tenants stay isolated.
// Application servers remember this hash for the lifetime of a subscription
// and attach it to cancellation and TTL-extension requests.
func TenantQueryHash(tenant string, q *query.Query) uint64 {
	return q.Hash() ^ document.HashKey("tenant:"+tenant)
}

// maxWriteBatch bounds how many after-images a single batch tuple carries.
// Batches flush at this cap or when the bolt's input queue drains (Idle),
// whichever comes first, so latency under light load stays at one queue
// drain rather than a timer tick.
const maxWriteBatch = 64

// writeColumnBatch accumulates the after-images destined for one write
// partition column together with their anchor tuples (unacked until flush).
type writeColumnBatch struct {
	events  []*WriteEvent
	anchors []*topology.Tuple
}

// writeIngestBolt is a stateless write ingestion node (§5.1): it parses
// after-images and hashes the primary key to a write partition. Instead of
// one tuple per write per query partition, writes are buffered per column
// and delivered as a single batch tuple per (query partition, column) pair,
// amortizing routing and channel sends across the batch. Anchors are acked
// only after their batch is emitted, so reliability semantics are unchanged:
// a failed batch fails every write in it.
type writeIngestBolt struct {
	c    *Cluster
	out  topology.Collector
	cols []writeColumnBatch // one per write partition
}

func newWriteIngestBolt(c *Cluster) topology.Bolt { return &writeIngestBolt{c: c} }

func (b *writeIngestBolt) Prepare(ctx *topology.BoltContext, out topology.Collector) error {
	b.out = out
	// One batch per local grid column (the fixed column capacity, not the
	// current map's write-partition count, which changes across resizes).
	b.cols = make([]writeColumnBatch, b.c.layout.cols)
	return nil
}

func (b *writeIngestBolt) Execute(t *topology.Tuple) {
	raw, _ := t.Get("payload")
	data, ok := raw.([]byte)
	if !ok {
		b.out.Ack(t)
		return
	}
	env, err := DecodeEnvelope(data)
	if err != nil {
		b.out.Ack(t)
		return
	}
	if env.Kind == KindBackfillMark {
		b.handleMark(t, env.BackfillMark)
		return
	}
	if env.Kind != KindWrite {
		b.out.Ack(t)
		return
	}
	img, err := b.c.opts.Engine.DecodeImage(env.Write.Image)
	if err != nil {
		b.out.Ack(t)
		return
	}
	b.c.registerTenant(env.Write.Tenant)
	// Writes route ONLY by the current map: during a query-partition resize
	// the old rows keep receiving every write (all owned rows get the
	// column's batches), and during a write-partition resize the migration
	// backfill re-reads anything that raced the column flip, so the window
	// between enqueue here and flush never loses a notification.
	cur := b.c.maps.current()
	if cur == nil {
		b.out.Ack(t)
		return // grid node awaiting its first partition map
	}
	b.c.mWrites.Inc()
	we := &WriteEvent{
		Tenant: env.Write.Tenant,
		Image:  img,
		SentNs: env.Write.SentNs,
		//invalidb:allow coarseclock deliberate stage-boundary stamp: per-write wall time feeds the latency breakdown (DESIGN.md §8)
		IngestNs: time.Now().UnixNano(),
	}
	w := int(document.HashKey(img.Key) % uint64(cur.m.WritePartitions))
	if w >= len(b.cols) {
		b.out.Ack(t)
		return // map wider than this node's column capacity; not our write
	}
	col := &b.cols[w]
	col.events = append(col.events, we)
	col.anchors = append(col.anchors, t)
	if len(col.events) >= maxWriteBatch {
		b.flush(w)
	}
}

// handleMark is the watermark near-barrier (DESIGN.md §12): every column
// batch buffered by THIS ingest node is flushed before the mark is broadcast
// to every matching cell, so on each of this node's output channels the mark
// trails every write it was published behind. With several shuffle-grouped
// ingest nodes the barrier is approximate — a write routed through a slower
// sibling can still arrive after the mark — which is why chunk installation
// additionally carries the never-regress version guard and a retention
// replay; the mark closes the common case, the guards close the residue.
func (b *writeIngestBolt) handleMark(t *topology.Tuple, m *BackfillMark) {
	for w := range b.cols {
		if len(b.cols[w].events) > 0 {
			b.flush(w)
		}
	}
	// Marks go to EVERY local cell, owned or idle: write ingestion cannot
	// know which rows run backfills, and a cell that just gained a row in a
	// resize needs the watermark stream from the first mark on.
	vals := topology.Values{kindBackfillMark, "", m}
	for task := 0; task < b.c.layout.tasks(); task++ {
		b.out.EmitDirect(task, t, vals)
	}
	b.out.Ack(t)
}

// Idle flushes every pending column batch once the input queue drains; under
// load batches fill to maxWriteBatch before the queue ever empties.
func (b *writeIngestBolt) Idle() {
	for w := range b.cols {
		if len(b.cols[w].events) > 0 {
			b.flush(w)
		}
	}
}

func (b *writeIngestBolt) flush(w int) {
	col := &b.cols[w]
	// Deliver to column w of every row this process currently owns. A map
	// installed between enqueue and flush may have reassigned rows; the new
	// owner's migration backfill covers the gap, so flushing under the map
	// of the moment is safe (and the only option — the old tasks may not
	// exist here anymore).
	cur := b.c.maps.current()
	if cur == nil || len(cur.owned) == 0 {
		for _, a := range col.anchors {
			b.out.Ack(a)
		}
		col.events = col.events[:0]
		col.anchors = col.anchors[:0]
		return
	}
	if len(col.events) == 1 {
		// Single-event fast path: a batch wrapper would cost two extra
		// allocations per write under light (latency-sensitive) load, where
		// batches rarely grow past one.
		t := col.anchors[0]
		vals := topology.Values{kindWrite, "", col.events[0]}
		for _, rs := range cur.owned {
			b.out.EmitDirect(b.c.layout.task(rs.slot, w), t, vals)
		}
		b.out.Ack(t)
		col.events = col.events[:0] // nothing escaped but the event itself
		col.anchors = col.anchors[:0]
		return
	}
	batch := &writeBatch{events: col.events}
	vals := topology.Values{kindWriteBatch, "", batch}
	for _, rs := range cur.owned {
		b.out.EmitDirectBatch(b.c.layout.task(rs.slot, w), col.anchors, vals)
	}
	for _, a := range col.anchors {
		b.out.Ack(a)
	}
	// The batch escapes into downstream tuples, so start a fresh events slice;
	// the anchors slice stays local and can be reused.
	col.events = nil
	col.anchors = col.anchors[:0]
}

func (b *writeIngestBolt) Cleanup() {}
