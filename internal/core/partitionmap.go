package core

import (
	"fmt"
	"sync"
)

// This file is the control-plane half of the multi-process matching grid
// (DESIGN.md §13). A coordinator process owns the assignment of global grid
// rows (query partitions) to server processes and publishes it as a
// PartitionMap on the retained control topic; every cluster process installs
// the map and routes by it. The single-process deployment is the degenerate
// case: an identity map at epoch 0 assigning every row to the local process,
// so there is exactly one routing code path.

// RowAssignment places one global query-partition row on a node: the owning
// process (empty = the local process, single-process deployments) and the
// local slot index the row occupies inside that process's grid.
type RowAssignment struct {
	Node string `json:"node,omitempty"`
	Slot int    `json:"slot"`
}

// PartitionMap is one epoch of the grid's routing state: the grid
// dimensions and the owner of every query-partition row. Epochs are
// strictly increasing; control messages stamped with an epoch are resolved
// against the map that was current at that epoch, so a resize never
// misroutes in-flight requests.
type PartitionMap struct {
	Epoch           uint64          `json:"epoch"`
	QueryPartitions int             `json:"qp"`
	WritePartitions int             `json:"wp"`
	Rows            []RowAssignment `json:"rows"`
}

// validate enforces the structural invariants both wire decoders share: at
// least one row, one row assignment per query partition, a positive write
// partition count, and slots that are non-negative.
func (m *PartitionMap) validate() error {
	if m.QueryPartitions < 1 || m.WritePartitions < 1 {
		return fmt.Errorf("core: partition map with %d x %d grid", m.QueryPartitions, m.WritePartitions)
	}
	if len(m.Rows) != m.QueryPartitions {
		return fmt.Errorf("core: partition map with %d rows for %d query partitions", len(m.Rows), m.QueryPartitions)
	}
	for i := range m.Rows {
		if m.Rows[i].Slot < 0 {
			return fmt.Errorf("core: partition map row %d with negative slot", i)
		}
	}
	return nil
}

// Clone returns a deep copy (the Rows slice is the only reference field).
func (m *PartitionMap) Clone() *PartitionMap {
	cp := *m
	cp.Rows = append([]RowAssignment(nil), m.Rows...)
	return &cp
}

// IdentityMap is the single-process routing state: every row of a QP x WP
// grid is owned by the local process (node "") at slot = row, epoch 0.
func IdentityMap(qp, wp int) *PartitionMap {
	rows := make([]RowAssignment, qp)
	for i := range rows {
		rows[i].Slot = i
	}
	return &PartitionMap{QueryPartitions: qp, WritePartitions: wp, Rows: rows}
}

// Row returns the global query-partition row a query hash lands on under
// this map.
func (m *PartitionMap) Row(hash uint64) int {
	return int(hash % uint64(m.QueryPartitions))
}

// gridLayout is a cluster process's fixed local grid geometry: rows local
// match-task rows (slots) by cols columns, task = row*cols + col. The
// column capacity is baked at construction — deliberately: cached cell
// coordinates must survive a write-partition resize, which is exactly the
// stale-capture bug the old opts.WritePartitions-based gridCell/gridTask
// pair had. A map's WritePartitions may use any prefix of the columns;
// columns at or beyond it are simply idle.
type gridLayout struct {
	rows, cols int
}

func (l gridLayout) task(row, col int) int { return row*l.cols + col }

func (l gridLayout) cell(task int) (row, col int) { return task / l.cols, task % l.cols }

func (l gridLayout) tasks() int { return l.rows * l.cols }

// GridCell is the placement metadata a matching task receives through the
// topology's TaskMeta hook: its local row (slot) and column in the
// process-local grid. Tasks translate these to global coordinates through
// the installed partition map, never from opts.WritePartitions — the
// dimensions in the map change across resizes, the cell does not.
type GridCell struct {
	Row, Col int
}

// rowSlot pairs a global query-partition row with the local slot it
// occupies on this node.
type rowSlot struct {
	row, slot int
}

// routing is one installed PartitionMap plus the node-local projections the
// hot paths need: the slot of every row owned by this process (-1 when the
// row lives elsewhere) and the owned rows as a dense list for the
// write-ingest fan-out.
type routing struct {
	m     *PartitionMap
	slots []int     // global row -> local slot, -1 if not owned here
	owned []rowSlot // owned rows, ascending by row
}

func newRouting(m *PartitionMap, nodeID string) *routing {
	r := &routing{m: m, slots: make([]int, len(m.Rows))}
	for row := range m.Rows {
		if m.Rows[row].Node == nodeID {
			r.slots[row] = m.Rows[row].Slot
			r.owned = append(r.owned, rowSlot{row: row, slot: m.Rows[row].Slot})
		} else {
			r.slots[row] = -1
		}
	}
	return r
}

// ownedSlot returns the local slot of a global row, or -1 when another
// process owns it.
func (r *routing) ownedSlot(row int) int {
	if row < 0 || row >= len(r.slots) {
		return -1
	}
	return r.slots[row]
}

// mapState holds the cluster's current and previous routing epochs. Two
// epochs suffice: a resize completes (all migrations cut over, TTLs expire
// the leftovers) before the next begins, and requests stamped with an epoch
// older than prev fall back to cur — their installs land best-effort and
// the TTL sweep reclaims any that landed on a cell that no longer owns the
// row.
type mapState struct {
	mu   sync.RWMutex
	cur  *routing
	prev *routing
}

// install adopts a map with a higher epoch than the current one, demoting
// the current map to prev. Re-publications of the current epoch and stale
// epochs are ignored. Returns whether the map was adopted.
func (s *mapState) install(m *PartitionMap, nodeID string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cur != nil && m.Epoch <= s.cur.m.Epoch {
		return false
	}
	s.prev = s.cur
	s.cur = newRouting(m, nodeID)
	return true
}

// current returns the current routing (nil before the first map arrives —
// a grid-mode process routes nothing until the coordinator places it).
func (s *mapState) current() *routing {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.cur
}

// both returns the current and previous routing. The previous epoch keeps
// receiving writes during a migration so the old owner's cells stay live
// until the client cuts over.
func (s *mapState) both() (cur, prev *routing) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.cur, s.prev
}

// at resolves a stamped epoch to the routing that was current then: 0 (an
// unstamped legacy message) and the current epoch resolve to cur, the
// previous epoch to prev, and anything else best-effort to cur — a
// misrouted install is reclaimed by the TTL sweep, and client-side
// per-origin dedup guards absorb any duplicate notifications.
func (s *mapState) at(epoch uint64) *routing {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if epoch == 0 || s.cur == nil || epoch == s.cur.m.Epoch {
		return s.cur
	}
	if s.prev != nil && epoch == s.prev.m.Epoch {
		return s.prev
	}
	return s.cur
}
