package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"invalidb/internal/document"
	"invalidb/internal/query"
)

// --- edge shapes -----------------------------------------------------------

// TestQueryIndexArrayValuesStabMultipleIntervals pins the implicit-array
// probe semantics: an array-valued field stabs the interval tree once per
// element, so one write can be a candidate for disjoint intervals at once.
func TestQueryIndexArrayValuesStabMultipleIntervals(t *testing.T) {
	qi := newQueryIndex()
	low := mkMatchQuery(t, rangeSpec(0, 10))
	high := mkMatchQuery(t, rangeSpec(100, 110))
	far := mkMatchQuery(t, rangeSpec(1000, 1010))
	qi.add(low)
	qi.add(high)
	qi.add(far)
	we := &WriteEvent{Tenant: "t", Image: &document.AfterImage{
		Collection: "c", Key: "k", Version: 1, Op: document.OpInsert,
		Doc: document.Document{"_id": "k", "n": []any{int64(5), int64(105)}},
	}}
	cands := qi.candidates(we, compositeKey("t", "c", "k"))
	if len(cands) != 2 {
		t.Fatalf("candidates = %d, want 2 (both stabbed intervals)", len(cands))
	}
	for _, mq := range []*matchQuery{low, high} {
		if _, ok := cands[mq.hash]; !ok {
			t.Fatalf("array element missed interval %v", mq.q)
		}
		if !mq.q.Match(we.Image.Doc) {
			t.Fatalf("sanity: query %v should match the array doc", mq.q)
		}
	}
}

// TestQueryIndexUnboundedIntervalsAtClampBoundary pins the stab fix for
// written values beyond the ±1e308 endpoint clamp: unbounded intervals are
// stored with ±1e308 sentinels, and a written value outside that range (the
// largest finite float64 is ~1.8e308) must still reach them.
func TestQueryIndexUnboundedIntervalsAtClampBoundary(t *testing.T) {
	qi := newQueryIndex()
	above := mkMatchQuery(t, query.Spec{Collection: "c", Filter: map[string]any{
		"n": map[string]any{"$gte": int64(5)},
	}})
	below := mkMatchQuery(t, query.Spec{Collection: "c", Filter: map[string]any{
		"n": map[string]any{"$lte": int64(5)},
	}})
	qi.add(above)
	qi.add(below)
	ck := compositeKey("t", "c", "k")

	cases := []struct {
		v    float64
		want *matchQuery
	}{
		{math.MaxFloat64, above},  // beyond the +1e308 clamp
		{-math.MaxFloat64, below}, // beyond the -1e308 clamp
		{unbounded, above},        // exactly at the sentinel
		{-unbounded, below},
	}
	for _, c := range cases {
		we := &WriteEvent{Tenant: "t", Image: &document.AfterImage{
			Collection: "c", Key: "k", Version: 1, Op: document.OpInsert,
			Doc: document.Document{"_id": "k", "n": c.v},
		}}
		if !c.want.q.Match(we.Image.Doc) {
			t.Fatalf("sanity: %g should match %v", c.v, c.want.q)
		}
		cands := qi.candidates(we, ck)
		if _, ok := cands[c.want.hash]; !ok {
			t.Fatalf("value %g missed its unbounded interval", c.v)
		}
		if len(cands) != 1 {
			t.Fatalf("value %g: candidates = %d, want 1", c.v, len(cands))
		}
	}
}

// --- superset property over random mixed filters ---------------------------

// randomIndexableSpec produces a random filter drawn from every indexable
// family plus unindexable shapes, exercising extraction, registration and
// probing together.
func randomIndexableSpec(rng *rand.Rand, i int) query.Spec {
	f := map[string]any{}
	switch rng.Intn(7) {
	case 0: // string equality
		f["cat"] = fmt.Sprintf("cat-%d", rng.Intn(8))
	case 1: // $in over scalars
		f["cat"] = map[string]any{"$in": []any{
			fmt.Sprintf("cat-%d", rng.Intn(8)),
			int64(rng.Intn(4)),
		}}
	case 2: // numeric interval (sometimes half-bounded)
		lo := rng.Intn(100)
		switch rng.Intn(3) {
		case 0:
			f["n"] = map[string]any{"$gte": int64(lo)}
		case 1:
			f["n"] = map[string]any{"$lt": int64(lo + 10)}
		default:
			f["n"] = map[string]any{"$gte": int64(lo), "$lt": int64(lo + 10)}
		}
	case 3: // geo circle
		f["loc"] = map[string]any{"$geoWithin": map[string]any{
			"$centerSphere": []any{
				[]any{rng.Float64()*4 - 2, rng.Float64()*4 - 2},
				0.0005 + rng.Float64()*0.002,
			},
		}}
	case 4: // geo box
		lng, lat := rng.Float64()*4-2, rng.Float64()*4-2
		f["loc"] = map[string]any{"$geoWithin": map[string]any{
			"$box": []any{[]any{lng, lat}, []any{lng + 0.3, lat + 0.3}},
		}}
	case 5: // text terms
		terms := fmt.Sprintf("topic%d", rng.Intn(6))
		if rng.Intn(2) == 0 {
			terms += fmt.Sprintf(" topic%d", rng.Intn(6))
		}
		f["$text"] = map[string]any{"$search": terms}
	default: // unindexable: must land in the unindexed set
		f["cat"] = map[string]any{"$ne": fmt.Sprintf("cat-%d", rng.Intn(8))}
	}
	// A distinct marker keeps every query's hash unique without adding a
	// more selective constraint ($exists is unindexable).
	f[fmt.Sprintf("marker%d", i)] = map[string]any{"$exists": false}
	return query.Spec{Collection: "c", Filter: f}
}

func randomProbeDoc(rng *rand.Rand) document.Document {
	d := document.Document{"_id": "k"}
	if rng.Intn(4) > 0 {
		if rng.Intn(5) == 0 { // array-valued field
			d["cat"] = []any{
				fmt.Sprintf("cat-%d", rng.Intn(8)),
				fmt.Sprintf("cat-%d", rng.Intn(8)),
			}
		} else {
			d["cat"] = fmt.Sprintf("cat-%d", rng.Intn(8))
		}
	}
	if rng.Intn(4) > 0 {
		switch rng.Intn(4) {
		case 0:
			d["n"] = []any{int64(rng.Intn(120) - 10), float64(rng.Intn(120) - 10)}
		case 1:
			d["n"] = float64(rng.Intn(1200))/10 - 10
		default:
			d["n"] = int64(rng.Intn(120) - 10)
		}
	}
	if rng.Intn(4) > 0 {
		d["loc"] = []any{rng.Float64()*4 - 2, rng.Float64()*4 - 2}
	}
	if rng.Intn(4) > 0 {
		d["desc"] = fmt.Sprintf("some topic%d and Topic%d text",
			rng.Intn(6), rng.Intn(6))
	}
	return d
}

// TestGeneralizedIndexAgreesWithFullScan is the correctness property of the
// whole generalized index: for random filters across every index family and
// random documents, the candidate set must contain every query the document
// matches (a superset is fine, a miss is a bug).
func TestGeneralizedIndexAgreesWithFullScan(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for round := 0; round < 25; round++ {
		qi := newQueryIndex()
		var all []*matchQuery
		for i := 0; i < 60; i++ {
			mq := mkMatchQuery(t, randomIndexableSpec(rng, i))
			all = append(all, mq)
			qi.add(mq)
		}
		for probe := 0; probe < 60; probe++ {
			doc := randomProbeDoc(rng)
			we := &WriteEvent{Tenant: "t", Image: &document.AfterImage{
				Collection: "c", Key: "k", Version: 1, Op: document.OpInsert,
				Doc: doc,
			}}
			cands := qi.candidates(we, compositeKey("t", "c", "k"))
			for _, mq := range all {
				if mq.q.Match(doc) {
					if _, ok := cands[mq.hash]; !ok {
						t.Fatalf("round %d probe %d: matching query %v missing from candidates for doc %v",
							round, probe, mq.q, doc)
					}
				}
			}
		}
		// Removal must leave no stale postings behind.
		for _, mq := range all {
			qi.remove(mq)
		}
		if qi.registered() != 0 || len(qi.unindexed) != 0 || len(qi.buckets) != 0 {
			t.Fatalf("round %d: index not empty after removing every query", round)
		}
	}
}

// --- equality/geo/text family units ---------------------------------------

func TestQueryIndexEqualityFamily(t *testing.T) {
	qi := newQueryIndex()
	books := mkMatchQuery(t, query.Spec{Collection: "c", Filter: map[string]any{"cat": "books"}})
	games := mkMatchQuery(t, query.Spec{Collection: "c", Filter: map[string]any{"cat": "games"}})
	three := mkMatchQuery(t, query.Spec{Collection: "c", Filter: map[string]any{"cat": int64(3)}})
	qi.add(books)
	qi.add(games)
	qi.add(three)
	ck := compositeKey("t", "c", "k")

	mk := func(v any) *WriteEvent {
		return &WriteEvent{Tenant: "t", Image: &document.AfterImage{
			Collection: "c", Key: "k", Version: 1, Op: document.OpInsert,
			Doc: document.Document{"_id": "k", "cat": v},
		}}
	}
	cands := qi.candidates(mk("books"), ck)
	if len(cands) != 1 {
		t.Fatalf("candidates = %d, want only the matching equality", len(cands))
	}
	if _, ok := cands[books.hash]; !ok {
		t.Fatal("wrong equality candidate")
	}
	// int64 3 and float64 3.0 collide on the same hash key, as Compare
	// equates them.
	if cands := qi.candidates(mk(float64(3)), ck); len(cands) != 1 {
		t.Fatalf("float/int equality candidates = %d, want 1", len(cands))
	}
	// An array-valued field probes per element.
	if cands := qi.candidates(mk([]any{"x", "games"}), ck); len(cands) != 1 {
		t.Fatalf("array equality candidates = %d, want 1", len(cands))
	}
	if cands := qi.candidates(mk("nothing"), ck); len(cands) != 0 {
		t.Fatalf("non-matching value produced %d candidates", len(cands))
	}
}

func TestQueryIndexGeoFamily(t *testing.T) {
	qi := newQueryIndex()
	near := mkMatchQuery(t, query.Spec{Collection: "c", Filter: map[string]any{
		"loc": map[string]any{"$geoWithin": map[string]any{
			"$centerSphere": []any{[]any{10.0, 20.0}, 0.001},
		}},
	}})
	farAway := mkMatchQuery(t, query.Spec{Collection: "c", Filter: map[string]any{
		"loc": map[string]any{"$geoWithin": map[string]any{
			"$centerSphere": []any{[]any{-100.0, -40.0}, 0.001},
		}},
	}})
	qi.add(near)
	qi.add(farAway)
	if qi.registered() != 2 || len(qi.unindexed) != 0 {
		t.Fatalf("geo queries not indexed: %d registered, %d unindexed",
			qi.registered(), len(qi.unindexed))
	}
	ck := compositeKey("t", "c", "k")
	we := &WriteEvent{Tenant: "t", Image: &document.AfterImage{
		Collection: "c", Key: "k", Version: 1, Op: document.OpInsert,
		Doc: document.Document{"_id": "k", "loc": []any{10.0, 20.0}},
	}}
	cands := qi.candidates(we, ck)
	if _, ok := cands[near.hash]; !ok {
		t.Fatal("point inside the shape missed its geo query")
	}
	if _, ok := cands[farAway.hash]; ok {
		t.Fatal("distant geo query not pruned")
	}
	// GeoJSON-point form of the written field probes identically.
	we.Image.Doc["loc"] = map[string]any{"type": "Point", "coordinates": []any{10.0, 20.0}}
	if cands := qi.candidates(we, ck); len(cands) != 1 {
		t.Fatalf("GeoJSON probe candidates = %d, want 1", len(cands))
	}
	// A worldwide shape exceeds the cell cap and degrades to unindexed.
	world := mkMatchQuery(t, query.Spec{Collection: "c", Filter: map[string]any{
		"loc": map[string]any{"$geoWithin": map[string]any{
			"$box": []any{[]any{-179.0, -89.0}, []any{179.0, 89.0}},
		}},
	}})
	qi.add(world)
	if _, ok := qi.unindexed[world.hash]; !ok {
		t.Fatal("over-cap geo shape should fall back to unindexed")
	}
}

func TestQueryIndexTextFamily(t *testing.T) {
	qi := newQueryIndex()
	coffee := mkMatchQuery(t, query.Spec{Collection: "c", Filter: map[string]any{
		"$text": map[string]any{"$search": "coffee espresso"},
	}})
	tea := mkMatchQuery(t, query.Spec{Collection: "c", Filter: map[string]any{
		"$text": map[string]any{"$search": "tea"},
	}})
	qi.add(coffee)
	qi.add(tea)
	if qi.registered() != 2 || len(qi.unindexed) != 0 {
		t.Fatalf("text queries not indexed: %d registered, %d unindexed",
			qi.registered(), len(qi.unindexed))
	}
	ck := compositeKey("t", "c", "k")
	mk := func(desc string) *WriteEvent {
		return &WriteEvent{Tenant: "t", Image: &document.AfterImage{
			Collection: "c", Key: "k", Version: 1, Op: document.OpInsert,
			Doc: document.Document{"_id": "k", "desc": desc},
		}}
	}
	// OR semantics: one of the two terms suffices; case-insensitive; word
	// boundaries respected.
	cands := qi.candidates(mk("fresh Espresso beans"), ck)
	if _, ok := cands[coffee.hash]; !ok {
		t.Fatal("term probe missed its query")
	}
	if _, ok := cands[tea.hash]; ok {
		t.Fatal("unrelated text query not pruned")
	}
	if !coffee.q.Match(mk("fresh Espresso beans").Image.Doc) {
		t.Fatal("sanity: $text should match")
	}
	// "teapot" contains "tea" as a substring but not as a word: the token
	// probe must not produce the candidate, and the filter would not match.
	cands = qi.candidates(mk("teapot museum"), ck)
	if _, ok := cands[tea.hash]; ok {
		t.Fatal("substring token produced a false candidate")
	}
	// Nested values are scanned like collectText does.
	we := mk("")
	we.Image.Doc["meta"] = map[string]any{"tags": []any{"loose tea", int64(4)}}
	if _, ok := qi.candidates(we, ck)[tea.hash]; !ok {
		t.Fatal("nested string value missed the token probe")
	}

	// Phrase-only text queries stay unindexed: a phrase is a substring
	// condition token postings cannot serve ("shot dog" contains "hot dog").
	phrase := mkMatchQuery(t, query.Spec{Collection: "c", Filter: map[string]any{
		"$text": map[string]any{"$search": `"hot dog"`},
	}})
	qi.add(phrase)
	if _, ok := qi.unindexed[phrase.hash]; !ok {
		t.Fatal("phrase-only query should be unindexed")
	}
	if _, ok := qi.candidates(mk("a shot dogma"), ck)[phrase.hash]; !ok {
		t.Fatal("unindexed phrase query must always be probed")
	}
}

// TestQueryIndexSelectsMostSelectiveConstraint pins the ordering contract:
// a filter carrying both an equality and an interval registers under the
// equality, so writes with a different value on that field produce no
// candidate even when the interval would be stabbed.
func TestQueryIndexSelectsMostSelectiveConstraint(t *testing.T) {
	qi := newQueryIndex()
	mq := mkMatchQuery(t, query.Spec{Collection: "c", Filter: map[string]any{
		"cat": "books",
		"n":   map[string]any{"$gte": int64(0), "$lt": int64(100)},
	}})
	qi.add(mq)
	ck := compositeKey("t", "c", "k")
	we := &WriteEvent{Tenant: "t", Image: &document.AfterImage{
		Collection: "c", Key: "k", Version: 1, Op: document.OpInsert,
		Doc: document.Document{"_id": "k", "cat": "games", "n": int64(50)},
	}}
	if cands := qi.candidates(we, ck); len(cands) != 0 {
		t.Fatalf("equality-pruned write produced %d candidates", len(cands))
	}
	we.Image.Doc["cat"] = "books"
	if cands := qi.candidates(we, ck); len(cands) != 1 {
		t.Fatalf("matching equality produced %d candidates, want 1", len(cands))
	}
}

// --- allocation pin and benchmarks -----------------------------------------

func probeFixtureQueries(t testing.TB, qi *queryIndex, n int) []*matchQuery {
	var all []*matchQuery
	add := func(spec query.Spec) {
		q, err := query.Compile(spec)
		if err != nil {
			t.Fatal(err)
		}
		mq := &matchQuery{
			tenant: "t", q: q, hash: TenantQueryHash("t", q),
			tracked: map[string]uint64{},
		}
		qi.add(mq)
		all = append(all, mq)
	}
	for i := 0; i < n; i++ {
		switch i % 4 {
		case 0:
			add(rangeSpec(i*10, i*10+10))
		case 1:
			add(query.Spec{Collection: "c", Filter: map[string]any{
				"cat": fmt.Sprintf("cat-%d", i),
			}})
		case 2:
			add(query.Spec{Collection: "c", Filter: map[string]any{
				"loc": map[string]any{"$geoWithin": map[string]any{
					"$centerSphere": []any{
						[]any{float64(i%360) - 180, float64(i%170)/2 - 42},
						0.0005,
					},
				}},
			}})
		default:
			add(query.Spec{Collection: "c", Filter: map[string]any{
				"$text": map[string]any{"$search": fmt.Sprintf("topic%d extra%d", i, i)},
			}})
		}
	}
	return all
}

func probeFixtureEvent(n int64) *WriteEvent {
	return &WriteEvent{Tenant: "t", Image: &document.AfterImage{
		Collection: "c", Key: "k", Version: 1, Op: document.OpInsert,
		Doc: document.Document{
			"_id":  "k",
			"n":    n,
			"cat":  "cat-777",
			"loc":  []any{12.345, 45.678},
			"desc": "Some Topic42 description with filler words",
		},
	}}
}

// TestCandidateProbeNoAllocs pins the whole generalized probe — interval,
// equality, geo and text families together — at zero allocations per write
// once the scratch map and token buffer reached steady state.
func TestCandidateProbeNoAllocs(t *testing.T) {
	qi := newQueryIndex()
	probeFixtureQueries(t, qi, 1000)
	we := probeFixtureEvent(237)
	ck := compositeKey("t", "c", "k")
	scratch := map[uint64]*matchQuery{}
	// Warm: grows the scratch map, the token buffer, and triggers the lazy
	// interval-tree rebuild.
	for i := 0; i < 64; i++ {
		clear(scratch)
		qi.candidatesInto(we, ck, scratch)
	}
	if n := testing.AllocsPerRun(2000, func() {
		clear(scratch)
		qi.candidatesInto(we, ck, scratch)
	}); n != 0 {
		t.Fatalf("candidate probe allocates %.2f/op, want 0", n)
	}
}

// BenchmarkCandidateProbe measures the per-write candidate probe against
// 10k standing queries for each index family and a mixed population
// (bench-smoke tracks it alongside the fan-out and wire benchmarks).
func BenchmarkCandidateProbe(b *testing.B) {
	families := []struct {
		name string
		spec func(i int) query.Spec
	}{
		{"interval", func(i int) query.Spec { return rangeSpec(i*10, i*10+10) }},
		{"equality", func(i int) query.Spec {
			return query.Spec{Collection: "c", Filter: map[string]any{
				"cat": fmt.Sprintf("cat-%d", i),
			}}
		}},
		{"geo", func(i int) query.Spec {
			return query.Spec{Collection: "c", Filter: map[string]any{
				"loc": map[string]any{"$geoWithin": map[string]any{
					"$centerSphere": []any{
						[]any{float64(i%360) - 180, float64(i%170)/2 - 42},
						0.0005,
					},
				}},
			}}
		}},
		{"text", func(i int) query.Spec {
			return query.Spec{Collection: "c", Filter: map[string]any{
				"$text": map[string]any{"$search": fmt.Sprintf("topic%d", i)},
			}}
		}},
	}
	const queries = 10_000
	we := probeFixtureEvent(math.MaxInt32)
	ck := compositeKey("t", "c", "k")

	run := func(b *testing.B, qi *queryIndex) {
		scratch := map[uint64]*matchQuery{}
		clear(scratch)
		qi.candidatesInto(we, ck, scratch) // trigger lazy rebuilds outside the loop
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			clear(scratch)
			qi.candidatesInto(we, ck, scratch)
		}
	}

	for _, fam := range families {
		b.Run(fam.name, func(b *testing.B) {
			qi := newQueryIndex()
			for i := 0; i < queries; i++ {
				q := query.MustCompile(fam.spec(i))
				qi.add(&matchQuery{
					tenant: "t", q: q, hash: TenantQueryHash("t", q),
					tracked: map[string]uint64{},
				})
			}
			run(b, qi)
		})
	}
	b.Run("mixed", func(b *testing.B) {
		qi := newQueryIndex()
		probeFixtureQueries(b, qi, queries)
		run(b, qi)
	})
}
