package core

import (
	"fmt"
	"testing"
	"time"

	"invalidb/internal/eventlayer"
	"invalidb/internal/query"
	"invalidb/internal/topology"
)

// newMatchHarness builds a matchBolt wired to a throwaway cluster whose
// topology is never started, so handler methods can be driven directly.
func newMatchHarness(t *testing.T, opts Options) *matchBolt {
	t.Helper()
	bus := eventlayer.NewMemBus(eventlayer.MemBusOptions{})
	cluster, err := NewCluster(bus, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = bus.Close() })
	bolt := newMatchBolt(cluster).(*matchBolt)
	if err := bolt.Prepare(&topology.BoltContext{TaskID: 0}, nopCollector{}); err != nil {
		t.Fatal(err)
	}
	return bolt
}

func subscribeFor(b *matchBolt, q *query.Query, sid string, ttl time.Duration) {
	b.handleSubscribe(nil, &subscribePayload{
		req:  &SubscribeRequest{Tenant: "t", SubscriptionID: sid},
		q:    q,
		hash: TenantQueryHash("t", q),
		ttl:  ttl,
	})
}

// TestHandleTickExpiresManyInOneTick pins the map-deletion-during-range
// semantics of handleTick: multiple subscriptions of multiple queries lapse
// within a single tick, and all of them — but only them — are expired, with
// the query index cleaned up alongside.
func TestHandleTickExpiresManyInOneTick(t *testing.T) {
	b := newMatchHarness(t, Options{EnableQueryIndex: true})
	for i := 0; i < 5; i++ {
		q := query.MustCompile(rangeSpec(i*10, i*10+10))
		ttl := 10 * time.Millisecond
		if i == 4 {
			ttl = time.Hour // the survivor
		}
		for s := 0; s < 3; s++ {
			subscribeFor(b, q, fmt.Sprintf("s%d-%d", i, s), ttl)
		}
	}
	if len(b.queries) != 5 {
		t.Fatalf("registered %d queries, want 5", len(b.queries))
	}
	b.handleTick(time.Now().Add(30 * time.Minute))
	if len(b.queries) != 1 {
		t.Fatalf("%d queries survive the tick, want 1", len(b.queries))
	}
	for _, mq := range b.queries {
		if len(mq.subs) != 3 {
			t.Fatalf("survivor holds %d subscriptions, want 3", len(mq.subs))
		}
	}
	// The index must have forgotten the expired queries: exactly one
	// registration remains.
	remaining := b.qindex.registered()
	if remaining != 1 || len(b.qindex.unindexed) != 0 {
		t.Fatalf("index still holds %d registrations / %d unindexed after expiry",
			remaining, len(b.qindex.unindexed))
	}
}

// TestQueryIndexRemoveLeavesOtherTrackersIntact is the regression test for
// queryIndex.remove: deregistering one query must drop exactly its own
// tracker entries, even when the node tracks many keys on behalf of other
// queries (the former implementation scanned — and could only be validated
// against — every tracker on the node).
func TestQueryIndexRemoveLeavesOtherTrackersIntact(t *testing.T) {
	qi := newQueryIndex()
	target := mkMatchQuery(t, rangeSpec(0, 10))
	qi.add(target)
	targetKeys := []string{compositeKey("t", "c", "a"), compositeKey("t", "c", "b")}
	for _, ck := range targetKeys {
		qi.track(ck, target)
	}
	var others []*matchQuery
	for i := 0; i < 20; i++ {
		spec := query.Spec{Collection: "c", Filter: map[string]any{
			"n":   map[string]any{"$gte": int64(0), "$lt": int64(10)},
			"tag": fmt.Sprintf("q%d", i), // distinct query identity
		}}
		mq := mkMatchQuery(t, spec)
		others = append(others, mq)
		qi.add(mq)
		for j := 0; j < 10; j++ {
			qi.track(compositeKey("t", "c", fmt.Sprintf("k%d-%d", i, j)), mq)
		}
	}
	qi.remove(target)
	if target.trackedCK != nil {
		t.Fatal("removed query keeps its tracked-key set")
	}
	for _, ck := range targetKeys {
		if _, ok := qi.trackers[ck]; ok {
			t.Fatalf("tracker %q survives the removal of its only query", ck)
		}
	}
	if len(qi.trackers) != 20*10 {
		t.Fatalf("%d trackers remain, want %d", len(qi.trackers), 20*10)
	}
	// Every other query is still forced into the candidate set for a key it
	// tracks, even with the write's value outside its interval.
	ck := compositeKey("t", "c", "k7-3")
	cands := qi.candidates(writeEvent("k7-3", 5000), ck)
	if _, ok := cands[others[7].hash]; !ok {
		t.Fatal("unrelated query lost its tracker entry")
	}
	if _, ok := cands[target.hash]; ok {
		t.Fatal("removed query still probed")
	}
}

