package core

import (
	"testing"
	"time"

	"invalidb/internal/document"
	"invalidb/internal/query"
)

// allocSink keeps interner lookups from being optimized away.
var allocSink string

// TestKeyInternerNoAllocs pins the interner's contract: the first sight of a
// (tenant, collection, key) triple pays one intern allocation, every later
// lookup is allocation-free.
func TestKeyInternerNoAllocs(t *testing.T) {
	ki := newKeyInterner()
	ki.key("tenant-a", "items", "user:12345") // one-time intern allocation
	if n := testing.AllocsPerRun(1000, func() {
		allocSink = ki.key("tenant-a", "items", "user:12345")
	}); n != 0 {
		t.Fatalf("interned key lookup costs %.2f allocs/op, want 0", n)
	}
}

// TestHandleWriteFilteredNoAllocs pins the steady-state cost of the two
// write paths the per-node throughput budget is spent on:
//
//   - a write no registered query could match (the query index prunes every
//     candidate before a single filter evaluation) completes with zero
//     allocations — this covers the //invalidb:hotpath chain handleWrite →
//     keyInterner.key → candidatesInto;
//   - a stale replay (version not newer than the staleness table's) is
//     dropped with zero allocations.
//
// Matching writes allocate by design: they emit a notification. The emit
// path's budget is pinned by BenchmarkFanOutRouting (make bench-smoke).
func TestHandleWriteFilteredNoAllocs(t *testing.T) {
	b := newMatchHarness(t, Options{EnableQueryIndex: true})
	// One indexed query on collection "c"; the measured writes target
	// collection "d", so the index probe never reaches a filter.
	subscribeFor(b, query.MustCompile(rangeSpec(0, 10)), "s1", 1000*time.Hour)

	we := &WriteEvent{Tenant: "t", Image: &document.AfterImage{
		Collection: "d", Key: "k", Version: 1, Op: document.OpInsert,
		Doc: document.Document{"_id": "k", "n": int64(50)},
	}}
	// Warm up past the measured iteration count so the retention ring, the
	// staleness maps, the interner and the candidate scratch map reach their
	// steady-state capacity.
	for i := 0; i < 4096; i++ {
		we.Image.Version++
		b.handleWrite(nil, we)
	}
	// Prune retained images so the measured pushes reuse ring capacity; the
	// tick also evicts the interned key, so re-warm briefly after it.
	b.handleTick(b.now.Add(b.c.opts.RetentionTime + time.Minute))
	for i := 0; i < 16; i++ {
		we.Image.Version++
		b.handleWrite(nil, we)
	}

	if n := testing.AllocsPerRun(2000, func() {
		we.Image.Version++
		b.handleWrite(nil, we)
	}); n != 0 {
		t.Fatalf("index-filtered write allocates %.2f/op, want 0", n)
	}

	if n := testing.AllocsPerRun(2000, func() {
		b.handleWrite(nil, we) // version unchanged: staleness dedup path
	}); n != 0 {
		t.Fatalf("stale-replay write allocates %.2f/op, want 0", n)
	}
}
