package core

import (
	"time"

	"invalidb/internal/query"
	"invalidb/internal/topology"
)

// This file is the matching-grid half of the watermark-certified backfill
// protocol (DESIGN.md §12). The application server reads the store in chunks,
// bracketing every chunk read with a low and a high watermark drawn from the
// storage sequence allocator; the high mark travels the writes topic behind
// every write the chunk could have raced. A matching cell holds a chunk until
// it has observed the chunk's high watermark — at which point every in-window
// write has been applied to the cell's trackers — then installs the chunk
// under the never-regress rule (an in-window delta supersedes the chunk's
// stale row) and publishes a certificate. The application server admits the
// subscription once every chunk holds certificates from all cells of the row:
// the assembled result is equivalent to a snapshot taken at some point inside
// the backfill window, despite full concurrent write load.

// backfillChunkPayload is one write partition's slice of a BackfillChunk,
// fanned by query ingestion to every cell of the query's row. Cells with an
// empty slice still receive (and certify) the chunk: the certificate conveys
// "my partition's in-window writes are folded in", which holds vacuously but
// must still be attested so the application server can count Cells distinct
// certificates.
type backfillChunkPayload struct {
	tenant string
	sid    string
	bfid   string
	hash   uint64
	chunk  int
	low    uint64
	high   uint64
	last   bool
	// cells is the write-partition count of the map the chunk was sliced
	// under: the certificate quorum the application server must collect.
	// Carried in the payload — not read from cluster options at certify
	// time — so a write-partition resize mid-backfill cannot desync the
	// quorum between slicing and certification.
	cells   int
	entries []ResultEntry
}

// backfillPendingBudget bounds how many chunks a cell buffers while waiting
// for their high watermarks. Overflowing chunks are reconciled immediately:
// per-key convergence is preserved by the never-regress install and the
// version-guarded live stream (a racing write supersedes the early-installed
// row when it arrives), only the cut certification weakens to eventual for
// that chunk. The budget is the fixed in-flight memory the protocol promises.
const backfillPendingBudget = 4

// cellBackfill is one in-flight backfill as seen by one matching cell: the
// highest watermark observed and the chunks still gated on theirs.
type cellBackfill struct {
	wmSeen  uint64
	pending []*backfillChunkPayload
	lastAt  time.Time
}

func (b *matchBolt) backfillState(bfid string) *cellBackfill {
	cb := b.backfills[bfid]
	if cb == nil {
		cb = &cellBackfill{}
		b.backfills[bfid] = cb
	}
	cb.lastAt = b.now
	return cb
}

// handleBackfillMark folds a watermark broadcast into the backfill's window
// state and releases every pending chunk whose high mark is now covered.
// Marks are broadcast to all cells (write ingestion cannot know which rows
// run backfills), so cells outside the query's row accumulate an empty
// cellBackfill that the tick expiry reclaims.
func (b *matchBolt) handleBackfillMark(t *topology.Tuple, m *BackfillMark) {
	cb := b.backfillState(m.BackfillID)
	if m.Seq > cb.wmSeen {
		cb.wmSeen = m.Seq
	}
	if len(cb.pending) == 0 {
		return
	}
	kept := cb.pending[:0]
	for _, p := range cb.pending {
		if p.high <= cb.wmSeen {
			b.reconcileChunk(t, p)
		} else {
			kept = append(kept, p)
		}
	}
	for i := len(kept); i < len(cb.pending); i++ {
		cb.pending[i] = nil
	}
	cb.pending = kept
}

// handleBackfillChunk reconciles the chunk immediately when its window is
// already closed (the high mark overtook the chunk on the queries topic),
// otherwise parks it until the mark arrives.
func (b *matchBolt) handleBackfillChunk(t *topology.Tuple, p *backfillChunkPayload) {
	cb := b.backfillState(p.bfid)
	if p.high <= cb.wmSeen {
		b.reconcileChunk(t, p)
		return
	}
	cb.pending = append(cb.pending, p)
	if len(cb.pending) > backfillPendingBudget {
		oldest := cb.pending[0]
		copy(cb.pending, cb.pending[1:])
		cb.pending[len(cb.pending)-1] = nil
		cb.pending = cb.pending[:len(cb.pending)-1]
		b.reconcileChunk(t, oldest)
	}
}

// reconcileChunk applies the virtual-cut rule: chunk rows are folded into the
// query's trackers under the never-regress guard — a tracked version newer
// than the chunk's means an in-window write already delivered fresher state,
// so the chunk row is discarded — then the retention buffer is replayed to
// close the residual race (a write that slipped past the watermark barrier
// through a different ingest node; the per-query version guard makes the
// replay idempotent). The cell then attests the cut with a certificate.
//
//invalidb:hotpath
func (b *matchBolt) reconcileChunk(t *topology.Tuple, p *backfillChunkPayload) {
	mq := b.queries[p.hash]
	if mq == nil {
		// No live query at this cell: the subscribe tuple was lost or the
		// subscription expired mid-backfill. Withhold the certificate — the
		// application server's chunk timeout resends, and a restarted cell
		// triggers a restart certificate via resync.
		return
	}
	b.c.mBackfillChunks.Inc()
	for i := range p.entries {
		e := &p.entries[i]
		if cur, ok := mq.tracked[e.Key]; ok && e.Version <= cur {
			// In-window (or replayed) write superseded this chunk row: the
			// live stream already delivered fresher state; installing the
			// stale row would regress it.
			b.c.mBackfillReconciled.Inc()
			continue
		}
		mq.tracked[e.Key] = e.Version
		if b.qindex != nil {
			//invalidb:allow hotpathalloc first-track lazily allocates the per-record tracker set, amortized across a query's matches
			b.qindex.track(b.interner.key(mq.tenant, mq.q.Collection, e.Key), mq)
		}
	}
	//invalidb:allow hotpathalloc one closure per chunk reconcile, amortized over the chunk's entries
	b.retention.each(func(r *retainedImage) {
		img := r.we.Image
		if img.Version <= p.low {
			// Pre-window: the chunk read began after this write was durable,
			// so the chunk rows already reflect it. Only in-window and later
			// images can supersede a chunk row.
			return
		}
		ck := b.interner.key(r.we.Tenant, img.Collection, img.Key)
		if img.Version < b.latest[ck] {
			return // superseded within the retention window
		}
		// Only post-low-watermark images reach here: the replay is bounded by
		// the chunk's window, never the whole retention ring. The counter is
		// the migration tests' evidence of that bound.
		b.c.mBackfillReplayed.Inc()
		b.processImage(t, mq, r.we, ck)
	})
	b.c.mBackfillCertified.Inc()
	//invalidb:allow hotpathalloc one certificate per chunk reconcile, amortized over the chunk's entries
	b.c.publishBackfillCert(&BackfillCert{
		Tenant:         p.tenant,
		SubscriptionID: p.sid,
		BackfillID:     p.bfid,
		//invalidb:allow hotpathalloc one ID string per certificate, amortized over the chunk's entries
		QueryID:        QueryIDString(p.hash),
		Chunk:          p.chunk,
		Cell:           b.cell.Col,
		Cells:          p.cells,
		Last:           p.last,
		Origin:         b.origin,
		Status:         BackfillStatusOK,
	})
}

// expireBackfills reclaims window state of backfills idle beyond twice the
// retention window: either the backfill completed (certificates delivered,
// marks stopped) or its application server is gone. Chunks still pending are
// dropped; an abandoned backfill's chunks must not be installed later, when
// their windows can no longer be related to the live stream.
func (b *matchBolt) expireBackfills(now time.Time) {
	cutoff := now.Add(-2 * b.c.opts.RetentionTime)
	for bfid, cb := range b.backfills {
		if cb.lastAt.Before(cutoff) {
			delete(b.backfills, bfid)
		}
	}
}

// publishBackfillCert serializes and publishes a chunk certificate on the
// tenant's notify topic.
func (c *Cluster) publishBackfillCert(cert *BackfillCert) {
	env := &Envelope{Kind: KindBackfillCert, BackfillCert: cert}
	data, err := env.Encode()
	if err != nil {
		return
	}
	_ = c.bus.Publish(c.topics.Notify(cert.Tenant), data)
}

// backfillRestartCerts publishes a restart certificate for every in-flight
// backfill whose query row contains a restarted matching cell. The restarted
// cell lost its watermark window state, so certificates it owed can never be
// issued; the restart certificate tells the application server to abandon the
// attempt and start a fresh backfill (new BackfillID, new cursor) against the
// resynced query state. row and qp come from the partition map the resync
// resolved against, not from cluster options — the global row count changes
// across resize epochs.
func (c *Cluster) backfillRestartCerts(row, qp int) {
	cells := c.opts.WritePartitions
	if cur := c.maps.current(); cur != nil {
		cells = cur.m.WritePartitions
	}
	c.regMu.Lock()
	var certs []*BackfillCert
	for hash, sids := range c.registry {
		if int(hash%uint64(qp)) != row {
			continue
		}
		for _, e := range sids {
			if !e.backfilling {
				continue
			}
			certs = append(certs, &BackfillCert{
				Tenant:         e.req.Tenant,
				SubscriptionID: e.req.SubscriptionID,
				BackfillID:     e.backfillID,
				QueryID:        QueryIDString(hash),
				Chunk:          -1,
				Cells:          cells,
				Status:         BackfillStatusRestart,
			})
		}
	}
	c.regMu.Unlock()
	for _, cert := range certs {
		c.publishBackfillCert(cert)
	}
}

// registerBackfill records a backfilling subscription. The entry starts with
// an empty Result that accumulates certified chunks (appendBackfillResult),
// so a resync re-installs everything delivered so far; a restarted backfill
// re-registers under a fresh BackfillID, resetting the accumulation.
func (c *Cluster) registerBackfill(req *SubscribeRequest, q *query.Query, hash uint64, ttl time.Duration, bfid string) {
	c.regMu.Lock()
	sids := c.registry[hash]
	if sids == nil {
		sids = map[string]*regEntry{}
		c.registry[hash] = sids
	}
	//invalidb:allow coarseclock control-plane TTL deadline, not on the write path
	deadline := time.Now().Add(ttl)
	sids[req.SubscriptionID] = &regEntry{
		req: req, q: q, hash: hash, deadline: deadline,
		backfillID: bfid, backfilling: true, lastChunk: -1,
	}
	c.regMu.Unlock()
}

// appendBackfillResult folds a chunk's entries into the registry entry's
// accumulated bootstrap result, so a matching-cell resync mid-backfill
// re-installs every chunk already shipped. Chunks arrive in order and
// re-sends repeat an index, so only indexes beyond the high-water chunk are
// appended — a retried chunk does not duplicate its entries.
func (c *Cluster) appendBackfillResult(hash uint64, sid, bfid string, chunk int, entries []ResultEntry) {
	c.regMu.Lock()
	if sids := c.registry[hash]; sids != nil {
		if e := sids[sid]; e != nil && e.backfillID == bfid && chunk > e.lastChunk {
			e.lastChunk = chunk
			e.req.Result = append(e.req.Result, entries...)
		}
	}
	c.regMu.Unlock()
}
