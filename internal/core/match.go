package core

import (
	"fmt"
	"time"

	"invalidb/internal/document"
	"invalidb/internal/query"
	"invalidb/internal/ratelimit"
	"invalidb/internal/topology"
)

// deltaEvent is the filtering stage's output for sorted queries: a per-record
// result change forwarded to the sorting stage (paper §5.2: the filtering
// stage is the only stage that ingests after-images; everything downstream
// receives change notifications).
type deltaEvent struct {
	Tenant  string
	QueryID string
	Type    MatchType
	Key     string
	Version uint64
	Doc     document.Document // nil for deletes
	// Stage timestamps of the originating write (see Notification); zero
	// for deltas not caused by a traced write.
	WriteNs  int64
	IngestNs int64
	MatchNs  int64
}

// matchQuery is one registered query on one matching node: the node's write
// partition of the query's result plus subscription bookkeeping.
type matchQuery struct {
	tenant  string
	q       *query.Query
	hash    uint64
	ordered bool
	slack   int
	subs    map[string]time.Time // subscription id -> TTL deadline
	tracked map[string]uint64    // key -> version of this partition's matching records
	// trackedCK mirrors tracked as composite keys when the query index is
	// enabled, so queryIndex.remove touches only this query's trackers.
	trackedCK map[string]struct{}
	seq       uint64
}

// retainedImage is one entry of the write-stream retention buffer (§5.1):
// recent after-images are kept for a bounded time and replayed against newly
// subscribed queries to close the write-query and write-subscription races.
type retainedImage struct {
	we *WriteEvent
	at time.Time
}

// retentionRing is the retention buffer as a circular queue: pushes append
// at the tail, pruning advances the head, and neither copies the surviving
// entries the way the former append-based buffer did on every tick.
type retentionRing struct {
	buf  []retainedImage
	head int // index of the oldest entry
	n    int
}

func (r *retentionRing) push(ri retainedImage) {
	if r.n == len(r.buf) {
		size := 2 * len(r.buf)
		if size == 0 {
			size = 64
		}
		grown := make([]retainedImage, size)
		for i := 0; i < r.n; i++ {
			grown[i] = r.buf[(r.head+i)%len(r.buf)]
		}
		r.buf, r.head = grown, 0
	}
	r.buf[(r.head+r.n)%len(r.buf)] = ri
	r.n++
}

// prune drops entries older than cutoff. Entries are pushed in time order,
// so pruning stops at the first survivor; dropped slots are zeroed to
// release their WriteEvents to the collector.
func (r *retentionRing) prune(cutoff time.Time) {
	for r.n > 0 && r.buf[r.head].at.Before(cutoff) {
		r.buf[r.head] = retainedImage{}
		r.head = (r.head + 1) % len(r.buf)
		r.n--
	}
}

// each visits every retained entry, oldest first.
func (r *retentionRing) each(fn func(*retainedImage)) {
	for i := 0; i < r.n; i++ {
		fn(&r.buf[(r.head+i)%len(r.buf)])
	}
}

// keyInterner builds tenant\x00collection\x00key composite keys in a reused
// buffer and interns the resulting strings, so the per-write key costs one
// allocation the first time a record is seen and none afterwards.
type keyInterner struct {
	buf  []byte
	keys map[string]string
}

func newKeyInterner() *keyInterner {
	return &keyInterner{keys: map[string]string{}}
}

//invalidb:hotpath
func (ki *keyInterner) key(tenant, collection, key string) string {
	ki.buf = append(ki.buf[:0], tenant...)
	ki.buf = append(ki.buf, 0)
	ki.buf = append(ki.buf, collection...)
	ki.buf = append(ki.buf, 0)
	ki.buf = append(ki.buf, key...)
	if s, ok := ki.keys[string(ki.buf)]; ok { // no alloc: compiler-optimized lookup
		return s
	}
	//invalidb:allow hotpathalloc interning allocates once per distinct key, never afterwards
	s := string(ki.buf)
	ki.keys[s] = s
	return s
}

// forget drops an interned key (called when the staleness table prunes it);
// the key re-interns on next use.
func (ki *keyInterner) forget(ck string) {
	delete(ki.keys, ck)
}

// matchBolt is a matching node: the grid cell at (query partition, write
// partition). It holds a subset of all queries and sees a fraction of all
// writes; every incoming after-image is matched against all of the node's
// queries (§5.1, Figure 2).
type matchBolt struct {
	c      *Cluster
	out    topology.Collector
	taskID int
	// cell is this task's LOCAL grid coordinates (slot row, column),
	// delivered as placement metadata at Prepare. The global query-partition
	// row it serves is decided by the installed partition map, never cached
	// here — caching it was the stale-capture bug a write-partition resize
	// exposed in the old opts-derived gridCell.
	cell GridCell
	// origin stamps outgoing notifications with this node instance's
	// identity ("m<task>.<incarnation>", prefixed with the node id in
	// multi-process grids) so application servers can deduplicate
	// redeliveries per emitting instance.
	origin string

	queries   map[uint64]*matchQuery
	latest    map[string]uint64 // composite key -> newest version seen
	latestAt  map[string]time.Time
	retention retentionRing
	bucket    *ratelimit.Bucket
	qindex    *queryIndex // nil unless Options.EnableQueryIndex
	// backfills holds the watermark window state of in-flight backfills
	// (chunks gated on their high mark); see backfill.go.
	backfills map[string]*cellBackfill

	// now is the node's coarse clock, advanced by tick tuples: the staleness
	// table and retention buffer only need tick-interval resolution, so the
	// hot path spends no time.Now() calls per write.
	now time.Time
	// interner builds and caches composite record keys.
	interner *keyInterner
	// cands is the reusable candidate scratch map for the query index probe.
	cands map[uint64]*matchQuery
}

func newMatchBolt(c *Cluster) topology.Bolt { return &matchBolt{c: c} }

func (b *matchBolt) Prepare(ctx *topology.BoltContext, out topology.Collector) error {
	b.out = out
	b.taskID = ctx.TaskID
	if gc, ok := ctx.Meta.(GridCell); ok {
		b.cell = gc
	} else {
		// Bolts prepared outside the cluster topology (unit tests) fall back
		// to deriving the cell from the task id and the local layout.
		row, col := b.c.layout.cell(ctx.TaskID)
		b.cell = GridCell{Row: row, Col: col}
	}
	if b.c.opts.NodeID != "" {
		// Node-qualified origin: task ids repeat across processes in a
		// multi-process grid, so the per-instance dedup identity must not.
		b.origin = fmt.Sprintf("%s:m%d.%d", b.c.opts.NodeID, ctx.TaskID, ctx.Incarnation)
	} else {
		b.origin = fmt.Sprintf("m%d.%d", ctx.TaskID, ctx.Incarnation)
	}
	b.queries = map[uint64]*matchQuery{}
	b.latest = map[string]uint64{}
	b.latestAt = map[string]time.Time{}
	b.backfills = map[string]*cellBackfill{}
	//invalidb:allow coarseclock one-time seed of the coarse clock at Prepare
	b.now = time.Now()
	b.interner = newKeyInterner()
	if cap := b.c.opts.NodeCapacity; cap > 0 {
		b.bucket = ratelimit.New(float64(cap), b.c.opts.NodeBurst)
	}
	if b.c.opts.EnableQueryIndex {
		b.qindex = newQueryIndex()
		b.cands = map[uint64]*matchQuery{}
	}
	return nil
}

//invalidb:hotpath
func (b *matchBolt) Execute(t *topology.Tuple) {
	if hook := b.c.opts.MatchHook; hook != nil {
		// The hook may panic (fault injection). It runs BEFORE the deferred
		// ack is installed: a deferred Ack would execute during panic
		// unwinding and settle the tuple as processed, whereas here the
		// supervisor fails the still-in-flight tuple so its tree replays.
		kind := "tick"
		if t.Component != "tick" {
			kindV, _ := t.Get("kind")
			kind, _ = kindV.(string)
		}
		hook(b.taskID, kind)
	}
	defer b.out.Ack(t)
	if t.Component == "tick" {
		// Tick tuples carry their emission timestamp; reusing it keeps the
		// node's coarse clock consistent without another time.Now() call.
		now, _ := t.Values[0].(time.Time)
		if now.IsZero() {
			//invalidb:allow coarseclock fallback for tick tuples without a timestamp
			now = time.Now()
		}
		//invalidb:allow hotpathalloc tick handling runs once per tick interval, not per write
		b.handleTick(now)
		return
	}
	kindV, _ := t.Get("kind")
	kind, _ := kindV.(string)
	payloadV, _ := t.Get("payload")
	switch kind {
	case kindSubscribe:
		if p, ok := payloadV.(*subscribePayload); ok {
			//invalidb:allow hotpathalloc subscription registration is control-plane; its state must be allocated
			b.handleSubscribe(t, p)
		}
	case kindCancel:
		if p, ok := payloadV.(*CancelRequest); ok {
			b.handleCancel(t, p)
		}
	case kindExtend:
		if p, ok := payloadV.(*ExtendRequest); ok {
			b.handleExtend(p)
		}
	case kindWrite:
		if p, ok := payloadV.(*WriteEvent); ok {
			b.handleWrite(t, p)
		}
	case kindWriteBatch:
		if p, ok := payloadV.(*writeBatch); ok {
			for _, we := range p.events {
				b.handleWrite(t, we)
			}
		}
	case kindBackfillChunk:
		if p, ok := payloadV.(*backfillChunkPayload); ok {
			//invalidb:allow hotpathalloc backfill state is allocated once per backfill, amortized over its chunks
			b.handleBackfillChunk(t, p)
		}
	case kindBackfillMark:
		if p, ok := payloadV.(*BackfillMark); ok {
			//invalidb:allow hotpathalloc backfill state is allocated once per backfill, amortized over its chunks
			b.handleBackfillMark(t, p)
		}
	}
}

func (b *matchBolt) Cleanup() {}

// compositeKey namespaces a record key by tenant and collection for the
// node-level staleness table. The hot path goes through the per-bolt
// interner instead; this helper remains for cold paths and tests.
func compositeKey(tenant, collection, key string) string {
	return tenant + "\x00" + collection + "\x00" + key
}

//invalidb:hotpath
func (b *matchBolt) handleWrite(t *topology.Tuple, we *WriteEvent) {
	img := we.Image
	ck := b.interner.key(we.Tenant, img.Collection, img.Key)
	// Staleness avoidance (§5.1): writes are versioned, so an after-image is
	// ignored whenever a more recent version for the same item has already
	// been received (e.g. an update arriving after the item's delete).
	if img.Version <= b.latest[ck] {
		return
	}
	b.latest[ck] = img.Version
	b.latestAt[ck] = b.now
	//invalidb:allow hotpathalloc ring growth doubles capacity, amortized O(1) per retained image
	b.retention.push(retainedImage{we: we, at: b.now})

	// The node's matching budget: evaluating one after-image against every
	// registered query costs len(queries) match-operations — unless the
	// multi-query index narrows the probe to candidates.
	b.c.mCandWrites.Inc()
	if b.qindex != nil {
		clear(b.cands)
		cands := b.qindex.candidatesInto(we, ck, b.cands)
		b.c.mCandProbed.Add(int64(len(cands)))
		if b.bucket != nil {
			b.bucket.Take(float64(len(cands) + 1))
		}
		for _, mq := range cands {
			b.processImage(t, mq, we, ck)
		}
		return
	}
	b.c.mCandProbed.Add(int64(len(b.queries)))
	if b.bucket != nil {
		cost := len(b.queries)
		if cost == 0 {
			cost = 1
		}
		b.bucket.Take(float64(cost))
	}
	for _, mq := range b.queries {
		b.processImage(t, mq, we, ck)
	}
}

// processImage derives the result change (if any) a single after-image
// causes for a single query, by comparing current against former matching
// status (§5.1). ck is the write's composite key — identical to the query's
// tracker key whenever the tenant/collection guard passes, so callers hand
// down the interned key instead of re-concatenating it per query.
//
//invalidb:hotpath
func (b *matchBolt) processImage(t *topology.Tuple, mq *matchQuery, we *WriteEvent, ck string) {
	img := we.Image
	if we.Tenant != mq.tenant || img.Collection != mq.q.Collection {
		return
	}
	if prev, tracked := mq.tracked[img.Key]; tracked && img.Version <= prev {
		return // per-query staleness during replay
	}
	b.c.mCandEvaluated.Inc()
	isMatch := img.Op != document.OpDelete && b.c.opts.Engine.Match(mq.q, img.Doc)
	if isMatch {
		b.c.mCandMatched.Inc()
	}
	_, wasTracked := mq.tracked[img.Key]
	switch {
	case isMatch && !wasTracked:
		mq.tracked[img.Key] = img.Version
		if b.qindex != nil {
			//invalidb:allow hotpathalloc first-track lazily allocates the per-record tracker set, amortized across a query's matches
			b.qindex.track(ck, mq)
		}
		//invalidb:allow hotpathalloc deltas for ordered queries must escape to the sorting stage; matches are rare relative to writes
		b.emit(t, mq, we, MatchAdd, img.Key, img.Version, img.Doc)
	case isMatch && wasTracked:
		mq.tracked[img.Key] = img.Version
		b.emit(t, mq, we, MatchChange, img.Key, img.Version, img.Doc)
	case !isMatch && wasTracked:
		delete(mq.tracked, img.Key)
		if b.qindex != nil {
			b.qindex.untrack(ck, mq)
		}
		b.emit(t, mq, we, MatchRemove, img.Key, img.Version, img.Doc)
	default:
		// Irrelevant write: filtered out, nothing flows downstream (§5.2).
	}
}

// emit sends the filtering-stage result change: directly to the event layer
// for self-maintainable (unsorted) queries, downstream to the sorting stage
// for queries with sort, limit or offset clauses. With extension stages
// configured, deltas of every query flow downstream as well (SEDA: later
// stages consume filtering-stage output, never raw after-images).
func (b *matchBolt) emit(t *topology.Tuple, mq *matchQuery, we *WriteEvent, mt MatchType, key string, ver uint64, doc document.Document) {
	b.c.mMatched.Inc()
	// Matches are rare relative to writes evaluated, so a real time.Now()
	// here (rather than the coarse tick clock) costs nothing measurable
	// and gives the breakdown its matching-stage boundary.
	//invalidb:allow coarseclock per-match stage-boundary stamp; matches are rare relative to writes
	matchNs := time.Now().UnixNano()
	if mq.ordered || len(b.c.opts.ExtraStages) > 0 {
		delta := &deltaEvent{
			Tenant:   mq.tenant,
			QueryID:  QueryIDString(mq.hash),
			Type:     mt,
			Key:      key,
			Version:  ver,
			Doc:      doc,
			WriteNs:  we.SentNs,
			IngestNs: we.IngestNs,
			MatchNs:  matchNs,
		}
		b.out.Emit(t, topology.Values{kindDelta, delta.QueryID, delta})
		if mq.ordered {
			return
		}
	}
	mq.seq++
	n := &Notification{
		Tenant:   mq.tenant,
		QueryID:  QueryIDString(mq.hash),
		Type:     mt,
		Key:      key,
		Version:  ver,
		Index:    -1,
		Seq:      mq.seq,
		Origin:   b.origin,
		WriteNs:  we.SentNs,
		IngestNs: we.IngestNs,
		MatchNs:  matchNs,
	}
	if mt != MatchRemove {
		n.Doc = mq.q.Project(doc)
	}
	b.c.publishNotification(n)
}

func (b *matchBolt) handleSubscribe(t *topology.Tuple, p *subscribePayload) {
	//invalidb:allow coarseclock control-plane TTL deadline at subscribe time
	now := time.Now()
	mq := b.queries[p.hash]
	if mq == nil {
		mq = &matchQuery{
			tenant:  p.req.Tenant,
			q:       p.q,
			hash:    p.hash,
			ordered: p.q.Ordered(),
			slack:   p.slack,
			subs:    map[string]time.Time{},
			tracked: map[string]uint64{},
		}
		b.queries[p.hash] = mq
		if b.qindex != nil {
			b.qindex.add(mq)
		}
	}
	mq.subs[p.req.SubscriptionID] = now.Add(p.ttl)
	// Install the bootstrap result partition. Entries never regress state:
	// a tracked version newer than the bootstrap's wins (the retention
	// buffer already delivered a fresher image).
	for _, e := range p.entries {
		if cur, ok := mq.tracked[e.Key]; !ok || e.Version > cur {
			mq.tracked[e.Key] = e.Version
		}
		if b.qindex != nil {
			b.qindex.track(b.interner.key(mq.tenant, mq.q.Collection, e.Key), mq)
		}
	}
	// A chunked-backfill install carries no result and needs no replay: the
	// live stream covers every write from this install onward, chunk reads
	// cover everything before their low watermark, and each chunk's
	// reconcile replays its own window. Replaying here would only burn a
	// full retention walk per install.
	if p.backfill {
		return
	}
	// Replay the retention buffer against the query to close the
	// write-query and write-subscription races (§5.1): any retained image
	// newer than the bootstrap state produces a regular result change. Only
	// each key's newest retained image is applied — the per-query tracked
	// map forgets versions when items leave the result, so replaying an
	// older image (e.g. the insert preceding a delete) would resurrect it.
	b.retention.each(func(r *retainedImage) {
		img := r.we.Image
		ck := b.interner.key(r.we.Tenant, img.Collection, img.Key)
		if img.Version < b.latest[ck] {
			return // superseded within the retention window
		}
		b.processImage(t, mq, r.we, ck)
	})
}

func (b *matchBolt) handleCancel(t *topology.Tuple, p *CancelRequest) {
	mq := b.queries[p.QueryHash]
	if mq == nil {
		return
	}
	delete(mq.subs, p.SubscriptionID)
	if len(mq.subs) == 0 {
		delete(b.queries, p.QueryHash)
		if b.qindex != nil {
			b.qindex.remove(mq)
		}
	}
}

func (b *matchBolt) handleExtend(p *ExtendRequest) {
	mq := b.queries[p.QueryHash]
	if mq == nil {
		return // meaningless without a prior subscription (§5.1, footnote 3)
	}
	if _, ok := mq.subs[p.SubscriptionID]; !ok {
		return
	}
	ttl := time.Duration(p.TTLMillis) * time.Millisecond
	if ttl <= 0 {
		ttl = b.c.opts.DefaultTTL
	}
	//invalidb:allow coarseclock control-plane TTL deadline at extend time
	mq.subs[p.SubscriptionID] = time.Now().Add(ttl)
}

// handleTick advances the coarse clock, expires subscriptions whose TTL
// lapsed, and prunes the retention buffer and staleness table beyond the
// retention window.
//
// Both expiry loops delete from the map they are ranging over. The Go spec
// explicitly permits this: a deleted entry is simply not produced later in
// the iteration, which is exactly the semantics wanted here — every live
// entry is visited once, deletions take effect immediately, no snapshot is
// needed. This is intentional, not incidental (see
// TestHandleTickExpiresManyInOneTick).
func (b *matchBolt) handleTick(now time.Time) {
	b.now = now
	for hash, mq := range b.queries {
		for sid, deadline := range mq.subs {
			if now.After(deadline) {
				delete(mq.subs, sid)
			}
		}
		if len(mq.subs) == 0 {
			delete(b.queries, hash)
			if b.qindex != nil {
				b.qindex.remove(mq)
			}
			// Exactly one cell per local row (column 0) informs the sorting
			// stage, so the expiry is delivered once.
			if mq.ordered && b.cell.Col == 0 {
				b.out.Emit(nil, topology.Values{kindExpire, QueryIDString(hash), hash})
			}
		}
	}
	b.expireBackfills(now)
	cutoff := now.Add(-b.c.opts.RetentionTime)
	b.retention.prune(cutoff)
	for ck, at := range b.latestAt {
		if at.Before(cutoff) {
			delete(b.latestAt, ck)
			delete(b.latest, ck)
			b.interner.forget(ck)
		}
	}
}

