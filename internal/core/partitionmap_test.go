package core

import (
	"math/rand"
	"testing"
)

// TestGridLayoutRoundTripProperty is the regression test for the
// stale-capture bug: the old gridCell/gridTask pair derived the column count
// from opts.WritePartitions, so a write-partition resize silently changed
// the task<->cell mapping under cached coordinates. gridLayout bakes the
// column capacity at construction, so the round trip must hold for every
// task id regardless of what any partition-map epoch says the current
// write-partition count is.
func TestGridLayoutRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		l := gridLayout{rows: 1 + rng.Intn(8), cols: 1 + rng.Intn(8)}
		for id := 0; id < l.tasks(); id++ {
			row, col := l.cell(id)
			if row < 0 || row >= l.rows || col < 0 || col >= l.cols {
				t.Fatalf("layout %+v: cell(%d) = (%d,%d) out of range", l, id, row, col)
			}
			if got := l.task(row, col); got != id {
				t.Fatalf("layout %+v: task(cell(%d)) = %d", l, id, got)
			}
		}
		// The mapping is invariant across resize epochs: installing maps
		// with any WritePartitions <= cols must not disturb it (the map
		// changes which columns are live, never where a task sits).
		for _, wp := range []int{1, l.cols, 1 + rng.Intn(l.cols)} {
			m := IdentityMap(l.rows, wp)
			m.Epoch = uint64(trial + 1)
			for id := 0; id < l.tasks(); id++ {
				row, col := l.cell(id)
				if got := l.task(row, col); got != id {
					t.Fatalf("layout %+v under map wp=%d: task(cell(%d)) = %d", l, wp, id, got)
				}
			}
		}
	}
}

func TestPartitionMapValidate(t *testing.T) {
	good := IdentityMap(3, 2)
	if err := good.validate(); err != nil {
		t.Fatalf("identity map invalid: %v", err)
	}
	bad := []*PartitionMap{
		{QueryPartitions: 0, WritePartitions: 1},
		{QueryPartitions: 1, WritePartitions: 0, Rows: []RowAssignment{{}}},
		{QueryPartitions: 2, WritePartitions: 1, Rows: []RowAssignment{{}}},
		{QueryPartitions: 1, WritePartitions: 1, Rows: []RowAssignment{{Slot: -1}}},
	}
	for i, m := range bad {
		if err := m.validate(); err == nil {
			t.Fatalf("bad map %d validated: %+v", i, m)
		}
	}
}

func TestMapStateEpochResolution(t *testing.T) {
	var s mapState
	if s.current() != nil || s.at(0) != nil {
		t.Fatal("empty state should resolve to nil")
	}
	m1 := IdentityMap(2, 2)
	m1.Epoch = 1
	if !s.install(m1, "") {
		t.Fatal("first install rejected")
	}
	if s.install(m1.Clone(), "") {
		t.Fatal("re-install of same epoch adopted")
	}
	m2 := IdentityMap(3, 2)
	m2.Epoch = 2
	if !s.install(m2, "") {
		t.Fatal("higher epoch rejected")
	}
	if got := s.at(2); got == nil || got.m.Epoch != 2 {
		t.Fatalf("at(2) = %+v", got)
	}
	if got := s.at(1); got == nil || got.m.Epoch != 1 {
		t.Fatalf("at(1) should resolve to prev, got %+v", got)
	}
	// Unstamped and unknown epochs resolve best-effort to cur.
	if got := s.at(0); got == nil || got.m.Epoch != 2 {
		t.Fatalf("at(0) = %+v", got)
	}
	if got := s.at(99); got == nil || got.m.Epoch != 2 {
		t.Fatalf("at(99) = %+v", got)
	}
	cur, prev := s.both()
	if cur.m.Epoch != 2 || prev.m.Epoch != 1 {
		t.Fatalf("both() = %d, %d", cur.m.Epoch, prev.m.Epoch)
	}
	stale := IdentityMap(1, 1)
	stale.Epoch = 1
	if s.install(stale, "") {
		t.Fatal("stale epoch adopted")
	}
}

// TestRoutingOwnership: a node's routing projection owns exactly the rows
// the map assigns to it, at the assigned slots.
func TestRoutingOwnership(t *testing.T) {
	m := &PartitionMap{
		Epoch: 3, QueryPartitions: 3, WritePartitions: 2,
		Rows: []RowAssignment{
			{Node: "a", Slot: 0},
			{Node: "b", Slot: 0},
			{Node: "a", Slot: 1},
		},
	}
	if err := m.validate(); err != nil {
		t.Fatal(err)
	}
	ra := newRouting(m, "a")
	if ra.ownedSlot(0) != 0 || ra.ownedSlot(1) != -1 || ra.ownedSlot(2) != 1 {
		t.Fatalf("node a slots: %v", ra.slots)
	}
	if len(ra.owned) != 2 || ra.owned[0] != (rowSlot{row: 0, slot: 0}) || ra.owned[1] != (rowSlot{row: 2, slot: 1}) {
		t.Fatalf("node a owned: %v", ra.owned)
	}
	rb := newRouting(m, "b")
	if rb.ownedSlot(0) != -1 || rb.ownedSlot(1) != 0 || rb.ownedSlot(2) != -1 {
		t.Fatalf("node b slots: %v", rb.slots)
	}
	if ra.ownedSlot(-1) != -1 || ra.ownedSlot(3) != -1 {
		t.Fatal("out-of-range rows must not be owned")
	}
}
