package core

import (
	"fmt"
	"sync"
	"time"

	"invalidb/internal/eventlayer"
	"invalidb/internal/metrics"
	"invalidb/internal/query"
	"invalidb/internal/topology"
)

// Options configures an InvaliDB cluster.
type Options struct {
	// Namespace prefixes all event-layer topics. Default "invalidb".
	Namespace string
	// QueryPartitions (QP) is the number of query partitions; adding query
	// partitions raises the number of sustainable concurrent queries
	// (paper Figure 4). Default 1.
	QueryPartitions int
	// WritePartitions (WP) is the number of write partitions; adding write
	// partitions raises sustainable write throughput (paper Figure 5).
	// Default 1.
	WritePartitions int
	// NodeID names this process in a multi-process grid (DESIGN.md §13).
	// Empty (the default) selects single-process mode: the cluster runs the
	// full QP x WP grid behind an identity partition map at epoch 0. Non-empty
	// selects grid mode: the process hosts GridSlots local rows, routes only
	// the global rows a coordinator-published partition map assigns to it,
	// and stays idle until the first map arrives on the control topic.
	NodeID string
	// GridSlots is the number of local query-partition rows this process
	// hosts in grid mode (ignored in single-process mode). Default 1.
	GridSlots int
	// MaxWritePartitions is the local grid's column capacity in grid mode:
	// the ceiling on any partition map's WritePartitions this process can
	// serve, and the headroom a live write-partition resize grows into.
	// Default: WritePartitions. Ignored in single-process mode.
	MaxWritePartitions int
	// QueryIngestNodes and WriteIngestNodes size the stateless ingestion
	// stages (the paper used 1 and 4 in all experiments). Defaults 1 and 4.
	QueryIngestNodes int
	WriteIngestNodes int
	// SortNodes sizes the sorting stage. Default: QueryPartitions.
	SortNodes int
	// NodeCapacity throttles each matching node to this many
	// match-operations per second (one match-op = one after-image evaluated
	// against one registered query). Zero disables throttling. This is the
	// simulation stand-in for the paper's per-node CPU budget (nodes were
	// capped to 80% of one core); saturation behaviour — queue growth, then
	// latency SLA violations — emerges exactly as in the testbed.
	NodeCapacity int
	// NodeBurst overrides the matching-node limiter's burst allowance in
	// match-operations; zero selects ratelimit's default (5% of
	// NodeCapacity, i.e. 50ms of headroom).
	NodeBurst float64
	// RetentionTime bounds the write-stream retention buffer used for
	// subscription replay and staleness avoidance (§5.1; Baqend production
	// uses a few seconds). Default 5s.
	RetentionTime time.Duration
	// HeartbeatInterval is the cadence of heartbeats on tenant notification
	// topics. Default 1s.
	HeartbeatInterval time.Duration
	// DefaultTTL applies to subscriptions that do not specify one. Default 60s.
	DefaultTTL time.Duration
	// TickInterval drives TTL expiry and retention pruning inside matching
	// nodes. Default 250ms.
	TickInterval time.Duration
	// QueueSize is the per-task input queue length. Default 4096.
	QueueSize int
	// Engine is the pluggable query engine. Default MongoEngine.
	Engine Engine
	// EnableAcking turns on at-least-once tuple processing in the underlying
	// stream processor.
	EnableAcking bool
	// EnableQueryIndex activates the multi-query optimization on matching
	// nodes: queries with a numeric interval constraint are held in an
	// interval tree and only candidate queries are evaluated per
	// after-image, rather than all registered queries. With the index on,
	// the simulated per-write cost drops to the candidate count, mirroring
	// the real CPU saving (see the AblationQueryIndex benchmark).
	EnableQueryIndex bool
	// MaxTaskRestarts bounds how many times the stream processor's
	// supervisor replaces a panicking task with a fresh instance before
	// marking the task dead (see topology.Config.MaxTaskRestarts). Zero
	// selects the topology default (3); negative disables restarts.
	MaxTaskRestarts int
	// MatchHook, when set, is invoked at the top of every matching
	// node's Execute with the task id and the tuple kind (before the
	// tuple is acked). It exists for fault injection in tests — a hook
	// that panics simulates a crashing matching node — and must be nil
	// in production.
	MatchHook func(taskID int, kind string)
	// ExtraStages appends additional processing stages to the pipeline
	// behind the filtering stage (paper §5.2: "the process of generating
	// change notifications for more advanced queries is performed in
	// loosely coupled processing stages that can be scaled independently",
	// and §8.1's aggregation/join future work). Each stage receives the
	// filtering stage's per-query deltas and subscription bootstraps,
	// partitioned by query. See NewAggregationStage for a complete example.
	ExtraStages []Stage
	// Metrics receives the cluster's counters, gauges, and topology stats.
	// Nil creates a private registry (counters stay live either way, so
	// the instrumented path is always the one benchmarks measure); read it
	// back via Cluster.Metrics.
	Metrics *metrics.Registry
}

// Stage declares one extension processing stage.
type Stage struct {
	// Name is the stage's component id in the topology.
	Name string
	// Parallelism is the stage's node count. Zero selects 1.
	Parallelism int
	// Factory builds one bolt instance per node.
	Factory func(c *Cluster) topology.Bolt
}

func (o Options) withDefaults() Options {
	if o.Namespace == "" {
		o.Namespace = "invalidb"
	}
	if o.QueryPartitions <= 0 {
		o.QueryPartitions = 1
	}
	if o.WritePartitions <= 0 {
		o.WritePartitions = 1
	}
	if o.GridSlots <= 0 {
		o.GridSlots = 1
	}
	if o.MaxWritePartitions <= 0 {
		o.MaxWritePartitions = o.WritePartitions
	}
	if o.QueryIngestNodes <= 0 {
		o.QueryIngestNodes = 1
	}
	if o.WriteIngestNodes <= 0 {
		o.WriteIngestNodes = 4
	}
	if o.SortNodes <= 0 {
		o.SortNodes = o.QueryPartitions
	}
	if o.RetentionTime <= 0 {
		o.RetentionTime = 5 * time.Second
	}
	if o.HeartbeatInterval <= 0 {
		o.HeartbeatInterval = time.Second
	}
	if o.DefaultTTL <= 0 {
		o.DefaultTTL = 60 * time.Second
	}
	if o.TickInterval <= 0 {
		o.TickInterval = 250 * time.Millisecond
	}
	if o.QueueSize <= 0 {
		o.QueueSize = 4096
	}
	if o.Engine == nil {
		o.Engine = MongoEngine{}
	}
	return o
}

// Cluster is a running InvaliDB cluster: a topology of ingestion, matching
// and sorting nodes wired to the event layer.
type Cluster struct {
	opts   Options
	topics Topics
	bus    eventlayer.Bus
	top    *topology.Topology

	// layout is the process-local grid geometry (rows x column capacity);
	// maps holds the installed partition-map epochs that route global rows
	// onto it. Single-process mode installs an identity map at construction,
	// so routing follows one uniform code path in both modes.
	layout gridLayout
	maps   mapState

	tenantMu sync.RWMutex
	tenants  map[string]struct{}

	// registry is the cluster-wide record of active subscriptions,
	// maintained by the query-ingest stage (§5.1: the ingestion nodes are
	// stateless, so the registry lives on the shared cluster object where
	// every ingest task can serve a resync for a recovering grid cell).
	regMu    sync.Mutex
	registry map[uint64]map[string]*regEntry // query hash -> sid -> entry

	// pendingResync holds resync requests for recovering stateful tasks that
	// no query-ingest node has processed yet. The heartbeat loop re-publishes
	// them every interval, so a resync lost to an event-layer fault (drop,
	// partition) — exactly the conditions the chaos suite injects — is
	// retried until it lands instead of leaving the restarted cell with an
	// empty query set forever.
	resyncMu      sync.Mutex
	pendingResync map[string]*ResyncRequest // "component/task" -> request

	stopHB  chan struct{}
	hbWG    sync.WaitGroup
	started bool
	mu      sync.Mutex

	// metrics instruments the pipeline. The hot-path counters below are
	// resolved once at construction so per-event cost is one atomic add.
	metrics   *metrics.Registry
	mWrites   *metrics.Int // after-images ingested into the grid
	mMatched  *metrics.Int // result changes produced by matching nodes
	mNotifs   *metrics.Int // notifications published on tenant topics
	mInstalls *metrics.Int // subscription installs processed by query ingest

	// Query-index selectivity counters: writes that reached the matching
	// stage, candidates the per-write probe produced, candidates whose
	// filter was actually evaluated, and evaluations that matched.
	// probed/writes relative to the registered query count is the index's
	// pruning power (see `-exp` breakdown tables).
	mCandWrites    *metrics.Int
	mCandProbed    *metrics.Int
	mCandEvaluated *metrics.Int
	mCandMatched   *metrics.Int

	// Backfill counters (DESIGN.md §12): chunks reconciled by matching
	// cells, chunk rows superseded by in-window writes, retention-ring
	// writes replayed over a chunk's watermark window, and certificates
	// issued. replayed is the yardstick migration tests use: a migrated
	// subscription must replay only its watermark window, never the whole
	// retention ring.
	mBackfillChunks     *metrics.Int
	mBackfillReconciled *metrics.Int
	mBackfillReplayed   *metrics.Int
	mBackfillCertified  *metrics.Int
}

// NewCluster assembles a cluster over the given event layer. Call Start to
// begin processing.
func NewCluster(bus eventlayer.Bus, opts Options) (*Cluster, error) {
	if bus == nil {
		return nil, fmt.Errorf("core: nil event layer")
	}
	opts = opts.withDefaults()
	reg := opts.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	c := &Cluster{
		opts:          opts,
		topics:        NewTopics(opts.Namespace),
		bus:           bus,
		tenants:       map[string]struct{}{},
		registry:      map[uint64]map[string]*regEntry{},
		pendingResync: map[string]*ResyncRequest{},
		stopHB:        make(chan struct{}),
		metrics:       reg,
		mWrites:       reg.Counter("cluster.writes_ingested"),
		mMatched:      reg.Counter("cluster.writes_matched"),
		mNotifs:       reg.Counter("cluster.notifications"),
		mInstalls:     reg.Counter("cluster.subscribes"),

		mCandWrites:    reg.Counter("queryindex.writes"),
		mCandProbed:    reg.Counter("queryindex.candidates.probed"),
		mCandEvaluated: reg.Counter("queryindex.candidates.evaluated"),
		mCandMatched:   reg.Counter("queryindex.candidates.matched"),

		mBackfillChunks:     reg.Counter("backfill.chunks"),
		mBackfillReconciled: reg.Counter("backfill.reconciled"),
		mBackfillReplayed:   reg.Counter("backfill.replayed"),
		mBackfillCertified:  reg.Counter("backfill.certified"),
	}

	if opts.NodeID != "" {
		// Grid mode: the local grid has GridSlots rows and MaxWritePartitions
		// columns of capacity; the coordinator's maps decide which global
		// rows land here. No map is installed yet — the process routes
		// nothing until the control topic delivers one.
		c.layout = gridLayout{rows: opts.GridSlots, cols: opts.MaxWritePartitions}
	} else {
		c.layout = gridLayout{rows: opts.QueryPartitions, cols: opts.WritePartitions}
		c.maps.install(IdentityMap(opts.QueryPartitions, opts.WritePartitions), "")
	}
	b := topology.NewBuilder()

	// Event-layer sources: one spout per inbound topic; the ingestion bolts
	// behind them are the paper's stateless ingestion nodes.
	b.SetSpout("query-src", func() topology.Spout {
		return newBusSpout(bus, c.topics.Queries())
	}, 1, "payload")
	b.SetSpout("write-src", func() topology.Spout {
		return newBusSpout(bus, c.topics.Writes())
	}, 1, "payload")
	b.SetSpout("tick", func() topology.Spout {
		return newTickSpout(opts.TickInterval)
	}, 1, "tick")

	b.SetBolt("query-ingest", func() topology.Bolt {
		return newQueryIngestBolt(c)
	}, opts.QueryIngestNodes, "kind", "qkey", "payload").
		DeclareStream(streamBootstrap, "kind", "qkey", "payload").
		ShuffleGrouping("query-src")

	b.SetBolt("write-ingest", func() topology.Bolt {
		return newWriteIngestBolt(c)
	}, opts.WriteIngestNodes, "kind", "qkey", "payload").
		ShuffleGrouping("write-src")

	b.SetBolt("match", func() topology.Bolt {
		return newMatchBolt(c)
	}, c.layout.tasks(), "kind", "qkey", "payload").
		TaskMeta(func(taskID int) any {
			row, col := c.layout.cell(taskID)
			return GridCell{Row: row, Col: col}
		}).
		DirectGrouping("query-ingest").
		DirectGrouping("write-ingest").
		BroadcastGrouping("tick")

	b.SetBolt("sort", func() topology.Bolt {
		return newSortBolt(c)
	}, opts.SortNodes).
		FieldsGrouping("match", "qkey").
		FieldsGroupingStream("query-ingest", streamBootstrap, "qkey").
		BroadcastGrouping("tick")

	for _, st := range opts.ExtraStages {
		parallelism := st.Parallelism
		if parallelism <= 0 {
			parallelism = 1
		}
		factory := st.Factory
		b.SetBolt(st.Name, func() topology.Bolt {
			return factory(c)
		}, parallelism).
			FieldsGrouping("match", "qkey").
			FieldsGroupingStream("query-ingest", streamBootstrap, "qkey").
			BroadcastGrouping("tick")
	}

	top, err := b.Build(topology.Config{
		QueueSize:       opts.QueueSize,
		EnableAcking:    opts.EnableAcking,
		AckTimeout:      30 * time.Second,
		MaxTaskRestarts: opts.MaxTaskRestarts,
		OnTaskRestart:   c.onTaskRestart,
	})
	if err != nil {
		return nil, err
	}
	c.top = top
	top.RegisterMetrics(reg)
	RegisterWireMetrics(reg)
	reg.Gauge("cluster.queries", func() float64 {
		c.regMu.Lock()
		defer c.regMu.Unlock()
		return float64(len(c.registry))
	})
	reg.Gauge("cluster.subscriptions", func() float64 {
		c.regMu.Lock()
		defer c.regMu.Unlock()
		n := 0
		for _, sids := range c.registry {
			n += len(sids)
		}
		return float64(n)
	})
	reg.Gauge("cluster.pending_resyncs", func() float64 {
		c.resyncMu.Lock()
		defer c.resyncMu.Unlock()
		return float64(len(c.pendingResync))
	})
	reg.Gauge("cluster.tenants", func() float64 {
		c.tenantMu.RLock()
		defer c.tenantMu.RUnlock()
		return float64(len(c.tenants))
	})
	return c, nil
}

// Metrics returns the cluster's registry (the Options.Metrics instance,
// or the private one created in its absence).
func (c *Cluster) Metrics() *metrics.Registry { return c.metrics }

// streamBootstrap carries subscription bootstraps (and cancellations) from
// query ingestion to the sorting stage, partitioned by query key.
const streamBootstrap = "bootstrap"

// Options returns the cluster's effective configuration.
func (c *Cluster) Options() Options { return c.opts }

// Topics returns the cluster's event-layer topic scheme.
func (c *Cluster) Topics() Topics { return c.topics }

// Start launches the topology and the heartbeat publisher. Grid-mode
// processes additionally subscribe to the retained control topic (so the
// coordinator's current partition map arrives immediately, even if it was
// published before this process came up) and announce themselves with a
// NodeHello on the coordination topic.
func (c *Cluster) Start() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.started {
		return fmt.Errorf("core: cluster already started")
	}
	var ctl eventlayer.Subscription
	if c.opts.NodeID != "" {
		var err error
		ctl, err = c.bus.Subscribe(c.topics.Control())
		if err != nil {
			return err
		}
	}
	if err := c.top.Start(); err != nil {
		if ctl != nil {
			_ = ctl.Close()
		}
		return err
	}
	c.started = true
	c.hbWG.Add(1)
	go c.heartbeatLoop()
	if ctl != nil {
		c.hbWG.Add(1)
		go c.controlLoop(ctl)
		c.publishHello()
	}
	return nil
}

// Stop halts the cluster. The event layer is left untouched: requests
// published afterwards simply go unanswered, which is the paper's isolated
// failure domain (worst case: the cluster is down, the OLTP system is not).
func (c *Cluster) Stop() {
	c.mu.Lock()
	if !c.started {
		c.mu.Unlock()
		return
	}
	c.started = false
	c.mu.Unlock()
	close(c.stopHB)
	c.hbWG.Wait()
	c.top.Stop()
}

// Stats exposes the underlying topology counters.
func (c *Cluster) Stats() []topology.TaskStats { return c.top.Stats() }

// registerTenant records a tenant for heartbeat fan-out.
func (c *Cluster) registerTenant(tenant string) {
	c.tenantMu.RLock()
	_, known := c.tenants[tenant]
	c.tenantMu.RUnlock()
	if known {
		return
	}
	c.tenantMu.Lock()
	c.tenants[tenant] = struct{}{}
	c.tenantMu.Unlock()
}

func (c *Cluster) heartbeatLoop() {
	defer c.hbWG.Done()
	ticker := time.NewTicker(c.opts.HeartbeatInterval)
	defer ticker.Stop()
	for {
		select {
		case <-c.stopHB:
			return
		case now := <-ticker.C:
			c.pruneRegistry(now)
			c.retryResyncs()
			c.tenantMu.RLock()
			tenants := make([]string, 0, len(c.tenants))
			for t := range c.tenants {
				tenants = append(tenants, t)
			}
			c.tenantMu.RUnlock()
			for _, tenant := range tenants {
				env := &Envelope{Kind: KindHeartbeat, Heartbeat: &Heartbeat{
					Tenant:     tenant,
					TimeMillis: now.UnixMilli(),
				}}
				if data, err := env.Encode(); err == nil {
					_ = c.bus.Publish(c.topics.Notify(tenant), data)
				}
			}
			if c.opts.NodeID != "" {
				c.publishHello()
			}
		}
	}
}

// controlLoop consumes the coordinator's retained control topic: every
// partition-map publication with a higher epoch is installed (demoting the
// previous map) and acknowledged back on the coordination topic so the
// coordinator can track convergence. Re-publications of the current epoch
// are ignored silently — the coordinator re-publishes periodically so late
// joiners converge.
func (c *Cluster) controlLoop(sub eventlayer.Subscription) {
	defer c.hbWG.Done()
	defer sub.Close()
	for {
		select {
		case <-c.stopHB:
			return
		case msg, ok := <-sub.C():
			if !ok {
				return
			}
			env, err := DecodeEnvelope(msg.Payload)
			if err != nil || env.Kind != KindPartitionMap || env.Map == nil {
				continue
			}
			if c.maps.install(env.Map.Clone(), c.opts.NodeID) {
				c.publishEpochAck(env.Map.Epoch)
			}
		}
	}
}

// publishHello announces this process on the coordination topic: its
// identity, capacity, and the map epoch it currently routes by (so a
// restarted coordinator can recover the authoritative map from the fleet).
func (c *Cluster) publishHello() {
	hello := &NodeHello{
		Node:               c.opts.NodeID,
		Slots:              c.opts.GridSlots,
		MaxWritePartitions: c.opts.MaxWritePartitions,
	}
	if cur := c.maps.current(); cur != nil {
		hello.Map = cur.m.Clone()
	}
	env := &Envelope{Kind: KindNodeHello, Hello: hello}
	if data, err := env.Encode(); err == nil {
		_ = c.bus.Publish(c.topics.Coord(), data)
	}
}

func (c *Cluster) publishEpochAck(epoch uint64) {
	env := &Envelope{Kind: KindEpochAck, EpochAck: &EpochAck{Node: c.opts.NodeID, Epoch: epoch}}
	if data, err := env.Encode(); err == nil {
		_ = c.bus.Publish(c.topics.Coord(), data)
	}
}

// CurrentMap returns a copy of the partition map the cluster currently
// routes by, or nil when none is installed yet (a grid-mode process before
// its first control-topic delivery).
func (c *Cluster) CurrentMap() *PartitionMap {
	cur := c.maps.current()
	if cur == nil {
		return nil
	}
	return cur.m.Clone()
}

// reportsQueryErrors reports whether this process should publish
// compile-error notifications for malformed subscriptions. Every process
// sees all control traffic, so exactly one — the owner of global row 0 —
// speaks for the cluster to avoid duplicate error notifications. The
// single-process identity map always owns row 0.
func (c *Cluster) reportsQueryErrors() bool {
	cur := c.maps.current()
	return cur != nil && cur.ownedSlot(0) >= 0
}

// publishNotification serializes and publishes a notification on the
// tenant's topic.
func (c *Cluster) publishNotification(n *Notification) {
	env := &Envelope{Kind: KindNotification, Notification: n}
	data, err := env.Encode()
	if err != nil {
		return
	}
	c.mNotifs.Inc()
	_ = c.bus.Publish(c.topics.Notify(n.Tenant), data)
}

// regEntry is the registry's record of one active subscription: everything
// needed to re-issue its subscribe to a recovering node, including the
// bootstrap result the application server delivered (a restarted matching
// node re-installs it and then closes the gap via retention replay and the
// client's own re-subscription path).
type regEntry struct {
	req      *SubscribeRequest
	q        *query.Query
	hash     uint64
	deadline time.Time
	// Backfill bookkeeping: the in-flight backfill's identity, whether one
	// was ever started for this registration (restart certificates target
	// these entries), and the highest chunk index folded into req.Result
	// (so a retried chunk is not appended twice). A restarted backfill
	// re-registers, resetting all three.
	backfillID  string
	backfilling bool
	lastChunk   int
}

// registerSubscription records (or refreshes) a subscription.
func (c *Cluster) registerSubscription(req *SubscribeRequest, q *query.Query, hash uint64, ttl time.Duration) {
	c.regMu.Lock()
	sids := c.registry[hash]
	if sids == nil {
		sids = map[string]*regEntry{}
		c.registry[hash] = sids
	}
	//invalidb:allow coarseclock control-plane TTL deadline, not on the write path
	sids[req.SubscriptionID] = &regEntry{req: req, q: q, hash: hash, deadline: time.Now().Add(ttl)}
	c.regMu.Unlock()
}

func (c *Cluster) cancelSubscription(hash uint64, sid string) {
	c.regMu.Lock()
	if sids := c.registry[hash]; sids != nil {
		delete(sids, sid)
		if len(sids) == 0 {
			delete(c.registry, hash)
		}
	}
	c.regMu.Unlock()
}

func (c *Cluster) extendSubscription(hash uint64, sid string, ttl time.Duration) {
	c.regMu.Lock()
	if sids := c.registry[hash]; sids != nil {
		if e := sids[sid]; e != nil {
			//invalidb:allow coarseclock control-plane TTL deadline, not on the write path
			e.deadline = time.Now().Add(ttl)
		}
	}
	c.regMu.Unlock()
}

// pruneRegistry drops registry entries whose TTL deadline has passed. It
// runs on every heartbeat tick so subscriptions abandoned without a Cancel
// (clients that simply vanish) do not accumulate — each entry retains its
// full bootstrap Result slice, so lazy pruning only on resync would leak
// unbounded memory in a long-running cluster.
func (c *Cluster) pruneRegistry(now time.Time) {
	c.regMu.Lock()
	for hash, sids := range c.registry {
		for sid, e := range sids {
			if now.After(e.deadline) {
				delete(sids, sid)
			}
		}
		if len(sids) == 0 {
			delete(c.registry, hash)
		}
	}
	c.regMu.Unlock()
}

// snapshotSubscriptions returns all live registry entries, lazily pruning
// expired ones (their matching-node state expires on ticks anyway).
func (c *Cluster) snapshotSubscriptions() []*regEntry {
	//invalidb:allow coarseclock heartbeat-rate registry pruning, not on the write path
	now := time.Now()
	c.regMu.Lock()
	var out []*regEntry
	for hash, sids := range c.registry {
		for sid, e := range sids {
			if now.After(e.deadline) {
				delete(sids, sid)
				continue
			}
			out = append(out, e)
		}
		if len(sids) == 0 {
			delete(c.registry, hash)
		}
	}
	c.regMu.Unlock()
	return out
}

// onTaskRestart is the supervisor's recovery hook: when a stateful task
// (matching or sorting/extension node) comes back with a fresh — and
// therefore empty — instance, a resync request is published on the queries
// topic. It flows through the regular ingest path, so whichever ingest
// node receives it re-broadcasts the registry's subscriptions to the
// recovering cell in order with other control traffic. The request is also
// recorded as pending and re-published on every heartbeat tick until an
// ingest node processes it (resyncHandled): a single fire-and-forget
// publish could be eaten by the very faults the recovery exists to survive,
// leaving the cell with an empty query set indefinitely.
func (c *Cluster) onTaskRestart(component string, taskID int) {
	stateful := component == "match" || component == "sort"
	for _, st := range c.opts.ExtraStages {
		if st.Name == component {
			stateful = true
		}
	}
	if !stateful {
		return // ingestion stages and spouts hold no query state
	}
	r := &ResyncRequest{Component: component, TaskID: taskID}
	c.resyncMu.Lock()
	c.pendingResync[resyncKey(component, taskID)] = r
	c.resyncMu.Unlock()
	c.publishResync(r)
}

func resyncKey(component string, taskID int) string {
	return fmt.Sprintf("%s/%d", component, taskID)
}

func (c *Cluster) publishResync(r *ResyncRequest) {
	env := &Envelope{Kind: KindResync, Resync: r}
	data, err := env.Encode()
	if err != nil {
		return
	}
	_ = c.bus.Publish(c.topics.Queries(), data)
}

// retryResyncs re-publishes every resync request not yet seen by an ingest
// node. Duplicates are harmless: healthy owners treat the repeated
// subscribes as idempotent renewals.
func (c *Cluster) retryResyncs() {
	c.resyncMu.Lock()
	pending := make([]*ResyncRequest, 0, len(c.pendingResync))
	for _, r := range c.pendingResync {
		pending = append(pending, r)
	}
	c.resyncMu.Unlock()
	for _, r := range pending {
		c.publishResync(r)
	}
}

// resyncHandled marks a recovering task's resync as delivered; called by
// query ingestion when it processes the request.
func (c *Cluster) resyncHandled(component string, taskID int) {
	c.resyncMu.Lock()
	delete(c.pendingResync, resyncKey(component, taskID))
	c.resyncMu.Unlock()
}
