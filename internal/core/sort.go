package core

import (
	"fmt"
	"sort"

	"invalidb/internal/document"
	"invalidb/internal/query"
	"invalidb/internal/topology"
)

// sortEntry is one item of a sorting node's auxiliary data: the offset
// items, the visible result, and up to slack items beyond the limit
// (paper Figure 3).
type sortEntry struct {
	key string
	ver uint64
	doc document.Document
}

// sortQuery is the sorting stage's state for one sorted query.
type sortQuery struct {
	tenant string
	q      *query.Query // original query, with offset and limit
	hash   uint64
	slack  int
	subs   map[string]struct{}

	// entries is the maintained superset, ordered by the engine comparator:
	// offset region, visible window, and slack beyond the limit.
	entries []sortEntry
	// sawOverflow records that the true matching set may extend beyond the
	// tracked entries (the bound was hit at bootstrap or an insert was
	// dropped), which is when exhausting the slack becomes unmaintainable.
	sawOverflow bool
	// active is false between a maintenance error and the renewal
	// subscription (§5.2: the node deactivates the query and the error
	// notification doubles as a renewal request).
	active bool
	// published is the visible window as last communicated to subscribers —
	// the diff base for every notification batch. It only advances when
	// notifications are emitted, so subscribers can always reconstruct the
	// current window from their last state plus the new batch, even across
	// maintenance errors and renewals.
	published []sortEntry
	// pending buffers deltas that arrive while the query awaits renewal:
	// the matching nodes' retention replay may deliver result changes
	// before the renewal bootstrap does (the two travel different paths),
	// and dropping them would leave the renewed window stale. They are
	// applied version-checked after the bootstrap.
	pending []*deltaEvent
	seq     uint64
}

// maxPendingDeltas bounds the renewal buffer; a renewal takes one round
// trip, so anything beyond this indicates a stuck application server.
const maxPendingDeltas = 4096

// bound is the maximum number of entries the node retains: offset + limit +
// slack. Zero means unbounded (queries without a limit clause track their
// full result and are always maintainable).
func (sq *sortQuery) bound() int {
	if sq.q.Limit == 0 {
		return 0
	}
	return sq.q.Offset + sq.q.Limit + sq.slack
}

// window returns a copy of the visible result: entries[offset : offset+limit].
func (sq *sortQuery) window() []sortEntry {
	start := sq.q.Offset
	if start > len(sq.entries) {
		start = len(sq.entries)
	}
	end := len(sq.entries)
	if sq.q.Limit > 0 && start+sq.q.Limit < end {
		end = start + sq.q.Limit
	}
	return append([]sortEntry(nil), sq.entries[start:end]...)
}

// sortBolt is a sorting-stage node. It receives filtering-stage deltas
// partitioned by query and maintains each query's window with auxiliary
// data, detecting positional changes (changeIndex), window entries/exits
// under limit and offset clauses, and maintenance errors when the slack is
// exhausted (§5.2).
type sortBolt struct {
	c       *Cluster
	out     topology.Collector
	queries map[uint64]*sortQuery
	// origin stamps outgoing notifications with this node instance's
	// identity ("s<task>.<incarnation>") for server-side deduplication.
	origin string
	// cur* hold the stage timestamps of the delta being applied, copied
	// onto every notification its window diff produces. Bootstrap-driven
	// diffs run with zero stamps (they are not caused by a traced write).
	curWriteNs  int64
	curIngestNs int64
	curMatchNs  int64
}

func newSortBolt(c *Cluster) topology.Bolt { return &sortBolt{c: c} }

func (b *sortBolt) Prepare(ctx *topology.BoltContext, out topology.Collector) error {
	b.out = out
	b.queries = map[uint64]*sortQuery{}
	b.origin = fmt.Sprintf("s%d.%d", ctx.TaskID, ctx.Incarnation)
	return nil
}

func (b *sortBolt) Execute(t *topology.Tuple) {
	defer b.out.Ack(t)
	if t.Component == "tick" {
		return // the sorting stage has no timers; expiry arrives as a tuple
	}
	kindV, _ := t.Get("kind")
	kind, _ := kindV.(string)
	payloadV, _ := t.Get("payload")
	switch kind {
	case kindSubscribe:
		if p, ok := payloadV.(*subscribePayload); ok {
			b.handleBootstrap(p)
		}
	case kindCancel:
		if p, ok := payloadV.(*CancelRequest); ok {
			b.handleCancel(p)
		}
	case kindExpire:
		if hash, ok := payloadV.(uint64); ok {
			b.handleExpire(hash)
		}
	case kindDelta:
		if d, ok := payloadV.(*deltaEvent); ok {
			b.handleDelta(d)
		}
	}
}

func (b *sortBolt) Cleanup() {}

// handleCancel drops one subscription; the query state lives as long as any
// subscription remains.
func (b *sortBolt) handleCancel(p *CancelRequest) {
	if sq := b.queries[p.QueryHash]; sq != nil {
		delete(sq.subs, p.SubscriptionID)
		if len(sq.subs) == 0 {
			delete(b.queries, p.QueryHash)
		}
	}
}

// handleExpire drops a query whose subscriptions all timed out (sent once
// per row by the write-partition-0 matching node).
func (b *sortBolt) handleExpire(hash uint64) {
	delete(b.queries, hash)
}

// handleBootstrap installs or renews a sorted query from the application
// server's bootstrap result (the rewritten query's result: offset items,
// window, and slack).
func (b *sortBolt) handleBootstrap(p *subscribePayload) {
	sq := b.queries[p.hash]
	entries := make([]sortEntry, 0, len(p.entries))
	for _, e := range p.entries {
		entries = append(entries, sortEntry{key: e.Key, ver: e.Version, doc: e.Doc})
	}
	if sq == nil {
		sq = &sortQuery{
			tenant: p.req.Tenant,
			q:      p.q,
			hash:   p.hash,
			slack:  p.slack,
			subs:   map[string]struct{}{},
			active: true,
		}
		sq.entries = entries
		b.sortEntries(sq)
		sq.sawOverflow = sq.bound() > 0 && len(sq.entries) >= sq.bound()
		// The application server delivered this bootstrap's window as the
		// initial result, so it is what subscribers know.
		sq.published = sq.window()
		sq.subs[p.req.SubscriptionID] = struct{}{}
		b.queries[p.hash] = sq
		return
	}
	sq.subs[p.req.SubscriptionID] = struct{}{}
	if sq.active {
		// Additional subscription to an already-maintained query: the
		// cluster state is authoritative; the new subscriber got its initial
		// result from the application server.
		return
	}
	// Renewal after a maintenance error: rebuild from the fresh result,
	// fold in any changes that overtook the bootstrap, and emit the
	// incremental transition from the last *published* window (§5.2) —
	// subscribers have not seen anything since the error, so the diff base
	// must be their state, not the node's.
	sq.entries = entries
	b.sortEntries(sq)
	sq.slack = p.slack // the server may raise the slack on reexecution
	sq.sawOverflow = sq.bound() > 0 && len(sq.entries) >= sq.bound()
	sq.active = true
	pending := sq.pending
	sq.pending = nil
	for _, d := range pending {
		if !sq.active {
			// A buffered removal re-triggered a maintenance error; the
			// remaining deltas stay buffered for the next renewal.
			sq.pending = append(sq.pending, d)
			continue
		}
		b.applyMutation(sq, d)
	}
	if sq.active {
		// Renewal diffs merge many buffered deltas; no single write's
		// stamps describe them.
		b.curWriteNs, b.curIngestNs, b.curMatchNs = 0, 0, 0
		b.emitDiff(sq)
	}
}

// applyMutation folds a delta into the entry state without notifying; the
// caller emits a published-vs-current diff afterwards. It may deactivate the
// query (maintenance error).
func (b *sortBolt) applyMutation(sq *sortQuery, d *deltaEvent) {
	for i := range sq.entries {
		if sq.entries[i].key == d.Key && d.Version <= sq.entries[i].ver {
			return // already reflected (bootstrap/replay overlap)
		}
	}
	removed := b.removeEntry(sq, d.Key)
	inserted := false
	if d.Type == MatchAdd || d.Type == MatchChange {
		inserted = b.insertEntry(sq, sortEntry{key: d.Key, ver: d.Version, doc: d.Doc})
	}
	// Maintainability (§5.2): when an item leaves the tracked region while
	// the true result may extend beyond it, and the remaining entries no
	// longer cover the visible window, the node cannot determine the
	// replacement item — the query becomes unmaintainable.
	if removed && !inserted && sq.bound() > 0 && sq.sawOverflow &&
		len(sq.entries) < sq.q.Offset+sq.q.Limit {
		b.maintenanceError(sq)
	}
}

func (b *sortBolt) sortEntries(sq *sortQuery) {
	sort.SliceStable(sq.entries, func(i, j int) bool {
		return b.c.opts.Engine.Compare(sq.q, sq.entries[i].doc, sq.entries[j].doc) < 0
	})
}

// handleDelta applies one filtering-stage result change to the query's
// auxiliary data and emits the visible-window consequences.
func (b *sortBolt) handleDelta(d *deltaEvent) {
	hash, ok := ParseQueryID(d.QueryID)
	if !ok {
		return
	}
	sq := b.queries[hash]
	if sq == nil {
		return // expired or cancelled
	}
	if !sq.active {
		// Awaiting renewal: buffer so changes that overtake the renewal
		// bootstrap are not lost.
		if len(sq.pending) < maxPendingDeltas {
			sq.pending = append(sq.pending, d)
		}
		return
	}
	b.curWriteNs, b.curIngestNs, b.curMatchNs = d.WriteNs, d.IngestNs, d.MatchNs
	b.applyMutation(sq, d)
	if sq.active {
		b.emitDiff(sq)
	}
	b.curWriteNs, b.curIngestNs, b.curMatchNs = 0, 0, 0
}

// removeEntry deletes the keyed entry, reporting whether it was present.
func (b *sortBolt) removeEntry(sq *sortQuery, key string) bool {
	for i := range sq.entries {
		if sq.entries[i].key == key {
			sq.entries = append(sq.entries[:i], sq.entries[i+1:]...)
			return true
		}
	}
	return false
}

// insertEntry places the entry at its sorted position, respecting the bound.
// It reports whether the entry is now tracked.
func (b *sortBolt) insertEntry(sq *sortQuery, e sortEntry) bool {
	pos := sort.Search(len(sq.entries), func(i int) bool {
		return b.c.opts.Engine.Compare(sq.q, e.doc, sq.entries[i].doc) < 0
	})
	bound := sq.bound()
	if bound > 0 && pos >= bound {
		sq.sawOverflow = true
		return false
	}
	sq.entries = append(sq.entries, sortEntry{})
	copy(sq.entries[pos+1:], sq.entries[pos:])
	sq.entries[pos] = e
	if bound > 0 && len(sq.entries) > bound {
		sq.entries = sq.entries[:bound]
		sq.sawOverflow = true
		if pos >= bound {
			return false
		}
	}
	return true
}

func (b *sortBolt) maintenanceError(sq *sortQuery) {
	sq.active = false
	sq.seq++
	b.c.publishNotification(&Notification{
		Tenant:  sq.tenant,
		QueryID: QueryIDString(sq.hash),
		Type:    MatchError,
		Index:   -1,
		Seq:     sq.seq,
		Origin:  b.origin,
		Error:   "query maintenance error: slack exhausted, renewal required",
	})
}

// emitDiff publishes the transition from the last published window to the
// current one and advances the published snapshot.
func (b *sortBolt) emitDiff(sq *sortQuery) {
	after := sq.window()
	b.emitWindowDiff(sq, sq.published, after)
	sq.published = after
}

// emitWindowDiff translates a window transition into the minimal
// notification sequence. Clients reconstruct the window by applying, in seq
// order: removes (by key), then adds and changeIndexes at their final
// indexes (ascending), then in-place changes.
func (b *sortBolt) emitWindowDiff(sq *sortQuery, before, after []sortEntry) {
	beforeIdx := make(map[string]int, len(before))
	for i, e := range before {
		beforeIdx[e.key] = i
	}
	afterIdx := make(map[string]int, len(after))
	for i, e := range after {
		afterIdx[e.key] = i
	}
	for _, e := range before {
		if _, still := afterIdx[e.key]; !still {
			b.notify(sq, MatchRemove, e.key, e.ver, nil, -1)
		}
	}
	for i, e := range after {
		j, was := beforeIdx[e.key]
		switch {
		case !was:
			b.notify(sq, MatchAdd, e.key, e.ver, e.doc, i)
		case e.ver != before[j].ver && i != j:
			b.notify(sq, MatchChangeIndex, e.key, e.ver, e.doc, i)
		case e.ver != before[j].ver:
			b.notify(sq, MatchChange, e.key, e.ver, e.doc, i)
		default:
			// Position shifts of untouched items are implied by the
			// surrounding adds and removes.
		}
	}
}

func (b *sortBolt) notify(sq *sortQuery, mt MatchType, key string, ver uint64, doc document.Document, idx int) {
	sq.seq++
	n := &Notification{
		Tenant:   sq.tenant,
		QueryID:  QueryIDString(sq.hash),
		Type:     mt,
		Key:      key,
		Version:  ver,
		Index:    idx,
		Seq:      sq.seq,
		Origin:   b.origin,
		WriteNs:  b.curWriteNs,
		IngestNs: b.curIngestNs,
		MatchNs:  b.curMatchNs,
	}
	if doc != nil {
		n.Doc = sq.q.Project(doc)
	}
	b.c.publishNotification(n)
}

// ParseQueryID inverts QueryIDString.
func ParseQueryID(id string) (uint64, bool) {
	if len(id) != 17 || id[0] != 'q' {
		return 0, false
	}
	var h uint64
	for _, r := range id[1:] {
		var d uint64
		switch {
		case r >= '0' && r <= '9':
			d = uint64(r - '0')
		case r >= 'a' && r <= 'f':
			d = uint64(r-'a') + 10
		default:
			return 0, false
		}
		h = h<<4 | d
	}
	return h, true
}
