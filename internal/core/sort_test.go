package core

import (
	"fmt"
	"testing"
	"time"

	"invalidb/internal/document"
	"invalidb/internal/eventlayer"
	"invalidb/internal/query"
	"invalidb/internal/topology"
)

// sortHarness drives a sortBolt directly with synthetic bootstraps and
// deltas, capturing the notifications it publishes.
type sortHarness struct {
	t     *testing.T
	bolt  *sortBolt
	notif eventlayer.Subscription
	q     *query.Query
	hash  uint64
	ver   uint64
}

type nopCollector struct{}

func (nopCollector) Emit(*topology.Tuple, topology.Values)               {}
func (nopCollector) EmitStream(string, *topology.Tuple, topology.Values) {}
func (nopCollector) EmitDirect(int, *topology.Tuple, topology.Values)    {}
func (nopCollector) EmitDirectStream(string, int, *topology.Tuple, topology.Values) {
}
func (nopCollector) EmitBatch([]*topology.Tuple, topology.Values)            {}
func (nopCollector) EmitDirectBatch(int, []*topology.Tuple, topology.Values) {}
func (nopCollector) Ack(*topology.Tuple)                                     {}
func (nopCollector) Fail(*topology.Tuple)                                    {}

func newSortHarness(t *testing.T, spec query.Spec, slack int) *sortHarness {
	t.Helper()
	bus := eventlayer.NewMemBus(eventlayer.MemBusOptions{})
	cluster, err := NewCluster(bus, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The cluster is used only as the bolt's publication context; its
	// topology is never started.
	notif, err := bus.Subscribe(cluster.Topics().Notify("t"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = notif.Close(); _ = bus.Close() })
	q, err := query.Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	bolt := newSortBolt(cluster).(*sortBolt)
	if err := bolt.Prepare(&topology.BoltContext{TaskID: 0}, nopCollector{}); err != nil {
		t.Fatal(err)
	}
	return &sortHarness{
		t: t, bolt: bolt, notif: notif, q: q,
		hash: TenantQueryHash("t", q),
	}
}

func (h *sortHarness) entry(key string, rank int) ResultEntry {
	h.ver++
	return h.entryV(key, rank, h.ver)
}

// entryV builds an entry with an explicit version (for bootstraps that were
// read before later writes).
func (h *sortHarness) entryV(key string, rank int, ver uint64) ResultEntry {
	return ResultEntry{Key: key, Version: ver,
		Doc: document.Document{"_id": key, "rank": int64(rank)}}
}

func (h *sortHarness) bootstrap(sid string, slack int, entries ...ResultEntry) {
	h.bolt.handleBootstrap(&subscribePayload{
		req:     &SubscribeRequest{Tenant: "t", SubscriptionID: sid},
		q:       h.q,
		hash:    h.hash,
		slack:   slack,
		ttl:     time.Minute,
		entries: entries,
	})
}

func (h *sortHarness) delta(mt MatchType, key string, rank int) {
	h.ver++
	d := &deltaEvent{
		Tenant: "t", QueryID: QueryIDString(h.hash), Type: mt,
		Key: key, Version: h.ver,
	}
	if mt != MatchRemove {
		d.Doc = document.Document{"_id": key, "rank": int64(rank)}
	}
	h.bolt.handleDelta(d)
}

// drain returns all notifications published so far.
func (h *sortHarness) drain() []*Notification {
	var out []*Notification
	for {
		select {
		case msg := <-h.notif.C():
			env, err := DecodeEnvelope(msg.Payload)
			if err != nil || env.Kind != KindNotification {
				continue
			}
			out = append(out, env.Notification)
		default:
			return out
		}
	}
}

// window reconstructs the client view from a notification stream applied to
// a starting window, following the published protocol.
func applyProtocol(start []string, notifs []*Notification) []string {
	win := append([]string(nil), start...)
	remove := func(key string) {
		for i, k := range win {
			if k == key {
				win = append(win[:i], win[i+1:]...)
				return
			}
		}
	}
	for _, n := range notifs {
		switch n.Type {
		case MatchRemove:
			remove(n.Key)
		case MatchAdd, MatchChangeIndex:
			remove(n.Key)
			idx := n.Index
			if idx < 0 || idx > len(win) {
				idx = len(win)
			}
			win = append(win, "")
			copy(win[idx+1:], win[idx:])
			win[idx] = n.Key
		}
	}
	return win
}

func winString(win []string) string {
	s := ""
	for i, k := range win {
		if i > 0 {
			s += ","
		}
		s += k
	}
	return s
}

func spec3() query.Spec {
	return query.Spec{Collection: "s", Sort: []query.SortKey{{Path: "rank"}}, Limit: 3}
}

func TestSortBoltWindowBasics(t *testing.T) {
	h := newSortHarness(t, spec3(), 2)
	h.bootstrap("s1", 2, h.entry("a", 1), h.entry("b", 2), h.entry("c", 3), h.entry("d", 4), h.entry("e", 5))
	if got := h.drain(); len(got) != 0 {
		t.Fatalf("bootstrap must not notify: %v", got)
	}
	// Insert at the head: window a,b,c -> x,a,b, with c removed.
	h.delta(MatchAdd, "x", 0)
	notifs := h.drain()
	win := applyProtocol([]string{"a", "b", "c"}, notifs)
	if winString(win) != "x,a,b" {
		t.Fatalf("window after head insert = %s (notifs %v)", winString(win), notifs)
	}
	// Remove the head: slack absorbs it.
	h.delta(MatchRemove, "x", 0)
	win = applyProtocol(win, h.drain())
	if winString(win) != "a,b,c" {
		t.Fatalf("window after remove = %s", winString(win))
	}
}

func TestSortBoltMaintenanceErrorAfterSlackExhausted(t *testing.T) {
	h := newSortHarness(t, spec3(), 1)
	h.bootstrap("s1", 1, h.entry("a", 1), h.entry("b", 2), h.entry("c", 3), h.entry("d", 4))
	_ = h.drain()
	h.delta(MatchRemove, "a", 0) // slack absorbs: window b,c,d
	notifs := h.drain()
	win := applyProtocol([]string{"a", "b", "c"}, notifs)
	if winString(win) != "b,c,d" {
		t.Fatalf("after first remove: %s", winString(win))
	}
	// Slack is now empty; the next removal is unmaintainable.
	h.delta(MatchRemove, "b", 0)
	notifs = h.drain()
	if len(notifs) != 1 || notifs[0].Type != MatchError {
		t.Fatalf("expected a maintenance error, got %v", notifs)
	}
	if h.bolt.queries[h.hash].active {
		t.Fatal("query still active after maintenance error")
	}
}

// TestSortBoltPublishedWindowAcrossDoubleError is the regression test for
// the renewal protocol: deltas buffered during a renewal can re-trigger a
// maintenance error, and the eventual diff must still be relative to the
// subscribers' last known window.
func TestSortBoltPublishedWindowAcrossDoubleError(t *testing.T) {
	h := newSortHarness(t, spec3(), 1)
	h.bootstrap("s1", 1, h.entry("a", 1), h.entry("b", 2), h.entry("c", 3), h.entry("d", 4))
	_ = h.drain()
	clientWin := []string{"a", "b", "c"}

	h.delta(MatchRemove, "a", 0)
	clientWin = applyProtocol(clientWin, h.drain()) // b,c,d
	h.delta(MatchRemove, "b", 0)                    // error 1
	_ = h.drain()

	// Remember the versions d and e carried when the (stale) renewal
	// bootstrap was read, then let three more removals arrive while the
	// query awaits renewal: buffered.
	verD, verE := h.ver+10, h.ver+11 // versions the bootstrap read observed
	h.ver += 12
	h.delta(MatchRemove, "c", 0)
	h.delta(MatchRemove, "d", 0)
	h.delta(MatchRemove, "e", 0)

	// Renewal bootstrap, read by the server before the later removals
	// landed (its d/e versions predate the buffered deletes): applying the
	// buffered deltas (d and e leave a 4-entry state with only 2 entries,
	// below offset+limit) re-triggers the maintenance error, so subscribers
	// must see nothing but the error yet.
	h.bootstrap("s1", 1,
		h.entryV("d", 4, verD), h.entryV("e", 5, verE),
		h.entry("f", 6), h.entry("g", 7))
	notifs := h.drain()
	for _, n := range notifs {
		if n.Type != MatchError {
			t.Fatalf("expected only error notifications before a clean renewal, got %v", n.Type)
		}
	}
	if h.bolt.queries[h.hash].active {
		t.Fatal("query should await a second renewal")
	}

	// The second renewal reflects the final state; the diff must transform
	// the client's LAST window (b,c,d), not the node's internal state.
	h.bootstrap("s1", 1, h.entry("f", 6), h.entry("g", 7), h.entry("h", 8), h.entry("i", 9))
	clientWin = applyProtocol(clientWin, h.drain())
	if winString(clientWin) != "f,g,h" {
		t.Fatalf("client window after double-error renewal = %s, want f,g,h", winString(clientWin))
	}
}

func TestSortBoltStaleDeltaIgnored(t *testing.T) {
	h := newSortHarness(t, spec3(), 2)
	h.bootstrap("s1", 2, h.entry("a", 1), h.entry("b", 2))
	_ = h.drain()
	// A delta older than the entry's bootstrap version must be ignored.
	d := &deltaEvent{
		Tenant: "t", QueryID: QueryIDString(h.hash), Type: MatchRemove,
		Key: "a", Version: 1, // bootstrap versions are higher
	}
	h.bolt.handleDelta(d)
	if got := h.drain(); len(got) != 0 {
		t.Fatalf("stale delta produced notifications: %v", got)
	}
}

func TestSortBoltUnknownQueryDeltaIgnored(t *testing.T) {
	h := newSortHarness(t, spec3(), 2)
	d := &deltaEvent{Tenant: "t", QueryID: QueryIDString(12345), Type: MatchAdd,
		Key: "a", Version: 1, Doc: document.Document{"_id": "a", "rank": int64(1)}}
	h.bolt.handleDelta(d) // must not panic
	if got := h.drain(); len(got) != 0 {
		t.Fatalf("unknown-query delta notified: %v", got)
	}
}

func TestSortBoltCancelAndExpireDropState(t *testing.T) {
	h := newSortHarness(t, spec3(), 2)
	h.bootstrap("s1", 2, h.entry("a", 1))
	h.bootstrap("s2", 2, h.entry("a", 1))
	if len(h.bolt.queries) != 1 {
		t.Fatalf("queries = %d", len(h.bolt.queries))
	}
	// Cancelling one of two subscriptions keeps the state.
	h.bolt.handleCancel(&CancelRequest{Tenant: "t", SubscriptionID: "s1", QueryHash: h.hash})
	if len(h.bolt.queries) != 1 {
		t.Fatal("state dropped while a subscription remains")
	}
	// Expiry drops it outright.
	h.bolt.handleExpire(h.hash)
	if len(h.bolt.queries) != 0 {
		t.Fatal("state survived expiry")
	}
}

func TestSortBoltUnboundedQueryNeverErrors(t *testing.T) {
	h := newSortHarness(t, query.Spec{Collection: "s", Sort: []query.SortKey{{Path: "rank"}}}, 0)
	var entries []ResultEntry
	for i := 0; i < 10; i++ {
		entries = append(entries, h.entry(fmt.Sprintf("k%d", i), i))
	}
	h.bootstrap("s1", 0, entries...)
	_ = h.drain()
	for i := 0; i < 10; i++ {
		h.delta(MatchRemove, fmt.Sprintf("k%d", i), i)
	}
	for _, n := range h.drain() {
		if n.Type == MatchError {
			t.Fatal("unbounded sorted query raised a maintenance error")
		}
	}
	if sq := h.bolt.queries[h.hash]; len(sq.entries) != 0 || !sq.active {
		t.Fatalf("state after removals: %d entries active=%v", len(sq.entries), sq.active)
	}
}
