// Package core implements the InvaliDB cluster — the paper's primary
// contribution (§5): a real-time query matching layer with two-dimensional
// workload partitioning. Queries are hash-partitioned across query
// partitions (QP) and broadcast within them; after-images are
// hash-partitioned by primary key across write partitions (WP) and broadcast
// within them. Every matching node owns exactly one (QP, WP) grid cell and
// therefore matches a subset of all queries against a fraction of all
// writes. Unsorted filter queries complete in the filtering stage; sorted
// queries flow into a separate sorting stage partitioned by query
// (§5.2/SEDA). The cluster is reachable only through the event layer and is
// multi-tenant.
package core

import (
	"bytes"
	"encoding/json"
	"fmt"

	"invalidb/internal/document"
	"invalidb/internal/query"
)

// MatchType encodes the kind of result change a notification reports
// (paper §5: add, change, changeIndex, remove).
type MatchType uint8

const (
	// MatchAdd reports a new result member.
	MatchAdd MatchType = iota + 1
	// MatchChange reports an updated result member (same position).
	MatchChange
	// MatchChangeIndex reports an updated result member that changed its
	// position (sorted queries only).
	MatchChangeIndex
	// MatchRemove reports an item that left the result.
	MatchRemove
	// MatchError reports a query maintenance error; the notification doubles
	// as a query renewal request (§5.2).
	MatchError
)

var matchTypeNames = map[MatchType]string{
	MatchAdd:         "add",
	MatchChange:      "change",
	MatchChangeIndex: "changeIndex",
	MatchRemove:      "remove",
	MatchError:       "error",
}

// String returns the paper's name for the match type.
func (m MatchType) String() string {
	if s, ok := matchTypeNames[m]; ok {
		return s
	}
	return fmt.Sprintf("MatchType(%d)", uint8(m))
}

// MarshalJSON encodes the symbolic name.
func (m MatchType) MarshalJSON() ([]byte, error) {
	s, ok := matchTypeNames[m]
	if !ok {
		return nil, fmt.Errorf("core: invalid match type %d", uint8(m))
	}
	return json.Marshal(s)
}

// UnmarshalJSON decodes the symbolic name.
func (m *MatchType) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	for k, v := range matchTypeNames {
		if v == s {
			*m = k
			return nil
		}
	}
	return fmt.Errorf("core: unknown match type %q", s)
}

// ResultEntry is one versioned member of a bootstrap result, in engine sort
// order.
type ResultEntry struct {
	Key     string            `json:"k"`
	Version uint64            `json:"v"`
	Doc     document.Document `json:"d"`
}

// SubscribeRequest activates a real-time query. The application server has
// already executed the rewritten bootstrap query (offset removed, limit
// extended by offset+slack, §5.2) against the database; Result carries that
// bootstrap result. Re-subscribing an active query is a renewal: the sorting
// stage diffs old against new state and emits the incremental transition.
type SubscribeRequest struct {
	Tenant         string        `json:"tenant"`
	SubscriptionID string        `json:"sid"`
	Query          query.Spec    `json:"query"`
	Slack          int           `json:"slack,omitempty"`
	TTLMillis      int64         `json:"ttlMs"`
	Result         []ResultEntry `json:"result"`
	// Epoch stamps the partition-map epoch the sender routed by; zero means
	// "current". The owning node under the map at that epoch installs the
	// subscription (DESIGN.md §13).
	Epoch uint64 `json:"epoch,omitempty"`
}

// CancelRequest deactivates one subscription of a query. It carries the
// query hash remembered by the application server, because the hash cannot
// be derived from anything but the original subscription (§5.1).
type CancelRequest struct {
	Tenant         string `json:"tenant"`
	SubscriptionID string `json:"sid"`
	QueryHash      uint64 `json:"qh"`
	// Epoch addresses the cancel at the map epoch the subscription was
	// installed under, so a migration tears down the OLD owner's install
	// without touching the new one (zero = current epoch).
	Epoch uint64 `json:"epoch,omitempty"`
}

// ExtendRequest pushes a subscription's TTL deadline out (§5: "TTL extension
// requests are periodically issued by the application server").
type ExtendRequest struct {
	Tenant         string `json:"tenant"`
	SubscriptionID string `json:"sid"`
	QueryHash      uint64 `json:"qh"`
	TTLMillis      int64  `json:"ttlMs"`
	// Epoch is the sender's view of the map epoch (zero = current). Extends
	// are deliberately processed by the owner under the current AND previous
	// epoch, keeping the old install alive mid-migration.
	Epoch uint64 `json:"epoch,omitempty"`
}

// WriteEvent carries one after-image from an application server to the
// cluster.
type WriteEvent struct {
	Tenant string               `json:"tenant"`
	Image  *document.AfterImage `json:"img"`
	// SentNs is the publisher's wall clock (UnixNano) at send time; zero
	// when the publisher predates stage tracing. It seeds the per-stage
	// latency breakdown carried through to notifications.
	SentNs int64 `json:"sentNs,omitempty"`
	// IngestNs is stamped by the write-ingest bolt when the event enters
	// the matching grid. Local to the cluster process, never serialized.
	IngestNs int64 `json:"-"`
}

// Notification is one change delta for a query result, pushed from the
// cluster to all subscribed application servers over the tenant's
// notification topic.
type Notification struct {
	Tenant  string            `json:"tenant"`
	QueryID string            `json:"qid"`
	Type    MatchType         `json:"type"`
	Key     string            `json:"key,omitempty"`
	Doc     document.Document `json:"doc,omitempty"`
	Version uint64            `json:"ver,omitempty"`
	// Index is the item's position within the visible result for sorted
	// queries, -1 for unsorted queries.
	Index int `json:"idx"`
	// Seq orders notifications emitted for the same query by the same node.
	Seq uint64 `json:"seq"`
	// Origin identifies the emitting node instance ("m3.0" = matching
	// task 3, incarnation 0). Together with Seq it lets application
	// servers deduplicate redelivered notifications without mistaking a
	// restarted node's reset sequence counter for stale duplicates.
	Origin string `json:"org,omitempty"`
	// Error carries the maintenance-error message for MatchError
	// notifications, which double as query renewal requests.
	Error string `json:"err,omitempty"`
	// WriteNs/IngestNs/MatchNs are the stage timestamps (UnixNano) of the
	// originating write: publisher send time, write-ingest entry, and
	// matching-node emit. Zero for notifications not caused by a traced
	// write (bootstrap diffs, resync replays). Receivers subtract
	// adjacent stamps for the per-stage latency Breakdown; cross-node
	// skew can make individual stages negative.
	WriteNs  int64 `json:"wNs,omitempty"`
	IngestNs int64 `json:"iNs,omitempty"`
	MatchNs  int64 `json:"mNs,omitempty"`
}

// Backfill watermark phases and certificate statuses (DESIGN.md §12).
const (
	// BackfillPhaseLow marks the start of a chunk's watermark window.
	BackfillPhaseLow = "low"
	// BackfillPhaseHigh marks the end of a chunk's watermark window.
	BackfillPhaseHigh = "high"
	// BackfillStatusOK certifies a reconciled chunk.
	BackfillStatusOK = "ok"
	// BackfillStatusRestart tells the application server the owning matching
	// node restarted mid-backfill and the backfill must start over.
	BackfillStatusRestart = "restart"
)

// BackfillStart activates a subscription in backfill mode: the matching
// cells install the query with an empty tracked set and start applying live
// deltas immediately, while the application server streams the initial
// result in watermark-delimited chunks (BackfillChunk). The subscription is
// admitted client-side only once every chunk has been certified by every
// cell of the query's grid row.
type BackfillStart struct {
	Tenant         string     `json:"tenant"`
	SubscriptionID string     `json:"sid"`
	// BackfillID distinguishes concurrent and restarted backfills of the
	// same subscription; certificates echo it.
	BackfillID string     `json:"bfid"`
	Query      query.Spec `json:"query"`
	Slack      int        `json:"slack,omitempty"`
	TTLMillis  int64      `json:"ttlMs"`
	// Epoch routes the backfill at a specific map epoch (zero = current);
	// migrations stamp the NEW epoch so the new owner bootstraps.
	Epoch uint64 `json:"epoch,omitempty"`
}

// BackfillChunk carries one chunk of a subscription's initial result, read
// from the store between the low and high watermarks (DBLog's virtual cut).
// Matching cells reconcile the chunk against writes observed inside the
// (Low, High) window — in-window deltas supersede chunk rows — and publish a
// BackfillCert when the cut is certified.
type BackfillChunk struct {
	Tenant         string `json:"tenant"`
	SubscriptionID string `json:"sid"`
	BackfillID     string `json:"bfid"`
	QueryHash      uint64 `json:"qh"`
	// Chunk is the zero-based chunk index within the backfill.
	Chunk int `json:"chunk"`
	// Low and High are the watermark sequence numbers bracketing the chunk
	// read; record versions draw from the same allocator, so any write that
	// raced the read has a version strictly inside the window.
	Low  uint64 `json:"low"`
	High uint64 `json:"high"`
	// Last marks the final chunk of the backfill.
	Last    bool          `json:"last,omitempty"`
	Entries []ResultEntry `json:"entries"`
	// Epoch routes the chunk at the same map epoch as its BackfillStart.
	Epoch uint64 `json:"epoch,omitempty"`
}

// BackfillMark travels the writes topic — in stream order with the
// after-images it brackets — announcing that watermark Seq was emitted into
// the oplog. Write ingestion flushes its pending batches and broadcasts the
// mark to every matching cell, so a cell that has seen a chunk's high mark
// has also processed every write committed before it.
type BackfillMark struct {
	Tenant     string `json:"tenant"`
	BackfillID string `json:"bfid"`
	Chunk      int    `json:"chunk"`
	// Phase is BackfillPhaseLow or BackfillPhaseHigh.
	Phase string `json:"phase"`
	// Seq is the watermark's global sequence number.
	Seq uint64 `json:"seq"`
}

// BackfillCert is published on the tenant's notify topic by a matching cell
// after reconciling a chunk (Status "ok"), or by query ingestion when a cell
// of an in-flight backfill restarted and lost its window state (Status
// "restart", Chunk -1). The application server admits the subscription once
// it holds ok-certificates from all Cells distinct cells for every chunk.
type BackfillCert struct {
	Tenant         string `json:"tenant"`
	SubscriptionID string `json:"sid"`
	BackfillID     string `json:"bfid"`
	QueryID        string `json:"qid"`
	// Chunk echoes the certified chunk index; -1 for restart certificates.
	Chunk int `json:"chunk"`
	// Cell is the certifying cell's write-partition index; Cells is the row
	// width, so the receiver knows how many distinct certificates complete a
	// chunk.
	Cell  int  `json:"cell"`
	Cells int  `json:"cells"`
	Last  bool `json:"last,omitempty"`
	// Origin identifies the certifying node instance, like
	// Notification.Origin.
	Origin string `json:"org,omitempty"`
	// Status is BackfillStatusOK or BackfillStatusRestart.
	Status string `json:"status"`
}

// ResyncRequest asks the cluster to re-broadcast active subscription state
// to a restarted task. It is published cluster-internally on the queries
// topic by the supervisor's restart hook; the query-ingest stage answers it
// from its subscription registry (§5.1: failed matching nodes recover their
// query set from their peers' registries).
type ResyncRequest struct {
	// Component is the topology component that restarted ("match",
	// "sort", ...).
	Component string `json:"comp"`
	// TaskID is the restarted task's index within the component.
	TaskID int `json:"task"`
}

// Resize axes accepted by ResizeRequest.
const (
	// ResizeAxisQP asks the coordinator for one more query-partition row.
	ResizeAxisQP = "qp"
	// ResizeAxisWP asks the coordinator for one more write-partition column.
	ResizeAxisWP = "wp"
)

// NodeHello is a server process's periodic announcement on the coordinator
// topic: its identity, capacity (local grid slots and column headroom), and
// the highest-epoch partition map it has installed. The map makes the
// coordinator crash-recoverable — a replacement coordinator adopts the
// highest epoch its nodes report instead of restarting from epoch 1.
type NodeHello struct {
	Node string `json:"node"`
	// Slots is the number of local query-partition rows the process runs.
	Slots int `json:"slots"`
	// MaxWritePartitions is the process's column capacity — the ceiling on
	// any map's WritePartitions it can serve.
	MaxWritePartitions int `json:"maxWp"`
	// Map is the highest-epoch partition map the node holds, if any.
	Map *PartitionMap `json:"map,omitempty"`
}

// ResizeRequest asks the coordinator to grow the grid by one partition
// along the given axis ("qp" or "wp"). Published on the coordinator topic
// by operators (cmd/invalidb-coordinator -resize) or tests.
type ResizeRequest struct {
	Axis string `json:"axis"`
}

// EpochAck is a node's confirmation that it installed a partition map
// epoch; the coordinator uses it to track convergence of a resize.
type EpochAck struct {
	Node  string `json:"node"`
	Epoch uint64 `json:"epoch"`
}

// Heartbeat is periodically published on every tenant's notification topic;
// application servers terminate subscriptions when heartbeats stop (§5.1).
type Heartbeat struct {
	Tenant     string `json:"tenant"`
	TimeMillis int64  `json:"ts"`
}

// Envelope is the single wire format of the event layer: exactly one field
// besides Kind is set.
type Envelope struct {
	Kind          string            `json:"kind"`
	Subscribe     *SubscribeRequest `json:"sub,omitempty"`
	Cancel        *CancelRequest    `json:"cancel,omitempty"`
	Extend        *ExtendRequest    `json:"extend,omitempty"`
	Write         *WriteEvent       `json:"write,omitempty"`
	Notification  *Notification     `json:"notif,omitempty"`
	Heartbeat     *Heartbeat        `json:"hb,omitempty"`
	Resync        *ResyncRequest    `json:"resync,omitempty"`
	BackfillStart *BackfillStart    `json:"bfs,omitempty"`
	BackfillChunk *BackfillChunk    `json:"bfc,omitempty"`
	BackfillMark  *BackfillMark     `json:"bfm,omitempty"`
	BackfillCert  *BackfillCert     `json:"bfcert,omitempty"`
	Map           *PartitionMap     `json:"map,omitempty"`
	Hello         *NodeHello        `json:"hello,omitempty"`
	Resize        *ResizeRequest    `json:"resize,omitempty"`
	EpochAck      *EpochAck         `json:"ack,omitempty"`
}

// Envelope kinds.
const (
	KindSubscribe     = "subscribe"
	KindCancel        = "cancel"
	KindExtend        = "extend"
	KindWrite         = "write"
	KindNotification  = "notification"
	KindHeartbeat     = "heartbeat"
	KindResync        = "resync"
	KindBackfillStart = "backfillStart"
	KindBackfillChunk = "backfillChunk"
	KindBackfillMark  = "backfillMark"
	KindBackfillCert  = "backfillCert"
	KindPartitionMap  = "partitionMap"
	KindNodeHello     = "nodeHello"
	KindResize        = "resize"
	KindEpochAck      = "epochAck"
)

// Encode serializes an envelope for the event layer in the process-wide
// wire format (binary by default; see SetWireFormat).
func (e *Envelope) Encode() ([]byte, error) {
	if wireFormatJSON.Load() {
		return e.EncodeJSON()
	}
	return e.EncodeBinary()
}

// EncodeJSON serializes the envelope as JSON — the legacy wire format,
// still accepted by every decoder for mixed-version interoperability.
func (e *Envelope) EncodeJSON() ([]byte, error) {
	b, err := json.Marshal(e)
	if err != nil {
		return nil, fmt.Errorf("core: encode %s envelope: %w", e.Kind, err)
	}
	if tag := wireKindTag(e.Kind); tag != 0 {
		countWire(&wireStats.encMsgs, &wireStats.encBytes, tag, len(b))
	}
	return b, nil
}

// DecodeEnvelope parses an envelope and validates that its kind matches the
// populated payload. Both wire formats are accepted: binary envelopes are
// recognized by their leading magic byte, anything else (legacy JSON starts
// with '{') falls through to the JSON decoder.
func DecodeEnvelope(data []byte) (*Envelope, error) {
	return DecodeWire(data)
}

// DecodeWire parses an envelope in either wire format, auto-detected from
// the first byte. Both paths apply the same per-kind validation, so a
// decoded envelope always re-encodes cleanly in both formats.
//
//invalidb:hotpath
func DecodeWire(data []byte) (*Envelope, error) {
	if len(data) > 0 && data[0] == wireMagic {
		return decodeBinaryEnvelope(data)
	}
	//invalidb:allow hotpathalloc the JSON fallback format allocates wholesale by design; binary is the hot format
	return decodeJSONEnvelope(data)
}

func decodeJSONEnvelope(data []byte) (*Envelope, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	var e Envelope
	if err := dec.Decode(&e); err != nil {
		return nil, fmt.Errorf("core: decode envelope: %w", err)
	}
	// Rebuild the envelope with only the payload matching its kind, so the
	// "exactly one field besides Kind" invariant holds even for input that
	// carried extra payload fields.
	clean := Envelope{Kind: e.Kind}
	var ok bool
	switch e.Kind {
	case KindSubscribe:
		ok = e.Subscribe != nil
		if ok {
			for i := range e.Subscribe.Result {
				e.Subscribe.Result[i].Doc = document.Normalize(e.Subscribe.Result[i].Doc)
			}
			e.Subscribe.Query.Filter = normalizeFilter(e.Subscribe.Query.Filter)
			clean.Subscribe = e.Subscribe
		}
	case KindCancel:
		ok = e.Cancel != nil
		clean.Cancel = e.Cancel
	case KindExtend:
		ok = e.Extend != nil
		clean.Extend = e.Extend
	case KindWrite:
		ok = e.Write != nil && e.Write.Image != nil
		if ok {
			if e.Write.Image.Doc != nil {
				e.Write.Image.Doc = document.Normalize(e.Write.Image.Doc)
			}
			if err := e.Write.Image.Validate(); err != nil {
				return nil, err
			}
			clean.Write = e.Write
		}
	case KindNotification:
		ok = e.Notification != nil
		if ok {
			if e.Notification.Type < MatchAdd || e.Notification.Type > MatchError {
				return nil, fmt.Errorf("core: notification with invalid match type %d", uint8(e.Notification.Type))
			}
			if e.Notification.Doc != nil {
				e.Notification.Doc = document.Normalize(e.Notification.Doc)
			}
			clean.Notification = e.Notification
		}
	case KindHeartbeat:
		ok = e.Heartbeat != nil
		clean.Heartbeat = e.Heartbeat
	case KindResync:
		ok = e.Resync != nil
		clean.Resync = e.Resync
	case KindBackfillStart:
		ok = e.BackfillStart != nil
		if ok {
			e.BackfillStart.Query.Filter = normalizeFilter(e.BackfillStart.Query.Filter)
			clean.BackfillStart = e.BackfillStart
		}
	case KindBackfillChunk:
		ok = e.BackfillChunk != nil
		if ok {
			for i := range e.BackfillChunk.Entries {
				e.BackfillChunk.Entries[i].Doc = document.Normalize(e.BackfillChunk.Entries[i].Doc)
			}
			clean.BackfillChunk = e.BackfillChunk
		}
	case KindBackfillMark:
		ok = e.BackfillMark != nil
		if ok {
			if p := e.BackfillMark.Phase; p != BackfillPhaseLow && p != BackfillPhaseHigh {
				return nil, fmt.Errorf("core: backfill mark with invalid phase %q", p)
			}
			clean.BackfillMark = e.BackfillMark
		}
	case KindBackfillCert:
		ok = e.BackfillCert != nil
		if ok {
			if s := e.BackfillCert.Status; s != BackfillStatusOK && s != BackfillStatusRestart {
				return nil, fmt.Errorf("core: backfill cert with invalid status %q", s)
			}
			clean.BackfillCert = e.BackfillCert
		}
	case KindPartitionMap:
		ok = e.Map != nil
		if ok {
			if err := e.Map.validate(); err != nil {
				return nil, err
			}
			clean.Map = e.Map
		}
	case KindNodeHello:
		ok = e.Hello != nil
		if ok {
			if e.Hello.Map != nil {
				if err := e.Hello.Map.validate(); err != nil {
					return nil, err
				}
			}
			clean.Hello = e.Hello
		}
	case KindResize:
		ok = e.Resize != nil
		if ok {
			if a := e.Resize.Axis; a != ResizeAxisQP && a != ResizeAxisWP {
				return nil, fmt.Errorf("core: resize request with invalid axis %q", a)
			}
			clean.Resize = e.Resize
		}
	case KindEpochAck:
		ok = e.EpochAck != nil
		clean.EpochAck = e.EpochAck
	default:
		return nil, fmt.Errorf("core: unknown envelope kind %q", e.Kind)
	}
	if !ok {
		return nil, fmt.Errorf("core: %s envelope without payload", e.Kind)
	}
	if tag := wireKindTag(clean.Kind); tag != 0 {
		countWire(&wireStats.decMsgs, &wireStats.decBytes, tag, len(data))
	}
	return &clean, nil
}

func normalizeFilter(f map[string]any) map[string]any {
	if f == nil {
		return nil
	}
	return map[string]any(document.Normalize(document.Document(f)))
}

// Topics used on the event layer, namespaced per cluster.
type Topics struct {
	ns string
}

// NewTopics creates the topic scheme for a cluster namespace (default
// "invalidb").
func NewTopics(namespace string) Topics {
	if namespace == "" {
		namespace = "invalidb"
	}
	return Topics{ns: namespace}
}

// Queries is the topic application servers publish subscription control
// messages to.
func (t Topics) Queries() string { return t.ns + ".queries" }

// Writes is the topic application servers publish after-images to.
func (t Topics) Writes() string { return t.ns + ".writes" }

// Notify is the per-tenant topic the cluster publishes notifications and
// heartbeats on.
func (t Topics) Notify(tenant string) string { return t.ns + ".notify." + tenant }

// Control is the topic the coordinator publishes partition maps on. The
// ".control" suffix makes it a retained topic: the event layer redelivers
// the last map to late subscribers, so a restarting server process learns
// the current epoch without waiting for the next periodic republish.
func (t Topics) Control() string { return t.ns + ".control" }

// Coord is the topic server processes and operators publish to the
// coordinator on: node hellos, epoch acks, and resize requests.
func (t Topics) Coord() string { return t.ns + ".coord" }

// QueryIDString formats a query hash as the public query identifier.
func QueryIDString(hash uint64) string { return fmt.Sprintf("q%016x", hash) }
