package core

import (
	"sort"
	"strings"

	"invalidb/internal/document"
	"invalidb/internal/geo"
	"invalidb/internal/query"
)

// queryIndex is the matching node's multi-query optimization: instead of
// evaluating every after-image against every registered query, each query is
// registered under the most selective *necessary* condition its filter
// exposes (query.IndexableConstraints), and a write only probes the queries
// whose condition the written document could satisfy. Four index families
// cover the common predicate shapes, echoing the per-predicate index lists
// of distributed spatio-textual pub/sub systems (Chen et al.):
//
//   - interval trees for numeric range constraints (the paper's evaluation
//     workload, `random >= i AND random < j`),
//   - a hash index for scalar equality ({field: value}, $in),
//   - a grid-cell index for $geoWithin/$nearSphere shapes (internal/geo
//     cells at a fixed resolution → query postings),
//   - an inverted token index for $text term queries.
//
// The families are grouped into per-(tenant, collection) buckets so a write
// probes only its own collection's indexes; the bucket key is a slice of the
// write's interned composite key, so the probe performs no per-write key
// construction. On top of the bucket probe, every write also visits
//
//   - the queries currently tracking the written key (their matching status
//     can only *end*, which no necessary condition can rule out), and
//   - the residual queries with no extractable constraint.
//
// Correctness: an indexed constraint is necessary for matching, so any query
// not in the candidate set neither matches the new image nor tracked the old
// one — its result cannot change. See DESIGN.md §11.
type queryIndex struct {
	// buckets: tenant\x00collection -> that collection's index families.
	buckets map[string]*collectionIndex
	// unindexed queries are probed on every write.
	unindexed map[uint64]*matchQuery
	// trackers: composite record key -> queries currently tracking it.
	trackers map[string]map[uint64]*matchQuery
	// byQuery remembers where each indexed query was registered.
	byQuery map[uint64]indexedAt
	// tokBuf is the reusable lowercase-token buffer of the text probe.
	tokBuf []byte
	// rangeMin/rangeMax/rangeAny accumulate the numeric extent of one
	// probed path across every array branch (see accumRangePath).
	rangeMin, rangeMax float64
	rangeAny           bool
}

// collectionIndex holds one (tenant, collection)'s index families. size
// counts the queries registered across all families, so empty buckets can be
// dropped.
type collectionIndex struct {
	// trees: field path -> interval tree over numeric range constraints.
	trees map[string]*intervalTree
	// eq: field path -> scalar value -> queries requiring that value.
	eq map[string]map[eqValue]map[uint64]*matchQuery
	// geo: field path -> grid cell -> queries whose shape's bound covers it.
	geo map[string]map[uint64]map[uint64]*matchQuery
	// text: token -> queries requiring (at least) that token.
	text map[string]map[uint64]*matchQuery
	size int
}

// indexedAt records a query's registration for O(1) removal.
type indexedAt struct {
	bucket string
	c      query.Constraint
	eqVals []eqValue // ConstraintEquality: the hash keys registered
	cells  []uint64  // ConstraintGeo: the cells registered
}

// eqValue is the equality index's hash key: a scalar normalized so that
// values document.Compare would equate collide (int64 3 and float64 3.0 both
// key as num 3). Bools key separately — they are their own type bracket.
type eqValue struct {
	kind uint8 // eqKindStr | eqKindNum | eqKindBool
	str  string
	num  float64
}

const (
	eqKindStr uint8 = iota
	eqKindNum
	eqKindBool
)

// geoCellDeg is the grid resolution (degrees per cell). At 0.1° a cell is
// ~11km at the equator — fine enough that city-scale query shapes cover a
// handful of cells, coarse enough that country-scale shapes stay under the
// cell cap.
const geoCellDeg = 0.1

// maxGeoCells caps the postings one geo query may occupy. Shapes covering
// more cells fall through to the query's next constraint (or unindexed):
// a near-worldwide query gains nothing from cell postings.
const maxGeoCells = 4096

func newQueryIndex() *queryIndex {
	return &queryIndex{
		buckets:   map[string]*collectionIndex{},
		unindexed: map[uint64]*matchQuery{},
		trackers:  map[string]map[uint64]*matchQuery{},
		byQuery:   map[uint64]indexedAt{},
		tokBuf:    make([]byte, 0, 64),
	}
}

func bucketKey(tenant, collection string) string {
	return tenant + "\x00" + collection
}

// add registers a query under the most selective of its indexable
// constraints; queries with none are probed on every write.
func (qi *queryIndex) add(mq *matchQuery) {
	bkey := bucketKey(mq.tenant, mq.q.Collection)
	for _, c := range mq.q.IndexableConstraints() {
		if qi.tryIndex(bkey, c, mq) {
			return
		}
	}
	qi.unindexed[mq.hash] = mq
}

// tryIndex attempts to register mq under one constraint. It returns false
// when the constraint cannot be served (currently only a geo bound covering
// more than maxGeoCells cells), letting add fall through to the next one.
func (qi *queryIndex) tryIndex(bkey string, c query.Constraint, mq *matchQuery) bool {
	at := indexedAt{bucket: bkey, c: c}
	switch c.Kind {
	case query.ConstraintGeo:
		cells, ok := geo.CoverCells(c.Bound, geoCellDeg, maxGeoCells, nil)
		if !ok {
			return false
		}
		b := qi.bucket(bkey)
		byCell := b.geo[c.Path]
		if byCell == nil {
			byCell = map[uint64]map[uint64]*matchQuery{}
			b.geo[c.Path] = byCell
		}
		for _, cell := range cells {
			set := byCell[cell]
			if set == nil {
				set = map[uint64]*matchQuery{}
				byCell[cell] = set
			}
			set[mq.hash] = mq
		}
		at.cells = cells
	case query.ConstraintEquality:
		vals := make([]eqValue, 0, len(c.Values))
		for _, v := range c.Values {
			ev, ok := constraintEqValue(v)
			if !ok {
				return false // extraction only emits convertible scalars
			}
			vals = append(vals, ev)
		}
		b := qi.bucket(bkey)
		byVal := b.eq[c.Path]
		if byVal == nil {
			byVal = map[eqValue]map[uint64]*matchQuery{}
			b.eq[c.Path] = byVal
		}
		for _, ev := range vals {
			set := byVal[ev]
			if set == nil {
				set = map[uint64]*matchQuery{}
				byVal[ev] = set
			}
			set[mq.hash] = mq
		}
		at.eqVals = vals
	case query.ConstraintText:
		b := qi.bucket(bkey)
		for _, tok := range c.Tokens {
			set := b.text[tok]
			if set == nil {
				set = map[uint64]*matchQuery{}
				b.text[tok] = set
			}
			set[mq.hash] = mq
		}
	case query.ConstraintInterval:
		b := qi.bucket(bkey)
		tree := b.trees[c.Path]
		if tree == nil {
			tree = &intervalTree{}
			b.trees[c.Path] = tree
		}
		tree.insert(c.Interval, mq)
	default:
		return false
	}
	qi.bucket(bkey).size++
	qi.byQuery[mq.hash] = at
	return true
}

func (qi *queryIndex) bucket(bkey string) *collectionIndex {
	b := qi.buckets[bkey]
	if b == nil {
		b = &collectionIndex{
			trees: map[string]*intervalTree{},
			eq:    map[string]map[eqValue]map[uint64]*matchQuery{},
			geo:   map[string]map[uint64]map[uint64]*matchQuery{},
			text:  map[string]map[uint64]*matchQuery{},
		}
		qi.buckets[bkey] = b
	}
	return b
}

// constraintEqValue converts an extraction-normalized scalar (string, bool,
// float64) to its hash key.
func constraintEqValue(v any) (eqValue, bool) {
	switch t := v.(type) {
	case string:
		return eqValue{kind: eqKindStr, str: t}, true
	case bool:
		ev := eqValue{kind: eqKindBool}
		if t {
			ev.num = 1
		}
		return ev, true
	case float64:
		return eqValue{kind: eqKindNum, num: t}, true
	case int64: // defensive: extraction normalizes, but accept raw int64 too
		return eqValue{kind: eqKindNum, num: float64(t)}, true
	default:
		return eqValue{}, false
	}
}

// docEqValue converts a document leaf value to its equality hash key.
//
//invalidb:hotpath
func docEqValue(v any) (eqValue, bool) {
	switch t := v.(type) {
	case string:
		return eqValue{kind: eqKindStr, str: t}, true
	case int64:
		return eqValue{kind: eqKindNum, num: float64(t)}, true
	case float64:
		return eqValue{kind: eqKindNum, num: t}, true
	case bool:
		ev := eqValue{kind: eqKindBool}
		if t {
			ev.num = 1
		}
		return ev, true
	default:
		return eqValue{}, false
	}
}

// remove deregisters a query and its tracker entries. The byQuery record
// makes this O(registration size); the query's own tracked-key set makes the
// tracker cleanup O(keys tracked by this query).
func (qi *queryIndex) remove(mq *matchQuery) {
	if at, ok := qi.byQuery[mq.hash]; ok {
		delete(qi.byQuery, mq.hash)
		if b := qi.buckets[at.bucket]; b != nil {
			switch at.c.Kind {
			case query.ConstraintGeo:
				if byCell := b.geo[at.c.Path]; byCell != nil {
					for _, cell := range at.cells {
						if set := byCell[cell]; set != nil {
							delete(set, mq.hash)
							if len(set) == 0 {
								delete(byCell, cell)
							}
						}
					}
					if len(byCell) == 0 {
						delete(b.geo, at.c.Path)
					}
				}
			case query.ConstraintEquality:
				if byVal := b.eq[at.c.Path]; byVal != nil {
					for _, ev := range at.eqVals {
						if set := byVal[ev]; set != nil {
							delete(set, mq.hash)
							if len(set) == 0 {
								delete(byVal, ev)
							}
						}
					}
					if len(byVal) == 0 {
						delete(b.eq, at.c.Path)
					}
				}
			case query.ConstraintText:
				for _, tok := range at.c.Tokens {
					if set := b.text[tok]; set != nil {
						delete(set, mq.hash)
						if len(set) == 0 {
							delete(b.text, tok)
						}
					}
				}
			case query.ConstraintInterval:
				if tree := b.trees[at.c.Path]; tree != nil {
					tree.remove(mq.hash)
					if tree.size == 0 {
						delete(b.trees, at.c.Path)
					}
				}
			}
			b.size--
			if b.size == 0 {
				delete(qi.buckets, at.bucket)
			}
		}
	}
	delete(qi.unindexed, mq.hash)
	for ck := range mq.trackedCK {
		if set := qi.trackers[ck]; set != nil {
			delete(set, mq.hash)
			if len(set) == 0 {
				delete(qi.trackers, ck)
			}
		}
	}
	mq.trackedCK = nil
}

// registered returns the number of queries held in bucket indexes (tests).
func (qi *queryIndex) registered() int {
	n := 0
	for _, b := range qi.buckets {
		n += b.size
	}
	return n
}

// track records that a query's result partition now contains the record.
func (qi *queryIndex) track(ck string, mq *matchQuery) {
	set := qi.trackers[ck]
	if set == nil {
		set = map[uint64]*matchQuery{}
		qi.trackers[ck] = set
	}
	set[mq.hash] = mq
	if mq.trackedCK == nil {
		mq.trackedCK = map[string]struct{}{}
	}
	mq.trackedCK[ck] = struct{}{}
}

// untrack removes a tracker entry.
func (qi *queryIndex) untrack(ck string, mq *matchQuery) {
	if set := qi.trackers[ck]; set != nil {
		delete(set, mq.hash)
		if len(set) == 0 {
			delete(qi.trackers, ck)
		}
	}
	delete(mq.trackedCK, ck)
}

// candidates collects every query whose result could change with this
// after-image into a freshly allocated map (convenience wrapper used by
// tests; the hot path passes a reusable scratch map to candidatesInto).
func (qi *queryIndex) candidates(we *WriteEvent, ck string) map[uint64]*matchQuery {
	return qi.candidatesInto(we, ck, map[uint64]*matchQuery{})
}

// candidatesInto fills out with every candidate query, keyed by query hash,
// and returns it. The caller owns (and clears) the scratch map, so the
// per-write probe allocates nothing once the map has grown to steady state.
//
//invalidb:hotpath
func (qi *queryIndex) candidatesInto(we *WriteEvent, ck string, out map[uint64]*matchQuery) map[uint64]*matchQuery {
	for h, mq := range qi.unindexed {
		out[h] = mq
	}
	for h, mq := range qi.trackers[ck] {
		out[h] = mq
	}
	img := we.Image
	if img.Doc == nil || len(ck) < len(img.Key)+2 {
		return out
	}
	// ck is the interned tenant\x00collection\x00key composite, so the
	// tenant\x00collection bucket key is a slice of it — no per-write key
	// construction, and no scan over other collections' indexes.
	b := qi.buckets[ck[:len(ck)-len(img.Key)-1]]
	if b == nil {
		return out
	}
	for path, tree := range b.trees {
		// Numeric constraints are probed with the *extent* of the path's
		// values, not per value: with an array field, {$gte: a, $lt: b} can
		// be satisfied by two different elements, so the sound necessary
		// condition is that the query interval overlaps [min, max] of the
		// reachable values (exactly a point stab when the field is scalar).
		qi.rangeAny = false
		qi.accumRangePath(img.Doc, path)
		if qi.rangeAny {
			tree.stabRange(qi.rangeMin, qi.rangeMax, out)
		}
	}
	for path, byVal := range b.eq {
		probeEqualityPath(img.Doc, path, byVal, out)
	}
	for path, byCell := range b.geo {
		probeGeoPath(img.Doc, path, byCell, out)
	}
	if len(b.text) > 0 {
		qi.probeTextValue(map[string]any(img.Doc), b.text, out)
	}
	return out
}

// The path walkers below mirror document.Lookup's traversal — numeric
// segments index arrays positionally, non-numeric segments fan out over
// array elements — without its allocations (Lookup splits the path and
// builds value slices per call; the walkers slice the path in place and
// visit leaves directly). At a leaf they apply MongoDB's implicit array
// semantics: the value itself and, when it is an array, each element.

// splitSeg cuts the first dotted segment off a path.
//
//invalidb:hotpath
func splitSeg(path string) (seg, rest string) {
	if i := strings.IndexByte(path, '.'); i >= 0 {
		return path[:i], path[i+1:]
	}
	return path, ""
}

// segIndex parses a path segment as a non-negative array index, mirroring
// document's positional-lookup rule.
//
//invalidb:hotpath
func segIndex(seg string) (int, bool) {
	if seg == "" {
		return 0, false
	}
	n := 0
	for i := 0; i < len(seg); i++ {
		c := seg[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
	}
	return n, true
}

// accumRangePath widens qi.rangeMin/rangeMax with every numeric value the
// path reaches (across all array branches and leaf array elements), so the
// caller can run one interval-overlap query against the whole extent.
//
//invalidb:hotpath
func (qi *queryIndex) accumRangePath(cur any, path string) {
	if path == "" {
		qi.accumRangeValue(cur)
		if arr, ok := cur.([]any); ok {
			for _, e := range arr {
				qi.accumRangeValue(e)
			}
		}
		return
	}
	seg, rest := splitSeg(path)
	switch t := cur.(type) {
	case map[string]any:
		if v, ok := t[seg]; ok {
			qi.accumRangePath(v, rest)
		}
	case document.Document:
		if v, ok := t[seg]; ok {
			qi.accumRangePath(v, rest)
		}
	case []any:
		if idx, ok := segIndex(seg); ok {
			if idx < len(t) {
				qi.accumRangePath(t[idx], rest)
			}
			return
		}
		for _, e := range t {
			qi.accumRangePath(e, path)
		}
	}
}

//invalidb:hotpath
func (qi *queryIndex) accumRangeValue(v any) {
	var f float64
	switch t := v.(type) {
	case int64:
		f = float64(t)
	case float64:
		f = t
	default:
		return
	}
	if !qi.rangeAny {
		qi.rangeMin, qi.rangeMax, qi.rangeAny = f, f, true
		return
	}
	if f < qi.rangeMin {
		qi.rangeMin = f
	}
	if f > qi.rangeMax {
		qi.rangeMax = f
	}
}

//invalidb:hotpath
func probeEqualityPath(cur any, path string, byVal map[eqValue]map[uint64]*matchQuery, out map[uint64]*matchQuery) {
	if path == "" {
		probeEqualityLeaf(cur, byVal, out)
		if arr, ok := cur.([]any); ok {
			for _, e := range arr {
				probeEqualityLeaf(e, byVal, out)
			}
		}
		return
	}
	seg, rest := splitSeg(path)
	switch t := cur.(type) {
	case map[string]any:
		if v, ok := t[seg]; ok {
			probeEqualityPath(v, rest, byVal, out)
		}
	case document.Document:
		if v, ok := t[seg]; ok {
			probeEqualityPath(v, rest, byVal, out)
		}
	case []any:
		if idx, ok := segIndex(seg); ok {
			if idx < len(t) {
				probeEqualityPath(t[idx], rest, byVal, out)
			}
			return
		}
		for _, e := range t {
			probeEqualityPath(e, path, byVal, out)
		}
	}
}

//invalidb:hotpath
func probeEqualityLeaf(v any, byVal map[eqValue]map[uint64]*matchQuery, out map[uint64]*matchQuery) {
	ev, ok := docEqValue(v)
	if !ok {
		return
	}
	for h, mq := range byVal[ev] {
		out[h] = mq
	}
}

//invalidb:hotpath
func probeGeoPath(cur any, path string, byCell map[uint64]map[uint64]*matchQuery, out map[uint64]*matchQuery) {
	if path == "" {
		// A leaf is a point, or an array of points ($geoWithin's array form).
		// ParsePoint itself understands the [lng, lat] array form, so try the
		// value first and only then fan out.
		if pt, ok := geo.ParsePoint(cur); ok {
			probeGeoCell(pt, byCell, out)
			return
		}
		if arr, ok := cur.([]any); ok {
			for _, e := range arr {
				if pt, ok := geo.ParsePoint(e); ok {
					probeGeoCell(pt, byCell, out)
				}
			}
		}
		return
	}
	seg, rest := splitSeg(path)
	switch t := cur.(type) {
	case map[string]any:
		if v, ok := t[seg]; ok {
			probeGeoPath(v, rest, byCell, out)
		}
	case document.Document:
		if v, ok := t[seg]; ok {
			probeGeoPath(v, rest, byCell, out)
		}
	case []any:
		if idx, ok := segIndex(seg); ok {
			if idx < len(t) {
				probeGeoPath(t[idx], rest, byCell, out)
			}
			return
		}
		for _, e := range t {
			probeGeoPath(e, path, byCell, out)
		}
	}
}

//invalidb:hotpath
func probeGeoCell(pt geo.Point, byCell map[uint64]map[uint64]*matchQuery, out map[uint64]*matchQuery) {
	for h, mq := range byCell[geo.CellID(pt, geoCellDeg)] {
		out[h] = mq
	}
}

// probeTextValue walks every value of the document (the $text operator spans
// all string fields) and probes the token postings for each word.
//
//invalidb:hotpath
func (qi *queryIndex) probeTextValue(v any, idx map[string]map[uint64]*matchQuery, out map[uint64]*matchQuery) {
	switch t := v.(type) {
	case string:
		qi.probeTokens(t, idx, out)
	case map[string]any:
		for _, e := range t {
			qi.probeTextValue(e, idx, out)
		}
	case document.Document:
		for _, e := range t {
			qi.probeTextValue(e, idx, out)
		}
	case []any:
		for _, e := range t {
			qi.probeTextValue(e, idx, out)
		}
	}
}

// probeTokens scans a string's maximal ASCII-alphanumeric runs — the word
// shape containsWord tests against — lowercased into the index's reusable
// buffer, and merges each token's postings.
//
//invalidb:hotpath
func (qi *queryIndex) probeTokens(s string, idx map[string]map[uint64]*matchQuery, out map[uint64]*matchQuery) {
	buf := qi.tokBuf[:0]
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z' || c >= '0' && c <= '9':
			buf = append(buf, c)
		case c >= 'A' && c <= 'Z':
			buf = append(buf, c+('a'-'A'))
		default:
			if len(buf) > 0 {
				for h, mq := range idx[string(buf)] { // no alloc: compiler-optimized lookup
					out[h] = mq
				}
				buf = buf[:0]
			}
		}
	}
	if len(buf) > 0 {
		for h, mq := range idx[string(buf)] { // no alloc: compiler-optimized lookup
			out[h] = mq
		}
	}
	qi.tokBuf = buf[:0] // keep grown capacity for the next probe
}

//invalidb:hotpath
func stabNumeric(tree *intervalTree, v any, out map[uint64]*matchQuery) {
	switch t := v.(type) {
	case int64:
		tree.stab(float64(t), out)
	case float64:
		tree.stab(t, out)
	}
}

// intervalTree is a centered interval tree over query intervals. It is
// rebuilt lazily: inserts and removes append to a pending list and flip a
// dirty flag; the first stab after a change rebuilds. Query registration is
// rare relative to writes, so rebuilds amortize to nothing during
// measurement phases.
type intervalTree struct {
	items map[uint64]treeItem
	root  *inode
	dirty bool
	size  int
}

type treeItem struct {
	iv query.Interval
	mq *matchQuery
}

type inode struct {
	center      float64
	left, right *inode
	// overlapping intervals containing center, sorted by lo asc / hi desc.
	byLo []treeItem
	byHi []treeItem
}

func (t *intervalTree) insert(iv query.Interval, mq *matchQuery) {
	if t.items == nil {
		t.items = map[uint64]treeItem{}
	}
	t.items[mq.hash] = treeItem{iv: iv, mq: mq}
	t.size = len(t.items)
	t.dirty = true
}

func (t *intervalTree) remove(hash uint64) {
	delete(t.items, hash)
	t.size = len(t.items)
	t.dirty = true
}

const unbounded = 1e308

func loValue(iv query.Interval) float64 {
	if !iv.LoSet {
		return -unbounded
	}
	return iv.Lo
}

func hiValue(iv query.Interval) float64 {
	if !iv.HiSet {
		return unbounded
	}
	return iv.Hi
}

func (t *intervalTree) rebuild() {
	items := make([]treeItem, 0, len(t.items))
	for _, it := range t.items {
		items = append(items, it)
	}
	t.root = buildINode(items)
	t.dirty = false
}

func buildINode(items []treeItem) *inode {
	if len(items) == 0 {
		return nil
	}
	// Center on the median of interval midpoints (clamped endpoints).
	mids := make([]float64, len(items))
	for i, it := range items {
		mids[i] = (clamp(loValue(it.iv)) + clamp(hiValue(it.iv))) / 2
	}
	sort.Float64s(mids)
	center := mids[len(mids)/2]
	n := &inode{center: center}
	var left, right []treeItem
	for _, it := range items {
		switch {
		case hiValue(it.iv) < center:
			left = append(left, it)
		case loValue(it.iv) > center:
			right = append(right, it)
		default:
			n.byLo = append(n.byLo, it)
		}
	}
	// Degenerate guard before the sorts: when nothing splits off (identical
	// intervals, shared midpoints), keep everything in this node so recursion
	// terminates — and so the byLo/byHi sorts below run exactly once.
	if len(left) == len(items) || len(right) == len(items) {
		n.byLo = items
		left, right = nil, nil
	}
	n.byHi = append([]treeItem(nil), n.byLo...)
	sort.Slice(n.byLo, func(i, j int) bool { return loValue(n.byLo[i].iv) < loValue(n.byLo[j].iv) })
	sort.Slice(n.byHi, func(i, j int) bool { return hiValue(n.byHi[i].iv) > hiValue(n.byHi[j].iv) })
	n.left = buildINode(left)
	n.right = buildINode(right)
	return n
}

func clamp(v float64) float64 {
	if v > unbounded {
		return unbounded
	}
	if v < -unbounded {
		return -unbounded
	}
	return v
}

// stab adds every query whose interval contains v to out.
//
//invalidb:hotpath
func (t *intervalTree) stab(v float64, out map[uint64]*matchQuery) {
	t.stabRange(v, v, out)
}

// rangeOverlaps reports whether the interval admits some value in [mn, mx]:
// mx satisfies the lower bound and mn the upper one. For mn == mx this is
// exactly iv.Contains.
//
//invalidb:hotpath
func rangeOverlaps(iv query.Interval, mn, mx float64) bool {
	if iv.LoSet {
		if iv.LoInc {
			if mx < iv.Lo {
				return false
			}
		} else if mx <= iv.Lo {
			return false
		}
	}
	if iv.HiSet {
		if iv.HiInc {
			if mn > iv.Hi {
				return false
			}
		} else if mn >= iv.Hi {
			return false
		}
	}
	return true
}

// stabRange adds every query whose interval overlaps [mn, mx] to out.
// Navigation and the sorted-scan cutoffs use clamped values: unbounded
// endpoints are stored as ±1e308, so an unclamped |v| > 1e308 (the largest
// finite float64 is ~1.8e308) would break out of the scan before reaching
// the unbounded intervals that contain it. The overlap test itself uses the
// original values.
//
//invalidb:hotpath
func (t *intervalTree) stabRange(mn, mx float64, out map[uint64]*matchQuery) {
	if t.dirty {
		//invalidb:allow hotpathalloc lazy rebuild after interval mutations, amortized across stabs
		t.rebuild()
	}
	stabRangeNode(t.root, mn, mx, clamp(mn), clamp(mx), out)
}

//invalidb:hotpath
func stabRangeNode(n *inode, mn, mx, cmn, cmx float64, out map[uint64]*matchQuery) {
	for n != nil {
		switch {
		case cmx < n.center:
			// The probe range lies left of center: only intervals starting
			// at or before mx can overlap, and the right subtree (lo >
			// center) cannot.
			for _, it := range n.byLo {
				if loValue(it.iv) > cmx {
					break
				}
				if rangeOverlaps(it.iv, mn, mx) {
					out[it.mq.hash] = it.mq
				}
			}
			n = n.left
		case cmn > n.center:
			// Mirror image on the right.
			for _, it := range n.byHi {
				if hiValue(it.iv) < cmn {
					break
				}
				if rangeOverlaps(it.iv, mn, mx) {
					out[it.mq.hash] = it.mq
				}
			}
			n = n.right
		default:
			// center ∈ [mn, mx]: every interval stored here straddles
			// center, so scan them all; both subtrees may overlap too.
			for _, it := range n.byLo {
				if rangeOverlaps(it.iv, mn, mx) {
					out[it.mq.hash] = it.mq
				}
			}
			stabRangeNode(n.left, mn, mx, cmn, cmx, out)
			n = n.right
		}
	}
}
