package core

import (
	"sort"

	"invalidb/internal/document"
	"invalidb/internal/query"
)

// queryIndex is the matching node's multi-query optimization (an
// optimization the InvaliDB thesis discusses alongside the prototype's
// engine): instead of evaluating every after-image against every registered
// query, queries with a numeric interval constraint (the shape of the
// paper's evaluation workload, `random >= i AND random < j`) are indexed in
// a centered interval tree per (tenant, collection, field). A write then
// only probes
//
//   - the queries whose interval is stabbed by the written value,
//   - the queries currently tracking the written key (their matching status
//     can only *end*, which the interval cannot rule out), and
//   - the residual queries with no extractable constraint.
//
// Correctness: an interval constraint is necessary for matching, so any
// query not in the candidate set neither matches the new image nor tracked
// the old one — its result cannot change.
type queryIndex struct {
	// trees: tenant\x00collection\x00path -> interval tree over queries.
	trees map[string]*intervalTree
	// unindexed queries are probed on every write.
	unindexed map[uint64]*matchQuery
	// trackers: composite record key -> queries currently tracking it.
	trackers map[string]map[uint64]*matchQuery
	// ivByQuery remembers each indexed query's tree key and interval.
	ivByQuery map[uint64]indexedAt
}

type indexedAt struct {
	treeKey string
	iv      query.Interval
}

func newQueryIndex() *queryIndex {
	return &queryIndex{
		trees:     map[string]*intervalTree{},
		unindexed: map[uint64]*matchQuery{},
		trackers:  map[string]map[uint64]*matchQuery{},
		ivByQuery: map[uint64]indexedAt{},
	}
}

func treeKey(tenant, collection, path string) string {
	return tenant + "\x00" + collection + "\x00" + path
}

// add registers a query.
func (qi *queryIndex) add(mq *matchQuery) {
	if iv, ok := mq.q.IndexInterval(); ok {
		key := treeKey(mq.tenant, mq.q.Collection, iv.Path)
		tree := qi.trees[key]
		if tree == nil {
			tree = &intervalTree{}
			qi.trees[key] = tree
		}
		tree.insert(iv, mq)
		qi.ivByQuery[mq.hash] = indexedAt{treeKey: key, iv: iv}
		return
	}
	qi.unindexed[mq.hash] = mq
}

// remove deregisters a query and its tracker entries. The query's own
// tracked-key set makes this O(keys tracked by this query) rather than a
// scan over every tracker on the node.
func (qi *queryIndex) remove(mq *matchQuery) {
	if at, ok := qi.ivByQuery[mq.hash]; ok {
		delete(qi.ivByQuery, mq.hash)
		if tree := qi.trees[at.treeKey]; tree != nil {
			tree.remove(mq.hash)
			if tree.size == 0 {
				delete(qi.trees, at.treeKey)
			}
		}
	}
	delete(qi.unindexed, mq.hash)
	for ck := range mq.trackedCK {
		if set := qi.trackers[ck]; set != nil {
			delete(set, mq.hash)
			if len(set) == 0 {
				delete(qi.trackers, ck)
			}
		}
	}
	mq.trackedCK = nil
}

// track records that a query's result partition now contains the record.
func (qi *queryIndex) track(ck string, mq *matchQuery) {
	set := qi.trackers[ck]
	if set == nil {
		set = map[uint64]*matchQuery{}
		qi.trackers[ck] = set
	}
	set[mq.hash] = mq
	if mq.trackedCK == nil {
		mq.trackedCK = map[string]struct{}{}
	}
	mq.trackedCK[ck] = struct{}{}
}

// untrack removes a tracker entry.
func (qi *queryIndex) untrack(ck string, mq *matchQuery) {
	if set := qi.trackers[ck]; set != nil {
		delete(set, mq.hash)
		if len(set) == 0 {
			delete(qi.trackers, ck)
		}
	}
	delete(mq.trackedCK, ck)
}

// candidates collects every query whose result could change with this
// after-image into a freshly allocated map (convenience wrapper used by
// tests; the hot path passes a reusable scratch map to candidatesInto).
func (qi *queryIndex) candidates(we *WriteEvent, ck string) map[uint64]*matchQuery {
	return qi.candidatesInto(we, ck, map[uint64]*matchQuery{})
}

// candidatesInto fills out with every candidate query, keyed by query hash,
// and returns it. The caller owns (and clears) the scratch map, so the
// per-write probe allocates nothing once the map has grown to steady state.
//
//invalidb:hotpath
func (qi *queryIndex) candidatesInto(we *WriteEvent, ck string, out map[uint64]*matchQuery) map[uint64]*matchQuery {
	for h, mq := range qi.unindexed {
		out[h] = mq
	}
	for h, mq := range qi.trackers[ck] {
		out[h] = mq
	}
	img := we.Image
	if img.Doc != nil {
		// ck is the interned tenant\x00collection\x00key composite, so the
		// tenant\x00collection\x00 prefix is a slice of it — no per-write
		// re-concatenation.
		prefix := ck[:len(ck)-len(img.Key)]
		for key, tree := range qi.trees {
			if len(key) <= len(prefix) || key[:len(prefix)] != prefix {
				continue
			}
			path := key[len(prefix):]
			for _, v := range document.Lookup(img.Doc, path) {
				stabNumeric(tree, v, out)
				if arr, ok := v.([]any); ok {
					for _, e := range arr {
						stabNumeric(tree, e, out)
					}
				}
			}
		}
	}
	return out
}

func stabNumeric(tree *intervalTree, v any, out map[uint64]*matchQuery) {
	switch t := v.(type) {
	case int64:
		tree.stab(float64(t), out)
	case float64:
		tree.stab(t, out)
	}
}

// intervalTree is a centered interval tree over query intervals. It is
// rebuilt lazily: inserts and removes append to a pending list and flip a
// dirty flag; the first stab after a change rebuilds. Query registration is
// rare relative to writes, so rebuilds amortize to nothing during
// measurement phases.
type intervalTree struct {
	items map[uint64]treeItem
	root  *inode
	dirty bool
	size  int
}

type treeItem struct {
	iv query.Interval
	mq *matchQuery
}

type inode struct {
	center      float64
	left, right *inode
	// overlapping intervals containing center, sorted by lo asc / hi desc.
	byLo []treeItem
	byHi []treeItem
}

func (t *intervalTree) insert(iv query.Interval, mq *matchQuery) {
	if t.items == nil {
		t.items = map[uint64]treeItem{}
	}
	t.items[mq.hash] = treeItem{iv: iv, mq: mq}
	t.size = len(t.items)
	t.dirty = true
}

func (t *intervalTree) remove(hash uint64) {
	delete(t.items, hash)
	t.size = len(t.items)
	t.dirty = true
}

const unbounded = 1e308

func loValue(iv query.Interval) float64 {
	if !iv.LoSet {
		return -unbounded
	}
	return iv.Lo
}

func hiValue(iv query.Interval) float64 {
	if !iv.HiSet {
		return unbounded
	}
	return iv.Hi
}

func (t *intervalTree) rebuild() {
	items := make([]treeItem, 0, len(t.items))
	for _, it := range t.items {
		items = append(items, it)
	}
	t.root = buildINode(items)
	t.dirty = false
}

func buildINode(items []treeItem) *inode {
	if len(items) == 0 {
		return nil
	}
	// Center on the median of interval midpoints (clamped endpoints).
	mids := make([]float64, len(items))
	for i, it := range items {
		mids[i] = (clamp(loValue(it.iv)) + clamp(hiValue(it.iv))) / 2
	}
	sort.Float64s(mids)
	center := mids[len(mids)/2]
	n := &inode{center: center}
	var left, right []treeItem
	for _, it := range items {
		switch {
		case hiValue(it.iv) < center:
			left = append(left, it)
		case loValue(it.iv) > center:
			right = append(right, it)
		default:
			n.byLo = append(n.byLo, it)
		}
	}
	n.byHi = append([]treeItem(nil), n.byLo...)
	sort.Slice(n.byLo, func(i, j int) bool { return loValue(n.byLo[i].iv) < loValue(n.byLo[j].iv) })
	sort.Slice(n.byHi, func(i, j int) bool { return hiValue(n.byHi[i].iv) > hiValue(n.byHi[j].iv) })
	// Degenerate guard: if nothing splits off, avoid infinite recursion by
	// keeping everything in this node.
	if len(left) == len(items) || len(right) == len(items) {
		n.byLo = items
		n.byHi = append([]treeItem(nil), items...)
		sort.Slice(n.byLo, func(i, j int) bool { return loValue(n.byLo[i].iv) < loValue(n.byLo[j].iv) })
		sort.Slice(n.byHi, func(i, j int) bool { return hiValue(n.byHi[i].iv) > hiValue(n.byHi[j].iv) })
		return n
	}
	n.left = buildINode(left)
	n.right = buildINode(right)
	return n
}

func clamp(v float64) float64 {
	if v > unbounded {
		return unbounded
	}
	if v < -unbounded {
		return -unbounded
	}
	return v
}

// stab adds every query whose interval contains v to out.
func (t *intervalTree) stab(v float64, out map[uint64]*matchQuery) {
	if t.dirty {
		t.rebuild()
	}
	for n := t.root; n != nil; {
		if v < n.center {
			// Only intervals with lo <= v can contain v.
			for _, it := range n.byLo {
				if loValue(it.iv) > v {
					break
				}
				if it.iv.Contains(v) {
					out[it.mq.hash] = it.mq
				}
			}
			n = n.left
		} else {
			// Only intervals with hi >= v can contain v.
			for _, it := range n.byHi {
				if hiValue(it.iv) < v {
					break
				}
				if it.iv.Contains(v) {
					out[it.mq.hash] = it.mq
				}
			}
			n = n.right
		}
	}
}
