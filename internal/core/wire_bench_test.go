package core

import "testing"

// BenchmarkEnvelopeWire compares the binary codec against the JSON path
// for the two hot envelope kinds (writes into the cluster, notifications
// out of it). The binary encode reuses its buffer — the same pattern the
// TCP write path uses — and must run allocation-free; wire-bytes reports
// the encoded size. CI runs this with -benchtime=1x so the suite cannot
// bit-rot; EXPERIMENTS.md records representative numbers.
func BenchmarkEnvelopeWire(b *testing.B) {
	for _, env := range wireTestEnvelopes() {
		if env.Kind != KindWrite && env.Kind != KindNotification {
			continue
		}
		env := env
		if env.Kind == KindNotification && env.Notification.Type == MatchError {
			continue // bench the data-carrying notification only
		}
		bin, err := env.EncodeBinary()
		if err != nil {
			b.Fatal(err)
		}
		js, err := env.EncodeJSON()
		if err != nil {
			b.Fatal(err)
		}

		b.Run(env.Kind+"/encode/binary", func(b *testing.B) {
			buf := make([]byte, 0, len(bin))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				var err error
				buf, err = AppendEnvelope(buf[:0], env)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(buf)), "wire-bytes")
		})
		b.Run(env.Kind+"/encode/json", func(b *testing.B) {
			b.ReportAllocs()
			var out []byte
			for i := 0; i < b.N; i++ {
				var err error
				out, err = env.EncodeJSON()
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(len(out)), "wire-bytes")
		})
		b.Run(env.Kind+"/decode/binary", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := DecodeWire(bin); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(env.Kind+"/decode/json", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := DecodeWire(js); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
