// Binary wire codec for Envelope. JSON marshaling dominated the event
// layer's per-message cost once the match path went zero-alloc (PR 1), so
// envelopes crossing the bus are encoded in a compact hand-rolled
// length/varint format instead: a leading magic byte, a kind tag, then the
// kind's fields in a fixed order. Legacy JSON payloads (first byte '{')
// still decode through the same entry point, so mixed-version peers
// interoperate with no negotiation. DESIGN.md §10 specifies the format
// byte for byte.
//
// Parity contract with the JSON path: any envelope decoded by DecodeWire —
// from either format — re-encodes successfully in both formats, and the
// two round trips yield identical envelopes (FuzzEnvelopeWire enforces
// this). That requires the binary encoder to mirror encoding/json's
// observable behavior: integral float64 values collapse to int64 (JSON
// numbers lose the distinction), NaN/Inf are encode errors, and omitempty
// fields collapse empty documents to nil.
package core

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"strconv"
	"sync/atomic"
	"unicode/utf8"

	"invalidb/internal/document"
	"invalidb/internal/metrics"
	"invalidb/internal/query"
)

// wireMagic is the first byte of every binary envelope. It is outside the
// ASCII range so it can never collide with JSON's leading '{' (0x7B) or
// whitespace, which is what makes format auto-detection sound.
const wireMagic = 0xB1

// Kind tags (byte 1 of a binary envelope).
const (
	wireTagSubscribe byte = iota + 1
	wireTagCancel
	wireTagExtend
	wireTagWrite
	wireTagNotification
	wireTagHeartbeat
	wireTagResync
	wireTagBackfillStart
	wireTagBackfillChunk
	wireTagBackfillMark
	wireTagBackfillCert
	wireTagPartitionMap
	wireTagNodeHello
	wireTagResize
	wireTagEpochAck

	wireTagCount = int(wireTagEpochAck) + 1
)

// Document value tags. Every document value is one tag byte followed by
// the tag's payload.
const (
	wireValNull   byte = 0
	wireValFalse  byte = 1
	wireValTrue   byte = 2
	wireValInt    byte = 3 // zigzag varint
	wireValFloat  byte = 4 // 8-byte little-endian IEEE 754
	wireValString byte = 5 // uvarint length + bytes
	wireValArray  byte = 6 // uvarint count + values
	wireValObject byte = 7 // uvarint count + (string key, value) pairs
)

// maxWireDepth bounds document nesting on decode so crafted input cannot
// overflow the stack.
const maxWireDepth = 200

// Decode errors are predeclared so the decoder allocates nothing while
// rejecting corrupt input.
var (
	errWireTruncated = errors.New("core: truncated binary envelope")
	errWireTrailing  = errors.New("core: trailing bytes after binary envelope")
	errWireBadTag    = errors.New("core: unknown binary value tag")
	errWireBadKind   = errors.New("core: unknown binary envelope kind")
	errWireBadFloat  = errors.New("core: non-finite float on the wire")
	errWireDepth     = errors.New("core: document nesting too deep")
	errWireBadType   = errors.New("core: invalid match type on the wire")
	errWireBadString = errors.New("core: invalid UTF-8 string on the wire")
	errWireNoPayload = errors.New("core: envelope without payload")
	errWireBadValue  = errors.New("core: unsupported document value type")
)

// wireFormatJSON selects the Encode output format process-wide; the
// default (false) is the binary codec. Decoding always auto-detects.
var wireFormatJSON atomic.Bool

// Wire format names accepted by SetWireFormat.
const (
	WireBinary = "binary"
	WireJSON   = "json"
)

// SetWireFormat selects the encode format for every subsequent
// Envelope.Encode in this process: "binary" (default) or "json". Decoding
// is unaffected — both formats are always accepted — so peers with
// different settings interoperate.
func SetWireFormat(name string) error {
	switch name {
	case WireBinary:
		wireFormatJSON.Store(false)
	case WireJSON:
		wireFormatJSON.Store(true)
	default:
		return fmt.Errorf("core: unknown wire format %q (want %q or %q)", name, WireBinary, WireJSON)
	}
	return nil
}

// WireFormat reports the current encode format name.
func WireFormat() string {
	if wireFormatJSON.Load() {
		return WireJSON
	}
	return WireBinary
}

// wireStats counts messages and bytes crossing the codec, per envelope
// kind and direction, indexed by kind tag. The counters are plain atomics
// so the hot path never touches the registry; RegisterWireMetrics exposes
// them as a dynamic gauge family.
var wireStats struct {
	encMsgs  [wireTagCount]atomic.Uint64
	encBytes [wireTagCount]atomic.Uint64
	decMsgs  [wireTagCount]atomic.Uint64
	decBytes [wireTagCount]atomic.Uint64
}

var wireKindNames = [wireTagCount]string{
	wireTagSubscribe:    KindSubscribe,
	wireTagCancel:       KindCancel,
	wireTagExtend:       KindExtend,
	wireTagWrite:        KindWrite,
	wireTagNotification: KindNotification,
	wireTagHeartbeat:    KindHeartbeat,
	wireTagResync:       KindResync,

	wireTagBackfillStart: KindBackfillStart,
	wireTagBackfillChunk: KindBackfillChunk,
	wireTagBackfillMark:  KindBackfillMark,
	wireTagBackfillCert:  KindBackfillCert,
	wireTagPartitionMap:  KindPartitionMap,
	wireTagNodeHello:     KindNodeHello,
	wireTagResize:        KindResize,
	wireTagEpochAck:      KindEpochAck,
}

// RegisterWireMetrics exposes the codec's per-kind traffic counters
// (wire.encode.<kind>.messages/.bytes, wire.decode.<kind>.bytes/...) on a
// registry. The counters are process-global — traffic from every
// component sharing the process is aggregated — and families with zero
// traffic are not emitted.
func RegisterWireMetrics(r *metrics.Registry) {
	r.Collect(func(emit func(name string, v float64)) {
		for tag := 1; tag < wireTagCount; tag++ {
			name := wireKindNames[tag]
			if n := wireStats.encMsgs[tag].Load(); n > 0 {
				emit("wire.encode."+name+".messages", float64(n))
				emit("wire.encode."+name+".bytes", float64(wireStats.encBytes[tag].Load()))
			}
			if n := wireStats.decMsgs[tag].Load(); n > 0 {
				emit("wire.decode."+name+".messages", float64(n))
				emit("wire.decode."+name+".bytes", float64(wireStats.decBytes[tag].Load()))
			}
		}
	})
}

// countWire records one message of size n for a stats direction.
//
//invalidb:hotpath
func countWire(msgs, bytes *[wireTagCount]atomic.Uint64, tag byte, n int) {
	msgs[tag].Add(1)
	bytes[tag].Add(uint64(n))
}

// wireKindTag maps an envelope kind string to its binary tag (0 if
// unknown).
//
//invalidb:hotpath
func wireKindTag(kind string) byte {
	switch kind {
	case KindSubscribe:
		return wireTagSubscribe
	case KindCancel:
		return wireTagCancel
	case KindExtend:
		return wireTagExtend
	case KindWrite:
		return wireTagWrite
	case KindNotification:
		return wireTagNotification
	case KindHeartbeat:
		return wireTagHeartbeat
	case KindResync:
		return wireTagResync
	case KindBackfillStart:
		return wireTagBackfillStart
	case KindBackfillChunk:
		return wireTagBackfillChunk
	case KindBackfillMark:
		return wireTagBackfillMark
	case KindBackfillCert:
		return wireTagBackfillCert
	case KindPartitionMap:
		return wireTagPartitionMap
	case KindNodeHello:
		return wireTagNodeHello
	case KindResize:
		return wireTagResize
	case KindEpochAck:
		return wireTagEpochAck
	}
	return 0
}

// AppendEnvelope appends the binary encoding of e to buf and returns the
// extended slice. Steady-state encodes into a buffer with sufficient
// capacity perform zero allocations (pinned by TestEnvelopeWireEncodeNoAllocs).
//
//invalidb:hotpath
func AppendEnvelope(buf []byte, e *Envelope) ([]byte, error) {
	tag := wireKindTag(e.Kind)
	if tag == 0 {
		return nil, errWireBadKind
	}
	start := len(buf)
	b := append(buf, wireMagic, tag)
	var err error
	switch tag {
	case wireTagSubscribe:
		if e.Subscribe == nil {
			return nil, errWireNoPayload
		}
		b, err = appendSubscribe(b, e.Subscribe)
	case wireTagCancel:
		if e.Cancel == nil {
			return nil, errWireNoPayload
		}
		b = appendString(b, e.Cancel.Tenant)
		b = appendString(b, e.Cancel.SubscriptionID)
		b = appendFixed64(b, e.Cancel.QueryHash)
		b = appendUvarint(b, e.Cancel.Epoch)
	case wireTagExtend:
		if e.Extend == nil {
			return nil, errWireNoPayload
		}
		b = appendString(b, e.Extend.Tenant)
		b = appendString(b, e.Extend.SubscriptionID)
		b = appendFixed64(b, e.Extend.QueryHash)
		b = appendSvarint(b, e.Extend.TTLMillis)
		b = appendUvarint(b, e.Extend.Epoch)
	case wireTagWrite:
		if e.Write == nil || e.Write.Image == nil {
			return nil, errWireNoPayload
		}
		b, err = appendWrite(b, e.Write)
	case wireTagNotification:
		if e.Notification == nil {
			return nil, errWireNoPayload
		}
		b, err = appendNotification(b, e.Notification)
	case wireTagHeartbeat:
		if e.Heartbeat == nil {
			return nil, errWireNoPayload
		}
		b = appendString(b, e.Heartbeat.Tenant)
		b = appendSvarint(b, e.Heartbeat.TimeMillis)
	case wireTagResync:
		if e.Resync == nil {
			return nil, errWireNoPayload
		}
		b = appendString(b, e.Resync.Component)
		b = appendSvarint(b, int64(e.Resync.TaskID))
	case wireTagBackfillStart:
		if e.BackfillStart == nil {
			return nil, errWireNoPayload
		}
		b, err = appendBackfillStart(b, e.BackfillStart)
	case wireTagBackfillChunk:
		if e.BackfillChunk == nil {
			return nil, errWireNoPayload
		}
		b, err = appendBackfillChunk(b, e.BackfillChunk)
	case wireTagBackfillMark:
		if e.BackfillMark == nil {
			return nil, errWireNoPayload
		}
		b, err = appendBackfillMark(b, e.BackfillMark)
	case wireTagBackfillCert:
		if e.BackfillCert == nil {
			return nil, errWireNoPayload
		}
		b, err = appendBackfillCert(b, e.BackfillCert)
	case wireTagPartitionMap:
		if e.Map == nil {
			return nil, errWireNoPayload
		}
		b, err = appendPartitionMap(b, e.Map)
	case wireTagNodeHello:
		if e.Hello == nil {
			return nil, errWireNoPayload
		}
		b, err = appendNodeHello(b, e.Hello)
	case wireTagResize:
		if e.Resize == nil {
			return nil, errWireNoPayload
		}
		b, err = appendResize(b, e.Resize)
	case wireTagEpochAck:
		if e.EpochAck == nil {
			return nil, errWireNoPayload
		}
		b = appendString(b, e.EpochAck.Node)
		b = appendUvarint(b, e.EpochAck.Epoch)
	}
	if err != nil {
		return nil, err
	}
	countWire(&wireStats.encMsgs, &wireStats.encBytes, tag, len(b)-start)
	return b, nil
}

//invalidb:hotpath
func appendSubscribe(b []byte, s *SubscribeRequest) ([]byte, error) {
	b = appendString(b, s.Tenant)
	b = appendString(b, s.SubscriptionID)
	b = appendSvarint(b, s.TTLMillis)
	b = appendSvarint(b, int64(s.Slack))
	var err error
	if b, err = appendSpec(b, &s.Query); err != nil {
		return nil, err
	}
	// Result has no omitempty tag, so nil and empty survive the JSON round
	// trip distinctly; the presence scheme (0 = nil, n+1 = n entries)
	// preserves that here too.
	if s.Result == nil {
		b = appendUvarint(b, 0)
	} else {
		b = appendUvarint(b, uint64(len(s.Result))+1)
		for i := range s.Result {
			r := &s.Result[i]
			b = appendString(b, r.Key)
			b = appendUvarint(b, r.Version)
			if b, err = appendDocExact(b, r.Doc); err != nil {
				return nil, err
			}
		}
	}
	b = appendUvarint(b, s.Epoch)
	return b, nil
}

//invalidb:hotpath
func appendSpec(b []byte, q *query.Spec) ([]byte, error) {
	b = appendString(b, q.Collection)
	var err error
	// Filter is omitempty in JSON, so empty collapses to nil.
	if b, err = appendDocField(b, document.Document(q.Filter)); err != nil {
		return nil, err
	}
	b = appendUvarint(b, uint64(len(q.Sort)))
	for i := range q.Sort {
		b = appendString(b, q.Sort[i].Path)
		if q.Sort[i].Desc {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	b = appendSvarint(b, int64(q.Limit))
	b = appendSvarint(b, int64(q.Offset))
	b = appendUvarint(b, uint64(len(q.Projection)))
	for _, p := range q.Projection {
		b = appendString(b, p)
	}
	return b, nil
}

//invalidb:hotpath
func appendWrite(b []byte, w *WriteEvent) ([]byte, error) {
	b = appendString(b, w.Tenant)
	b = appendSvarint(b, w.SentNs)
	img := w.Image
	b = appendString(b, img.Collection)
	b = appendString(b, img.Key)
	b = appendUvarint(b, img.Version)
	b = append(b, byte(img.Op))
	// Doc is omitempty in JSON; IngestNs is json:"-" and never serialized.
	return appendDocField(b, img.Doc)
}

//invalidb:hotpath
func appendNotification(b []byte, n *Notification) ([]byte, error) {
	if n.Type < MatchAdd || n.Type > MatchError {
		// JSON parity: MatchType.MarshalJSON rejects unknown types.
		return nil, errWireBadType
	}
	b = appendString(b, n.Tenant)
	b = appendString(b, n.QueryID)
	b = append(b, byte(n.Type))
	b = appendString(b, n.Key)
	var err error
	if b, err = appendDocField(b, n.Doc); err != nil {
		return nil, err
	}
	b = appendUvarint(b, n.Version)
	b = appendSvarint(b, int64(n.Index))
	b = appendUvarint(b, n.Seq)
	b = appendString(b, n.Origin)
	b = appendString(b, n.Error)
	b = appendSvarint(b, n.WriteNs)
	b = appendSvarint(b, n.IngestNs)
	b = appendSvarint(b, n.MatchNs)
	return b, nil
}

//invalidb:hotpath
func appendBackfillStart(b []byte, s *BackfillStart) ([]byte, error) {
	b = appendString(b, s.Tenant)
	b = appendString(b, s.SubscriptionID)
	b = appendString(b, s.BackfillID)
	b = appendSvarint(b, s.TTLMillis)
	b = appendSvarint(b, int64(s.Slack))
	b, err := appendSpec(b, &s.Query)
	if err != nil {
		return nil, err
	}
	b = appendUvarint(b, s.Epoch)
	return b, nil
}

//invalidb:hotpath
func appendBackfillChunk(b []byte, c *BackfillChunk) ([]byte, error) {
	b = appendString(b, c.Tenant)
	b = appendString(b, c.SubscriptionID)
	b = appendString(b, c.BackfillID)
	b = appendFixed64(b, c.QueryHash)
	b = appendSvarint(b, int64(c.Chunk))
	b = appendUvarint(b, c.Low)
	b = appendUvarint(b, c.High)
	b = appendBool(b, c.Last)
	// Entries uses the Subscribe.Result presence scheme: no omitempty tag in
	// JSON, so nil and empty stay distinct (0 = nil, n+1 = n entries).
	if c.Entries == nil {
		b = appendUvarint(b, 0)
	} else {
		b = appendUvarint(b, uint64(len(c.Entries))+1)
		var err error
		for i := range c.Entries {
			e := &c.Entries[i]
			b = appendString(b, e.Key)
			b = appendUvarint(b, e.Version)
			if b, err = appendDocExact(b, e.Doc); err != nil {
				return nil, err
			}
		}
	}
	b = appendUvarint(b, c.Epoch)
	return b, nil
}

//invalidb:hotpath
func appendPartitionMap(b []byte, m *PartitionMap) ([]byte, error) {
	//invalidb:allow hotpathalloc map validation errors allocate only on the reject path
	if err := m.validate(); err != nil {
		// JSON parity: the decoders reject malformed maps, so the binary
		// encoder must refuse to produce them.
		return nil, errWireBadValue
	}
	b = appendUvarint(b, m.Epoch)
	b = appendSvarint(b, int64(m.QueryPartitions))
	b = appendSvarint(b, int64(m.WritePartitions))
	b = appendUvarint(b, uint64(len(m.Rows)))
	for i := range m.Rows {
		b = appendString(b, m.Rows[i].Node)
		b = appendSvarint(b, int64(m.Rows[i].Slot))
	}
	return b, nil
}

//invalidb:hotpath
func appendNodeHello(b []byte, h *NodeHello) ([]byte, error) {
	b = appendString(b, h.Node)
	b = appendSvarint(b, int64(h.Slots))
	b = appendSvarint(b, int64(h.MaxWritePartitions))
	// Map is omitempty: one presence byte, then the map.
	if h.Map == nil {
		return append(b, 0), nil
	}
	return appendPartitionMap(append(b, 1), h.Map)
}

//invalidb:hotpath
func appendResize(b []byte, r *ResizeRequest) ([]byte, error) {
	var axis byte
	switch r.Axis {
	case ResizeAxisQP:
		axis = 0
	case ResizeAxisWP:
		axis = 1
	default:
		// JSON parity: the JSON decoder rejects unknown axes.
		return nil, errWireBadValue
	}
	return append(b, axis), nil
}

//invalidb:hotpath
func appendBackfillMark(b []byte, m *BackfillMark) ([]byte, error) {
	var phase byte
	switch m.Phase {
	case BackfillPhaseLow:
		phase = 0
	case BackfillPhaseHigh:
		phase = 1
	default:
		// JSON parity: the JSON decoder rejects unknown phases, so the
		// binary encoder must refuse to produce them.
		return nil, errWireBadValue
	}
	b = appendString(b, m.Tenant)
	b = appendString(b, m.BackfillID)
	b = appendSvarint(b, int64(m.Chunk))
	b = append(b, phase)
	b = appendUvarint(b, m.Seq)
	return b, nil
}

//invalidb:hotpath
func appendBackfillCert(b []byte, c *BackfillCert) ([]byte, error) {
	var status byte
	switch c.Status {
	case BackfillStatusOK:
		status = 0
	case BackfillStatusRestart:
		status = 1
	default:
		return nil, errWireBadValue
	}
	b = appendString(b, c.Tenant)
	b = appendString(b, c.SubscriptionID)
	b = appendString(b, c.BackfillID)
	b = appendString(b, c.QueryID)
	b = appendSvarint(b, int64(c.Chunk))
	b = appendSvarint(b, int64(c.Cell))
	b = appendSvarint(b, int64(c.Cells))
	b = appendBool(b, c.Last)
	b = appendString(b, c.Origin)
	b = append(b, status)
	return b, nil
}

//invalidb:hotpath
func appendBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

//invalidb:hotpath
func appendUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

//invalidb:hotpath
func appendSvarint(b []byte, v int64) []byte {
	return binary.AppendVarint(b, v)
}

//invalidb:hotpath
func appendFixed64(b []byte, v uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, v)
}

//invalidb:hotpath
func appendString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// appendDocField encodes a document in an omitempty position: JSON drops
// empty maps there, so nil and empty both encode as null.
//
//invalidb:hotpath
func appendDocField(b []byte, d document.Document) ([]byte, error) {
	if len(d) == 0 {
		return append(b, wireValNull), nil
	}
	return appendObject(b, d)
}

// appendDocExact encodes a document preserving the nil/empty distinction
// (used where the JSON tag has no omitempty, e.g. ResultEntry.Doc).
//
//invalidb:hotpath
func appendDocExact(b []byte, d document.Document) ([]byte, error) {
	if d == nil {
		return append(b, wireValNull), nil
	}
	return appendObject(b, d)
}

//invalidb:hotpath
func appendObject(b []byte, m map[string]any) ([]byte, error) {
	b = append(b, wireValObject)
	b = appendUvarint(b, uint64(len(m)))
	var err error
	for k, v := range m {
		b = appendString(b, k)
		if b, err = appendValue(b, v); err != nil {
			return nil, err
		}
	}
	return b, nil
}

// appendValue encodes one document value. Integral float64 values collapse
// to the int tag — encoding/json prints them without a fraction and the
// JSON decoder reads them back as int64, so the binary format must lose
// the same distinction for the two round trips to agree (and for query
// hashes to match across formats). Non-finite floats are errors, exactly
// as they are for json.Marshal.
//
//invalidb:hotpath
func appendValue(b []byte, v any) ([]byte, error) {
	switch t := v.(type) {
	case nil:
		return append(b, wireValNull), nil
	case bool:
		if t {
			return append(b, wireValTrue), nil
		}
		return append(b, wireValFalse), nil
	case int64:
		return appendSvarint(append(b, wireValInt), t), nil
	case float64:
		return appendFloat(b, t)
	case string:
		return appendString(append(b, wireValString), t), nil
	case []any:
		b = append(b, wireValArray)
		b = appendUvarint(b, uint64(len(t)))
		var err error
		for _, e := range t {
			if b, err = appendValue(b, e); err != nil {
				return nil, err
			}
		}
		return b, nil
	case map[string]any:
		return appendObject(b, t)
	case document.Document:
		return appendObject(b, t)
	case int:
		return appendSvarint(append(b, wireValInt), int64(t)), nil
	case int32:
		return appendSvarint(append(b, wireValInt), int64(t)), nil
	case int16:
		return appendSvarint(append(b, wireValInt), int64(t)), nil
	case int8:
		return appendSvarint(append(b, wireValInt), int64(t)), nil
	case uint:
		return appendSvarint(append(b, wireValInt), int64(t)), nil
	case uint64:
		return appendSvarint(append(b, wireValInt), int64(t)), nil
	case uint32:
		return appendSvarint(append(b, wireValInt), int64(t)), nil
	case uint16:
		return appendSvarint(append(b, wireValInt), int64(t)), nil
	case uint8:
		return appendSvarint(append(b, wireValInt), int64(t)), nil
	case float32:
		return appendFloat(b, float64(t))
	case json.Number:
		if i, err := strconv.ParseInt(string(t), 10, 64); err == nil {
			return appendSvarint(append(b, wireValInt), i), nil
		}
		f, err := strconv.ParseFloat(string(t), 64)
		if err != nil {
			return nil, errWireBadValue
		}
		return appendFloat(b, f)
	}
	return nil, errWireBadValue
}

// Float64 values in [minInt64f, maxInt64f) with no fractional part
// collapse to int64 (maxInt64f = 2^63 itself is excluded).
const (
	minInt64f = -9223372036854775808.0
	maxInt64f = 9223372036854775808.0
)

//invalidb:hotpath
func appendFloat(b []byte, f float64) ([]byte, error) {
	if i, ok := jsonIntegral(f); ok {
		return appendSvarint(append(b, wireValInt), i), nil
	}
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return nil, errWireBadFloat
	}
	return binary.LittleEndian.AppendUint64(append(b, wireValFloat), math.Float64bits(f)), nil
}

// jsonIntegral reports the int64 the JSON round trip collapses f to, if
// any. encoding/json prints floats in their shortest decimal form and
// the UseNumber decode path re-parses that as an integer when it can;
// above 2^53 the shortest form is not the mathematically exact value of
// f, so the collapse must go through the same formatting to agree with
// it. Up to 2^53 every integral double is exact and the conversion is a
// single instruction.
//
//invalidb:hotpath
func jsonIntegral(f float64) (int64, bool) {
	if f != math.Trunc(f) || f < minInt64f || f >= maxInt64f {
		return 0, false
	}
	if f >= -(1<<53) && f <= 1<<53 {
		return int64(f), true
	}
	// The shortest 'f'-format of an integral double in int64 range is at
	// most 20 bytes including sign, has no fractional digits, and always
	// fits int64 after rounding (the nearest-int interval stays inside
	// the range).
	var tmp [24]byte
	s := strconv.AppendFloat(tmp[:0], f, 'f', -1, 64)
	neg := s[0] == '-'
	if neg {
		s = s[1:]
	}
	var u uint64
	for _, c := range s {
		u = u*10 + uint64(c-'0')
	}
	if neg {
		return -int64(u), true
	}
	return int64(u), true
}

// EncodeBinary serializes the envelope in the binary wire format.
func (e *Envelope) EncodeBinary() ([]byte, error) {
	return AppendEnvelope(make([]byte, 0, 192), e)
}

// wireReader is a cursor over a binary envelope body.
type wireReader struct {
	b []byte
}

//invalidb:hotpath
func (r *wireReader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b)
	if n <= 0 {
		return 0, errWireTruncated
	}
	r.b = r.b[n:]
	return v, nil
}

//invalidb:hotpath
func (r *wireReader) svarint() (int64, error) {
	v, n := binary.Varint(r.b)
	if n <= 0 {
		return 0, errWireTruncated
	}
	r.b = r.b[n:]
	return v, nil
}

//invalidb:hotpath
func (r *wireReader) fixed64() (uint64, error) {
	if len(r.b) < 8 {
		return 0, errWireTruncated
	}
	v := binary.LittleEndian.Uint64(r.b)
	r.b = r.b[8:]
	return v, nil
}

//invalidb:hotpath
func (r *wireReader) byte() (byte, error) {
	if len(r.b) == 0 {
		return 0, errWireTruncated
	}
	v := r.b[0]
	r.b = r.b[1:]
	return v, nil
}

// bool decodes a strict boolean byte: anything but 0 or 1 is corrupt input,
// so a flipped bit never silently becomes "true".
//
//invalidb:hotpath
func (r *wireReader) bool() (bool, error) {
	v, err := r.byte()
	if err != nil {
		return false, err
	}
	switch v {
	case 0:
		return false, nil
	case 1:
		return true, nil
	}
	return false, errWireBadValue
}

// str decodes a length-prefixed string. The copy is required: the result
// outlives the network read buffer the envelope was framed from. Invalid
// UTF-8 is rejected — the JSON decoder coerces it to U+FFFD, so accepting
// it here would let the two formats disagree about the same envelope.
//
//invalidb:hotpath
func (r *wireReader) str() (string, error) {
	n, err := r.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(len(r.b)) {
		return "", errWireTruncated
	}
	if !utf8.Valid(r.b[:n]) {
		return "", errWireBadString
	}
	//invalidb:allow hotpathalloc decode must copy retained strings off the shared read buffer
	s := string(r.b[:n])
	r.b = r.b[n:]
	return s, nil
}

// value decodes one tagged document value into the canonical in-memory
// form (nil/bool/int64/float64/string/[]any/map[string]any). Counts are
// validated against the remaining input before allocating, so a crafted
// length cannot force a huge allocation, and depth is bounded.
//
//invalidb:hotpath
func (r *wireReader) value(depth int) (any, error) {
	if depth > maxWireDepth {
		return nil, errWireDepth
	}
	tag, err := r.byte()
	if err != nil {
		return nil, err
	}
	switch tag {
	case wireValNull:
		return nil, nil
	case wireValFalse:
		return false, nil
	case wireValTrue:
		return true, nil
	case wireValInt:
		v, err := r.svarint()
		if err != nil {
			return nil, err
		}
		return v, nil
	case wireValFloat:
		bits, err := r.fixed64()
		if err != nil {
			return nil, err
		}
		f := math.Float64frombits(bits)
		if math.IsNaN(f) || math.IsInf(f, 0) {
			// Reject non-finite floats on decode so every decoded envelope
			// re-encodes cleanly in both formats.
			return nil, errWireBadFloat
		}
		return f, nil
	case wireValString:
		return r.str()
	case wireValArray:
		n, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if n > uint64(len(r.b)) { // every element is at least one tag byte
			return nil, errWireTruncated
		}
		//invalidb:allow hotpathalloc decoded arrays are retained by the envelope
		arr := make([]any, n)
		for i := range arr {
			if arr[i], err = r.value(depth + 1); err != nil {
				return nil, err
			}
		}
		return arr, nil
	case wireValObject:
		return r.object(depth)
	}
	return nil, errWireBadTag
}

//invalidb:hotpath
func (r *wireReader) object(depth int) (map[string]any, error) {
	if depth > maxWireDepth {
		return nil, errWireDepth
	}
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(r.b))/2 { // every entry is at least a length byte + a tag byte
		return nil, errWireTruncated
	}
	//invalidb:allow hotpathalloc decoded objects are retained by the envelope
	m := make(map[string]any, n)
	for i := uint64(0); i < n; i++ {
		k, err := r.str()
		if err != nil {
			return nil, err
		}
		v, err := r.value(depth + 1)
		if err != nil {
			return nil, err
		}
		m[k] = v
	}
	return m, nil
}

// docField decodes a value that must be null or an object, in an
// omitempty position: null maps to a nil document.
//
//invalidb:hotpath
func (r *wireReader) docField() (document.Document, error) {
	tag, err := r.byte()
	if err != nil {
		return nil, err
	}
	switch tag {
	case wireValNull:
		return nil, nil
	case wireValObject:
		m, err := r.object(0)
		if err != nil {
			return nil, err
		}
		return document.Document(m), nil
	}
	return nil, errWireBadTag
}

// decodeBinaryEnvelope parses a binary envelope (data[0] == wireMagic),
// applying the same per-kind validation as the JSON path.
//
//invalidb:hotpath
func decodeBinaryEnvelope(data []byte) (*Envelope, error) {
	if len(data) < 2 {
		return nil, errWireTruncated
	}
	tag := data[1]
	r := wireReader{b: data[2:]}
	var e Envelope
	var err error
	switch tag {
	case wireTagSubscribe:
		e.Kind = KindSubscribe
		e.Subscribe, err = r.decodeSubscribe()
	case wireTagCancel:
		e.Kind = KindCancel
		e.Cancel, err = r.decodeCancel()
	case wireTagExtend:
		e.Kind = KindExtend
		e.Extend, err = r.decodeExtend()
	case wireTagWrite:
		e.Kind = KindWrite
		e.Write, err = r.decodeWrite()
	case wireTagNotification:
		e.Kind = KindNotification
		e.Notification, err = r.decodeNotification()
	case wireTagHeartbeat:
		e.Kind = KindHeartbeat
		e.Heartbeat, err = r.decodeHeartbeat()
	case wireTagResync:
		e.Kind = KindResync
		e.Resync, err = r.decodeResync()
	case wireTagBackfillStart:
		e.Kind = KindBackfillStart
		e.BackfillStart, err = r.decodeBackfillStart()
	case wireTagBackfillChunk:
		e.Kind = KindBackfillChunk
		e.BackfillChunk, err = r.decodeBackfillChunk()
	case wireTagBackfillMark:
		e.Kind = KindBackfillMark
		e.BackfillMark, err = r.decodeBackfillMark()
	case wireTagBackfillCert:
		e.Kind = KindBackfillCert
		e.BackfillCert, err = r.decodeBackfillCert()
	case wireTagPartitionMap:
		e.Kind = KindPartitionMap
		e.Map, err = r.decodePartitionMap()
	case wireTagNodeHello:
		e.Kind = KindNodeHello
		e.Hello, err = r.decodeNodeHello()
	case wireTagResize:
		e.Kind = KindResize
		e.Resize, err = r.decodeResize()
	case wireTagEpochAck:
		e.Kind = KindEpochAck
		e.EpochAck, err = r.decodeEpochAck()
	default:
		return nil, errWireBadKind
	}
	if err != nil {
		return nil, err
	}
	if len(r.b) != 0 {
		return nil, errWireTrailing
	}
	countWire(&wireStats.decMsgs, &wireStats.decBytes, tag, len(data))
	return &e, nil
}

//invalidb:hotpath
func (r *wireReader) decodeSubscribe() (*SubscribeRequest, error) {
	//invalidb:allow hotpathalloc decoded envelope payload escapes to the caller
	s := new(SubscribeRequest)
	var err error
	if s.Tenant, err = r.str(); err != nil {
		return nil, err
	}
	if s.SubscriptionID, err = r.str(); err != nil {
		return nil, err
	}
	if s.TTLMillis, err = r.svarint(); err != nil {
		return nil, err
	}
	slack, err := r.svarint()
	if err != nil {
		return nil, err
	}
	s.Slack = int(slack)
	if err = r.decodeSpec(&s.Query); err != nil {
		return nil, err
	}
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > 0 { // 0 = nil bootstrap result
		n--
		if n > uint64(len(r.b))/3 { // key len + version + doc tag per entry
			return nil, errWireTruncated
		}
		//invalidb:allow hotpathalloc decoded bootstrap results are retained by the envelope
		s.Result = make([]ResultEntry, n)
		for i := range s.Result {
			re := &s.Result[i]
			if re.Key, err = r.str(); err != nil {
				return nil, err
			}
			if re.Version, err = r.uvarint(); err != nil {
				return nil, err
			}
			if re.Doc, err = r.docExact(); err != nil {
				return nil, err
			}
		}
	}
	if s.Epoch, err = r.uvarint(); err != nil {
		return nil, err
	}
	return s, nil
}

// docExact decodes a null-or-object value preserving the nil/empty
// distinction (ResultEntry.Doc has no omitempty tag).
//
//invalidb:hotpath
func (r *wireReader) docExact() (document.Document, error) {
	return r.docField()
}

//invalidb:hotpath
func (r *wireReader) decodeSpec(q *query.Spec) error {
	var err error
	if q.Collection, err = r.str(); err != nil {
		return err
	}
	f, err := r.docField()
	if err != nil {
		return err
	}
	q.Filter = map[string]any(f)
	nsort, err := r.uvarint()
	if err != nil {
		return err
	}
	if nsort > 0 {
		if nsort > uint64(len(r.b))/2 {
			return errWireTruncated
		}
		//invalidb:allow hotpathalloc decoded sort keys are retained by the envelope
		q.Sort = make([]query.SortKey, nsort)
		for i := range q.Sort {
			if q.Sort[i].Path, err = r.str(); err != nil {
				return err
			}
			desc, err := r.byte()
			if err != nil {
				return err
			}
			q.Sort[i].Desc = desc != 0
		}
	}
	limit, err := r.svarint()
	if err != nil {
		return err
	}
	q.Limit = int(limit)
	offset, err := r.svarint()
	if err != nil {
		return err
	}
	q.Offset = int(offset)
	nproj, err := r.uvarint()
	if err != nil {
		return err
	}
	if nproj > 0 {
		if nproj > uint64(len(r.b)) {
			return errWireTruncated
		}
		//invalidb:allow hotpathalloc decoded projections are retained by the envelope
		q.Projection = make([]string, nproj)
		for i := range q.Projection {
			if q.Projection[i], err = r.str(); err != nil {
				return err
			}
		}
	}
	return nil
}

//invalidb:hotpath
func (r *wireReader) decodeCancel() (*CancelRequest, error) {
	//invalidb:allow hotpathalloc decoded envelope payload escapes to the caller
	c := new(CancelRequest)
	var err error
	if c.Tenant, err = r.str(); err != nil {
		return nil, err
	}
	if c.SubscriptionID, err = r.str(); err != nil {
		return nil, err
	}
	if c.QueryHash, err = r.fixed64(); err != nil {
		return nil, err
	}
	if c.Epoch, err = r.uvarint(); err != nil {
		return nil, err
	}
	return c, nil
}

//invalidb:hotpath
func (r *wireReader) decodeExtend() (*ExtendRequest, error) {
	//invalidb:allow hotpathalloc decoded envelope payload escapes to the caller
	x := new(ExtendRequest)
	var err error
	if x.Tenant, err = r.str(); err != nil {
		return nil, err
	}
	if x.SubscriptionID, err = r.str(); err != nil {
		return nil, err
	}
	if x.QueryHash, err = r.fixed64(); err != nil {
		return nil, err
	}
	if x.TTLMillis, err = r.svarint(); err != nil {
		return nil, err
	}
	if x.Epoch, err = r.uvarint(); err != nil {
		return nil, err
	}
	return x, nil
}

//invalidb:hotpath
func (r *wireReader) decodeWrite() (*WriteEvent, error) {
	//invalidb:allow hotpathalloc decoded envelope payload escapes to the caller
	w := new(WriteEvent)
	//invalidb:allow hotpathalloc decoded envelope payload escapes to the caller
	img := new(document.AfterImage)
	w.Image = img
	var err error
	if w.Tenant, err = r.str(); err != nil {
		return nil, err
	}
	if w.SentNs, err = r.svarint(); err != nil {
		return nil, err
	}
	if img.Collection, err = r.str(); err != nil {
		return nil, err
	}
	if img.Key, err = r.str(); err != nil {
		return nil, err
	}
	if img.Version, err = r.uvarint(); err != nil {
		return nil, err
	}
	op, err := r.byte()
	if err != nil {
		return nil, err
	}
	img.Op = document.Op(op)
	if img.Doc, err = r.docField(); err != nil {
		return nil, err
	}
	//invalidb:allow hotpathalloc after-image validation errors allocate only on the reject path
	if err := img.Validate(); err != nil {
		return nil, err
	}
	return w, nil
}

//invalidb:hotpath
func (r *wireReader) decodeNotification() (*Notification, error) {
	//invalidb:allow hotpathalloc decoded envelope payload escapes to the caller
	n := new(Notification)
	var err error
	if n.Tenant, err = r.str(); err != nil {
		return nil, err
	}
	if n.QueryID, err = r.str(); err != nil {
		return nil, err
	}
	t, err := r.byte()
	if err != nil {
		return nil, err
	}
	n.Type = MatchType(t)
	if n.Type < MatchAdd || n.Type > MatchError {
		return nil, errWireBadType
	}
	if n.Key, err = r.str(); err != nil {
		return nil, err
	}
	if n.Doc, err = r.docField(); err != nil {
		return nil, err
	}
	if n.Version, err = r.uvarint(); err != nil {
		return nil, err
	}
	idx, err := r.svarint()
	if err != nil {
		return nil, err
	}
	n.Index = int(idx)
	if n.Seq, err = r.uvarint(); err != nil {
		return nil, err
	}
	if n.Origin, err = r.str(); err != nil {
		return nil, err
	}
	if n.Error, err = r.str(); err != nil {
		return nil, err
	}
	if n.WriteNs, err = r.svarint(); err != nil {
		return nil, err
	}
	if n.IngestNs, err = r.svarint(); err != nil {
		return nil, err
	}
	if n.MatchNs, err = r.svarint(); err != nil {
		return nil, err
	}
	return n, nil
}

//invalidb:hotpath
func (r *wireReader) decodeHeartbeat() (*Heartbeat, error) {
	//invalidb:allow hotpathalloc decoded envelope payload escapes to the caller
	h := new(Heartbeat)
	var err error
	if h.Tenant, err = r.str(); err != nil {
		return nil, err
	}
	if h.TimeMillis, err = r.svarint(); err != nil {
		return nil, err
	}
	return h, nil
}

//invalidb:hotpath
func (r *wireReader) decodeResync() (*ResyncRequest, error) {
	//invalidb:allow hotpathalloc decoded envelope payload escapes to the caller
	rs := new(ResyncRequest)
	var err error
	if rs.Component, err = r.str(); err != nil {
		return nil, err
	}
	task, err := r.svarint()
	if err != nil {
		return nil, err
	}
	rs.TaskID = int(task)
	return rs, nil
}

//invalidb:hotpath
func (r *wireReader) decodeBackfillStart() (*BackfillStart, error) {
	//invalidb:allow hotpathalloc decoded envelope payload escapes to the caller
	s := new(BackfillStart)
	var err error
	if s.Tenant, err = r.str(); err != nil {
		return nil, err
	}
	if s.SubscriptionID, err = r.str(); err != nil {
		return nil, err
	}
	if s.BackfillID, err = r.str(); err != nil {
		return nil, err
	}
	if s.TTLMillis, err = r.svarint(); err != nil {
		return nil, err
	}
	slack, err := r.svarint()
	if err != nil {
		return nil, err
	}
	s.Slack = int(slack)
	if err = r.decodeSpec(&s.Query); err != nil {
		return nil, err
	}
	if s.Epoch, err = r.uvarint(); err != nil {
		return nil, err
	}
	return s, nil
}

//invalidb:hotpath
func (r *wireReader) decodeBackfillChunk() (*BackfillChunk, error) {
	//invalidb:allow hotpathalloc decoded envelope payload escapes to the caller
	c := new(BackfillChunk)
	var err error
	if c.Tenant, err = r.str(); err != nil {
		return nil, err
	}
	if c.SubscriptionID, err = r.str(); err != nil {
		return nil, err
	}
	if c.BackfillID, err = r.str(); err != nil {
		return nil, err
	}
	if c.QueryHash, err = r.fixed64(); err != nil {
		return nil, err
	}
	chunk, err := r.svarint()
	if err != nil {
		return nil, err
	}
	c.Chunk = int(chunk)
	if c.Low, err = r.uvarint(); err != nil {
		return nil, err
	}
	if c.High, err = r.uvarint(); err != nil {
		return nil, err
	}
	if c.Last, err = r.bool(); err != nil {
		return nil, err
	}
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > 0 { // 0 = nil entries
		n--
		if n > uint64(len(r.b))/3 { // key len + version + doc tag per entry
			return nil, errWireTruncated
		}
		//invalidb:allow hotpathalloc decoded chunk entries are retained by the envelope
		c.Entries = make([]ResultEntry, n)
		for i := range c.Entries {
			e := &c.Entries[i]
			if e.Key, err = r.str(); err != nil {
				return nil, err
			}
			if e.Version, err = r.uvarint(); err != nil {
				return nil, err
			}
			if e.Doc, err = r.docExact(); err != nil {
				return nil, err
			}
		}
	}
	if c.Epoch, err = r.uvarint(); err != nil {
		return nil, err
	}
	return c, nil
}

//invalidb:hotpath
func (r *wireReader) decodePartitionMap() (*PartitionMap, error) {
	//invalidb:allow hotpathalloc decoded envelope payload escapes to the caller
	m := new(PartitionMap)
	var err error
	if m.Epoch, err = r.uvarint(); err != nil {
		return nil, err
	}
	qp, err := r.svarint()
	if err != nil {
		return nil, err
	}
	m.QueryPartitions = int(qp)
	wp, err := r.svarint()
	if err != nil {
		return nil, err
	}
	m.WritePartitions = int(wp)
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(r.b)) { // every row is at least two bytes
		return nil, errWireTruncated
	}
	if n > 0 {
		//invalidb:allow hotpathalloc decoded row assignments are retained by the envelope
		m.Rows = make([]RowAssignment, n)
		for i := range m.Rows {
			if m.Rows[i].Node, err = r.str(); err != nil {
				return nil, err
			}
			slot, err := r.svarint()
			if err != nil {
				return nil, err
			}
			m.Rows[i].Slot = int(slot)
		}
	}
	//invalidb:allow hotpathalloc map validation errors allocate only on the reject path
	if err := m.validate(); err != nil {
		return nil, err
	}
	return m, nil
}

//invalidb:hotpath
func (r *wireReader) decodeNodeHello() (*NodeHello, error) {
	//invalidb:allow hotpathalloc decoded envelope payload escapes to the caller
	h := new(NodeHello)
	var err error
	if h.Node, err = r.str(); err != nil {
		return nil, err
	}
	slots, err := r.svarint()
	if err != nil {
		return nil, err
	}
	h.Slots = int(slots)
	maxWP, err := r.svarint()
	if err != nil {
		return nil, err
	}
	h.MaxWritePartitions = int(maxWP)
	present, err := r.bool()
	if err != nil {
		return nil, err
	}
	if present {
		if h.Map, err = r.decodePartitionMap(); err != nil {
			return nil, err
		}
	}
	return h, nil
}

//invalidb:hotpath
func (r *wireReader) decodeResize() (*ResizeRequest, error) {
	//invalidb:allow hotpathalloc decoded envelope payload escapes to the caller
	rr := new(ResizeRequest)
	axis, err := r.byte()
	if err != nil {
		return nil, err
	}
	switch axis {
	case 0:
		rr.Axis = ResizeAxisQP
	case 1:
		rr.Axis = ResizeAxisWP
	default:
		return nil, errWireBadValue
	}
	return rr, nil
}

//invalidb:hotpath
func (r *wireReader) decodeEpochAck() (*EpochAck, error) {
	//invalidb:allow hotpathalloc decoded envelope payload escapes to the caller
	a := new(EpochAck)
	var err error
	if a.Node, err = r.str(); err != nil {
		return nil, err
	}
	if a.Epoch, err = r.uvarint(); err != nil {
		return nil, err
	}
	return a, nil
}

//invalidb:hotpath
func (r *wireReader) decodeBackfillMark() (*BackfillMark, error) {
	//invalidb:allow hotpathalloc decoded envelope payload escapes to the caller
	m := new(BackfillMark)
	var err error
	if m.Tenant, err = r.str(); err != nil {
		return nil, err
	}
	if m.BackfillID, err = r.str(); err != nil {
		return nil, err
	}
	chunk, err := r.svarint()
	if err != nil {
		return nil, err
	}
	m.Chunk = int(chunk)
	phase, err := r.byte()
	if err != nil {
		return nil, err
	}
	switch phase {
	case 0:
		m.Phase = BackfillPhaseLow
	case 1:
		m.Phase = BackfillPhaseHigh
	default:
		return nil, errWireBadValue
	}
	if m.Seq, err = r.uvarint(); err != nil {
		return nil, err
	}
	return m, nil
}

//invalidb:hotpath
func (r *wireReader) decodeBackfillCert() (*BackfillCert, error) {
	//invalidb:allow hotpathalloc decoded envelope payload escapes to the caller
	c := new(BackfillCert)
	var err error
	if c.Tenant, err = r.str(); err != nil {
		return nil, err
	}
	if c.SubscriptionID, err = r.str(); err != nil {
		return nil, err
	}
	if c.BackfillID, err = r.str(); err != nil {
		return nil, err
	}
	if c.QueryID, err = r.str(); err != nil {
		return nil, err
	}
	chunk, err := r.svarint()
	if err != nil {
		return nil, err
	}
	c.Chunk = int(chunk)
	cell, err := r.svarint()
	if err != nil {
		return nil, err
	}
	c.Cell = int(cell)
	cells, err := r.svarint()
	if err != nil {
		return nil, err
	}
	c.Cells = int(cells)
	if c.Last, err = r.bool(); err != nil {
		return nil, err
	}
	if c.Origin, err = r.str(); err != nil {
		return nil, err
	}
	status, err := r.byte()
	if err != nil {
		return nil, err
	}
	switch status {
	case 0:
		c.Status = BackfillStatusOK
	case 1:
		c.Status = BackfillStatusRestart
	default:
		return nil, errWireBadValue
	}
	return c, nil
}
