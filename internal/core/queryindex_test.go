package core

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"invalidb/internal/document"
	"invalidb/internal/eventlayer"
	"invalidb/internal/query"
)

func mkMatchQuery(t *testing.T, spec query.Spec) *matchQuery {
	t.Helper()
	q, err := query.Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	return &matchQuery{
		tenant: "t", q: q, hash: TenantQueryHash("t", q),
		subs: map[string]time.Time{}, tracked: map[string]uint64{},
	}
}

func rangeSpec(lo, hi int) query.Spec {
	return query.Spec{Collection: "c", Filter: map[string]any{
		"n": map[string]any{"$gte": int64(lo), "$lt": int64(hi)},
	}}
}

func writeEvent(key string, n int64) *WriteEvent {
	return &WriteEvent{Tenant: "t", Image: &document.AfterImage{
		Collection: "c", Key: key, Version: 1, Op: document.OpInsert,
		Doc: document.Document{"_id": key, "n": n},
	}}
}

func TestQueryIndexStabbing(t *testing.T) {
	qi := newQueryIndex()
	var queries []*matchQuery
	for i := 0; i < 50; i++ {
		mq := mkMatchQuery(t, rangeSpec(i*10, i*10+10))
		queries = append(queries, mq)
		qi.add(mq)
	}
	we := writeEvent("k", 237)
	cands := qi.candidates(we, compositeKey("t", "c", "k"))
	if len(cands) != 1 {
		t.Fatalf("candidates = %d, want exactly the covering interval", len(cands))
	}
	if _, ok := cands[queries[23].hash]; !ok {
		t.Fatal("wrong candidate")
	}
	// A value outside every interval yields no candidates.
	if cands := qi.candidates(writeEvent("k", 9999), compositeKey("t", "c", "k")); len(cands) != 0 {
		t.Fatalf("out-of-range candidates = %d", len(cands))
	}
}

func TestQueryIndexOverlappingIntervals(t *testing.T) {
	qi := newQueryIndex()
	specs := []query.Spec{
		rangeSpec(0, 100),
		rangeSpec(50, 150),
		rangeSpec(90, 110),
		rangeSpec(200, 300),
	}
	for _, s := range specs {
		qi.add(mkMatchQuery(t, s))
	}
	cands := qi.candidates(writeEvent("k", 95), compositeKey("t", "c", "k"))
	if len(cands) != 3 {
		t.Fatalf("overlapping candidates = %d, want 3", len(cands))
	}
}

func TestQueryIndexBoundaries(t *testing.T) {
	qi := newQueryIndex()
	mq := mkMatchQuery(t, rangeSpec(10, 20)) // [10, 20)
	qi.add(mq)
	ck := compositeKey("t", "c", "k")
	if len(qi.candidates(writeEvent("k", 10), ck)) != 1 {
		t.Fatal("inclusive lower bound missed")
	}
	if len(qi.candidates(writeEvent("k", 20), ck)) != 0 {
		t.Fatal("exclusive upper bound hit")
	}
	if len(qi.candidates(writeEvent("k", 19), ck)) != 1 {
		t.Fatal("interior missed")
	}
}

func TestQueryIndexTrackersCoverDepartures(t *testing.T) {
	// A query must be probed for a key it tracks even when the new value
	// falls outside its interval (the record is leaving the result).
	qi := newQueryIndex()
	mq := mkMatchQuery(t, rangeSpec(0, 10))
	qi.add(mq)
	ck := compositeKey("t", "c", "k")
	qi.track(ck, mq)
	cands := qi.candidates(writeEvent("k", 5000), ck)
	if _, ok := cands[mq.hash]; !ok {
		t.Fatal("tracker did not force the probing of a departing record's query")
	}
	qi.untrack(ck, mq)
	if len(qi.candidates(writeEvent("k", 5000), ck)) != 0 {
		t.Fatal("untrack did not clear the tracker")
	}
}

func TestQueryIndexUnindexableQueriesAlwaysProbed(t *testing.T) {
	qi := newQueryIndex()
	regex := mkMatchQuery(t, query.Spec{Collection: "c", Filter: map[string]any{
		"s": map[string]any{"$regex": "^x"},
	}})
	qi.add(regex)
	cands := qi.candidates(writeEvent("k", 1), compositeKey("t", "c", "k"))
	if _, ok := cands[regex.hash]; !ok {
		t.Fatal("unindexable query skipped")
	}
	qi.remove(regex)
	if len(qi.candidates(writeEvent("k", 1), compositeKey("t", "c", "k"))) != 0 {
		t.Fatal("removed query still probed")
	}
}

func TestQueryIndexRemove(t *testing.T) {
	qi := newQueryIndex()
	mq := mkMatchQuery(t, rangeSpec(0, 100))
	qi.add(mq)
	qi.track(compositeKey("t", "c", "k"), mq)
	qi.remove(mq)
	if len(qi.candidates(writeEvent("k", 50), compositeKey("t", "c", "k"))) != 0 {
		t.Fatal("removed query still a candidate")
	}
}

func TestQueryIndexTenantAndCollectionIsolation(t *testing.T) {
	qi := newQueryIndex()
	mq := mkMatchQuery(t, rangeSpec(0, 100))
	qi.add(mq)
	// Same value in another collection: no candidates.
	we := &WriteEvent{Tenant: "t", Image: &document.AfterImage{
		Collection: "other", Key: "k", Version: 1, Op: document.OpInsert,
		Doc: document.Document{"_id": "k", "n": int64(50)},
	}}
	if len(qi.candidates(we, compositeKey("t", "other", "k"))) != 0 {
		t.Fatal("collection leak")
	}
	// Another tenant.
	we2 := &WriteEvent{Tenant: "t2", Image: writeEvent("k", 50).Image}
	if len(qi.candidates(we2, compositeKey("t2", "c", "k"))) != 0 {
		t.Fatal("tenant leak")
	}
}

// TestQueryIndexAgreesWithFullScan is the correctness property: under random
// intervals and values, the candidate set must contain every query the full
// scan would find relevant (a superset is fine, a miss is a bug).
func TestQueryIndexAgreesWithFullScan(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for round := 0; round < 30; round++ {
		qi := newQueryIndex()
		var all []*matchQuery
		for i := 0; i < 40; i++ {
			lo := rng.Intn(1000)
			hi := lo + 1 + rng.Intn(200)
			mq := mkMatchQuery(t, rangeSpec(lo, hi))
			all = append(all, mq)
			qi.add(mq)
		}
		for probe := 0; probe < 50; probe++ {
			v := int64(rng.Intn(1400) - 100)
			we := writeEvent("k", v)
			cands := qi.candidates(we, compositeKey("t", "c", "k"))
			for _, mq := range all {
				if mq.q.Match(we.Image.Doc) {
					if _, ok := cands[mq.hash]; !ok {
						t.Fatalf("round %d: matching query missing from candidates for v=%d", round, v)
					}
				}
			}
		}
	}
}

func TestIndexIntervalExtraction(t *testing.T) {
	cases := []struct {
		name   string
		filter map[string]any
		ok     bool
		in     []float64
		out    []float64
	}{
		{"range", map[string]any{"n": map[string]any{"$gte": 5, "$lt": 10}}, true, []float64{5, 9.9}, []float64{4.9, 10}},
		{"eq number", map[string]any{"n": 7}, true, []float64{7}, []float64{6.9, 7.1}},
		{"explicit eq", map[string]any{"n": map[string]any{"$eq": 7}}, true, []float64{7}, []float64{8}},
		{"gt only", map[string]any{"n": map[string]any{"$gt": 3}}, true, []float64{3.1, 1e9}, []float64{3, 2}},
		{"lte only", map[string]any{"n": map[string]any{"$lte": 3}}, true, []float64{3, -1e9}, []float64{3.1}},
		{"string eq unindexable", map[string]any{"s": "x"}, false, nil, nil},
		{"regex unindexable", map[string]any{"s": map[string]any{"$regex": "x"}}, false, nil, nil},
		{"or unindexable", map[string]any{"$or": []any{map[string]any{"n": 1}}}, false, nil, nil},
		{"ne unindexable", map[string]any{"n": map[string]any{"$ne": 1}}, false, nil, nil},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			q := query.MustCompile(query.Spec{Collection: "c", Filter: c.filter})
			iv, ok := q.IndexInterval()
			if ok != c.ok {
				t.Fatalf("IndexInterval ok = %v, want %v", ok, c.ok)
			}
			for _, v := range c.in {
				if !iv.Contains(v) {
					t.Errorf("Contains(%v) = false, want true", v)
				}
			}
			for _, v := range c.out {
				if iv.Contains(v) {
					t.Errorf("Contains(%v) = true, want false", v)
				}
			}
		})
	}
}

// TestQueryIndexEndToEnd runs the full cluster with the index enabled and
// verifies notifications still flow correctly.
func TestQueryIndexEndToEnd(t *testing.T) {
	e := newAggEnvWith(t, Options{
		TickInterval:     20 * time.Millisecond,
		EnableQueryIndex: true,
	})
	spec := query.Spec{Collection: "items", Filter: map[string]any{
		"price": map[string]any{"$gte": 10, "$lt": 20},
	}}
	e.subscribe(spec, nil)
	time.Sleep(50 * time.Millisecond)
	e.write(document.OpInsert, "hit", document.Document{"_id": "hit", "price": 15})
	e.write(document.OpInsert, "miss", document.Document{"_id": "miss", "price": 50})
	n := e.nextNotification()
	if n.Type != MatchAdd || n.Key != "hit" {
		t.Fatalf("indexed cluster notification = %+v", n)
	}
	// Departure through the tracker path.
	e.write(document.OpUpdate, "hit", document.Document{"_id": "hit", "price": 99})
	n = e.nextNotification()
	if n.Type != MatchRemove || n.Key != "hit" {
		t.Fatalf("departure notification = %+v", n)
	}
}

// newAggEnvWith generalizes the aggregate test env to arbitrary options.
func newAggEnvWith(t *testing.T, opts Options) *aggEnv {
	t.Helper()
	bus := eventlayer.NewMemBus(eventlayer.MemBusOptions{})
	cluster, err := NewCluster(bus, opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.Start(); err != nil {
		t.Fatal(err)
	}
	notif, err := bus.Subscribe(cluster.Topics().Notify("t"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = notif.Close()
		cluster.Stop()
		_ = bus.Close()
	})
	return &aggEnv{t: t, bus: bus, cluster: cluster, notif: notif}
}

// nextNotification waits for the next non-heartbeat notification.
func (e *aggEnv) nextNotification() *Notification {
	e.t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case msg, ok := <-e.notif.C():
			if !ok {
				e.t.Fatal("notification stream closed")
			}
			env, err := DecodeEnvelope(msg.Payload)
			if err != nil || env.Kind != KindNotification {
				continue
			}
			return env.Notification
		case <-deadline:
			e.t.Fatal("timed out waiting for notification")
		}
	}
}

func TestIntervalTreeDegenerateIdenticalIntervals(t *testing.T) {
	// Many identical intervals must not break tree construction.
	qi := newQueryIndex()
	for i := 0; i < 20; i++ {
		spec := query.Spec{Collection: "c", Filter: map[string]any{
			"n": map[string]any{"$gte": 5, "$lt": 6},
			// Distinct identities via an unindexable predicate, so every
			// query lands in the interval tree with an identical interval.
			"x": map[string]any{"$ne": fmt.Sprintf("tag%d", i)},
		}}
		qi.add(mkMatchQuery(t, spec))
	}
	cands := qi.candidates(writeEvent("k", 5), compositeKey("t", "c", "k"))
	if len(cands) != 20 {
		t.Fatalf("identical-interval candidates = %d, want 20", len(cands))
	}
}
