package core

import (
	"math"
	"testing"
	"time"

	"invalidb/internal/document"
	"invalidb/internal/eventlayer"
	"invalidb/internal/query"
)

// aggEnv wires a cluster with the aggregation extension stage and a direct
// bus client (no application server needed at this level).
type aggEnv struct {
	t       *testing.T
	bus     *eventlayer.MemBus
	cluster *Cluster
	notif   eventlayer.Subscription
	version uint64
}

func newAggEnv(t *testing.T) *aggEnv {
	t.Helper()
	bus := eventlayer.NewMemBus(eventlayer.MemBusOptions{})
	cluster, err := NewCluster(bus, Options{
		TickInterval:      20 * time.Millisecond,
		HeartbeatInterval: time.Second,
		ExtraStages:       []Stage{NewAggregationStage("price", 2)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.Start(); err != nil {
		t.Fatal(err)
	}
	notif, err := bus.Subscribe(cluster.Topics().Notify("t"))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = notif.Close()
		cluster.Stop()
		_ = bus.Close()
	})
	return &aggEnv{t: t, bus: bus, cluster: cluster, notif: notif}
}

func (e *aggEnv) subscribe(spec query.Spec, result []ResultEntry) {
	e.t.Helper()
	env := &Envelope{Kind: KindSubscribe, Subscribe: &SubscribeRequest{
		Tenant: "t", SubscriptionID: "s1", Query: spec, TTLMillis: 60_000, Result: result,
	}}
	data, err := env.Encode()
	if err != nil {
		e.t.Fatal(err)
	}
	if err := e.bus.Publish(e.cluster.Topics().Queries(), data); err != nil {
		e.t.Fatal(err)
	}
}

func (e *aggEnv) write(op document.Op, key string, doc document.Document) {
	e.t.Helper()
	e.version++
	env := &Envelope{Kind: KindWrite, Write: &WriteEvent{Tenant: "t", Image: &document.AfterImage{
		Collection: "items", Key: key, Version: e.version, Op: op, Doc: doc,
	}}}
	data, err := env.Encode()
	if err != nil {
		e.t.Fatal(err)
	}
	if err := e.bus.Publish(e.cluster.Topics().Writes(), data); err != nil {
		e.t.Fatal(err)
	}
}

// nextAggregate waits for the next $aggregate notification.
func (e *aggEnv) nextAggregate() document.Document {
	e.t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case msg, ok := <-e.notif.C():
			if !ok {
				e.t.Fatal("notification stream closed")
			}
			env, err := DecodeEnvelope(msg.Payload)
			if err != nil || env.Kind != KindNotification {
				continue
			}
			if env.Notification.Key == AggregateKey {
				return env.Notification.Doc
			}
		case <-deadline:
			e.t.Fatal("timed out waiting for aggregate notification")
		}
	}
}

// num reads a numeric aggregate field (JSON transport collapses whole
// floats into integers).
func num(t *testing.T, agg document.Document, field string) float64 {
	t.Helper()
	switch v := agg[field].(type) {
	case int64:
		return float64(v)
	case float64:
		return v
	default:
		t.Fatalf("aggregate field %q = %T (%v)", field, agg[field], agg)
		return 0
	}
}

func TestAggregationStageMaintainsStats(t *testing.T) {
	e := newAggEnv(t)
	spec := query.Spec{Collection: "items", Filter: map[string]any{"onSale": true}}
	e.subscribe(spec, nil)

	// The bootstrap publishes the initial (empty) aggregate first.
	agg := e.nextAggregate()
	if num(t, agg, "count") != 0 {
		t.Fatalf("bootstrap aggregate: %v", agg)
	}

	// First sale item: count 1, avg 10.
	e.write(document.OpInsert, "a", document.Document{"_id": "a", "onSale": true, "price": 10})
	agg = e.nextAggregate()
	if num(t, agg, "count") != 1 || num(t, agg, "avg") != 10 {
		t.Fatalf("after first add: %v", agg)
	}

	// Second: count 2, avg 20, min 10, max 30.
	e.write(document.OpInsert, "b", document.Document{"_id": "b", "onSale": true, "price": 30})
	agg = e.nextAggregate()
	if num(t, agg, "count") != 2 || num(t, agg, "avg") != 20 ||
		num(t, agg, "min") != 10 || num(t, agg, "max") != 30 {
		t.Fatalf("after second add: %v", agg)
	}

	// Price change adjusts the aggregate.
	e.write(document.OpUpdate, "a", document.Document{"_id": "a", "onSale": true, "price": 50})
	agg = e.nextAggregate()
	if num(t, agg, "avg") != 40 || num(t, agg, "max") != 50 {
		t.Fatalf("after change: %v", agg)
	}

	// Leaving the result (no longer on sale) removes it from the aggregate.
	e.write(document.OpUpdate, "b", document.Document{"_id": "b", "onSale": false, "price": 30})
	agg = e.nextAggregate()
	if num(t, agg, "count") != 1 || num(t, agg, "avg") != 50 {
		t.Fatalf("after remove: %v", agg)
	}

	// Deleting the last item empties the aggregate.
	e.write(document.OpDelete, "a", nil)
	agg = e.nextAggregate()
	if num(t, agg, "count") != 0 || num(t, agg, "sum") != 0 {
		t.Fatalf("after delete: %v", agg)
	}
	if _, hasAvg := agg["avg"]; hasAvg {
		t.Fatalf("empty aggregate should omit avg: %v", agg)
	}
}

func TestAggregationBootstrapFromInitialResult(t *testing.T) {
	e := newAggEnv(t)
	spec := query.Spec{Collection: "items", Filter: map[string]any{"onSale": true}}
	e.subscribe(spec, []ResultEntry{
		{Key: "x", Version: 1, Doc: document.Document{"_id": "x", "onSale": true, "price": int64(4)}},
		{Key: "y", Version: 2, Doc: document.Document{"_id": "y", "onSale": true, "price": int64(8)}},
	})
	agg := e.nextAggregate()
	if num(t, agg, "count") != 2 || math.Abs(num(t, agg, "avg")-6) > 1e-9 {
		t.Fatalf("bootstrap aggregate: %v", agg)
	}
}

func TestAggregationIgnoresNonNumericFields(t *testing.T) {
	e := newAggEnv(t)
	spec := query.Spec{Collection: "items", Filter: map[string]any{"onSale": true}}
	e.subscribe(spec, nil)
	_ = e.nextAggregate() // bootstrap (empty)
	e.write(document.OpInsert, "a", document.Document{"_id": "a", "onSale": true, "price": 10})
	_ = e.nextAggregate()
	// A matching document without a numeric price does not contribute.
	e.write(document.OpInsert, "weird", document.Document{"_id": "weird", "onSale": true, "price": "n/a"})
	e.write(document.OpInsert, "c", document.Document{"_id": "c", "onSale": true, "price": 20})
	agg := e.nextAggregate()
	if num(t, agg, "count") != 2 || num(t, agg, "avg") != 15 {
		t.Fatalf("non-numeric handling: %v", agg)
	}
}
