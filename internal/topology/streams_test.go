package topology

import (
	"sync"
	"testing"
	"time"
)

// splitterBolt routes even numbers to the default stream and odd numbers to
// a named "odd" stream.
type splitterBolt struct {
	out Collector
}

func (s *splitterBolt) Prepare(ctx *BoltContext, out Collector) error {
	s.out = out
	return nil
}

func (s *splitterBolt) Execute(t *Tuple) {
	n := t.Values[1].(int)
	if n%2 == 0 {
		s.out.Emit(t, t.Values)
	} else {
		s.out.EmitStream("odd", t, t.Values)
	}
	s.out.Ack(t)
}

func (s *splitterBolt) Cleanup() {}

func TestNamedStreamsRouteIndependently(t *testing.T) {
	const n = 40
	spout := &listSpout{items: values(n)}
	evens := &collectBolt{}
	odds := &collectBolt{}
	b := NewBuilder()
	b.SetSpout("src", func() Spout { return spout }, 1, "key", "n")
	b.SetBolt("split", func() Bolt { return &splitterBolt{} }, 1, "key", "n").
		DeclareStream("odd", "key", "n").
		ShuffleGrouping("src")
	b.SetBolt("evens", func() Bolt { return evens }, 1).ShuffleGrouping("split")
	b.SetBolt("odds", func() Bolt { return odds }, 1).ShuffleGroupingStream("split", "odd")
	top, err := b.Build(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := top.Start(); err != nil {
		t.Fatal(err)
	}
	defer top.Stop()
	waitFor(t, 2*time.Second, func() bool {
		return len(evens.snapshot())+len(odds.snapshot()) == n
	}, "all tuples routed")
	for _, v := range evens.snapshot() {
		if v[1].(int)%2 != 0 {
			t.Fatalf("odd tuple %v on the default stream", v)
		}
	}
	for _, v := range odds.snapshot() {
		if v[1].(int)%2 != 1 {
			t.Fatalf("even tuple %v on the odd stream", v)
		}
	}
	if len(evens.snapshot()) != n/2 || len(odds.snapshot()) != n/2 {
		t.Fatalf("split %d/%d, want %d/%d", len(evens.snapshot()), len(odds.snapshot()), n/2, n/2)
	}
}

func TestFieldsGroupingOnNamedStream(t *testing.T) {
	const n = 60
	spout := &listSpout{items: values(n)}
	var sinks []*collectBolt
	var mu sync.Mutex
	b := NewBuilder()
	b.SetSpout("src", func() Spout { return spout }, 1, "key", "n")
	b.SetBolt("split", func() Bolt { return &splitterBolt{} }, 1, "key", "n").
		DeclareStream("odd", "key", "n").
		ShuffleGrouping("src")
	b.SetBolt("sink", func() Bolt {
		cb := &collectBolt{}
		mu.Lock()
		sinks = append(sinks, cb)
		mu.Unlock()
		return cb
	}, 3).FieldsGroupingStream("split", "odd", "key")
	top, err := b.Build(Config{})
	if err != nil {
		t.Fatal(err)
	}
	_ = top.Start()
	defer top.Stop()
	waitFor(t, 2*time.Second, func() bool { return totalSeen(sinks) == n/2 }, "odd tuples delivered")
	owner := map[string]int{}
	for ti, s := range sinks {
		for _, v := range s.snapshot() {
			key := v[0].(string)
			if prev, seen := owner[key]; seen && prev != ti {
				t.Fatalf("key %q split across tasks %d and %d", key, prev, ti)
			}
			owner[key] = ti
		}
	}
}

func TestSubscribeToUndeclaredStreamFails(t *testing.T) {
	b := NewBuilder()
	b.SetSpout("src", func() Spout { return &listSpout{} }, 1, "key")
	b.SetBolt("sink", func() Bolt { return &collectBolt{} }, 1).ShuffleGroupingStream("src", "nope")
	if _, err := b.Build(Config{}); err == nil {
		t.Fatal("subscription to undeclared stream accepted")
	}
}

// batcherBolt buffers incoming tuples and, once size have arrived, emits a
// single batch tuple anchored to all of them before acking the anchors —
// the same pattern the core write-ingestion stage uses.
type batcherBolt struct {
	out     Collector
	size    int
	pending []*Tuple
}

func (b *batcherBolt) Prepare(ctx *BoltContext, out Collector) error {
	b.out = out
	return nil
}

func (b *batcherBolt) Execute(t *Tuple) {
	b.pending = append(b.pending, t)
	if len(b.pending) < b.size {
		return
	}
	b.out.EmitBatch(b.pending, Values{"batch", len(b.pending)})
	for _, a := range b.pending {
		b.out.Ack(a)
	}
	b.pending = b.pending[:0]
}

func (b *batcherBolt) Cleanup() {}

func buildBatchTopology(t *testing.T, spout *listSpout, sink Bolt) *Topology {
	t.Helper()
	b := NewBuilder()
	b.SetSpout("src", func() Spout { return spout }, 1, "key", "n")
	b.SetBolt("batch", func() Bolt { return &batcherBolt{size: 3} }, 1, "kind", "n").
		ShuffleGrouping("src")
	b.SetBolt("sink", func() Bolt { return sink }, 1).ShuffleGrouping("batch")
	top, err := b.Build(Config{EnableAcking: true, AckTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := top.Start(); err != nil {
		t.Fatal(err)
	}
	return top
}

func TestBatchEmitAcksEveryAnchor(t *testing.T) {
	const n = 6
	spout := &listSpout{items: values(n)}
	sink := &collectBolt{}
	top := buildBatchTopology(t, spout, sink)
	defer top.Stop()
	waitFor(t, 2*time.Second, func() bool { return spout.acks.Load() == n }, "all roots acked")
	if f := spout.fails.Load(); f != 0 {
		t.Fatalf("%d roots failed, want 0", f)
	}
	if got := len(sink.snapshot()); got != n/3 {
		t.Fatalf("sink saw %d batch tuples, want %d", got, n/3)
	}
}

func TestBatchEmitFailureFailsEveryAnchor(t *testing.T) {
	// The sink fails the first batch tuple and acks the rest: every root
	// anchored to the failed batch must fail, and only those.
	const n = 6
	spout := &listSpout{items: values(n)}
	var mu sync.Mutex
	batches := 0
	sink := &funcBolt{}
	sink.fn = func(out Collector, tup *Tuple) {
		mu.Lock()
		batches++
		first := batches == 1
		mu.Unlock()
		if first {
			out.Fail(tup)
			return
		}
		out.Ack(tup)
	}
	top := buildBatchTopology(t, spout, sink)
	defer top.Stop()
	waitFor(t, 2*time.Second, func() bool {
		return spout.acks.Load()+spout.fails.Load() == n
	}, "all roots resolved")
	if f := spout.fails.Load(); f != 3 {
		t.Fatalf("%d roots failed, want the whole first batch (3)", f)
	}
	if a := spout.acks.Load(); a != 3 {
		t.Fatalf("%d roots acked, want the whole second batch (3)", a)
	}
}

func TestTupleCarriesStreamName(t *testing.T) {
	spout := &listSpout{items: values(4)}
	var streams []string
	var mu sync.Mutex
	sink := &funcBolt{}
	sink.fn = func(out Collector, tup *Tuple) {
		mu.Lock()
		streams = append(streams, tup.Stream)
		mu.Unlock()
		out.Ack(tup)
	}
	b := NewBuilder()
	b.SetSpout("src", func() Spout { return spout }, 1, "key", "n")
	b.SetBolt("split", func() Bolt { return &splitterBolt{} }, 1, "key", "n").
		DeclareStream("odd", "key", "n").
		ShuffleGrouping("src")
	b.SetBolt("sink", func() Bolt { return sink }, 1).
		ShuffleGrouping("split").
		ShuffleGroupingStream("split", "odd")
	top, err := b.Build(Config{})
	if err != nil {
		t.Fatal(err)
	}
	_ = top.Start()
	defer top.Stop()
	waitFor(t, 2*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(streams) == 4
	}, "tuples delivered")
	mu.Lock()
	defer mu.Unlock()
	sawDefault, sawOdd := false, false
	for _, s := range streams {
		switch s {
		case DefaultStream:
			sawDefault = true
		case "odd":
			sawOdd = true
		default:
			t.Fatalf("unexpected stream %q", s)
		}
	}
	if !sawDefault || !sawOdd {
		t.Fatalf("streams seen: %v", streams)
	}
}
