package topology

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// listSpout emits a fixed list of values, optionally replaying failures.
type listSpout struct {
	mu     sync.Mutex
	items  []Values
	next   int
	ctx    *SpoutContext
	inFly  map[MsgID]Values
	replay bool
	acks   atomic.Uint64
	fails  atomic.Uint64
}

func (s *listSpout) Open(ctx *SpoutContext) error {
	s.ctx = ctx
	s.inFly = map[MsgID]Values{}
	return nil
}

func (s *listSpout) NextTuple() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.next >= len(s.items) {
		return false
	}
	v := s.items[s.next]
	s.next++
	id := s.ctx.Emit(v)
	if id != 0 {
		s.inFly[id] = v
	}
	return true
}

func (s *listSpout) Ack(id MsgID) {
	s.acks.Add(1)
	s.mu.Lock()
	delete(s.inFly, id)
	s.mu.Unlock()
}

func (s *listSpout) Fail(id MsgID) {
	s.fails.Add(1)
	s.mu.Lock()
	v, ok := s.inFly[id]
	delete(s.inFly, id)
	if ok && s.replay {
		s.items = append(s.items, v)
	}
	s.mu.Unlock()
}

func (s *listSpout) Close() {}

// collectBolt records every tuple it sees, acking each.
type collectBolt struct {
	mu   sync.Mutex
	seen []Values
	task int
	out  Collector
	// forward re-emits tuples downstream (anchored) when set.
	forward bool
	// failEvery makes the bolt fail each Nth tuple instead of acking.
	failEvery int
	count     int
}

func (b *collectBolt) Prepare(ctx *BoltContext, out Collector) error {
	b.task = ctx.TaskID
	b.out = out
	return nil
}

func (b *collectBolt) Execute(t *Tuple) {
	b.mu.Lock()
	b.count++
	fail := b.failEvery > 0 && b.count%b.failEvery == 0
	if !fail {
		b.seen = append(b.seen, t.Values)
	}
	b.mu.Unlock()
	if fail {
		b.out.Fail(t)
		return
	}
	if b.forward {
		b.out.Emit(t, t.Values)
	}
	b.out.Ack(t)
}

func (b *collectBolt) Cleanup() {}

func (b *collectBolt) snapshot() []Values {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]Values(nil), b.seen...)
}

func values(n int) []Values {
	out := make([]Values, n)
	for i := range out {
		out[i] = Values{fmt.Sprintf("k%d", i%4), i}
	}
	return out
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("timeout: " + msg)
}

func TestBuilderValidation(t *testing.T) {
	mkSpout := func() Spout { return &listSpout{} }
	mkBolt := func() Bolt { return &collectBolt{} }

	cases := []struct {
		name  string
		build func(b *Builder)
	}{
		{"empty", func(b *Builder) {}},
		{"no spout", func(b *Builder) {
			b.SetBolt("b", mkBolt, 1).ShuffleGrouping("b")
		}},
		{"dup id", func(b *Builder) {
			b.SetSpout("s", mkSpout, 1)
			b.SetSpout("s", mkSpout, 1)
		}},
		{"zero parallelism", func(b *Builder) {
			b.SetSpout("s", mkSpout, 0)
		}},
		{"bolt without grouping", func(b *Builder) {
			b.SetSpout("s", mkSpout, 1)
			b.SetBolt("b", mkBolt, 1)
		}},
		{"unknown upstream", func(b *Builder) {
			b.SetSpout("s", mkSpout, 1)
			b.SetBolt("b", mkBolt, 1).ShuffleGrouping("nope")
		}},
		{"fields grouping without fields", func(b *Builder) {
			b.SetSpout("s", mkSpout, 1, "k")
			b.SetBolt("b", mkBolt, 1).FieldsGrouping("s")
		}},
		{"fields grouping on undeclared field", func(b *Builder) {
			b.SetSpout("s", mkSpout, 1, "k")
			b.SetBolt("b", mkBolt, 1).FieldsGrouping("s", "missing")
		}},
		{"empty id", func(b *Builder) {
			b.SetSpout("", mkSpout, 1)
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			b := NewBuilder()
			c.build(b)
			if _, err := b.Build(Config{}); err == nil {
				t.Fatal("invalid topology accepted")
			}
		})
	}
}

func runSimple(t *testing.T, parallelism int, grouping func(*BoltDecl) *BoltDecl, n int, cfg Config) (*Topology, *listSpout, []*collectBolt) {
	t.Helper()
	spout := &listSpout{items: values(n), replay: true}
	var bolts []*collectBolt
	var boltMu sync.Mutex
	b := NewBuilder()
	b.SetSpout("src", func() Spout { return spout }, 1, "key", "n")
	grouping(b.SetBolt("sink", func() Bolt {
		cb := &collectBolt{}
		boltMu.Lock()
		bolts = append(bolts, cb)
		boltMu.Unlock()
		return cb
	}, parallelism))
	top, err := b.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := top.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(top.Stop)
	return top, spout, bolts
}

func totalSeen(bolts []*collectBolt) int {
	n := 0
	for _, b := range bolts {
		n += len(b.snapshot())
	}
	return n
}

func TestShuffleDeliversAll(t *testing.T) {
	const n = 200
	_, _, bolts := runSimple(t, 3, func(d *BoltDecl) *BoltDecl { return d.ShuffleGrouping("src") }, n, Config{})
	waitFor(t, 2*time.Second, func() bool { return totalSeen(bolts) == n }, "all tuples delivered")
	// Shuffle should spread work across tasks.
	for i, b := range bolts {
		if len(b.snapshot()) == 0 {
			t.Errorf("task %d received nothing under shuffle grouping", i)
		}
	}
}

func TestFieldsGroupingPartitionsByKey(t *testing.T) {
	const n = 200
	_, _, bolts := runSimple(t, 4, func(d *BoltDecl) *BoltDecl { return d.FieldsGrouping("src", "key") }, n, Config{})
	waitFor(t, 2*time.Second, func() bool { return totalSeen(bolts) == n }, "all tuples delivered")
	// Every distinct key must land on exactly one task.
	owner := map[string]int{}
	for ti, b := range bolts {
		for _, v := range b.snapshot() {
			key := v[0].(string)
			if prev, seen := owner[key]; seen && prev != ti {
				t.Fatalf("key %q delivered to tasks %d and %d", key, prev, ti)
			}
			owner[key] = ti
		}
	}
	if len(owner) != 4 {
		t.Fatalf("expected 4 distinct keys, saw %d", len(owner))
	}
}

func TestBroadcastGroupingReplicates(t *testing.T) {
	const n = 50
	_, _, bolts := runSimple(t, 3, func(d *BoltDecl) *BoltDecl { return d.BroadcastGrouping("src") }, n, Config{})
	waitFor(t, 2*time.Second, func() bool { return totalSeen(bolts) == 3*n }, "broadcast delivered to all tasks")
	for i, b := range bolts {
		if got := len(b.snapshot()); got != n {
			t.Errorf("task %d saw %d tuples, want %d", i, got, n)
		}
	}
}

func TestGlobalGroupingSingleTask(t *testing.T) {
	const n = 50
	_, _, bolts := runSimple(t, 3, func(d *BoltDecl) *BoltDecl { return d.GlobalGrouping("src") }, n, Config{})
	waitFor(t, 2*time.Second, func() bool { return totalSeen(bolts) == n }, "global grouping delivered")
	nonEmpty := 0
	for _, b := range bolts {
		if len(b.snapshot()) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty != 1 {
		t.Fatalf("global grouping hit %d tasks, want 1", nonEmpty)
	}
}

func TestTupleGet(t *testing.T) {
	tup := &Tuple{Values: Values{"a", 7}, fields: []string{"key", "n"}}
	if v, ok := tup.Get("n"); !ok || v != 7 {
		t.Fatalf("Get(n) = %v, %v", v, ok)
	}
	if _, ok := tup.Get("missing"); ok {
		t.Fatal("Get on undeclared field succeeded")
	}
}

func TestAckingCompletesTrees(t *testing.T) {
	const n = 100
	spout := &listSpout{items: values(n)}
	mid := &collectBolt{forward: true}
	sink := &collectBolt{}
	b := NewBuilder()
	b.SetSpout("src", func() Spout { return spout }, 1, "key", "n")
	b.SetBolt("mid", func() Bolt { return mid }, 1, "key", "n").ShuffleGrouping("src")
	b.SetBolt("sink", func() Bolt { return sink }, 1).ShuffleGrouping("mid")
	top, err := b.Build(Config{EnableAcking: true, AckTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := top.Start(); err != nil {
		t.Fatal(err)
	}
	defer top.Stop()
	waitFor(t, 3*time.Second, func() bool { return spout.acks.Load() == n }, "all trees acked")
	if spout.fails.Load() != 0 {
		t.Fatalf("unexpected failures: %d", spout.fails.Load())
	}
	if top.acker.pendingCount() != 0 {
		t.Fatalf("acker still holds %d ledgers", top.acker.pendingCount())
	}
	if len(sink.snapshot()) != n {
		t.Fatalf("sink saw %d tuples, want %d", len(sink.snapshot()), n)
	}
}

func TestFailTriggersSpoutFail(t *testing.T) {
	const n = 30
	spout := &listSpout{items: values(n)}
	sink := &collectBolt{failEvery: 3}
	b := NewBuilder()
	b.SetSpout("src", func() Spout { return spout }, 1, "key", "n")
	b.SetBolt("sink", func() Bolt { return sink }, 1).ShuffleGrouping("src")
	top, err := b.Build(Config{EnableAcking: true, AckTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	_ = top.Start()
	defer top.Stop()
	waitFor(t, 3*time.Second, func() bool {
		return spout.acks.Load()+spout.fails.Load() == n
	}, "all trees resolved")
	if spout.fails.Load() != n/3 {
		t.Fatalf("fails = %d, want %d", spout.fails.Load(), n/3)
	}
}

func TestAckTimeoutReplays(t *testing.T) {
	// A bolt that drops (neither acks nor fails) every tuple once.
	var dropped sync.Map
	spout := &listSpout{items: values(10), replay: true}
	sink := &collectBolt{}
	b := NewBuilder()
	b.SetSpout("src", func() Spout { return spout }, 1, "key", "n")
	b.SetBolt("sink", func() Bolt { return &onceDropBolt{inner: sink, dropped: &dropped} }, 1).ShuffleGrouping("src")
	top, err := b.Build(Config{EnableAcking: true, AckTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	_ = top.Start()
	defer top.Stop()
	waitFor(t, 5*time.Second, func() bool { return len(sink.snapshot()) == 10 }, "replayed tuples eventually processed")
	if spout.fails.Load() == 0 {
		t.Fatal("expected timeout-induced failures")
	}
}

type onceDropBolt struct {
	inner   *collectBolt
	dropped *sync.Map
	out     Collector
}

func (b *onceDropBolt) Prepare(ctx *BoltContext, out Collector) error {
	b.out = out
	return b.inner.Prepare(ctx, out)
}

func (b *onceDropBolt) Execute(t *Tuple) {
	key := fmt.Sprint(t.Values)
	if _, seen := b.dropped.LoadOrStore(key, true); !seen {
		return // drop silently: the acker must time the tree out
	}
	b.inner.Execute(t)
}

func (b *onceDropBolt) Cleanup() {}

func TestMaxSpoutPendingThrottles(t *testing.T) {
	// A slow sink with max pending 4: in-flight trees never exceed 4.
	spout := &listSpout{items: values(40)}
	var maxInFlight atomic.Int64
	var inFlight atomic.Int64
	sink := &funcBolt{fn: func(out Collector, tup *Tuple) {
		cur := inFlight.Add(1)
		for {
			prev := maxInFlight.Load()
			if cur <= prev || maxInFlight.CompareAndSwap(prev, cur) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		inFlight.Add(-1)
		out.Ack(tup)
	}}
	b := NewBuilder()
	b.SetSpout("src", func() Spout { return spout }, 1, "key", "n")
	b.SetBolt("sink", func() Bolt { return sink }, 1).ShuffleGrouping("src")
	top, err := b.Build(Config{EnableAcking: true, MaxSpoutPending: 4, AckTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	_ = top.Start()
	defer top.Stop()
	waitFor(t, 5*time.Second, func() bool { return spout.acks.Load() == 40 }, "all acked")
	if maxInFlight.Load() > 4 {
		t.Fatalf("in-flight trees reached %d, limit 4", maxInFlight.Load())
	}
}

type funcBolt struct {
	fn  func(out Collector, t *Tuple)
	out Collector
}

func (b *funcBolt) Prepare(ctx *BoltContext, out Collector) error { b.out = out; return nil }
func (b *funcBolt) Execute(t *Tuple)                              { b.fn(b.out, t) }
func (b *funcBolt) Cleanup()                                      {}

func TestEmitDirect(t *testing.T) {
	spout := &listSpout{items: values(20)}
	var sinks []*collectBolt
	var mu sync.Mutex
	router := &funcBolt{}
	router.fn = func(out Collector, tup *Tuple) {
		// Route everything to task 2 explicitly.
		out.EmitDirect(2, tup, tup.Values)
		out.Ack(tup)
	}
	b := NewBuilder()
	b.SetSpout("src", func() Spout { return spout }, 1, "key", "n")
	b.SetBolt("router", func() Bolt { return router }, 1, "key", "n").ShuffleGrouping("src")
	b.SetBolt("sink", func() Bolt {
		cb := &collectBolt{}
		mu.Lock()
		sinks = append(sinks, cb)
		mu.Unlock()
		return cb
	}, 4).DirectGrouping("router")
	top, err := b.Build(Config{})
	if err != nil {
		t.Fatal(err)
	}
	_ = top.Start()
	defer top.Stop()
	waitFor(t, 2*time.Second, func() bool { return totalSeen(sinks) == 20 }, "direct tuples delivered")
	for _, s := range sinks {
		if s.task != 2 && len(s.snapshot()) > 0 {
			t.Fatalf("task %d received direct tuples meant for task 2", s.task)
		}
	}
}

func TestStatsAndDoubleLifecycle(t *testing.T) {
	// Two spout tasks, each its own instance with half of the input.
	var mkMu sync.Mutex
	made := 0
	sink := &collectBolt{}
	b := NewBuilder()
	b.SetSpout("src", func() Spout {
		mkMu.Lock()
		defer mkMu.Unlock()
		made++
		return &listSpout{items: values(5)}
	}, 2, "key", "n")
	b.SetBolt("sink", func() Bolt { return sink }, 1).ShuffleGrouping("src")
	top, err := b.Build(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := top.Start(); err != nil {
		t.Fatal(err)
	}
	if err := top.Start(); err == nil {
		t.Fatal("double Start accepted")
	}
	if made != 2 {
		t.Fatalf("spout factory invoked %d times, want 2", made)
	}
	waitFor(t, 2*time.Second, func() bool { return len(sink.snapshot()) == 10 }, "delivered")
	stats := top.Stats()
	if len(stats) != 3 { // 2 spout tasks + 1 bolt task
		t.Fatalf("Stats returned %d entries, want 3", len(stats))
	}
	var executed uint64
	for _, s := range stats {
		if s.Component == "sink" {
			executed += s.Executed
		}
	}
	if executed != 10 {
		t.Fatalf("sink executed = %d, want 10", executed)
	}
	top.Stop()
	top.Stop() // idempotent
}

func TestMultipleSubscribersBothReceive(t *testing.T) {
	const n = 30
	spout := &listSpout{items: values(n)}
	a := &collectBolt{}
	c := &collectBolt{}
	b := NewBuilder()
	b.SetSpout("src", func() Spout { return spout }, 1, "key", "n")
	b.SetBolt("a", func() Bolt { return a }, 1).ShuffleGrouping("src")
	b.SetBolt("c", func() Bolt { return c }, 1).ShuffleGrouping("src")
	top, err := b.Build(Config{EnableAcking: true, AckTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	_ = top.Start()
	defer top.Stop()
	waitFor(t, 2*time.Second, func() bool {
		return len(a.snapshot()) == n && len(c.snapshot()) == n && spout.acks.Load() == n
	}, "both subscribers received every tuple and trees completed")
}
