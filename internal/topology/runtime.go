package topology

import (
	"fmt"
	"math/rand"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"invalidb/internal/metrics"
)

// Topology is a running dataflow. Create one with Builder.Build, start it
// with Start, and tear it down with Stop.
type Topology struct {
	cfg     Config
	comps   map[string]*component
	order   []string
	acker   *acker
	stopped chan struct{}
	wg      sync.WaitGroup
	started atomic.Bool
	halted  atomic.Bool
}

type component struct {
	top    *Topology
	def    *componentDef
	tasks  []*task
	routes map[string][]*route // stream -> downstream subscriptions
}

type route struct {
	sub    *subscription
	target *component
	rr     atomic.Uint64 // round-robin cursor for shuffle grouping
}

type task struct {
	comp  *component
	id    int
	in    chan *Tuple
	spout Spout
	bolt  Bolt

	executed atomic.Uint64
	emitted  atomic.Uint64
	acked    atomic.Uint64
	failed   atomic.Uint64

	pending     chan struct{}   // spout max-pending semaphore (nil = unlimited)
	completions chan completion // ack/fail results, drained on the spout goroutine
	rng         *rand.Rand
	rngMu       sync.Mutex
	rootScratch []uint64 // reused by batch emits to gather anchor roots

	// Supervisor state. inflight, incarnation and openRoot are touched only
	// on the task goroutine; the counters are atomics so Stats can read
	// them concurrently.
	inflight    *Tuple // tuple currently inside Execute
	incarnation int    // supervisor restarts of this task so far
	openRoot    uint64 // root being fanned out by spoutEmit right now
	restarts    atomic.Uint64
	panics      atomic.Uint64
	dead        atomic.Bool
	lastPanic   atomic.Value  // string: last recovered panic value + stack
	haltedCh    chan struct{} // closed when a spout task stops for good
	haltOnce    sync.Once
}

// recordPanic preserves a recovered panic's value and stack so the
// supervisor never hides why a task crashed: the reason is exposed through
// TaskStats.LastPanic even after the task is replaced or marked dead.
func (tk *task) recordPanic(r any) {
	tk.lastPanic.Store(fmt.Sprintf("%s[%d]: panic: %v\n%s",
		tk.comp.def.id, tk.id, r, debug.Stack()))
}

// markHalted records that this spout task will never drain completions
// again, letting the acker discard its remaining ledgers.
func (tk *task) markHalted() {
	tk.haltOnce.Do(func() { close(tk.haltedCh) })
}

func (tk *task) isHalted() bool {
	select {
	case <-tk.haltedCh:
		return true
	default:
		return false
	}
}

// tuplePool recycles Tuple objects across deliveries. A tuple is drawn in
// fanOut and returned the moment the receiving bolt acks or fails it, so a
// steady-state topology routes without allocating tuples at all.
var tuplePool = sync.Pool{New: func() any { return new(Tuple) }}

// recycleTuple resets a delivered tuple and returns it to the pool. The
// extra-anchor slices keep their capacity so multi-anchored batch tuples
// recycle allocation-free too.
//
//invalidb:hotpath
func recycleTuple(t *Tuple) {
	t.Component = ""
	t.Stream = ""
	t.Values = nil
	t.fields = nil
	t.root = 0
	t.edge = 0
	t.taskID = 0
	t.extraRoots = t.extraRoots[:0]
	t.extraEdges = t.extraEdges[:0]
	t.done = false
	tuplePool.Put(t)
}

// completion is an ack or fail verdict for a spout root tuple. Completions
// are queued and delivered on the spout's own task goroutine (as in Storm),
// so Spout implementations never see Ack/Fail concurrently with NextTuple.
type completion struct {
	id MsgID
	ok bool
}

func newTopology(b *Builder, cfg Config) (*Topology, error) {
	t := &Topology{
		cfg:     cfg,
		comps:   map[string]*component{},
		order:   append([]string(nil), b.order...),
		stopped: make(chan struct{}),
	}
	if cfg.EnableAcking {
		t.acker = newAcker(cfg.AckTimeout)
	}
	for _, id := range b.order {
		def := b.components[id]
		comp := &component{top: t, def: def, routes: map[string][]*route{}}
		for i := 0; i < def.parallelism; i++ {
			tk := &task{
				comp:     comp,
				id:       i,
				rng:      rand.New(rand.NewSource(int64(len(id))*7919 + int64(i) + 1)),
				haltedCh: make(chan struct{}),
			}
			if def.bolt != nil {
				tk.in = make(chan *Tuple, cfg.QueueSize)
				tk.bolt = def.bolt()
			} else {
				tk.spout = def.spout()
				if cfg.EnableAcking {
					if cfg.MaxSpoutPending > 0 {
						tk.pending = make(chan struct{}, cfg.MaxSpoutPending)
					}
					qlen := 4 * cfg.QueueSize
					if cfg.MaxSpoutPending > 0 && 2*cfg.MaxSpoutPending > qlen {
						qlen = 2 * cfg.MaxSpoutPending
					}
					tk.completions = make(chan completion, qlen)
				}
			}
			comp.tasks = append(comp.tasks, tk)
		}
		t.comps[id] = comp
	}
	// Resolve routes: for every bolt subscription, register a route on the
	// upstream component's stream.
	for _, id := range b.order {
		def := b.components[id]
		for i := range def.subs {
			sub := &def.subs[i]
			up := t.comps[sub.from]
			up.routes[sub.stream] = append(up.routes[sub.stream], &route{sub: sub, target: t.comps[id]})
		}
	}
	return t, nil
}

// Start prepares all bolts, opens all spouts, and begins processing.
func (t *Topology) Start() error {
	if !t.started.CompareAndSwap(false, true) {
		return fmt.Errorf("topology: already started")
	}
	if t.acker != nil {
		t.acker.start(&t.wg, t.stopped)
	}
	// Prepare bolts before any spout can emit.
	for _, id := range t.order {
		comp := t.comps[id]
		if comp.def.bolt == nil {
			continue
		}
		for _, tk := range comp.tasks {
			if err := tk.bolt.Prepare(&BoltContext{TaskID: tk.id, Meta: taskMetaFor(comp.def, tk.id)}, &taskCollector{task: tk}); err != nil {
				return fmt.Errorf("topology: prepare %s[%d]: %w", id, tk.id, err)
			}
			t.wg.Add(1)
			go tk.boltLoop(&t.wg)
		}
	}
	for _, id := range t.order {
		comp := t.comps[id]
		if comp.def.spout == nil {
			continue
		}
		for _, tk := range comp.tasks {
			tk := tk
			ctx := &SpoutContext{TaskID: tk.id, Emit: tk.spoutEmit}
			if err := tk.spout.Open(ctx); err != nil {
				return fmt.Errorf("topology: open %s[%d]: %w", id, tk.id, err)
			}
			t.wg.Add(1)
			go tk.spoutLoop(&t.wg)
		}
	}
	return nil
}

// Stop halts all tasks. In-flight tuples are dropped — with acking enabled
// their trees would simply replay on a restarted topology, matching Storm's
// kill semantics.
func (t *Topology) Stop() {
	if !t.halted.CompareAndSwap(false, true) {
		return
	}
	close(t.stopped)
	t.wg.Wait()
	for _, id := range t.order {
		comp := t.comps[id]
		for _, tk := range comp.tasks {
			// A dead task's last instance may be mid-panic broken; shut it
			// down defensively so teardown always completes.
			if tk.spout != nil {
				safeCloseSpout(tk.spout)
			}
			if tk.bolt != nil {
				safeCleanupBolt(tk.bolt)
			}
		}
	}
}

// TaskStats is a point-in-time snapshot of one task's counters.
type TaskStats struct {
	Component string
	TaskID    int
	Executed  uint64
	Emitted   uint64
	Acked     uint64
	Failed    uint64
	QueueLen  int
	// Restarts counts supervisor replacements of this task's component
	// instance; Panics counts recovered panics (Panics can exceed
	// Restarts by one when the task died). Dead reports that the task
	// exhausted its restart budget and now fails all input. LastPanic
	// carries the most recent recovered panic's value and stack trace
	// ("" when the task never panicked), so a restarted or dead task
	// leaves a diagnosable trail instead of a bare counter.
	Restarts  uint64
	Panics    uint64
	Dead      bool
	LastPanic string
}

// Stats snapshots all task counters.
func (t *Topology) Stats() []TaskStats {
	var out []TaskStats
	for _, id := range t.order {
		comp := t.comps[id]
		for _, tk := range comp.tasks {
			s := TaskStats{
				Component: id,
				TaskID:    tk.id,
				Executed:  tk.executed.Load(),
				Emitted:   tk.emitted.Load(),
				Acked:     tk.acked.Load(),
				Failed:    tk.failed.Load(),
				Restarts:  tk.restarts.Load(),
				Panics:    tk.panics.Load(),
				Dead:      tk.dead.Load(),
			}
			if lp, ok := tk.lastPanic.Load().(string); ok {
				s.LastPanic = lp
			}
			if tk.in != nil {
				s.QueueLen = len(tk.in)
			}
			out = append(out, s)
		}
	}
	return out
}

// AckerInFlight reports the number of open acker ledgers (tuple trees
// emitted but not yet fully acked, failed, or timed out). Zero when
// acking is disabled.
func (t *Topology) AckerInFlight() int {
	if t.acker == nil {
		return 0
	}
	return t.acker.pendingCount()
}

// RegisterMetrics exports per-component task aggregates — executed /
// emitted / acked / failed / restarts / panics / dead counts, queue
// depths — plus acker in-flight and last-panic text into the registry.
// Everything is sampled from the existing task atomics at snapshot
// time, so registration adds no cost to tuple processing.
func (t *Topology) RegisterMetrics(r *metrics.Registry) {
	r.Gauge("topology.acker.in_flight", func() float64 { return float64(t.AckerInFlight()) })
	r.Text("topology.last_panic", func() string {
		var last string
		for _, s := range t.Stats() {
			if s.LastPanic != "" {
				last = s.Component + ": " + s.LastPanic
			}
		}
		return last
	})
	r.Collect(func(emit func(name string, v float64)) {
		agg := map[string]*TaskStats{}
		dead := map[string]int{}
		for _, s := range t.Stats() {
			a := agg[s.Component]
			if a == nil {
				a = &TaskStats{}
				agg[s.Component] = a
			}
			a.Executed += s.Executed
			a.Emitted += s.Emitted
			a.Acked += s.Acked
			a.Failed += s.Failed
			a.Restarts += s.Restarts
			a.Panics += s.Panics
			a.QueueLen += s.QueueLen
			if s.Dead {
				dead[s.Component]++
			}
		}
		for comp, a := range agg {
			emit("topology."+comp+".executed", float64(a.Executed))
			emit("topology."+comp+".emitted", float64(a.Emitted))
			emit("topology."+comp+".acked", float64(a.Acked))
			emit("topology."+comp+".failed", float64(a.Failed))
			emit("topology."+comp+".restarts", float64(a.Restarts))
			emit("topology."+comp+".panics", float64(a.Panics))
			emit("topology."+comp+".queue_len", float64(a.QueueLen))
			emit("topology."+comp+".dead", float64(dead[comp]))
		}
	})
}

// spoutLoop supervises one spout task: it drives the spout until the
// topology stops, recovering panics and replacing the crashed spout with a
// fresh instance up to MaxTaskRestarts times. A spout that exhausts its
// restarts is marked dead and halted so the acker deletes its remaining
// ledgers instead of queueing completions nobody will ever drain.
func (tk *task) spoutLoop(wg *sync.WaitGroup) {
	defer wg.Done()
	defer tk.markHalted()
	top := tk.comp.top
	for {
		if tk.runSpout() {
			return // topology stopped
		}
		tk.panics.Add(1)
		if tk.openRoot != 0 {
			// The panic interrupted spoutEmit mid-fan-out: fail the
			// half-registered tree so it replays instead of leaking an
			// unsealed ledger.
			if top.acker != nil {
				top.acker.fail(tk.openRoot)
			}
			tk.openRoot = 0
		}
		if int(tk.restarts.Load()) >= top.cfg.MaxTaskRestarts {
			tk.dead.Store(true)
			return
		}
		tk.restarts.Add(1)
		tk.incarnation++
		safeCloseSpout(tk.spout)
		fresh := tk.comp.def.spout()
		if err := fresh.Open(&SpoutContext{TaskID: tk.id, Emit: tk.spoutEmit}); err != nil {
			tk.dead.Store(true)
			return
		}
		tk.spout = fresh
		tk.notifyRestart()
	}
}

// runSpout is one supervised run of the spout drive loop: NextTuple until
// the topology stops, interleaving completion delivery so Ack/Fail run on
// this goroutine. It reports true when the topology stopped and false when
// the spout panicked.
func (tk *task) runSpout() (stopped bool) {
	defer func() {
		if r := recover(); r != nil {
			tk.recordPanic(r)
			stopped = false
		}
	}()
	idle := time.Duration(0)
	for {
		tk.drainCompletions()
		select {
		case <-tk.comp.top.stopped:
			return true
		default:
		}
		if tk.spout.NextTuple() {
			idle = 0
			continue
		}
		// Back off while the spout has nothing to emit, capped at 1ms to
		// keep wake-up latency low; completions cut the nap short.
		if idle < time.Millisecond {
			idle += 100 * time.Microsecond
		}
		if tk.completions != nil {
			select {
			case <-tk.comp.top.stopped:
				return true
			case c := <-tk.completions:
				tk.deliver(c)
			case <-time.After(idle):
			}
			continue
		}
		select {
		case <-tk.comp.top.stopped:
			return true
		case <-time.After(idle):
		}
	}
}

func (tk *task) notifyRestart() {
	if cb := tk.comp.top.cfg.OnTaskRestart; cb != nil {
		go cb(tk.comp.def.id, tk.id)
	}
}

// safeCloseSpout / safeCleanupBolt shut down a (possibly already broken)
// component instance without letting its panic escape the supervisor.
func safeCloseSpout(s Spout) {
	defer func() { _ = recover() }()
	s.Close()
}

func safeCleanupBolt(b Bolt) {
	defer func() { _ = recover() }()
	b.Cleanup()
}

func (tk *task) drainCompletions() {
	if tk.completions == nil {
		return
	}
	for {
		select {
		case c := <-tk.completions:
			tk.deliver(c)
		default:
			return
		}
	}
}

func (tk *task) deliver(c completion) {
	if c.ok {
		tk.spout.Ack(c.id)
	} else {
		tk.spout.Fail(c.id)
	}
}

// spoutEmit injects a root tuple.
func (tk *task) spoutEmit(values Values) MsgID {
	top := tk.comp.top
	var root uint64
	if top.acker != nil {
		if tk.pending != nil {
			select {
			case tk.pending <- struct{}{}:
			case <-top.stopped:
				return 0
			}
		}
		root = tk.nextID()
		top.acker.register(root, tk)
		tk.openRoot = root // supervisor fails this if the spout panics mid-emit
	}
	tk.emitted.Add(1)
	tk.comp.fanOut(tk, DefaultStream, root, nil, values, -1)
	if top.acker != nil {
		// Seal the registration: if the fan-out reached no consumer the
		// tree completes immediately.
		top.acker.seal(root)
		tk.openRoot = 0
	}
	return MsgID(root)
}

// releasePending frees one max-pending slot after ack or fail.
func (tk *task) releasePending() {
	if tk.pending != nil {
		select {
		case <-tk.pending:
		default:
		}
	}
}

func (tk *task) nextID() uint64 {
	tk.rngMu.Lock()
	defer tk.rngMu.Unlock()
	for {
		if v := tk.rng.Uint64(); v != 0 {
			return v
		}
	}
}

// boltLoop supervises one bolt task: it consumes the input queue until the
// topology stops, recovering panics thrown by Execute/Idle. A panic fails
// the in-flight tuple's ledger (so the acker triggers spout replay) and the
// crashed bolt is replaced with a fresh instance from the component
// factory, up to MaxTaskRestarts times; after that the task is marked dead
// but keeps draining — and failing — its input so upstream emitters never
// block on a queue nobody reads.
func (tk *task) boltLoop(wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		if tk.runBolt() {
			return // topology stopped
		}
		tk.panics.Add(1)
		tk.failInflight()
		if int(tk.restarts.Load()) >= tk.comp.top.cfg.MaxTaskRestarts {
			tk.dead.Store(true)
			tk.drainDead()
			return
		}
		tk.restarts.Add(1)
		tk.incarnation++
		safeCleanupBolt(tk.bolt)
		fresh := tk.comp.def.bolt()
		err := fresh.Prepare(&BoltContext{TaskID: tk.id, Incarnation: tk.incarnation, Meta: taskMetaFor(tk.comp.def, tk.id)}, &taskCollector{task: tk})
		if err != nil {
			tk.dead.Store(true)
			tk.drainDead()
			return
		}
		tk.bolt = fresh
		tk.notifyRestart()
	}
}

// taskMetaFor resolves a component's per-task placement metadata (nil when
// the component declared no TaskMeta hook). Called at every bolt Prepare —
// initial start and supervisor restarts alike — so replacements see the
// same metadata as the instance they replace.
func taskMetaFor(def *componentDef, taskID int) any {
	if def.taskMeta == nil {
		return nil
	}
	return def.taskMeta(taskID)
}

// runBolt is one supervised run of the bolt consume loop. Bolts
// implementing IdleBolt get an Idle callback every time the queue drains,
// before the loop blocks. It reports true when the topology stopped and
// false when the bolt panicked.
func (tk *task) runBolt() (stopped bool) {
	defer func() {
		if r := recover(); r != nil {
			tk.recordPanic(r)
			stopped = false
		}
	}()
	idler, _ := tk.bolt.(IdleBolt)
	stop := tk.comp.top.stopped
	for {
		select {
		case <-stop:
			return true
		case tup := <-tk.in:
			tk.execute(tup)
		default:
			if idler != nil {
				idler.Idle()
			}
			select {
			case <-stop:
				return true
			case tup := <-tk.in:
				tk.execute(tup)
			}
		}
	}
}

// execute tracks the in-flight tuple across Execute so a panic can fail
// exactly the tuple being processed. inflight is cleared by recycle (same
// goroutine) the moment the bolt acks or fails the tuple itself.
func (tk *task) execute(tup *Tuple) {
	tk.executed.Add(1)
	tk.inflight = tup
	tk.bolt.Execute(tup)
	tk.inflight = nil
}

// failInflight fails the tuple the bolt was executing when it panicked,
// unless the bolt already acked/failed it before the panic (recycle clears
// inflight in that case, so a pooled-and-reused tuple is never touched).
func (tk *task) failInflight() {
	t := tk.inflight
	tk.inflight = nil
	if t == nil || t.done {
		return
	}
	(&taskCollector{task: tk}).Fail(t)
}

// drainDead keeps a dead task's input queue moving: every tuple is failed
// on arrival so its tree replays (to be re-routed through surviving tasks
// where the grouping allows) and upstream deliver calls never block.
func (tk *task) drainDead() {
	col := &taskCollector{task: tk}
	stop := tk.comp.top.stopped
	for {
		select {
		case <-stop:
			return
		case tup := <-tk.in:
			col.Fail(tup)
		}
	}
}

// fanOut routes values to every downstream subscriber of the component's
// stream, anchored to root (0 = unanchored) plus any extraRoots of a batch
// emit. directTask >= 0 restricts direct-grouping routes to that task index.
//
//invalidb:hotpath
func (comp *component) fanOut(from *task, stream string, root uint64, extraRoots []uint64, values Values, directTask int) {
	fields := comp.def.outputs[stream]
	for _, r := range comp.routes[stream] {
		tasks := r.target.tasks
		switch r.sub.kind {
		case groupShuffle:
			if !comp.deliver(from, stream, fields, root, extraRoots, values, tasks[r.rr.Add(1)%uint64(len(tasks))]) {
				return
			}
		case groupFields:
			h := hashFields(values, r.sub.indexes)
			if !comp.deliver(from, stream, fields, root, extraRoots, values, tasks[h%uint64(len(tasks))]) {
				return
			}
		case groupBroadcast:
			for _, target := range tasks {
				if !comp.deliver(from, stream, fields, root, extraRoots, values, target) {
					return
				}
			}
		case groupGlobal:
			if !comp.deliver(from, stream, fields, root, extraRoots, values, tasks[0]) {
				return
			}
		case groupDirect:
			if directTask < 0 {
				continue // non-direct emit skips direct routes
			}
			if !comp.deliver(from, stream, fields, root, extraRoots, values, tasks[directTask%len(tasks)]) {
				return
			}
		}
	}
}

// deliver sends one pooled tuple copy to target, registering ack edges for
// every anchored root. It reports false when the topology stopped.
//
//invalidb:hotpath
func (comp *component) deliver(from *task, stream string, fields []string, root uint64, extraRoots []uint64, values Values, target *task) bool {
	top := comp.top
	tup := tuplePool.Get().(*Tuple)
	tup.Component = comp.def.id
	tup.Stream = stream
	tup.Values = values
	tup.fields = fields
	tup.root = root
	tup.edge = 0
	tup.taskID = from.id
	tup.done = false
	tup.extraRoots = tup.extraRoots[:0]
	tup.extraEdges = tup.extraEdges[:0]
	if top.acker != nil {
		if root != 0 {
			tup.edge = from.nextID()
			top.acker.update(root, tup.edge)
		}
		for _, xr := range extraRoots {
			if xr == 0 {
				continue
			}
			edge := from.nextID()
			tup.extraRoots = append(tup.extraRoots, xr)
			tup.extraEdges = append(tup.extraEdges, edge)
			top.acker.update(xr, edge)
		}
	}
	select {
	case target.in <- tup:
		return true
	case <-top.stopped:
		return false
	}
}

// taskCollector implements Collector for one bolt task.
type taskCollector struct {
	task *task
}

func (c *taskCollector) Emit(anchor *Tuple, values Values) {
	c.emit(DefaultStream, anchor, values, -1)
}

func (c *taskCollector) EmitStream(stream string, anchor *Tuple, values Values) {
	c.emit(stream, anchor, values, -1)
}

func (c *taskCollector) EmitDirect(taskID int, anchor *Tuple, values Values) {
	if taskID < 0 {
		taskID = 0
	}
	c.emit(DefaultStream, anchor, values, taskID)
}

func (c *taskCollector) EmitDirectStream(stream string, taskID int, anchor *Tuple, values Values) {
	if taskID < 0 {
		taskID = 0
	}
	c.emit(stream, anchor, values, taskID)
}

//invalidb:hotpath
func (c *taskCollector) emit(stream string, anchor *Tuple, values Values, direct int) {
	c.task.emitted.Add(1)
	var root uint64
	var extra []uint64
	if anchor != nil {
		// A batch anchor fans its whole root set into the new tuple, so
		// downstream failures still reach every write in the batch.
		root = anchor.root
		extra = anchor.extraRoots
	}
	c.task.comp.fanOut(c.task, stream, root, extra, values, direct)
}

//invalidb:hotpath
func (c *taskCollector) EmitBatch(anchors []*Tuple, values Values) {
	c.task.emitted.Add(1)
	root, extra := c.task.gatherRoots(anchors)
	c.task.comp.fanOut(c.task, DefaultStream, root, extra, values, -1)
}

//invalidb:hotpath
func (c *taskCollector) EmitDirectBatch(taskID int, anchors []*Tuple, values Values) {
	if taskID < 0 {
		taskID = 0
	}
	c.task.emitted.Add(1)
	root, extra := c.task.gatherRoots(anchors)
	c.task.comp.fanOut(c.task, DefaultStream, root, extra, values, taskID)
}

// gatherRoots flattens the ack roots of a batch's anchors into a primary
// root plus extras, reusing the task's scratch slice (tasks are
// single-threaded, so the scratch is safe until the next batch emit).
//
//invalidb:hotpath
func (tk *task) gatherRoots(anchors []*Tuple) (uint64, []uint64) {
	tk.rootScratch = tk.rootScratch[:0]
	var root uint64
	for _, a := range anchors {
		if a == nil {
			continue
		}
		if a.root != 0 {
			if root == 0 {
				root = a.root
			} else {
				tk.rootScratch = append(tk.rootScratch, a.root)
			}
		}
		tk.rootScratch = append(tk.rootScratch, a.extraRoots...)
	}
	return root, tk.rootScratch
}

//invalidb:hotpath
func (c *taskCollector) Ack(t *Tuple) {
	c.task.acked.Add(1)
	top := c.task.comp.top
	if top.acker != nil {
		if t.root != 0 {
			top.acker.update(t.root, t.edge)
		}
		for i, xr := range t.extraRoots {
			top.acker.update(xr, t.extraEdges[i])
		}
	}
	c.recycle(t)
}

//invalidb:hotpath
func (c *taskCollector) Fail(t *Tuple) {
	c.task.failed.Add(1)
	top := c.task.comp.top
	if top.acker != nil {
		if t.root != 0 {
			top.acker.fail(t.root)
		}
		// A failed batch tuple aborts every anchored tree: the batch
		// succeeds or fails as a unit.
		for _, xr := range t.extraRoots {
			top.acker.fail(xr)
		}
	}
	c.recycle(t)
}

// recycle returns an input tuple to the pool exactly once. It also clears
// the task's in-flight marker (same goroutine) so the supervisor never
// fails a tuple the bolt already settled before panicking.
//
//invalidb:hotpath
func (c *taskCollector) recycle(t *Tuple) {
	if t.done {
		return
	}
	t.done = true
	if c.task.inflight == t {
		c.task.inflight = nil
	}
	recycleTuple(t)
}

// FNV-1a constants shared by the routing hash.
const (
	offset64 = 14695981039346656037
	prime64  = 1099511628211
)

// hashFields computes an FNV-1a hash over the selected value positions with
// type-switched fast paths, so routing common key types (strings, integers,
// byte slices) performs no allocation. The rare fallback for exotic types
// formats the value, matching the legacy behaviour.
//
//invalidb:hotpath
func hashFields(values Values, indexes []int) uint64 {
	h := uint64(offset64)
	for _, idx := range indexes {
		if idx < len(values) {
			h = hashValue(h, values[idx])
		}
		h ^= 0xff
		h *= prime64
	}
	return h
}

//invalidb:hotpath
func hashValue(h uint64, v any) uint64 {
	switch x := v.(type) {
	case string:
		for i := 0; i < len(x); i++ {
			h ^= uint64(x[i])
			h *= prime64
		}
	case []byte:
		for _, b := range x {
			h ^= uint64(b)
			h *= prime64
		}
	case uint64:
		h = hashUint64(h, x)
	case int:
		h = hashUint64(h, uint64(x))
	case int64:
		h = hashUint64(h, uint64(x))
	case uint:
		h = hashUint64(h, uint64(x))
	case int32:
		h = hashUint64(h, uint64(x))
	case uint32:
		h = hashUint64(h, uint64(x))
	case bool:
		if x {
			h = hashUint64(h, 1)
		} else {
			h = hashUint64(h, 0)
		}
	default:
		//invalidb:allow hotpathalloc rare fallback for exotic key types, matching legacy formatting behaviour
		s := fmt.Sprint(x)
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime64
		}
	}
	return h
}

//invalidb:hotpath
func hashUint64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= prime64
		v >>= 8
	}
	return h
}

// RouteHash exposes the fields-grouping hash: it hashes the given value
// positions exactly as fields grouping does. Benchmarks assert its
// allocation-free fast paths.
//
//invalidb:hotpath
func RouteHash(values Values, indexes []int) uint64 {
	return hashFields(values, indexes)
}
