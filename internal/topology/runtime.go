package topology

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// Topology is a running dataflow. Create one with Builder.Build, start it
// with Start, and tear it down with Stop.
type Topology struct {
	cfg     Config
	comps   map[string]*component
	order   []string
	acker   *acker
	stopped chan struct{}
	wg      sync.WaitGroup
	started atomic.Bool
	halted  atomic.Bool
}

type component struct {
	top    *Topology
	def    *componentDef
	tasks  []*task
	routes map[string][]*route // stream -> downstream subscriptions
}

type route struct {
	sub    *subscription
	target *component
	rr     atomic.Uint64 // round-robin cursor for shuffle grouping
}

type task struct {
	comp  *component
	id    int
	in    chan *Tuple
	spout Spout
	bolt  Bolt

	executed atomic.Uint64
	emitted  atomic.Uint64
	acked    atomic.Uint64
	failed   atomic.Uint64

	pending     chan struct{}   // spout max-pending semaphore (nil = unlimited)
	completions chan completion // ack/fail results, drained on the spout goroutine
	rng         *rand.Rand
	rngMu       sync.Mutex
	rootScratch []uint64 // reused by batch emits to gather anchor roots
}

// tuplePool recycles Tuple objects across deliveries. A tuple is drawn in
// fanOut and returned the moment the receiving bolt acks or fails it, so a
// steady-state topology routes without allocating tuples at all.
var tuplePool = sync.Pool{New: func() any { return new(Tuple) }}

// recycleTuple resets a delivered tuple and returns it to the pool. The
// extra-anchor slices keep their capacity so multi-anchored batch tuples
// recycle allocation-free too.
func recycleTuple(t *Tuple) {
	t.Component = ""
	t.Stream = ""
	t.Values = nil
	t.fields = nil
	t.root = 0
	t.edge = 0
	t.taskID = 0
	t.extraRoots = t.extraRoots[:0]
	t.extraEdges = t.extraEdges[:0]
	t.done = false
	tuplePool.Put(t)
}

// completion is an ack or fail verdict for a spout root tuple. Completions
// are queued and delivered on the spout's own task goroutine (as in Storm),
// so Spout implementations never see Ack/Fail concurrently with NextTuple.
type completion struct {
	id MsgID
	ok bool
}

func newTopology(b *Builder, cfg Config) (*Topology, error) {
	t := &Topology{
		cfg:     cfg,
		comps:   map[string]*component{},
		order:   append([]string(nil), b.order...),
		stopped: make(chan struct{}),
	}
	if cfg.EnableAcking {
		t.acker = newAcker(cfg.AckTimeout)
	}
	for _, id := range b.order {
		def := b.components[id]
		comp := &component{top: t, def: def, routes: map[string][]*route{}}
		for i := 0; i < def.parallelism; i++ {
			tk := &task{
				comp: comp,
				id:   i,
				rng:  rand.New(rand.NewSource(int64(len(id))*7919 + int64(i) + 1)),
			}
			if def.bolt != nil {
				tk.in = make(chan *Tuple, cfg.QueueSize)
				tk.bolt = def.bolt()
			} else {
				tk.spout = def.spout()
				if cfg.EnableAcking {
					if cfg.MaxSpoutPending > 0 {
						tk.pending = make(chan struct{}, cfg.MaxSpoutPending)
					}
					qlen := 4 * cfg.QueueSize
					if cfg.MaxSpoutPending > 0 && 2*cfg.MaxSpoutPending > qlen {
						qlen = 2 * cfg.MaxSpoutPending
					}
					tk.completions = make(chan completion, qlen)
				}
			}
			comp.tasks = append(comp.tasks, tk)
		}
		t.comps[id] = comp
	}
	// Resolve routes: for every bolt subscription, register a route on the
	// upstream component's stream.
	for _, id := range b.order {
		def := b.components[id]
		for i := range def.subs {
			sub := &def.subs[i]
			up := t.comps[sub.from]
			up.routes[sub.stream] = append(up.routes[sub.stream], &route{sub: sub, target: t.comps[id]})
		}
	}
	return t, nil
}

// Start prepares all bolts, opens all spouts, and begins processing.
func (t *Topology) Start() error {
	if !t.started.CompareAndSwap(false, true) {
		return fmt.Errorf("topology: already started")
	}
	if t.acker != nil {
		t.acker.start(&t.wg, t.stopped)
	}
	// Prepare bolts before any spout can emit.
	for _, id := range t.order {
		comp := t.comps[id]
		if comp.def.bolt == nil {
			continue
		}
		for _, tk := range comp.tasks {
			if err := tk.bolt.Prepare(&BoltContext{TaskID: tk.id}, &taskCollector{task: tk}); err != nil {
				return fmt.Errorf("topology: prepare %s[%d]: %w", id, tk.id, err)
			}
			t.wg.Add(1)
			go tk.boltLoop(&t.wg)
		}
	}
	for _, id := range t.order {
		comp := t.comps[id]
		if comp.def.spout == nil {
			continue
		}
		for _, tk := range comp.tasks {
			tk := tk
			ctx := &SpoutContext{TaskID: tk.id, Emit: tk.spoutEmit}
			if err := tk.spout.Open(ctx); err != nil {
				return fmt.Errorf("topology: open %s[%d]: %w", id, tk.id, err)
			}
			t.wg.Add(1)
			go tk.spoutLoop(&t.wg)
		}
	}
	return nil
}

// Stop halts all tasks. In-flight tuples are dropped — with acking enabled
// their trees would simply replay on a restarted topology, matching Storm's
// kill semantics.
func (t *Topology) Stop() {
	if !t.halted.CompareAndSwap(false, true) {
		return
	}
	close(t.stopped)
	t.wg.Wait()
	for _, id := range t.order {
		comp := t.comps[id]
		for _, tk := range comp.tasks {
			if tk.spout != nil {
				tk.spout.Close()
			}
			if tk.bolt != nil {
				tk.bolt.Cleanup()
			}
		}
	}
}

// TaskStats is a point-in-time snapshot of one task's counters.
type TaskStats struct {
	Component string
	TaskID    int
	Executed  uint64
	Emitted   uint64
	Acked     uint64
	Failed    uint64
	QueueLen  int
}

// Stats snapshots all task counters.
func (t *Topology) Stats() []TaskStats {
	var out []TaskStats
	for _, id := range t.order {
		comp := t.comps[id]
		for _, tk := range comp.tasks {
			s := TaskStats{
				Component: id,
				TaskID:    tk.id,
				Executed:  tk.executed.Load(),
				Emitted:   tk.emitted.Load(),
				Acked:     tk.acked.Load(),
				Failed:    tk.failed.Load(),
			}
			if tk.in != nil {
				s.QueueLen = len(tk.in)
			}
			out = append(out, s)
		}
	}
	return out
}

// spoutLoop drives NextTuple until the topology stops, interleaving
// completion delivery so Ack/Fail run on this goroutine.
func (tk *task) spoutLoop(wg *sync.WaitGroup) {
	defer wg.Done()
	idle := time.Duration(0)
	for {
		tk.drainCompletions()
		select {
		case <-tk.comp.top.stopped:
			return
		default:
		}
		if tk.spout.NextTuple() {
			idle = 0
			continue
		}
		// Back off while the spout has nothing to emit, capped at 1ms to
		// keep wake-up latency low; completions cut the nap short.
		if idle < time.Millisecond {
			idle += 100 * time.Microsecond
		}
		if tk.completions != nil {
			select {
			case <-tk.comp.top.stopped:
				return
			case c := <-tk.completions:
				tk.deliver(c)
			case <-time.After(idle):
			}
			continue
		}
		select {
		case <-tk.comp.top.stopped:
			return
		case <-time.After(idle):
		}
	}
}

func (tk *task) drainCompletions() {
	if tk.completions == nil {
		return
	}
	for {
		select {
		case c := <-tk.completions:
			tk.deliver(c)
		default:
			return
		}
	}
}

func (tk *task) deliver(c completion) {
	if c.ok {
		tk.spout.Ack(c.id)
	} else {
		tk.spout.Fail(c.id)
	}
}

// spoutEmit injects a root tuple.
func (tk *task) spoutEmit(values Values) MsgID {
	top := tk.comp.top
	var root uint64
	if top.acker != nil {
		if tk.pending != nil {
			select {
			case tk.pending <- struct{}{}:
			case <-top.stopped:
				return 0
			}
		}
		root = tk.nextID()
		top.acker.register(root, tk)
	}
	tk.emitted.Add(1)
	tk.comp.fanOut(tk, DefaultStream, root, nil, values, -1)
	if top.acker != nil {
		// Seal the registration: if the fan-out reached no consumer the
		// tree completes immediately.
		top.acker.seal(root)
	}
	return MsgID(root)
}

// releasePending frees one max-pending slot after ack or fail.
func (tk *task) releasePending() {
	if tk.pending != nil {
		select {
		case <-tk.pending:
		default:
		}
	}
}

func (tk *task) nextID() uint64 {
	tk.rngMu.Lock()
	defer tk.rngMu.Unlock()
	for {
		if v := tk.rng.Uint64(); v != 0 {
			return v
		}
	}
}

// boltLoop consumes the task's input queue. Bolts implementing IdleBolt get
// an Idle callback every time the queue drains, before the loop blocks.
func (tk *task) boltLoop(wg *sync.WaitGroup) {
	defer wg.Done()
	idler, _ := tk.bolt.(IdleBolt)
	stopped := tk.comp.top.stopped
	for {
		select {
		case <-stopped:
			return
		case tup := <-tk.in:
			tk.executed.Add(1)
			tk.bolt.Execute(tup)
		default:
			if idler != nil {
				idler.Idle()
			}
			select {
			case <-stopped:
				return
			case tup := <-tk.in:
				tk.executed.Add(1)
				tk.bolt.Execute(tup)
			}
		}
	}
}

// fanOut routes values to every downstream subscriber of the component's
// stream, anchored to root (0 = unanchored) plus any extraRoots of a batch
// emit. directTask >= 0 restricts direct-grouping routes to that task index.
func (comp *component) fanOut(from *task, stream string, root uint64, extraRoots []uint64, values Values, directTask int) {
	fields := comp.def.outputs[stream]
	for _, r := range comp.routes[stream] {
		tasks := r.target.tasks
		switch r.sub.kind {
		case groupShuffle:
			if !comp.deliver(from, stream, fields, root, extraRoots, values, tasks[r.rr.Add(1)%uint64(len(tasks))]) {
				return
			}
		case groupFields:
			h := hashFields(values, r.sub.indexes)
			if !comp.deliver(from, stream, fields, root, extraRoots, values, tasks[h%uint64(len(tasks))]) {
				return
			}
		case groupBroadcast:
			for _, target := range tasks {
				if !comp.deliver(from, stream, fields, root, extraRoots, values, target) {
					return
				}
			}
		case groupGlobal:
			if !comp.deliver(from, stream, fields, root, extraRoots, values, tasks[0]) {
				return
			}
		case groupDirect:
			if directTask < 0 {
				continue // non-direct emit skips direct routes
			}
			if !comp.deliver(from, stream, fields, root, extraRoots, values, tasks[directTask%len(tasks)]) {
				return
			}
		}
	}
}

// deliver sends one pooled tuple copy to target, registering ack edges for
// every anchored root. It reports false when the topology stopped.
func (comp *component) deliver(from *task, stream string, fields []string, root uint64, extraRoots []uint64, values Values, target *task) bool {
	top := comp.top
	tup := tuplePool.Get().(*Tuple)
	tup.Component = comp.def.id
	tup.Stream = stream
	tup.Values = values
	tup.fields = fields
	tup.root = root
	tup.edge = 0
	tup.taskID = from.id
	tup.done = false
	tup.extraRoots = tup.extraRoots[:0]
	tup.extraEdges = tup.extraEdges[:0]
	if top.acker != nil {
		if root != 0 {
			tup.edge = from.nextID()
			top.acker.update(root, tup.edge)
		}
		for _, xr := range extraRoots {
			if xr == 0 {
				continue
			}
			edge := from.nextID()
			tup.extraRoots = append(tup.extraRoots, xr)
			tup.extraEdges = append(tup.extraEdges, edge)
			top.acker.update(xr, edge)
		}
	}
	select {
	case target.in <- tup:
		return true
	case <-top.stopped:
		return false
	}
}

// taskCollector implements Collector for one bolt task.
type taskCollector struct {
	task *task
}

func (c *taskCollector) Emit(anchor *Tuple, values Values) {
	c.emit(DefaultStream, anchor, values, -1)
}

func (c *taskCollector) EmitStream(stream string, anchor *Tuple, values Values) {
	c.emit(stream, anchor, values, -1)
}

func (c *taskCollector) EmitDirect(taskID int, anchor *Tuple, values Values) {
	if taskID < 0 {
		taskID = 0
	}
	c.emit(DefaultStream, anchor, values, taskID)
}

func (c *taskCollector) EmitDirectStream(stream string, taskID int, anchor *Tuple, values Values) {
	if taskID < 0 {
		taskID = 0
	}
	c.emit(stream, anchor, values, taskID)
}

func (c *taskCollector) emit(stream string, anchor *Tuple, values Values, direct int) {
	c.task.emitted.Add(1)
	var root uint64
	var extra []uint64
	if anchor != nil {
		// A batch anchor fans its whole root set into the new tuple, so
		// downstream failures still reach every write in the batch.
		root = anchor.root
		extra = anchor.extraRoots
	}
	c.task.comp.fanOut(c.task, stream, root, extra, values, direct)
}

func (c *taskCollector) EmitBatch(anchors []*Tuple, values Values) {
	c.task.emitted.Add(1)
	root, extra := c.task.gatherRoots(anchors)
	c.task.comp.fanOut(c.task, DefaultStream, root, extra, values, -1)
}

func (c *taskCollector) EmitDirectBatch(taskID int, anchors []*Tuple, values Values) {
	if taskID < 0 {
		taskID = 0
	}
	c.task.emitted.Add(1)
	root, extra := c.task.gatherRoots(anchors)
	c.task.comp.fanOut(c.task, DefaultStream, root, extra, values, taskID)
}

// gatherRoots flattens the ack roots of a batch's anchors into a primary
// root plus extras, reusing the task's scratch slice (tasks are
// single-threaded, so the scratch is safe until the next batch emit).
func (tk *task) gatherRoots(anchors []*Tuple) (uint64, []uint64) {
	tk.rootScratch = tk.rootScratch[:0]
	var root uint64
	for _, a := range anchors {
		if a == nil {
			continue
		}
		if a.root != 0 {
			if root == 0 {
				root = a.root
			} else {
				tk.rootScratch = append(tk.rootScratch, a.root)
			}
		}
		tk.rootScratch = append(tk.rootScratch, a.extraRoots...)
	}
	return root, tk.rootScratch
}

func (c *taskCollector) Ack(t *Tuple) {
	c.task.acked.Add(1)
	top := c.task.comp.top
	if top.acker != nil {
		if t.root != 0 {
			top.acker.update(t.root, t.edge)
		}
		for i, xr := range t.extraRoots {
			top.acker.update(xr, t.extraEdges[i])
		}
	}
	c.recycle(t)
}

func (c *taskCollector) Fail(t *Tuple) {
	c.task.failed.Add(1)
	top := c.task.comp.top
	if top.acker != nil {
		if t.root != 0 {
			top.acker.fail(t.root)
		}
		// A failed batch tuple aborts every anchored tree: the batch
		// succeeds or fails as a unit.
		for _, xr := range t.extraRoots {
			top.acker.fail(xr)
		}
	}
	c.recycle(t)
}

// recycle returns an input tuple to the pool exactly once.
func (c *taskCollector) recycle(t *Tuple) {
	if t.done {
		return
	}
	t.done = true
	recycleTuple(t)
}

// FNV-1a constants shared by the routing hash.
const (
	offset64 = 14695981039346656037
	prime64  = 1099511628211
)

// hashFields computes an FNV-1a hash over the selected value positions with
// type-switched fast paths, so routing common key types (strings, integers,
// byte slices) performs no allocation. The rare fallback for exotic types
// formats the value, matching the legacy behaviour.
func hashFields(values Values, indexes []int) uint64 {
	h := uint64(offset64)
	for _, idx := range indexes {
		if idx < len(values) {
			h = hashValue(h, values[idx])
		}
		h ^= 0xff
		h *= prime64
	}
	return h
}

func hashValue(h uint64, v any) uint64 {
	switch x := v.(type) {
	case string:
		for i := 0; i < len(x); i++ {
			h ^= uint64(x[i])
			h *= prime64
		}
	case []byte:
		for _, b := range x {
			h ^= uint64(b)
			h *= prime64
		}
	case uint64:
		h = hashUint64(h, x)
	case int:
		h = hashUint64(h, uint64(x))
	case int64:
		h = hashUint64(h, uint64(x))
	case uint:
		h = hashUint64(h, uint64(x))
	case int32:
		h = hashUint64(h, uint64(x))
	case uint32:
		h = hashUint64(h, uint64(x))
	case bool:
		if x {
			h = hashUint64(h, 1)
		} else {
			h = hashUint64(h, 0)
		}
	default:
		s := fmt.Sprint(x)
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime64
		}
	}
	return h
}

func hashUint64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= prime64
		v >>= 8
	}
	return h
}

// RouteHash exposes the fields-grouping hash: it hashes the given value
// positions exactly as fields grouping does. Benchmarks assert its
// allocation-free fast paths.
func RouteHash(values Values, indexes []int) uint64 {
	return hashFields(values, indexes)
}
