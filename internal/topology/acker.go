package topology

import (
	"sync"
	"time"
)

// acker implements Storm's XOR-ledger acknowledgement protocol. Every root
// tuple owns a ledger; each delivered tuple copy XORs its edge id into the
// ledger on send and again on ack, so the ledger returns to zero exactly
// when every tuple in the tree has been acked. A sweep goroutine fails
// ledgers that outlive the ack timeout, triggering spout replay.
type acker struct {
	timeout time.Duration

	mu      sync.Mutex
	ledgers map[uint64]*ledger
}

type ledger struct {
	val      uint64
	spout    *task
	sealed   bool // spoutEmit finished fanning out the root tuple
	deadline time.Time
}

func newAcker(timeout time.Duration) *acker {
	return &acker{timeout: timeout, ledgers: map[uint64]*ledger{}}
}

func (a *acker) start(wg *sync.WaitGroup, stopped <-chan struct{}) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		sweep := a.timeout / 4
		if sweep < time.Millisecond {
			sweep = time.Millisecond
		}
		ticker := time.NewTicker(sweep)
		defer ticker.Stop()
		for {
			select {
			case <-stopped:
				return
			case now := <-ticker.C:
				a.expire(now)
			}
		}
	}()
}

// register opens a ledger for a new root tuple.
func (a *acker) register(root uint64, spout *task) {
	a.mu.Lock()
	a.ledgers[root] = &ledger{spout: spout, deadline: time.Now().Add(a.timeout)}
	a.mu.Unlock()
}

// update XORs an edge id into the ledger; a sealed ledger reaching zero
// completes the tree.
func (a *acker) update(root, edge uint64) {
	a.mu.Lock()
	l, ok := a.ledgers[root]
	if !ok {
		a.mu.Unlock()
		return
	}
	l.val ^= edge
	done := l.sealed && l.val == 0
	if done {
		delete(a.ledgers, root)
	}
	a.mu.Unlock()
	if done {
		a.complete(root, l, true)
	}
}

// seal marks the root tuple's initial fan-out as finished. Sealing late
// prevents a fast consumer from zeroing the ledger while the spout is still
// delivering copies to other subscribers.
func (a *acker) seal(root uint64) {
	a.mu.Lock()
	l, ok := a.ledgers[root]
	if !ok {
		a.mu.Unlock()
		return
	}
	l.sealed = true
	done := l.val == 0
	if done {
		delete(a.ledgers, root)
	}
	a.mu.Unlock()
	if done {
		a.complete(root, l, true)
	}
}

// fail aborts a tree immediately.
func (a *acker) fail(root uint64) {
	a.mu.Lock()
	l, ok := a.ledgers[root]
	if ok {
		delete(a.ledgers, root)
	}
	a.mu.Unlock()
	if ok {
		a.complete(root, l, false)
	}
}

func (a *acker) expire(now time.Time) {
	a.mu.Lock()
	var expired []uint64
	var ls []*ledger
	var orphaned []*ledger
	for root, l := range a.ledgers {
		if l.spout.isHalted() {
			// The owning spout task stopped for good: replaying into its
			// never-drained completion queue would be a wasted (or
			// blocking) send, so the ledger is simply deleted. Sealed or
			// not — a halted spout can never seal it either.
			delete(a.ledgers, root)
			orphaned = append(orphaned, l)
			continue
		}
		if l.sealed && now.After(l.deadline) {
			expired = append(expired, root)
			ls = append(ls, l)
		}
	}
	for _, root := range expired {
		delete(a.ledgers, root)
	}
	a.mu.Unlock()
	for _, l := range orphaned {
		l.spout.releasePending()
	}
	for i, root := range expired {
		a.complete(root, ls[i], false)
	}
}

// complete releases the spout's max-pending slot immediately (so the spout
// can make progress even while its goroutine is busy) and queues the verdict
// for delivery on the spout's task goroutine.
func (a *acker) complete(root uint64, l *ledger, ok bool) {
	l.spout.releasePending()
	select {
	case l.spout.completions <- completion{id: MsgID(root), ok: ok}:
	case <-l.spout.haltedCh: // spout task is gone; drop the verdict
	case <-l.spout.comp.top.stopped:
	}
}

// pendingCount reports open ledgers (for tests and stats).
func (a *acker) pendingCount() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.ledgers)
}
