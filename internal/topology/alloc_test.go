package topology

import "testing"

// hashSink keeps RouteHash calls from being optimized away.
var hashSink uint64

// TestRouteHashNoAllocs pins the zero-allocation contract of the routing
// hash for the key types that appear on the hot path. A type that falls
// back to fmt.Sprint would show up here immediately.
func TestRouteHashNoAllocs(t *testing.T) {
	cases := []struct {
		name string
		vals Values
		idx  []int
	}{
		{"string", Values{"user:12345", 7}, []int{0}},
		{"uint64", Values{uint64(987654321), 7}, []int{0}},
		{"int", Values{42, 7}, []int{0}},
		{"bytes", Values{[]byte("user:12345"), 7}, []int{0}},
		{"multi", Values{"tenant-a", uint64(99), int64(-3)}, []int{0, 1, 2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if n := testing.AllocsPerRun(1000, func() {
				hashSink += RouteHash(tc.vals, tc.idx)
			}); n != 0 {
				t.Fatalf("RouteHash(%s) allocates %.1f per call, want 0", tc.name, n)
			}
		})
	}
}

// TestTupleRecycling verifies that a tuple released through Ack is reusable:
// after a full emit/ack cycle the pool serves reset tuples with no stale
// anchors or done flags left behind.
func TestTupleRecycling(t *testing.T) {
	tup := tuplePool.Get().(*Tuple)
	tup.Component = "c"
	tup.Stream = "s"
	tup.Values = Values{1}
	tup.root = 9
	tup.edge = 9
	tup.extraRoots = append(tup.extraRoots, 1, 2)
	tup.extraEdges = append(tup.extraEdges, 3, 4)
	tup.done = true
	recycleTuple(tup)
	got := tuplePool.Get().(*Tuple)
	// The pool may hand back a different object under parallel tests; only
	// inspect the one we recycled.
	if got != tup {
		t.Skip("pool returned a different tuple; nothing to assert")
	}
	if got.Component != "" || got.Stream != "" || got.Values != nil ||
		got.root != 0 || got.edge != 0 ||
		len(got.extraRoots) != 0 || len(got.extraEdges) != 0 || got.done {
		t.Fatalf("recycled tuple not reset: %+v", got)
	}
}
