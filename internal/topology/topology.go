// Package topology is a from-scratch stream-processing runtime modeled on
// Apache Storm, the system the InvaliDB prototype used for workload
// distribution (paper §5.4). It provides the Storm primitives the paper's
// design relies on: spouts and bolts with configurable parallelism, tuple
// routing through shuffle/fields/broadcast/global/direct groupings, and
// at-least-once delivery via Storm's XOR-ledger acker with timeout-based
// replay. InvaliDB's filtering and sorting stages are expressed as bolts on
// this runtime.
package topology

import (
	"fmt"
	"time"
)

// Values are the positional payload of a tuple.
type Values []any

// DefaultStream is the stream id used when a component emits without naming
// a stream, mirroring Storm's "default" stream.
const DefaultStream = "default"

// Tuple is one data item flowing through the topology.
//
// Tuples are owned by the runtime and recycled through a pool: a delivered
// tuple returns to the pool the moment the receiving bolt acks or fails it.
// Bolts must therefore not retain (or read) an input tuple after calling
// Ack or Fail on it — the defer-ack idiom and anchored emits during Execute
// are both safe, holding a tuple across Execute calls is only safe while
// the ack is still outstanding (the write-ingest batching path does this).
type Tuple struct {
	// Component is the id of the component that emitted the tuple.
	Component string
	// Stream is the named output stream the tuple was emitted on.
	Stream string
	// Values is the positional payload, aligned with the emitting
	// component's declared output fields for the stream.
	Values Values

	fields []string
	root   uint64 // ack root (0 for unanchored tuples)
	edge   uint64 // this delivery's ack ledger id
	taskID int    // emitting task index
	// extraRoots/extraEdges carry the additional anchors of multi-anchored
	// batch tuples (EmitBatch): one ledger edge per extra root.
	extraRoots []uint64
	extraEdges []uint64
	done       bool // acked or failed; guards double recycling
}

// Get returns the value of a named output field.
func (t *Tuple) Get(field string) (any, bool) {
	for i, f := range t.fields {
		if f == field && i < len(t.Values) {
			return t.Values[i], true
		}
	}
	return nil, false
}

// MsgID identifies a spout tuple for ack/fail callbacks.
type MsgID uint64

// SpoutContext is handed to a spout at open time.
type SpoutContext struct {
	// TaskID is this instance's index within the component's parallelism.
	TaskID int
	// Emit injects a new root tuple into the topology. With ackEnabled
	// topologies the returned MsgID is echoed via Ack or Fail.
	Emit func(values Values) MsgID
}

// Spout produces the topology's input. NextTuple is called in a loop by the
// runtime; it should emit at most a few tuples per call and return false
// when no input is currently available (the runtime then backs off briefly).
type Spout interface {
	Open(ctx *SpoutContext) error
	NextTuple() bool
	// Ack signals that the tuple tree rooted at the MsgID was fully
	// processed; Fail signals a timeout or explicit failure (the spout
	// decides whether to replay).
	Ack(id MsgID)
	Fail(id MsgID)
	Close()
}

// BoltContext is handed to a bolt at prepare time.
type BoltContext struct {
	TaskID int
	// Incarnation counts supervisor restarts of this task: 0 for the
	// original instance, 1 for the first replacement, and so on. Bolts
	// that stamp outgoing data with an identity should include it so
	// downstream consumers can tell a restarted instance's fresh state
	// (e.g. reset sequence counters) from stale duplicates.
	Incarnation int
	// Meta carries the component's per-task placement metadata, produced
	// by the TaskMeta declaration hook (nil when none was declared). It is
	// stable across supervisor restarts: a replacement instance receives
	// the same Meta as the original, so state derived from it (e.g. a
	// matching bolt's grid-cell coordinates) survives recovery.
	Meta any
}

// Collector lets a bolt emit and acknowledge tuples.
type Collector interface {
	// Emit sends values downstream on the default stream, anchored to the
	// given input tuple so failures propagate to the spout (anchor may be
	// nil for unanchored emits).
	Emit(anchor *Tuple, values Values)
	// EmitStream sends values on a named output stream.
	EmitStream(stream string, anchor *Tuple, values Values)
	// EmitDirect sends values to one specific task of every component
	// subscribed to the default stream with direct grouping.
	EmitDirect(taskID int, anchor *Tuple, values Values)
	// EmitDirectStream is EmitDirect on a named stream.
	EmitDirectStream(stream string, taskID int, anchor *Tuple, values Values)
	// EmitBatch sends values downstream on the default stream anchored to
	// every tuple in anchors: the delivered tuple joins the ack tree of each
	// anchor, so failing it fails every anchored root. One channel send per
	// target replaces one send per anchor — the amortization the batched
	// write-ingestion path relies on.
	EmitBatch(anchors []*Tuple, values Values)
	// EmitDirectBatch is EmitBatch delivered to one specific task of every
	// component subscribed with direct grouping.
	EmitDirectBatch(taskID int, anchors []*Tuple, values Values)
	// Ack marks the input tuple as fully processed by this bolt. The tuple
	// is recycled; it must not be used afterwards.
	Ack(t *Tuple)
	// Fail marks the tuple tree as failed, triggering spout replay. The
	// tuple is recycled; it must not be used afterwards.
	Fail(t *Tuple)
}

// Bolt processes tuples. Execute must Ack or Fail every input tuple exactly
// once when acking is enabled.
type Bolt interface {
	Prepare(ctx *BoltContext, out Collector) error
	Execute(t *Tuple)
	Cleanup()
}

// IdleBolt is an optional extension of Bolt: the runtime calls Idle on the
// task goroutine whenever the input queue drains, giving batching bolts a
// bounded flush point without timers. Under sustained load batches fill to
// their size cap; the moment the queue empties, Idle flushes the remainder,
// so batching never adds unbounded latency.
type IdleBolt interface {
	Bolt
	Idle()
}

// groupingKind enumerates Storm's stream groupings.
type groupingKind int

const (
	groupShuffle groupingKind = iota
	groupFields
	groupBroadcast
	groupGlobal
	groupDirect
)

type subscription struct {
	from    string
	stream  string
	kind    groupingKind
	fields  []string
	indexes []int // resolved field indexes into the upstream declaration
}

type componentDef struct {
	id          string
	parallelism int
	outputs     map[string][]string // stream -> declared fields
	spout       func() Spout
	bolt        func() Bolt
	taskMeta    func(taskID int) any
	subs        []subscription
}

// Builder assembles a topology definition.
type Builder struct {
	components map[string]*componentDef
	order      []string
	err        error
}

// NewBuilder creates an empty topology builder.
func NewBuilder() *Builder {
	return &Builder{components: map[string]*componentDef{}}
}

func (b *Builder) add(def *componentDef) {
	if b.err != nil {
		return
	}
	if def.id == "" {
		b.err = fmt.Errorf("topology: empty component id")
		return
	}
	if _, dup := b.components[def.id]; dup {
		b.err = fmt.Errorf("topology: duplicate component %q", def.id)
		return
	}
	if def.parallelism <= 0 {
		b.err = fmt.Errorf("topology: component %q: parallelism must be positive", def.id)
		return
	}
	b.components[def.id] = def
	b.order = append(b.order, def.id)
}

// SetSpout registers a spout component. The factory is invoked once per
// task. Output fields name the default stream's tuple positions for fields
// grouping.
func (b *Builder) SetSpout(id string, factory func() Spout, parallelism int, outputFields ...string) {
	b.add(&componentDef{
		id: id, parallelism: parallelism, spout: factory,
		outputs: map[string][]string{DefaultStream: outputFields},
	})
}

// BoltDecl continues a bolt declaration with grouping subscriptions.
type BoltDecl struct {
	b   *Builder
	def *componentDef
}

// SetBolt registers a bolt component and returns a declaration to attach
// groupings and extra output streams to.
func (b *Builder) SetBolt(id string, factory func() Bolt, parallelism int, outputFields ...string) *BoltDecl {
	def := &componentDef{
		id: id, parallelism: parallelism, bolt: factory,
		outputs: map[string][]string{DefaultStream: outputFields},
	}
	b.add(def)
	return &BoltDecl{b: b, def: def}
}

// TaskMeta declares a placement-metadata hook for the bolt: fn is invoked
// once per task at prepare time (and again for each supervisor restart,
// with the same task id) and its result is delivered via BoltContext.Meta.
// It lets the topology owner hand each task its position in an external
// scheme — e.g. a matching bolt's grid-cell coordinates — without the bolt
// reverse-engineering them from TaskID.
func (d *BoltDecl) TaskMeta(fn func(taskID int) any) *BoltDecl {
	d.def.taskMeta = fn
	return d
}

// DeclareStream declares an additional named output stream with its fields,
// mirroring Storm's OutputFieldsDeclarer.declareStream.
func (d *BoltDecl) DeclareStream(stream string, fields ...string) *BoltDecl {
	d.def.outputs[stream] = fields
	return d
}

// ShuffleGrouping subscribes the bolt to a component's default stream with
// round-robin distribution.
func (d *BoltDecl) ShuffleGrouping(from string) *BoltDecl {
	return d.ShuffleGroupingStream(from, DefaultStream)
}

// ShuffleGroupingStream is ShuffleGrouping on a named stream.
func (d *BoltDecl) ShuffleGroupingStream(from, stream string) *BoltDecl {
	d.def.subs = append(d.def.subs, subscription{from: from, stream: stream, kind: groupShuffle})
	return d
}

// FieldsGrouping subscribes with hash partitioning on the named upstream
// fields: tuples with equal field values always reach the same task.
func (d *BoltDecl) FieldsGrouping(from string, fields ...string) *BoltDecl {
	return d.FieldsGroupingStream(from, DefaultStream, fields...)
}

// FieldsGroupingStream is FieldsGrouping on a named stream.
func (d *BoltDecl) FieldsGroupingStream(from, stream string, fields ...string) *BoltDecl {
	d.def.subs = append(d.def.subs, subscription{from: from, stream: stream, kind: groupFields, fields: fields})
	return d
}

// BroadcastGrouping subscribes with replication to every task.
func (d *BoltDecl) BroadcastGrouping(from string) *BoltDecl {
	return d.BroadcastGroupingStream(from, DefaultStream)
}

// BroadcastGroupingStream is BroadcastGrouping on a named stream.
func (d *BoltDecl) BroadcastGroupingStream(from, stream string) *BoltDecl {
	d.def.subs = append(d.def.subs, subscription{from: from, stream: stream, kind: groupBroadcast})
	return d
}

// GlobalGrouping subscribes with delivery to task 0 only.
func (d *BoltDecl) GlobalGrouping(from string) *BoltDecl {
	return d.GlobalGroupingStream(from, DefaultStream)
}

// GlobalGroupingStream is GlobalGrouping on a named stream.
func (d *BoltDecl) GlobalGroupingStream(from, stream string) *BoltDecl {
	d.def.subs = append(d.def.subs, subscription{from: from, stream: stream, kind: groupGlobal})
	return d
}

// DirectGrouping subscribes with sender-chosen task routing (EmitDirect) on
// the default stream.
func (d *BoltDecl) DirectGrouping(from string) *BoltDecl {
	return d.DirectGroupingStream(from, DefaultStream)
}

// DirectGroupingStream is DirectGrouping on a named stream.
func (d *BoltDecl) DirectGroupingStream(from, stream string) *BoltDecl {
	d.def.subs = append(d.def.subs, subscription{from: from, stream: stream, kind: groupDirect})
	return d
}

// Config tunes a running topology.
type Config struct {
	// QueueSize is the per-task input queue capacity. Zero selects 1024.
	QueueSize int
	// EnableAcking activates the XOR acker for at-least-once delivery.
	EnableAcking bool
	// AckTimeout fails tuple trees not completed in time. Zero selects 30s.
	AckTimeout time.Duration
	// MaxSpoutPending throttles each spout task to this many incomplete
	// root tuples (0 = unlimited). Only meaningful with acking.
	MaxSpoutPending int
	// MaxTaskRestarts bounds how many times the supervisor replaces a
	// panicking task with a fresh component instance before marking the
	// task dead. Zero selects 3; negative disables restarts entirely
	// (first panic kills the task).
	MaxTaskRestarts int
	// OnTaskRestart, when set, is invoked on its own goroutine each time
	// the supervisor has restarted a crashed task with a fresh instance.
	// The hook is the integration point for state recovery: a restarted
	// matching bolt has lost its query set, and whoever owns that state
	// can use this callback to re-broadcast it.
	OnTaskRestart func(component string, taskID int)
}

// Build validates the definition and instantiates a runnable topology.
func (b *Builder) Build(cfg Config) (*Topology, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.components) == 0 {
		return nil, fmt.Errorf("topology: no components")
	}
	if cfg.QueueSize <= 0 {
		cfg.QueueSize = 1024
	}
	if cfg.AckTimeout <= 0 {
		cfg.AckTimeout = 30 * time.Second
	}
	if cfg.MaxTaskRestarts == 0 {
		cfg.MaxTaskRestarts = 3
	} else if cfg.MaxTaskRestarts < 0 {
		cfg.MaxTaskRestarts = 0
	}
	hasSpout := false
	for _, id := range b.order {
		def := b.components[id]
		if def.spout != nil {
			hasSpout = true
			if len(def.subs) > 0 {
				return nil, fmt.Errorf("topology: spout %q cannot subscribe to streams", id)
			}
			continue
		}
		if len(def.subs) == 0 {
			return nil, fmt.Errorf("topology: bolt %q has no input grouping", id)
		}
		for i := range def.subs {
			sub := &def.subs[i]
			up, ok := b.components[sub.from]
			if !ok {
				return nil, fmt.Errorf("topology: bolt %q subscribes to unknown component %q", id, sub.from)
			}
			streamFields, declared := up.outputs[sub.stream]
			if !declared {
				return nil, fmt.Errorf("topology: bolt %q subscribes to undeclared stream %q of %q", id, sub.stream, sub.from)
			}
			if sub.kind == groupFields {
				if len(sub.fields) == 0 {
					return nil, fmt.Errorf("topology: bolt %q: fields grouping on %q without fields", id, sub.from)
				}
				for _, f := range sub.fields {
					idx := fieldIndex(streamFields, f)
					if idx < 0 {
						return nil, fmt.Errorf("topology: bolt %q: stream %q of %q does not declare output field %q", id, sub.stream, sub.from, f)
					}
					sub.indexes = append(sub.indexes, idx)
				}
			}
		}
	}
	if !hasSpout {
		return nil, fmt.Errorf("topology: no spout")
	}
	return newTopology(b, cfg)
}

func fieldIndex(fields []string, name string) int {
	for i, f := range fields {
		if f == name {
			return i
		}
	}
	return -1
}
