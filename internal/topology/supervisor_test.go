package topology

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// boomBolt panics the first time a given payload value arrives; fresh
// incarnations process it normally. The shared record tracks instances so
// tests can assert the supervisor really built a replacement.
type boomShared struct {
	mu        sync.Mutex
	instances int
	incs      []int
	seen      []string
	panicked  bool
}

type boomBolt struct {
	shared *boomShared
	out    Collector
}

func (b *boomBolt) Prepare(ctx *BoltContext, out Collector) error {
	b.out = out
	b.shared.mu.Lock()
	b.shared.instances++
	b.shared.incs = append(b.shared.incs, ctx.Incarnation)
	b.shared.mu.Unlock()
	return nil
}

func (b *boomBolt) Execute(t *Tuple) {
	v := t.Values[0].(string)
	b.shared.mu.Lock()
	if v == "boom" && !b.shared.panicked {
		b.shared.panicked = true
		b.shared.mu.Unlock()
		panic("injected bolt crash")
	}
	b.shared.seen = append(b.shared.seen, v)
	b.shared.mu.Unlock()
	b.out.Ack(t)
}

func (b *boomBolt) Cleanup() {}

func findStats(t *testing.T, top *Topology, comp string, taskID int) TaskStats {
	t.Helper()
	for _, s := range top.Stats() {
		if s.Component == comp && s.TaskID == taskID {
			return s
		}
	}
	t.Fatalf("no stats for %s[%d]", comp, taskID)
	return TaskStats{}
}

func TestSupervisorRestartsPanickingBolt(t *testing.T) {
	shared := &boomShared{}
	spout := &listSpout{items: []Values{{"a"}, {"boom"}, {"b"}}, replay: true}
	var restartComp atomic.Value
	b := NewBuilder()
	b.SetSpout("src", func() Spout { return spout }, 1, "v")
	b.SetBolt("sink", func() Bolt { return &boomBolt{shared: shared} }, 1).ShuffleGrouping("src")
	top, err := b.Build(Config{
		EnableAcking: true,
		AckTimeout:   100 * time.Millisecond,
		OnTaskRestart: func(component string, taskID int) {
			restartComp.Store(component)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := top.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(top.Stop)

	// The panic must fail the in-flight ledger (spout replay), and the
	// replacement instance must then process the replayed tuple.
	waitFor(t, 5*time.Second, func() bool {
		shared.mu.Lock()
		defer shared.mu.Unlock()
		boom := false
		for _, v := range shared.seen {
			if v == "boom" {
				boom = true
			}
		}
		return boom && len(shared.seen) >= 3
	}, "replayed tuple not processed by restarted bolt")

	s := findStats(t, top, "sink", 0)
	if s.Restarts != 1 || s.Panics != 1 || s.Dead {
		t.Fatalf("stats = %+v, want Restarts=1 Panics=1 Dead=false", s)
	}
	if !strings.Contains(s.LastPanic, "injected bolt crash") {
		t.Fatalf("LastPanic = %q, want the recovered panic value", s.LastPanic)
	}
	if !strings.Contains(s.LastPanic, "goroutine") {
		t.Fatalf("LastPanic = %q, want a stack trace", s.LastPanic)
	}
	shared.mu.Lock()
	instances, incs := shared.instances, append([]int(nil), shared.incs...)
	shared.mu.Unlock()
	if instances != 2 {
		t.Fatalf("instances = %d, want 2 (fresh bolt after restart)", instances)
	}
	if incs[0] != 0 || incs[1] != 1 {
		t.Fatalf("incarnations = %v, want [0 1]", incs)
	}
	if got, _ := restartComp.Load().(string); got != "sink" {
		t.Fatalf("OnTaskRestart component = %q, want \"sink\"", got)
	}
	if spout.fails.Load() == 0 {
		t.Fatal("panic did not fail the in-flight tuple's ledger")
	}
}

// alwaysPanicBolt crashes on every tuple.
type alwaysPanicBolt struct{}

func (b *alwaysPanicBolt) Prepare(ctx *BoltContext, out Collector) error { return nil }
func (b *alwaysPanicBolt) Execute(t *Tuple)                              { panic("hopeless") }
func (b *alwaysPanicBolt) Cleanup()                                      {}

func TestSupervisorMarksTaskDeadAfterBoundedRestarts(t *testing.T) {
	const n = 20
	spout := &listSpout{items: values(n)}
	b := NewBuilder()
	b.SetSpout("src", func() Spout { return spout }, 1, "key", "n")
	b.SetBolt("sink", func() Bolt { return &alwaysPanicBolt{} }, 1).ShuffleGrouping("src")
	top, err := b.Build(Config{
		EnableAcking:    true,
		AckTimeout:      200 * time.Millisecond,
		MaxTaskRestarts: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := top.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(top.Stop)

	// Every tuple must come back failed — first via panic recovery, then
	// via the dead task's drain — and the spout must never deadlock on a
	// queue nobody reads.
	waitFor(t, 5*time.Second, func() bool { return spout.fails.Load() == n }, "tuples stuck behind a dead task")
	s := findStats(t, top, "sink", 0)
	if !s.Dead || s.Restarts != 2 || s.Panics != 3 {
		t.Fatalf("stats = %+v, want Dead=true Restarts=2 Panics=3", s)
	}
}

// ackThenPanicBolt acks its tuple and then panics, exactly once.
type ackThenPanicBolt struct {
	shared *boomShared
	out    Collector
}

func (b *ackThenPanicBolt) Prepare(ctx *BoltContext, out Collector) error {
	b.out = out
	b.shared.mu.Lock()
	b.shared.instances++
	b.shared.mu.Unlock()
	return nil
}

func (b *ackThenPanicBolt) Execute(t *Tuple) {
	b.shared.mu.Lock()
	b.shared.seen = append(b.shared.seen, t.Values[0].(string))
	first := !b.shared.panicked
	b.shared.panicked = true
	b.shared.mu.Unlock()
	b.out.Ack(t)
	if first {
		panic("after ack")
	}
}

func (b *ackThenPanicBolt) Cleanup() {}

// TestSupervisorDoesNotFailSettledTuple: a bolt that acks and then panics
// must not have its (already recycled, possibly reused) tuple failed by
// the supervisor — the spout sees acks only.
func TestSupervisorDoesNotFailSettledTuple(t *testing.T) {
	shared := &boomShared{}
	spout := &listSpout{items: []Values{{"a"}, {"b"}, {"c"}}}
	b := NewBuilder()
	b.SetSpout("src", func() Spout { return spout }, 1, "v")
	b.SetBolt("sink", func() Bolt { return &ackThenPanicBolt{shared: shared} }, 1).ShuffleGrouping("src")
	top, err := b.Build(Config{EnableAcking: true, AckTimeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if err := top.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(top.Stop)

	waitFor(t, 5*time.Second, func() bool { return spout.acks.Load() == 3 }, "acks missing")
	if f := spout.fails.Load(); f != 0 {
		t.Fatalf("settled tuple was failed by the supervisor: fails = %d", f)
	}
}

// crashySpout panics mid-run once, then (as a fresh instance sharing
// state) continues from where the crashed one stopped.
type crashySpout struct {
	shared *crashySpoutShared
	ctx    *SpoutContext
}

type crashySpoutShared struct {
	mu       sync.Mutex
	next     int
	n        int
	panicked bool
	opens    int
}

func (s *crashySpout) Open(ctx *SpoutContext) error {
	s.ctx = ctx
	s.shared.mu.Lock()
	s.shared.opens++
	s.shared.mu.Unlock()
	return nil
}

func (s *crashySpout) NextTuple() bool {
	s.shared.mu.Lock()
	if s.shared.next == 2 && !s.shared.panicked {
		s.shared.panicked = true
		s.shared.mu.Unlock()
		panic("spout crash")
	}
	if s.shared.next >= s.shared.n {
		s.shared.mu.Unlock()
		return false
	}
	v := s.shared.next
	s.shared.next++
	s.shared.mu.Unlock()
	s.ctx.Emit(Values{v})
	return true
}

func (s *crashySpout) Ack(id MsgID)  {}
func (s *crashySpout) Fail(id MsgID) {}
func (s *crashySpout) Close()        {}

func TestSupervisorRestartsPanickingSpout(t *testing.T) {
	shared := &crashySpoutShared{n: 5}
	sink := &collectBolt{}
	b := NewBuilder()
	b.SetSpout("src", func() Spout { return &crashySpout{shared: shared} }, 1, "v")
	b.SetBolt("sink", func() Bolt { return sink }, 1).ShuffleGrouping("src")
	top, err := b.Build(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := top.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(top.Stop)

	waitFor(t, 5*time.Second, func() bool { return len(sink.snapshot()) == 5 }, "restarted spout did not finish emitting")
	s := findStats(t, top, "src", 0)
	if s.Restarts != 1 || s.Panics != 1 || s.Dead {
		t.Fatalf("spout stats = %+v, want Restarts=1 Panics=1 Dead=false", s)
	}
	shared.mu.Lock()
	opens := shared.opens
	shared.mu.Unlock()
	if opens != 2 {
		t.Fatalf("opens = %d, want 2 (fresh spout instance)", opens)
	}
}

// neverAckBolt swallows tuples without settling them, leaving their
// ledgers open.
type neverAckBolt struct{}

func (b *neverAckBolt) Prepare(ctx *BoltContext, out Collector) error { return nil }
func (b *neverAckBolt) Execute(t *Tuple)                              {}
func (b *neverAckBolt) Cleanup()                                      {}

// emitOnceThenPanicSpout emits one anchored tuple, then panics forever.
type emitOnceThenPanicSpout struct {
	shared *crashySpoutShared
	ctx    *SpoutContext
}

func (s *emitOnceThenPanicSpout) Open(ctx *SpoutContext) error {
	s.ctx = ctx
	return nil
}

func (s *emitOnceThenPanicSpout) NextTuple() bool {
	s.shared.mu.Lock()
	emitted := s.shared.next > 0
	s.shared.next++
	s.shared.mu.Unlock()
	if emitted {
		panic("spout gone")
	}
	s.ctx.Emit(Values{"orphan"})
	return true
}

func (s *emitOnceThenPanicSpout) Ack(id MsgID)  {}
func (s *emitOnceThenPanicSpout) Fail(id MsgID) {}
func (s *emitOnceThenPanicSpout) Close()        {}

// TestAckerDropsLedgersOfStoppedSpout: a ledger whose spout task died must
// be deleted by the sweep instead of replayed into a queue nobody drains.
func TestAckerDropsLedgersOfStoppedSpout(t *testing.T) {
	shared := &crashySpoutShared{}
	b := NewBuilder()
	b.SetSpout("src", func() Spout { return &emitOnceThenPanicSpout{shared: shared} }, 1, "v")
	b.SetBolt("sink", func() Bolt { return &neverAckBolt{} }, 1).ShuffleGrouping("src")
	top, err := b.Build(Config{
		EnableAcking:    true,
		AckTimeout:      2 * time.Second, // ledger must go via halted cleanup, not expiry
		MaxTaskRestarts: -1,              // first panic kills the spout
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := top.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(top.Stop)

	waitFor(t, 5*time.Second, func() bool {
		return findStats(t, top, "src", 0).Dead
	}, "spout not marked dead")
	waitFor(t, 5*time.Second, func() bool {
		return top.acker.pendingCount() == 0
	}, "orphaned ledger not deleted by sweep")
}
