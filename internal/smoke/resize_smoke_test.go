// Package smoke holds process-level smoke tests: each boots the real
// binaries the way an operator would and drives them from the outside. They
// are gated behind environment variables so the regular `go test ./...`
// stays hermetic and fast; the Makefile exposes each as its own target.
package smoke

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"invalidb/internal/appserver"
	"invalidb/internal/document"
	"invalidb/internal/eventlayer/tcp"
	"invalidb/internal/query"
	"invalidb/internal/storage"
)

// TestResizeSmoke is `make resize-smoke`: it boots a broker, two grid-mode
// invalidb-server processes, and a coordinator, then performs a live
// query-partition resize with the one-shot CLI while writes flow, and
// asserts that no notification was dropped or duplicated and that the
// maintained result matches the quiesced pull query (DESIGN.md §13). The
// in-process equivalent runs in internal/chaostest on every `go test`; this
// test exists to prove the same guarantee across real process boundaries.
func TestResizeSmoke(t *testing.T) {
	if os.Getenv("RESIZE_SMOKE") == "" {
		t.Skip("set RESIZE_SMOKE=1 (or run `make resize-smoke`) to boot the multi-process smoke")
	}

	bin := t.TempDir()
	build := exec.Command("go", "build", "-o", bin,
		"invalidb/cmd/eventlayerd", "invalidb/cmd/invalidb-server", "invalidb/cmd/invalidb-coordinator")
	build.Stdout, build.Stderr = os.Stderr, os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("building binaries: %v", err)
	}

	addr := freeAddr(t)
	spawn(t, filepath.Join(bin, "eventlayerd"), "-addr", addr, "-stats", "0")
	waitDialable(t, addr)
	spawn(t, filepath.Join(bin, "invalidb-server"), "-broker", addr, "-node", "a", "-slots", "2", "-max-wp", "2", "-stats", "0")
	spawn(t, filepath.Join(bin, "invalidb-server"), "-broker", addr, "-node", "b", "-slots", "2", "-max-wp", "2", "-stats", "0")
	spawn(t, filepath.Join(bin, "invalidb-coordinator"), "-broker", addr, "-qp", "2", "-wp", "2", "-stats", "1s")

	// The application server runs in-process so the test can audit its
	// notification ledger; it speaks to the grid over the same TCP broker
	// the server processes use.
	bus, err := tcp.Dial(addr, tcp.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer bus.Close()
	db := storage.Open(storage.Options{})
	srv, err := appserver.New(db, bus, appserver.Options{
		Tenant:               "default",
		EventBuffer:          4096,
		Backfill:             true,
		BackfillChunkSize:    64,
		BackfillChunkTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	epoch := func() float64 { return srv.Metrics().Snapshot().Gauges["appserver.epoch"] }
	waitFor(t, "initial partition map", 30*time.Second, func() bool { return epoch() >= 1 })

	spec := query.Spec{Collection: "c", Filter: map[string]any{"v": map[string]any{"$gte": 0}}}
	sub, err := srv.Subscribe(spec)
	if err != nil {
		t.Fatal(err)
	}
	var (
		mu      sync.Mutex
		adds    = map[string]int{}
		errs    int
		initial bool
	)
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for ev := range sub.C() {
			mu.Lock()
			switch ev.Type {
			case appserver.EventInitial:
				initial = true
			case appserver.EventAdd:
				adds[ev.Key]++
			case appserver.EventError:
				errs++
			}
			mu.Unlock()
		}
	}()
	waitFor(t, "initial result", 30*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return initial
	})

	// ~200 writes/s; the resize lands a third of the way through the stream.
	const n = 150
	for i := 0; i < n; i++ {
		if i == n/3 {
			out, err := exec.Command(filepath.Join(bin, "invalidb-coordinator"),
				"-broker", addr, "-resize", "qp").CombinedOutput()
			if err != nil {
				t.Fatalf("one-shot resize: %v\n%s", err, out)
			}
		}
		if err := srv.Insert("c", document.Document{"_id": fmt.Sprintf("k%03d", i), "v": int64(i)}); err != nil {
			t.Fatal(err)
		}
		time.Sleep(5 * time.Millisecond)
	}

	waitFor(t, "resize epoch", 30*time.Second, func() bool { return epoch() >= 2 })
	waitFor(t, "result convergence", 30*time.Second, func() bool {
		want, err := srv.Query(spec)
		if err != nil {
			t.Fatal(err)
		}
		mu.Lock()
		delivered := len(adds)
		mu.Unlock()
		return delivered >= n && len(sub.Result()) == len(want)
	})
	time.Sleep(200 * time.Millisecond) // let straggling duplicates land before auditing
	_ = sub.Close()
	<-drained

	mu.Lock()
	defer mu.Unlock()
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("k%03d", i)
		switch c := adds[key]; {
		case c == 0:
			t.Errorf("key %s: notification dropped", key)
		case c > 1:
			t.Errorf("key %s: %d add events, want 1 (duplicated notification)", key, c)
		}
	}
	if errs != 0 {
		t.Errorf("saw %d error events, want 0", errs)
	}
	t.Logf("resize-smoke: %d writes across a live QP resize, %d keys delivered exactly once, %d errors", n, len(adds), errs)
}

// spawn starts a binary and guarantees it is killed when the test ends.
func spawn(t *testing.T, path string, args ...string) {
	t.Helper()
	cmd := exec.Command(path, args...)
	cmd.Stdout, cmd.Stderr = os.Stderr, os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting %s: %v", filepath.Base(path), err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	})
}

// freeAddr grabs an ephemeral loopback port for the broker.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	_ = l.Close()
	return addr
}

func waitDialable(t *testing.T, addr string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if c, err := net.Dial("tcp", addr); err == nil {
			_ = c.Close()
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("broker at %s never accepted a connection", addr)
}

func waitFor(t *testing.T, what string, timeout time.Duration, ok func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if ok() {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
