package smoke

import (
	"os"
	"testing"
	"time"

	"invalidb/internal/experiments"
)

// TestFanoutSmoke is `make fanout-smoke`: a scaled-down run of the
// `-exp fanout` scenario (DESIGN.md §14) under the race detector. It proves
// the CI-checkable core of the fan-out claims: client subscriptions dedupe
// onto one upstream subscription per distinct query, every subscribed
// client receives the terminal event (zero lost terminal events), and a
// quota-capped noisy tenant is bounded without disturbing the measured
// swarm. The 100k-client figure itself comes from the full
// `invalidb-bench -exp fanout` run recorded in EXPERIMENTS.md.
func TestFanoutSmoke(t *testing.T) {
	if os.Getenv("FANOUT_SMOKE") == "" {
		t.Skip("set FANOUT_SMOKE=1 (or run `make fanout-smoke`) to run the fan-out smoke")
	}

	cfg := experiments.Config{Measure: 2 * time.Second}
	fc := experiments.FanoutConfig{
		Clients:       2000,
		Queries:       40,
		EventRate:     100,
		Noisy:         true,
		NoisyClients:  200,
		NoisyMaxConns: 32,
		NoisyMaxSubs:  32,
	}
	p, err := experiments.RunFanoutPoint(cfg, fc, func(s string) { t.Log(s) })
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + experiments.RenderFanout(p))

	if p.Subscribed != int64(fc.Clients) {
		t.Fatalf("subscribed %d of %d clients", p.Subscribed, fc.Clients)
	}
	if p.Upstream != fc.Queries {
		t.Fatalf("%d upstream subscriptions for %d distinct queries; dedup broken", p.Upstream, fc.Queries)
	}
	wantDedup := float64(fc.Clients) / float64(fc.Queries)
	if p.DedupRatio < wantDedup {
		t.Fatalf("dedup ratio %.1f below the %.0f floor", p.DedupRatio, wantDedup)
	}
	if p.TerminalSeen != p.TerminalWant {
		t.Fatalf("lost terminal events: %d/%d clients saw the terminal", p.TerminalSeen, p.TerminalWant)
	}
	if p.Encoded <= 0 || p.Fanned < p.Encoded*int64(wantDedup)/2 {
		t.Fatalf("encode-once counters implausible: %d encoded, %d fanned", p.Encoded, p.Fanned)
	}
	if p.NoisyAdmitted > int64(fc.NoisyMaxConns) {
		t.Fatalf("noisy tenant got %d conns past a %d cap", p.NoisyAdmitted, fc.NoisyMaxConns)
	}
	if p.NoisyRejected == 0 {
		t.Fatal("noisy tenant saw no quota rejections despite overflowing its cap")
	}
}
