// Package ratelimit provides the token-bucket limiter shared by the
// matching nodes (the per-node match-operation budget simulating the
// paper's per-node CPU cap) and the application server (the Quaestor write
// ceiling). The two components used to carry private copies of this code
// that drifted apart — different locking, different burst policy — so the
// same configured rate metered differently depending on which side held
// it. One implementation now serves both.
package ratelimit

import (
	"sync"
	"time"
)

// DefaultBurstFraction sizes the burst when the caller does not: 5% of the
// rate, i.e. 50ms of headroom, absorbs scheduler jitter without letting a
// bursty caller overdraw its long-run budget.
const DefaultBurstFraction = 0.05

// Bucket is a blocking, concurrency-safe token bucket. Tokens accrue at a
// fixed rate up to the burst ceiling; Take removes tokens and sleeps off
// any deficit. The balance is allowed to go negative and carries across
// calls, so long-run admission is exactly the configured rate regardless
// of call granularity — the property the drift regression test pins down.
type Bucket struct {
	mu     sync.Mutex
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

// New creates a bucket admitting rate tokens per second. A non-positive
// burst selects rate*DefaultBurstFraction.
func New(rate, burst float64) *Bucket {
	if burst <= 0 {
		burst = rate * DefaultBurstFraction
	}
	// Start full: the burst is headroom the caller is entitled to from the
	// first Take, not an allowance that must first accrue.
	//invalidb:allow coarseclock the token bucket is wall-clock-driven by design; construction is control-plane
	return &Bucket{rate: rate, burst: burst, tokens: burst, last: time.Now()}
}

// Rate returns the configured admission rate in tokens per second.
func (b *Bucket) Rate() float64 { return b.rate }

// Burst returns the effective burst ceiling in tokens.
func (b *Bucket) Burst() float64 { return b.burst }

// TryTake removes n tokens only if the current balance covers them and
// reports whether they were taken. Unlike Take it never blocks and never
// lets the balance go negative: admission-control callers (the gateway's
// per-tenant quotas) reject over-rate work outright instead of queueing
// it, so one tenant's burst cannot convoy behind another tenant's sleep.
func (b *Bucket) TryTake(n float64) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	//invalidb:allow coarseclock token accrual is defined against wall time; admission control cannot run on the tick clock
	now := time.Now()
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	b.last = now
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	if b.tokens < n {
		return false
	}
	b.tokens -= n
	return true
}

// Take removes n tokens, blocking until the balance owed has accrued. The
// wait is computed under the lock but slept outside it, so concurrent
// callers serialize only on the balance update, not on each other's
// sleeps; the deficit one caller sleeps off is visible to the next caller
// through the shared balance.
func (b *Bucket) Take(n float64) {
	b.mu.Lock()
	//invalidb:allow coarseclock token accrual is defined against wall time; admission control cannot run on the tick clock
	now := time.Now()
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	b.last = now
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.tokens -= n
	var wait time.Duration
	if b.tokens < 0 {
		wait = time.Duration(-b.tokens / b.rate * float64(time.Second))
	}
	b.mu.Unlock()
	if wait > 0 {
		time.Sleep(wait)
		// Credit the actual time slept, not the requested wait: Go sleeps
		// always overshoot, and discarding the overshoot (resetting the
		// balance to zero) is exactly the drift that let the old private
		// copies fall below their configured rate.
		b.mu.Lock()
		//invalidb:allow coarseclock crediting actual sleep overshoot requires re-reading the wall clock
		now = time.Now()
		b.tokens += now.Sub(b.last).Seconds() * b.rate
		b.last = now
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.mu.Unlock()
	}
}
