package ratelimit

import (
	"math"
	"testing"
	"time"
)

// admitted runs Take(cost) in a loop for the window and returns how many
// tokens were admitted.
func admitted(b *Bucket, cost float64, window time.Duration) float64 {
	deadline := time.Now().Add(window)
	total := 0.0
	for time.Now().Before(deadline) {
		b.Take(cost)
		total += cost
	}
	return total
}

// TestMetersConfiguredRate: long-run admission tracks the configured rate
// regardless of burst headroom.
func TestMetersConfiguredRate(t *testing.T) {
	const rate = 4000.0
	window := 500 * time.Millisecond
	b := New(rate, 0)
	got := admitted(b, 1, window)
	want := rate * window.Seconds()
	// Allow the burst plus 20% scheduling slop.
	if got < want*0.7 || got > want*1.2+b.Burst() {
		t.Fatalf("admitted %.0f tokens in %v at rate %.0f, want ~%.0f", got, window, rate, want)
	}
}

// TestDriftAcrossCallGranularity is the regression test for the historical
// two-copy drift: the matching nodes take large batched costs while the
// application server takes cost 1 per write, and the two private bucket
// implementations metered those patterns differently under the same
// configured rate. With the shared implementation, admission must agree
// across call granularities to within the burst allowance.
func TestDriftAcrossCallGranularity(t *testing.T) {
	const rate = 5000.0
	window := 400 * time.Millisecond
	fine := admitted(New(rate, 0), 1, window)
	coarse := admitted(New(rate, 0), 50, window)
	diff := math.Abs(fine - coarse)
	// Each run can overshoot by at most one burst plus one cost quantum;
	// double that bounds the divergence between the two patterns.
	tol := 2*(rate*DefaultBurstFraction+50) + 0.2*rate*window.Seconds()
	if diff > tol {
		t.Fatalf("call-granularity drift: fine=%.0f coarse=%.0f (diff %.0f > tol %.0f)", fine, coarse, diff, tol)
	}
}

// TestConfigurableBurst: an explicit burst is honored — that many tokens
// are admitted instantly — and the default derives from the rate.
func TestConfigurableBurst(t *testing.T) {
	b := New(1000, 300)
	if got := b.Burst(); got != 300 {
		t.Fatalf("explicit burst = %v, want 300", got)
	}
	if def := New(1000, 0).Burst(); def != 1000*DefaultBurstFraction {
		t.Fatalf("default burst = %v, want %v", def, 1000*DefaultBurstFraction)
	}
	// The full burst must be admitted without measurable blocking.
	start := time.Now()
	b.Take(300)
	if elapsed := time.Since(start); elapsed > 50*time.Millisecond {
		t.Fatalf("taking the burst blocked for %v", elapsed)
	}
	// The next take must owe the deficit: at 1000/s, 300 tokens is 300ms.
	start = time.Now()
	b.Take(300)
	if elapsed := time.Since(start); elapsed < 100*time.Millisecond {
		t.Fatalf("post-burst take slept only %v, want a rate-paced wait", elapsed)
	}
}

// TestCreditsSleepOvershoot pins the drift fix in Take: a sleep that
// overshoots its deadline (Go sleeps never return early, and in practice
// always overshoot by microseconds or more) must credit the tokens accrued
// while sleeping rather than resetting the balance to zero.
func TestCreditsSleepOvershoot(t *testing.T) {
	b := New(1e6, 0) // 1 token per microsecond
	b.mu.Lock()
	b.tokens = 0
	b.last = time.Now()
	b.mu.Unlock()
	start := time.Now()
	b.Take(5000) // 5ms deficit forces a sleep
	if elapsed := time.Since(start); elapsed < 4*time.Millisecond {
		t.Fatalf("bucket did not throttle: took %v for a 5ms deficit", elapsed)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.tokens <= 0 {
		t.Fatalf("sleep overshoot discarded: tokens = %v, want > 0", b.tokens)
	}
	if b.tokens > b.burst {
		t.Fatalf("credit exceeds burst: tokens = %v, burst = %v", b.tokens, b.burst)
	}
}

// TestSustainedRate bounds the delivered rate from both sides with generous
// tolerances: the bucket must block (budget enforced) yet not fall far
// below its configured rate (the drift bug's symptom).
func TestSustainedRate(t *testing.T) {
	const rate = 20000.0
	b := New(rate, 0)
	b.mu.Lock()
	b.tokens = 0 // no free initial burst
	b.last = time.Now()
	b.mu.Unlock()
	start := time.Now()
	for taken := 0.0; taken < 4000; taken += 100 {
		b.Take(100) // 4000 tokens at 20k/s: ideal 200ms
	}
	elapsed := time.Since(start)
	if elapsed < 100*time.Millisecond {
		t.Fatalf("bucket delivered 4000 tokens in %v, budget not enforced", elapsed)
	}
	if elapsed > 600*time.Millisecond {
		t.Fatalf("bucket needed %v for a 200ms budget: drifting below rate", elapsed)
	}
}

// TestNegativeBalanceCarries: a huge take is paid off by subsequent calls
// rather than forgotten, so bursts borrow from future capacity instead of
// exceeding the budget.
func TestNegativeBalanceCarries(t *testing.T) {
	const rate = 2000.0
	b := New(rate, 1)
	start := time.Now()
	b.Take(200) // owes ~100ms
	b.Take(200) // owes another ~100ms
	elapsed := time.Since(start)
	if elapsed < 150*time.Millisecond {
		t.Fatalf("two overdrawing takes finished in %v, want >=150ms of metering", elapsed)
	}
}

// TestTryTakeNeverOverdraws: TryTake admits while tokens last and then
// refuses without blocking or borrowing — the admission-control contract the
// gateway's tenant quotas rely on.
func TestTryTakeNeverOverdraws(t *testing.T) {
	b := New(1, 5) // 5 tokens of burst, trickle refill
	admitted := 0
	for i := 0; i < 100; i++ {
		if b.TryTake(1) {
			admitted++
		}
	}
	if admitted < 5 || admitted > 6 { // refill may add ~1 during the loop
		t.Fatalf("admitted %d of 100 with a 5-token burst", admitted)
	}
	start := time.Now()
	b.TryTake(1)
	if time.Since(start) > 50*time.Millisecond {
		t.Fatal("TryTake blocked; it must refuse immediately")
	}
}

// TestTryTakeRefills: refused callers are admitted again once the bucket
// accrues tokens at its configured rate.
func TestTryTakeRefills(t *testing.T) {
	b := New(100, 1)
	for b.TryTake(1) {
	}
	deadline := time.Now().Add(2 * time.Second)
	for !b.TryTake(1) {
		if time.Now().After(deadline) {
			t.Fatal("bucket never refilled for TryTake")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
