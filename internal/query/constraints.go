package query

import (
	"sort"
	"strings"

	"invalidb/internal/geo"
)

// ConstraintKind classifies an indexable necessary condition by the index
// family that serves it.
type ConstraintKind uint8

const (
	// ConstraintEquality: the field must equal one of Values (scalar
	// string/bool/number). Served by a hash index.
	ConstraintEquality ConstraintKind = iota
	// ConstraintText: the document must contain at least one of Tokens as a
	// word, anywhere in its text. Served by an inverted token index.
	ConstraintText
	// ConstraintGeo: the field must hold a point inside Bound. Served by a
	// grid-cell index.
	ConstraintGeo
	// ConstraintInterval: the field's numeric value must lie in Interval.
	// Served by an interval tree.
	ConstraintInterval
)

// Constraint is one necessary condition extracted from a query's filter: a
// document that violates it cannot match the query. The matching layer
// registers each query under exactly one constraint (the most selective one
// available) and only evaluates the full filter on writes that satisfy it.
type Constraint struct {
	Kind     ConstraintKind
	Path     string       // field path (equality/geo/interval)
	Interval Interval     // ConstraintInterval
	Values   []any        // ConstraintEquality: scalar alternatives ($in) or a single value
	Bound    geo.Bound    // ConstraintGeo
	Tokens   []string     // ConstraintText: lowercased word alternatives
}

// IndexableConstraints walks the compiled filter tree and returns every
// necessary condition an index family can serve, most selective first.
// Only conjunctive context is walked: a condition under $or/$nor/$not is
// not necessary for the whole filter and is never extracted. An empty
// result means the query is unindexable and must see every write.
func (q *Query) IndexableConstraints() []Constraint {
	var out []Constraint
	intervals := map[string]*Interval{}
	collectConstraints(q.Filter, &out, intervals)
	// Emit accumulated per-path intervals after the walk so repeated
	// comparisons on one path ({$gte: 3, $lt: 9}) combine into one bound.
	paths := make([]string, 0, len(intervals))
	for p := range intervals {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		out = append(out, Constraint{Kind: ConstraintInterval, Path: p, Interval: *intervals[p]})
	}
	sort.SliceStable(out, func(i, j int) bool {
		return selectivityClass(out[i]) < selectivityClass(out[j])
	})
	return out
}

// selectivityClass orders constraint kinds by typical candidate-set size:
// exact equality < text tokens < geo cells < two-sided intervals <
// half-bounded intervals.
func selectivityClass(c Constraint) int {
	switch c.Kind {
	case ConstraintEquality:
		return 0
	case ConstraintText:
		return 1
	case ConstraintGeo:
		return 2
	default:
		if c.Interval.LoSet && c.Interval.HiSet {
			return 3
		}
		return 4
	}
}

// collectConstraints descends through conjunctive structure only.
func collectConstraints(f Filter, out *[]Constraint, intervals map[string]*Interval) {
	switch t := f.(type) {
	case *andFilter:
		for _, c := range t.children {
			collectConstraints(c, out, intervals)
		}
	case *fieldFilter:
		if strings.Contains(t.path, elemSentinel) {
			return
		}
		for _, p := range t.preds {
			constraintFromPred(t.path, p, out, intervals)
		}
	case *textFilter:
		if tokens, ok := indexableTextTokens(t); ok {
			*out = append(*out, Constraint{Kind: ConstraintText, Tokens: tokens})
		}
	}
	// $or/$nor children and other filter kinds contribute nothing: their
	// conditions are not necessary for the conjunction as a whole.
}

func constraintFromPred(path string, p predicate, out *[]Constraint, intervals map[string]*Interval) {
	switch t := p.(type) {
	case eqPred:
		if v, ok := indexableScalar(t.operand); ok {
			*out = append(*out, Constraint{Kind: ConstraintEquality, Path: path, Values: []any{v}})
		}
	case inPred:
		// $in is a disjunction of equalities: indexable only when every
		// alternative is an indexable scalar and there are no regexes
		// (a regex alternative admits values the hash index cannot enumerate).
		if len(t.regexes) > 0 || len(t.operands) == 0 {
			return
		}
		vals := make([]any, 0, len(t.operands))
		for _, o := range t.operands {
			v, ok := indexableScalar(o)
			if !ok {
				return
			}
			vals = append(vals, v)
		}
		*out = append(*out, Constraint{Kind: ConstraintEquality, Path: path, Values: vals})
	case cmpPred:
		n, ok := numericOperand(t.operand)
		if !ok {
			return
		}
		iv := intervals[path]
		if iv == nil {
			iv = &Interval{Path: path}
			intervals[path] = iv
		}
		switch t.op {
		case opGTE:
			if !iv.LoSet || n > iv.Lo {
				iv.Lo, iv.LoSet, iv.LoInc = n, true, true
			}
		case opGT:
			if !iv.LoSet || n >= iv.Lo {
				iv.Lo, iv.LoSet, iv.LoInc = n, true, false
			}
		case opLTE:
			if !iv.HiSet || n < iv.Hi {
				iv.Hi, iv.HiSet, iv.HiInc = n, true, true
			}
		case opLT:
			if !iv.HiSet || n <= iv.Hi {
				iv.Hi, iv.HiSet, iv.HiInc = n, true, false
			}
		}
	case geoWithinPred:
		if b, ok := t.shape.(geo.Bounder); ok {
			bound := b.Bound()
			if bound.Valid() {
				*out = append(*out, Constraint{Kind: ConstraintGeo, Path: path, Bound: bound})
			}
		}
	case nearSpherePred:
		bound := geo.Circle{Center: t.center, RadiusRad: t.maxRad}.Bound()
		if bound.Valid() {
			*out = append(*out, Constraint{Kind: ConstraintGeo, Path: path, Bound: bound})
		}
	case multiPred:
		for _, inner := range t.preds {
			constraintFromPred(path, inner, out, intervals)
		}
	}
	// Everything else ($ne, $nin, $not, $exists, $regex, $mod, $size, $all,
	// $elemMatch, $type) either is a negation, admits unbounded value sets,
	// or constrains structure rather than a hashable value — unindexable.
}

// indexableScalar reports whether an equality operand can key a hash index.
// A nil operand also matches *missing* fields (eqPred semantics), which a
// value-keyed index cannot see, so null equality is not indexable. Numbers
// are normalized to float64: document.Compare equates int64(3) and 3.0, so
// the normalized key is a sound necessary condition.
func indexableScalar(v any) (any, bool) {
	switch t := v.(type) {
	case string:
		return t, true
	case bool:
		return t, true
	case int64:
		return float64(t), true
	case float64:
		return t, true
	default:
		return nil, false
	}
}

// indexableTextTokens returns the lowercased term list of a $text filter
// when term matching is a sound index condition. Term matching requires at
// least one term to appear as a word (OR semantics), so the query must be
// registered under every term. A term only corresponds to a document token
// when it is purely ASCII-alphanumeric: containsWord on a term with an
// embedded boundary byte ("hot-dog") matches across token boundaries, which
// token postings cannot see. Phrase-only and negation-only queries carry no
// positive term condition: a phrase is a substring match that can start
// mid-token ("shot dog" contains "hot dog"), so phrases are never used as
// index keys.
func indexableTextTokens(f *textFilter) ([]string, bool) {
	if len(f.terms) == 0 {
		return nil, false
	}
	tokens := make([]string, 0, len(f.terms))
	for _, term := range f.terms {
		lt := strings.ToLower(term)
		if lt == "" || !isASCIIAlnum(lt) {
			return nil, false
		}
		tokens = append(tokens, lt)
	}
	return tokens, true
}

func isASCIIAlnum(s string) bool {
	for i := 0; i < len(s); i++ {
		if isWordBoundary(s[i]) {
			return false
		}
	}
	return true
}
