package query

import (
	"reflect"
	"testing"

	"invalidb/internal/geo"
)

func compileFilter(t *testing.T, filter map[string]any) *Query {
	t.Helper()
	q, err := Compile(Spec{Collection: "c", Filter: filter})
	if err != nil {
		t.Fatalf("compile %v: %v", filter, err)
	}
	return q
}

func TestIndexableConstraintsEquality(t *testing.T) {
	q := compileFilter(t, map[string]any{"category": "books"})
	cs := q.IndexableConstraints()
	if len(cs) != 1 || cs[0].Kind != ConstraintEquality || cs[0].Path != "category" {
		t.Fatalf("got %+v", cs)
	}
	if !reflect.DeepEqual(cs[0].Values, []any{"books"}) {
		t.Fatalf("values: %+v", cs[0].Values)
	}

	// Numeric equality normalizes to float64.
	q = compileFilter(t, map[string]any{"n": int64(3)})
	cs = q.IndexableConstraints()
	if len(cs) != 1 || cs[0].Kind != ConstraintEquality {
		t.Fatalf("got %+v", cs)
	}
	if !reflect.DeepEqual(cs[0].Values, []any{float64(3)}) {
		t.Fatalf("values: %+v", cs[0].Values)
	}

	// Bool equality.
	q = compileFilter(t, map[string]any{"active": true})
	if cs := q.IndexableConstraints(); len(cs) != 1 || cs[0].Kind != ConstraintEquality {
		t.Fatalf("got %+v", cs)
	}

	// Null equality matches missing fields: unindexable.
	q = compileFilter(t, map[string]any{"f": nil})
	if cs := q.IndexableConstraints(); len(cs) != 0 {
		t.Fatalf("null equality should be unindexable, got %+v", cs)
	}

	// Container equality: unindexable.
	q = compileFilter(t, map[string]any{"f": map[string]any{"$eq": []any{int64(1)}}})
	if cs := q.IndexableConstraints(); len(cs) != 0 {
		t.Fatalf("array equality should be unindexable, got %+v", cs)
	}
}

func TestIndexableConstraintsIn(t *testing.T) {
	q := compileFilter(t, map[string]any{"tag": map[string]any{"$in": []any{"a", "b", int64(3)}}})
	cs := q.IndexableConstraints()
	if len(cs) != 1 || cs[0].Kind != ConstraintEquality {
		t.Fatalf("got %+v", cs)
	}
	if !reflect.DeepEqual(cs[0].Values, []any{"a", "b", float64(3)}) {
		t.Fatalf("values: %+v", cs[0].Values)
	}

	// $in with a null alternative: unindexable (null matches missing).
	q = compileFilter(t, map[string]any{"tag": map[string]any{"$in": []any{"a", nil}}})
	if cs := q.IndexableConstraints(); len(cs) != 0 {
		t.Fatalf("got %+v", cs)
	}

	// $in with a regex alternative: unindexable.
	q = compileFilter(t, map[string]any{"tag": map[string]any{"$in": []any{"a", map[string]any{"$regex": "^x"}}}})
	if cs := q.IndexableConstraints(); len(cs) != 0 {
		t.Fatalf("got %+v", cs)
	}
}

func TestIndexableConstraintsInterval(t *testing.T) {
	q := compileFilter(t, map[string]any{"age": map[string]any{"$gte": int64(3), "$lt": int64(9)}})
	cs := q.IndexableConstraints()
	if len(cs) != 1 || cs[0].Kind != ConstraintInterval {
		t.Fatalf("got %+v", cs)
	}
	iv := cs[0].Interval
	if iv.Path != "age" || !iv.LoSet || !iv.HiSet || iv.Lo != 3 || iv.Hi != 9 || !iv.LoInc || iv.HiInc {
		t.Fatalf("interval: %+v", iv)
	}

	// Half-bounded still usable.
	q = compileFilter(t, map[string]any{"age": map[string]any{"$gt": 5.5}})
	cs = q.IndexableConstraints()
	if len(cs) != 1 || cs[0].Kind != ConstraintInterval || cs[0].Interval.HiSet {
		t.Fatalf("got %+v", cs)
	}

	// String comparison: not numeric, unindexable.
	q = compileFilter(t, map[string]any{"name": map[string]any{"$gt": "m"}})
	if cs := q.IndexableConstraints(); len(cs) != 0 {
		t.Fatalf("got %+v", cs)
	}
}

func TestIndexableConstraintsGeoAndText(t *testing.T) {
	q := compileFilter(t, map[string]any{"loc": map[string]any{
		"$geoWithin": map[string]any{"$box": []any{[]any{0.0, 0.0}, []any{2.0, 3.0}}},
	}})
	cs := q.IndexableConstraints()
	if len(cs) != 1 || cs[0].Kind != ConstraintGeo || cs[0].Path != "loc" {
		t.Fatalf("got %+v", cs)
	}
	if !cs[0].Bound.Contains(geo.Point{Lng: 1, Lat: 1}) {
		t.Fatalf("bound: %+v", cs[0].Bound)
	}

	q = compileFilter(t, map[string]any{"loc": map[string]any{
		"$nearSphere": []any{10.0, 20.0}, "$maxDistance": 0.001,
	}})
	cs = q.IndexableConstraints()
	if len(cs) != 1 || cs[0].Kind != ConstraintGeo {
		t.Fatalf("got %+v", cs)
	}
	if !cs[0].Bound.Contains(geo.Point{Lng: 10, Lat: 20}) {
		t.Fatalf("bound should contain center: %+v", cs[0].Bound)
	}

	q = compileFilter(t, map[string]any{"$text": map[string]any{"$search": "Coffee espresso"}})
	cs = q.IndexableConstraints()
	if len(cs) != 1 || cs[0].Kind != ConstraintText {
		t.Fatalf("got %+v", cs)
	}
	if !reflect.DeepEqual(cs[0].Tokens, []string{"coffee", "espresso"}) {
		t.Fatalf("tokens: %+v", cs[0].Tokens)
	}

	// Phrase-only: unindexable (substring can start mid-word).
	q = compileFilter(t, map[string]any{"$text": map[string]any{"$search": `"hot dog"`}})
	if cs := q.IndexableConstraints(); len(cs) != 0 {
		t.Fatalf("phrase-only should be unindexable, got %+v", cs)
	}

	// A term containing a word-boundary byte cannot key token postings.
	q = compileFilter(t, map[string]any{"$text": map[string]any{"$search": "hot-dog"}})
	if cs := q.IndexableConstraints(); len(cs) != 0 {
		t.Fatalf("non-alnum term should be unindexable, got %+v", cs)
	}
}

func TestIndexableConstraintsConjunctiveOnly(t *testing.T) {
	// Conditions under $or are not necessary for the whole filter.
	q := compileFilter(t, map[string]any{"$or": []any{
		map[string]any{"a": int64(1)},
		map[string]any{"b": int64(2)},
	}})
	if cs := q.IndexableConstraints(); len(cs) != 0 {
		t.Fatalf("$or should be unindexable, got %+v", cs)
	}

	// But $and children are walked.
	q = compileFilter(t, map[string]any{"$and": []any{
		map[string]any{"a": "x"},
		map[string]any{"$or": []any{map[string]any{"b": int64(1)}, map[string]any{"c": int64(2)}}},
	}})
	cs := q.IndexableConstraints()
	if len(cs) != 1 || cs[0].Kind != ConstraintEquality || cs[0].Path != "a" {
		t.Fatalf("got %+v", cs)
	}

	// $ne / $exists / $not contribute nothing.
	q = compileFilter(t, map[string]any{"a": map[string]any{"$ne": int64(1)}})
	if cs := q.IndexableConstraints(); len(cs) != 0 {
		t.Fatalf("$ne should be unindexable, got %+v", cs)
	}
}

func TestIndexableConstraintsSelectivityOrder(t *testing.T) {
	q := compileFilter(t, map[string]any{
		"age":      map[string]any{"$gte": int64(3), "$lt": int64(9)},
		"category": "books",
		"loc": map[string]any{
			"$geoWithin": map[string]any{"$box": []any{[]any{0.0, 0.0}, []any{1.0, 1.0}}},
		},
		"$text": map[string]any{"$search": "coffee"},
	})
	cs := q.IndexableConstraints()
	if len(cs) != 4 {
		t.Fatalf("want 4 constraints, got %+v", cs)
	}
	want := []ConstraintKind{ConstraintEquality, ConstraintText, ConstraintGeo, ConstraintInterval}
	for i, k := range want {
		if cs[i].Kind != k {
			t.Fatalf("position %d: want kind %d, got %+v", i, k, cs)
		}
	}

	// Half-bounded sorts after two-sided.
	q = compileFilter(t, map[string]any{
		"a": map[string]any{"$gte": int64(1)},
		"b": map[string]any{"$gte": int64(1), "$lte": int64(2)},
	})
	cs = q.IndexableConstraints()
	if len(cs) != 2 || cs[0].Path != "b" || cs[1].Path != "a" {
		t.Fatalf("got %+v", cs)
	}
}
