package query

import (
	"fmt"
	"regexp"
	"strings"

	"invalidb/internal/document"
	"invalidb/internal/geo"
)

// ParseFilter compiles a MongoDB-syntax filter document (already decoded into
// generic values) into an executable Filter. Supported operators:
//
//	comparison:  $eq $ne $gt $gte $lt $lte $in $nin
//	logical:     $and $or $nor $not
//	element:     $exists $type
//	evaluation:  $regex (+$options) $mod $text
//	array:       $all $size $elemMatch
//	geospatial:  $geoWithin ($box $centerSphere $polygon $geometry) $nearSphere
func ParseFilter(raw map[string]any) (Filter, error) {
	raw = normalizeMap(raw)
	return parseFilterDoc(raw)
}

func normalizeMap(m map[string]any) map[string]any {
	return map[string]any(document.Normalize(document.Document(m)))
}

func parseFilterDoc(raw map[string]any) (Filter, error) {
	if len(raw) == 0 {
		return matchAll{}, nil
	}
	var children []Filter
	for _, key := range sortedKeys(raw) {
		v := raw[key]
		switch {
		case key == "$and" || key == "$or" || key == "$nor":
			subs, err := parseFilterList(key, v)
			if err != nil {
				return nil, err
			}
			switch key {
			case "$and":
				children = append(children, &andFilter{subs})
			case "$or":
				children = append(children, &orFilter{subs})
			case "$nor":
				children = append(children, &norFilter{subs})
			}
		case key == "$text":
			tf, err := parseText(v)
			if err != nil {
				return nil, err
			}
			children = append(children, tf)
		case key == "$comment":
			// ignored, as in MongoDB
		case strings.HasPrefix(key, "$"):
			return nil, fmt.Errorf("query: unsupported top-level operator %q", key)
		default:
			ff, err := parseFieldCondition(key, v)
			if err != nil {
				return nil, err
			}
			children = append(children, ff)
		}
	}
	if len(children) == 1 {
		return children[0], nil
	}
	return &andFilter{children}, nil
}

func parseFilterList(op string, v any) ([]Filter, error) {
	arr, ok := v.([]any)
	if !ok || len(arr) == 0 {
		return nil, fmt.Errorf("query: %s expects a non-empty array", op)
	}
	subs := make([]Filter, 0, len(arr))
	for i, e := range arr {
		m, ok := e.(map[string]any)
		if !ok {
			return nil, fmt.Errorf("query: %s[%d] is not a filter document", op, i)
		}
		f, err := parseFilterDoc(m)
		if err != nil {
			return nil, err
		}
		subs = append(subs, f)
	}
	return subs, nil
}

// parseFieldCondition handles {field: value} and {field: {$op: ...}} forms.
func parseFieldCondition(path string, v any) (Filter, error) {
	if err := validatePath(path); err != nil {
		return nil, err
	}
	opDoc, isOps := v.(map[string]any)
	if isOps && hasOperatorKey(opDoc) {
		preds, err := parseOperatorDoc(path, opDoc)
		if err != nil {
			return nil, err
		}
		return &fieldFilter{path: path, preds: preds}, nil
	}
	// Bare value: implicit $eq (an embedded document without operators is an
	// exact-object equality match).
	return &fieldFilter{path: path, preds: []predicate{eqPred{v}}}, nil
}

func hasOperatorKey(m map[string]any) bool {
	for k := range m {
		if strings.HasPrefix(k, "$") {
			return true
		}
	}
	return false
}

func parseOperatorDoc(path string, ops map[string]any) ([]predicate, error) {
	var preds []predicate
	// $regex and $options pair up; collect first.
	if _, ok := ops["$options"]; ok {
		if _, ok := ops["$regex"]; !ok {
			return nil, fmt.Errorf("query: %s: $options without $regex", path)
		}
	}
	for _, op := range sortedKeys(ops) {
		operand := ops[op]
		switch op {
		case "$eq":
			preds = append(preds, eqPred{operand})
		case "$ne":
			preds = append(preds, nePred{operand})
		case "$gt":
			preds = append(preds, cmpPred{opGT, operand})
		case "$gte":
			preds = append(preds, cmpPred{opGTE, operand})
		case "$lt":
			preds = append(preds, cmpPred{opLT, operand})
		case "$lte":
			preds = append(preds, cmpPred{opLTE, operand})
		case "$in", "$nin":
			p, err := parseIn(path, op, operand)
			if err != nil {
				return nil, err
			}
			if op == "$in" {
				preds = append(preds, p)
			} else {
				preds = append(preds, ninPred{p})
			}
		case "$exists":
			b, ok := operand.(bool)
			if !ok {
				// MongoDB accepts truthy numbers; we accept 0/1 for parity.
				if n, isNum := operand.(int64); isNum {
					b, ok = n != 0, true
				}
			}
			if !ok {
				return nil, fmt.Errorf("query: %s: $exists expects a boolean", path)
			}
			preds = append(preds, existsPred{b})
		case "$mod":
			arr, ok := operand.([]any)
			if !ok || len(arr) != 2 {
				return nil, fmt.Errorf("query: %s: $mod expects [divisor, remainder]", path)
			}
			div, ok1 := toInt64(arr[0])
			rem, ok2 := toInt64(arr[1])
			if !ok1 || !ok2 {
				return nil, fmt.Errorf("query: %s: $mod operands must be numbers", path)
			}
			if div == 0 {
				return nil, fmt.Errorf("query: %s: $mod by zero", path)
			}
			preds = append(preds, modPred{div, rem})
		case "$regex":
			re, err := compileRegex(operand, ops["$options"])
			if err != nil {
				return nil, fmt.Errorf("query: %s: %w", path, err)
			}
			preds = append(preds, regexPred{re})
		case "$options":
			// consumed by $regex
		case "$size":
			n, ok := toInt64(operand)
			if !ok || n < 0 {
				return nil, fmt.Errorf("query: %s: $size expects a non-negative integer", path)
			}
			preds = append(preds, sizePred{int(n)})
		case "$all":
			p, err := parseAll(path, operand)
			if err != nil {
				return nil, err
			}
			preds = append(preds, p)
		case "$elemMatch":
			sub, err := parseElemMatch(path, operand)
			if err != nil {
				return nil, err
			}
			preds = append(preds, elemMatchPred{sub})
		case "$type":
			name, ok := operand.(string)
			if !ok {
				return nil, fmt.Errorf("query: %s: $type expects a type name string", path)
			}
			switch name {
			case "null", "bool", "int", "long", "double", "number", "string", "object", "array":
			default:
				return nil, fmt.Errorf("query: %s: unknown $type %q", path, name)
			}
			preds = append(preds, typePred{name})
		case "$not":
			inner, err := parseNot(path, operand)
			if err != nil {
				return nil, err
			}
			preds = append(preds, inner)
		case "$geoWithin":
			shape, err := parseGeoWithin(path, operand)
			if err != nil {
				return nil, err
			}
			preds = append(preds, geoWithinPred{shape})
		case "$nearSphere", "$near":
			p, err := parseNearSphere(path, operand, ops["$maxDistance"])
			if err != nil {
				return nil, err
			}
			preds = append(preds, p)
		case "$maxDistance":
			// consumed by $nearSphere/$near
			if _, ok := ops["$nearSphere"]; !ok {
				if _, ok := ops["$near"]; !ok {
					return nil, fmt.Errorf("query: %s: $maxDistance without $nearSphere", path)
				}
			}
		default:
			return nil, fmt.Errorf("query: %s: unsupported operator %q", path, op)
		}
	}
	return preds, nil
}

func parseIn(path, op string, operand any) (inPred, error) {
	arr, ok := operand.([]any)
	if !ok {
		return inPred{}, fmt.Errorf("query: %s: %s expects an array", path, op)
	}
	p := inPred{}
	for _, e := range arr {
		if m, ok := e.(map[string]any); ok {
			if pat, ok := m["$regex"]; ok {
				re, err := compileRegex(pat, m["$options"])
				if err != nil {
					return inPred{}, fmt.Errorf("query: %s: %w", path, err)
				}
				p.regexes = append(p.regexes, re)
				continue
			}
		}
		p.operands = append(p.operands, e)
	}
	return p, nil
}

func parseAll(path string, operand any) (predicate, error) {
	arr, ok := operand.([]any)
	if !ok {
		return nil, fmt.Errorf("query: %s: $all expects an array", path)
	}
	p := allPred{}
	for _, e := range arr {
		if m, ok := e.(map[string]any); ok {
			if emRaw, ok := m["$elemMatch"]; ok {
				sub, err := parseElemMatch(path, emRaw)
				if err != nil {
					return nil, err
				}
				p.elems = append(p.elems, sub)
				continue
			}
		}
		p.operands = append(p.operands, e)
	}
	return p, nil
}

func parseElemMatch(path string, operand any) (Filter, error) {
	m, ok := operand.(map[string]any)
	if !ok {
		return nil, fmt.Errorf("query: %s: $elemMatch expects a document", path)
	}
	if hasOperatorKey(m) && !hasNonOperatorKey(m) {
		// Operator-only form: predicates over the scalar element itself.
		preds, err := parseOperatorDoc(path+".$elemMatch", m)
		if err != nil {
			return nil, err
		}
		return &fieldFilter{path: elemSentinel, preds: preds}, nil
	}
	return parseFilterDoc(m)
}

func hasNonOperatorKey(m map[string]any) bool {
	for k := range m {
		if !strings.HasPrefix(k, "$") {
			return true
		}
	}
	return false
}

func parseNot(path string, operand any) (predicate, error) {
	switch t := operand.(type) {
	case map[string]any:
		if !hasOperatorKey(t) {
			return nil, fmt.Errorf("query: %s: $not expects an operator document or regex", path)
		}
		preds, err := parseOperatorDoc(path, t)
		if err != nil {
			return nil, err
		}
		if len(preds) == 1 {
			return notPred{preds[0]}, nil
		}
		return notPred{multiPred{preds}}, nil
	case string:
		// Regex shorthand: {field: {$not: "pattern"}} is non-standard in
		// MongoDB (it wants /regex/) but the string form is the natural JSON
		// mapping, so we accept it.
		re, err := compileRegex(t, nil)
		if err != nil {
			return nil, fmt.Errorf("query: %s: %w", path, err)
		}
		return notPred{regexPred{re}}, nil
	default:
		return nil, fmt.Errorf("query: %s: $not expects an operator document or regex", path)
	}
}

func parseText(v any) (Filter, error) {
	m, ok := v.(map[string]any)
	if !ok {
		return nil, fmt.Errorf("query: $text expects {$search: ...}")
	}
	search, ok := m["$search"].(string)
	if !ok {
		return nil, fmt.Errorf("query: $text.$search must be a string")
	}
	caseSens := false
	if cs, ok := m["$caseSensitive"].(bool); ok {
		caseSens = cs
	}
	tf := &textFilter{caseSens: caseSens}
	for _, tok := range tokenizeSearch(search) {
		switch {
		case strings.HasPrefix(tok, "-"):
			if t := tok[1:]; t != "" {
				tf.negated = append(tf.negated, normCase(t, caseSens))
			}
		case strings.HasPrefix(tok, `"`) && strings.HasSuffix(tok, `"`) && len(tok) >= 2:
			tf.phrases = append(tf.phrases, normCase(strings.Trim(tok, `"`), caseSens))
		default:
			tf.terms = append(tf.terms, normCase(tok, caseSens))
		}
	}
	if len(tf.terms) == 0 && len(tf.phrases) == 0 && len(tf.negated) == 0 {
		return nil, fmt.Errorf("query: $text.$search is empty")
	}
	return tf, nil
}

func normCase(s string, caseSens bool) string {
	if caseSens {
		return s
	}
	return strings.ToLower(s)
}

// tokenizeSearch splits a $search string into terms, keeping quoted phrases
// as single tokens (with quotes) and attaching a leading '-' to its term.
func tokenizeSearch(s string) []string {
	var toks []string
	i := 0
	for i < len(s) {
		for i < len(s) && s[i] == ' ' {
			i++
		}
		if i >= len(s) {
			break
		}
		neg := false
		if s[i] == '-' {
			neg = true
			i++
		}
		if i < len(s) && s[i] == '"' {
			j := strings.IndexByte(s[i+1:], '"')
			if j < 0 {
				toks = append(toks, withNeg(neg, `"`+s[i+1:]+`"`))
				break
			}
			toks = append(toks, withNeg(neg, s[i:i+j+2]))
			i += j + 2
			continue
		}
		j := strings.IndexByte(s[i:], ' ')
		if j < 0 {
			j = len(s) - i
		}
		if j > 0 {
			toks = append(toks, withNeg(neg, s[i:i+j]))
		}
		i += j
	}
	return toks
}

func withNeg(neg bool, tok string) string {
	if neg {
		return "-" + strings.Trim(tok, `"`)
	}
	return tok
}

func parseGeoWithin(path string, operand any) (geo.Shape, error) {
	m, ok := operand.(map[string]any)
	if !ok || len(m) != 1 {
		return nil, fmt.Errorf("query: %s: $geoWithin expects exactly one shape operator", path)
	}
	for k, v := range m {
		switch k {
		case "$box":
			pts, err := parsePointList(path, v, 2)
			if err != nil {
				return nil, err
			}
			return geo.NewBox(pts[0], pts[1]), nil
		case "$centerSphere":
			arr, ok := v.([]any)
			if !ok || len(arr) != 2 {
				return nil, fmt.Errorf("query: %s: $centerSphere expects [center, radius]", path)
			}
			center, ok := geo.ParsePoint(arr[0])
			if !ok {
				return nil, fmt.Errorf("query: %s: $centerSphere center invalid", path)
			}
			rad, ok := toFloat64(arr[1])
			if !ok || rad < 0 {
				return nil, fmt.Errorf("query: %s: $centerSphere radius invalid", path)
			}
			return geo.Circle{Center: center, RadiusRad: rad}, nil
		case "$polygon":
			pts, err := parsePointList(path, v, 3)
			if err != nil {
				return nil, err
			}
			pg, err := geo.NewPolygon(pts)
			if err != nil {
				return nil, fmt.Errorf("query: %s: %w", path, err)
			}
			return pg, nil
		case "$geometry":
			g, ok := v.(map[string]any)
			if !ok || g["type"] != "Polygon" {
				return nil, fmt.Errorf("query: %s: $geometry supports Polygon only", path)
			}
			rings, ok := g["coordinates"].([]any)
			if !ok || len(rings) == 0 {
				return nil, fmt.Errorf("query: %s: $geometry.coordinates invalid", path)
			}
			pts, err := parsePointList(path, rings[0], 3)
			if err != nil {
				return nil, err
			}
			pg, err := geo.NewPolygon(pts)
			if err != nil {
				return nil, fmt.Errorf("query: %s: %w", path, err)
			}
			return pg, nil
		default:
			return nil, fmt.Errorf("query: %s: unsupported $geoWithin shape %q", path, k)
		}
	}
	return nil, fmt.Errorf("query: %s: empty $geoWithin", path)
}

func parseNearSphere(path string, operand any, maxDist any) (predicate, error) {
	var center geo.Point
	var maxRad float64
	hasMax := false
	switch t := operand.(type) {
	case map[string]any:
		if g, ok := t["$geometry"].(map[string]any); ok {
			pt, ok := geo.ParsePoint(g)
			if !ok {
				return nil, fmt.Errorf("query: %s: $nearSphere $geometry must be a Point", path)
			}
			center = pt
			if md, ok := toFloat64(t["$maxDistance"]); ok {
				// GeoJSON form: $maxDistance in meters.
				maxRad = md / geo.EarthRadiusMeters
				hasMax = true
			}
			break
		}
		pt, ok := geo.ParsePoint(t)
		if !ok {
			return nil, fmt.Errorf("query: %s: $nearSphere center invalid", path)
		}
		center = pt
	default:
		pt, ok := geo.ParsePoint(operand)
		if !ok {
			return nil, fmt.Errorf("query: %s: $nearSphere center invalid", path)
		}
		center = pt
	}
	if !hasMax {
		md, ok := toFloat64(maxDist)
		if !ok {
			return nil, fmt.Errorf("query: %s: $nearSphere requires $maxDistance in this engine (index-free matching cannot sort by distance)", path)
		}
		maxRad = md // legacy form: radians
	}
	if maxRad < 0 {
		return nil, fmt.Errorf("query: %s: negative $maxDistance", path)
	}
	return nearSpherePred{center: center, maxRad: maxRad}, nil
}

func parsePointList(path string, v any, minLen int) ([]geo.Point, error) {
	arr, ok := v.([]any)
	if !ok || len(arr) < minLen {
		return nil, fmt.Errorf("query: %s: expected at least %d points", path, minLen)
	}
	pts := make([]geo.Point, 0, len(arr))
	for i, e := range arr {
		pt, ok := geo.ParsePoint(e)
		if !ok {
			return nil, fmt.Errorf("query: %s: point %d invalid", path, i)
		}
		pts = append(pts, pt)
	}
	return pts, nil
}

func compileRegex(pattern any, options any) (*regexp.Regexp, error) {
	pat, ok := pattern.(string)
	if !ok {
		return nil, fmt.Errorf("$regex expects a string pattern")
	}
	flags := ""
	if options != nil {
		opts, ok := options.(string)
		if !ok {
			return nil, fmt.Errorf("$options expects a string")
		}
		for _, r := range opts {
			switch r {
			case 'i', 'm', 's':
				flags += string(r)
			case 'x':
				// extended mode unsupported by RE2; ignore whitespace flag
			default:
				return nil, fmt.Errorf("unsupported $options flag %q", string(r))
			}
		}
	}
	if flags != "" {
		pat = "(?" + flags + ")" + pat
	}
	re, err := regexp.Compile(pat)
	if err != nil {
		return nil, fmt.Errorf("$regex: %w", err)
	}
	return re, nil
}

func validatePath(path string) error {
	if path == "" {
		return fmt.Errorf("query: empty field path")
	}
	for _, seg := range strings.Split(path, ".") {
		if seg == "" {
			return fmt.Errorf("query: field path %q has an empty segment", path)
		}
	}
	return nil
}

func toInt64(v any) (int64, bool) {
	switch t := v.(type) {
	case int64:
		return t, true
	case float64:
		return int64(t), t == float64(int64(t))
	default:
		return 0, false
	}
}

func toFloat64(v any) (float64, bool) {
	switch t := v.(type) {
	case int64:
		return float64(t), true
	case float64:
		return t, true
	default:
		return 0, false
	}
}

func sortedKeys(m map[string]any) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	// Insertion-order independence: deterministic parse order makes parse
	// errors and predicate order stable.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}
