package query

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"

	"invalidb/internal/document"
)

// SortKey is one component of an ORDER BY clause.
type SortKey struct {
	Path string `json:"path"`
	Desc bool   `json:"desc,omitempty"`
}

// Query is a parsed, executable collection query: filter, optional ordering,
// limit/offset window, and projection. The zero Limit means "no limit".
//
// A Query is immutable after Parse/Compile and safe for concurrent use.
type Query struct {
	Collection string
	Filter     Filter
	Sort       []SortKey
	Limit      int
	Offset     int
	Projection []string

	raw  map[string]any // normalized source filter, for hashing & transport
	hash uint64
}

// Spec is the wire representation of a query, symmetric with MongoDB's find
// command: a filter document plus query modifiers.
type Spec struct {
	Collection string         `json:"collection"`
	Filter     map[string]any `json:"filter,omitempty"`
	Sort       []SortKey      `json:"sort,omitempty"`
	Limit      int            `json:"limit,omitempty"`
	Offset     int            `json:"offset,omitempty"`
	Projection []string       `json:"projection,omitempty"`
}

// Compile validates a Spec and produces an executable Query.
func Compile(spec Spec) (*Query, error) {
	if spec.Collection == "" {
		return nil, fmt.Errorf("query: empty collection name")
	}
	if spec.Limit < 0 {
		return nil, fmt.Errorf("query: negative limit %d", spec.Limit)
	}
	if spec.Offset < 0 {
		return nil, fmt.Errorf("query: negative offset %d", spec.Offset)
	}
	raw := spec.Filter
	if raw == nil {
		raw = map[string]any{}
	}
	raw = normalizeMap(raw)
	f, err := ParseFilter(raw)
	if err != nil {
		return nil, err
	}
	for _, sk := range spec.Sort {
		if err := validatePath(sk.Path); err != nil {
			return nil, fmt.Errorf("query: sort key: %w", err)
		}
	}
	q := &Query{
		Collection: spec.Collection,
		Filter:     f,
		Sort:       append([]SortKey(nil), spec.Sort...),
		Limit:      spec.Limit,
		Offset:     spec.Offset,
		Projection: append([]string(nil), spec.Projection...),
		raw:        raw,
	}
	q.hash = document.Hash64(q.canonical())
	return q, nil
}

// MustCompile is Compile for tests and examples with known-good specs.
func MustCompile(spec Spec) *Query {
	q, err := Compile(spec)
	if err != nil {
		panic(err)
	}
	return q
}

// ParseJSON decodes a Spec from JSON and compiles it.
func ParseJSON(data []byte) (*Query, error) {
	var spec Spec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("query: decode: %w", err)
	}
	return Compile(spec)
}

// Spec returns the wire representation of the query.
func (q *Query) Spec() Spec {
	return Spec{
		Collection: q.Collection,
		Filter:     q.raw,
		Sort:       append([]SortKey(nil), q.Sort...),
		Limit:      q.Limit,
		Offset:     q.Offset,
		Projection: append([]string(nil), q.Projection...),
	}
}

// EncodeJSON renders the query's Spec for transport.
func (q *Query) EncodeJSON() []byte {
	b, err := json.Marshal(q.Spec())
	if err != nil {
		// Spec is built from JSON-decodable values only.
		panic(fmt.Sprintf("query: encode: %v", err))
	}
	return b
}

// canonical returns the value whose canonical encoding identifies the query.
// Distinct subscriptions to the same query hash identically, which is what
// routes them to the same query partition (paper §5.1).
func (q *Query) canonical() map[string]any {
	sort := make([]any, 0, len(q.Sort))
	for _, sk := range q.Sort {
		sort = append(sort, map[string]any{"path": sk.Path, "desc": sk.Desc})
	}
	proj := make([]any, 0, len(q.Projection))
	for _, p := range q.Projection {
		proj = append(proj, p)
	}
	return map[string]any{
		"collection": q.Collection,
		"filter":     q.raw,
		"sort":       sort,
		"limit":      int64(q.Limit),
		"offset":     int64(q.Offset),
		"projection": proj,
	}
}

// Hash returns the stable 64-bit identity hash of the query used for query
// partitioning.
func (q *Query) Hash() uint64 { return q.hash }

// ID returns a printable query identifier derived from the hash.
func (q *Query) ID() string { return fmt.Sprintf("q%016x", q.hash) }

// Match reports whether a document satisfies the query's filter. Window
// clauses (sort/limit/offset) are not considered; they are applied by result
// assembly (pull-based engine) or the sorting stage (real-time engine).
func (q *Query) Match(d document.Document) bool { return q.Filter.Match(d) }

// Ordered reports whether maintaining this query requires the sorting stage:
// any explicit sort, limit or offset makes result membership positional
// (paper §5.2).
func (q *Query) Ordered() bool {
	return len(q.Sort) > 0 || q.Limit > 0 || q.Offset > 0
}

// Compare orders two documents by the query's sort keys with MongoDB
// comparison semantics, using the primary key as an unambiguous final
// tiebreaker so the real-time and pull-based engines agree on a total order
// (paper §5.2, footnote 4).
func (q *Query) Compare(a, b document.Document) int {
	for _, sk := range q.Sort {
		c := document.Compare(document.Get(a, sk.Path), document.Get(b, sk.Path))
		if sk.Desc {
			c = -c
		}
		if c != 0 {
			return c
		}
	}
	ida, _ := a.ID()
	idb, _ := b.ID()
	switch {
	case ida < idb:
		return -1
	case ida > idb:
		return 1
	default:
		return 0
	}
}

// Project applies the query's projection to a document (identity when the
// query has no projection).
func (q *Query) Project(d document.Document) document.Document {
	if len(q.Projection) == 0 {
		return d
	}
	return document.Project(d, q.Projection, true)
}

// Rewritten returns the bootstrap form of a sorted query as registered with
// InvaliDB (paper §5.2): the offset clause is removed and the limit is
// extended by the original offset plus the given slack, so the initial
// result contains the offset items, the visible result, and slack items
// beyond the limit. Unsorted queries are returned unchanged.
func (q *Query) Rewritten(slack int) *Query {
	if !q.Ordered() || (q.Offset == 0 && q.Limit == 0) {
		return q
	}
	limit := 0
	if q.Limit > 0 {
		limit = q.Offset + q.Limit + slack
	}
	r := *q
	r.Offset = 0
	r.Limit = limit
	// The rewritten query keeps the original's identity: it is the same
	// subscription, fetched with wider bounds.
	return &r
}

// EqualityPaths extracts the top-level exact-equality conditions of the
// filter ({path: scalar} or {path: {$eq: scalar}}). Storage engines use these
// as index hints: any document matching the query must carry exactly these
// values at these paths.
func (q *Query) EqualityPaths() map[string]any {
	out := map[string]any{}
	for path, v := range q.raw {
		if strings.HasPrefix(path, "$") {
			continue
		}
		switch t := v.(type) {
		case map[string]any:
			if eq, ok := t["$eq"]; ok && len(t) == 1 && !isContainer(eq) {
				out[path] = eq
			}
		default:
			if !isContainer(v) {
				out[path] = v
			}
		}
	}
	return out
}

func isContainer(v any) bool {
	switch v.(type) {
	case map[string]any, []any:
		return true
	default:
		return false
	}
}

// Interval is a numeric constraint a query imposes on one field: every
// matching document's value at Path lies within [Lo, Hi] (bounds optional,
// inclusive per flag). Matching layers use it as a multi-query index key: a
// written value outside the interval can only affect the query if the
// record was previously in its result.
type Interval struct {
	Path   string
	Lo, Hi float64
	LoSet  bool
	HiSet  bool
	LoInc  bool
	HiInc  bool
}

// Contains reports whether a numeric value satisfies the interval.
func (iv Interval) Contains(v float64) bool {
	if iv.LoSet {
		if iv.LoInc {
			if v < iv.Lo {
				return false
			}
		} else if v <= iv.Lo {
			return false
		}
	}
	if iv.HiSet {
		if iv.HiInc {
			if v > iv.Hi {
				return false
			}
		} else if v >= iv.Hi {
			return false
		}
	}
	return true
}

// IndexInterval extracts a numeric interval constraint from the query's
// top-level filter, if one exists: a {path: {$gte/$gt/$lte/$lt/$eq: number}}
// condition (or a bare numeric equality). The constraint is necessary, not
// sufficient — candidates still run the full filter. The second return is
// false when no such constraint can be derived (the query is then
// unindexable and must be evaluated against every write).
func (q *Query) IndexInterval() (Interval, bool) {
	for path, v := range q.raw {
		if strings.HasPrefix(path, "$") {
			continue
		}
		switch t := v.(type) {
		case map[string]any:
			iv := Interval{Path: path}
			usable := false
			for op, operand := range t {
				n, isNum := numericOperand(operand)
				if !isNum {
					continue
				}
				switch op {
				case "$eq":
					iv.Lo, iv.Hi, iv.LoSet, iv.HiSet, iv.LoInc, iv.HiInc = n, n, true, true, true, true
					usable = true
				case "$gte":
					if !iv.LoSet || n > iv.Lo {
						iv.Lo, iv.LoSet, iv.LoInc = n, true, true
					}
					usable = true
				case "$gt":
					if !iv.LoSet || n >= iv.Lo {
						iv.Lo, iv.LoSet, iv.LoInc = n, true, false
					}
					usable = true
				case "$lte":
					if !iv.HiSet || n < iv.Hi {
						iv.Hi, iv.HiSet, iv.HiInc = n, true, true
					}
					usable = true
				case "$lt":
					if !iv.HiSet || n <= iv.Hi {
						iv.Hi, iv.HiSet, iv.HiInc = n, true, false
					}
					usable = true
				}
			}
			if usable {
				return iv, true
			}
		default:
			if n, ok := numericOperand(v); ok {
				return Interval{Path: path, Lo: n, Hi: n, LoSet: true, HiSet: true, LoInc: true, HiInc: true}, true
			}
		}
	}
	return Interval{}, false
}

func numericOperand(v any) (float64, bool) {
	switch t := v.(type) {
	case int64:
		return float64(t), true
	case float64:
		return t, true
	default:
		return 0, false
	}
}

// String renders a compact, SQL-flavoured description for logs.
func (q *Query) String() string {
	s := fmt.Sprintf("FROM %s WHERE %s", q.Collection, document.MarshalCanonical(q.raw))
	for i, sk := range q.Sort {
		if i == 0 {
			s += " ORDER BY "
		} else {
			s += ", "
		}
		s += sk.Path
		if sk.Desc {
			s += " DESC"
		}
	}
	if q.Offset > 0 {
		s += fmt.Sprintf(" OFFSET %d", q.Offset)
	}
	if q.Limit > 0 {
		s += fmt.Sprintf(" LIMIT %d", q.Limit)
	}
	return s
}
