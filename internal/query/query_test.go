package query

import (
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"invalidb/internal/document"
)

func TestParseFilterErrors(t *testing.T) {
	bad := []map[string]any{
		{"$bogus": 1},
		{"a": map[string]any{"$bogus": 1}},
		{"$and": []any{}},
		{"$or": "not an array"},
		{"$or": []any{"not a doc"}},
		{"a": map[string]any{"$mod": []any{1}}},
		{"a": map[string]any{"$mod": []any{0, 0}}},
		{"a": map[string]any{"$mod": []any{"x", 0}}},
		{"a": map[string]any{"$in": 5}},
		{"a": map[string]any{"$exists": "yes"}},
		{"a": map[string]any{"$size": -1}},
		{"a": map[string]any{"$size": 1.5}},
		{"a": map[string]any{"$regex": 7}},
		{"a": map[string]any{"$regex": "("}},
		{"a": map[string]any{"$regex": "x", "$options": "q"}},
		{"a": map[string]any{"$options": "i"}},
		{"a": map[string]any{"$type": "binary"}},
		{"a": map[string]any{"$type": 2}},
		{"a": map[string]any{"$not": 5}},
		{"a": map[string]any{"$elemMatch": 5}},
		{"a": map[string]any{"$all": 5}},
		{"": 1},
		{"a..b": 1},
		{"$text": map[string]any{}},
		{"$text": map[string]any{"$search": 5}},
		{"$text": map[string]any{"$search": "  "}},
		{"a": map[string]any{"$geoWithin": map[string]any{"$sphere": 1}}},
		{"a": map[string]any{"$geoWithin": map[string]any{"$box": []any{[]any{0.0, 0.0}}}}},
		{"a": map[string]any{"$geoWithin": map[string]any{"$centerSphere": []any{[]any{0.0, 0.0}, -1.0}}}},
		{"a": map[string]any{"$geoWithin": map[string]any{"$polygon": []any{[]any{0.0, 0.0}, []any{1.0, 1.0}}}}},
		{"a": map[string]any{"$nearSphere": []any{0.0, 0.0}}}, // no $maxDistance
		{"a": map[string]any{"$nearSphere": "x", "$maxDistance": 1.0}},
		{"a": map[string]any{"$maxDistance": 1.0}},
	}
	for i, raw := range bad {
		if _, err := ParseFilter(raw); err == nil {
			t.Errorf("case %d: invalid filter accepted: %v", i, raw)
		}
	}
}

func TestParseFilterIgnoresComment(t *testing.T) {
	f, err := ParseFilter(map[string]any{"a": 1, "$comment": "why"})
	if err != nil {
		t.Fatal(err)
	}
	if !f.Match(doc("a", 1)) {
		t.Fatal("$comment broke the filter")
	}
}

func TestCompileValidation(t *testing.T) {
	if _, err := Compile(Spec{}); err == nil {
		t.Error("empty collection accepted")
	}
	if _, err := Compile(Spec{Collection: "c", Limit: -1}); err == nil {
		t.Error("negative limit accepted")
	}
	if _, err := Compile(Spec{Collection: "c", Offset: -2}); err == nil {
		t.Error("negative offset accepted")
	}
	if _, err := Compile(Spec{Collection: "c", Sort: []SortKey{{Path: ""}}}); err == nil {
		t.Error("empty sort path accepted")
	}
	if _, err := Compile(Spec{Collection: "c", Filter: map[string]any{"$nope": 1}}); err == nil {
		t.Error("bad filter accepted")
	}
}

func TestQueryHashIdentity(t *testing.T) {
	mk := func() *Query {
		return MustCompile(Spec{
			Collection: "articles",
			Filter:     map[string]any{"year": map[string]any{"$gte": 2017}},
			Sort:       []SortKey{{Path: "year", Desc: true}},
			Limit:      3,
			Offset:     2,
		})
	}
	a, b := mk(), mk()
	if a.Hash() != b.Hash() {
		t.Fatal("identical queries hash differently")
	}
	if a.ID() != b.ID() {
		t.Fatal("identical queries get different IDs")
	}
	c := MustCompile(Spec{Collection: "articles", Filter: map[string]any{"year": map[string]any{"$gte": 2018}}})
	if a.Hash() == c.Hash() {
		t.Fatal("distinct queries hash equal")
	}
	// Same filter, different window: different query identity.
	d := MustCompile(Spec{
		Collection: "articles",
		Filter:     map[string]any{"year": map[string]any{"$gte": 2017}},
		Sort:       []SortKey{{Path: "year", Desc: true}},
		Limit:      4,
		Offset:     2,
	})
	if a.Hash() == d.Hash() {
		t.Fatal("window change did not change identity")
	}
}

func TestQueryHashInsensitiveToFilterKeyOrder(t *testing.T) {
	a := MustCompile(Spec{Collection: "c", Filter: map[string]any{"x": 1, "y": 2}})
	b := MustCompile(Spec{Collection: "c", Filter: map[string]any{"y": 2, "x": 1}})
	if a.Hash() != b.Hash() {
		t.Fatal("filter key order changed query identity")
	}
}

func TestQueryJSONRoundTrip(t *testing.T) {
	q := MustCompile(Spec{
		Collection: "articles",
		Filter:     map[string]any{"year": map[string]any{"$gte": int64(2017)}, "title": map[string]any{"$regex": "^DB"}},
		Sort:       []SortKey{{Path: "year", Desc: true}, {Path: "title"}},
		Limit:      3,
		Offset:     2,
		Projection: []string{"title", "year"},
	})
	q2, err := ParseJSON(q.EncodeJSON())
	if err != nil {
		t.Fatal(err)
	}
	if q2.Hash() != q.Hash() {
		t.Fatal("round trip changed query identity")
	}
	if q2.Collection != "articles" || q2.Limit != 3 || q2.Offset != 2 || len(q2.Sort) != 2 || len(q2.Projection) != 2 {
		t.Fatalf("round trip mangled spec: %+v", q2.Spec())
	}
	d := doc("_id", "1", "title", "DB Fun", "year", 2018)
	if !q2.Match(d) {
		t.Fatal("decoded query does not match")
	}
}

func TestQueryOrdered(t *testing.T) {
	if MustCompile(Spec{Collection: "c"}).Ordered() {
		t.Error("plain filter query should not need the sorting stage")
	}
	if !MustCompile(Spec{Collection: "c", Sort: []SortKey{{Path: "x"}}}).Ordered() {
		t.Error("sorted query must need the sorting stage")
	}
	if !MustCompile(Spec{Collection: "c", Limit: 5}).Ordered() {
		t.Error("limit query must need the sorting stage")
	}
	if !MustCompile(Spec{Collection: "c", Offset: 5}).Ordered() {
		t.Error("offset query must need the sorting stage")
	}
}

func TestQueryCompare(t *testing.T) {
	q := MustCompile(Spec{
		Collection: "articles",
		Sort:       []SortKey{{Path: "year", Desc: true}, {Path: "title"}},
	})
	a := doc("_id", "1", "year", 2018, "title", "B")
	b := doc("_id", "2", "year", 2018, "title", "A")
	c := doc("_id", "3", "year", 2017, "title", "A")
	if q.Compare(a, b) != 1 {
		t.Error("secondary ascending key not applied")
	}
	if q.Compare(a, c) != -1 {
		t.Error("primary descending key not applied")
	}
	// Identical sort keys: primary key breaks the tie deterministically.
	d1 := doc("_id", "1", "year", 2018, "title", "A")
	d2 := doc("_id", "2", "year", 2018, "title", "A")
	if q.Compare(d1, d2) != -1 || q.Compare(d2, d1) != 1 {
		t.Error("primary-key tiebreaker broken")
	}
	if q.Compare(d1, d1) != 0 {
		t.Error("Compare not reflexive")
	}
}

func TestQueryCompareMissingFieldsSortFirst(t *testing.T) {
	q := MustCompile(Spec{Collection: "c", Sort: []SortKey{{Path: "year"}}})
	with := doc("_id", "a", "year", 2000)
	without := doc("_id", "b")
	if q.Compare(without, with) != -1 {
		t.Fatal("missing sort key should sort before present values (ascending)")
	}
}

// TestFigure3Scenario reproduces the paper's Figure 3: a sorted query with
// OFFSET 2 LIMIT 3 over articles ordered by year DESC.
func TestFigure3Scenario(t *testing.T) {
	q := MustCompile(Spec{
		Collection: "articles",
		Sort:       []SortKey{{Path: "year", Desc: true}},
		Offset:     2,
		Limit:      3,
	})
	articles := []document.Document{
		doc("_id", "5", "title", "DB Fun", "year", 2018),
		doc("_id", "8", "title", "No SQL!", "year", 2018),
		doc("_id", "3", "title", "BaaS For Dummies", "year", 2017),
		doc("_id", "4", "title", "Query Languages", "year", 2017),
		doc("_id", "7", "title", "Streams in Action", "year", 2016),
		doc("_id", "9", "title", "SaaS For Dummies", "year", 2016),
	}
	sorted := append([]document.Document(nil), articles...)
	sort.SliceStable(sorted, func(i, j int) bool { return q.Compare(sorted[i], sorted[j]) < 0 })
	var ids []string
	for _, d := range sorted {
		id, _ := d.ID()
		ids = append(ids, id)
	}
	// year DESC, then _id ascending within equal years.
	want := "3,4,5,7,8,9" // computed below instead; check full order explicitly
	_ = want
	got := strings.Join(ids, ",")
	if got != "5,8,3,4,7,9" {
		t.Fatalf("sorted order = %s, want 5,8,3,4,7,9 (year DESC, _id tiebreak)", got)
	}
	// The visible window (offset 2, limit 3) is articles 3, 4, 7.
	window := sorted[q.Offset : q.Offset+q.Limit]
	var winIDs []string
	for _, d := range window {
		id, _ := d.ID()
		winIDs = append(winIDs, id)
	}
	if strings.Join(winIDs, ",") != "3,4,7" {
		t.Fatalf("visible window = %v, want [3 4 7]", winIDs)
	}
}

func TestRewritten(t *testing.T) {
	q := MustCompile(Spec{
		Collection: "articles",
		Sort:       []SortKey{{Path: "year", Desc: true}},
		Offset:     2,
		Limit:      3,
	})
	r := q.Rewritten(4)
	if r.Offset != 0 {
		t.Errorf("rewritten offset = %d, want 0", r.Offset)
	}
	if r.Limit != 2+3+4 {
		t.Errorf("rewritten limit = %d, want 9", r.Limit)
	}
	if r.Hash() != q.Hash() {
		t.Error("rewriting must preserve query identity")
	}
	if q.Offset != 2 || q.Limit != 3 {
		t.Error("Rewritten mutated the original query")
	}
}

func TestRewrittenUnsortedIsIdentity(t *testing.T) {
	q := MustCompile(Spec{Collection: "c", Filter: map[string]any{"a": 1}})
	if q.Rewritten(10) != q {
		t.Fatal("unsorted query should not be rewritten")
	}
}

func TestRewrittenUnlimitedKeepsNoLimit(t *testing.T) {
	q := MustCompile(Spec{Collection: "c", Sort: []SortKey{{Path: "x"}}, Offset: 5})
	r := q.Rewritten(3)
	if r.Limit != 0 || r.Offset != 0 {
		t.Fatalf("offset-only rewrite = limit %d offset %d, want unbounded", r.Limit, r.Offset)
	}
}

func TestQueryProject(t *testing.T) {
	q := MustCompile(Spec{Collection: "c", Projection: []string{"title"}})
	d := doc("_id", "1", "title", "T", "secret", "s")
	p := q.Project(d)
	if p["title"] != "T" || p["_id"] != "1" {
		t.Fatal("projection lost selected fields")
	}
	if _, ok := p["secret"]; ok {
		t.Fatal("projection leaked a field")
	}
	noProj := MustCompile(Spec{Collection: "c"})
	if got := noProj.Project(d); len(got) != len(d) {
		t.Fatal("projection-free query should return the document unchanged")
	}
}

func TestQueryString(t *testing.T) {
	q := MustCompile(Spec{
		Collection: "articles",
		Filter:     map[string]any{"year": 2018},
		Sort:       []SortKey{{Path: "year", Desc: true}},
		Offset:     2,
		Limit:      3,
	})
	s := q.String()
	for _, want := range []string{"FROM articles", "ORDER BY year DESC", "OFFSET 2", "LIMIT 3"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}

func TestQuickCompareIsTotalOrder(t *testing.T) {
	q := MustCompile(Spec{Collection: "c", Sort: []SortKey{{Path: "n"}, {Path: "s", Desc: true}}})
	gen := func(seed int64) document.Document {
		n := seed % 7
		s := []string{"a", "b", "c"}[(seed/7)%3]
		return doc("_id", string(rune('a'+seed%26)), "n", n, "s", s)
	}
	f := func(s1, s2, s3 int64) bool {
		a, b, c := gen(abs(s1)), gen(abs(s2)), gen(abs(s3))
		if q.Compare(a, a) != 0 {
			return false
		}
		if q.Compare(a, b) != -q.Compare(b, a) {
			return false
		}
		if q.Compare(a, b) <= 0 && q.Compare(b, c) <= 0 && q.Compare(a, c) > 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func abs(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
