package query

import (
	"encoding/json"
	"testing"

	"invalidb/internal/document"
)

// FuzzMatch drives the query compiler and matcher with arbitrary filter and
// document JSON. Invariants:
//
//   - Compile rejects bad filters with an error, never a panic;
//   - Match never panics and is deterministic;
//   - a query survives the wire round-trip: recompiling q.Spec() preserves
//     the canonical hash (which routes subscriptions to grid rows) and the
//     match verdict.
func FuzzMatch(f *testing.F) {
	seeds := []struct{ filter, doc string }{
		{`{}`, `{"a":1}`},
		{`{"a":1}`, `{"a":1}`},
		{`{"a":{"$gt":0.5}}`, `{"a":1}`},
		// The paper's evaluation workload shape: random >= i AND random < j.
		{`{"random":{"$gte":10,"$lt":20}}`, `{"random":15}`},
		{`{"a":{"$in":[1,2,3]}}`, `{"a":2}`},
		{`{"$or":[{"a":1},{"b":{"$exists":true}}]}`, `{"b":null}`},
		{`{"$and":[{"a":{"$ne":3}},{"$nor":[{"b":2}]}]}`, `{"a":1,"b":1}`},
		{`{"tags":{"$elemMatch":{"$eq":"x"}}}`, `{"tags":["x","y"]}`},
		{`{"a.b.c":{"$ne":3}}`, `{"a":{"b":{"c":4}}}`},
		{`{"name":{"$regex":"^a.*b$"}}`, `{"name":"ab"}`},
		{`{"a":{"$type":"string"}}`, `{"a":"s"}`},
		{`{"a":{"$not":{"$lt":0}}}`, `{"a":[1,{"b":2},null]}`},
	}
	for _, s := range seeds {
		f.Add([]byte(s.filter), []byte(s.doc))
	}
	f.Fuzz(func(t *testing.T, filterJSON, docJSON []byte) {
		var rawFilter map[string]any
		if err := json.Unmarshal(filterJSON, &rawFilter); err != nil {
			t.Skip()
		}
		var rawDoc map[string]any
		if err := json.Unmarshal(docJSON, &rawDoc); err != nil {
			t.Skip()
		}
		q, err := Compile(Spec{Collection: "fuzz", Filter: rawFilter})
		if err != nil {
			return // rejected is fine; panicking is not
		}
		d := document.Document(rawDoc)
		m1 := q.Match(d)
		if m2 := q.Match(d); m2 != m1 {
			t.Fatalf("Match not deterministic: %v then %v", m1, m2)
		}
		q2, err := Compile(q.Spec())
		if err != nil {
			t.Fatalf("recompiling the query's own Spec failed: %v", err)
		}
		if q2.Hash() != q.Hash() {
			t.Fatalf("canonical hash not stable across Spec round-trip: %016x vs %016x", q.Hash(), q2.Hash())
		}
		if q2.Match(d) != m1 {
			t.Fatalf("round-tripped query disagrees on match: %v vs %v", q2.Match(d), m1)
		}
	})
}
