package query

import (
	"testing"

	"invalidb/internal/document"
)

// mustFilter parses a filter document or fails the test.
func mustFilter(t *testing.T, raw map[string]any) Filter {
	t.Helper()
	f, err := ParseFilter(raw)
	if err != nil {
		t.Fatalf("ParseFilter(%v): %v", raw, err)
	}
	return f
}

func doc(kv ...any) document.Document {
	d := document.Document{}
	for i := 0; i+1 < len(kv); i += 2 {
		d[kv[i].(string)] = kv[i+1]
	}
	return document.Normalize(d)
}

type matchCase struct {
	name   string
	filter map[string]any
	doc    document.Document
	want   bool
}

func runMatchCases(t *testing.T, cases []matchCase) {
	t.Helper()
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			f := mustFilter(t, c.filter)
			if got := f.Match(c.doc); got != c.want {
				t.Errorf("Match(%v, %v) = %v, want %v", c.filter, c.doc, got, c.want)
			}
		})
	}
}

func TestMatchEquality(t *testing.T) {
	runMatchCases(t, []matchCase{
		{"bare equal", map[string]any{"a": 5}, doc("a", 5), true},
		{"bare unequal", map[string]any{"a": 5}, doc("a", 6), false},
		{"numeric cross-type", map[string]any{"a": 5}, doc("a", 5.0), true},
		{"explicit $eq", map[string]any{"a": map[string]any{"$eq": "x"}}, doc("a", "x"), true},
		{"missing field", map[string]any{"a": 5}, doc("b", 5), false},
		{"null matches null", map[string]any{"a": nil}, doc("a", nil), true},
		{"null matches missing", map[string]any{"a": nil}, doc("b", 1), true},
		{"array contains", map[string]any{"tags": "db"}, doc("tags", []any{"db", "go"}), true},
		{"array itself equal", map[string]any{"tags": []any{"db", "go"}}, doc("tags", []any{"db", "go"}), true},
		{"array order matters for whole-array", map[string]any{"tags": []any{"go", "db"}}, doc("tags", []any{"db", "go"}), false},
		{"nested doc exact", map[string]any{"a": map[string]any{"b": 1}}, doc("a", map[string]any{"b": 1}), true},
		{"nested doc extra field", map[string]any{"a": map[string]any{"b": 1}}, doc("a", map[string]any{"b": 1, "c": 2}), false},
		{"dotted path", map[string]any{"a.b": 1}, doc("a", map[string]any{"b": 1, "c": 2}), true},
		{"dotted path through array", map[string]any{"a.b": 2}, doc("a", []any{map[string]any{"b": 1}, map[string]any{"b": 2}}), true},
	})
}

func TestMatchNe(t *testing.T) {
	runMatchCases(t, []matchCase{
		{"ne hit", map[string]any{"a": map[string]any{"$ne": 5}}, doc("a", 6), true},
		{"ne miss", map[string]any{"a": map[string]any{"$ne": 5}}, doc("a", 5), false},
		{"ne on missing matches", map[string]any{"a": map[string]any{"$ne": 5}}, doc("b", 1), true},
		{"ne rejects array containing", map[string]any{"a": map[string]any{"$ne": 5}}, doc("a", []any{1, 5}), false},
		{"ne null rejects missing", map[string]any{"a": map[string]any{"$ne": nil}}, doc("b", 1), false},
	})
}

func TestMatchRangeComparisons(t *testing.T) {
	runMatchCases(t, []matchCase{
		{"gt hit", map[string]any{"n": map[string]any{"$gt": 5}}, doc("n", 6), true},
		{"gt equal", map[string]any{"n": map[string]any{"$gt": 5}}, doc("n", 5), false},
		{"gte equal", map[string]any{"n": map[string]any{"$gte": 5}}, doc("n", 5), true},
		{"lt hit", map[string]any{"n": map[string]any{"$lt": 5}}, doc("n", 4.5), true},
		{"lte hit", map[string]any{"n": map[string]any{"$lte": 5}}, doc("n", 5.0), true},
		{"range conjunction", map[string]any{"n": map[string]any{"$gte": 10, "$lt": 20}}, doc("n", 15), true},
		{"range conjunction out", map[string]any{"n": map[string]any{"$gte": 10, "$lt": 20}}, doc("n", 20), false},
		{"string range", map[string]any{"s": map[string]any{"$gt": "m"}}, doc("s", "z"), true},
		{"type bracket gate: number vs string", map[string]any{"n": map[string]any{"$gt": 5}}, doc("n", "zzz"), false},
		{"type bracket gate: string vs number", map[string]any{"s": map[string]any{"$lt": "a"}}, doc("s", 1), false},
		{"gt over array elements", map[string]any{"n": map[string]any{"$gt": 5}}, doc("n", []any{1, 9}), true},
		{"gt on missing", map[string]any{"n": map[string]any{"$gt": 5}}, doc("m", 9), false},
	})
}

func TestMatchInNin(t *testing.T) {
	runMatchCases(t, []matchCase{
		{"in hit", map[string]any{"a": map[string]any{"$in": []any{1, 2, 3}}}, doc("a", 2), true},
		{"in miss", map[string]any{"a": map[string]any{"$in": []any{1, 2, 3}}}, doc("a", 4), false},
		{"in with array field", map[string]any{"a": map[string]any{"$in": []any{2}}}, doc("a", []any{1, 2}), true},
		{"in with null matches missing", map[string]any{"a": map[string]any{"$in": []any{nil}}}, doc("b", 0), true},
		{"in with regex", map[string]any{"a": map[string]any{"$in": []any{map[string]any{"$regex": "^ab"}}}}, doc("a", "abc"), true},
		{"nin hit", map[string]any{"a": map[string]any{"$nin": []any{1, 2}}}, doc("a", 3), true},
		{"nin miss", map[string]any{"a": map[string]any{"$nin": []any{1, 2}}}, doc("a", 2), false},
		{"nin on missing matches", map[string]any{"a": map[string]any{"$nin": []any{1}}}, doc("b", 1), true},
	})
}

func TestMatchLogical(t *testing.T) {
	runMatchCases(t, []matchCase{
		{"and both", map[string]any{"$and": []any{
			map[string]any{"a": 1}, map[string]any{"b": 2},
		}}, doc("a", 1, "b", 2), true},
		{"and one fails", map[string]any{"$and": []any{
			map[string]any{"a": 1}, map[string]any{"b": 3},
		}}, doc("a", 1, "b", 2), false},
		{"or second", map[string]any{"$or": []any{
			map[string]any{"a": 9}, map[string]any{"b": 2},
		}}, doc("a", 1, "b", 2), true},
		{"or none", map[string]any{"$or": []any{
			map[string]any{"a": 9}, map[string]any{"b": 9},
		}}, doc("a", 1, "b", 2), false},
		{"nor", map[string]any{"$nor": []any{
			map[string]any{"a": 9}, map[string]any{"b": 9},
		}}, doc("a", 1, "b", 2), true},
		{"nor fails", map[string]any{"$nor": []any{
			map[string]any{"a": 1},
		}}, doc("a", 1), false},
		{"implicit top-level and", map[string]any{"a": 1, "b": 2}, doc("a", 1, "b", 2), true},
		{"nested or in and", map[string]any{
			"$and": []any{
				map[string]any{"$or": []any{map[string]any{"a": 1}, map[string]any{"a": 2}}},
				map[string]any{"b": map[string]any{"$gt": 0}},
			},
		}, doc("a", 2, "b", 1), true},
		{"not operator", map[string]any{"a": map[string]any{"$not": map[string]any{"$gt": 5}}}, doc("a", 3), true},
		{"not operator miss", map[string]any{"a": map[string]any{"$not": map[string]any{"$gt": 5}}}, doc("a", 7), false},
		{"not matches missing", map[string]any{"a": map[string]any{"$not": map[string]any{"$gt": 5}}}, doc("b", 7), true},
	})
}

func TestMatchExistsTypeMod(t *testing.T) {
	runMatchCases(t, []matchCase{
		{"exists true", map[string]any{"a": map[string]any{"$exists": true}}, doc("a", nil), true},
		{"exists true miss", map[string]any{"a": map[string]any{"$exists": true}}, doc("b", 1), false},
		{"exists false", map[string]any{"a": map[string]any{"$exists": false}}, doc("b", 1), true},
		{"type number", map[string]any{"a": map[string]any{"$type": "number"}}, doc("a", 3.5), true},
		{"type int", map[string]any{"a": map[string]any{"$type": "int"}}, doc("a", 3), true},
		{"type double vs int", map[string]any{"a": map[string]any{"$type": "double"}}, doc("a", 3), false},
		{"type string", map[string]any{"a": map[string]any{"$type": "string"}}, doc("a", "x"), true},
		{"type array", map[string]any{"a": map[string]any{"$type": "array"}}, doc("a", []any{1}), true},
		{"type object", map[string]any{"a": map[string]any{"$type": "object"}}, doc("a", map[string]any{}), true},
		{"type null", map[string]any{"a": map[string]any{"$type": "null"}}, doc("a", nil), true},
		{"mod hit", map[string]any{"a": map[string]any{"$mod": []any{4, 1}}}, doc("a", 9), true},
		{"mod miss", map[string]any{"a": map[string]any{"$mod": []any{4, 0}}}, doc("a", 9), false},
		{"mod on float", map[string]any{"a": map[string]any{"$mod": []any{4, 1}}}, doc("a", 9.7), true},
	})
}

func TestMatchRegex(t *testing.T) {
	runMatchCases(t, []matchCase{
		{"regex hit", map[string]any{"s": map[string]any{"$regex": "^ba"}}, doc("s", "baqend"), true},
		{"regex miss", map[string]any{"s": map[string]any{"$regex": "^ba"}}, doc("s", "abaqend"), false},
		{"regex i option", map[string]any{"s": map[string]any{"$regex": "^ba", "$options": "i"}}, doc("s", "BAqend"), true},
		{"regex over array", map[string]any{"s": map[string]any{"$regex": "go"}}, doc("s", []any{"rust", "golang"}), true},
		{"regex on number no match", map[string]any{"s": map[string]any{"$regex": "1"}}, doc("s", 1), false},
		{"not regex", map[string]any{"s": map[string]any{"$not": "^ba"}}, doc("s", "zz"), true},
	})
}

func TestMatchArrayOperators(t *testing.T) {
	runMatchCases(t, []matchCase{
		{"size hit", map[string]any{"a": map[string]any{"$size": 2}}, doc("a", []any{1, 2}), true},
		{"size miss", map[string]any{"a": map[string]any{"$size": 2}}, doc("a", []any{1}), false},
		{"size non-array", map[string]any{"a": map[string]any{"$size": 1}}, doc("a", 5), false},
		{"all hit", map[string]any{"a": map[string]any{"$all": []any{1, 2}}}, doc("a", []any{3, 2, 1}), true},
		{"all miss", map[string]any{"a": map[string]any{"$all": []any{1, 4}}}, doc("a", []any{3, 2, 1}), false},
		{"all single scalar", map[string]any{"a": map[string]any{"$all": []any{5}}}, doc("a", 5), true},
		{"elemMatch doc", map[string]any{"a": map[string]any{"$elemMatch": map[string]any{
			"b": 1, "c": map[string]any{"$gt": 5},
		}}}, doc("a", []any{
			map[string]any{"b": 1, "c": 9},
			map[string]any{"b": 2, "c": 1},
		}), true},
		{"elemMatch needs one element with both", map[string]any{"a": map[string]any{"$elemMatch": map[string]any{
			"b": 1, "c": map[string]any{"$gt": 5},
		}}}, doc("a", []any{
			map[string]any{"b": 1, "c": 1},
			map[string]any{"b": 2, "c": 9},
		}), false},
		{"elemMatch scalar ops", map[string]any{"a": map[string]any{"$elemMatch": map[string]any{
			"$gte": 80, "$lt": 85,
		}}}, doc("a", []any{int64(70), int64(82)}), true},
		{"elemMatch scalar miss", map[string]any{"a": map[string]any{"$elemMatch": map[string]any{
			"$gte": 80, "$lt": 85,
		}}}, doc("a", []any{int64(70), int64(90)}), false},
		{"all with elemMatch", map[string]any{"a": map[string]any{"$all": []any{
			map[string]any{"$elemMatch": map[string]any{"b": 1}},
			map[string]any{"$elemMatch": map[string]any{"b": 2}},
		}}}, doc("a", []any{map[string]any{"b": 1}, map[string]any{"b": 2}}), true},
	})
}

func TestMatchText(t *testing.T) {
	article := doc("title", "NoSQL Databases in Action", "body", "Streams and queries")
	runMatchCases(t, []matchCase{
		{"single term", map[string]any{"$text": map[string]any{"$search": "nosql"}}, article, true},
		{"terms are OR", map[string]any{"$text": map[string]any{"$search": "missing streams"}}, article, true},
		{"all terms absent", map[string]any{"$text": map[string]any{"$search": "kafka flink"}}, article, false},
		{"phrase present", map[string]any{"$text": map[string]any{"$search": `"databases in action"`}}, article, true},
		{"phrase absent", map[string]any{"$text": map[string]any{"$search": `"action in databases"`}}, article, false},
		{"negation excludes", map[string]any{"$text": map[string]any{"$search": "nosql -streams"}}, article, false},
		{"negation passes", map[string]any{"$text": map[string]any{"$search": "nosql -kafka"}}, article, true},
		{"word boundary", map[string]any{"$text": map[string]any{"$search": "base"}}, article, false},
		{"case sensitive", map[string]any{"$text": map[string]any{"$search": "nosql", "$caseSensitive": true}}, article, false},
	})
}

func TestMatchGeo(t *testing.T) {
	hh := doc("name", "Hamburg", "loc", []any{9.99, 53.55})
	runMatchCases(t, []matchCase{
		{"box contains", map[string]any{"loc": map[string]any{"$geoWithin": map[string]any{
			"$box": []any{[]any{9.0, 53.0}, []any{11.0, 54.0}},
		}}}, hh, true},
		{"box excludes", map[string]any{"loc": map[string]any{"$geoWithin": map[string]any{
			"$box": []any{[]any{0.0, 0.0}, []any{1.0, 1.0}},
		}}}, hh, false},
		{"centerSphere contains", map[string]any{"loc": map[string]any{"$geoWithin": map[string]any{
			"$centerSphere": []any{[]any{10.0, 53.5}, 0.01},
		}}}, hh, true},
		{"polygon contains", map[string]any{"loc": map[string]any{"$geoWithin": map[string]any{
			"$polygon": []any{[]any{9.0, 53.0}, []any{11.0, 53.0}, []any{11.0, 54.0}, []any{9.0, 54.0}},
		}}}, hh, true},
		{"geojson polygon", map[string]any{"loc": map[string]any{"$geoWithin": map[string]any{
			"$geometry": map[string]any{"type": "Polygon", "coordinates": []any{
				[]any{[]any{9.0, 53.0}, []any{11.0, 53.0}, []any{11.0, 54.0}, []any{9.0, 54.0}, []any{9.0, 53.0}},
			}},
		}}}, hh, true},
		{"nearSphere within", map[string]any{"loc": map[string]any{
			"$nearSphere": []any{10.0, 53.5}, "$maxDistance": 0.01,
		}}, hh, true},
		{"nearSphere beyond", map[string]any{"loc": map[string]any{
			"$nearSphere": []any{20.0, 40.0}, "$maxDistance": 0.01,
		}}, hh, false},
		{"nearSphere geojson meters", map[string]any{"loc": map[string]any{
			"$nearSphere": map[string]any{
				"$geometry":    map[string]any{"type": "Point", "coordinates": []any{10.0, 53.5}},
				"$maxDistance": 50000.0,
			},
		}}, hh, true},
		{"geo on missing field", map[string]any{"nowhere": map[string]any{"$geoWithin": map[string]any{
			"$box": []any{[]any{0.0, 0.0}, []any{1.0, 1.0}},
		}}}, hh, false},
	})
}

func TestMatchEmptyFilterMatchesAll(t *testing.T) {
	f := mustFilter(t, map[string]any{})
	if !f.Match(doc("anything", 1)) {
		t.Fatal("empty filter must match everything")
	}
}

func TestPaperEvaluationQueryShape(t *testing.T) {
	// The evaluation workload's query: SELECT * FROM test WHERE random >= i AND random < j.
	f := mustFilter(t, map[string]any{"random": map[string]any{"$gte": 100, "$lt": 101}})
	if !f.Match(doc("random", 100)) {
		t.Fatal("boundary inclusive miss")
	}
	if f.Match(doc("random", 101)) {
		t.Fatal("boundary exclusive hit")
	}
	if f.Match(doc("random", 99)) {
		t.Fatal("below range hit")
	}
}
