// Package query implements the MongoDB-compatible query engine used by both
// the pull-based storage engine and InvaliDB's real-time matching layer. The
// paper (§5.3) calls this the "pluggable query engine": it owns query
// parsing, after-image interpretation, matching decisions, and result
// ordering, so that both engines produce identical output for identical
// input.
package query

import (
	"regexp"
	"strings"

	"invalidb/internal/document"
	"invalidb/internal/geo"
)

// Filter is a parsed predicate tree that can be evaluated against a document.
type Filter interface {
	// Match reports whether the document satisfies the predicate.
	Match(d document.Document) bool
}

// andFilter matches when every child matches. An empty conjunction matches
// everything (the `{}` filter).
type andFilter struct{ children []Filter }

func (f *andFilter) Match(d document.Document) bool {
	for _, c := range f.children {
		if !c.Match(d) {
			return false
		}
	}
	return true
}

// orFilter matches when at least one child matches.
type orFilter struct{ children []Filter }

func (f *orFilter) Match(d document.Document) bool {
	for _, c := range f.children {
		if c.Match(d) {
			return true
		}
	}
	return false
}

// norFilter matches when no child matches.
type norFilter struct{ children []Filter }

func (f *norFilter) Match(d document.Document) bool {
	for _, c := range f.children {
		if c.Match(d) {
			return false
		}
	}
	return true
}

// fieldFilter applies one or more predicates to a dotted field path. All
// predicates must hold ({age: {$gt: 5, $lt: 9}} is a conjunction).
type fieldFilter struct {
	path  string
	preds []predicate
}

func (f *fieldFilter) Match(d document.Document) bool {
	vals := document.Lookup(d, f.path)
	for _, p := range f.preds {
		if !p.eval(vals) {
			return false
		}
	}
	return true
}

// predicate is a single field-level operator ($eq, $gt, $regex, ...).
// eval receives the values produced by document.Lookup for the field path —
// one entry per array branch, with document.Missing marking absent branches.
type predicate interface {
	eval(vals []any) bool
}

// candidates expands lookup values with MongoDB's implicit array semantics:
// for scalar-oriented operators, an array value matches when any of its
// elements matches, and the array itself is also a candidate (so {a: [1,2]}
// can equal-match a stored [1,2]).
func candidates(vals []any) []any {
	out := make([]any, 0, len(vals))
	for _, v := range vals {
		out = append(out, v)
		if arr, ok := v.([]any); ok {
			out = append(out, arr...)
		}
	}
	return out
}

// eqPred implements $eq (and bare {field: value} equality). A null operand
// also matches missing fields, as in MongoDB.
type eqPred struct{ operand any }

func (p eqPred) eval(vals []any) bool {
	for _, v := range candidates(vals) {
		if document.IsMissing(v) {
			if p.operand == nil {
				return true
			}
			continue
		}
		if document.Equal(v, p.operand) {
			return true
		}
	}
	return false
}

// nePred implements $ne: the negation of $eq over all candidates.
type nePred struct{ operand any }

func (p nePred) eval(vals []any) bool { return !(eqPred{p.operand}).eval(vals) }

// cmpOp is the kind of range comparison.
type cmpOp uint8

const (
	opGT cmpOp = iota
	opGTE
	opLT
	opLTE
)

// cmpPred implements $gt/$gte/$lt/$lte. Range comparisons only consider
// candidates in the same type bracket as the operand (numbers never compare
// greater than strings, etc.), matching MongoDB behaviour.
type cmpPred struct {
	op      cmpOp
	operand any
}

func (p cmpPred) eval(vals []any) bool {
	for _, v := range candidates(vals) {
		if document.IsMissing(v) || !sameBracket(v, p.operand) {
			continue
		}
		c := document.Compare(v, p.operand)
		switch p.op {
		case opGT:
			if c > 0 {
				return true
			}
		case opGTE:
			if c >= 0 {
				return true
			}
		case opLT:
			if c < 0 {
				return true
			}
		case opLTE:
			if c <= 0 {
				return true
			}
		}
	}
	return false
}

func sameBracket(a, b any) bool {
	return bracketOf(a) == bracketOf(b)
}

// bracketOf mirrors document's type bracketing for range-comparison gating.
func bracketOf(v any) int {
	switch v.(type) {
	case nil:
		return 1
	case int64, float64, int, float32:
		return 2
	case string:
		return 3
	case map[string]any, document.Document:
		return 4
	case []any:
		return 5
	case bool:
		return 6
	default:
		return 7
	}
}

// inPred implements $in: any candidate equals any operand. Operands may
// include regexes (as parsed *regexp.Regexp), which match string candidates.
type inPred struct {
	operands []any
	regexes  []*regexp.Regexp
}

func (p inPred) eval(vals []any) bool {
	for _, v := range candidates(vals) {
		if document.IsMissing(v) {
			for _, o := range p.operands {
				if o == nil {
					return true
				}
			}
			continue
		}
		for _, o := range p.operands {
			if document.Equal(v, o) {
				return true
			}
		}
		if s, ok := v.(string); ok {
			for _, re := range p.regexes {
				if re.MatchString(s) {
					return true
				}
			}
		}
	}
	return false
}

// ninPred implements $nin: the negation of $in.
type ninPred struct{ in inPred }

func (p ninPred) eval(vals []any) bool { return !p.in.eval(vals) }

// existsPred implements $exists.
type existsPred struct{ want bool }

func (p existsPred) eval(vals []any) bool {
	present := false
	for _, v := range vals {
		if !document.IsMissing(v) {
			present = true
			break
		}
	}
	return present == p.want
}

// modPred implements $mod: value % divisor == remainder, integers only.
type modPred struct {
	divisor, remainder int64
}

func (p modPred) eval(vals []any) bool {
	for _, v := range candidates(vals) {
		var n int64
		switch t := v.(type) {
		case int64:
			n = t
		case float64:
			n = int64(t)
		default:
			continue
		}
		if n%p.divisor == p.remainder {
			return true
		}
	}
	return false
}

// regexPred implements $regex on string candidates.
type regexPred struct{ re *regexp.Regexp }

func (p regexPred) eval(vals []any) bool {
	for _, v := range candidates(vals) {
		if s, ok := v.(string); ok && p.re.MatchString(s) {
			return true
		}
	}
	return false
}

// sizePred implements $size: the field value is an array of exactly n
// elements. It applies to the array itself, not its elements.
type sizePred struct{ n int }

func (p sizePred) eval(vals []any) bool {
	for _, v := range vals {
		if arr, ok := v.([]any); ok && len(arr) == p.n {
			return true
		}
	}
	return false
}

// allPred implements $all: the field's array (or single value) contains every
// operand. Operands may be $elemMatch sub-filters.
type allPred struct {
	operands []any
	elems    []Filter // $elemMatch entries
}

func (p allPred) eval(vals []any) bool {
	for _, v := range vals {
		if document.IsMissing(v) {
			continue
		}
		if p.allIn(v) {
			return true
		}
	}
	return false
}

func (p allPred) allIn(v any) bool {
	arr, isArr := v.([]any)
	for _, o := range p.operands {
		found := false
		if isArr {
			for _, e := range arr {
				if document.Equal(e, o) {
					found = true
					break
				}
			}
		} else if document.Equal(v, o) {
			found = true
		}
		if !found {
			return false
		}
	}
	for _, em := range p.elems {
		if !isArr {
			return false
		}
		found := false
		for _, e := range arr {
			if matchElem(em, e) {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// elemMatchPred implements $elemMatch: any element of the array satisfies
// the embedded filter.
type elemMatchPred struct{ sub Filter }

func (p elemMatchPred) eval(vals []any) bool {
	for _, v := range vals {
		arr, ok := v.([]any)
		if !ok {
			continue
		}
		for _, e := range arr {
			if matchElem(p.sub, e) {
				return true
			}
		}
	}
	return false
}

// matchElem evaluates a filter against a single array element. Document
// elements are matched directly; scalar elements are wrapped under a
// sentinel field so operator-only $elemMatch forms ({$gt: 5}) can reuse the
// standard field machinery.
func matchElem(f Filter, e any) bool {
	if m, ok := e.(map[string]any); ok {
		if f.Match(document.Document(m)) {
			return true
		}
	}
	return f.Match(document.Document{elemSentinel: e})
}

// elemSentinel is the synthetic field name scalar $elemMatch operands are
// evaluated under. It contains a NUL byte so it cannot collide with a real
// field.
const elemSentinel = "\x00elem"

// typePred implements $type with string aliases.
type typePred struct{ name string }

func (p typePred) eval(vals []any) bool {
	for _, v := range candidates(vals) {
		if document.IsMissing(v) {
			continue
		}
		if typeNameMatches(p.name, v) {
			return true
		}
	}
	return false
}

func typeNameMatches(name string, v any) bool {
	switch name {
	case "null":
		return v == nil
	case "bool":
		_, ok := v.(bool)
		return ok
	case "int", "long":
		_, ok := v.(int64)
		return ok
	case "double":
		_, ok := v.(float64)
		return ok
	case "number":
		switch v.(type) {
		case int64, float64:
			return true
		}
		return false
	case "string":
		_, ok := v.(string)
		return ok
	case "object":
		switch v.(type) {
		case map[string]any, document.Document:
			return true
		}
		return false
	case "array":
		_, ok := v.([]any)
		return ok
	default:
		return false
	}
}

// geoWithinPred implements $geoWithin for $box, $centerSphere, $polygon and
// GeoJSON $geometry polygons.
type geoWithinPred struct{ shape geo.Shape }

func (p geoWithinPred) eval(vals []any) bool {
	for _, v := range vals {
		if pt, ok := geo.ParsePoint(v); ok {
			if p.shape.Contains(pt) {
				return true
			}
			continue
		}
		// A field holding an array of points matches when any point is inside.
		if arr, ok := v.([]any); ok {
			for _, e := range arr {
				if pt, ok := geo.ParsePoint(e); ok && p.shape.Contains(pt) {
					return true
				}
			}
		}
	}
	return false
}

// nearSpherePred implements $nearSphere with $maxDistance (radians) as a
// pure filter: distance ordering is delegated to an explicit sort in the
// pull-based engine, since real-time matching is per-record.
type nearSpherePred struct {
	center geo.Point
	maxRad float64
}

func (p nearSpherePred) eval(vals []any) bool {
	for _, v := range vals {
		if pt, ok := geo.ParsePoint(v); ok {
			if geo.DistanceRad(p.center, pt) <= p.maxRad {
				return true
			}
		}
	}
	return false
}

// notPred negates a field-level predicate ({field: {$not: {...}}}).
type notPred struct{ inner predicate }

func (p notPred) eval(vals []any) bool { return !p.inner.eval(vals) }

// multiPred bundles several predicates into one (used by $not over an
// operator document with multiple operators).
type multiPred struct{ preds []predicate }

func (p multiPred) eval(vals []any) bool {
	for _, q := range p.preds {
		if !q.eval(vals) {
			return false
		}
	}
	return true
}

// textFilter implements the top-level $text operator: case-insensitive term
// search over every string value in the document (this engine is index-free,
// so the "text index" spans all string fields). Terms are OR-ed, quoted
// phrases must all be present, and -negated terms must be absent, following
// MongoDB's $search grammar.
type textFilter struct {
	terms    []string
	phrases  []string
	negated  []string
	caseSens bool
}

func (f *textFilter) Match(d document.Document) bool {
	text := collectText(map[string]any(d))
	if !f.caseSens {
		text = strings.ToLower(text)
	}
	for _, n := range f.negated {
		if strings.Contains(text, n) {
			return false
		}
	}
	for _, ph := range f.phrases {
		if !strings.Contains(text, ph) {
			return false
		}
	}
	if len(f.terms) == 0 {
		return len(f.phrases) > 0 // phrase-only queries already passed
	}
	for _, term := range f.terms {
		if containsWord(text, term) {
			return true
		}
	}
	return false
}

func collectText(v any) string {
	var sb strings.Builder
	var walk func(any)
	walk = func(v any) {
		switch t := v.(type) {
		case string:
			sb.WriteString(t)
			sb.WriteByte(' ')
		case map[string]any:
			for _, e := range t {
				walk(e)
			}
		case document.Document:
			walk(map[string]any(t))
		case []any:
			for _, e := range t {
				walk(e)
			}
		}
	}
	walk(v)
	return sb.String()
}

func containsWord(text, word string) bool {
	idx := 0
	for {
		i := strings.Index(text[idx:], word)
		if i < 0 {
			return false
		}
		start := idx + i
		end := start + len(word)
		startOK := start == 0 || isWordBoundary(text[start-1])
		endOK := end == len(text) || isWordBoundary(text[end])
		if startOK && endOK {
			return true
		}
		idx = start + 1
	}
}

func isWordBoundary(b byte) bool {
	return !(b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || b >= '0' && b <= '9')
}

// matchAll is the empty filter.
type matchAll struct{}

func (matchAll) Match(document.Document) bool { return true }
