package storage

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"invalidb/internal/document"
	"invalidb/internal/metrics"
)

func TestOplogRecordsAllWrites(t *testing.T) {
	db := newDB()
	c := db.C("c")
	_, _ = c.Insert(document.Document{"_id": "1", "n": 1})
	_, _ = c.FindAndModify("1", map[string]any{"$inc": map[string]any{"n": 1}}, false)
	_, _ = c.Delete("1")

	tailer := db.Oplog().Tail(0)
	defer tailer.Close()
	var ops []document.Op
	for i := 0; i < 3; i++ {
		ai, err := tailer.Next()
		if err != nil {
			t.Fatal(err)
		}
		ops = append(ops, ai.Op)
	}
	want := []document.Op{document.OpInsert, document.OpUpdate, document.OpDelete}
	for i := range want {
		if ops[i] != want[i] {
			t.Fatalf("ops = %v, want %v", ops, want)
		}
	}
}

func TestOplogTailBlocksUntilWrite(t *testing.T) {
	db := newDB()
	tailer := db.Oplog().Tail(db.Oplog().LastSeq())
	defer tailer.Close()
	got := make(chan *document.AfterImage, 1)
	go func() {
		ai, _ := tailer.Next()
		got <- ai
	}()
	select {
	case <-got:
		t.Fatal("Next returned before any write")
	case <-time.After(20 * time.Millisecond):
	}
	_, _ = db.C("c").Insert(document.Document{"_id": "x"})
	select {
	case ai := <-got:
		if ai == nil || ai.Key != "x" {
			t.Fatalf("tailer delivered %+v", ai)
		}
	case <-time.After(time.Second):
		t.Fatal("tailer did not wake on write")
	}
}

func TestOplogLaggedTailer(t *testing.T) {
	db := Open(Options{Shards: 1, OplogCapacity: 8})
	c := db.C("c")
	tailer := db.Oplog().Tail(0)
	defer tailer.Close()
	for i := 0; i < 20; i++ {
		_, _ = c.Insert(document.Document{"_id": fmt.Sprint(i)})
	}
	_, err := tailer.Next()
	if !errors.Is(err, ErrTailerLagged) {
		t.Fatalf("err = %v, want ErrTailerLagged", err)
	}
}

func TestOplogTryNext(t *testing.T) {
	db := newDB()
	tailer := db.Oplog().Tail(0)
	defer tailer.Close()
	if _, ok, err := tailer.TryNext(); ok || err != nil {
		t.Fatalf("TryNext on empty log: ok=%v err=%v", ok, err)
	}
	_, _ = db.C("c").Insert(document.Document{"_id": "1"})
	ai, ok, err := tailer.TryNext()
	if !ok || err != nil || ai.Key != "1" {
		t.Fatalf("TryNext after write: %+v ok=%v err=%v", ai, ok, err)
	}
}

func TestOplogCloseUnblocksNext(t *testing.T) {
	db := newDB()
	tailer := db.Oplog().Tail(0)
	done := make(chan struct{})
	go func() {
		ai, err := tailer.Next()
		if ai != nil || err != nil {
			t.Errorf("closed tailer returned %v, %v", ai, err)
		}
		close(done)
	}()
	time.Sleep(10 * time.Millisecond)
	tailer.Close()
	tailer.Close() // idempotent
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Close did not unblock Next")
	}
}

func TestOplogStartMidStream(t *testing.T) {
	db := newDB()
	c := db.C("c")
	for i := 0; i < 5; i++ {
		_, _ = c.Insert(document.Document{"_id": fmt.Sprint(i)})
	}
	mark := db.Oplog().LastSeq()
	_, _ = c.Insert(document.Document{"_id": "after"})
	tailer := db.Oplog().Tail(mark)
	defer tailer.Close()
	ai, err := tailer.Next()
	if err != nil || ai.Key != "after" {
		t.Fatalf("mid-stream tail delivered %+v, %v", ai, err)
	}
}

func TestOplogTailerLagMetrics(t *testing.T) {
	db := newDB()
	c := db.C("c")
	for i := 0; i < 5; i++ {
		_, _ = c.Insert(document.Document{"_id": fmt.Sprint(i)})
	}
	if lag := db.Oplog().MaxTailerLag(); lag != 0 {
		t.Fatalf("lag with no tailers = %d", lag)
	}

	behind := db.Oplog().Tail(0) // has all 5 entries pending
	defer behind.Close()
	caughtUp := db.Oplog().Tail(db.Oplog().LastSeq())
	defer caughtUp.Close()
	if n := db.Oplog().Tailers(); n != 2 {
		t.Fatalf("Tailers = %d", n)
	}
	if lag := db.Oplog().MaxTailerLag(); lag != 5 {
		t.Fatalf("lag = %d, want 5", lag)
	}

	// Consuming two entries shrinks the lag.
	for i := 0; i < 2; i++ {
		if _, err := behind.Next(); err != nil {
			t.Fatal(err)
		}
	}
	if lag := db.Oplog().MaxTailerLag(); lag != 3 {
		t.Fatalf("lag after consuming = %d, want 3", lag)
	}

	r := metrics.NewRegistry()
	db.RegisterMetrics(r)
	snap := r.Snapshot()
	if snap.Gauges["storage.oplog.max_lag"] != 3 {
		t.Fatalf("gauges = %v", snap.Gauges)
	}
	if snap.Gauges["storage.oplog.last_seq"] != 5 {
		t.Fatalf("last_seq gauge = %v", snap.Gauges["storage.oplog.last_seq"])
	}
}
