package storage

import (
	"fmt"
	"sync"
	"testing"

	"invalidb/internal/document"
	"invalidb/internal/query"
)

func cursorTestDB(t *testing.T, n int) (*DB, *Collection) {
	t.Helper()
	db := Open(Options{Shards: 4, OplogCapacity: 4096})
	c := db.C("items")
	for i := 0; i < n; i++ {
		_, err := c.Insert(document.Document{
			"_id": fmt.Sprintf("k%04d", i),
			"grp": int64(i % 3),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return db, c
}

func mustCompile(t *testing.T, spec query.Spec) *query.Query {
	t.Helper()
	q, err := query.Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

// TestChunkCursorCoversKeyspace: the union of all chunks equals a full
// FindEntries scan, every chunk stays within the key budget, and no key is
// delivered twice in a quiesced store.
func TestChunkCursorCoversKeyspace(t *testing.T) {
	_, c := cursorTestDB(t, 137)
	q := mustCompile(t, query.Spec{Collection: "items", Filter: map[string]any{"grp": int64(1)}})

	cur := c.NewChunkCursor(q)
	got := map[string]uint64{}
	const chunk = 16
	for {
		entries, done := cur.Next(chunk)
		if len(entries) > chunk {
			t.Fatalf("chunk returned %d entries, budget %d", len(entries), chunk)
		}
		for _, e := range entries {
			if _, dup := got[e.Key]; dup {
				t.Fatalf("key %s delivered twice", e.Key)
			}
			got[e.Key] = e.Version
		}
		if done {
			break
		}
	}

	want, err := c.FindEntries(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("cursor found %d entries, scan found %d", len(got), len(want))
	}
	for _, e := range want {
		if got[e.Key] != e.Version {
			t.Fatalf("key %s: cursor version %d, scan version %d", e.Key, got[e.Key], e.Version)
		}
	}
}

// TestChunkCursorRetryStable: retrying a chunk re-reads the same keys, and a
// write between read and retry surfaces with its newer version.
func TestChunkCursorRetryStable(t *testing.T) {
	_, c := cursorTestDB(t, 64)
	q := mustCompile(t, query.Spec{Collection: "items", Filter: map[string]any{}})

	cur := c.NewChunkCursor(q)
	first, _ := cur.Next(8)
	if len(first) == 0 {
		t.Fatal("first chunk empty")
	}
	bumped := first[0].Key
	if _, err := c.Replace(bumped, document.Document{"_id": bumped, "grp": int64(9)}); err != nil {
		t.Fatal(err)
	}
	again, _ := cur.Retry(8)
	if len(again) != len(first) {
		t.Fatalf("retry returned %d entries, original %d", len(again), len(first))
	}
	for i := range again {
		if again[i].Key != first[i].Key {
			t.Fatalf("retry key %d = %s, original %s", i, again[i].Key, first[i].Key)
		}
	}
	found := false
	for _, e := range again {
		if e.Key == bumped {
			found = true
			if e.Version <= first[0].Version {
				t.Fatalf("retried entry version %d not newer than %d", e.Version, first[0].Version)
			}
		}
	}
	if !found {
		t.Fatalf("replaced key %s missing from retried chunk", bumped)
	}
}

// TestChunkCursorSkipsDeleted: a key deleted after the shard snapshot is
// silently absent from later chunks.
func TestChunkCursorSkipsDeleted(t *testing.T) {
	_, c := cursorTestDB(t, 40)
	q := mustCompile(t, query.Spec{Collection: "items", Filter: map[string]any{}})

	cur := c.NewChunkCursor(q)
	first, done := cur.Next(5)
	if done || len(first) == 0 {
		t.Fatal("expected a first chunk with more to come")
	}
	seen := map[string]bool{}
	for _, e := range first {
		seen[e.Key] = true
	}
	// Delete one not-yet-delivered key.
	var victim string
	for i := 0; i < 40; i++ {
		k := fmt.Sprintf("k%04d", i)
		if !seen[k] {
			victim = k
			break
		}
	}
	if _, err := c.Delete(victim); err != nil {
		t.Fatal(err)
	}
	for {
		entries, done := cur.Next(5)
		for _, e := range entries {
			if e.Key == victim {
				t.Fatalf("deleted key %s delivered", victim)
			}
		}
		if done {
			break
		}
	}
}

// TestEmitWatermarkWindow: watermark sequences come from the same allocator
// as record versions, so a write racing a chunk read lands strictly inside
// the (low, high) window; the watermark reaches oplog tailers but is never
// journaled.
func TestEmitWatermarkWindow(t *testing.T) {
	db, c := cursorTestDB(t, 1)
	tail := db.Oplog().Tail(db.Oplog().LastSeq())

	low := db.EmitWatermark("bf-1.c0")
	ai, err := c.Replace("k0000", document.Document{"_id": "k0000", "grp": int64(7)})
	if err != nil {
		t.Fatal(err)
	}
	high := db.EmitWatermark("bf-1.c0")
	if !(low < ai.Version && ai.Version < high) {
		t.Fatalf("write version %d outside watermark window (%d, %d)", ai.Version, low, high)
	}

	var wms []uint64
	for i := 0; i < 3; i++ {
		got, err := tail.Next()
		if err != nil {
			t.Fatal(err)
		}
		if got.Collection == WatermarkCollection {
			if got.Key != "bf-1.c0" {
				t.Fatalf("watermark label %q", got.Key)
			}
			wms = append(wms, got.Version)
		}
	}
	if len(wms) != 2 || wms[0] != low || wms[1] != high {
		t.Fatalf("oplog watermarks %v, want [%d %d]", wms, low, high)
	}
}

// TestScanDoesNotBlockWriters: a concurrent full scan with an expensive
// predicate must not serialize writers behind the shard locks. This is a
// liveness regression test for the snapshot-then-match scan; under the old
// match-under-lock scan the writer goroutines would stall for the whole
// walk.
func TestScanDoesNotBlockWriters(t *testing.T) {
	_, c := cursorTestDB(t, 2000)
	q := mustCompile(t, query.Spec{Collection: "items", Filter: map[string]any{"grp": int64(2)}})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			key := fmt.Sprintf("k%04d", i%2000)
			_, err := c.FindAndModify(key, map[string]any{"$set": map[string]any{"touch": int64(i)}}, true)
			if err != nil {
				t.Error(err)
				return
			}
			i++
		}
	}()
	for i := 0; i < 50; i++ {
		if _, err := c.FindEntries(q); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}
