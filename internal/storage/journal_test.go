package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"invalidb/internal/document"
	"invalidb/internal/query"
)

func journalPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "wal.log")
}

func TestJournalRoundTrip(t *testing.T) {
	path := journalPath(t)
	j, err := OpenJournal(path, JournalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	db := Open(Options{})
	db.AttachJournal(j)
	c := db.C("c")
	_, _ = c.Insert(document.Document{"_id": "a", "n": 1})
	_, _ = c.FindAndModify("a", map[string]any{"$inc": map[string]any{"n": 1}}, false)
	_, _ = c.Insert(document.Document{"_id": "b", "n": 5})
	_, _ = c.Delete("b")
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if db.JournalErr() != nil {
		t.Fatal(db.JournalErr())
	}
	if j.Appended() != 4 {
		t.Fatalf("Appended = %d", j.Appended())
	}

	db2 := Open(Options{})
	applied, err := db2.Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 4 {
		t.Fatalf("recovered %d records, want 4", applied)
	}
	d, ver, ok := db2.C("c").Get("a")
	if !ok || d["n"] != int64(2) {
		t.Fatalf("recovered a = %v (ok=%v)", d, ok)
	}
	// Versions survive recovery (InvaliDB staleness depends on them).
	origDoc, origVer, _ := db.C("c").Get("a")
	if ver != origVer || !document.Equal(map[string]any(d), map[string]any(origDoc)) {
		t.Fatalf("version/doc drift: %d vs %d", ver, origVer)
	}
	if _, _, ok := db2.C("c").Get("b"); ok {
		t.Fatal("deleted record resurrected by recovery")
	}
	// New writes continue the version sequence.
	ai, err := db2.C("c").Insert(document.Document{"_id": "post", "n": 9})
	if err != nil {
		t.Fatal(err)
	}
	if ai.Version <= origVer {
		t.Fatalf("post-recovery version %d not beyond recovered max %d", ai.Version, origVer)
	}
}

func TestJournalTornTailIgnored(t *testing.T) {
	path := journalPath(t)
	j, _ := OpenJournal(path, JournalOptions{})
	db := Open(Options{})
	db.AttachJournal(j)
	for i := 0; i < 5; i++ {
		_, _ = db.C("c").Insert(document.Document{"_id": fmt.Sprint(i), "n": i})
	}
	_ = j.Close()

	// Simulate a crash mid-append: append garbage / a partial record.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	_, _ = f.Write([]byte{0, 0, 0, 50, 1, 2, 3, 4, 9, 9}) // claims 50 bytes, has 2
	_ = f.Close()

	db2 := Open(Options{})
	applied, err := db2.Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 5 {
		t.Fatalf("recovered %d records, want 5 intact", applied)
	}
	if db2.C("c").Len() != 5 {
		t.Fatalf("Len = %d", db2.C("c").Len())
	}
}

func TestJournalCorruptChecksumStopsReplay(t *testing.T) {
	path := journalPath(t)
	j, _ := OpenJournal(path, JournalOptions{})
	db := Open(Options{})
	db.AttachJournal(j)
	_, _ = db.C("c").Insert(document.Document{"_id": "a"})
	_, _ = db.C("c").Insert(document.Document{"_id": "b"})
	_ = j.Close()

	data, _ := os.ReadFile(path)
	data[len(data)-1] ^= 0xFF // flip a payload bit in the last record
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	db2 := Open(Options{})
	applied, err := db2.Recover(path)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 1 {
		t.Fatalf("recovered %d records, want 1 (corrupt tail discarded)", applied)
	}
}

func TestRecoverRequiresEmptyDB(t *testing.T) {
	path := journalPath(t)
	j, _ := OpenJournal(path, JournalOptions{})
	db := Open(Options{})
	db.AttachJournal(j)
	_, _ = db.C("c").Insert(document.Document{"_id": "a"})
	_ = j.Close()
	if _, err := db.Recover(path); err == nil {
		t.Fatal("recover into a non-empty database accepted")
	}
}

func TestJournalSyncEvery(t *testing.T) {
	path := journalPath(t)
	j, err := OpenJournal(path, JournalOptions{SyncEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	db := Open(Options{})
	db.AttachJournal(j)
	_, _ = db.C("c").Insert(document.Document{"_id": "a"})
	// With SyncEvery=1 the record is durable without Close.
	db2 := Open(Options{})
	applied, err := db2.Recover(path)
	if err != nil || applied != 1 {
		t.Fatalf("applied=%d err=%v", applied, err)
	}
	_ = j.Close()
	if err := j.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if err := j.Append(&document.AfterImage{Collection: "c", Key: "k", Version: 1, Op: document.OpInsert, Doc: document.Document{}}); err == nil {
		t.Fatal("append after close accepted")
	}
}

func TestRecoveredDatabaseServesQueries(t *testing.T) {
	path := journalPath(t)
	j, _ := OpenJournal(path, JournalOptions{})
	db := Open(Options{})
	db.AttachJournal(j)
	for i := 0; i < 20; i++ {
		_, _ = db.C("c").Insert(document.Document{"_id": fmt.Sprintf("k%02d", i), "n": i})
	}
	for i := 0; i < 5; i++ {
		_, _ = db.C("c").Delete(fmt.Sprintf("k%02d", i))
	}
	_ = j.Close()

	db2 := Open(Options{})
	if _, err := db2.Recover(path); err != nil {
		t.Fatal(err)
	}
	_ = db2.C("c").EnsureIndex("n")
	q := query.MustCompile(query.Spec{
		Collection: "c",
		Filter:     map[string]any{"n": map[string]any{"$gte": 10}},
		Sort:       []query.SortKey{{Path: "n"}},
		Limit:      3,
	})
	docs, err := db2.C("c").Find(q)
	if err != nil || len(docs) != 3 {
		t.Fatalf("find after recovery: %v %v", docs, err)
	}
	if docs[0]["n"] != int64(10) {
		t.Fatalf("first = %v", docs[0])
	}
}
