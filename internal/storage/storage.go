// Package storage implements the pull-based document database InvaliDB sits
// on top of. It stands in for the sharded MongoDB deployment of the paper's
// prototype: collections are hash-sharded by primary key, every record
// carries a strictly increasing version, writes produce fully specified
// after-images (the FindAndModify pattern from §5.4), queries execute through
// the shared pluggable query engine, and a capped oplog supports the
// log-tailing baseline.
package storage

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"invalidb/internal/document"
	"invalidb/internal/metrics"
	"invalidb/internal/query"
)

// Options configures a database instance.
type Options struct {
	// Shards is the number of hash partitions per collection. Zero selects
	// the default of 8.
	Shards int
	// OplogCapacity bounds the capped operation log. Zero selects 65536.
	OplogCapacity int
}

// DB is an in-memory, sharded document database. Attach a Journal for
// durability across restarts (see AttachJournal/Recover).
type DB struct {
	mu          sync.RWMutex
	collections map[string]*Collection
	shards      int
	seq         atomic.Uint64 // global version/oplog sequence
	oplog       *Oplog
	journal     *Journal
	journalErr  atomic.Pointer[error]
}

// Open creates an empty database.
func Open(opts Options) *DB {
	if opts.Shards <= 0 {
		opts.Shards = 8
	}
	if opts.OplogCapacity <= 0 {
		opts.OplogCapacity = 65536
	}
	return &DB{
		collections: map[string]*Collection{},
		shards:      opts.Shards,
		oplog:       newOplog(opts.OplogCapacity),
	}
}

// C returns the named collection, creating it on first access.
func (db *DB) C(name string) *Collection {
	db.mu.RLock()
	c := db.collections[name]
	db.mu.RUnlock()
	if c != nil {
		return c
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	if c = db.collections[name]; c != nil {
		return c
	}
	c = &Collection{name: name, db: db, shards: make([]*shard, db.shards)}
	for i := range c.shards {
		c.shards[i] = &shard{docs: map[string]*record{}}
	}
	db.collections[name] = c
	return c
}

// Oplog exposes the database's capped operation log.
func (db *DB) Oplog() *Oplog { return db.oplog }

// RegisterMetrics exports storage-level gauges: committed write sequence,
// open oplog tailers, and the worst tailer lag (how far the slowest
// log consumer trails the write head).
func (db *DB) RegisterMetrics(r *metrics.Registry) {
	r.Gauge("storage.seq", func() float64 { return float64(db.seq.Load()) })
	r.Gauge("storage.oplog.last_seq", func() float64 { return float64(db.oplog.LastSeq()) })
	r.Gauge("storage.oplog.tailers", func() float64 { return float64(db.oplog.Tailers()) })
	r.Gauge("storage.oplog.max_lag", func() float64 { return float64(db.oplog.MaxTailerLag()) })
	r.Gauge("storage.collections", func() float64 {
		db.mu.RLock()
		defer db.mu.RUnlock()
		return float64(len(db.collections))
	})
}

// commit records a completed write in the oplog and the attached journal.
func (db *DB) commit(ai *document.AfterImage) {
	db.oplog.append(ai)
	db.journalAppend(ai)
}

// nextSeq returns the next global sequence number. Sequence numbers double
// as record versions, so versions are strictly increasing across the whole
// database — even across delete/re-insert cycles of the same key, which is
// what InvaliDB's staleness avoidance relies on.
func (db *DB) nextSeq() uint64 { return db.seq.Add(1) }

// Collection is a hash-sharded set of documents keyed by "_id".
type Collection struct {
	name   string
	db     *DB
	shards []*shard

	idxMu   sync.RWMutex
	indexes map[string]*hashIndex
}

type shard struct {
	mu   sync.RWMutex
	docs map[string]*record
	// keyGen counts keyset changes (insert of a new key, delete). Updates in
	// place do not bump it: chunk cursors only need the key set, and caching
	// its sorted snapshot (sortedKeys, valid while sortedGen == keyGen) turns
	// repeated backfills over a stable keyspace from a sort per cursor into a
	// sort per keyset change. The cached slice is immutable once published.
	keyGen     uint64
	sortedGen  uint64
	sortedKeys []string
}

type record struct {
	doc     document.Document
	version uint64
}

// Entry is a versioned result item, the form initial results are handed to
// the InvaliDB cluster in.
type Entry struct {
	Key     string
	Version uint64
	Doc     document.Document
}

// Name returns the collection name.
func (c *Collection) Name() string { return c.name }

func (c *Collection) shardFor(key string) *shard {
	return c.shards[document.HashKey(key)%uint64(len(c.shards))]
}

// ErrDuplicateKey is returned by Insert when the primary key already exists.
var ErrDuplicateKey = fmt.Errorf("storage: duplicate key")

// ErrNotFound is returned by operations that target a missing document.
var ErrNotFound = fmt.Errorf("storage: not found")

// Insert stores a new document and returns its after-image. The document
// must carry an "_id"; it is deep-copied, so the caller keeps ownership of
// its value.
func (c *Collection) Insert(d document.Document) (*document.AfterImage, error) {
	d = document.Normalize(d)
	key, ok := d.ID()
	if !ok {
		return nil, fmt.Errorf("storage: insert into %s: document has no _id", c.name)
	}
	s := c.shardFor(key)
	s.mu.Lock()
	if _, exists := s.docs[key]; exists {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %s/%s", ErrDuplicateKey, c.name, key)
	}
	stored := d.Clone()
	ver := c.db.nextSeq()
	s.docs[key] = &record{doc: stored, version: ver}
	s.keyGen++
	c.indexAdd(key, stored)
	s.mu.Unlock()

	ai := &document.AfterImage{Collection: c.name, Key: key, Version: ver, Op: document.OpInsert, Doc: stored.Clone()}
	c.db.commit(ai)
	return ai, nil
}

// Replace overwrites an existing document wholesale and returns the
// after-image.
func (c *Collection) Replace(key string, d document.Document) (*document.AfterImage, error) {
	d = document.Normalize(d)
	if id, ok := d.ID(); ok && id != key {
		return nil, fmt.Errorf("storage: replace %s/%s: _id mismatch (%s)", c.name, key, id)
	}
	s := c.shardFor(key)
	s.mu.Lock()
	rec, exists := s.docs[key]
	if !exists {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %s/%s", ErrNotFound, c.name, key)
	}
	old := rec.doc
	stored := d.Clone()
	stored["_id"] = key
	ver := c.db.nextSeq()
	s.docs[key] = &record{doc: stored, version: ver}
	c.indexRemove(key, old)
	c.indexAdd(key, stored)
	s.mu.Unlock()

	ai := &document.AfterImage{Collection: c.name, Key: key, Version: ver, Op: document.OpUpdate, Doc: stored.Clone()}
	c.db.commit(ai)
	return ai, nil
}

// FindAndModify applies a MongoDB update document (operator form such as
// {$set: ..., $inc: ...}, or a full replacement document) to the keyed
// record and returns the after-image — the primitive the application server
// uses to feed InvaliDB (§5.4). With upsert true a missing record is created
// by applying the update to an empty document.
func (c *Collection) FindAndModify(key string, update map[string]any, upsert bool) (*document.AfterImage, error) {
	update = map[string]any(document.Normalize(document.Document(update)))
	s := c.shardFor(key)
	s.mu.Lock()
	rec, exists := s.docs[key]
	var base document.Document
	var old document.Document
	op := document.OpUpdate
	switch {
	case exists:
		base = rec.doc.Clone()
		old = rec.doc
	case upsert:
		base = document.Document{"_id": key}
		op = document.OpInsert
	default:
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %s/%s", ErrNotFound, c.name, key)
	}
	updated, err := applyUpdate(base, update)
	if err != nil {
		s.mu.Unlock()
		return nil, fmt.Errorf("storage: update %s/%s: %w", c.name, key, err)
	}
	updated["_id"] = key
	ver := c.db.nextSeq()
	s.docs[key] = &record{doc: updated, version: ver}
	if !exists {
		s.keyGen++
	}
	if old != nil {
		c.indexRemove(key, old)
	}
	c.indexAdd(key, updated)
	s.mu.Unlock()

	ai := &document.AfterImage{Collection: c.name, Key: key, Version: ver, Op: op, Doc: updated.Clone()}
	c.db.commit(ai)
	return ai, nil
}

// Delete removes a document and returns the delete after-image (a nil
// document, as the paper notes: "the after-image of a deleted entity is
// null").
func (c *Collection) Delete(key string) (*document.AfterImage, error) {
	s := c.shardFor(key)
	s.mu.Lock()
	rec, exists := s.docs[key]
	if !exists {
		s.mu.Unlock()
		return nil, fmt.Errorf("%w: %s/%s", ErrNotFound, c.name, key)
	}
	delete(s.docs, key)
	s.keyGen++
	ver := c.db.nextSeq()
	c.indexRemove(key, rec.doc)
	s.mu.Unlock()

	ai := &document.AfterImage{Collection: c.name, Key: key, Version: ver, Op: document.OpDelete}
	c.db.commit(ai)
	return ai, nil
}

// Get returns a copy of the document stored under key along with its
// version.
func (c *Collection) Get(key string) (document.Document, uint64, bool) {
	s := c.shardFor(key)
	s.mu.RLock()
	rec, ok := s.docs[key]
	if !ok {
		s.mu.RUnlock()
		return nil, 0, false
	}
	doc := rec.doc.Clone()
	ver := rec.version
	s.mu.RUnlock()
	return doc, ver, true
}

// Len returns the number of documents in the collection.
func (c *Collection) Len() int {
	n := 0
	for _, s := range c.shards {
		s.mu.RLock()
		n += len(s.docs)
		s.mu.RUnlock()
	}
	return n
}

// Find executes a query and returns the matching documents with sort, offset,
// limit and projection applied.
func (c *Collection) Find(q *query.Query) ([]document.Document, error) {
	entries, err := c.FindEntries(q)
	if err != nil {
		return nil, err
	}
	docs := make([]document.Document, len(entries))
	for i, e := range entries {
		docs[i] = e.Doc
	}
	return docs, nil
}

// FindEntries executes a query and returns versioned entries — the form the
// application server ships to InvaliDB as the initial result. Projections
// are applied to the returned documents but matching and sorting always see
// the full record.
func (c *Collection) FindEntries(q *query.Query) ([]Entry, error) {
	if q.Collection != c.name {
		return nil, fmt.Errorf("storage: query targets %q, collection is %q", q.Collection, c.name)
	}
	matched := c.scan(q)

	sortEntries(matched, q)
	if q.Offset > 0 {
		if q.Offset >= len(matched) {
			matched = nil
		} else {
			matched = matched[q.Offset:]
		}
	}
	if q.Limit > 0 && len(matched) > q.Limit {
		matched = matched[:q.Limit]
	}
	if len(q.Projection) > 0 {
		for i := range matched {
			matched[i].Doc = q.Project(matched[i].Doc)
		}
	}
	return matched, nil
}

// scanned is a point-in-time reference to a stored record. Records are
// immutable once stored (writes replace the *record pointer under the shard
// lock), so a snapshot taken under RLock can be matched and cloned after the
// lock is released without racing concurrent writers.
type scanned struct {
	key string
	rec *record
}

// snapshotShard copies the shard's (key, record) pairs under its read lock.
// Predicate evaluation deliberately happens outside: query.Match is
// unbounded, user-controlled work, and running it under the shard lock would
// let a single large scan stall every concurrent writer on the shard.
func (s *shard) snapshot(buf []scanned) []scanned {
	s.mu.RLock()
	for key, rec := range s.docs {
		buf = append(buf, scanned{key: key, rec: rec})
	}
	s.mu.RUnlock()
	return buf
}

// matchSnapshot evaluates the query against a record snapshot, lock-free.
func matchSnapshot(q *query.Query, snap []scanned, out []Entry) []Entry {
	for _, sn := range snap {
		if q.Match(sn.rec.doc) {
			out = append(out, Entry{Key: sn.key, Version: sn.rec.version, Doc: sn.rec.doc.Clone()})
		}
	}
	return out
}

// scan gathers matching entries, using a hash index when the query pins an
// indexed path to a constant, and falling back to a full collection scan.
// Both paths evaluate the predicate outside the shard locks (see snapshot).
func (c *Collection) scan(q *query.Query) []Entry {
	if keys, ok := c.indexCandidates(q); ok {
		snap := make([]scanned, 0, len(keys))
		for _, key := range keys {
			s := c.shardFor(key)
			s.mu.RLock()
			if rec, exists := s.docs[key]; exists {
				snap = append(snap, scanned{key: key, rec: rec})
			}
			s.mu.RUnlock()
		}
		return matchSnapshot(q, snap, nil)
	}
	var out []Entry
	var snap []scanned
	for _, s := range c.shards {
		snap = s.snapshot(snap[:0])
		out = matchSnapshot(q, snap, out)
	}
	return out
}

// Count returns the number of documents matching the query's filter
// (ignoring limit/offset). Like scan, the predicate runs on a lock-free
// record snapshot so counting never blocks writers.
func (c *Collection) Count(q *query.Query) (int, error) {
	if q.Collection != c.name {
		return 0, fmt.Errorf("storage: query targets %q, collection is %q", q.Collection, c.name)
	}
	n := 0
	var snap []scanned
	for _, s := range c.shards {
		snap = s.snapshot(snap[:0])
		for _, sn := range snap {
			if q.Match(sn.rec.doc) {
				n++
			}
		}
	}
	return n, nil
}

// sortEntries orders results by the query comparator. Even without an
// explicit sort, limit/offset windows need the total order the engine
// defines (primary-key ascending) so pull-based and real-time results agree.
func sortEntries(entries []Entry, q *query.Query) {
	if len(entries) < 2 {
		return
	}
	sort.Slice(entries, func(i, j int) bool { return q.Compare(entries[i].Doc, entries[j].Doc) < 0 })
}
