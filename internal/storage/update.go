package storage

import (
	"fmt"
	"strings"
	"time"

	"invalidb/internal/document"
)

// applyUpdate executes a MongoDB update document against a working copy of a
// record. Operator documents ({$set: ...}) modify fields; a document without
// any $-operators replaces the record wholesale (the _id is reinstated by the
// caller). The input document is mutated and returned.
func applyUpdate(d document.Document, update map[string]any) (document.Document, error) {
	if !hasUpdateOperator(update) {
		repl := document.Document(update).Clone()
		return repl, nil
	}
	for op, rawArgs := range update {
		args, ok := rawArgs.(map[string]any)
		if !ok {
			return nil, fmt.Errorf("%s expects a field document", op)
		}
		for path, arg := range args {
			if err := validateUpdatePath(path); err != nil {
				return nil, err
			}
			if err := applyOperator(d, op, path, arg); err != nil {
				return nil, err
			}
		}
	}
	return d, nil
}

func hasUpdateOperator(update map[string]any) bool {
	for k := range update {
		if strings.HasPrefix(k, "$") {
			return true
		}
	}
	return false
}

func validateUpdatePath(path string) error {
	if path == "" {
		return fmt.Errorf("empty update path")
	}
	if path == "_id" {
		return fmt.Errorf("cannot update _id")
	}
	for _, seg := range strings.Split(path, ".") {
		if seg == "" {
			return fmt.Errorf("update path %q has an empty segment", path)
		}
	}
	return nil
}

func applyOperator(d document.Document, op, path string, arg any) error {
	switch op {
	case "$set":
		return document.Set(d, path, arg)
	case "$unset":
		document.Unset(d, path)
		return nil
	case "$inc":
		return applyArith(d, path, arg, "$inc")
	case "$mul":
		return applyArith(d, path, arg, "$mul")
	case "$min":
		return applyMinMax(d, path, arg, true)
	case "$max":
		return applyMinMax(d, path, arg, false)
	case "$push":
		return applyPush(d, path, arg)
	case "$addToSet":
		return applyAddToSet(d, path, arg)
	case "$pull":
		return applyPull(d, path, arg)
	case "$pop":
		return applyPop(d, path, arg)
	case "$rename":
		return applyRename(d, path, arg)
	case "$currentDate":
		return document.Set(d, path, time.Now().UTC().Format(time.RFC3339Nano))
	default:
		return fmt.Errorf("unsupported update operator %q", op)
	}
}

func applyArith(d document.Document, path string, arg any, op string) error {
	switch arg.(type) {
	case int64, float64:
	default:
		return fmt.Errorf("%s operand for %q is not a number", op, path)
	}
	cur := document.Get(d, path)
	if document.IsMissing(cur) {
		if op == "$mul" {
			return document.Set(d, path, int64(0))
		}
		return document.Set(d, path, arg)
	}
	switch c := cur.(type) {
	case int64:
		switch a := arg.(type) {
		case int64:
			if op == "$inc" {
				return document.Set(d, path, c+a)
			}
			return document.Set(d, path, c*a)
		case float64:
			if op == "$inc" {
				return document.Set(d, path, float64(c)+a)
			}
			return document.Set(d, path, float64(c)*a)
		}
	case float64:
		switch a := arg.(type) {
		case int64:
			if op == "$inc" {
				return document.Set(d, path, c+float64(a))
			}
			return document.Set(d, path, c*float64(a))
		case float64:
			if op == "$inc" {
				return document.Set(d, path, c+a)
			}
			return document.Set(d, path, c*a)
		}
	default:
		return fmt.Errorf("%s target %q is not a number", op, path)
	}
	return fmt.Errorf("%s operand for %q is not a number", op, path)
}

func applyMinMax(d document.Document, path string, arg any, min bool) error {
	cur := document.Get(d, path)
	if document.IsMissing(cur) {
		return document.Set(d, path, arg)
	}
	c := document.Compare(arg, cur)
	if (min && c < 0) || (!min && c > 0) {
		return document.Set(d, path, arg)
	}
	return nil
}

func applyPush(d document.Document, path string, arg any) error {
	items := []any{arg}
	if m, ok := arg.(map[string]any); ok {
		if each, ok := m["$each"]; ok {
			arr, ok := each.([]any)
			if !ok {
				return fmt.Errorf("$push $each for %q is not an array", path)
			}
			items = arr
		}
	}
	cur := document.Get(d, path)
	var arr []any
	if a, ok := cur.([]any); ok {
		arr = a
	} else if !document.IsMissing(cur) && cur != nil {
		return fmt.Errorf("$push target %q is not an array", path)
	}
	arr = append(arr, items...)
	return document.Set(d, path, arr)
}

func applyAddToSet(d document.Document, path string, arg any) error {
	items := []any{arg}
	if m, ok := arg.(map[string]any); ok {
		if each, ok := m["$each"]; ok {
			arr, ok := each.([]any)
			if !ok {
				return fmt.Errorf("$addToSet $each for %q is not an array", path)
			}
			items = arr
		}
	}
	cur := document.Get(d, path)
	var arr []any
	if a, ok := cur.([]any); ok {
		arr = a
	} else if !document.IsMissing(cur) && cur != nil {
		return fmt.Errorf("$addToSet target %q is not an array", path)
	}
	for _, item := range items {
		dup := false
		for _, e := range arr {
			if document.Equal(e, item) {
				dup = true
				break
			}
		}
		if !dup {
			arr = append(arr, item)
		}
	}
	return document.Set(d, path, arr)
}

func applyPull(d document.Document, path string, arg any) error {
	cur := document.Get(d, path)
	arr, ok := cur.([]any)
	if !ok {
		if document.IsMissing(cur) {
			return nil
		}
		return fmt.Errorf("$pull target %q is not an array", path)
	}
	out := arr[:0:0]
	for _, e := range arr {
		if !document.Equal(e, arg) {
			out = append(out, e)
		}
	}
	return document.Set(d, path, out)
}

func applyPop(d document.Document, path string, arg any) error {
	cur := document.Get(d, path)
	arr, ok := cur.([]any)
	if !ok {
		if document.IsMissing(cur) {
			return nil
		}
		return fmt.Errorf("$pop target %q is not an array", path)
	}
	if len(arr) == 0 {
		return nil
	}
	dir, _ := arg.(int64)
	if dir == -1 {
		return document.Set(d, path, arr[1:])
	}
	return document.Set(d, path, arr[:len(arr)-1])
}

func applyRename(d document.Document, path string, arg any) error {
	newPath, ok := arg.(string)
	if !ok {
		return fmt.Errorf("$rename target for %q must be a string", path)
	}
	if err := validateUpdatePath(newPath); err != nil {
		return err
	}
	v := document.Get(d, path)
	if document.IsMissing(v) {
		return nil
	}
	document.Unset(d, path)
	return document.Set(d, newPath, v)
}
