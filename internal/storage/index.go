package storage

import (
	"fmt"
	"sort"

	"invalidb/internal/document"
	"invalidb/internal/query"
)

// hashIndex is an equality index: canonical value bytes -> set of primary
// keys. It accelerates queries that pin the indexed path to a constant.
// Multi-valued paths (arrays) index every element, like MongoDB's multikey
// indexes.
type hashIndex struct {
	path    string
	entries map[string]map[string]struct{}
}

// EnsureIndex creates an equality (hash) index on a dotted path and
// backfills it from existing documents. Creating an index that already
// exists is a no-op.
//
// Lock order is shard -> index everywhere (writes hold their shard lock while
// maintaining indexes), so the backfill freezes all shards first and only
// then takes the index lock.
func (c *Collection) EnsureIndex(path string) error {
	if path == "" {
		return fmt.Errorf("storage: empty index path")
	}
	for _, s := range c.shards {
		s.mu.RLock()
	}
	defer func() {
		for _, s := range c.shards {
			s.mu.RUnlock()
		}
	}()
	c.idxMu.Lock()
	defer c.idxMu.Unlock()
	if c.indexes == nil {
		c.indexes = map[string]*hashIndex{}
	}
	if _, exists := c.indexes[path]; exists {
		return nil
	}
	idx := &hashIndex{path: path, entries: map[string]map[string]struct{}{}}
	for _, s := range c.shards {
		for key, rec := range s.docs {
			idx.add(key, rec.doc)
		}
	}
	c.indexes[path] = idx
	return nil
}

// Indexes lists the indexed paths in sorted order.
func (c *Collection) Indexes() []string {
	c.idxMu.RLock()
	defer c.idxMu.RUnlock()
	out := make([]string, 0, len(c.indexes))
	for p := range c.indexes {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

func (idx *hashIndex) keysFor(d document.Document) []string {
	vals := document.Lookup(d, idx.path)
	seen := map[string]struct{}{}
	var out []string
	add := func(v any) {
		if document.IsMissing(v) {
			return
		}
		k := string(document.MarshalCanonical(v))
		if _, dup := seen[k]; !dup {
			seen[k] = struct{}{}
			out = append(out, k)
		}
	}
	for _, v := range vals {
		add(v)
		if arr, ok := v.([]any); ok {
			for _, e := range arr {
				add(e)
			}
		}
	}
	return out
}

func (idx *hashIndex) add(key string, d document.Document) {
	for _, vk := range idx.keysFor(d) {
		set := idx.entries[vk]
		if set == nil {
			set = map[string]struct{}{}
			idx.entries[vk] = set
		}
		set[key] = struct{}{}
	}
}

func (idx *hashIndex) remove(key string, d document.Document) {
	for _, vk := range idx.keysFor(d) {
		if set := idx.entries[vk]; set != nil {
			delete(set, key)
			if len(set) == 0 {
				delete(idx.entries, vk)
			}
		}
	}
}

func (c *Collection) indexAdd(key string, d document.Document) {
	c.idxMu.Lock()
	for _, idx := range c.indexes {
		idx.add(key, d)
	}
	c.idxMu.Unlock()
}

func (c *Collection) indexRemove(key string, d document.Document) {
	c.idxMu.Lock()
	for _, idx := range c.indexes {
		idx.remove(key, d)
	}
	c.idxMu.Unlock()
}

// indexCandidates returns the primary keys an index narrows the query to,
// or ok=false when no indexed path is pinned by the query. Candidates still
// get the full filter applied — the index is purely a pruning step.
func (c *Collection) indexCandidates(q *query.Query) ([]string, bool) {
	c.idxMu.RLock()
	defer c.idxMu.RUnlock()
	if len(c.indexes) == 0 {
		return nil, false
	}
	for path, v := range q.EqualityPaths() {
		idx, ok := c.indexes[path]
		if !ok {
			continue
		}
		vk := string(document.MarshalCanonical(v))
		set := idx.entries[vk]
		keys := make([]string, 0, len(set))
		for k := range set {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		return keys, true
	}
	return nil, false
}
