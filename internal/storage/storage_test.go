package storage

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"invalidb/internal/document"
	"invalidb/internal/query"
)

func newDB() *DB { return Open(Options{Shards: 4, OplogCapacity: 128}) }

func art(id string, title string, year int) document.Document {
	return document.Document{"_id": id, "title": title, "year": year}
}

func TestInsertGet(t *testing.T) {
	db := newDB()
	c := db.C("articles")
	ai, err := c.Insert(art("1", "DB Fun", 2018))
	if err != nil {
		t.Fatal(err)
	}
	if ai.Op != document.OpInsert || ai.Key != "1" || ai.Version == 0 {
		t.Fatalf("bad after-image: %+v", ai)
	}
	d, ver, ok := c.Get("1")
	if !ok || ver != ai.Version {
		t.Fatalf("Get: ok=%v ver=%d want %d", ok, ver, ai.Version)
	}
	if d["title"] != "DB Fun" || d["year"] != int64(2018) {
		t.Fatalf("stored document mangled: %v", d)
	}
}

func TestInsertDuplicate(t *testing.T) {
	c := newDB().C("c")
	if _, err := c.Insert(art("1", "a", 1)); err != nil {
		t.Fatal(err)
	}
	_, err := c.Insert(art("1", "b", 2))
	if !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("duplicate insert: err = %v, want ErrDuplicateKey", err)
	}
}

func TestInsertWithoutID(t *testing.T) {
	if _, err := newDB().C("c").Insert(document.Document{"x": 1}); err == nil {
		t.Fatal("insert without _id accepted")
	}
}

func TestInsertIsolatesCallerValue(t *testing.T) {
	c := newDB().C("c")
	d := art("1", "orig", 1)
	if _, err := c.Insert(d); err != nil {
		t.Fatal(err)
	}
	d["title"] = "mutated"
	got, _, _ := c.Get("1")
	if got["title"] != "orig" {
		t.Fatal("caller mutation leaked into storage")
	}
}

func TestReplace(t *testing.T) {
	c := newDB().C("c")
	first, _ := c.Insert(art("1", "a", 1))
	ai, err := c.Replace("1", document.Document{"title": "b"})
	if err != nil {
		t.Fatal(err)
	}
	if ai.Version <= first.Version {
		t.Fatal("version did not increase on replace")
	}
	d, _, _ := c.Get("1")
	if d["title"] != "b" || d["_id"] != "1" {
		t.Fatalf("replace result: %v", d)
	}
	if _, ok := d["year"]; ok {
		t.Fatal("replace kept an old field")
	}
	if _, err := c.Replace("nope", document.Document{}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("replace missing: %v", err)
	}
	if _, err := c.Replace("1", document.Document{"_id": "2"}); err == nil {
		t.Fatal("replace with mismatched _id accepted")
	}
}

func TestFindAndModifyOperators(t *testing.T) {
	c := newDB().C("c")
	if _, err := c.Insert(document.Document{"_id": "1", "n": 10, "tags": []any{"a"}}); err != nil {
		t.Fatal(err)
	}
	ai, err := c.FindAndModify("1", map[string]any{
		"$set":  map[string]any{"title": "T"},
		"$inc":  map[string]any{"n": 5},
		"$push": map[string]any{"tags": "b"},
	}, false)
	if err != nil {
		t.Fatal(err)
	}
	if ai.Doc["n"] != int64(15) || ai.Doc["title"] != "T" {
		t.Fatalf("after-image: %v", ai.Doc)
	}
	if tags := ai.Doc["tags"].([]any); len(tags) != 2 || tags[1] != "b" {
		t.Fatalf("push failed: %v", ai.Doc["tags"])
	}
	// After-image must equal stored state.
	d, ver, _ := c.Get("1")
	if !document.Equal(map[string]any(d), map[string]any(ai.Doc)) || ver != ai.Version {
		t.Fatal("after-image diverges from stored record")
	}
}

func TestFindAndModifyReplacementForm(t *testing.T) {
	c := newDB().C("c")
	_, _ = c.Insert(document.Document{"_id": "1", "a": 1, "b": 2})
	ai, err := c.FindAndModify("1", map[string]any{"z": 9}, false)
	if err != nil {
		t.Fatal(err)
	}
	if ai.Doc["z"] != int64(9) || ai.Doc["_id"] != "1" {
		t.Fatalf("replacement: %v", ai.Doc)
	}
	if _, ok := ai.Doc["a"]; ok {
		t.Fatal("replacement kept old field")
	}
}

func TestFindAndModifyUpsert(t *testing.T) {
	c := newDB().C("c")
	ai, err := c.FindAndModify("new", map[string]any{"$set": map[string]any{"x": 1}}, true)
	if err != nil {
		t.Fatal(err)
	}
	if ai.Op != document.OpInsert {
		t.Fatalf("upsert op = %v, want insert", ai.Op)
	}
	if _, err := c.FindAndModify("missing", map[string]any{"$set": map[string]any{"x": 1}}, false); !errors.Is(err, ErrNotFound) {
		t.Fatalf("non-upsert on missing: %v", err)
	}
}

func TestFindAndModifyRejectsBadUpdate(t *testing.T) {
	c := newDB().C("c")
	_, _ = c.Insert(document.Document{"_id": "1", "s": "x"})
	cases := []map[string]any{
		{"$inc": map[string]any{"s": 1}},
		{"$inc": map[string]any{"n": "not a number"}},
		{"$bogus": map[string]any{"a": 1}},
		{"$set": map[string]any{"_id": "2"}},
		{"$set": map[string]any{"": 1}},
		{"$set": 5},
		{"$push": map[string]any{"s": 1}},
		{"$rename": map[string]any{"s": 7}},
	}
	for i, u := range cases {
		if _, err := c.FindAndModify("1", u, false); err == nil {
			t.Errorf("case %d: bad update accepted: %v", i, u)
		}
	}
	// Failed updates must not change state or version.
	d, _, _ := c.Get("1")
	if d["s"] != "x" {
		t.Fatal("failed update mutated the record")
	}
}

func TestUpdateOperatorMatrix(t *testing.T) {
	c := newDB().C("c")
	_, _ = c.Insert(document.Document{
		"_id": "1", "n": 10, "f": 1.5, "arr": []any{1, 2, 2, 3}, "old": "v",
		"lo": 5, "hi": 5,
	})
	_, err := c.FindAndModify("1", map[string]any{
		"$mul":      map[string]any{"n": 3},
		"$min":      map[string]any{"lo": 2},
		"$max":      map[string]any{"hi": 9},
		"$pull":     map[string]any{"arr": 2},
		"$rename":   map[string]any{"old": "renamed"},
		"$addToSet": map[string]any{"set": map[string]any{"$each": []any{"a", "a", "b"}}},
	}, false)
	if err != nil {
		t.Fatal(err)
	}
	d, _, _ := c.Get("1")
	if d["n"] != int64(30) {
		t.Errorf("$mul: %v", d["n"])
	}
	if d["lo"] != int64(2) || d["hi"] != int64(9) {
		t.Errorf("$min/$max: lo=%v hi=%v", d["lo"], d["hi"])
	}
	if arr := d["arr"].([]any); len(arr) != 2 {
		t.Errorf("$pull: %v", arr)
	}
	if _, ok := d["old"]; ok || d["renamed"] != "v" {
		t.Errorf("$rename: %v", d)
	}
	if set := d["set"].([]any); len(set) != 2 {
		t.Errorf("$addToSet dedup: %v", set)
	}
	// $pop both ends.
	_, _ = c.FindAndModify("1", map[string]any{"$pop": map[string]any{"arr": 1}}, false)
	_, _ = c.FindAndModify("1", map[string]any{"$pop": map[string]any{"arr": -1}}, false)
	d, _, _ = c.Get("1")
	if arr := d["arr"].([]any); len(arr) != 0 {
		t.Errorf("$pop: %v", arr)
	}
	// $push $each, $inc on missing, $mul on missing.
	_, _ = c.FindAndModify("1", map[string]any{
		"$push": map[string]any{"arr": map[string]any{"$each": []any{7, 8}}},
		"$inc":  map[string]any{"fresh": 4},
		"$mul":  map[string]any{"fresh2": 4},
	}, false)
	d, _, _ = c.Get("1")
	if arr := d["arr"].([]any); len(arr) != 2 {
		t.Errorf("$push $each: %v", arr)
	}
	if d["fresh"] != int64(4) || d["fresh2"] != int64(0) {
		t.Errorf("$inc/$mul on missing: %v %v", d["fresh"], d["fresh2"])
	}
	// $currentDate writes a string timestamp.
	_, _ = c.FindAndModify("1", map[string]any{"$currentDate": map[string]any{"ts": true}}, false)
	d, _, _ = c.Get("1")
	if _, ok := d["ts"].(string); !ok {
		t.Errorf("$currentDate: %T", d["ts"])
	}
}

func TestDelete(t *testing.T) {
	c := newDB().C("c")
	ins, _ := c.Insert(art("1", "a", 1))
	ai, err := c.Delete("1")
	if err != nil {
		t.Fatal(err)
	}
	if ai.Op != document.OpDelete || ai.Doc != nil {
		t.Fatalf("delete after-image: %+v", ai)
	}
	if ai.Version <= ins.Version {
		t.Fatal("delete version did not increase")
	}
	if _, _, ok := c.Get("1"); ok {
		t.Fatal("document survived delete")
	}
	if _, err := c.Delete("1"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v", err)
	}
}

func TestVersionsMonotonicAcrossReinsert(t *testing.T) {
	c := newDB().C("c")
	a, _ := c.Insert(art("1", "a", 1))
	d, _ := c.Delete("1")
	b, _ := c.Insert(art("1", "b", 2))
	if !(a.Version < d.Version && d.Version < b.Version) {
		t.Fatalf("versions not monotonic: %d %d %d", a.Version, d.Version, b.Version)
	}
}

func TestFindFilterSortWindow(t *testing.T) {
	c := newDB().C("articles")
	years := []int{2018, 2018, 2017, 2017, 2016, 2016}
	titles := []string{"DB Fun", "No SQL!", "BaaS For Dummies", "Query Languages", "Streams in Action", "SaaS For Dummies"}
	ids := []string{"5", "8", "3", "4", "7", "9"}
	for i := range ids {
		if _, err := c.Insert(art(ids[i], titles[i], years[i])); err != nil {
			t.Fatal(err)
		}
	}
	q := query.MustCompile(query.Spec{
		Collection: "articles",
		Sort:       []query.SortKey{{Path: "year", Desc: true}},
		Offset:     2,
		Limit:      3,
	})
	docs, err := c.Find(q)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, d := range docs {
		id, _ := d.ID()
		got = append(got, id)
	}
	want := []string{"3", "4", "7"} // Figure 3's visible result
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("window = %v, want %v", got, want)
	}
}

func TestFindOffsetBeyondResult(t *testing.T) {
	c := newDB().C("c")
	_, _ = c.Insert(art("1", "a", 1))
	q := query.MustCompile(query.Spec{Collection: "c", Offset: 10})
	docs, err := c.Find(q)
	if err != nil || len(docs) != 0 {
		t.Fatalf("offset beyond result: %v, %v", docs, err)
	}
}

func TestFindWrongCollection(t *testing.T) {
	c := newDB().C("c")
	q := query.MustCompile(query.Spec{Collection: "other"})
	if _, err := c.Find(q); err == nil {
		t.Fatal("cross-collection query accepted")
	}
}

func TestFindProjection(t *testing.T) {
	c := newDB().C("c")
	_, _ = c.Insert(document.Document{"_id": "1", "a": 1, "b": 2})
	q := query.MustCompile(query.Spec{Collection: "c", Projection: []string{"a"}})
	docs, _ := c.Find(q)
	if len(docs) != 1 || docs[0]["a"] != int64(1) {
		t.Fatalf("projection result: %v", docs)
	}
	if _, ok := docs[0]["b"]; ok {
		t.Fatal("projection leaked field")
	}
}

func TestFindEntriesVersions(t *testing.T) {
	c := newDB().C("c")
	ai, _ := c.Insert(art("1", "a", 1))
	q := query.MustCompile(query.Spec{Collection: "c"})
	entries, err := c.FindEntries(q)
	if err != nil || len(entries) != 1 {
		t.Fatalf("entries: %v %v", entries, err)
	}
	if entries[0].Version != ai.Version || entries[0].Key != "1" {
		t.Fatalf("entry metadata: %+v", entries[0])
	}
}

func TestCount(t *testing.T) {
	c := newDB().C("c")
	for i := 0; i < 10; i++ {
		_, _ = c.Insert(document.Document{"_id": fmt.Sprint(i), "n": i})
	}
	q := query.MustCompile(query.Spec{
		Collection: "c",
		Filter:     map[string]any{"n": map[string]any{"$gte": 5}},
		Limit:      2, // Count ignores the window
	})
	n, err := c.Count(q)
	if err != nil || n != 5 {
		t.Fatalf("Count = %d, %v; want 5", n, err)
	}
	if c.Len() != 10 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestIndexedFindMatchesScan(t *testing.T) {
	c := newDB().C("c")
	if err := c.EnsureIndex("cat"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		_, _ = c.Insert(document.Document{"_id": fmt.Sprint(i), "cat": fmt.Sprint(i % 5), "n": i})
	}
	// Mutate some: moves between index buckets.
	for i := 0; i < 20; i++ {
		_, _ = c.FindAndModify(fmt.Sprint(i), map[string]any{"$set": map[string]any{"cat": "9"}}, false)
	}
	for i := 40; i < 45; i++ {
		_, _ = c.Delete(fmt.Sprint(i))
	}
	q := query.MustCompile(query.Spec{Collection: "c", Filter: map[string]any{"cat": "9", "n": map[string]any{"$lt": 10}}})
	docs, err := c.Find(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 10 {
		t.Fatalf("indexed find returned %d docs, want 10", len(docs))
	}
	if got := c.Indexes(); len(got) != 1 || got[0] != "cat" {
		t.Fatalf("Indexes() = %v", got)
	}
}

func TestIndexBackfill(t *testing.T) {
	c := newDB().C("c")
	for i := 0; i < 20; i++ {
		_, _ = c.Insert(document.Document{"_id": fmt.Sprint(i), "cat": i % 2})
	}
	if err := c.EnsureIndex("cat"); err != nil {
		t.Fatal(err)
	}
	if err := c.EnsureIndex("cat"); err != nil { // idempotent
		t.Fatal(err)
	}
	q := query.MustCompile(query.Spec{Collection: "c", Filter: map[string]any{"cat": 1}})
	docs, _ := c.Find(q)
	if len(docs) != 10 {
		t.Fatalf("backfilled index find: %d docs, want 10", len(docs))
	}
}

func TestMultikeyIndex(t *testing.T) {
	c := newDB().C("c")
	_ = c.EnsureIndex("tags")
	_, _ = c.Insert(document.Document{"_id": "1", "tags": []any{"go", "db"}})
	_, _ = c.Insert(document.Document{"_id": "2", "tags": []any{"rust"}})
	q := query.MustCompile(query.Spec{Collection: "c", Filter: map[string]any{"tags": "db"}})
	docs, _ := c.Find(q)
	if len(docs) != 1 {
		t.Fatalf("multikey index lookup: %d docs, want 1", len(docs))
	}
	id, _ := docs[0].ID()
	if id != "1" {
		t.Fatalf("wrong doc: %s", id)
	}
}

func TestConcurrentWritersDistinctKeys(t *testing.T) {
	c := newDB().C("c")
	_ = c.EnsureIndex("g")
	const workers = 8
	const perWorker = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				key := fmt.Sprintf("%d-%d", w, i)
				if _, err := c.Insert(document.Document{"_id": key, "g": w, "i": i}); err != nil {
					t.Errorf("insert %s: %v", key, err)
					return
				}
				if _, err := c.FindAndModify(key, map[string]any{"$inc": map[string]any{"i": 1}}, false); err != nil {
					t.Errorf("update %s: %v", key, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if c.Len() != workers*perWorker {
		t.Fatalf("Len = %d, want %d", c.Len(), workers*perWorker)
	}
	q := query.MustCompile(query.Spec{Collection: "c", Filter: map[string]any{"g": 3}})
	n, _ := c.Count(q)
	if n != perWorker {
		t.Fatalf("group count = %d, want %d", n, perWorker)
	}
}

func TestConcurrentSameKeyVersionsUnique(t *testing.T) {
	c := newDB().C("c")
	_, _ = c.Insert(document.Document{"_id": "k", "n": 0})
	const writers = 8
	const updates = 100
	versions := make(chan uint64, writers*updates)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < updates; i++ {
				ai, err := c.FindAndModify("k", map[string]any{"$inc": map[string]any{"n": 1}}, false)
				if err != nil {
					t.Error(err)
					return
				}
				versions <- ai.Version
			}
		}()
	}
	wg.Wait()
	close(versions)
	seen := map[uint64]bool{}
	for v := range versions {
		if seen[v] {
			t.Fatalf("duplicate version %d", v)
		}
		seen[v] = true
	}
	d, _, _ := c.Get("k")
	if d["n"] != int64(writers*updates) {
		t.Fatalf("lost updates: n = %v, want %d", d["n"], writers*updates)
	}
}
