package storage

import (
	"sort"

	"invalidb/internal/document"
	"invalidb/internal/query"
)

// WatermarkCollection is the reserved collection name watermark records are
// emitted under. Watermarks are transient protocol state for the DBLog-style
// backfill (DESIGN.md §12): they travel the oplog so log consumers can
// establish a position relative to chunk reads, but they are never stored in
// a collection and never journaled.
const WatermarkCollection = "_invalidb.watermark"

// EmitWatermark allocates a fresh global sequence number and appends a
// watermark record carrying it to the oplog. Because record versions and
// watermark sequences draw from the same allocator (DB.nextSeq), any write
// that committed between a low and a high watermark has a version strictly
// inside the (low, high) window — the property the backfill's virtual-cut
// reconciliation relies on. The label distinguishes concurrent backfills.
//
// Watermarks bypass the journal deliberately: replaying one after a restart
// would re-announce a cut that no longer exists.
func (db *DB) EmitWatermark(label string) uint64 {
	seq := db.nextSeq()
	db.oplog.append(&document.AfterImage{
		Collection: WatermarkCollection,
		Key:        label,
		Version:    seq,
		Op:         document.OpUpdate,
		Doc:        document.Document{"_id": label, "wm": int64(seq)},
	})
	return seq
}

// ChunkCursor iterates a collection's keyspace in stable, bounded chunks for
// the backfill engine. The cursor snapshots one shard's key set at a time
// (sorted, so a retry of the same chunk re-reads the same keys), then
// resolves each key's current record in small batches: the lookup happens
// under the shard read lock, predicate evaluation and cloning happen outside
// it. Keys inserted after a shard's snapshot was taken are not seen by the
// cursor — they are covered by the live write stream, which is the standard
// DBLog chunking argument; keys deleted since the snapshot simply resolve to
// nothing.
type ChunkCursor struct {
	c    *Collection
	q    *query.Query
	next int      // next shard to snapshot
	keys []string // sorted key snapshot of the current shard
	pos  int      // next key within keys

	// segs records the exact key ranges the most recent Next walked, and
	// lastDone its exhaustion result, so the same chunk can be re-read
	// later (Retry, Segments/Reread) against the store's current state.
	// Re-walking the recorded segments — not re-running the position-based
	// read — matters: a fresh shard snapshot taken mid-re-read could have
	// shifted under concurrent inserts and silently skip a key that no
	// other chunk covers.
	segs     []ChunkSegment
	lastDone bool

	snap []scanned // reusable lookup batch
}

// ChunkSegment is one contiguous run of a shard's key snapshot (keys never
// spans shards). The slice is immutable; segments stay valid for the
// cursor's lifetime.
type ChunkSegment struct {
	keys   []string
	lo, hi int
}

// NewChunkCursor creates a cursor over the documents of q's collection. The
// query's filter decides membership; sort, offset and limit are ignored
// (chunked backfill is for unordered membership queries).
func (c *Collection) NewChunkCursor(q *query.Query) *ChunkCursor {
	return &ChunkCursor{c: c, q: q}
}

// Next returns the next chunk of at most maxKeys keys' worth of matching
// entries and reports whether the keyspace is exhausted. The bound is on
// keys examined, not entries returned, so a chunk's cost stays fixed even
// when the filter is selective; a chunk can therefore be empty without being
// the last. Call Retry to rewind and re-read the same chunk.
func (cur *ChunkCursor) Next(maxKeys int) ([]Entry, bool) {
	if maxKeys <= 0 {
		maxKeys = 1
	}
	cur.segs = cur.segs[:0]
	out, done := cur.read(maxKeys)
	cur.lastDone = done
	return out, done
}

// Retry re-reads the chunk most recently returned by Next — exactly the same
// keys — resolving each against the store's current state. Entries written
// since the original read come back with their newer versions, which the
// version-guarded install on the matching nodes already tolerates. The
// maxKeys parameter is accepted for symmetry with Next but ignored: the
// chunk's key range is already fixed.
func (cur *ChunkCursor) Retry(int) ([]Entry, bool) {
	return cur.reread(cur.segs), cur.lastDone
}

// Segments returns the key segments of the chunk most recently returned by
// Next. A pipelined backfill retains one segment list per in-flight chunk so
// any of them — not just the most recent — can be re-read after a
// certificate timeout (Reread).
func (cur *ChunkCursor) Segments() []ChunkSegment {
	return append([]ChunkSegment(nil), cur.segs...)
}

// Reread resolves a previously recorded chunk's exact key range against the
// store's current state.
func (cur *ChunkCursor) Reread(segs []ChunkSegment) []Entry {
	return cur.reread(segs)
}

func (cur *ChunkCursor) reread(segs []ChunkSegment) []Entry {
	var out []Entry
	for _, seg := range segs {
		if seg.lo >= seg.hi {
			continue
		}
		batch := seg.keys[seg.lo:seg.hi]
		out = cur.resolve(batch, out)
	}
	return out
}

func (cur *ChunkCursor) read(maxKeys int) ([]Entry, bool) {
	var out []Entry
	budget := maxKeys
	for budget > 0 {
		if cur.pos >= len(cur.keys) {
			if cur.next >= len(cur.c.shards) {
				return out, true
			}
			cur.snapshotShard(cur.c.shards[cur.next])
			cur.next++
			continue
		}
		end := cur.pos + budget
		if end > len(cur.keys) {
			end = len(cur.keys)
		}
		batch := cur.keys[cur.pos:end]
		cur.segs = append(cur.segs, ChunkSegment{keys: cur.keys, lo: cur.pos, hi: end})
		budget -= len(batch)
		cur.pos = end
		out = cur.resolve(batch, out)
	}
	done := cur.pos >= len(cur.keys) && cur.next >= len(cur.c.shards)
	return out, done
}

// resolve looks one shard-contiguous batch of keys up under a single read
// lock and appends the matching entries; predicate evaluation and cloning
// happen outside the lock.
func (cur *ChunkCursor) resolve(batch []string, out []Entry) []Entry {
	s := cur.c.shardFor(batch[0])
	cur.snap = cur.snap[:0]
	s.mu.RLock()
	for _, key := range batch {
		if rec, ok := s.docs[key]; ok {
			cur.snap = append(cur.snap, scanned{key: key, rec: rec})
		}
	}
	s.mu.RUnlock()
	for _, sn := range cur.snap {
		if !cur.q.Match(sn.rec.doc) {
			continue
		}
		doc := sn.rec.doc.Clone()
		if len(cur.q.Projection) > 0 {
			doc = cur.q.Project(doc)
		}
		out = append(out, Entry{Key: sn.key, Version: sn.rec.version, Doc: doc})
	}
	return out
}

// snapshotShard captures the shard's key set under its read lock and sorts
// it so chunk boundaries are stable across retries. Sorted snapshots are
// cached on the shard against its keyset generation: concurrent backfills
// over a stable keyspace (updates bump versions, not the key set) share one
// sort instead of paying one per cursor.
func (cur *ChunkCursor) snapshotShard(s *shard) {
	s.mu.RLock()
	gen := s.keyGen
	if s.sortedGen == gen && s.sortedKeys != nil {
		cur.keys = s.sortedKeys
		s.mu.RUnlock()
		cur.pos = 0
		return
	}
	keys := make([]string, 0, len(s.docs))
	for key := range s.docs {
		keys = append(keys, key)
	}
	s.mu.RUnlock()
	sort.Strings(keys)
	s.mu.Lock()
	if s.keyGen == gen {
		s.sortedGen, s.sortedKeys = gen, keys
	}
	s.mu.Unlock()
	cur.keys = keys
	cur.pos = 0
}
