package storage

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"

	"invalidb/internal/document"
)

// Journal is an append-only write-ahead log of after-images. The paper's
// substrate (MongoDB) is durable; attaching a Journal to a DB gives the
// in-memory store the same property: every committed write is appended
// before the call returns, and Recover replays a journal into an empty
// database after a restart.
//
// Record format: uint32 length | uint32 CRC32C | payload (encoded
// after-image). A torn final record (crash mid-append) is detected by
// length/checksum and discarded, like a classic redo log.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	w    *bufio.Writer
	path string
	// SyncEvery controls fsync cadence: 1 = every record (slow, strongest),
	// N>1 = every Nth record, 0 = rely on OS flushing (fastest).
	syncEvery int
	appended  uint64
}

// JournalOptions tunes durability.
type JournalOptions struct {
	// SyncEvery is the fsync cadence (0 = never fsync explicitly, 1 = every
	// record). Default 0: the paper's availability story tolerates losing a
	// tail of writes on crash, since InvaliDB results are eventually
	// consistent with the database.
	SyncEvery int
}

// OpenJournal opens (creating if needed) an append-only journal file.
func OpenJournal(path string, opts JournalOptions) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: open journal: %w", err)
	}
	return &Journal{
		f:         f,
		w:         bufio.NewWriterSize(f, 1<<16),
		path:      path,
		syncEvery: opts.SyncEvery,
	}, nil
}

// Append writes one after-image record.
func (j *Journal) Append(ai *document.AfterImage) error {
	payload, err := ai.Encode()
	if err != nil {
		return err
	}
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:], crc32.Checksum(payload, castagnoli))
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("storage: journal closed")
	}
	if _, err := j.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := j.w.Write(payload); err != nil {
		return err
	}
	j.appended++
	if j.syncEvery > 0 && j.appended%uint64(j.syncEvery) == 0 {
		if err := j.w.Flush(); err != nil {
			return err
		}
		if err := j.f.Sync(); err != nil {
			return err
		}
	}
	return nil
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Flush pushes buffered records to the OS.
func (j *Journal) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	return j.w.Flush()
}

// Close flushes and closes the journal file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	if err := j.w.Flush(); err != nil {
		return err
	}
	err := j.f.Close()
	j.f = nil
	return err
}

// Appended reports the number of records written by this handle.
func (j *Journal) Appended() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.appended
}

// ReplayJournal reads a journal file and invokes fn for every intact record
// in order. It stops cleanly at a torn final record and returns the count of
// replayed records.
func ReplayJournal(path string, fn func(*document.AfterImage) error) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, fmt.Errorf("storage: open journal for replay: %w", err)
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<16)
	n := 0
	for {
		var hdr [8]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			if err == io.EOF {
				return n, nil
			}
			// A partial header is a torn tail: stop cleanly.
			if err == io.ErrUnexpectedEOF {
				return n, nil
			}
			return n, err
		}
		size := binary.BigEndian.Uint32(hdr[:4])
		sum := binary.BigEndian.Uint32(hdr[4:])
		if size == 0 || size > 64<<20 {
			return n, nil // corrupt length: treat as torn tail
		}
		payload := make([]byte, size)
		if _, err := io.ReadFull(r, payload); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				return n, nil // torn record
			}
			return n, err
		}
		if crc32.Checksum(payload, castagnoli) != sum {
			return n, nil // corrupt record: stop at the last intact prefix
		}
		ai, err := document.DecodeAfterImage(payload)
		if err != nil {
			return n, fmt.Errorf("storage: journal record %d: %w", n, err)
		}
		if err := fn(ai); err != nil {
			return n, err
		}
		n++
	}
}

// AttachJournal makes the database append every committed write to the
// journal. Attach before the first write; attaching twice replaces the
// journal.
func (db *DB) AttachJournal(j *Journal) {
	db.mu.Lock()
	db.journal = j
	db.mu.Unlock()
}

// journalAppend is called by the oplog hook with every committed write.
func (db *DB) journalAppend(ai *document.AfterImage) {
	db.mu.RLock()
	j := db.journal
	db.mu.RUnlock()
	if j != nil {
		// Journal failures must not fail the in-memory commit that already
		// happened; they surface via JournalErr.
		if err := j.Append(ai); err != nil {
			db.journalErr.Store(&err)
		}
	}
}

// JournalErr returns the first asynchronous journal failure, if any.
func (db *DB) JournalErr() error {
	if p := db.journalErr.Load(); p != nil {
		return *p
	}
	return nil
}

// Recover replays a journal file into the database. The database must be
// empty; record versions are preserved so InvaliDB staleness semantics
// survive restarts. It returns the number of records applied.
func (db *DB) Recover(path string) (int, error) {
	if db.seq.Load() != 0 {
		return 0, fmt.Errorf("storage: recover into a non-empty database")
	}
	applied, err := ReplayJournal(path, func(ai *document.AfterImage) error {
		c := db.C(ai.Collection)
		s := c.shardFor(ai.Key)
		s.mu.Lock()
		switch ai.Op {
		case document.OpDelete:
			if rec, ok := s.docs[ai.Key]; ok {
				c.indexRemove(ai.Key, rec.doc)
				delete(s.docs, ai.Key)
			}
		default:
			doc := ai.Doc.Clone()
			if rec, ok := s.docs[ai.Key]; ok {
				c.indexRemove(ai.Key, rec.doc)
			}
			s.docs[ai.Key] = &record{doc: doc, version: ai.Version}
			c.indexAdd(ai.Key, doc)
		}
		s.mu.Unlock()
		// Keep the version sequence ahead of everything replayed.
		for {
			cur := db.seq.Load()
			if ai.Version <= cur || db.seq.CompareAndSwap(cur, ai.Version) {
				break
			}
		}
		return nil
	})
	if err != nil {
		return applied, err
	}
	return applied, nil
}
