package storage

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"invalidb/internal/document"
	"invalidb/internal/query"
)

// TestQuickFindAgreesWithEngine is the storage/engine alignment property the
// paper's pluggable-engine design requires (§5.3: both query engines must
// produce the same output for the same input): every document returned by
// Find matches the filter, appears in comparator order, and every stored
// document matching the filter appears unless cut by the window.
func TestQuickFindAgreesWithEngine(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := Open(Options{Shards: 3})
		c := db.C("p")
		n := 5 + rng.Intn(40)
		for i := 0; i < n; i++ {
			doc := document.Document{
				"_id": fmt.Sprintf("k%03d", i),
				"a":   int64(rng.Intn(10)),
				"b":   int64(rng.Intn(5)),
			}
			if rng.Intn(5) == 0 {
				delete(doc, "a") // missing fields exercise bracket ordering
			}
			if _, err := c.Insert(doc); err != nil {
				return false
			}
		}
		lo := int64(rng.Intn(8))
		q := query.MustCompile(query.Spec{
			Collection: "p",
			Filter:     map[string]any{"a": map[string]any{"$gte": lo}},
			Sort:       []query.SortKey{{Path: "b", Desc: rng.Intn(2) == 0}, {Path: "a"}},
			Offset:     rng.Intn(4),
			Limit:      rng.Intn(6), // 0 = unbounded
		})
		got, err := c.Find(q)
		if err != nil {
			return false
		}
		// (1) every returned document matches and is ordered.
		for i, d := range got {
			if !q.Match(d) {
				return false
			}
			if i > 0 && q.Compare(got[i-1], d) > 0 {
				return false
			}
		}
		// (2) the window size is consistent with the full matching count.
		total, err := c.Count(q)
		if err != nil {
			return false
		}
		want := total - q.Offset
		if want < 0 {
			want = 0
		}
		if q.Limit > 0 && want > q.Limit {
			want = q.Limit
		}
		return len(got) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickUpdateOperatorsPreserveID checks that no update operator mix can
// detach a record from its primary key.
func TestQuickUpdateOperatorsPreserveID(t *testing.T) {
	ops := []func(r *rand.Rand) map[string]any{
		func(r *rand.Rand) map[string]any {
			return map[string]any{"$set": map[string]any{fmt.Sprintf("f%d", r.Intn(4)): r.Intn(100)}}
		},
		func(r *rand.Rand) map[string]any {
			return map[string]any{"$inc": map[string]any{"n": 1}}
		},
		func(r *rand.Rand) map[string]any {
			return map[string]any{"$unset": map[string]any{fmt.Sprintf("f%d", r.Intn(4)): 1}}
		},
		func(r *rand.Rand) map[string]any {
			return map[string]any{"$push": map[string]any{"arr": r.Intn(10)}}
		},
		func(r *rand.Rand) map[string]any {
			return map[string]any{"$pop": map[string]any{"arr": int64(1)}}
		},
		func(r *rand.Rand) map[string]any {
			return map[string]any{"plain": r.Intn(10)} // replacement form
		},
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := Open(Options{})
		c := db.C("c")
		if _, err := c.Insert(document.Document{"_id": "k", "n": 0}); err != nil {
			return false
		}
		var lastVer uint64
		for i := 0; i < 20; i++ {
			ai, err := c.FindAndModify("k", ops[rng.Intn(len(ops))](rng), false)
			if err != nil {
				return false
			}
			if ai.Doc["_id"] != "k" || ai.Version <= lastVer {
				return false
			}
			lastVer = ai.Version
			d, ver, ok := c.Get("k")
			if !ok || ver != ai.Version || !document.Equal(map[string]any(d), map[string]any(ai.Doc)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickOplogOrderMatchesVersions: oplog entries appear in strictly
// increasing version order (the property log tailing relies on).
func TestQuickOplogOrderMatchesVersions(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := Open(Options{OplogCapacity: 256})
		c := db.C("c")
		for i := 0; i < 50; i++ {
			key := fmt.Sprintf("k%d", rng.Intn(10))
			if _, _, ok := c.Get(key); !ok {
				_, _ = c.Insert(document.Document{"_id": key, "n": 0})
			} else if rng.Intn(4) == 0 {
				_, _ = c.Delete(key)
			} else {
				_, _ = c.FindAndModify(key, map[string]any{"$inc": map[string]any{"n": 1}}, false)
			}
		}
		tailer := db.Oplog().Tail(0)
		defer tailer.Close()
		var last uint64
		for {
			ai, ok, err := tailer.TryNext()
			if err != nil {
				return false
			}
			if !ok {
				return true
			}
			if ai.Version <= last {
				return false
			}
			last = ai.Version
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
