package storage

import (
	"fmt"
	"sync"

	"invalidb/internal/document"
)

// Oplog is the database's capped operation log: a ring buffer of after-images
// in commit order. It exists for the log-tailing baseline (§3.1) — consumers
// tail the log to observe every write — and mirrors MongoDB's capped oplog
// collection, including its failure mode: a tailer that falls behind by more
// than the ring's capacity is cut off and must restart.
type Oplog struct {
	mu      sync.Mutex
	ring    []*document.AfterImage
	cap     int
	nextSeq uint64 // sequence of the next entry to be appended (1-based)
	tailers map[*Tailer]struct{}
}

func newOplog(capacity int) *Oplog {
	return &Oplog{
		ring:    make([]*document.AfterImage, capacity),
		cap:     capacity,
		nextSeq: 1,
		tailers: map[*Tailer]struct{}{},
	}
}

func (o *Oplog) append(ai *document.AfterImage) {
	o.mu.Lock()
	o.ring[int(o.nextSeq-1)%o.cap] = ai
	o.nextSeq++
	for t := range o.tailers {
		t.notify()
	}
	o.mu.Unlock()
}

// LastSeq returns the sequence number of the most recent entry (0 when the
// log is empty).
func (o *Oplog) LastSeq() uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.nextSeq - 1
}

// Tailers returns the number of open tailers.
func (o *Oplog) Tailers() int {
	o.mu.Lock()
	defer o.mu.Unlock()
	return len(o.tailers)
}

// MaxTailerLag returns the largest number of committed entries any open
// tailer has yet to consume — how far the slowest log consumer trails
// the write head. Zero with no tailers or with all tailers caught up.
func (o *Oplog) MaxTailerLag() uint64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	last := o.nextSeq - 1
	var max uint64
	for t := range o.tailers {
		// t.pos is mutated only under o.mu (see Next/TryNext), so this
		// read is consistent.
		if t.pos <= last {
			if lag := last - t.pos + 1; lag > max {
				max = lag
			}
		}
	}
	return max
}

// firstSeq returns the oldest retained sequence (caller holds o.mu).
func (o *Oplog) firstSeqLocked() uint64 {
	if o.nextSeq-1 <= uint64(o.cap) {
		return 1
	}
	return o.nextSeq - uint64(o.cap)
}

// ErrTailerLagged is returned when a tailer's position has been overwritten.
var ErrTailerLagged = fmt.Errorf("storage: oplog tailer fell behind the capped log")

// Tailer streams after-images from a start position onward. Use Next to pull
// entries; it blocks until an entry is available or the tailer is closed.
type Tailer struct {
	log    *Oplog
	pos    uint64 // next sequence to deliver
	wake   chan struct{}
	closed chan struct{}
	once   sync.Once
}

// Tail opens a tailer starting after the given sequence number (0 streams
// the full retained log).
func (o *Oplog) Tail(afterSeq uint64) *Tailer {
	t := &Tailer{
		log:    o,
		pos:    afterSeq + 1,
		wake:   make(chan struct{}, 1),
		closed: make(chan struct{}),
	}
	o.mu.Lock()
	o.tailers[t] = struct{}{}
	o.mu.Unlock()
	return t
}

func (t *Tailer) notify() {
	select {
	case t.wake <- struct{}{}:
	default:
	}
}

// Next returns the next after-image in commit order. It blocks until one is
// available. It returns ErrTailerLagged when the capped log overwrote the
// tailer's position, and a nil after-image with nil error when the tailer is
// closed.
func (t *Tailer) Next() (*document.AfterImage, error) {
	for {
		t.log.mu.Lock()
		first := t.log.firstSeqLocked()
		last := t.log.nextSeq - 1
		if t.pos < first {
			t.log.mu.Unlock()
			return nil, fmt.Errorf("%w: at %d, oldest retained %d", ErrTailerLagged, t.pos, first)
		}
		if t.pos <= last {
			ai := t.log.ring[int(t.pos-1)%t.log.cap]
			t.pos++
			t.log.mu.Unlock()
			return ai, nil
		}
		t.log.mu.Unlock()
		select {
		case <-t.wake:
		case <-t.closed:
			return nil, nil
		}
	}
}

// TryNext is the non-blocking variant of Next: ok reports whether an entry
// was available.
func (t *Tailer) TryNext() (ai *document.AfterImage, ok bool, err error) {
	t.log.mu.Lock()
	defer t.log.mu.Unlock()
	first := t.log.firstSeqLocked()
	last := t.log.nextSeq - 1
	if t.pos < first {
		return nil, false, fmt.Errorf("%w: at %d, oldest retained %d", ErrTailerLagged, t.pos, first)
	}
	if t.pos > last {
		return nil, false, nil
	}
	ai = t.log.ring[int(t.pos-1)%t.log.cap]
	t.pos++
	return ai, true, nil
}

// Close detaches the tailer; a blocked Next returns nil, nil.
func (t *Tailer) Close() {
	t.once.Do(func() {
		close(t.closed)
		t.log.mu.Lock()
		delete(t.log.tailers, t)
		t.log.mu.Unlock()
	})
}
