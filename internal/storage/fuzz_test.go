package storage

import (
	"encoding/json"
	"reflect"
	"testing"

	"invalidb/internal/document"
)

// FuzzApplyUpdate drives the MongoDB-style update engine with arbitrary
// document and update JSON. Invariants:
//
//   - applyUpdate rejects bad updates with an error, never a panic;
//   - a successful result stays JSON-encodable (after-images travel the
//     wire to matching nodes);
//   - a replacement update (no $-operators) yields exactly the replacement
//     document, and as a copy — mutating the result must not alias the
//     caller's update map;
//   - single-operator single-path updates are deterministic (multi-entry
//     updates iterate Go maps, so their apply order is unspecified;
//     $currentDate reads the wall clock — both are excluded).
func FuzzApplyUpdate(f *testing.F) {
	seeds := []struct{ doc, update string }{
		{`{"_id":"k","n":1}`, `{"$set":{"n":2}}`},
		{`{"_id":"k","n":1}`, `{"$inc":{"n":5}}`},
		{`{"_id":"k","n":2}`, `{"$mul":{"n":3}}`},
		{`{"_id":"k","n":2}`, `{"$min":{"n":1}}`},
		{`{"_id":"k","n":2}`, `{"$max":{"m":9}}`},
		{`{"_id":"k"}`, `{"$push":{"tags":"x"}}`},
		{`{"_id":"k","tags":["x"]}`, `{"$push":{"tags":{"$each":["y","z"]}}}`},
		{`{"_id":"k","tags":["x"]}`, `{"$addToSet":{"tags":"x"}}`},
		{`{"_id":"k","tags":["x","y"]}`, `{"$pull":{"tags":"x"}}`},
		{`{"_id":"k","tags":["x","y"]}`, `{"$pop":{"tags":1}}`},
		{`{"_id":"k","a":{"b":1}}`, `{"$unset":{"a.b":""}}`},
		{`{"_id":"k","a":1}`, `{"$rename":{"a":"b"}}`},
		{`{"_id":"k","a":1}`, `{"name":"replacement"}`},
		{`{"_id":"k"}`, `{"$set":{"a.b.c":[1,{"d":2}]}}`},
	}
	for _, s := range seeds {
		f.Add([]byte(s.doc), []byte(s.update))
	}
	f.Fuzz(func(t *testing.T, docJSON, updateJSON []byte) {
		var rawDoc map[string]any
		if err := json.Unmarshal(docJSON, &rawDoc); err != nil {
			t.Skip()
		}
		var rawUpdate map[string]any
		if err := json.Unmarshal(updateJSON, &rawUpdate); err != nil {
			t.Skip()
		}
		got, err := applyUpdate(document.Document(rawDoc).Clone(), rawUpdate)
		if err != nil {
			return // rejected is fine; panicking is not
		}
		if _, err := json.Marshal(got); err != nil {
			t.Fatalf("updated document not JSON-encodable: %v", err)
		}
		if !hasUpdateOperator(rawUpdate) {
			if !reflect.DeepEqual(map[string]any(got), rawUpdate) {
				t.Fatalf("replacement update did not replace: got %v want %v", got, rawUpdate)
			}
			return
		}
		if deterministicUpdate(rawUpdate) {
			again, err := applyUpdate(document.Document(rawDoc).Clone(), rawUpdate)
			if err != nil {
				t.Fatalf("update succeeded once then failed: %v", err)
			}
			if !reflect.DeepEqual(got, again) {
				t.Fatalf("update not deterministic: %v vs %v", got, again)
			}
		}
	})
}

// deterministicUpdate reports whether the update has a single operator with
// a single path and does not read the clock — the subset whose result is
// independent of map iteration order and wall time.
func deterministicUpdate(update map[string]any) bool {
	if len(update) != 1 {
		return false
	}
	for op, rawArgs := range update {
		if op == "$currentDate" {
			return false
		}
		args, ok := rawArgs.(map[string]any)
		if !ok || len(args) > 1 {
			return false
		}
	}
	return true
}
