package appserver

import (
	"fmt"

	"invalidb/internal/core"
)

// This file is the application-server side of a live grid resize (DESIGN.md
// §13). The coordinator publishes partition maps on the retained control
// topic; the server tracks the newest epoch, stamps it on every control
// envelope it publishes, and when a map moves a subscription's query row to
// a different process — or changes the write-partition count, which reshapes
// the row's columns — it migrates the subscription: the new owner is
// installed first (through a watermark-certified migration backfill for
// unsorted backfill-enabled subscriptions, through a fresh bootstrap
// subscribe otherwise), and only then is the old install cancelled, stamped
// with the OLD epoch so the teardown cannot touch the new install. Clients
// see no gap: while both owners notify, the per-key version guard and the
// per-origin sequence dedup swallow the overlap's duplicates.

// placement records where one subscription's query row lived when the
// subscription was last installed: the owning node and process-local slot
// under a map epoch, plus the write-partition count that shaped the row.
// known stays false until the first partition map arrives; static
// single-process clusters never set it and every envelope carries epoch
// zero ("current").
type placement struct {
	epoch uint64
	node  string
	slot  int
	wp    int
	known bool
}

// placeFor computes the placement of a query hash under a map.
func placeFor(m *core.PartitionMap, hash uint64) placement {
	ra := m.Rows[m.Row(hash)]
	//invalidb:allow epochcapture placement deliberately records install-time wp so moved() can detect reshapes against it
	return placement{epoch: m.Epoch, node: ra.Node, slot: ra.Slot, wp: m.WritePartitions, known: true}
}

// moved reports whether moving from p to np requires a re-install: the row
// changed hands (node or slot), the row's column count changed, or the old
// placement was never known.
func (p placement) moved(np placement) bool {
	return !p.known || p.node != np.node || p.slot != np.slot || p.wp != np.wp
}

// sameOwner reports whether both placements name the same process-local
// row, in which case a Cancel addressed to the old install would destroy
// the new one and must be skipped.
func (p placement) sameOwner(np placement) bool {
	return p.known && p.node == np.node && p.slot == np.slot
}

// currentMap returns the newest partition map received on the control
// topic, nil before the first one (static clusters stay nil forever).
func (s *Server) currentMap() *core.PartitionMap {
	s.pmMu.Lock()
	defer s.pmMu.Unlock()
	return s.pmap
}

// currentEpoch is the epoch stamped on envelopes not tied to one
// subscription's install (TTL extends).
func (s *Server) currentEpoch() uint64 {
	s.pmMu.Lock()
	defer s.pmMu.Unlock()
	if s.pmap == nil {
		return 0
	}
	return s.pmap.Epoch
}

// handleMap adopts a coordinator map (newer epochs only) and kicks the
// migration loop. Runs on the notification loop, so it must not block.
func (s *Server) handleMap(m *core.PartitionMap) {
	s.pmMu.Lock()
	if s.pmap != nil && m.Epoch <= s.pmap.Epoch {
		s.pmMu.Unlock()
		return
	}
	s.pmap = m
	s.pmMu.Unlock()
	select {
	case s.mapKick <- struct{}{}:
	default: // a sweep is already pending; it reads the newest map
	}
}

// migrationLoop serializes placement sweeps so two map epochs arriving in
// quick succession cannot migrate the same subscription concurrently.
func (s *Server) migrationLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.done:
			return
		case <-s.mapKick:
			s.migrateAll()
		}
	}
}

// migrateAll re-places every subscription under the newest map.
func (s *Server) migrateAll() {
	m := s.currentMap()
	if m == nil {
		return
	}
	for _, sub := range s.snapshotSubs() {
		sub.mu.Lock()
		closed, backfilling := sub.closed, sub.backfilling
		old := sub.place
		sub.mu.Unlock()
		if closed {
			continue
		}
		if backfilling {
			// The initial backfill is still assembling the result; its
			// driver re-checks placement at admission and migrates then.
			continue
		}
		np := placeFor(m, sub.hash)
		if !old.moved(np) {
			// Owner unchanged: adopt the epoch, nothing to move.
			sub.setPlace(np)
			continue
		}
		s.migrateSub(sub, old, np)
	}
}

// migrateSub re-installs one subscription under a new placement and tears
// down the old install.
//
// Unsorted subscriptions with backfill enabled migrate through the
// watermark-certified backfill: only the window bracketing each chunk read
// is replayed on the new owner, the old owner keeps notifying until the
// cutover, and the overlap's duplicates are dropped by the per-key version
// guard. Everything else (ordered queries, monolithic bootstrap) migrates
// renewal-style with a fresh bootstrap subscribe; ordered windows cannot
// compose diffs from two origins at once, so there the old install is torn
// down before the new one is published and the fresh result covers the gap.
func (s *Server) migrateSub(sub *Subscription, old, np placement) {
	s.mMigrations.Inc()
	if s.opts.Backfill && !sub.ordered {
		err := s.runBackfill(sub, np.epoch, true)
		if err == nil {
			sub.setPlace(np)
			if old.known && !old.sameOwner(np) {
				s.cancelAt(sub, old.epoch)
			}
			return
		}
		if err == errBackfillAborted {
			return
		}
		// Fall through to the bootstrap path: a failed migration backfill
		// (e.g. the new owner restarted mid-migration) still needs the row
		// installed somewhere.
	}
	if sub.ordered && old.known && !old.sameOwner(np) {
		s.cancelAt(sub, old.epoch)
	}
	sub.mu.Lock()
	slack := sub.slack
	sub.mu.Unlock()
	entries, err := s.bootstrapResult(sub.q, slack)
	if err != nil {
		sub.fail(fmt.Errorf("appserver: migration failed: %w", err))
		return
	}
	sub.setPlace(np)
	if err := s.publishSubscribe(sub, entries); err != nil {
		sub.fail(fmt.Errorf("appserver: migration failed: %w", err))
		return
	}
	if !sub.ordered && old.known && !old.sameOwner(np) {
		s.cancelAt(sub, old.epoch)
	}
}
