// Package appserver implements the InvaliDB client (paper Figure 1): the
// lightweight process on the application server that brokers between end
// users, the pull-based database, and the InvaliDB cluster. It executes
// writes through FindAndModify and forwards the after-images to the cluster,
// runs initial queries (rewriting sorted queries with slack, §5.2),
// subscribes and renews real-time queries, extends TTLs, watches heartbeats,
// and fans change notifications out to end-user subscriptions.
package appserver

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"invalidb/internal/core"
	"invalidb/internal/document"
	"invalidb/internal/eventlayer"
	"invalidb/internal/metrics"
	"invalidb/internal/query"
	"invalidb/internal/ratelimit"
	"invalidb/internal/storage"
)

// Options configures an application server.
type Options struct {
	// Tenant identifies this application within the multi-tenant cluster.
	// Default "default".
	Tenant string
	// Namespace must match the cluster's event-layer namespace.
	Namespace string
	// Slack is the number of items fetched beyond the limit of sorted
	// queries (§5.2). Default 3.
	Slack int
	// MaxSlack caps the adaptive slack growth applied on query renewals.
	// Default 64.
	MaxSlack int
	// TTL is the subscription time-to-live registered with the cluster.
	// Default 30s.
	TTL time.Duration
	// ExtendInterval is the TTL-extension cadence. Default TTL/3.
	ExtendInterval time.Duration
	// HeartbeatTimeout marks the server disconnected when no cluster
	// heartbeat arrives for this long (§5.1): every subscription receives a
	// single EventDisconnected but stays alive, and when heartbeats resume
	// the server automatically re-subscribes each query, surfacing one
	// EventReconnected with the refreshed result. Default 5s. Negative
	// disables the watchdog.
	HeartbeatTimeout time.Duration
	// RenewalMinInterval is the poll frequency rate limit (§5.2): at most
	// one query renewal per query per interval, keeping the renewal load on
	// the database predictable. Default 100ms.
	RenewalMinInterval time.Duration
	// EventBuffer is the per-subscription event queue length. Default 1024.
	EventBuffer int
	// Backfill switches unsorted subscriptions from the monolithic bootstrap
	// (one FindEntries over the full result, shipped in a single subscribe
	// request) to the incremental watermark-certified backfill (DESIGN.md
	// §12): the initial result is read in chunks bracketed by watermarks,
	// each chunk is certified by every cell of the query's row, and the
	// subscription is admitted — EventInitial delivered — only after the
	// final cut is certified. Ordered queries always use the legacy path
	// (the sorting stage needs the full result at install time).
	Backfill bool
	// BackfillChunkSize is the per-chunk key budget. Default 256.
	BackfillChunkSize int
	// BackfillChunkTimeout bounds the wait for a chunk's certificates before
	// the chunk is re-read and re-sent under a fresh watermark window.
	// Default 2s.
	BackfillChunkTimeout time.Duration
	// WriteCapacity throttles the server's write path to this many
	// operations per second (0 = unlimited). It models the per-server CPU
	// budget the paper's Quaestor evaluation measured: a single application
	// server topped out near 6 000 ops/s regardless of cluster capacity
	// (§7.3, Figure 6b).
	WriteCapacity int
	// WriteBurst overrides the write limiter's burst allowance in
	// operations; zero selects ratelimit's default (5% of WriteCapacity).
	WriteBurst float64
	// Metrics receives the server's counters, gauges, and the per-stage
	// latency recorders fed by notification stage timestamps. Nil creates
	// a private registry; read it back via Server.Metrics.
	Metrics *metrics.Registry
}

func (o Options) withDefaults() Options {
	if o.Tenant == "" {
		o.Tenant = "default"
	}
	if o.Slack <= 0 {
		o.Slack = 3
	}
	if o.MaxSlack <= 0 {
		o.MaxSlack = 64
	}
	if o.TTL <= 0 {
		o.TTL = 30 * time.Second
	}
	if o.ExtendInterval <= 0 {
		o.ExtendInterval = o.TTL / 3
	}
	if o.HeartbeatTimeout == 0 {
		o.HeartbeatTimeout = 5 * time.Second
	}
	if o.RenewalMinInterval <= 0 {
		o.RenewalMinInterval = 100 * time.Millisecond
	}
	if o.EventBuffer <= 0 {
		o.EventBuffer = 1024
	}
	if o.BackfillChunkSize <= 0 {
		o.BackfillChunkSize = 256
	}
	if o.BackfillChunkTimeout <= 0 {
		o.BackfillChunkTimeout = 2 * time.Second
	}
	return o
}

// Server is one application server instance. Many servers can share one
// cluster (multi-tenancy) and one server can hold many end-user
// subscriptions over a single notification-topic subscription, mirroring the
// single WebSocket connection per server at Baqend (§7.2).
type Server struct {
	db     *storage.DB
	bus    eventlayer.Bus
	opts   Options
	topics core.Topics

	mu         sync.Mutex
	subsByID   map[string]*Subscription
	subsByHash map[uint64]map[string]*Subscription
	renewals   map[uint64]time.Time // per-query poll rate limit
	closed     bool

	notifSub  eventlayer.Subscription
	lastHB    time.Time
	connected bool // false while the cluster heartbeat is overdue
	hbMu      sync.Mutex

	// pmap is the newest partition map from the coordinator's retained
	// control topic (nil in static clusters); mapKick wakes the migration
	// loop after a map with a higher epoch is adopted.
	pmMu    sync.Mutex
	pmap    *core.PartitionMap
	mapKick chan struct{}

	done chan struct{}
	wg   sync.WaitGroup

	rngMu sync.Mutex
	rng   *rand.Rand

	writeBucket *ratelimit.Bucket
	renewalsCtr atomic.Uint64
	reconnects  atomic.Uint64
	resubBusy   atomic.Bool

	// bfCerts routes backfill certificates from the notification loop to the
	// per-backfill driver goroutines; backfillActive counts in-flight
	// backfills (the backfill.active gauge).
	bfMu           sync.Mutex
	bfCerts        map[string]chan *core.BackfillCert
	backfillActive atomic.Int64

	// metrics instruments this server; hot-path counters are resolved once
	// here so the per-event cost is one atomic add.
	metrics     *metrics.Registry
	mWrites     *metrics.Int // after-images forwarded to the cluster
	mNotifs     *metrics.Int // notifications dispatched to subscriptions
	mDedupDrops *metrics.Int // notifications dropped by seq/version dedup
	mEventDrops *metrics.Int // events dropped on slow subscription consumers
	mResubs     *metrics.Int // re-subscriptions published (failover recovery)
	// mResubBackoff counts backoff sleeps taken while retrying a failed
	// re-subscription publish; mBackfillRetries counts chunk re-sends after
	// a certificate timeout; mMigrations counts subscriptions re-installed
	// because a partition-map epoch moved their query row.
	mResubBackoff    *metrics.Int
	mBackfillRetries *metrics.Int
	mMigrations      *metrics.Int
}

// New creates an application server over a database and the cluster's event
// layer and starts its background loops.
func New(db *storage.DB, bus eventlayer.Bus, opts Options) (*Server, error) {
	if db == nil || bus == nil {
		return nil, fmt.Errorf("appserver: nil database or event layer")
	}
	opts = opts.withDefaults()
	reg := opts.Metrics
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	s := &Server{
		db:          db,
		bus:         bus,
		opts:        opts,
		topics:      core.NewTopics(opts.Namespace),
		subsByID:    map[string]*Subscription{},
		subsByHash:  map[uint64]map[string]*Subscription{},
		renewals:    map[uint64]time.Time{},
		lastHB:      time.Now(),
		connected:   true,
		mapKick:     make(chan struct{}, 1),
		done:        make(chan struct{}),
		rng:         rand.New(rand.NewSource(time.Now().UnixNano())),
		metrics:     reg,
		mWrites:     reg.Counter("appserver.writes"),
		mNotifs:     reg.Counter("appserver.notifications"),
		mDedupDrops: reg.Counter("appserver.dedup_drops"),
		mEventDrops: reg.Counter("appserver.event_drops"),
		mResubs:     reg.Counter("appserver.resubscribes"),

		bfCerts:          map[string]chan *core.BackfillCert{},
		mResubBackoff:    reg.Counter("appserver.resubscribe.backoff"),
		mBackfillRetries: reg.Counter("backfill.retries"),
		mMigrations:      reg.Counter("appserver.migrations"),
	}
	core.RegisterWireMetrics(reg)
	reg.Gauge("appserver.subscriptions", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(len(s.subsByID))
	})
	reg.Gauge("appserver.connected", func() float64 {
		if s.Connected() {
			return 1
		}
		return 0
	})
	reg.Gauge("appserver.renewals", func() float64 { return float64(s.renewalsCtr.Load()) })
	reg.Gauge("appserver.reconnects", func() float64 { return float64(s.reconnects.Load()) })
	reg.Gauge("backfill.active", func() float64 { return float64(s.backfillActive.Load()) })
	reg.Gauge("appserver.epoch", func() float64 { return float64(s.currentEpoch()) })
	if opts.WriteCapacity > 0 {
		s.writeBucket = ratelimit.New(float64(opts.WriteCapacity), opts.WriteBurst)
	}
	// The control topic is retained, so a server that starts after the
	// coordinator published the current partition map still learns it here.
	sub, err := bus.Subscribe(s.topics.Notify(opts.Tenant), s.topics.Control())
	if err != nil {
		return nil, fmt.Errorf("appserver: subscribe notifications: %w", err)
	}
	s.notifSub = sub
	s.wg.Add(3)
	go s.notifLoop()
	go s.maintenanceLoop()
	go s.migrationLoop()
	return s, nil
}

// Tenant returns the server's tenant id.
func (s *Server) Tenant() string { return s.opts.Tenant }

// DB exposes the underlying pull-based database.
func (s *Server) DB() *storage.DB { return s.db }

// Close cancels all subscriptions and stops background loops. The database
// stays usable: the pull-based path does not depend on InvaliDB (isolated
// failure domains, §5).
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	subs := make([]*Subscription, 0, len(s.subsByID))
	for _, sub := range s.subsByID {
		subs = append(subs, sub)
	}
	s.mu.Unlock()
	for _, sub := range subs {
		_ = sub.Close()
	}
	close(s.done)
	_ = s.notifSub.Close()
	s.wg.Wait()
	return nil
}

// --- Write path -----------------------------------------------------------

// forward ships an after-image to the cluster (§5.4: the after-image
// returned by FindAndModify is simply forwarded).
func (s *Server) forward(ai *document.AfterImage) error {
	if s.writeBucket != nil {
		s.writeBucket.Take(1)
	}
	env := &core.Envelope{Kind: core.KindWrite, Write: &core.WriteEvent{
		Tenant: s.opts.Tenant,
		Image:  ai,
		SentNs: time.Now().UnixNano(),
	}}
	data, err := env.Encode()
	if err != nil {
		return err
	}
	s.mWrites.Inc()
	return s.bus.Publish(s.topics.Writes(), data)
}

// Insert stores a new document and notifies the cluster.
func (s *Server) Insert(collection string, doc document.Document) error {
	ai, err := s.db.C(collection).Insert(doc)
	if err != nil {
		return err
	}
	return s.forward(ai)
}

// Update applies a MongoDB update document via FindAndModify and notifies
// the cluster.
func (s *Server) Update(collection, key string, update map[string]any) error {
	ai, err := s.db.C(collection).FindAndModify(key, update, false)
	if err != nil {
		return err
	}
	return s.forward(ai)
}

// Upsert is Update with insert-on-missing semantics.
func (s *Server) Upsert(collection, key string, update map[string]any) error {
	ai, err := s.db.C(collection).FindAndModify(key, update, true)
	if err != nil {
		return err
	}
	return s.forward(ai)
}

// Replace overwrites a document wholesale and notifies the cluster.
func (s *Server) Replace(collection, key string, doc document.Document) error {
	ai, err := s.db.C(collection).Replace(key, doc)
	if err != nil {
		return err
	}
	return s.forward(ai)
}

// Delete removes a document; the forwarded after-image is null (§5.4).
func (s *Server) Delete(collection, key string) error {
	ai, err := s.db.C(collection).Delete(key)
	if err != nil {
		return err
	}
	return s.forward(ai)
}

// --- Pull-based queries ----------------------------------------------------

// Query executes a pull-based query against the database.
func (s *Server) Query(spec query.Spec) ([]document.Document, error) {
	q, err := query.Compile(spec)
	if err != nil {
		return nil, err
	}
	return s.db.C(q.Collection).Find(q)
}

// --- Subscriptions ----------------------------------------------------------

// QueryHash compiles spec and returns its tenant-scoped fixed64 hash — the
// key subscriptions are registered under with the cluster, and therefore
// the key under which the gateway dedupes client subscriptions onto one
// upstream Subscription per distinct query.
func (s *Server) QueryHash(spec query.Spec) (uint64, error) {
	q, err := query.Compile(spec)
	if err != nil {
		return 0, err
	}
	return core.TenantQueryHash(s.opts.Tenant, q), nil
}

func (s *Server) newSubscriptionID() string {
	s.rngMu.Lock()
	defer s.rngMu.Unlock()
	return fmt.Sprintf("s%08x%08x", s.rng.Uint32(), s.rng.Uint32())
}

// Subscribe activates a push-based real-time query: it executes the
// (rewritten) query for the initial result, registers the query with the
// cluster, and returns a Subscription streaming the initial result followed
// by incremental change events.
func (s *Server) Subscribe(spec query.Spec) (*Subscription, error) {
	q, err := query.Compile(spec)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil, fmt.Errorf("appserver: server closed")
	}
	s.mu.Unlock()

	hash := core.TenantQueryHash(s.opts.Tenant, q)
	sub := &Subscription{
		server:   s,
		id:       s.newSubscriptionID(),
		q:        q,
		hash:     hash,
		ordered: q.Ordered(),
		slack:   s.opts.Slack,
		docs:    map[string]document.Document{},
		events:  make(chan Event, s.opts.EventBuffer),
	}
	if m := s.currentMap(); m != nil {
		sub.place = placeFor(m, hash)
	}

	if s.opts.Backfill && !sub.ordered {
		// Watermark-certified backfill (DESIGN.md §12): the subscription is
		// attached (so live deltas fold into its state from the first chunk
		// on) but not admitted — EventInitial arrives once every chunk of
		// the initial result is certified by the full query row.
		sub.backfilling = true
		s.attach(sub)
		s.wg.Add(1)
		go s.backfillLoop(sub)
		return sub, nil
	}

	entries, err := s.bootstrapResult(q, sub.slack)
	if err != nil {
		return nil, err
	}

	// Register locally before the cluster sees the query so no notification
	// can race past the routing table.
	s.attach(sub)

	if err := s.publishSubscribe(sub, entries); err != nil {
		s.detach(sub)
		return nil, err
	}
	sub.installInitial(entries)
	return sub, nil
}

// attach registers a subscription in the routing tables.
func (s *Server) attach(sub *Subscription) {
	s.mu.Lock()
	s.subsByID[sub.id] = sub
	byHash := s.subsByHash[sub.hash]
	if byHash == nil {
		byHash = map[string]*Subscription{}
		s.subsByHash[sub.hash] = byHash
	}
	byHash[sub.id] = sub
	s.mu.Unlock()
}

// bootstrapResult executes the rewritten query (§5.2) and returns its
// versioned entries in engine order.
func (s *Server) bootstrapResult(q *query.Query, slack int) ([]core.ResultEntry, error) {
	rewritten := q.Rewritten(slack)
	rows, err := s.db.C(q.Collection).FindEntries(rewritten)
	if err != nil {
		return nil, err
	}
	entries := make([]core.ResultEntry, len(rows))
	for i, r := range rows {
		entries[i] = core.ResultEntry{Key: r.Key, Version: r.Version, Doc: r.Doc}
	}
	return entries, nil
}

func (s *Server) publishSubscribe(sub *Subscription, entries []core.ResultEntry) error {
	env := &core.Envelope{Kind: core.KindSubscribe, Subscribe: &core.SubscribeRequest{
		Tenant:         s.opts.Tenant,
		SubscriptionID: sub.id,
		Query:          sub.q.Spec(),
		Slack:          sub.slack,
		TTLMillis:      s.opts.TTL.Milliseconds(),
		Result:         entries,
		Epoch:          sub.epoch(),
	}}
	data, err := env.Encode()
	if err != nil {
		return err
	}
	return s.bus.Publish(s.topics.Queries(), data)
}

// detach removes a subscription from the routing tables.
func (s *Server) detach(sub *Subscription) {
	s.mu.Lock()
	delete(s.subsByID, sub.id)
	if byHash := s.subsByHash[sub.hash]; byHash != nil {
		delete(byHash, sub.id)
		if len(byHash) == 0 {
			delete(s.subsByHash, sub.hash)
		}
	}
	s.mu.Unlock()
}

// cancel publishes the cancellation with the remembered query hash (§5.1),
// addressed at the epoch the subscription is currently installed under.
func (s *Server) cancel(sub *Subscription) {
	s.cancelAt(sub, sub.epoch())
}

// cancelAt publishes a cancellation stamped with an explicit map epoch, so
// a migration can tear down the OLD owner's install without touching the
// new one.
func (s *Server) cancelAt(sub *Subscription, epoch uint64) {
	env := &core.Envelope{Kind: core.KindCancel, Cancel: &core.CancelRequest{
		Tenant:         s.opts.Tenant,
		SubscriptionID: sub.id,
		QueryHash:      sub.hash,
		Epoch:          epoch,
	}}
	if data, err := env.Encode(); err == nil {
		_ = s.bus.Publish(s.topics.Queries(), data)
	}
}

// --- Background loops -------------------------------------------------------

func (s *Server) notifLoop() {
	defer s.wg.Done()
	for {
		select {
		case <-s.done:
			return
		case msg, ok := <-s.notifSub.C():
			if !ok {
				return
			}
			env, err := core.DecodeEnvelope(msg.Payload)
			if err != nil {
				continue
			}
			switch env.Kind {
			case core.KindHeartbeat:
				s.hbMu.Lock()
				s.lastHB = time.Now()
				wasDown := !s.connected
				s.connected = true
				s.hbMu.Unlock()
				if wasDown {
					// Heartbeats resumed after an outage: the cluster may
					// have lost this server's queries, so re-subscribe every
					// active query (a renewal for queries that survived).
					s.reconnects.Add(1)
					s.wg.Add(1)
					go func() {
						defer s.wg.Done()
						s.resubscribeAll()
					}()
				}
			case core.KindNotification:
				s.dispatch(env.Notification)
			case core.KindBackfillCert:
				s.routeBackfillCert(env.BackfillCert)
			case core.KindPartitionMap:
				s.handleMap(env.Map)
			}
		}
	}
}

func (s *Server) dispatch(n *core.Notification) {
	recvNs := time.Now().UnixNano()
	hash, ok := core.ParseQueryID(n.QueryID)
	if !ok {
		return
	}
	s.mu.Lock()
	var subs []*Subscription
	for _, sub := range s.subsByHash[hash] {
		subs = append(subs, sub)
	}
	s.mu.Unlock()
	if len(subs) == 0 {
		return
	}
	if n.Type == core.MatchError {
		// Query maintenance error: a renewal request (§5.2). Renew once for
		// the query, transparently to subscribers.
		s.renew(hash, subs[0])
		return
	}
	s.mNotifs.Inc()
	for _, sub := range subs {
		sub.apply(n)
	}
	// Close the trace: each stage is the gap between adjacent stamps, with
	// this server contributing the receive→delivery tail.
	s.metrics.RecordStages(n.WriteNs, n.IngestNs, n.MatchNs, recvNs, time.Now().UnixNano())
}

// renew re-executes the rewritten query and re-subscribes, subject to the
// poll frequency rate limit that keeps renewal load on the database
// predictable and configurable (§5.2).
func (s *Server) renew(hash uint64, sub *Subscription) {
	now := time.Now()
	s.mu.Lock()
	if last, ok := s.renewals[hash]; ok && now.Sub(last) < s.opts.RenewalMinInterval {
		s.mu.Unlock()
		return
	}
	s.renewals[hash] = now
	s.mu.Unlock()
	s.renewalsCtr.Add(1)

	// Adapt the slack upward (§5.2 footnote: a higher slack value increases
	// robustness against deletes on reexecution).
	sub.mu.Lock()
	if sub.slack < s.opts.MaxSlack {
		sub.slack *= 2
		if sub.slack > s.opts.MaxSlack {
			sub.slack = s.opts.MaxSlack
		}
	}
	slack := sub.slack
	sub.mu.Unlock()

	entries, err := s.bootstrapResult(sub.q, slack)
	if err != nil {
		sub.fail(fmt.Errorf("appserver: query renewal failed: %w", err))
		return
	}
	if err := s.publishSubscribe(sub, entries); err != nil {
		sub.fail(fmt.Errorf("appserver: query renewal failed: %w", err))
	}
}

// Renewals reports how many query renewals this server has executed — the
// pull-query load the poll frequency rate limit bounds (§5.2).
func (s *Server) Renewals() uint64 { return s.renewalsCtr.Load() }

// maintenanceLoop extends TTLs and watches heartbeats.
func (s *Server) maintenanceLoop() {
	defer s.wg.Done()
	extend := time.NewTicker(s.opts.ExtendInterval)
	defer extend.Stop()
	// Check the heartbeat a few times per timeout so short timeouts (tests,
	// aggressive deployments) are detected promptly.
	interval := 500 * time.Millisecond
	if s.opts.HeartbeatTimeout > 0 && s.opts.HeartbeatTimeout/4 < interval {
		interval = s.opts.HeartbeatTimeout / 4
	}
	if interval < 10*time.Millisecond {
		interval = 10 * time.Millisecond
	}
	hbCheck := time.NewTicker(interval)
	defer hbCheck.Stop()
	for {
		select {
		case <-s.done:
			return
		case <-extend.C:
			s.extendAll()
		case <-hbCheck.C:
			if s.opts.HeartbeatTimeout < 0 {
				continue
			}
			s.hbMu.Lock()
			stale := time.Since(s.lastHB) > s.opts.HeartbeatTimeout
			firstGap := stale && s.connected
			if firstGap {
				s.connected = false
			}
			s.hbMu.Unlock()
			if firstGap {
				s.disconnectAll(fmt.Errorf("appserver: cluster heartbeat timed out"))
			}
		}
	}
}

func (s *Server) extendAll() {
	s.mu.Lock()
	subs := make([]*Subscription, 0, len(s.subsByID))
	for _, sub := range s.subsByID {
		subs = append(subs, sub)
	}
	s.mu.Unlock()
	for _, sub := range subs {
		env := &core.Envelope{Kind: core.KindExtend, Extend: &core.ExtendRequest{
			Tenant:         s.opts.Tenant,
			SubscriptionID: sub.id,
			QueryHash:      sub.hash,
			TTLMillis:      s.opts.TTL.Milliseconds(),
			Epoch:          s.currentEpoch(),
		}}
		if data, err := env.Encode(); err == nil {
			_ = s.bus.Publish(s.topics.Queries(), data)
		}
	}
}

// disconnectAll pushes a single EventDisconnected to every subscription.
// Subscriptions stay alive: unlike terminating them outright, the outage is
// survivable — once heartbeats resume, resubscribeAll restores every
// delivery stream and clients never have to rebuild their state machinery
// (§5.1: clients may fall back to pull-based queries in the meantime).
func (s *Server) disconnectAll(err error) {
	for _, sub := range s.snapshotSubs() {
		sub.disconnect(err)
	}
}

// resubscribeAll re-bootstraps and re-subscribes every active subscription,
// then resets each with the refreshed result (EventReconnected). For queries
// the cluster still maintains, the re-subscription is an ordinary renewal;
// for queries it lost (e.g. after a failover or TTL expiry during the
// outage), it is a fresh activation. Concurrent invocations coalesce.
func (s *Server) resubscribeAll() {
	if !s.resubBusy.CompareAndSwap(false, true) {
		return
	}
	defer s.resubBusy.Store(false)
	for _, sub := range s.snapshotSubs() {
		sub.mu.Lock()
		slack := sub.slack
		closed := sub.closed
		backfilling := sub.backfilling
		sub.mu.Unlock()
		if closed {
			continue
		}
		if backfilling {
			// A backfill is in flight: its driver recovers on its own (chunk
			// timeouts, restart certificates); a monolithic re-bootstrap here
			// would race the incremental admission.
			continue
		}
		// The outage may have hidden one or more map epochs; re-place the
		// subscription under the newest map so the re-subscription installs
		// on the current owner.
		if m := s.currentMap(); m != nil {
			sub.setPlace(placeFor(m, sub.hash))
		}
		entries, err := s.bootstrapResult(sub.q, slack)
		if err != nil {
			// A failed bootstrap query is terminal: the local database is
			// broken, retrying against it buys nothing.
			sub.fail(fmt.Errorf("appserver: re-subscription failed: %w", err))
			continue
		}
		if err := s.publishSubscribeRetry(sub, entries); err != nil {
			sub.fail(fmt.Errorf("appserver: re-subscription failed: %w", err))
			continue
		}
		s.mResubs.Inc()
		sub.reset(entries)
	}
}

// publishSubscribeRetry publishes a re-subscription, retrying transient
// event-layer failures (the broker is the very component whose outage
// triggered the recovery) with jittered exponential backoff capped at the
// heartbeat watchdog interval. Each backoff sleep is counted on
// appserver.resubscribe.backoff; retries stop when the subscription or the
// server closes.
func (s *Server) publishSubscribeRetry(sub *Subscription, entries []core.ResultEntry) error {
	err := s.publishSubscribe(sub, entries)
	maxDelay := s.opts.HeartbeatTimeout
	if maxDelay <= 0 {
		maxDelay = 5 * time.Second
	}
	for attempt := 0; err != nil; attempt++ {
		s.mResubBackoff.Inc()
		if !s.sleepInterruptible(s.jitteredBackoff(attempt, 25*time.Millisecond, maxDelay)) {
			return err
		}
		sub.mu.Lock()
		closed := sub.closed
		sub.mu.Unlock()
		if closed {
			return err
		}
		err = s.publishSubscribe(sub, entries)
	}
	return err
}

// jitteredBackoff returns base·2^attempt, capped at max, with ±25% jitter so
// a fleet of recovering subscriptions does not hammer the broker in
// lockstep.
func (s *Server) jitteredBackoff(attempt int, base, max time.Duration) time.Duration {
	d := base << uint(attempt)
	if d > max || d <= 0 {
		d = max
	}
	s.rngMu.Lock()
	jitter := time.Duration(s.rng.Int63n(int64(d)/2+1)) - d/4
	s.rngMu.Unlock()
	return d + jitter
}

// sleepInterruptible sleeps for d unless the server closes first, reporting
// whether the full sleep elapsed.
func (s *Server) sleepInterruptible(d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-s.done:
		return false
	case <-t.C:
		return true
	}
}

func (s *Server) snapshotSubs() []*Subscription {
	s.mu.Lock()
	subs := make([]*Subscription, 0, len(s.subsByID))
	for _, sub := range s.subsByID {
		subs = append(subs, sub)
	}
	s.mu.Unlock()
	return subs
}

// Resubscribe forces an immediate re-subscription of every active
// subscription, synchronously. It is the manual counterpart of the
// automatic post-outage recovery and is also useful after healing an
// event-layer partition that silently dropped subscribe requests.
func (s *Server) Resubscribe() { s.resubscribeAll() }

// Reconnects reports how many times the server has observed cluster
// heartbeats resume after an outage and triggered automatic re-subscription.
func (s *Server) Reconnects() uint64 { return s.reconnects.Load() }

// Connected reports whether cluster heartbeats are currently arriving
// within the configured timeout.
func (s *Server) Connected() bool {
	s.hbMu.Lock()
	defer s.hbMu.Unlock()
	return s.connected
}

// Metrics returns the server's registry (the Options.Metrics instance,
// or the private one created in its absence). Its stage recorders hold
// the per-stage latency breakdown of every notification delivered.
func (s *Server) Metrics() *metrics.Registry { return s.metrics }
