package appserver

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"invalidb/internal/core"
	"invalidb/internal/document"
	"invalidb/internal/query"
)

// EventType classifies subscription events delivered to end users.
type EventType uint8

const (
	// EventInitial carries the full initial query result; it is always the
	// first event of a subscription (paper §5: "the first notification
	// message for any real-time query contains the initial result").
	EventInitial EventType = iota + 1
	// EventAdd reports a new result member.
	EventAdd
	// EventChange reports an updated result member.
	EventChange
	// EventChangeIndex reports an updated member that changed position
	// (sorted queries only).
	EventChangeIndex
	// EventRemove reports a member that left the result.
	EventRemove
	// EventError terminates the subscription (e.g. a failed query renewal);
	// clients may re-subscribe or fall back to pull-based queries.
	EventError
	// EventDisconnected reports that cluster heartbeats stopped (§5.1). The
	// subscription stays alive; the server re-subscribes automatically once
	// heartbeats resume. Clients may fall back to pull-based queries in the
	// meantime.
	EventDisconnected
	// EventReconnected reports a completed automatic re-subscription after a
	// heartbeat outage. Docs carries the full refreshed result, superseding
	// every event delivered before the outage.
	EventReconnected
)

// String names the event type.
func (e EventType) String() string {
	switch e {
	case EventInitial:
		return "initial"
	case EventAdd:
		return "add"
	case EventChange:
		return "change"
	case EventChangeIndex:
		return "changeIndex"
	case EventRemove:
		return "remove"
	case EventError:
		return "error"
	case EventDisconnected:
		return "disconnected"
	case EventReconnected:
		return "reconnected"
	default:
		return fmt.Sprintf("EventType(%d)", uint8(e))
	}
}

// Event is one subscription update pushed to the end user.
type Event struct {
	Type EventType
	// Key and Doc describe the affected record (Doc is nil on removes).
	Key string
	Doc document.Document
	// Index is the record's position in the visible result for sorted
	// queries, -1 otherwise.
	Index int
	// Docs carries the full result for EventInitial.
	Docs []document.Document
	// Err is set for EventError.
	Err error
}

// Subscription is one end-user real-time query subscription. Events stream
// on C; Result returns the maintained current result at any time.
type Subscription struct {
	server  *Server
	id      string
	q       *query.Query
	hash    uint64
	ordered bool
	slack   int

	mu     sync.Mutex
	order  []string // visible window, in result order (sorted queries)
	docs   map[string]document.Document
	seen   map[string]*originState // per-origin notification dedup state
	vers   map[string]uint64       // per-key last applied version (unsorted)
	closed bool
	// backfilling is true while a backfill assembles the initial result:
	// notifications fold into the maintained state but no events reach the
	// client until admit() delivers EventInitial (DESIGN.md §12).
	backfilling bool
	// place is where the query row was last installed (node, slot, column
	// count, epoch); the migration loop compares it against new partition
	// maps to decide whether the subscription must move (DESIGN.md §13).
	place placement

	events  chan Event
	dropped atomic.Uint64
}

// originState tracks the notification sequence stream of one emitting node
// instance (Notification.Origin) so redelivered notifications can be
// suppressed. Origins embed the task incarnation, so a same-cluster restart
// opens a fresh stream instead of colliding with this one. Origins are NOT
// unique across activations, however: a replacement cluster's tasks start
// over at incarnation 0, and a query whose node state TTL-expired is
// recreated with a reset seq counter under the same origin string. That is
// why installLocked discards all origin state on every bootstrap — the
// bootstrap supersedes every prior delivery, so stale seq history must not
// gate the new stream.
type originState struct {
	last   uint64              // highest sequence number seen
	recent map[uint64]struct{} // seq numbers seen near last (pruned)
}

// ID returns the client-visible subscription identifier.
func (sub *Subscription) ID() string { return sub.id }

// Hash returns the tenant-scoped fixed64 query hash the subscription is
// registered under with the cluster. Two subscriptions to semantically
// identical queries share the hash, which is what makes it the dedup key
// for the gateway's shared fan-out engine.
func (sub *Subscription) Hash() uint64 { return sub.hash }

// epoch is the partition-map epoch the subscription is installed under,
// stamped on its control envelopes (zero = "current", static clusters).
func (sub *Subscription) epoch() uint64 {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	return sub.place.epoch
}

func (sub *Subscription) getPlace() placement {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	return sub.place
}

func (sub *Subscription) setPlace(p placement) {
	sub.mu.Lock()
	sub.place = p
	sub.mu.Unlock()
}

// Query returns the subscribed query.
func (sub *Subscription) Query() *query.Query { return sub.q }

// C streams subscription events. The channel closes when the subscription
// ends.
func (sub *Subscription) C() <-chan Event { return sub.events }

// Dropped reports events discarded because the consumer fell behind.
func (sub *Subscription) Dropped() uint64 { return sub.dropped.Load() }

// Close cancels the subscription with the cluster and closes the event
// stream.
func (sub *Subscription) Close() error {
	sub.mu.Lock()
	if sub.closed {
		sub.mu.Unlock()
		return nil
	}
	sub.closed = true
	close(sub.events)
	sub.mu.Unlock()
	sub.server.detach(sub)
	sub.server.cancel(sub)
	return nil
}

// Result returns the current maintained result: in window order for sorted
// queries, in primary-key order otherwise.
func (sub *Subscription) Result() []document.Document {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	if sub.ordered {
		out := make([]document.Document, 0, len(sub.order))
		for _, key := range sub.order {
			if d, ok := sub.docs[key]; ok {
				out = append(out, d)
			}
		}
		return out
	}
	keys := make([]string, 0, len(sub.docs))
	for k := range sub.docs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]document.Document, 0, len(keys))
	for _, k := range keys {
		out = append(out, sub.docs[k])
	}
	return out
}

// installInitial seeds the client-side state with the initial result and
// emits the EventInitial. For sorted queries the bootstrap entries cover the
// rewritten window; the visible result applies the original offset/limit.
func (sub *Subscription) installInitial(entries []core.ResultEntry) {
	sub.mu.Lock()
	docs := sub.installLocked(entries)
	sub.mu.Unlock()
	sub.push(Event{Type: EventInitial, Docs: docs, Index: -1})
}

// installLocked replaces the maintained state with a bootstrap result and
// returns the visible documents. Bootstrap versions are folded into the
// per-key version memory (never regressing it), so notifications older than
// the bootstrap stay suppressed. Per-origin seq dedup state is discarded:
// the bootstrap supersedes every prior delivery, and a re-subscription that
// is a fresh activation (replacement cluster, TTL-expired node state)
// restarts the same Origin's seq counter at zero — keeping the old history
// would silently drop the entire new stream. For unsorted queries a
// bootstrap row older than an already-applied notification does not regress
// the maintained document: the newer applied state wins (the cluster's
// retention replay of that newer image is dropped by staleLocked, so
// installing the older row would stick). Callers hold sub.mu.
func (sub *Subscription) installLocked(entries []core.ResultEntry) []document.Document {
	prev := sub.docs
	sub.docs = map[string]document.Document{}
	sub.order = nil
	sub.seen = nil
	if sub.vers == nil {
		sub.vers = map[string]uint64{}
	}
	for _, e := range entries {
		if e.Version > sub.vers[e.Key] {
			sub.vers[e.Key] = e.Version
		}
	}
	visible := entries
	if sub.ordered {
		start := sub.q.Offset
		if start > len(visible) {
			start = len(visible)
		}
		end := len(visible)
		if sub.q.Limit > 0 && start+sub.q.Limit < end {
			end = start + sub.q.Limit
		}
		visible = visible[start:end]
	}
	docs := make([]document.Document, 0, len(visible))
	for _, e := range visible {
		if !sub.ordered && sub.vers[e.Key] > e.Version {
			// A newer notification for this key was applied after the
			// bootstrap query ran. Keep its outcome: the maintained document
			// if the key survived, nothing if it was removed.
			if d, ok := prev[e.Key]; ok {
				sub.docs[e.Key] = d
				docs = append(docs, d)
			}
			continue
		}
		d := sub.q.Project(e.Doc)
		sub.docs[e.Key] = d
		if sub.ordered {
			sub.order = append(sub.order, e.Key)
		}
		docs = append(docs, d)
	}
	return docs
}

// reset replaces the maintained result after an automatic re-subscription
// and emits EventReconnected carrying the full refreshed result.
func (sub *Subscription) reset(entries []core.ResultEntry) {
	sub.mu.Lock()
	if sub.closed {
		sub.mu.Unlock()
		return
	}
	docs := sub.installLocked(entries)
	sub.mu.Unlock()
	sub.push(Event{Type: EventReconnected, Docs: docs, Index: -1})
}

// apply folds a cluster notification into the maintained result and emits
// the corresponding event. Sorted-query notifications follow the window-diff
// protocol: removes by key, then adds/changeIndexes at final indexes
// ascending, then in-place changes.
func (sub *Subscription) apply(n *core.Notification) {
	sub.mu.Lock()
	if sub.closed {
		sub.mu.Unlock()
		return
	}
	if !sub.freshLocked(n.Origin, n.Seq) || sub.staleLocked(n.Key, n.Version) {
		sub.mu.Unlock()
		sub.server.mDedupDrops.Inc()
		return
	}
	ev := Event{Key: n.Key, Doc: n.Doc, Index: n.Index}
	switch n.Type {
	case core.MatchAdd:
		ev.Type = EventAdd
		sub.docs[n.Key] = n.Doc
		if sub.ordered {
			sub.insertAt(n.Key, n.Index)
		}
	case core.MatchChange:
		ev.Type = EventChange
		sub.docs[n.Key] = n.Doc
	case core.MatchChangeIndex:
		ev.Type = EventChangeIndex
		sub.docs[n.Key] = n.Doc
		if sub.ordered {
			sub.removeKey(n.Key)
			sub.insertAt(n.Key, n.Index)
		}
	case core.MatchRemove:
		ev.Type = EventRemove
		delete(sub.docs, n.Key)
		if sub.ordered {
			sub.removeKey(n.Key)
		}
	default:
		sub.mu.Unlock()
		return
	}
	if sub.backfilling {
		// Backfill in progress: the delta is folded into the maintained
		// state (in-window writes supersede chunk rows via the version
		// guard) but the client sees nothing before EventInitial.
		sub.mu.Unlock()
		return
	}
	sub.mu.Unlock()
	sub.push(ev)
}

// mergeChunk folds one backfill chunk into the maintained state under the
// never-regress rule: a chunk row older than an already-applied in-window
// delta is discarded — the live stream delivered fresher state (including
// deletes, whose version the guard retains). During a migration backfill
// the subscription is already admitted; a chunk row that wins there is
// state the live stream never delivered (typically a write that fell into
// the ownership gap of a resize), so it is surfaced as an event.
func (sub *Subscription) mergeChunk(entries []core.ResultEntry) {
	sub.mu.Lock()
	if sub.vers == nil {
		sub.vers = map[string]uint64{}
	}
	for _, e := range entries {
		if e.Version <= sub.vers[e.Key] {
			continue
		}
		sub.vers[e.Key] = e.Version
		_, had := sub.docs[e.Key]
		d := sub.q.Project(e.Doc)
		sub.docs[e.Key] = d
		if !sub.backfilling {
			ev := Event{Type: EventChange, Key: e.Key, Doc: d, Index: -1}
			if !had {
				ev.Type = EventAdd
			}
			sub.pushLocked(ev)
		}
	}
	sub.mu.Unlock()
}

// reconcileMigration finishes a migration backfill: a maintained document
// that appeared in no chunk and was last touched before the backfill's
// first watermark existed before the scan began yet was absent from it —
// it was deleted (or stopped matching) during the ownership gap, so it is
// removed now. Keys touched at or after the first watermark are governed
// by the live stream and left alone.
func (sub *Subscription) reconcileMigration(chunkKeys map[string]struct{}, firstLow uint64) {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	if sub.closed {
		return
	}
	for key := range sub.docs {
		if _, ok := chunkKeys[key]; ok {
			continue
		}
		if sub.vers[key] >= firstLow {
			continue
		}
		delete(sub.docs, key)
		sub.pushLocked(Event{Type: EventRemove, Key: key, Index: -1})
	}
}

// admit delivers EventInitial with the assembled result and opens the event
// stream. The event is pushed under the lock, so a delta arriving
// concurrently is ordered strictly after the initial result.
func (sub *Subscription) admit() {
	sub.mu.Lock()
	if sub.closed || !sub.backfilling {
		sub.mu.Unlock()
		return
	}
	sub.backfilling = false
	keys := make([]string, 0, len(sub.docs))
	for k := range sub.docs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	docs := make([]document.Document, 0, len(keys))
	for _, k := range keys {
		docs = append(docs, sub.docs[k])
	}
	sub.pushLocked(Event{Type: EventInitial, Docs: docs, Index: -1})
	sub.mu.Unlock()
}

// freshLocked reports whether a notification from origin with sequence
// number seq should be applied, and records it. Exact redeliveries (e.g. a
// duplicated event-layer message) are dropped for every query. For sorted
// queries, out-of-order notifications are dropped too: window diffs only
// compose in sequence order, and a renewal repairs any resulting gap. For
// unsorted queries, out-of-order notifications pass through and the per-key
// version guard decides. Callers hold sub.mu.
func (sub *Subscription) freshLocked(origin string, seq uint64) bool {
	if origin == "" {
		return true
	}
	if sub.seen == nil {
		sub.seen = map[string]*originState{}
	}
	st := sub.seen[origin]
	if st == nil {
		st = &originState{recent: map[uint64]struct{}{}}
		sub.seen[origin] = st
	}
	if _, dup := st.recent[seq]; dup {
		return false
	}
	if sub.ordered && seq < st.last {
		return false
	}
	st.recent[seq] = struct{}{}
	if seq > st.last {
		st.last = seq
	}
	if len(st.recent) > 512 {
		for s := range st.recent {
			if s+256 < st.last {
				delete(st.recent, s)
			}
		}
	}
	return true
}

// staleLocked reports whether a versioned notification for key is older
// than (or a redelivery of) the version already applied, and records the
// version. Only unsorted queries use it: their notifications commute per
// key, so the newest version wins regardless of arrival order. Sorted
// window diffs are exempt — their ordering is enforced by sequence numbers
// instead. Callers hold sub.mu.
func (sub *Subscription) staleLocked(key string, version uint64) bool {
	if sub.ordered || version == 0 || key == "" {
		return false
	}
	if sub.vers == nil {
		sub.vers = map[string]uint64{}
	}
	if version <= sub.vers[key] {
		return true
	}
	sub.vers[key] = version
	return false
}

func (sub *Subscription) insertAt(key string, idx int) {
	// Idempotent: a key can never appear twice in the window, so a repeated
	// add (e.g. across a renewal) moves it instead.
	sub.removeKey(key)
	if idx < 0 || idx > len(sub.order) {
		idx = len(sub.order)
	}
	sub.order = append(sub.order, "")
	copy(sub.order[idx+1:], sub.order[idx:])
	sub.order[idx] = key
}

func (sub *Subscription) removeKey(key string) {
	for i, k := range sub.order {
		if k == key {
			sub.order = append(sub.order[:i], sub.order[i+1:]...)
			return
		}
	}
}

// fail emits a terminal error event.
func (sub *Subscription) fail(err error) {
	sub.push(Event{Type: EventError, Err: err, Index: -1})
}

// disconnect reports heartbeat loss without terminating the subscription;
// the server re-subscribes automatically once heartbeats resume.
func (sub *Subscription) disconnect(err error) {
	sub.push(Event{Type: EventDisconnected, Err: err, Index: -1})
}

// push enqueues an event without blocking the notification loop; when the
// consumer lags, the oldest event is dropped and counted (clients detect
// gaps via Dropped and may re-sync with a pull-based query).
func (sub *Subscription) push(ev Event) {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	sub.pushLocked(ev)
}

// pushLocked is push for callers already holding sub.mu.
func (sub *Subscription) pushLocked(ev Event) {
	if sub.closed {
		return
	}
	select {
	case sub.events <- ev:
		return
	default:
	}
	select {
	case <-sub.events:
		sub.dropped.Add(1)
		sub.server.mEventDrops.Inc()
	default:
	}
	select {
	case sub.events <- ev:
	default:
		sub.dropped.Add(1)
		sub.server.mEventDrops.Inc()
	}
}
