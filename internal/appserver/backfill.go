package appserver

import (
	"errors"
	"fmt"
	"time"

	"invalidb/internal/core"
	"invalidb/internal/storage"
)

// This file drives the application-server half of the watermark-certified
// backfill (DESIGN.md §12). Instead of executing the full bootstrap query and
// shipping the entire result in one subscribe request, the initial result is
// read in fixed-size chunks. Every chunk read is bracketed by a low and a
// high watermark drawn from the storage sequence allocator; the marks travel
// the writes topic, in stream order with the writes they bracket, so a
// matching cell that has seen the high mark has folded in every write the
// chunk could have raced. Each cell attests that with a certificate; a chunk
// is done when every cell of the query's row certified it, and the
// subscription is admitted — EventInitial delivered — after the final chunk.
// In-flight memory is bounded by one chunk on this side and
// backfillPendingBudget chunks per cell; a lost message re-sends the chunk
// under a fresh watermark window after a timeout, and a matching-cell restart
// aborts the attempt via a restart certificate and starts the backfill over.

const (
	// maxBackfillAttempts bounds whole-backfill restarts (matching-cell
	// crashes mid-backfill) before the subscription fails.
	maxBackfillAttempts = 5
	// maxChunkRetries bounds certificate-timeout re-sends of a single chunk.
	maxChunkRetries = 8
	// backfillPipelineWindow is how many uncertified chunks the driver keeps
	// in flight. Reading ahead overlaps chunk reads with certificate round
	// trips instead of serializing one RTT per chunk; the window matches the
	// cell-side pending budget (core.backfillPendingBudget) so a cell never
	// has to early-reconcile a chunk just because the driver ran ahead.
	backfillPipelineWindow = 4
)

var (
	errBackfillRestart = errors.New("appserver: backfill restarted by cluster")
	errBackfillAborted = errors.New("appserver: backfill aborted")
)

func (s *Server) newBackfillID() string {
	s.rngMu.Lock()
	defer s.rngMu.Unlock()
	return fmt.Sprintf("b%08x%08x", s.rng.Uint32(), s.rng.Uint32())
}

// backfillLoop runs one subscription's backfill to admission, restarting the
// whole protocol — fresh BackfillID, fresh cursor — when a matching cell of
// the query's row loses its window state (restart certificate).
func (s *Server) backfillLoop(sub *Subscription) {
	defer s.wg.Done()
	s.backfillActive.Add(1)
	defer s.backfillActive.Add(-1)
	var err error
	for attempt := 0; attempt < maxBackfillAttempts; attempt++ {
		if attempt > 0 {
			if !s.sleepInterruptible(s.jitteredBackoff(attempt-1, 50*time.Millisecond, s.opts.BackfillChunkTimeout)) {
				return
			}
		}
		start := sub.getPlace()
		err = s.runBackfill(sub, start.epoch, false)
		if err == nil {
			// Admitted. Map epochs published mid-backfill were deliberately
			// left to this driver (migrateAll skips backfilling
			// subscriptions): if the query row moved meanwhile, migrate now.
			if m := s.currentMap(); m != nil {
				np := placeFor(m, sub.hash)
				if start.moved(np) {
					s.migrateSub(sub, start, np)
				} else {
					sub.setPlace(np)
				}
			}
			return
		}
		if err == errBackfillAborted {
			return
		}
		if err != errBackfillRestart {
			break
		}
	}
	sub.fail(fmt.Errorf("appserver: backfill failed: %w", err))
}

// inflightChunk is one published, not-yet-certified chunk of a pipelined
// backfill: its message (re-sent with refreshed window and rows on retry),
// the exact key segments its read walked, the distinct cells that certified
// it so far, and its retry budget.
type inflightChunk struct {
	bc       *core.BackfillChunk
	segs     []storage.ChunkSegment
	seen     map[int]struct{}
	retries  int
	deadline time.Time
}

// runBackfill executes one backfill attempt: announce, then pipeline chunk
// reads against certificate collection — up to backfillPipelineWindow chunks
// are in flight at once — and admit when the final chunk is certified.
// Every control envelope is stamped with epoch so the owner under that map
// installs the window. With migration set the subscription is already
// admitted (this is a resize moving its row): no EventInitial is emitted,
// chunk rows surface as live events where they win, and on completion the
// maintained result is reconciled against the scan to drop documents
// deleted during the ownership gap.
func (s *Server) runBackfill(sub *Subscription, epoch uint64, migration bool) error {
	bfid := s.newBackfillID()
	certs := make(chan *core.BackfillCert, 64)
	s.bfMu.Lock()
	s.bfCerts[bfid] = certs
	s.bfMu.Unlock()
	defer func() {
		s.bfMu.Lock()
		delete(s.bfCerts, bfid)
		s.bfMu.Unlock()
	}()

	if err := s.publishBackfillStart(sub, bfid, epoch); err != nil {
		return err
	}
	cur := s.db.C(sub.q.Collection).NewChunkCursor(sub.q)
	var inflight []*inflightChunk
	chunkIdx := 0
	lastRead := false
	// firstLow and chunkKeys feed the migration reconciliation: the earliest
	// watermark of the scan and every key the scan returned.
	var firstLow uint64
	var chunkKeys map[string]struct{}
	if migration {
		chunkKeys = map[string]struct{}{}
	}
	timer := time.NewTimer(s.opts.BackfillChunkTimeout)
	defer timer.Stop()
	for {
		// Fill the window: read ahead while certificates are outstanding.
		for !lastRead && len(inflight) < backfillPipelineWindow {
			sub.mu.Lock()
			closed := sub.closed
			sub.mu.Unlock()
			if closed {
				return errBackfillAborted
			}
			entries, more, err := s.backfillChunk(sub, bfid, chunkIdx, cur, nil)
			if err != nil {
				return err
			}
			last := !more
			if chunkIdx == 0 {
				firstLow = entries.low
			}
			if migration {
				for _, e := range entries.rows {
					chunkKeys[e.Key] = struct{}{}
				}
			}
			bc := &core.BackfillChunk{
				Tenant:         s.opts.Tenant,
				SubscriptionID: sub.id,
				BackfillID:     bfid,
				QueryHash:      sub.hash,
				Chunk:          chunkIdx,
				Low:            entries.low,
				High:           entries.high,
				Last:           last,
				Entries:        entries.rows,
				Epoch:          epoch,
			}
			if err := s.publishEnvelope(s.topics.Queries(), &core.Envelope{Kind: core.KindBackfillChunk, BackfillChunk: bc}); err != nil {
				return err
			}
			inflight = append(inflight, &inflightChunk{
				bc: bc, segs: cur.Segments(), seen: map[int]struct{}{},
				deadline: time.Now().Add(s.opts.BackfillChunkTimeout),
			})
			chunkIdx++
			lastRead = last
		}
		if len(inflight) == 0 {
			break // every chunk read and certified
		}

		// Pump certificates until the oldest outstanding chunk times out.
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(time.Until(inflight[0].deadline))
		select {
		case <-s.done:
			return errBackfillAborted
		case c := <-certs:
			if c.BackfillID != bfid {
				continue
			}
			if c.Status == core.BackfillStatusRestart {
				return errBackfillRestart
			}
			for i, fc := range inflight {
				if fc.bc.Chunk != c.Chunk {
					continue
				}
				fc.seen[c.Cell] = struct{}{}
				if len(fc.seen) >= c.Cells {
					inflight = append(inflight[:i], inflight[i+1:]...)
				}
				break
			}
		case <-timer.C:
			// Oldest chunk uncertified: the chunk, a mark, or the
			// certificates were lost. Re-read the same key range under a
			// fresh watermark window and re-send; the cell-side install is
			// idempotent.
			fc := inflight[0]
			if fc.retries >= maxChunkRetries {
				return fmt.Errorf("chunk %d uncertified after %d attempts", fc.bc.Chunk, fc.retries+1)
			}
			s.mBackfillRetries.Inc()
			if !s.sleepInterruptible(s.jitteredBackoff(fc.retries, 50*time.Millisecond, s.opts.BackfillChunkTimeout)) {
				return errBackfillAborted
			}
			fc.retries++
			entries, _, err := s.backfillChunk(sub, bfid, fc.bc.Chunk, cur, fc.segs)
			if err != nil {
				return err
			}
			if migration {
				for _, e := range entries.rows {
					chunkKeys[e.Key] = struct{}{}
				}
			}
			fc.bc.Low, fc.bc.High, fc.bc.Entries = entries.low, entries.high, entries.rows
			if err := s.publishEnvelope(s.topics.Queries(), &core.Envelope{Kind: core.KindBackfillChunk, BackfillChunk: fc.bc}); err != nil {
				return err
			}
			fc.deadline = time.Now().Add(s.opts.BackfillChunkTimeout)
		}
	}
	if migration {
		sub.reconcileMigration(chunkKeys, firstLow)
		return nil
	}
	sub.admit()
	return nil
}

// chunkWindow is one chunk read together with its watermark window.
type chunkWindow struct {
	low, high uint64
	rows      []core.ResultEntry
}

// backfillChunk brackets one chunk read with watermarks — emitted into the
// oplog AND published on the writes topic, where write ingestion turns them
// into a flush barrier — and folds the rows into the subscription's local
// state (version-guarded, so an in-window delta that already arrived wins).
// A nil segs reads the next chunk and advances the cursor; non-nil re-reads
// exactly that recorded key range (certificate-timeout retry) without moving
// the pipeline head. The second return reports whether more chunks follow;
// it is meaningless on a re-read.
func (s *Server) backfillChunk(sub *Subscription, bfid string, chunk int, cur *storage.ChunkCursor, segs []storage.ChunkSegment) (chunkWindow, bool, error) {
	label := fmt.Sprintf("%s.c%d", bfid, chunk)
	low := s.db.EmitWatermark(label)
	if err := s.publishBackfillMark(bfid, chunk, core.BackfillPhaseLow, low); err != nil {
		return chunkWindow{}, false, err
	}
	var srows []storage.Entry
	var done bool
	if segs != nil {
		srows = cur.Reread(segs)
	} else {
		srows, done = cur.Next(s.opts.BackfillChunkSize)
	}
	high := s.db.EmitWatermark(label)
	if err := s.publishBackfillMark(bfid, chunk, core.BackfillPhaseHigh, high); err != nil {
		return chunkWindow{}, false, err
	}
	rows := make([]core.ResultEntry, len(srows))
	for i, r := range srows {
		rows[i] = core.ResultEntry{Key: r.Key, Version: r.Version, Doc: r.Doc}
	}
	sub.mergeChunk(rows)
	return chunkWindow{low: low, high: high, rows: rows}, !done, nil
}

// routeBackfillCert hands a certificate from the notification loop to its
// backfill driver; certificates of finished or abandoned backfills are
// dropped.
func (s *Server) routeBackfillCert(cert *core.BackfillCert) {
	s.bfMu.Lock()
	ch := s.bfCerts[cert.BackfillID]
	s.bfMu.Unlock()
	if ch == nil {
		return
	}
	select {
	case ch <- cert:
	default: // driver lagging; the chunk timeout re-sends
	}
}

func (s *Server) publishBackfillStart(sub *Subscription, bfid string, epoch uint64) error {
	return s.publishEnvelope(s.topics.Queries(), &core.Envelope{Kind: core.KindBackfillStart, BackfillStart: &core.BackfillStart{
		Tenant:         s.opts.Tenant,
		SubscriptionID: sub.id,
		BackfillID:     bfid,
		Query:          sub.q.Spec(),
		Slack:          sub.slack,
		TTLMillis:      s.opts.TTL.Milliseconds(),
		Epoch:          epoch,
	}})
}

func (s *Server) publishBackfillMark(bfid string, chunk int, phase string, seq uint64) error {
	return s.publishEnvelope(s.topics.Writes(), &core.Envelope{Kind: core.KindBackfillMark, BackfillMark: &core.BackfillMark{
		Tenant:     s.opts.Tenant,
		BackfillID: bfid,
		Chunk:      chunk,
		Phase:      phase,
		Seq:        seq,
	}})
}

func (s *Server) publishEnvelope(topic string, env *core.Envelope) error {
	data, err := env.Encode()
	if err != nil {
		return err
	}
	return s.bus.Publish(topic, data)
}
