package appserver

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"invalidb/internal/core"
	"invalidb/internal/document"
	"invalidb/internal/eventlayer"
	"invalidb/internal/query"
	"invalidb/internal/storage"
)

func backfillEnv(t *testing.T, clusterOpts core.Options, serverOpts Options) *env {
	t.Helper()
	serverOpts.Backfill = true
	if serverOpts.BackfillChunkSize == 0 {
		serverOpts.BackfillChunkSize = 16
	}
	if serverOpts.BackfillChunkTimeout == 0 {
		serverOpts.BackfillChunkTimeout = 500 * time.Millisecond
	}
	return newEnv(t, clusterOpts, serverOpts)
}

func TestBackfillDeliversFullInitialResult(t *testing.T) {
	e := backfillEnv(t, core.Options{QueryPartitions: 2, WritePartitions: 2}, Options{})
	for i := 0; i < 100; i++ {
		if err := e.server.Insert("c", document.Document{"_id": fmt.Sprintf("k%03d", i), "grp": int64(i % 2)}); err != nil {
			t.Fatal(err)
		}
	}
	spec := query.Spec{Collection: "c", Filter: map[string]any{"grp": 1}}
	sub, err := e.server.Subscribe(spec)
	if err != nil {
		t.Fatal(err)
	}
	ev := waitEvent(t, sub, EventInitial)
	if len(ev.Docs) != 50 {
		t.Fatalf("initial result has %d docs, want 50", len(ev.Docs))
	}
	// The subscription is live after admission: a matching write arrives as
	// a regular add event.
	if err := e.server.Insert("c", document.Document{"_id": "late", "grp": int64(1)}); err != nil {
		t.Fatal(err)
	}
	if got := waitEvent(t, sub, EventAdd); got.Key != "late" {
		t.Fatalf("post-admission add delivered %q, want %q", got.Key, "late")
	}
}

func TestBackfillUnderSustainedWrites(t *testing.T) {
	// The virtual-cut guarantee under full write load: a backfilled
	// subscription's result after quiescing equals the pull query's — no
	// lost keys, no resurrected deletes, no duplicates.
	e := backfillEnv(t, core.Options{QueryPartitions: 2, WritePartitions: 2}, Options{})
	for i := 0; i < 80; i++ {
		if err := e.server.Insert("c", document.Document{"_id": fmt.Sprintf("k%03d", i), "x": int64(1)}); err != nil {
			t.Fatal(err)
		}
	}
	stop := make(chan struct{})
	writerDone := make(chan struct{})
	var flips atomic.Int64
	go func() {
		defer close(writerDone)
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			key := fmt.Sprintf("k%03d", i%80)
			// Key parity XOR pass parity flips membership in and out of the
			// result while the backfill reads chunks, so every chunk has
			// in-window writes to reconcile.
			x := int64((i%80 + i/80) % 2)
			if err := e.server.Update("c", key, map[string]any{"$set": map[string]any{"x": x}}); err == nil {
				flips.Add(1)
			}
			time.Sleep(time.Millisecond)
		}
	}()

	spec := query.Spec{Collection: "c", Filter: map[string]any{"x": int64(1)}}
	sub, err := e.server.Subscribe(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitEvent(t, sub, EventInitial)
	close(stop)
	<-writerDone
	if flips.Load() == 0 {
		t.Fatal("writer made no progress during the backfill")
	}
	waitResult(t, e, sub, spec)
}

func TestBackfillOrderedQueryFallsBackToBootstrap(t *testing.T) {
	e := backfillEnv(t, core.Options{}, Options{})
	for i := 0; i < 10; i++ {
		if err := e.server.Insert("c", document.Document{"_id": fmt.Sprintf("k%d", i), "x": int64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	spec := query.Spec{
		Collection: "c",
		Filter:     map[string]any{"x": map[string]any{"$gte": 0}},
		Sort:       []query.SortKey{{Path: "x", Desc: true}},
		Limit:      3,
	}
	sub, err := e.server.Subscribe(spec)
	if err != nil {
		t.Fatal(err)
	}
	ev := waitEvent(t, sub, EventInitial)
	if len(ev.Docs) != 3 {
		t.Fatalf("ordered bootstrap returned %d docs, want 3", len(ev.Docs))
	}
	if ev.Docs[0]["_id"] != "k9" {
		t.Fatalf("ordered bootstrap top doc = %v, want k9", ev.Docs[0]["_id"])
	}
}

func TestBackfillEmptyResultAdmits(t *testing.T) {
	e := backfillEnv(t, core.Options{WritePartitions: 2}, Options{})
	spec := query.Spec{Collection: "c", Filter: map[string]any{"never": true}}
	sub, err := e.server.Subscribe(spec)
	if err != nil {
		t.Fatal(err)
	}
	ev := waitEvent(t, sub, EventInitial)
	if len(ev.Docs) != 0 {
		t.Fatalf("empty backfill delivered %d docs", len(ev.Docs))
	}
}

// chunkDropBus drops BackfillChunk envelopes while armed, simulating an
// event layer that loses chunk messages (and with them the certificates).
type chunkDropBus struct {
	eventlayer.Bus
	dropChunks atomic.Bool
}

func (b *chunkDropBus) Publish(topic string, payload []byte) error {
	if b.dropChunks.Load() {
		if env, err := core.DecodeEnvelope(payload); err == nil && env.Kind == core.KindBackfillChunk {
			return nil
		}
	}
	return b.Bus.Publish(topic, payload)
}

func TestBackfillRetriesSurviveDroppedChunks(t *testing.T) {
	// Chunk messages on the queries topic are dropped for a while: the
	// driver must re-send under fresh watermark windows and still admit.
	mem := eventlayer.NewMemBus(eventlayer.MemBusOptions{})
	bus := &chunkDropBus{Bus: mem}
	cluster, err := core.NewCluster(bus, core.Options{
		TickInterval:      20 * time.Millisecond,
		HeartbeatInterval: 50 * time.Millisecond,
		RetentionTime:     2 * time.Second,
		WritePartitions:   2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.Start(); err != nil {
		t.Fatal(err)
	}
	db := storage.Open(storage.Options{})
	srv, err := New(db, bus, Options{
		Backfill:             true,
		BackfillChunkSize:    16,
		BackfillChunkTimeout: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	e := &env{db: db, bus: mem, cluster: cluster, server: srv}
	t.Cleanup(func() {
		_ = srv.Close()
		cluster.Stop()
		_ = mem.Close()
	})

	for i := 0; i < 40; i++ {
		if err := srv.Insert("c", document.Document{"_id": fmt.Sprintf("k%02d", i), "x": int64(1)}); err != nil {
			t.Fatal(err)
		}
	}
	bus.dropChunks.Store(true)
	spec := query.Spec{Collection: "c", Filter: map[string]any{"x": int64(1)}}
	sub, err := srv.Subscribe(spec)
	if err != nil {
		t.Fatal(err)
	}
	// Let at least one chunk time out, then heal the topic.
	time.Sleep(400 * time.Millisecond)
	bus.dropChunks.Store(false)
	waitEvent(t, sub, EventInitial)
	if got := srv.Metrics().Counter("backfill.retries").Value(); got == 0 {
		t.Fatal("expected at least one chunk retry while the topic dropped chunks")
	}
	waitResult(t, e, sub, spec)
}
