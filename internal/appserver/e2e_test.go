package appserver

import (
	"fmt"
	"testing"
	"time"

	"invalidb/internal/core"
	"invalidb/internal/document"
	"invalidb/internal/eventlayer"
	"invalidb/internal/query"
	"invalidb/internal/storage"
)

// env is a complete single-process deployment: database, event layer,
// InvaliDB cluster, and one application server.
type env struct {
	db      *storage.DB
	bus     *eventlayer.MemBus
	cluster *core.Cluster
	server  *Server
}

func newEnv(t *testing.T, clusterOpts core.Options, serverOpts Options) *env {
	t.Helper()
	if clusterOpts.TickInterval == 0 {
		clusterOpts.TickInterval = 20 * time.Millisecond
	}
	if clusterOpts.HeartbeatInterval == 0 {
		clusterOpts.HeartbeatInterval = 50 * time.Millisecond
	}
	if clusterOpts.RetentionTime == 0 {
		clusterOpts.RetentionTime = 2 * time.Second
	}
	bus := eventlayer.NewMemBus(eventlayer.MemBusOptions{})
	cluster, err := core.NewCluster(bus, clusterOpts)
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.Start(); err != nil {
		t.Fatal(err)
	}
	db := storage.Open(storage.Options{})
	srv, err := New(db, bus, serverOpts)
	if err != nil {
		t.Fatal(err)
	}
	e := &env{db: db, bus: bus, cluster: cluster, server: srv}
	t.Cleanup(func() {
		_ = srv.Close()
		cluster.Stop()
		_ = bus.Close()
	})
	return e
}

func waitEvent(t *testing.T, sub *Subscription, want EventType) Event {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case ev, ok := <-sub.C():
			if !ok {
				t.Fatalf("subscription closed while waiting for %v", want)
			}
			if ev.Type == want {
				return ev
			}
			if ev.Type == EventError {
				t.Fatalf("error event while waiting for %v: %v", want, ev.Err)
			}
		case <-deadline:
			t.Fatalf("timed out waiting for %v event", want)
		}
	}
}

func expectNoEvent(t *testing.T, sub *Subscription, d time.Duration) {
	t.Helper()
	select {
	case ev, ok := <-sub.C():
		if ok {
			t.Fatalf("unexpected event %v (key %s)", ev.Type, ev.Key)
		}
	case <-time.After(d):
	}
}

// waitResult polls until the subscription's maintained result matches the
// database's pull-based answer — eventual consistency as the paper defines
// it (§5: results synchronize once InvaliDB has applied the same writes).
func waitResult(t *testing.T, e *env, sub *Subscription, spec query.Spec) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	var got, want []document.Document
	for time.Now().Before(deadline) {
		var err error
		want, err = e.server.Query(spec)
		if err != nil {
			t.Fatal(err)
		}
		got = sub.Result()
		if sameDocs(got, want) {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("subscription result never converged:\n got: %v\nwant: %v", got, want)
}

func sameDocs(a, b []document.Document) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !document.Equal(map[string]any(a[i]), map[string]any(b[i])) {
			return false
		}
	}
	return true
}

func drainInitial(t *testing.T, sub *Subscription) Event {
	t.Helper()
	return waitEvent(t, sub, EventInitial)
}

func TestUnsortedLifecycle(t *testing.T) {
	e := newEnv(t, core.Options{}, Options{})
	if err := e.server.Insert("tasks", document.Document{"_id": "t1", "done": false, "prio": 5}); err != nil {
		t.Fatal(err)
	}
	spec := query.Spec{Collection: "tasks", Filter: map[string]any{"done": false}}
	sub, err := e.server.Subscribe(spec)
	if err != nil {
		t.Fatal(err)
	}
	init := drainInitial(t, sub)
	if len(init.Docs) != 1 {
		t.Fatalf("initial result = %v", init.Docs)
	}

	// A matching insert produces add.
	if err := e.server.Insert("tasks", document.Document{"_id": "t2", "done": false, "prio": 1}); err != nil {
		t.Fatal(err)
	}
	ev := waitEvent(t, sub, EventAdd)
	if ev.Key != "t2" || ev.Index != -1 {
		t.Fatalf("add event = %+v", ev)
	}

	// An update keeping the match produces change.
	if err := e.server.Update("tasks", "t2", map[string]any{"$set": map[string]any{"prio": 9}}); err != nil {
		t.Fatal(err)
	}
	ev = waitEvent(t, sub, EventChange)
	if ev.Doc["prio"] != int64(9) {
		t.Fatalf("change doc = %v", ev.Doc)
	}

	// An update breaking the match produces remove.
	if err := e.server.Update("tasks", "t1", map[string]any{"$set": map[string]any{"done": true}}); err != nil {
		t.Fatal(err)
	}
	if ev = waitEvent(t, sub, EventRemove); ev.Key != "t1" {
		t.Fatalf("remove event = %+v", ev)
	}

	// A delete produces remove.
	if err := e.server.Delete("tasks", "t2"); err != nil {
		t.Fatal(err)
	}
	if ev = waitEvent(t, sub, EventRemove); ev.Key != "t2" {
		t.Fatalf("remove event = %+v", ev)
	}

	// Irrelevant writes produce nothing.
	if err := e.server.Insert("tasks", document.Document{"_id": "t3", "done": true}); err != nil {
		t.Fatal(err)
	}
	if err := e.server.Insert("other", document.Document{"_id": "t4", "done": false}); err != nil {
		t.Fatal(err)
	}
	expectNoEvent(t, sub, 150*time.Millisecond)
	if sub.Dropped() != 0 {
		t.Fatalf("dropped events: %d", sub.Dropped())
	}
}

func TestUnsortedResultConvergesUnder2DPartitioning(t *testing.T) {
	e := newEnv(t, core.Options{QueryPartitions: 2, WritePartitions: 2}, Options{})
	spec := query.Spec{Collection: "n", Filter: map[string]any{"v": map[string]any{"$gte": 50}}}
	sub, err := e.server.Subscribe(spec)
	if err != nil {
		t.Fatal(err)
	}
	drainInitial(t, sub)
	for i := 0; i < 60; i++ {
		if err := e.server.Insert("n", document.Document{"_id": fmt.Sprintf("k%02d", i), "v": i}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 40; i < 50; i++ { // move some into the result
		if err := e.server.Update("n", fmt.Sprintf("k%02d", i), map[string]any{"$inc": map[string]any{"v": 15}}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 50; i < 55; i++ { // and some out
		if err := e.server.Delete("n", fmt.Sprintf("k%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
	waitResult(t, e, sub, spec)
}

// TestFigure3SortedQuery drives the paper's Figure 3 example end to end: a
// sorted query with OFFSET 2 LIMIT 3 over articles by year DESC, with the
// offset-removal update scenario the paper uses to motivate auxiliary data.
func TestFigure3SortedQuery(t *testing.T) {
	e := newEnv(t, core.Options{}, Options{Slack: 2})
	articles := []struct {
		id, title string
		year      int
	}{
		{"5", "DB Fun", 2018},
		{"8", "No SQL!", 2018},
		{"3", "BaaS For Dummies", 2017},
		{"4", "Query Languages", 2017},
		{"7", "Streams in Action", 2016},
		{"9", "SaaS For Dummies", 2016},
		{"2", "Old Classic", 2010},
	}
	for _, a := range articles {
		if err := e.server.Insert("articles", document.Document{"_id": a.id, "title": a.title, "year": a.year}); err != nil {
			t.Fatal(err)
		}
	}
	spec := query.Spec{
		Collection: "articles",
		Sort:       []query.SortKey{{Path: "year", Desc: true}},
		Offset:     2,
		Limit:      3,
	}
	sub, err := e.server.Subscribe(spec)
	if err != nil {
		t.Fatal(err)
	}
	init := drainInitial(t, sub)
	if got := ids(init.Docs); got != "3,4,7" {
		t.Fatalf("initial window = %s, want 3,4,7", got)
	}

	// Remove an article from the offset ('No SQL!'): 'BaaS For Dummies'
	// moves into the offset and 'SaaS For Dummies' moves into the result.
	if err := e.server.Delete("articles", "8"); err != nil {
		t.Fatal(err)
	}
	waitResult(t, e, sub, spec)
	if got := ids(sub.Result()); got != "4,7,9" {
		t.Fatalf("window after offset deletion = %s, want 4,7,9", got)
	}

	// An update that moves an item within the window produces changeIndex:
	// lifting '9' to 2017 moves it from window position 2 to 1 (window was
	// [4, 7, 9]; it becomes [4, 9, 7]).
	if err := e.server.Update("articles", "9", map[string]any{"$set": map[string]any{"year": 2017}}); err != nil {
		t.Fatal(err)
	}
	ev := waitEvent(t, sub, EventChangeIndex)
	if ev.Key != "9" || ev.Index != 1 {
		t.Fatalf("changeIndex = key %s idx %d, want key 9 idx 1", ev.Key, ev.Index)
	}
	waitResult(t, e, sub, spec)

	// A new top article shifts everything: the window follows.
	if err := e.server.Insert("articles", document.Document{"_id": "1", "title": "Fresh", "year": 2019}); err != nil {
		t.Fatal(err)
	}
	waitResult(t, e, sub, spec)
}

func ids(docs []document.Document) string {
	s := ""
	for i, d := range docs {
		if i > 0 {
			s += ","
		}
		id, _ := d.ID()
		s += id
	}
	return s
}

func TestSortedQueryMaintenanceErrorAndRenewal(t *testing.T) {
	e := newEnv(t, core.Options{}, Options{Slack: 1, RenewalMinInterval: time.Millisecond})
	for i := 0; i < 20; i++ {
		if err := e.server.Insert("s", document.Document{"_id": fmt.Sprintf("k%02d", i), "rank": i}); err != nil {
			t.Fatal(err)
		}
	}
	spec := query.Spec{
		Collection: "s",
		Sort:       []query.SortKey{{Path: "rank"}},
		Limit:      3,
	}
	sub, err := e.server.Subscribe(spec)
	if err != nil {
		t.Fatal(err)
	}
	init := drainInitial(t, sub)
	if got := ids(init.Docs); got != "k00,k01,k02" {
		t.Fatalf("initial = %s", got)
	}
	// Deleting more items than the slack can absorb forces a maintenance
	// error; the renewal must be transparent and converge to the database
	// state.
	for i := 0; i < 8; i++ {
		if err := e.server.Delete("s", fmt.Sprintf("k%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
	waitResult(t, e, sub, spec)
	if got := ids(sub.Result()); got != "k08,k09,k10" {
		t.Fatalf("post-renewal window = %s, want k08,k09,k10", got)
	}
}

func TestSortedUnlimitedWithOffset(t *testing.T) {
	e := newEnv(t, core.Options{}, Options{})
	for i := 0; i < 5; i++ {
		if err := e.server.Insert("u", document.Document{"_id": fmt.Sprint(i), "n": i}); err != nil {
			t.Fatal(err)
		}
	}
	spec := query.Spec{Collection: "u", Sort: []query.SortKey{{Path: "n"}}, Offset: 2}
	sub, err := e.server.Subscribe(spec)
	if err != nil {
		t.Fatal(err)
	}
	init := drainInitial(t, sub)
	if got := ids(init.Docs); got != "2,3,4" {
		t.Fatalf("initial = %s", got)
	}
	// Insert at the very front: item 2 must slide into the offset region
	// and item "1.5" is not visible; window gains former offset member.
	if err := e.server.Insert("u", document.Document{"_id": "x", "n": -1}); err != nil {
		t.Fatal(err)
	}
	waitResult(t, e, sub, spec)
	if got := ids(sub.Result()); got != "1,2,3,4" {
		t.Fatalf("window = %s, want 1,2,3,4", got)
	}
}

func TestMultiTenancyIsolation(t *testing.T) {
	e := newEnv(t, core.Options{}, Options{Tenant: "appA"})
	dbB := storage.Open(storage.Options{})
	srvB, err := New(dbB, e.bus, Options{Tenant: "appB"})
	if err != nil {
		t.Fatal(err)
	}
	defer srvB.Close()

	spec := query.Spec{Collection: "c", Filter: map[string]any{"x": 1}}
	subA, err := e.server.Subscribe(spec)
	if err != nil {
		t.Fatal(err)
	}
	subB, err := srvB.Subscribe(spec)
	if err != nil {
		t.Fatal(err)
	}
	drainInitial(t, subA)
	drainInitial(t, subB)

	// The same key and collection in tenant B must not leak into tenant A.
	if err := srvB.Insert("c", document.Document{"_id": "k", "x": 1}); err != nil {
		t.Fatal(err)
	}
	if ev := waitEvent(t, subB, EventAdd); ev.Key != "k" {
		t.Fatalf("tenant B add = %+v", ev)
	}
	expectNoEvent(t, subA, 150*time.Millisecond)
}

func TestSharedQueryAcrossSubscriptions(t *testing.T) {
	e := newEnv(t, core.Options{QueryPartitions: 4}, Options{})
	spec := query.Spec{Collection: "c", Filter: map[string]any{"x": map[string]any{"$gt": 0}}}
	sub1, err := e.server.Subscribe(spec)
	if err != nil {
		t.Fatal(err)
	}
	sub2, err := e.server.Subscribe(spec)
	if err != nil {
		t.Fatal(err)
	}
	drainInitial(t, sub1)
	drainInitial(t, sub2)
	if err := e.server.Insert("c", document.Document{"_id": "k", "x": 5}); err != nil {
		t.Fatal(err)
	}
	if ev := waitEvent(t, sub1, EventAdd); ev.Key != "k" {
		t.Fatal("sub1 missed the add")
	}
	if ev := waitEvent(t, sub2, EventAdd); ev.Key != "k" {
		t.Fatal("sub2 missed the add")
	}
	// Cancelling one subscription keeps the other alive.
	_ = sub1.Close()
	time.Sleep(50 * time.Millisecond)
	if err := e.server.Update("c", "k", map[string]any{"$set": map[string]any{"x": 7}}); err != nil {
		t.Fatal(err)
	}
	if ev := waitEvent(t, sub2, EventChange); ev.Key != "k" {
		t.Fatal("surviving subscription missed the change")
	}
}

func TestCancellationStopsNotifications(t *testing.T) {
	e := newEnv(t, core.Options{}, Options{})
	spec := query.Spec{Collection: "c", Filter: map[string]any{"x": 1}}
	sub, err := e.server.Subscribe(spec)
	if err != nil {
		t.Fatal(err)
	}
	drainInitial(t, sub)
	if err := sub.Close(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let the cancellation reach the cluster
	if err := e.server.Insert("c", document.Document{"_id": "k", "x": 1}); err != nil {
		t.Fatal(err)
	}
	select {
	case ev, ok := <-sub.C():
		if ok {
			t.Fatalf("event after Close: %+v", ev)
		}
	case <-time.After(100 * time.Millisecond):
	}
}

func TestTTLExpiryDeactivatesQuery(t *testing.T) {
	e := newEnv(t, core.Options{TickInterval: 10 * time.Millisecond}, Options{
		TTL:            80 * time.Millisecond,
		ExtendInterval: time.Hour, // never extend
	})
	spec := query.Spec{Collection: "c", Filter: map[string]any{"x": 1}}
	sub, err := e.server.Subscribe(spec)
	if err != nil {
		t.Fatal(err)
	}
	drainInitial(t, sub)
	time.Sleep(250 * time.Millisecond) // well past TTL
	if err := e.server.Insert("c", document.Document{"_id": "k", "x": 1}); err != nil {
		t.Fatal(err)
	}
	expectNoEvent(t, sub, 200*time.Millisecond)
}

func TestTTLExtensionKeepsQueryAlive(t *testing.T) {
	e := newEnv(t, core.Options{TickInterval: 10 * time.Millisecond}, Options{
		TTL:            120 * time.Millisecond,
		ExtendInterval: 30 * time.Millisecond,
	})
	spec := query.Spec{Collection: "c", Filter: map[string]any{"x": 1}}
	sub, err := e.server.Subscribe(spec)
	if err != nil {
		t.Fatal(err)
	}
	drainInitial(t, sub)
	time.Sleep(400 * time.Millisecond) // several TTLs, kept alive by extensions
	if err := e.server.Insert("c", document.Document{"_id": "k", "x": 1}); err != nil {
		t.Fatal(err)
	}
	if ev := waitEvent(t, sub, EventAdd); ev.Key != "k" {
		t.Fatal("extended subscription missed the add")
	}
}

// publishHeartbeat injects a cluster heartbeat directly on the event layer,
// standing in for a live cluster. Publish errors are ignored so it is safe
// to call from helper goroutines racing test teardown.
func publishHeartbeat(e *env, tenant string) {
	env := &core.Envelope{Kind: core.KindHeartbeat, Heartbeat: &core.Heartbeat{
		Tenant:     tenant,
		TimeMillis: time.Now().UnixMilli(),
	}}
	if data, err := env.Encode(); err == nil {
		_ = e.bus.Publish(core.NewTopics("").Notify(tenant), data)
	}
}

func TestHeartbeatLossDisconnectsAndRecovers(t *testing.T) {
	e := newEnv(t, core.Options{HeartbeatInterval: 20 * time.Millisecond}, Options{
		HeartbeatTimeout: 200 * time.Millisecond,
		// Short TTL extensions let a replacement cluster learn the tenant
		// quickly and resume heartbeats.
		ExtendInterval: 30 * time.Millisecond,
	})
	spec := query.Spec{Collection: "c", Filter: map[string]any{"x": 1}}
	sub, err := e.server.Subscribe(spec)
	if err != nil {
		t.Fatal(err)
	}
	drainInitial(t, sub)
	// Taking the cluster down stops heartbeats; the pull-based path keeps
	// working (isolated failure domain) while subscriptions are told about
	// the disconnect — but survive it.
	e.cluster.Stop()
	waitEvent(t, sub, EventDisconnected)
	if _, err := e.server.Query(spec); err != nil {
		t.Fatalf("pull-based query failed after cluster outage: %v", err)
	}
	if e.server.Connected() {
		t.Fatal("server still reports connected after heartbeat loss")
	}
	// The disconnect is reported exactly once, even across several further
	// watchdog ticks, and the subscription channel stays open.
	expectNoEvent(t, sub, 400*time.Millisecond)

	// A replacement cluster on the same event layer resumes heartbeats; the
	// server re-subscribes automatically and the fresh cluster learns the
	// query from the re-subscription.
	cluster2, err := core.NewCluster(e.bus, core.Options{
		TickInterval:      20 * time.Millisecond,
		HeartbeatInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster2.Start(); err != nil {
		t.Fatal(err)
	}
	defer cluster2.Stop()
	waitEvent(t, sub, EventReconnected)
	if got := e.server.Reconnects(); got != 1 {
		t.Fatalf("reconnects = %d, want 1", got)
	}
	// The resumed delivery stream is live end to end.
	if err := e.server.Insert("c", document.Document{"_id": "k", "x": 1}); err != nil {
		t.Fatal(err)
	}
	if ev := waitEvent(t, sub, EventAdd); ev.Key != "k" {
		t.Fatalf("post-recovery add = %+v", ev)
	}
}

func TestHeartbeatShortGapDoesNotDisturbSubscriptions(t *testing.T) {
	e := newEnv(t, core.Options{HeartbeatInterval: 20 * time.Millisecond}, Options{
		HeartbeatTimeout: 500 * time.Millisecond,
	})
	spec := query.Spec{Collection: "c", Filter: map[string]any{"x": 1}}
	sub, err := e.server.Subscribe(spec)
	if err != nil {
		t.Fatal(err)
	}
	drainInitial(t, sub)
	// A heartbeat gap shorter than the timeout: stop the cluster, then keep
	// the server alive with manual heartbeats before the watchdog fires.
	e.cluster.Stop()
	time.Sleep(150 * time.Millisecond)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		tick := time.NewTicker(20 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-stop:
				return
			case <-tick.C:
				publishHeartbeat(e, e.server.Tenant())
			}
		}
	}()
	defer func() { close(stop); <-done }()
	// No disconnect, no reconnect: the gap never crossed the timeout.
	expectNoEvent(t, sub, 700*time.Millisecond)
	if !e.server.Connected() {
		t.Fatal("short heartbeat gap flipped the server to disconnected")
	}
	if got := e.server.Reconnects(); got != 0 {
		t.Fatalf("reconnects = %d, want 0", got)
	}
}

func TestHeartbeatLongGapResubscribesExactlyOnce(t *testing.T) {
	e := newEnv(t, core.Options{HeartbeatInterval: 20 * time.Millisecond}, Options{
		HeartbeatTimeout: 100 * time.Millisecond,
		ExtendInterval:   30 * time.Millisecond,
	})
	spec := query.Spec{Collection: "c", Filter: map[string]any{"x": 1}}
	sub, err := e.server.Subscribe(spec)
	if err != nil {
		t.Fatal(err)
	}
	drainInitial(t, sub)
	e.cluster.Stop()
	waitEvent(t, sub, EventDisconnected)

	cluster2, err := core.NewCluster(e.bus, core.Options{
		TickInterval:      20 * time.Millisecond,
		HeartbeatInterval: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster2.Start(); err != nil {
		t.Fatal(err)
	}
	defer cluster2.Stop()
	ev := waitEvent(t, sub, EventReconnected)
	if ev.Docs == nil && len(sub.Result()) != 0 {
		t.Fatalf("reconnect event carried no result: %+v", ev)
	}
	// Exactly one re-subscription despite heartbeats arriving continuously
	// after recovery.
	expectNoEvent(t, sub, 400*time.Millisecond)
	if got := e.server.Reconnects(); got != 1 {
		t.Fatalf("reconnects = %d, want 1", got)
	}
}

func TestWriteSubscriptionRaceClosedByRetention(t *testing.T) {
	// A write that reaches the cluster before the subscription, and is
	// missing from the initial result, must still be delivered via the
	// retention buffer replay (§5.1).
	e := newEnv(t, core.Options{}, Options{})
	// Bypass the server: write straight to the database, then publish the
	// after-image, then subscribe with the *stale* result computed before
	// the write (simulating the race).
	spec := query.Spec{Collection: "c", Filter: map[string]any{"x": 1}}
	sub := mustStaleSubscribe(t, e, spec)
	if ev := waitEvent(t, sub, EventAdd); ev.Key != "raced" {
		t.Fatalf("retention replay delivered %+v", ev)
	}
	waitResult(t, e, sub, spec)
}

// mustStaleSubscribe publishes a write to the cluster and then subscribes
// with an initial result that predates it.
func mustStaleSubscribe(t *testing.T, e *env, spec query.Spec) *Subscription {
	t.Helper()
	ai, err := e.db.C("c").Insert(document.Document{"_id": "raced", "x": 1})
	if err != nil {
		t.Fatal(err)
	}
	// The subscription's bootstrap result is computed WITHOUT the racing
	// write (empty), as if the pull-based query ran first.
	q := query.MustCompile(spec)
	sub := &Subscription{
		server:  e.server,
		id:      "raceSub",
		q:       q,
		hash:    core.TenantQueryHash(e.server.Tenant(), q),
		ordered: q.Ordered(),
		slack:   3,
		docs:    map[string]document.Document{},
		events:  make(chan Event, 64),
	}
	e.server.mu.Lock()
	e.server.subsByID[sub.id] = sub
	e.server.subsByHash[sub.hash] = map[string]*Subscription{sub.id: sub}
	e.server.mu.Unlock()

	// Write reaches the cluster first...
	if err := e.server.forward(ai); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	// ...then the subscription arrives with a stale (empty) result.
	if err := e.server.publishSubscribe(sub, nil); err != nil {
		t.Fatal(err)
	}
	sub.installInitial(nil)
	waitEvent(t, sub, EventInitial)
	return sub
}

func TestStaleWriteIgnored(t *testing.T) {
	// An older version arriving after a newer one must be dropped (§5.1
	// staleness avoidance).
	e := newEnv(t, core.Options{}, Options{})
	spec := query.Spec{Collection: "c", Filter: map[string]any{"x": map[string]any{"$gte": 0}}}
	sub, err := e.server.Subscribe(spec)
	if err != nil {
		t.Fatal(err)
	}
	drainInitial(t, sub)

	newer := &document.AfterImage{Collection: "c", Key: "k", Version: 10, Op: document.OpInsert,
		Doc: document.Document{"_id": "k", "x": int64(2)}}
	older := &document.AfterImage{Collection: "c", Key: "k", Version: 5, Op: document.OpUpdate,
		Doc: document.Document{"_id": "k", "x": int64(1)}}
	if err := e.server.forward(newer); err != nil {
		t.Fatal(err)
	}
	ev := waitEvent(t, sub, EventAdd)
	if ev.Doc["x"] != int64(2) {
		t.Fatalf("add doc = %v", ev.Doc)
	}
	if err := e.server.forward(older); err != nil {
		t.Fatal(err)
	}
	expectNoEvent(t, sub, 150*time.Millisecond)
	if got := sub.Result(); len(got) != 1 || got[0]["x"] != int64(2) {
		t.Fatalf("stale write changed the result: %v", got)
	}
}

func TestProjectionAppliedToNotifications(t *testing.T) {
	e := newEnv(t, core.Options{}, Options{})
	spec := query.Spec{
		Collection: "c",
		Filter:     map[string]any{"x": 1},
		Projection: []string{"x"},
	}
	sub, err := e.server.Subscribe(spec)
	if err != nil {
		t.Fatal(err)
	}
	drainInitial(t, sub)
	if err := e.server.Insert("c", document.Document{"_id": "k", "x": 1, "secret": "s"}); err != nil {
		t.Fatal(err)
	}
	ev := waitEvent(t, sub, EventAdd)
	if _, leaked := ev.Doc["secret"]; leaked {
		t.Fatalf("projection leaked a field: %v", ev.Doc)
	}
	if ev.Doc["x"] != int64(1) || ev.Doc["_id"] != "k" {
		t.Fatalf("projected doc = %v", ev.Doc)
	}
}

func TestInvalidQueryRejectedLocally(t *testing.T) {
	e := newEnv(t, core.Options{}, Options{})
	_, err := e.server.Subscribe(query.Spec{Collection: "c", Filter: map[string]any{"$bogus": 1}})
	if err == nil {
		t.Fatal("invalid query accepted")
	}
}

func TestSortedQueryUnderGridPartitioning(t *testing.T) {
	// The full grid (QP=2, WP=3) with a sorted query: result partitions are
	// spread across write partitions and reassembled by the sorting stage.
	e := newEnv(t, core.Options{QueryPartitions: 2, WritePartitions: 3}, Options{Slack: 4})
	for i := 0; i < 30; i++ {
		if err := e.server.Insert("g", document.Document{"_id": fmt.Sprintf("k%02d", i), "n": i}); err != nil {
			t.Fatal(err)
		}
	}
	spec := query.Spec{Collection: "g", Sort: []query.SortKey{{Path: "n", Desc: true}}, Limit: 5}
	sub, err := e.server.Subscribe(spec)
	if err != nil {
		t.Fatal(err)
	}
	init := drainInitial(t, sub)
	if got := ids(init.Docs); got != "k29,k28,k27,k26,k25" {
		t.Fatalf("initial = %s", got)
	}
	if err := e.server.Insert("g", document.Document{"_id": "top", "n": 99}); err != nil {
		t.Fatal(err)
	}
	waitResult(t, e, sub, spec)
	if got := ids(sub.Result()); got != "top,k29,k28,k27,k26" {
		t.Fatalf("after insert = %s", got)
	}
	if err := e.server.Delete("g", "top"); err != nil {
		t.Fatal(err)
	}
	waitResult(t, e, sub, spec)
}
