package appserver

import (
	"fmt"
	"testing"

	"invalidb/internal/core"
	"invalidb/internal/document"
	"invalidb/internal/metrics"
	"invalidb/internal/query"
)

// newDetachedSub builds a Subscription without a live server, for unit tests
// of the client-side window reconstruction protocol.
func newDetachedSub(t *testing.T, spec query.Spec, buffer int) *Subscription {
	t.Helper()
	q, err := query.Compile(spec)
	if err != nil {
		t.Fatal(err)
	}
	reg := metrics.NewRegistry()
	return &Subscription{
		server: &Server{
			metrics:     reg,
			mDedupDrops: reg.Counter("appserver.dedup_drops"),
			mEventDrops: reg.Counter("appserver.event_drops"),
		},
		id:      "unit",
		q:       q,
		ordered: q.Ordered(),
		docs:    map[string]document.Document{},
		events:  make(chan Event, buffer),
	}
}

func sortedSpec() query.Spec {
	return query.Spec{Collection: "c", Sort: []query.SortKey{{Path: "n"}}, Limit: 5}
}

func notif(mt core.MatchType, key string, idx int, doc document.Document) *core.Notification {
	return &core.Notification{QueryID: core.QueryIDString(1), Type: mt, Key: key, Index: idx, Doc: doc}
}

func TestApplyProtocolReconstructsWindow(t *testing.T) {
	sub := newDetachedSub(t, sortedSpec(), 64)
	sub.installInitial([]core.ResultEntry{
		{Key: "a", Version: 1, Doc: document.Document{"_id": "a", "n": int64(1)}},
		{Key: "c", Version: 2, Doc: document.Document{"_id": "c", "n": int64(3)}},
	})
	// Insert "b" between them.
	sub.apply(notif(core.MatchAdd, "b", 1, document.Document{"_id": "b", "n": int64(2)}))
	if got := ids(sub.Result()); got != "a,b,c" {
		t.Fatalf("after add: %s", got)
	}
	// Move "a" to the end via changeIndex.
	sub.apply(notif(core.MatchChangeIndex, "a", 2, document.Document{"_id": "a", "n": int64(9)}))
	if got := ids(sub.Result()); got != "b,c,a" {
		t.Fatalf("after changeIndex: %s", got)
	}
	// In-place change.
	sub.apply(notif(core.MatchChange, "c", 1, document.Document{"_id": "c", "n": int64(3), "x": true}))
	if got := sub.Result(); got[1]["x"] != true {
		t.Fatalf("after change: %v", got)
	}
	// Remove.
	sub.apply(notif(core.MatchRemove, "b", -1, nil))
	if got := ids(sub.Result()); got != "c,a" {
		t.Fatalf("after remove: %s", got)
	}
}

func TestApplyAddIsIdempotentOnDuplicateKey(t *testing.T) {
	sub := newDetachedSub(t, sortedSpec(), 64)
	sub.installInitial(nil)
	sub.apply(notif(core.MatchAdd, "k", 0, document.Document{"_id": "k", "n": int64(1)}))
	// A repeated add for the same key (e.g. across a renewal) must move,
	// not duplicate.
	sub.apply(notif(core.MatchAdd, "x", 0, document.Document{"_id": "x", "n": int64(0)}))
	sub.apply(notif(core.MatchAdd, "k", 0, document.Document{"_id": "k", "n": int64(-1)}))
	if got := ids(sub.Result()); got != "k,x" {
		t.Fatalf("duplicate add corrupted window: %s", got)
	}
}

func TestApplyOutOfRangeIndexClamps(t *testing.T) {
	sub := newDetachedSub(t, sortedSpec(), 64)
	sub.installInitial(nil)
	sub.apply(notif(core.MatchAdd, "a", 99, document.Document{"_id": "a"}))
	sub.apply(notif(core.MatchAdd, "b", -5, document.Document{"_id": "b"}))
	if len(sub.Result()) != 2 {
		t.Fatalf("clamped inserts lost docs: %v", sub.Result())
	}
}

func TestPushOverflowDropsOldestAndCounts(t *testing.T) {
	sub := newDetachedSub(t, query.Spec{Collection: "c"}, 2)
	for i := 0; i < 6; i++ {
		sub.push(Event{Type: EventAdd, Key: fmt.Sprint(i)})
	}
	if sub.Dropped() != 4 {
		t.Fatalf("Dropped = %d, want 4", sub.Dropped())
	}
	// Survivors are the newest events.
	ev := <-sub.C()
	if ev.Key != "4" {
		t.Fatalf("survivor = %s, want 4", ev.Key)
	}
}

func TestApplyAfterCloseIsNoop(t *testing.T) {
	sub := newDetachedSub(t, sortedSpec(), 4)
	sub.mu.Lock()
	sub.closed = true
	close(sub.events)
	sub.mu.Unlock()
	sub.apply(notif(core.MatchAdd, "k", 0, document.Document{"_id": "k"})) // must not panic
	sub.push(Event{Type: EventAdd})                                        // must not panic
}

// TestResetClearsOriginDedupState covers the fresh-activation failover path:
// a replacement cluster (or a query whose node state TTL-expired during the
// outage) reuses the same Origin string with its seq counter restarted at
// zero. The bootstrap installed by reset supersedes all prior deliveries, so
// the stale seq history must not gate the new stream.
func TestResetClearsOriginDedupState(t *testing.T) {
	sub := newDetachedSub(t, sortedSpec(), 64)
	sub.installInitial(nil)
	drain(sub)

	// Pre-outage stream from matching-node origin "m3.0", seq up to 7.
	n := notif(core.MatchAdd, "a", 0, document.Document{"_id": "a", "n": int64(1)})
	n.Origin, n.Seq = "m3.0", 7
	sub.apply(n)
	if got := ids(sub.Result()); got != "a" {
		t.Fatalf("pre-outage add not applied: %s", got)
	}

	// Outage; re-subscription is a fresh activation. The new bootstrap
	// carries "a"; the recreated node then emits under the SAME origin with
	// seq restarted at 1.
	sub.reset([]core.ResultEntry{
		{Key: "a", Version: 1, Doc: document.Document{"_id": "a", "n": int64(1)}},
	})
	n = notif(core.MatchAdd, "b", 1, document.Document{"_id": "b", "n": int64(2)})
	n.Origin, n.Seq = "m3.0", 1
	sub.apply(n)
	if got := ids(sub.Result()); got != "a,b" {
		t.Fatalf("post-reset stream dropped by stale seq history: %s", got)
	}

	// An exact duplicate within the new stream is still suppressed.
	dup := notif(core.MatchAdd, "b", 0, document.Document{"_id": "b", "n": int64(2)})
	dup.Origin, dup.Seq = "m3.0", 1
	sub.apply(dup)
	if got := ids(sub.Result()); got != "a,b" {
		t.Fatalf("duplicate in new stream applied: %s", got)
	}
}

// TestResetPrefersNewerAppliedDoc covers the re-subscription race: a
// notification applied between the bootstrap query and reset() is newer than
// the bootstrap row, and the cluster's retention replay of it will be dropped
// as stale — so reset must keep the applied state, not regress to the
// bootstrap's.
func TestResetPrefersNewerAppliedDoc(t *testing.T) {
	sub := newDetachedSub(t, query.Spec{Collection: "c"}, 64)
	sub.installInitial([]core.ResultEntry{
		{Key: "a", Version: 1, Doc: document.Document{"_id": "a", "v": int64(1)}},
		{Key: "b", Version: 1, Doc: document.Document{"_id": "b"}},
	})
	drain(sub)

	// Applied after the re-subscription bootstrap ran: a newer image of "a"
	// and a removal of "b".
	ch := notif(core.MatchChange, "a", -1, document.Document{"_id": "a", "v": int64(9)})
	ch.Version = 5
	sub.apply(ch)
	rm := notif(core.MatchRemove, "b", -1, nil)
	rm.Version = 4
	sub.apply(rm)

	// The bootstrap predates both notifications.
	sub.reset([]core.ResultEntry{
		{Key: "a", Version: 1, Doc: document.Document{"_id": "a", "v": int64(1)}},
		{Key: "b", Version: 1, Doc: document.Document{"_id": "b"}},
	})
	res := sub.Result()
	if got := ids(res); got != "a" {
		t.Fatalf("reset resurrected a removed doc or lost one: %s", got)
	}
	if res[0]["v"] != int64(9) {
		t.Fatalf("reset regressed doc to bootstrap image: %v", res[0])
	}
}

// drain discards all buffered events.
func drain(sub *Subscription) {
	for {
		select {
		case <-sub.C():
		default:
			return
		}
	}
}

func TestInstallInitialAppliesWindowToSortedQuery(t *testing.T) {
	spec := query.Spec{Collection: "c", Sort: []query.SortKey{{Path: "n"}}, Offset: 1, Limit: 2}
	sub := newDetachedSub(t, spec, 16)
	// Bootstrap entries cover offset+limit+slack; the visible result is the
	// original window.
	var entries []core.ResultEntry
	for i := 0; i < 5; i++ {
		key := fmt.Sprintf("k%d", i)
		entries = append(entries, core.ResultEntry{
			Key: key, Version: uint64(i + 1),
			Doc: document.Document{"_id": key, "n": int64(i)},
		})
	}
	sub.installInitial(entries)
	ev := <-sub.C()
	if ev.Type != EventInitial || len(ev.Docs) != 2 {
		t.Fatalf("initial event: %+v", ev)
	}
	if got := ids(sub.Result()); got != "k1,k2" {
		t.Fatalf("visible window = %s, want k1,k2", got)
	}
}
