package appserver

import (
	"sync"
	"time"
)

// tokenBucket is a blocking, concurrency-safe rate limiter used to model the
// application server's write-path capacity.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
}

func newTokenBucket(rate float64) *tokenBucket {
	return &tokenBucket{rate: rate, burst: rate * 0.05, last: time.Now()}
}

func (tb *tokenBucket) take(n float64) {
	tb.mu.Lock()
	now := time.Now()
	tb.tokens += now.Sub(tb.last).Seconds() * tb.rate
	tb.last = now
	if tb.tokens > tb.burst {
		tb.tokens = tb.burst
	}
	tb.tokens -= n
	var wait time.Duration
	if tb.tokens < 0 {
		wait = time.Duration(-tb.tokens / tb.rate * float64(time.Second))
	}
	tb.mu.Unlock()
	if wait > 0 {
		time.Sleep(wait)
	}
}
