package appserver

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"invalidb/internal/core"
	"invalidb/internal/document"
	"invalidb/internal/eventlayer/tcp"
	"invalidb/internal/query"
	"invalidb/internal/storage"
)

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil, Options{}); err == nil {
		t.Fatal("nil dependencies accepted")
	}
}

func TestServerCloseIdempotentAndPullPathSurvives(t *testing.T) {
	e := newEnv(t, core.Options{}, Options{})
	if err := e.server.Insert("c", document.Document{"_id": "k", "x": 1}); err != nil {
		t.Fatal(err)
	}
	if err := e.server.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.server.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.server.Subscribe(query.Spec{Collection: "c"}); err == nil {
		t.Fatal("subscribe after close accepted")
	}
	// The database is untouched by server shutdown.
	if d, _, ok := e.db.C("c").Get("k"); !ok || d["x"] != int64(1) {
		t.Fatal("database lost data on server close")
	}
}

func TestWriteErrorsPropagate(t *testing.T) {
	e := newEnv(t, core.Options{}, Options{})
	if err := e.server.Update("c", "missing", map[string]any{"$set": map[string]any{"x": 1}}); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("update missing: %v", err)
	}
	if err := e.server.Delete("c", "missing"); !errors.Is(err, storage.ErrNotFound) {
		t.Fatalf("delete missing: %v", err)
	}
	_ = e.server.Insert("c", document.Document{"_id": "dup"})
	if err := e.server.Insert("c", document.Document{"_id": "dup"}); !errors.Is(err, storage.ErrDuplicateKey) {
		t.Fatalf("duplicate insert: %v", err)
	}
}

func TestUpsertAndReplaceNotify(t *testing.T) {
	e := newEnv(t, core.Options{}, Options{})
	spec := query.Spec{Collection: "c", Filter: map[string]any{"x": map[string]any{"$gte": 0}}}
	sub, err := e.server.Subscribe(spec)
	if err != nil {
		t.Fatal(err)
	}
	drainInitial(t, sub)
	if err := e.server.Upsert("c", "k", map[string]any{"$set": map[string]any{"x": 1}}); err != nil {
		t.Fatal(err)
	}
	if ev := waitEvent(t, sub, EventAdd); ev.Key != "k" {
		t.Fatalf("upsert add: %+v", ev)
	}
	if err := e.server.Replace("c", "k", document.Document{"x": 5}); err != nil {
		t.Fatal(err)
	}
	if ev := waitEvent(t, sub, EventChange); ev.Doc["x"] != int64(5) {
		t.Fatalf("replace change: %+v", ev)
	}
}

// TestSlackAblation quantifies the §5.2 trade-off the paper's slack
// parameter controls: a small slack exhausts quickly under deletes and
// forces frequent query renewals (pull queries against the database); a
// large slack absorbs the same churn without renewals.
func TestSlackAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("ablation takes seconds")
	}
	run := func(slack int) uint64 {
		e := newEnv(t, core.Options{}, Options{Slack: slack, MaxSlack: slack, RenewalMinInterval: time.Millisecond})
		for i := 0; i < 40; i++ {
			if err := e.server.Insert("s", document.Document{"_id": fmt.Sprintf("k%02d", i), "rank": i}); err != nil {
				t.Fatal(err)
			}
		}
		spec := query.Spec{Collection: "s", Sort: []query.SortKey{{Path: "rank"}}, Limit: 3}
		sub, err := e.server.Subscribe(spec)
		if err != nil {
			t.Fatal(err)
		}
		drainInitial(t, sub)
		// Delete the head of the result repeatedly: each deletion consumes
		// slack.
		for i := 0; i < 20; i++ {
			if err := e.server.Delete("s", fmt.Sprintf("k%02d", i)); err != nil {
				t.Fatal(err)
			}
			time.Sleep(15 * time.Millisecond) // let renewals complete
		}
		waitResult(t, e, sub, spec)
		return e.server.Renewals()
	}
	small := run(1)
	large := run(32)
	if small == 0 {
		t.Fatal("slack=1 should force renewals under head-of-result deletions")
	}
	if large >= small {
		t.Fatalf("slack=32 renewed %d times, slack=1 %d times — slack should reduce renewal load", large, small)
	}
}

// TestOverTCPBroker drives the full stack across the TCP event layer — the
// multi-process deployment shape (eventlayerd + invalidb-server +
// application server), here with each component holding its own broker
// connection.
func TestOverTCPBroker(t *testing.T) {
	broker, err := tcp.Serve("127.0.0.1:0", tcp.ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer broker.Close()

	clusterBus, err := tcp.Dial(broker.Addr(), tcp.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer clusterBus.Close()
	cluster, err := core.NewCluster(clusterBus, core.Options{
		QueryPartitions:   2,
		WritePartitions:   2,
		TickInterval:      20 * time.Millisecond,
		HeartbeatInterval: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := cluster.Start(); err != nil {
		t.Fatal(err)
	}
	defer cluster.Stop()

	serverBus, err := tcp.Dial(broker.Addr(), tcp.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer serverBus.Close()
	db := storage.Open(storage.Options{})
	srv, err := New(db, serverBus, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	time.Sleep(50 * time.Millisecond) // let broker subscriptions settle
	spec := query.Spec{Collection: "c", Filter: map[string]any{"x": 1}}
	sub, err := srv.Subscribe(spec)
	if err != nil {
		t.Fatal(err)
	}
	drainInitial(t, sub)
	if err := srv.Insert("c", document.Document{"_id": "k", "x": 1}); err != nil {
		t.Fatal(err)
	}
	if ev := waitEvent(t, sub, EventAdd); ev.Key != "k" {
		t.Fatalf("add over TCP: %+v", ev)
	}
	if err := srv.Delete("c", "k"); err != nil {
		t.Fatal(err)
	}
	if ev := waitEvent(t, sub, EventRemove); ev.Key != "k" {
		t.Fatalf("remove over TCP: %+v", ev)
	}
}

// TestRandomizedSortedConvergence applies a seeded random operation mix to
// a sorted windowed query and checks the push-based result converges to the
// pull-based result after every burst — the eventual-consistency contract
// under the trickiest query class.
func TestRandomizedSortedConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized convergence takes seconds")
	}
	e := newEnv(t, core.Options{QueryPartitions: 2, WritePartitions: 2}, Options{
		Slack: 2, RenewalMinInterval: time.Millisecond,
	})
	rng := rand.New(rand.NewSource(7))
	keys := make([]string, 30)
	for i := range keys {
		keys[i] = fmt.Sprintf("k%02d", i)
	}
	live := map[string]bool{}
	spec := query.Spec{
		Collection: "r",
		Filter:     map[string]any{"grp": "a"},
		Sort:       []query.SortKey{{Path: "score", Desc: true}},
		Offset:     1,
		Limit:      4,
	}
	sub, err := e.server.Subscribe(spec)
	if err != nil {
		t.Fatal(err)
	}
	drainInitial(t, sub)
	for burst := 0; burst < 8; burst++ {
		for op := 0; op < 10; op++ {
			key := keys[rng.Intn(len(keys))]
			switch {
			case !live[key]:
				grp := "a"
				if rng.Intn(4) == 0 {
					grp = "b" // outside the filter
				}
				if err := e.server.Insert("r", document.Document{"_id": key, "grp": grp, "score": rng.Intn(100)}); err != nil {
					t.Fatal(err)
				}
				live[key] = true
			case rng.Intn(3) == 0:
				if err := e.server.Delete("r", key); err != nil {
					t.Fatal(err)
				}
				live[key] = false
			default:
				if err := e.server.Update("r", key, map[string]any{"$set": map[string]any{"score": rng.Intn(100)}}); err != nil {
					t.Fatal(err)
				}
			}
			time.Sleep(2 * time.Millisecond)
		}
		waitResult(t, e, sub, spec)
	}
}

func TestSubscriptionResultUnsortedOrderedByKey(t *testing.T) {
	e := newEnv(t, core.Options{}, Options{})
	spec := query.Spec{Collection: "c", Filter: map[string]any{"x": 1}}
	sub, err := e.server.Subscribe(spec)
	if err != nil {
		t.Fatal(err)
	}
	drainInitial(t, sub)
	for _, k := range []string{"zz", "aa", "mm"} {
		if err := e.server.Insert("c", document.Document{"_id": k, "x": 1}); err != nil {
			t.Fatal(err)
		}
	}
	waitResult(t, e, sub, spec)
	got := ids(sub.Result())
	if got != "aa,mm,zz" {
		t.Fatalf("unsorted Result order = %s, want deterministic key order", got)
	}
}

func TestEventTypeString(t *testing.T) {
	for ev, want := range map[EventType]string{
		EventInitial: "initial", EventAdd: "add", EventChange: "change",
		EventChangeIndex: "changeIndex", EventRemove: "remove", EventError: "error",
	} {
		if ev.String() != want {
			t.Fatalf("%d.String() = %s, want %s", ev, ev.String(), want)
		}
	}
	if EventType(99).String() == "" {
		t.Fatal("unknown event type String empty")
	}
}
