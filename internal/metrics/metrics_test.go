package metrics

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func ms(v float64) time.Duration { return time.Duration(v * float64(time.Millisecond)) }

func TestLatencySummaryBasics(t *testing.T) {
	r := NewLatencyRecorder()
	for _, v := range []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10} {
		r.Record(ms(v))
	}
	s := r.Snapshot()
	if s.Count != 10 {
		t.Fatalf("Count = %d", s.Count)
	}
	if math.Abs(s.AvgMS-5.5) > 1e-9 {
		t.Fatalf("Avg = %v, want 5.5", s.AvgMS)
	}
	wantStd := math.Sqrt(8.25) // population stddev of 1..10
	if math.Abs(s.StdMS-wantStd) > 1e-9 {
		t.Fatalf("Std = %v, want %v", s.StdMS, wantStd)
	}
	if s.MaxMS != 10 {
		t.Fatalf("Max = %v", s.MaxMS)
	}
	if s.P50MS != 5 {
		t.Fatalf("P50 = %v, want 5 (nearest rank)", s.P50MS)
	}
	if s.P99MS != 10 {
		t.Fatalf("P99 = %v, want 10", s.P99MS)
	}
}

func TestLatencyP99Large(t *testing.T) {
	r := NewLatencyRecorder()
	for i := 1; i <= 1000; i++ {
		r.Record(ms(float64(i)))
	}
	s := r.Snapshot()
	if s.P99MS != 990 {
		t.Fatalf("P99 = %v, want 990", s.P99MS)
	}
	if s.P95MS != 950 {
		t.Fatalf("P95 = %v, want 950", s.P95MS)
	}
}

func TestLatencyEmptySnapshot(t *testing.T) {
	s := NewLatencyRecorder().Snapshot()
	if s.Count != 0 || s.AvgMS != 0 || s.P99MS != 0 {
		t.Fatalf("empty snapshot = %+v", s)
	}
}

func TestLatencyReset(t *testing.T) {
	r := NewLatencyRecorder()
	r.Record(ms(5))
	r.Reset()
	if r.Count() != 0 {
		t.Fatal("Reset did not clear samples")
	}
	r.Record(ms(1))
	if s := r.Snapshot(); s.MaxMS != 1 {
		t.Fatalf("max survived reset: %+v", s)
	}
}

func TestLatencyConcurrent(t *testing.T) {
	r := NewLatencyRecorder()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Record(ms(1))
			}
		}()
	}
	wg.Wait()
	if r.Count() != 8000 {
		t.Fatalf("Count = %d", r.Count())
	}
}

// Regression: live-use recorders must not grow without bound with
// notification volume. A windowed recorder retains only the last N
// samples; Count and Max still cover the whole lifetime.
func TestWindowedRecorderBounded(t *testing.T) {
	r := NewWindowedLatencyRecorder(4)
	for _, v := range []float64{100, 100, 100, 1, 2, 3, 4} {
		r.Record(ms(v))
	}
	if got := len(r.samples); got != 4 {
		t.Fatalf("retained %d samples, want 4", got)
	}
	s := r.Snapshot()
	if s.Count != 7 {
		t.Fatalf("Count = %d, want lifetime 7", s.Count)
	}
	if s.MaxMS != 100 {
		t.Fatalf("MaxMS = %v, want lifetime max 100", s.MaxMS)
	}
	// Window stats describe only the retained samples {1,2,3,4}.
	if math.Abs(s.AvgMS-2.5) > 1e-9 {
		t.Fatalf("AvgMS = %v, want 2.5 over the window", s.AvgMS)
	}
	if s.P99MS != 4 {
		t.Fatalf("P99MS = %v, want 4", s.P99MS)
	}
	r.Reset()
	if r.Count() != 0 {
		t.Fatalf("Count after Reset = %d", r.Count())
	}
	r.Record(ms(9))
	if s := r.Snapshot(); s.Count != 1 || s.MaxMS != 9 {
		t.Fatalf("post-Reset snapshot = %+v", s)
	}
}

// The ring buffer is preallocated, so Record never allocates — the
// instrumented dispatch path stays on the PR 1 zero-alloc budget.
func TestWindowedRecorderRecordNoAllocs(t *testing.T) {
	r := NewWindowedLatencyRecorder(64)
	if n := testing.AllocsPerRun(1000, func() { r.Record(time.Millisecond) }); n != 0 {
		t.Fatalf("windowed Record allocates: %v allocs/op", n)
	}
}

func TestSummaryString(t *testing.T) {
	r := NewLatencyRecorder()
	r.Record(ms(9))
	if s := r.Snapshot().String(); s == "" {
		t.Fatal("empty summary string")
	}
}

func TestQuickPercentileBounds(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		r := NewLatencyRecorder()
		for _, v := range raw {
			r.Record(time.Duration(v) * time.Microsecond)
		}
		s := r.Snapshot()
		// Percentiles are order statistics: bounded by min/max, monotone.
		return s.P50MS <= s.P95MS+1e-12 && s.P95MS <= s.P99MS+1e-12 && s.P99MS <= s.MaxMS+1e-12 && s.AvgMS <= s.MaxMS+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(10, 100)
	for _, v := range []float64{1, 5, 15, 95, 150} {
		h.Record(ms(v))
	}
	buckets, overflow := h.Buckets()
	if len(buckets) != 10 {
		t.Fatalf("bucket count = %d", len(buckets))
	}
	if buckets[0].Frequency != 0.4 { // 1 and 5
		t.Fatalf("bucket[0] = %v", buckets[0].Frequency)
	}
	if buckets[1].Frequency != 0.2 { // 15
		t.Fatalf("bucket[1] = %v", buckets[1].Frequency)
	}
	if buckets[9].Frequency != 0.2 { // 95
		t.Fatalf("bucket[9] = %v", buckets[9].Frequency)
	}
	if overflow != 0.2 { // 150
		t.Fatalf("overflow = %v", overflow)
	}
	if h.Total() != 5 {
		t.Fatalf("Total = %d", h.Total())
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(10, 100)
	buckets, overflow := h.Buckets()
	if buckets != nil || overflow != 0 {
		t.Fatal("empty histogram should return nil buckets")
	}
}

func TestHistogramFrequenciesSumToOne(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHistogram(5, 50)
		for _, v := range raw {
			h.Record(time.Duration(v) * time.Microsecond * 100)
		}
		buckets, overflow := h.Buckets()
		sum := overflow
		for _, b := range buckets {
			sum += b.Frequency
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCounter(t *testing.T) {
	c := NewCounter()
	c.Add(5)
	c.Add(3)
	if c.Value() != 8 {
		t.Fatalf("Value = %d", c.Value())
	}
	if c.RatePerSecond() <= 0 {
		t.Fatal("rate should be positive after events")
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatal("Reset failed")
	}
}
