// Package metrics provides the latency and throughput instrumentation the
// benchmark harness uses to reproduce the paper's measurements: streaming
// latency recorders with average / standard deviation / percentile / max
// statistics (Table 3) and bucketed distributions (Figure 6c/6d).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// DefaultLatencyWindow is the ring-buffer capacity Registry.Latency uses
// for live recorders: large enough that a paper-scale run (~1000
// notifications) keeps exact percentiles, small enough that a recorder is
// a fixed 64KB no matter how long the process runs.
const DefaultLatencyWindow = 8192

// LatencyRecorder accumulates duration samples. It is safe for concurrent
// use. In exact mode (NewLatencyRecorder) it keeps every sample — the
// paper's experiments collect ~1000 notifications per run, so exact
// percentiles are affordable. In windowed mode (NewWindowedLatencyRecorder)
// it keeps only the most recent window samples in a preallocated ring
// buffer, so memory stays fixed in a long-running daemon and Record never
// allocates.
type LatencyRecorder struct {
	mu      sync.Mutex
	window  int // 0 = exact mode: keep every sample
	samples []time.Duration
	next    int    // ring cursor once a bounded buffer is full
	count   uint64 // samples recorded since Reset (≥ len(samples))
	max     time.Duration
}

// NewLatencyRecorder creates an empty exact-mode recorder that retains
// every sample (bench-harness use; unbounded).
func NewLatencyRecorder() *LatencyRecorder {
	return &LatencyRecorder{}
}

// NewWindowedLatencyRecorder creates a recorder that retains only the most
// recent window samples (live daemon use; fixed memory). A window < 1
// selects DefaultLatencyWindow. The buffer is preallocated so Record is
// allocation-free from the first sample.
func NewWindowedLatencyRecorder(window int) *LatencyRecorder {
	if window < 1 {
		window = DefaultLatencyWindow
	}
	return &LatencyRecorder{window: window, samples: make([]time.Duration, 0, window)}
}

// Record adds one sample. Windowed recorders evict the oldest retained
// sample once full.
//
//invalidb:hotpath
func (r *LatencyRecorder) Record(d time.Duration) {
	r.mu.Lock()
	r.count++
	if d > r.max {
		r.max = d
	}
	if r.window > 0 && len(r.samples) == r.window {
		r.samples[r.next] = d
		r.next++
		if r.next == r.window {
			r.next = 0
		}
	} else {
		r.samples = append(r.samples, d)
	}
	r.mu.Unlock()
}

// Count returns the number of samples recorded since the last Reset,
// including any evicted from a windowed recorder's buffer.
func (r *LatencyRecorder) Count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return int(r.count)
}

// Reset clears all samples.
func (r *LatencyRecorder) Reset() {
	r.mu.Lock()
	r.samples = r.samples[:0]
	r.next, r.count, r.max = 0, 0, 0
	r.mu.Unlock()
}

// Summary is a snapshot of latency statistics in milliseconds — the exact
// columns of the paper's Table 3 (average, standard deviation, 99th
// percentile, maximum). For a windowed recorder, Avg/Std/percentiles
// describe the retained window (the most recent samples) while Count and
// Max cover the recorder's whole lifetime since Reset.
type Summary struct {
	Count int
	AvgMS float64
	StdMS float64
	P50MS float64
	P95MS float64
	P99MS float64
	MaxMS float64
}

// Snapshot computes the summary of all samples recorded so far.
func (r *LatencyRecorder) Snapshot() Summary {
	r.mu.Lock()
	n := len(r.samples)
	if n == 0 {
		r.mu.Unlock()
		return Summary{}
	}
	samples := append([]time.Duration(nil), r.samples...)
	count, max := r.count, r.max
	r.mu.Unlock()

	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	var sum float64
	for _, s := range samples {
		sum += float64(s) / float64(time.Millisecond)
	}
	mean := sum / float64(n)
	// Two-pass variance over the copied samples. The naive sumSq/n − mean²
	// form cancels catastrophically for tight distributions around a large
	// mean (e.g. thousands of ~36µs samples offset by a constant), which the
	// old `variance < 0` clamp silently papered over as std=0.
	var variance float64
	for _, s := range samples {
		dev := float64(s)/float64(time.Millisecond) - mean
		variance += dev * dev
	}
	variance /= float64(n)
	return Summary{
		Count: int(count),
		AvgMS: mean,
		StdMS: math.Sqrt(variance),
		P50MS: percentile(samples, 0.50),
		P95MS: percentile(samples, 0.95),
		P99MS: percentile(samples, 0.99),
		MaxMS: float64(max) / float64(time.Millisecond),
	}
}

// percentile computes the pth percentile (0..1) of sorted samples using the
// nearest-rank method, in milliseconds.
func percentile(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(p*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return float64(sorted[rank]) / float64(time.Millisecond)
}

// String renders the summary as the paper's table row format.
func (s Summary) String() string {
	return fmt.Sprintf("avg=%.1fms std=%.1fms p99=%.1fms max=%.0fms (n=%d)",
		s.AvgMS, s.StdMS, s.P99MS, s.MaxMS, s.Count)
}

// Histogram buckets latency samples for distribution plots (Figure 6c/6d).
type Histogram struct {
	// BucketMS is the bucket width in milliseconds.
	BucketMS float64
	// UpperMS is the inclusive upper bound; samples beyond it land in the
	// overflow bucket.
	UpperMS float64

	mu       sync.Mutex
	buckets  []uint64
	overflow uint64
	total    uint64
}

// NewHistogram creates a histogram with the given bucket width and range.
func NewHistogram(bucketMS, upperMS float64) *Histogram {
	n := int(math.Ceil(upperMS / bucketMS))
	if n < 1 {
		n = 1
	}
	return &Histogram{BucketMS: bucketMS, UpperMS: upperMS, buckets: make([]uint64, n)}
}

// Record adds a sample.
//
//invalidb:hotpath
func (h *Histogram) Record(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	h.mu.Lock()
	idx := int(ms / h.BucketMS)
	if idx < 0 {
		// Cross-node stage timestamps can produce negative durations under
		// clock skew; clamp them into the first bucket instead of panicking.
		idx = 0
	}
	if idx >= len(h.buckets) {
		h.overflow++
	} else {
		h.buckets[idx]++
	}
	h.total++
	h.mu.Unlock()
}

// Bucket is one histogram bar: the bucket's lower bound in milliseconds and
// the relative frequency of samples in it.
type Bucket struct {
	LowerMS   float64
	Frequency float64
}

// Buckets returns the normalized distribution (frequencies sum to 1 across
// buckets plus overflow).
func (h *Histogram) Buckets() (buckets []Bucket, overflow float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return nil, 0
	}
	out := make([]Bucket, len(h.buckets))
	for i, c := range h.buckets {
		out[i] = Bucket{LowerMS: float64(i) * h.BucketMS, Frequency: float64(c) / float64(h.total)}
	}
	return out, float64(h.overflow) / float64(h.total)
}

// Total returns the sample count.
func (h *Histogram) Total() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Counter is a concurrency-safe event counter with rate computation.
type Counter struct {
	mu    sync.Mutex
	n     uint64
	since time.Time
}

// NewCounter creates a counter with its rate window starting now.
func NewCounter() *Counter {
	return &Counter{since: time.Now()}
}

// Add increments the counter.
func (c *Counter) Add(delta uint64) {
	c.mu.Lock()
	c.n += delta
	c.mu.Unlock()
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// RatePerSecond returns the average rate since the last Reset (or creation).
func (c *Counter) RatePerSecond() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	elapsed := time.Since(c.since).Seconds()
	if elapsed <= 0 {
		return 0
	}
	return float64(c.n) / elapsed
}

// Reset zeroes the counter and restarts the rate window.
func (c *Counter) Reset() {
	c.mu.Lock()
	c.n = 0
	c.since = time.Now()
	c.mu.Unlock()
}
